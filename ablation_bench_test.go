package deepfusion

// Ablation benchmarks for the design choices DESIGN.md calls out:
// the rotation augmentation of the 3D-CNN input, PB2 against random
// search at equal budget, coherent backpropagation against frozen
// heads, and the real (goroutine-measured) strong scaling of the
// distributed scoring job.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"deepfusion/internal/assay"
	"deepfusion/internal/chem"
	"deepfusion/internal/dock"
	"deepfusion/internal/experiments"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/hpo"
	"deepfusion/internal/libgen"
	"deepfusion/internal/md"
	"deepfusion/internal/pdbbind"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

func ablationSamples(n int) (train, val []*fusion.Sample) {
	ds := pdbbind.Generate(pdbbind.Options{
		NGeneral: n, NRefined: n / 2, NCore: 8, ValFraction: 0.15, NumPockets: 6, Seed: 505,
	})
	vo := featurize.DefaultVoxelOptions()
	gr := featurize.DefaultGraphOptions()
	return fusion.FeaturizeDataset(ds.Train, vo, gr), fusion.FeaturizeDataset(ds.Val, vo, gr)
}

// BenchmarkAblationRotationAugmentation compares 3D-CNN validation MSE
// with and without the paper's 10%-per-axis rotation augmentation
// (Section 3.3.1 argues it prevents learning rotation-dependent
// features).
func BenchmarkAblationRotationAugmentation(b *testing.B) {
	b.ReportAllocs()
	var withAug, noAug float64
	for i := 0; i < b.N; i++ {
		train, val := ablationSamples(160)
		cfg := fusion.DefaultCNN3DConfig()
		cfg.Epochs = 4
		_, histAug := fusion.TrainCNN3D(cfg, train, val, 71)
		withAug = histAug.Best()
		// Disable augmentation by pre-rotating nothing: training without
		// the augmented stack is modeled by a zero-probability variant.
		noAugTrain := make([]*fusion.Sample, len(train))
		copy(noAugTrain, train)
		_, histNo := fusion.TrainCNN3DNoAugment(cfg, noAugTrain, val, 71)
		noAug = histNo.Best()
	}
	b.StopTimer()
	fmt.Printf("Ablation (rotation augmentation): val MSE with=%.3f without=%.3f\n\n", withAug, noAug)
	b.ReportMetric(withAug, "val-mse-aug")
	b.ReportMetric(noAug, "val-mse-noaug")
}

// BenchmarkAblationPB2VsRandom compares PB2 against pure random search
// at an equal training budget on the SG-CNN space.
func BenchmarkAblationPB2VsRandom(b *testing.B) {
	b.ReportAllocs()
	var pb2Best, randBest float64
	for i := 0; i < b.N; i++ {
		train, val := ablationSamples(140)
		space := hpo.SGCNNSpaceRepro()
		obj := func(cfg hpo.Config, prev hpo.State, seed int64) (hpo.State, float64) {
			c := fusion.DefaultSGCNNConfig()
			c.BatchSize = int(cfg.Num["batch_size"])
			c.LearningRate = cfg.Num["learning_rate"]
			c.CovK = int(cfg.Num["cov_k"])
			c.NonCovK = int(cfg.Num["noncov_k"])
			c.CovGatherWidth = int(cfg.Num["cov_gather_width"])
			c.NonCovGatherWidth = int(cfg.Num["noncov_gather_width"])
			c.Epochs = 2
			if prev != nil {
				m := prev.(*fusion.SGCNN)
				h := fusion.ContinueSGCNN(m, c, train, val, seed)
				return m, h.ValLoss[len(h.ValLoss)-1]
			}
			m, h := fusion.TrainSGCNN(c, train, val, seed)
			return m, h.ValLoss[len(h.ValLoss)-1]
		}
		res := hpo.Run(space, obj, hpo.Options{Population: 6, QuantileFraction: 0.5, Rounds: 3, UCBBeta: 1, Seed: 81})
		pb2Best = res.Best.Loss
		// Random search: same number of trials, no exploit/explore.
		rng := rand.New(rand.NewSource(82))
		randBest = 1e18
		for t := 0; t < 6; t++ {
			var st hpo.State
			var loss float64
			cfg := space.Sample(rng)
			for r := 0; r < 3; r++ {
				st, loss = obj(cfg, st, int64(83+t*10+r))
			}
			if loss < randBest {
				randBest = loss
			}
		}
	}
	b.StopTimer()
	fmt.Printf("Ablation (PB2 vs random search, equal budget): PB2 best val MSE %.3f, random %.3f\n\n", pb2Best, randBest)
	b.ReportMetric(pb2Best, "pb2-best-mse")
	b.ReportMetric(randBest, "random-best-mse")
}

// BenchmarkAblationCoherence isolates the paper's key claim: with an
// identical fusion architecture, coherent backpropagation into the
// heads against frozen heads.
func BenchmarkAblationCoherence(b *testing.B) {
	b.ReportAllocs()
	var frozen, coherent float64
	for i := 0; i < b.N; i++ {
		train, val := ablationSamples(160)
		cnnCfg := fusion.DefaultCNN3DConfig()
		cnnCfg.Epochs = 3
		sgCfg := fusion.DefaultSGCNNConfig()
		cnn, _ := fusion.TrainCNN3D(cnnCfg, train, val, 91)
		sg, _ := fusion.TrainSGCNN(sgCfg, train, val, 92)
		base := fusion.DefaultCoherentConfig()
		base.Epochs = 4

		frozenCfg := base
		frozenCfg.Coherent = false
		fFrozen := fusion.NewFusion(frozenCfg, cnn.Clone(), sg.Clone(), 93)
		fusion.TrainFusion(fFrozen, train, val, 94)
		frozen = fusion.EvalFusion(fFrozen, val)

		cohCfg := base
		fCoh := fusion.NewFusion(cohCfg, cnn.Clone(), sg.Clone(), 93)
		fusion.TrainFusion(fCoh, train, val, 94)
		coherent = fusion.EvalFusion(fCoh, val)
	}
	b.StopTimer()
	fmt.Printf("Ablation (coherent backprop): val MSE frozen-heads=%.3f coherent=%.3f\n\n", frozen, coherent)
	b.ReportMetric(frozen, "frozen-val-mse")
	b.ReportMetric(coherent, "coherent-val-mse")
}

// BenchmarkRealRankScaling measures the actual wall-clock throughput
// of the distributed scoring job at 1, 2, 4 and 8 goroutine ranks —
// the real-concurrency counterpart of the simulated Figure 4.
func BenchmarkRealRankScaling(b *testing.B) {
	b.ReportAllocs()
	coherent := experiments.Coherent(experiments.Smoke)
	var mols []*chem.Mol
	for i := 0; len(mols) < 12; i++ {
		m, err := libgen.Enamine.Mol(i)
		if err != nil {
			continue
		}
		mols = append(mols, m)
	}
	poses, _, _ := screen.DockCompounds(context.Background(), target.Protease1, mols, 4, 303)
	fmt.Printf("Real rank scaling (%d poses, one model replica per rank):\n", len(poses))
	for _, ranks := range []int{1, 2, 4, 8} {
		o := screen.DefaultJobOptions()
		o.Ranks = ranks
		var rate float64
		for i := 0; i < b.N; i++ {
			start := time.Now()
			preds, err := screen.RunJob(context.Background(), coherent, target.Protease1, poses, o)
			if err != nil {
				b.Fatal(err)
			}
			rate = float64(len(preds)) / time.Since(start).Seconds()
		}
		fmt.Printf("  ranks=%d  %.0f poses/s\n", ranks, rate)
		b.ReportMetric(rate, fmt.Sprintf("poses/s-r%d", ranks))
	}
	fmt.Println()
}

// BenchmarkFutureWorkFineTune demonstrates the paper's future-work
// direction: target-specific fine-tuning of the baseline Coherent
// Fusion model. It reports validation MSE on one binding site before
// and after specialization.
func BenchmarkFutureWorkFineTune(b *testing.B) {
	b.ReportAllocs()
	var before, after float64
	for i := 0; i < b.N; i++ {
		train, val := ablationSamples(160)
		cnnCfg := fusion.DefaultCNN3DConfig()
		cnnCfg.Epochs = 3
		cnn, _ := fusion.TrainCNN3D(cnnCfg, train, val, 301)
		sg, _ := fusion.TrainSGCNN(fusion.DefaultSGCNNConfig(), train, val, 302)
		cfg := fusion.DefaultCoherentConfig()
		cfg.Epochs = 3
		base := fusion.NewFusion(cfg, cnn, sg, 303)
		fusion.TrainFusion(base, train, val, 304)

		pocketName := train[0].Pocket.Name
		var tgtTrain, tgtVal []*fusion.Sample
		for _, s := range train {
			if s.Pocket.Name == pocketName {
				tgtTrain = append(tgtTrain, s)
			}
		}
		for _, s := range val {
			if s.Pocket.Name == pocketName {
				tgtVal = append(tgtVal, s)
			}
		}
		if len(tgtVal) == 0 {
			tgtVal = tgtTrain[:1]
		}
		before = fusion.EvalFusion(base, tgtVal)
		o := fusion.DefaultFineTuneOptions()
		o.Epochs = 4
		o.LearningRate = 3e-4
		ft, _ := fusion.FineTune(base, tgtTrain, tgtVal, o, 305)
		after = fusion.EvalFusion(ft, tgtVal)
	}
	b.StopTimer()
	fmt.Printf("Future work (target-specific fine-tuning): target val MSE before=%.3f after=%.3f\n\n", before, after)
	b.ReportMetric(before, "base-val-mse")
	b.ReportMetric(after, "finetuned-val-mse")
}

// BenchmarkFutureWorkStreamingOutput compares the end-of-job gather
// architecture against the paper's proposed streaming per-rank writer.
func BenchmarkFutureWorkStreamingOutput(b *testing.B) {
	b.ReportAllocs()
	coherent := experiments.Coherent(experiments.Smoke)
	var mols []*chem.Mol
	for i := 0; len(mols) < 8; i++ {
		m, err := libgen.EMolecules.Mol(i)
		if err != nil {
			continue
		}
		mols = append(mols, m)
	}
	poses, _, _ := screen.DockCompounds(context.Background(), target.Spike1, mols, 4, 404)
	o := screen.DefaultJobOptions()
	var batchSec, streamFirstSec float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := screen.RunJob(context.Background(), coherent, target.Spike1, poses, o); err != nil {
			b.Fatal(err)
		}
		batchSec = time.Since(start).Seconds()

		start = time.Now()
		ch, wait := screen.RunJobStreaming(context.Background(), coherent, target.Spike1, poses, o)
		first := true
		for range ch {
			if first {
				streamFirstSec = time.Since(start).Seconds()
				first = false
			}
		}
		if err := wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("Future work (streaming writer): first result after %.3fs vs %.3fs for the full batch job\n\n",
		streamFirstSec, batchSec)
	b.ReportMetric(streamFirstSec, "first-result-s")
	b.ReportMetric(batchSec, "batch-total-s")
}

// BenchmarkFunnelMDRefinement measures the molecular-dynamics stage
// the paper cites as the final funnel step before experimental
// candidates are locked in (Section 3.1): how much the
// minimize-anneal-quench protocol improves docked top poses, and what
// it costs per pose relative to docking.
func BenchmarkFunnelMDRefinement(b *testing.B) {
	b.ReportAllocs()
	var mols []*chem.Mol
	for i := 0; len(mols) < 6; i++ {
		m, err := libgen.Enamine.Mol(i)
		if err != nil {
			continue
		}
		mols = append(mols, m)
	}
	var vinaBefore, vinaAfter, dockSec, mdSec float64
	var nPoses int
	for i := 0; i < b.N; i++ {
		vinaBefore, vinaAfter, dockSec, mdSec, nPoses = 0, 0, 0, 0, 0
		o := md.DefaultOptions()
		for j, m := range mols {
			so := dock.DefaultSearchOptions()
			so.Seed = int64(j + 1)
			start := time.Now()
			poses := dock.Dock(target.Protease1, m, so)
			dockSec += time.Since(start).Seconds()
			if len(poses) > 3 {
				poses = poses[:3]
			}
			start = time.Now()
			refined := md.RefineDockPoses(target.Protease1, poses, o)
			mdSec += time.Since(start).Seconds()
			vinaBefore += poses[0].Score
			vinaAfter += refined[0].Score
			nPoses += len(poses)
		}
	}
	b.StopTimer()
	n := float64(len(mols))
	fmt.Printf("Funnel (MD refinement): mean top-pose Vina %.2f -> %.2f kcal/mol; "+
		"%.1fms/pose MD vs %.1fms/compound docking\n\n",
		vinaBefore/n, vinaAfter/n, 1000*mdSec/float64(nPoses), 1000*dockSec/n)
	b.ReportMetric(vinaBefore/n, "vina-docked")
	b.ReportMetric(vinaAfter/n, "vina-mdrefined")
	b.ReportMetric(1000*mdSec/float64(nPoses), "md-ms/pose")
}

// BenchmarkAblationPB2VsPBT separates the two ingredients of the
// paper's optimizer: population training with exploit/explore (PBT,
// Jaderberg 2017) and the time-varying GP-bandit explore step that
// PB2 (Parker-Holder 2020) adds on top. All three optimizers get the
// identical training budget on the SG-CNN space.
func BenchmarkAblationPB2VsPBT(b *testing.B) {
	b.ReportAllocs()
	var pb2Best, pbtBest, randBest float64
	for i := 0; i < b.N; i++ {
		train, val := ablationSamples(140)
		space := hpo.SGCNNSpaceRepro()
		obj := func(cfg hpo.Config, prev hpo.State, seed int64) (hpo.State, float64) {
			c := fusion.DefaultSGCNNConfig()
			c.BatchSize = int(cfg.Num["batch_size"])
			c.LearningRate = cfg.Num["learning_rate"]
			c.CovK = int(cfg.Num["cov_k"])
			c.NonCovK = int(cfg.Num["noncov_k"])
			c.CovGatherWidth = int(cfg.Num["cov_gather_width"])
			c.NonCovGatherWidth = int(cfg.Num["noncov_gather_width"])
			c.Epochs = 2
			if prev != nil {
				m := prev.(*fusion.SGCNN)
				h := fusion.ContinueSGCNN(m, c, train, val, seed)
				return m, h.ValLoss[len(h.ValLoss)-1]
			}
			m, h := fusion.TrainSGCNN(c, train, val, seed)
			return m, h.ValLoss[len(h.ValLoss)-1]
		}
		o := hpo.Options{Population: 6, QuantileFraction: 0.5, Rounds: 3, UCBBeta: 1, Seed: 91}
		pb2Best = hpo.Run(space, obj, o).Best.Loss
		pbtBest = hpo.RunPBT(space, obj, o).Best.Loss
		randBest = hpo.RunRandomSearch(space, obj, o).Best.Loss
	}
	b.StopTimer()
	fmt.Printf("Ablation (optimizer ladder, equal budget): best val MSE PB2 %.3f, PBT %.3f, random %.3f "+
		"(ordering asserted on the clean synthetic objective in internal/hpo)\n\n",
		pb2Best, pbtBest, randBest)
	b.ReportMetric(pb2Best, "pb2-best-mse")
	b.ReportMetric(pbtBest, "pbt-best-mse")
	b.ReportMetric(randBest, "random-best-mse")
}

// BenchmarkAblationFlexibleDocking measures Vina-style torsional
// flexibility against the rigid-body default at the same Monte-Carlo
// proposal budget, on compounds with several rotatable bonds.
func BenchmarkAblationFlexibleDocking(b *testing.B) {
	b.ReportAllocs()
	smiles := []string{
		"CCOC(=O)CCc1ccccc1",
		"CCN(CC)CCNC(=O)c1ccccc1",
		"CC(C)CC(N)C(=O)OCC",
		"CCOC(=O)c1ccc(NC(C)=O)cc1",
	}
	var mols []*chem.Mol
	var totalRotors int
	for _, s := range smiles {
		m, err := chem.ParseSMILES(s)
		if err != nil {
			b.Fatal(err)
		}
		chem.Embed3D(m, 23)
		totalRotors += m.RotatableBonds()
		mols = append(mols, m)
	}
	var rigidBest, flexBest float64
	for i := 0; i < b.N; i++ {
		rigidBest, flexBest = 0, 0
		for j, m := range mols {
			o := dock.DefaultSearchOptions()
			o.MCSteps = 80
			o.Seed = int64(300 + j)
			rigidBest += dock.Dock(target.Protease1, m, o)[0].Score
			o.TorsionMoves = true
			flexBest += dock.Dock(target.Protease1, m, o)[0].Score
		}
	}
	b.StopTimer()
	n := float64(len(mols))
	fmt.Printf("Ablation (flexible docking): mean best score rigid %.2f vs flexible %.2f kcal/mol "+
		"(%d rotors across %d compounds)\n\n", rigidBest/n, flexBest/n, totalRotors, len(mols))
	b.ReportMetric(rigidBest/n, "rigid-best-kcal")
	b.ReportMetric(flexBest/n, "flex-best-kcal")
}

// BenchmarkLoaderVsInference quantifies Section 4.3's bottleneck
// claim: "the computational cost of pre-processing (file reading and
// data featurization) is the most significant bottleneck" and the GPU
// (here, the model forward pass) is intermittently idle. It measures
// per-pose featurization time against per-pose model inference time.
func BenchmarkLoaderVsInference(b *testing.B) {
	b.ReportAllocs()
	coherent := experiments.Coherent(experiments.Smoke)
	var mols []*chem.Mol
	for i := 0; len(mols) < 8; i++ {
		m, err := libgen.ChEMBL.Mol(i)
		if err != nil {
			continue
		}
		mols = append(mols, m)
	}
	poses, _, _ := screen.DockCompounds(context.Background(), target.Protease1, mols, 3, 777)
	vo := coherent.CNN.Cfg.Voxel
	gro := featurize.DefaultGraphOptions()

	var featSec, inferSec float64
	for i := 0; i < b.N; i++ {
		samples := make([]*fusion.Sample, len(poses))
		start := time.Now()
		for j, ps := range poses {
			samples[j] = fusion.FeaturizeComplex(ps.CompoundID, target.Protease1, ps.Mol, 0, vo, gro)
		}
		featSec = time.Since(start).Seconds()
		start = time.Now()
		for _, s := range samples {
			coherent.Predict(s)
		}
		inferSec = time.Since(start).Seconds()
	}
	b.StopTimer()
	perPoseFeat := 1000 * featSec / float64(len(poses))
	perPoseInfer := 1000 * inferSec / float64(len(poses))
	fmt.Printf("Bottleneck (Section 4.3): featurization %.2f ms/pose vs inference %.2f ms/pose. "+
		"On Lassen the ratio favors the V100 so featurization dominates; with this repo's CPU forward "+
		"pass inference dominates instead — the cluster simulator carries the paper-calibrated ratio.\n\n",
		perPoseFeat, perPoseInfer)
	b.ReportMetric(perPoseFeat, "featurize-ms/pose")
	b.ReportMetric(perPoseInfer, "infer-ms/pose")
}

// BenchmarkConfirmationScreen runs the paper's two-stage experimental
// protocol (Section 5.1: primary FRET / pseudo-virus screen, then an
// orthogonal confirmation assay) over a compound deck and reports the
// primary hit and confirmation rates per target.
func BenchmarkConfirmationScreen(b *testing.B) {
	b.ReportAllocs()
	mols := libgen.Draw(libgen.All(), 150)
	var lines []string
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		for _, tgt := range target.All() {
			c := assay.Screen(tgt, mols, 33)
			lines = append(lines, fmt.Sprintf("  %-10s primary hits %3d/%d, confirmed %3d (rate %.2f)",
				tgt.Name, len(c.PrimaryHits), len(mols), len(c.Confirmed), c.ConfirmationRate()))
		}
	}
	b.StopTimer()
	fmt.Println("Confirmation screen (Section 5.1, two-stage assay protocol):")
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Println()
}
