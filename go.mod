module deepfusion

go 1.24.0
