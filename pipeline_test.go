package deepfusion

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
)

// tinyTestModels builds an untrained (deterministic, fast) Models
// bundle for pipeline-mechanics tests: the API contract does not
// depend on model quality.
func tinyTestModels() *Models {
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfg.ConvFilters1 = 4
	cnnCfg.ConvFilters2 = 6
	cnnCfg.DenseNodes = 8
	sgCfg := fusion.DefaultSGCNNConfig()
	sgCfg.CovGatherWidth = 6
	sgCfg.NonCovGatherWidth = 8
	cnn := fusion.NewCNN3D(cnnCfg, 1)
	sg := fusion.NewSGCNN(sgCfg, 2)
	return &Models{
		CNN3D:    cnn,
		SGCNN:    sg,
		Late:     &fusion.LateFusion{CNN: cnn.Clone(), SG: sg.Clone()},
		Mid:      fusion.NewFusion(fusion.DefaultMidFusionConfig(), cnn.Clone(), sg.Clone(), 3),
		Coherent: fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn.Clone(), sg.Clone(), 4),
	}
}

func testDeck(t *testing.T, n int) []*Mol {
	t.Helper()
	var mols []*Mol
	lib := Libraries()[0]
	for i := 0; len(mols) < n; i++ {
		m, err := lib.Mol(i)
		if err != nil {
			continue
		}
		mols = append(mols, m)
	}
	return mols
}

// TestLegacyScreenPinnedToPipeline pins the deprecated Screen wrapper
// byte-identical to the new Pipeline path: same compounds, same
// options, same selections — field for field.
func TestLegacyScreenPinnedToPipeline(t *testing.T) {
	m := tinyTestModels()
	deck := testDeck(t, 5)
	tgt := TargetByName("spike1")
	o := DefaultScreenOptions()
	o.MaxPoses = 2
	o.Select = 3

	legacy, err := Screen(m, tgt, deck, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPipeline(m).
		WithJob(o.Job).
		WithDocking(o.MaxPoses, o.Seed).
		WithSelection(CostWeights(), o.Select).
		Run(context.Background(), tgt, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, res.Selected) {
		t.Fatalf("legacy Screen diverged from the Pipeline path:\nlegacy:   %+v\npipeline: %+v", legacy, res.Selected)
	}
}

// TestPipelineResultPerStageCounts checks the rich Result: docking and
// scoring accounting is surfaced instead of swallowed.
func TestPipelineResultPerStageCounts(t *testing.T) {
	m := tinyTestModels()
	deck := testDeck(t, 4)
	tgt := TargetByName("protease1")

	res, err := NewPipeline(m).WithDocking(2, 7).WithSelection(CostWeights(), 2).Run(context.Background(), tgt, deck)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != "protease1" {
		t.Fatalf("target %q", res.Target)
	}
	if !reflect.DeepEqual(res.ScorerNames, []string{"coherent"}) {
		t.Fatalf("scorer names %v", res.ScorerNames)
	}
	if res.Compounds != len(deck) {
		t.Fatalf("compounds %d, want %d", res.Compounds, len(deck))
	}
	if res.Docked == 0 || res.Docked != len(res.Predictions) || res.Scored != res.Docked {
		t.Fatalf("stage counts inconsistent: docked %d, scored %d, predictions %d", res.Docked, res.Scored, len(res.Predictions))
	}
	if res.Rejected != len(res.Problems) {
		t.Fatalf("rejected %d but %d problems recorded", res.Rejected, len(res.Problems))
	}
	if res.Attempts < 1 {
		t.Fatalf("attempts %d", res.Attempts)
	}
	if len(res.Selected) != 2 || len(res.Scores) == 0 {
		t.Fatalf("selection stage: %d selected of %d scores", len(res.Selected), len(res.Scores))
	}
}

// TestPipelineWithPrecision runs the same funnel on the f64 reference
// and the f32 fast path: the f32 run must complete, select the same
// number of compounds, and keep its per-pose scores within the
// engine's accumulation tolerance of the reference.
func TestPipelineWithPrecision(t *testing.T) {
	m := tinyTestModels()
	deck := testDeck(t, 4)
	tgt := TargetByName("protease1")

	run := func(p Precision) *Result {
		res, err := NewPipeline(m).WithDocking(2, 7).WithPrecision(p).Run(context.Background(), tgt, deck)
		if err != nil {
			t.Fatalf("%s pipeline: %v", p, err)
		}
		return res
	}
	ref := run(PrecisionF64)
	fast := run(PrecisionF32)
	if len(fast.Predictions) != len(ref.Predictions) {
		t.Fatalf("f32 scored %d poses, f64 %d", len(fast.Predictions), len(ref.Predictions))
	}
	for i := range ref.Predictions {
		a, b := ref.Predictions[i].Fusion, fast.Predictions[i].Fusion
		den := 1.0
		if d := a; d > 1 || d < -1 {
			den = d
			if den < 0 {
				den = -den
			}
		}
		if e := (a - b) / den; e > 1e-4 || e < -1e-4 {
			t.Fatalf("pose %d: f32 score %v vs f64 %v", i, b, a)
		}
	}
}

// TestPipelineEnsembleScores runs the pipeline under a 3-scorer
// ensemble and checks per-scorer pose columns reach the Result.
func TestPipelineEnsembleScores(t *testing.T) {
	m := tinyTestModels()
	deck := testDeck(t, 3)
	tgt := TargetByName("spike2")

	res, err := NewPipeline(m).
		WithScorers(m.Coherent, VinaScorer(), MMGBSAScorer()).
		WithDocking(2, 9).
		Run(context.Background(), tgt, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.ScorerNames, []string{"coherent", "vina", "mmgbsa"}) {
		t.Fatalf("scorer names %v", res.ScorerNames)
	}
	for _, pr := range res.Predictions {
		if len(pr.Scores) != 3 {
			t.Fatalf("prediction carries %d scorer columns, want 3: %+v", len(pr.Scores), pr)
		}
		if pr.Fusion != pr.Scores["coherent"] {
			t.Fatal("primary scorer does not fill the selection-facing column")
		}
	}
}

// TestPipelineCancellation: a cancelled context aborts the run with
// the context error instead of partial results.
func TestPipelineCancellation(t *testing.T) {
	m := tinyTestModels()
	deck := testDeck(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewPipeline(m).Run(ctx, TargetByName("spike1"), deck); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pipeline returned %v, want context.Canceled", err)
	}
}

// TestModelsScorer exercises the by-name scorer accessor.
func TestModelsScorer(t *testing.T) {
	m := tinyTestModels()
	for _, name := range []string{"cnn3d", "sgcnn", "late", "mid", "coherent"} {
		s, err := m.Scorer(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("Scorer(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := m.Scorer("bogus"); err == nil {
		t.Fatal("unknown scorer name must error")
	}
}
