package deepfusion

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its table/figure through the
// internal/experiments package and prints the rows (repro vs paper) so
// `go test -bench=. -benchmem | tee bench_output.txt` produces the
// full reproduction record. Model-quality experiments share one
// trained bundle and one screening campaign, so the first benchmark
// that needs them pays the training cost.
//
// All learned-model benchmarks run at the Full scale documented in
// EXPERIMENTS.md; the cluster-simulation benchmarks run at paper scale
// (2M poses/job, 125 jobs, 500 nodes) because simulated time is free.

import (
	"fmt"
	"os"
	"testing"

	"deepfusion/internal/experiments"
)

// benchScale is the budget used by the table/figure benchmarks: Full
// for the reproduction record. The CI rot check (`make bench-smoke`,
// one iteration of every benchmark) sets BENCH_SCALE=smoke so that
// verifying the benchmarks still compile and run does not pay the
// full training budget.
var benchScale = func() experiments.Scale {
	if os.Getenv("BENCH_SCALE") == "smoke" {
		return experiments.Smoke
	}
	return experiments.Full
}()

func BenchmarkTable1SearchSpace(b *testing.B) {
	b.ReportAllocs()
	var txt string
	for i := 0; i < b.N; i++ {
		txt = experiments.Table1()
	}
	b.StopTimer()
	fmt.Println(txt)
}

func BenchmarkTable2SGCNNHPO(b *testing.B) {
	b.ReportAllocs()
	var r experiments.HPOResult
	for i := 0; i < b.N; i++ {
		r = experiments.Table2SGCNN(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
	b.ReportMetric(r.BestLoss, "best-val-mse")
}

func BenchmarkTable3CNN3DHPO(b *testing.B) {
	b.ReportAllocs()
	var r experiments.HPOResult
	for i := 0; i < b.N; i++ {
		r = experiments.Table3CNN3D(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
	b.ReportMetric(r.BestLoss, "best-val-mse")
}

func BenchmarkTable4MidFusionHPO(b *testing.B) {
	b.ReportAllocs()
	var r experiments.HPOResult
	for i := 0; i < b.N; i++ {
		r = experiments.Table4MidFusion(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
	b.ReportMetric(r.BestLoss, "best-val-mse")
}

func BenchmarkTable5CoherentHPO(b *testing.B) {
	b.ReportAllocs()
	var r experiments.HPOResult
	for i := 0; i < b.N; i++ {
		r = experiments.Table5Coherent(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
	b.ReportMetric(r.BestLoss, "best-val-mse")
}

func BenchmarkTable6CoreSet(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Table6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table6(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
	for _, row := range r.Rows {
		if row.Model == "Coherent Fusion" {
			b.ReportMetric(row.RMSE, "coherent-rmse")
			b.ReportMetric(row.Pearson, "coherent-pearson")
		}
	}
}

func BenchmarkFigure2DockedPR(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
	b.ReportMetric(r.FusionPearson, "fusion-pearson")
	b.ReportMetric(r.FusionF1, "fusion-f1")
}

func BenchmarkTable7Throughput(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Table7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table7()
	}
	b.StopTimer()
	fmt.Println(r.Text)
	b.ReportMetric(r.SinglePosesSec, "single-job-poses/s")
	b.ReportMetric(r.PeakPosesSec, "peak-poses/s")
}

func BenchmarkFigure4StrongScaling(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure4()
	}
	b.StopTimer()
	fmt.Println(r.Text)
}

func BenchmarkFigure5Scatter(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure5(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
}

func BenchmarkTable8Correlations(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Table8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table8(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
}

func BenchmarkFigure6TargetPR(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure6(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
}

func BenchmarkFigure7TopCompounds(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure7(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
}

func BenchmarkHitRate(b *testing.B) {
	b.ReportAllocs()
	var r experiments.HitRateResult
	for i := 0; i < b.N; i++ {
		r = experiments.HitRate(benchScale)
	}
	b.StopTimer()
	fmt.Println(r.Text)
	b.ReportMetric(100*r.HitRate, "hit-rate-%")
}

func BenchmarkPipelineSpeedups(b *testing.B) {
	b.ReportAllocs()
	var r experiments.Table7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table7()
	}
	b.StopTimer()
	fmt.Printf("Section 4.2 speedups: Fusion vs Vina %.1fx (paper 2.7x), vs MM/GBSA %.0fx (paper 403x)\n\n",
		r.VinaSpeedup, r.GBSASpeedup)
	b.ReportMetric(r.VinaSpeedup, "vs-vina-x")
	b.ReportMetric(r.GBSASpeedup, "vs-mmgbsa-x")
}

// BenchmarkFigure1Architecture renders the paper's architecture figure
// (Figure 1) from the trained Coherent Fusion model.
func BenchmarkFigure1Architecture(b *testing.B) {
	b.ReportAllocs()
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Figure1(benchScale)
	}
	b.StopTimer()
	fmt.Println(out)
}
