// Command prep is the ligand-preparation stage of the screening
// pipeline as a standalone tool — the role MOE, antechamber and Open
// Babel play in the paper's Section 4 workflow (and CDT2Ligand in
// ConveyorLC): read SMILES or SDF compounds, strip salts, reject
// metal complexes, set pH-7 protonation states, embed and minimize 3D
// coordinates, compute the MOE-style descriptor block, and write the
// prepared structures as SDF or PDBQT.
//
// Usage:
//
//	prep [-in file.smi|file.sdf|-] [-out file|-] [-format smiles|sdf]
//	     [-outformat sdf|pdbqt|smiles] [-lipinski] [-seed N] [-v]
//
// With no arguments it reads SMILES lines from stdin and writes SDF to
// stdout. Input lines may carry an optional whitespace-separated name
// after the SMILES string. Failed compounds are skipped with a warning
// so one bad record never aborts a library run (the fault-tolerance
// posture of the paper's pipeline).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"deepfusion/internal/chem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prep: ")
	in := flag.String("in", "-", "input file (- for stdin)")
	out := flag.String("out", "-", "output file (- for stdout)")
	format := flag.String("format", "", "input format: smiles or sdf (default: by extension, else smiles)")
	outFormat := flag.String("outformat", "sdf", "output format: sdf, pdbqt or smiles")
	lipinski := flag.Bool("lipinski", false, "keep only compounds passing Lipinski's rule of five")
	seed := flag.Int64("seed", 7, "embedding seed")
	verbose := flag.Bool("v", false, "log per-compound descriptors")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `prep — standalone ligand preparation (the MOE/antechamber stage)

Reads SMILES or SDF compounds, strips salts, rejects metal complexes,
sets pH-7 protonation states, embeds and minimizes 3D coordinates,
and writes prepared structures as SDF, PDBQT or canonical SMILES.
With no arguments: SMILES lines on stdin, SDF on stdout. Failed
compounds are skipped with a warning, never aborting the run.

Usage: prep [flags]

`)
		flag.PrintDefaults()
	}
	flag.Parse()

	mols, err := readInput(*in, *format)
	if err != nil {
		log.Fatal(err)
	}

	w, closeW, err := openOutput(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer closeW()

	var kept, failed, filtered int
	for i, m := range mols {
		prepared, err := chem.Prepare(m, *seed+int64(i))
		if err != nil {
			failed++
			log.Printf("skipping %s: %v", molName(m, i), err)
			continue
		}
		d := chem.ComputeDescriptors(prepared)
		if *lipinski && !chem.Lipinski(d) {
			filtered++
			if *verbose {
				log.Printf("filtered %s: fails rule of five (MW %.0f, logP %.1f, donors %d, acceptors %d)",
					molName(prepared, i), d.MolWeight, d.LogP, d.HBondDonors, d.HBondAcceptors)
			}
			continue
		}
		if *verbose {
			log.Printf("%s: MW %.1f logP %.2f TPSA %.1f rotors %d rings %d charge %+d",
				molName(prepared, i), d.MolWeight, d.LogP, d.TPSA,
				d.RotatableBonds, d.Rings, d.NetCharge)
		}
		if err := writeMol(w, prepared, *outFormat); err != nil {
			log.Fatal(err)
		}
		kept++
	}
	log.Printf("prepared %d compounds (%d failed, %d filtered)", kept, failed, filtered)
	if kept == 0 && len(mols) > 0 {
		os.Exit(1)
	}
}

func molName(m *chem.Mol, i int) string {
	if m.Name != "" {
		return m.Name
	}
	return fmt.Sprintf("compound-%d", i)
}

// readInput loads compounds from path in the given (or inferred)
// format.
func readInput(path, format string) ([]*chem.Mol, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "" {
		if strings.HasSuffix(strings.ToLower(path), ".sdf") {
			format = "sdf"
		} else {
			format = "smiles"
		}
	}
	switch format {
	case "sdf":
		return chem.ParseSDF(r)
	case "smiles":
		return readSMILESLines(r)
	default:
		return nil, fmt.Errorf("unknown input format %q (want smiles or sdf)", format)
	}
}

// readSMILESLines parses one compound per line: "SMILES [name]".
// Blank lines and #-comments are skipped; unparseable lines are
// reported and skipped.
func readSMILESLines(r io.Reader) ([]*chem.Mol, error) {
	var mols []*chem.Mol
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		m, err := chem.ParseSMILES(fields[0])
		if err != nil {
			log.Printf("line %d: %v", lineNo, err)
			continue
		}
		if len(fields) > 1 {
			m.Name = fields[1]
		}
		mols = append(mols, m)
	}
	return mols, sc.Err()
}

func openOutput(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func writeMol(w io.Writer, m *chem.Mol, format string) error {
	switch format {
	case "sdf":
		return chem.WriteSDF(w, m)
	case "pdbqt":
		return chem.WritePDBQT(w, m)
	case "smiles":
		_, err := fmt.Fprintf(w, "%s %s\n", chem.WriteSMILES(m), m.Name)
		return err
	default:
		return fmt.Errorf("unknown output format %q (want sdf, pdbqt or smiles)", format)
	}
}
