// Command retro is the retrospective analysis of Section 5.2-5.3: it
// reads the sharded h5lite prediction archives written by cmd/screen,
// aggregates the per-pose scores to one prediction per compound (the
// strongest pose per method, as the paper did), reconstructs each
// compound from its library provenance ID, runs the simulated
// experimental assay, and reports the correlation and classification
// quality of every scoring method per target — the repo's equivalent
// of connecting predictions with experimental results.
//
// Usage:
//
//	retro -in shards/ [-threshold 33] [-target protease1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"deepfusion/internal/assay"
	"deepfusion/internal/chem"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/libgen"
	"deepfusion/internal/metrics"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// compoundAgg folds all scored poses of one compound to one value per
// method: maximum predicted pK for Fusion, minimum (most negative)
// energy for Vina and MM/GBSA.
type compoundAgg struct {
	fusion, vina, gbsa float64
	poses              int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("retro: ")
	inDir := flag.String("in", "", "directory of prediction shards from cmd/screen (required)")
	threshold := flag.Float64("threshold", 33, "inhibition %% separating actives from inactives")
	only := flag.String("target", "", "restrict the analysis to one binding site")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `retro — retrospective analysis of written prediction shards

Reads the sharded h5lite archives produced by cmd/screen (or a
finished cmd/campaign shard directory), folds pose scores to one
prediction per compound, reruns the simulated experimental assay from
each compound's provenance ID, and reports per-target correlation and
classification quality for every scoring method (paper Section 5.2-5.3).

Usage: retro -in shards/ [flags]

`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *inDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	byTarget, err := loadShards(*inDir)
	if err != nil {
		log.Fatal(err)
	}
	if len(byTarget) == 0 {
		log.Fatal("no predictions found in ", *inDir)
	}

	names := make([]string, 0, len(byTarget))
	for name := range byTarget {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if *only != "" && name != *only {
			continue
		}
		tgt := target.ByName(name)
		if tgt == nil {
			log.Printf("skipping unknown target %q", name)
			continue
		}
		analyze(tgt, byTarget[name], *threshold)
	}
}

// loadShards reads every .h5l file under dir through the screen
// package's shard reader and merges the per-target pose predictions.
func loadShards(dir string) (map[string]map[string]*compoundAgg, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.h5l"))
	if err != nil {
		return nil, err
	}
	var files []*h5lite.File
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		file, err := h5lite.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		files = append(files, file)
	}
	preds, err := screen.ReadShards(files)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]*compoundAgg{}
	for _, pr := range preds {
		m := out[pr.Target]
		if m == nil {
			m = map[string]*compoundAgg{}
			out[pr.Target] = m
		}
		a := m[pr.CompoundID]
		if a == nil {
			a = &compoundAgg{fusion: math.Inf(-1), vina: math.Inf(1), gbsa: math.Inf(1)}
			m[pr.CompoundID] = a
		}
		a.fusion = math.Max(a.fusion, pr.Fusion)
		a.vina = math.Min(a.vina, pr.Vina)
		a.gbsa = math.Min(a.gbsa, pr.MMGBSA)
		a.poses++
	}
	return out, nil
}

// analyze joins predictions with the simulated assay and prints the
// Table 8 / Figure 6 style summary for one target.
func analyze(tgt *target.Pocket, agg map[string]*compoundAgg, threshold float64) {
	as := assay.ForTarget(tgt)
	ids := make([]string, 0, len(agg))
	for id := range agg {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var fus, vin, gbs, inh []float64
	var skipped int
	for _, id := range ids {
		mol, err := molByID(id)
		if err != nil {
			skipped++
			continue
		}
		a := agg[id]
		fus = append(fus, a.fusion)
		// Use |E| so that "bigger = stronger binder" for every method,
		// as the paper's Table 8 does.
		vin = append(vin, math.Abs(a.vina))
		gbs = append(gbs, math.Abs(a.gbsa))
		inh = append(inh, as.Inhibition(mol))
	}
	if len(inh) == 0 {
		log.Printf("%s: no compounds could be reconstructed (%d skipped)", tgt.Name, skipped)
		return
	}

	fmt.Printf("\n=== %s: %d compounds (%s at %.0f uM, %d unresolvable IDs skipped)\n",
		tgt.Name, len(inh), as.Kind, as.ConcentrationUM, skipped)

	// >1% inhibition subset, per the paper's Table 8.
	var f1p, v1p, g1p, i1p []float64
	labels := make([]bool, len(inh))
	actives := 0
	for i, v := range inh {
		if v > 1 {
			f1p = append(f1p, fus[i])
			v1p = append(v1p, vin[i])
			g1p = append(g1p, gbs[i])
			i1p = append(i1p, v)
		}
		if v > threshold {
			labels[i] = true
			actives++
		}
	}
	fmt.Printf("%d compounds with >1%% inhibition; %d actives at the %.0f%% threshold\n",
		len(i1p), actives, threshold)

	fmt.Printf("%-18s  %9s  %9s  %7s  %7s\n", "method", "PearsonR", "SpearmanR", "bestF1", "kappa")
	report := func(name string, scores []float64, sub []float64) {
		var pr, sr float64
		if len(i1p) >= 3 {
			pr = metrics.Pearson(sub, i1p)
			sr = metrics.Spearman(sub, i1p)
		}
		f1, thr := metrics.BestF1(scores, labels)
		pred := make([]bool, len(scores))
		for i, s := range scores {
			pred[i] = s >= thr
		}
		kappa := metrics.CohenKappa(pred, labels)
		fmt.Printf("%-18s  %9.3f  %9.3f  %7.3f  %7.3f\n", name, pr, sr, f1, kappa)
	}
	report("Vina", vin, v1p)
	report("MM/GBSA", gbs, g1p)
	report("Coherent Fusion", fus, f1p)
}

// molByID reconstructs a compound from its "library:index" provenance
// ID through the library's native format and preparation pipeline.
func molByID(id string) (*chem.Mol, error) {
	name, idxStr, ok := strings.Cut(id, ":")
	if !ok {
		return nil, fmt.Errorf("compound ID %q has no library prefix", id)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		return nil, fmt.Errorf("compound ID %q: %w", id, err)
	}
	for _, lib := range libgen.All() {
		if lib.Name == name {
			return lib.Mol(idx)
		}
	}
	return nil, fmt.Errorf("unknown library %q", name)
}
