// Command train builds the synthetic PDBbind corpus, trains the
// 3D-CNN, SG-CNN and the three Fusion variants exactly as the paper's
// procedure prescribes, evaluates all of them on the held-out core
// set, and optionally saves the Coherent Fusion weights to a
// checkpoint file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"deepfusion/internal/experiments"
	"deepfusion/internal/fusion"
	"deepfusion/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	full := flag.Bool("full", false, "use the full benchmark budget (minutes) instead of the smoke budget (seconds)")
	ckpt := flag.String("checkpoint", "", "write Coherent Fusion weights to this file")
	flag.Parse()

	scale := experiments.Smoke
	if *full {
		scale = experiments.Full
	}
	fmt.Println("training 3D-CNN, SG-CNN, Late/Mid/Coherent Fusion on the synthetic PDBbind corpus...")
	res := experiments.Table6(scale)
	fmt.Println(res.Text)

	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		coherent := experiments.Coherent(scale)
		params := append(append([]*nn.Param{}, coherent.FusionParams()...), headParams(coherent)...)
		if err := nn.SaveParams(f, params); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coherent fusion checkpoint written to %s\n", *ckpt)
	}
}

func headParams(f *fusion.Fusion) []*nn.Param {
	return append(append([]*nn.Param{}, f.CNN.Params()...), f.SG.Params()...)
}
