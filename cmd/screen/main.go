// Command screen runs the high-throughput virtual screening funnel for
// one SARS-CoV-2 target: draw compounds from the four libraries,
// prepare and dock them, score every pose with the distributed job —
// under any scorer of the paper's method comparison — rank compounds
// with the selection cost function and write the prediction archive as
// sharded h5lite files.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"deepfusion/internal/experiments"
	"deepfusion/internal/libgen"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("screen: ")
	targetName := flag.String("target", "protease1", "binding site: protease1 | protease2 | spike1 | spike2")
	scorer := flag.String("scorer", "coherent", "scoring method: "+strings.Join(experiments.ScorerNames(), "|"))
	n := flag.Int("n", 24, "compounds to screen")
	top := flag.Int("top", 10, "compounds to select for experiment")
	outDir := flag.String("out", "", "directory for h5lite prediction shards (optional)")
	shards := flag.Int("shards", 4, "output shards (parallel writers)")
	loaders := flag.Int("loaders", 0, "data loaders per rank — the featurization/inference balance (0 = engine default)")
	precision := flag.String("precision", "f64", "engine arithmetic: f64 (reference) or f32 (fast path)")
	full := flag.Bool("full", false, "use the full model-training budget")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `screen — one-shot virtual screening funnel for a single target

Draws a compound deck from the four libraries, prepares and docks it,
scores every pose with the distributed job under the chosen scorer
(any fusion model family, the Vina or MM/GBSA physics surrogate, or
the consensus of coherent+vina+mmgbsa), ranks compounds with the
selection cost function, and optionally writes the predictions as
sharded h5lite archives (readable by cmd/retro).
For durable, resumable multi-target runs use cmd/campaign instead.

Usage: screen [flags]

`)
		flag.PrintDefaults()
	}
	flag.Parse()

	tgt := target.ByName(*targetName)
	if tgt == nil {
		log.Fatalf("unknown target %q", *targetName)
	}
	scale := experiments.Smoke
	if *full {
		scale = experiments.Full
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("drawing %d unique compounds from %d libraries...\n", *n, len(libgen.All()))
	mols := libgen.Draw(libgen.All(), *n)

	fmt.Printf("building scorer %q (scale=%s) and docking against %s...\n", *scorer, scaleName(scale), tgt.Name)
	sc, err := experiments.ScorerByName(scale, *scorer)
	if err != nil {
		log.Fatal(err)
	}
	poses, problems, err := screen.DockCompounds(ctx, tgt, mols, 5, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("docked %d poses (%d compounds rejected)\n", len(poses), len(problems))
	for _, p := range problems {
		fmt.Printf("  rejected %s\n", p)
	}

	jobOpts := screen.DefaultJobOptions()
	if *loaders > 0 {
		jobOpts.LoadersPerRank = *loaders
	}
	jobOpts.Precision = screen.Precision(*precision)
	preds, attempts, err := screen.RunJobWithRetry(ctx, sc, tgt, poses, jobOpts, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s job complete after %d attempt(s): %d pose scores\n", sc.Name(), attempts, len(preds))

	scores := screen.AggregateByCompound(preds)
	selected := screen.SelectForExperiment(scores, screen.DefaultCostWeights(), *top)
	fmt.Printf("\ntop %d candidates for %s (scorer %s):\n", len(selected), tgt.Name, sc.Name())
	fmt.Printf("%-28s  %8s  %10s  %10s\n", "compound", "score", "vina", "poses")
	for _, s := range selected {
		fmt.Printf("%-28s  %8.2f  %10.2f  %10d\n", s.CompoundID, s.Fusion, s.Vina, s.NumPoses)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		files := screen.WriteShards(preds, *shards)
		for i, f := range files {
			path := filepath.Join(*outDir, fmt.Sprintf("predictions_%03d.h5l", i))
			w, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := f.Write(w); err != nil {
				log.Fatal(err)
			}
			w.Close()
		}
		fmt.Printf("\nwrote %d prediction shards to %s\n", len(files), *outDir)
	}
}

func scaleName(s experiments.Scale) string {
	if s == experiments.Full {
		return "full"
	}
	return "smoke"
}
