// Command screen runs the high-throughput virtual screening funnel for
// one SARS-CoV-2 target: draw compounds from the four libraries,
// prepare and dock them, score every pose with the distributed
// Coherent Fusion job, rank compounds with the selection cost function
// and write the prediction archive as sharded h5lite files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"deepfusion/internal/experiments"
	"deepfusion/internal/libgen"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("screen: ")
	targetName := flag.String("target", "protease1", "binding site: protease1 | protease2 | spike1 | spike2")
	n := flag.Int("n", 24, "compounds to screen")
	top := flag.Int("top", 10, "compounds to select for experiment")
	outDir := flag.String("out", "", "directory for h5lite prediction shards (optional)")
	shards := flag.Int("shards", 4, "output shards (parallel writers)")
	full := flag.Bool("full", false, "use the full model-training budget")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `screen — one-shot virtual screening funnel for a single target

Draws a compound deck from the four libraries, prepares and docks it,
scores every pose with the distributed Coherent Fusion job, ranks
compounds with the selection cost function, and optionally writes the
predictions as sharded h5lite archives (readable by cmd/retro).
For durable, resumable multi-target runs use cmd/campaign instead.

Usage: screen [flags]

`)
		flag.PrintDefaults()
	}
	flag.Parse()

	tgt := target.ByName(*targetName)
	if tgt == nil {
		log.Fatalf("unknown target %q", *targetName)
	}
	scale := experiments.Smoke
	if *full {
		scale = experiments.Full
	}

	fmt.Printf("drawing %d unique compounds from %d libraries...\n", *n, len(libgen.All()))
	mols := libgen.Draw(libgen.All(), *n)

	fmt.Printf("training models (scale=%v) and docking against %s...\n", scaleName(scale), tgt.Name)
	coherent := experiments.Coherent(scale)
	poses, skipped := screen.DockCompounds(tgt, mols, 5, 99)
	fmt.Printf("docked %d poses (%d compounds skipped)\n", len(poses), skipped)

	jobOpts := screen.DefaultJobOptions()
	jobOpts.Voxel = coherent.CNN.Cfg.Voxel
	preds, attempts, err := screen.RunJobWithRetry(coherent, tgt, poses, jobOpts, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fusion job complete after %d attempt(s): %d pose scores\n", attempts, len(preds))

	scores := screen.AggregateByCompound(preds)
	selected := screen.SelectForExperiment(scores, screen.DefaultCostWeights(), *top)
	fmt.Printf("\ntop %d candidates for %s:\n", len(selected), tgt.Name)
	fmt.Printf("%-28s  %8s  %10s  %10s\n", "compound", "pred pK", "vina", "poses")
	for _, s := range selected {
		fmt.Printf("%-28s  %8.2f  %10.2f  %10d\n", s.CompoundID, s.Fusion, s.Vina, s.NumPoses)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		files := screen.WriteShards(preds, *shards)
		for i, f := range files {
			path := filepath.Join(*outDir, fmt.Sprintf("predictions_%03d.h5l", i))
			w, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := f.Write(w); err != nil {
				log.Fatal(err)
			}
			w.Close()
		}
		fmt.Printf("\nwrote %d prediction shards to %s\n", len(files), *outDir)
	}
}

func scaleName(s experiments.Scale) string {
	if s == experiments.Full {
		return "full"
	}
	return "smoke"
}
