// Command serve runs the resident screening service: one warm engine
// — scorers loaded once, per-target pocket prefeatures cached,
// per-worker fusion workspaces hot — fronted by an HTTP+JSON API that
// coalesces small client submissions into full inference batches.
//
// Usage:
//
//	serve -addr :8044 [-dir DIR] [-scorers a,b,c] [-precision f64|f32]
//	      [-batch N] [-workers N] [-max-wait D] [-queue N]
//	      [-max-targets N] [-max-poses N] [-seed N] [-full]
//
// Endpoints:
//
//	POST /v1/submit               {"target": ..., "compounds": [...]}
//	GET  /v1/requests/{id}         request status
//	GET  /v1/requests/{id}/results scores (?wait=1 long-polls)
//	GET  /v1/status               engine + batcher statistics
//	GET  /healthz                 liveness (503 while draining)
//
// SIGTERM/SIGINT drain gracefully: new submissions get 503, every
// partial batch is flushed and scored, every in-flight request is
// persisted (with -dir) before the listener closes. Overload returns
// 429 with a Retry-After hint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deepfusion/internal/experiments"
	"deepfusion/internal/screen"
	"deepfusion/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	addr := flag.String("addr", ":8044", "listen address")
	dir := flag.String("dir", "", "persistence directory for request records + result shards (empty: in-memory only)")
	scorers := flag.String("scorers", "coherent", "comma-separated scorer set, primary first: "+strings.Join(experiments.ScorerNames(), "|"))
	precision := flag.String("precision", "f64", "engine arithmetic: f64 (reference) or f32 (fast path)")
	batch := flag.Int("batch", 8, "poses per inference batch — the cross-request coalescing target")
	workers := flag.Int("workers", 2, "concurrent scoring sessions")
	maxWait := flag.Duration("max-wait", 25*time.Millisecond, "cross-request batching deadline: the longest a pose waits for co-batching")
	queue := flag.Int("queue", 32, "admission bound, in full batches of admitted-but-unscored poses")
	maxTargets := flag.Int("max-targets", 4, "per-target prefeature cache capacity (LRU beyond it)")
	maxPoses := flag.Int("max-poses", 256, "largest accepted submission, in poses")
	seed := flag.Int64("seed", 1, "docking seed for compound submissions")
	full := flag.Bool("full", false, "train the scoring model at the full budget")
	flag.Parse()

	scale := experiments.Smoke
	scaleName := "smoke"
	if *full {
		scale = experiments.Full
		scaleName = "full"
	}
	fmt.Printf("building scorer set %q (scale=%s)...\n", *scorers, scaleName)
	set, err := experiments.ScorersFromSpec(scale, *scorers)
	if err != nil {
		log.Fatal(err)
	}

	cfg := serve.DefaultConfig(set)
	cfg.Job.BatchSize = *batch
	cfg.Job.Precision = screen.Precision(*precision)
	cfg.Job.Seed = *seed
	cfg.Workers = *workers
	cfg.MaxWait = *maxWait
	cfg.QueueDepth = *queue
	cfg.MaxTargets = *maxTargets
	cfg.MaxPosesPerRequest = *maxPoses
	cfg.Dir = *dir

	engine, err := serve.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(engine, *addr)

	// Graceful drain: first signal refuses new submissions, flushes
	// partial batches, scores and persists everything admitted, then
	// closes the listener. A second signal kills the process.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Println("\ndraining: refusing new submissions, scoring in-flight work...")
		go func() {
			<-sigs
			log.Fatal("second signal: exiting without drain")
		}()
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	fmt.Printf("screening service on %s (batch=%d, max-wait=%s, workers=%d, queue=%d batches)\n",
		*addr, *batch, *maxWait, *workers, *queue)
	if err := srv.HTTP.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
