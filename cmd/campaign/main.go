// Command campaign drives the durable multi-target screening
// orchestrator: the production layer that ran the paper's months-long
// four-target SARS-CoV-2 campaign as many concurrent, restartable
// Fusion jobs. A campaign lives in a directory holding a JSON
// manifest plus compound-keyed h5lite shards; killing the process at
// any point loses at most the in-flight chunks, and `resume` picks up
// exactly where the run stopped.
//
// Usage:
//
//	campaign run    -dir DIR [-targets a,b] [-scorers a,b,c] [-n N]
//	                [-chunk N] [-workers N] [-loaders N] [-top N]
//	                [-precision f64|f32] [-failprob P] [-seed N] [-full]
//	campaign resume -dir DIR [-precision f64|f32]
//	campaign status -dir DIR
//
// `run` creates the campaign (refusing to clobber an existing one),
// builds the requested scorer set (training models at the requested
// scale) and executes every work unit. `resume` reloads the manifest,
// deterministically rebuilds the same scorer set from the recorded
// names and scale, skips completed chunks and re-runs the rest —
// refusing to resume under a different scorer set. `status` prints
// per-target progress and the manifest's scorer set without touching
// models or compound libraries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"deepfusion/internal/campaign"
	"deepfusion/internal/experiments"
)

func usage() {
	fmt.Fprintf(os.Stderr, `campaign — durable, resumable multi-target screening runs

Subcommands:
  run     create a campaign directory and run it to completion
  resume  continue a killed, interrupted or failure-stalled campaign
  status  print per-target unit progress from the manifest

Run 'campaign <subcommand> -h' for the subcommand's flags.

A campaign directory holds manifest.json plus shards/*.h5l. Kill the
process at any time; 'campaign resume -dir DIR' skips completed
chunks and re-runs only in-flight or failed ones, producing the same
selections as an uninterrupted run.
`)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	switch flag.Arg(0) {
	case "run":
		cmdRun(flag.Args()[1:])
	case "resume":
		cmdResume(flag.Args()[1:])
	case "status":
		cmdStatus(flag.Args()[1:])
	default:
		log.Printf("unknown subcommand %q", flag.Arg(0))
		usage()
		os.Exit(2)
	}
}

// interruptibleContext cancels on SIGINT/SIGTERM. The context is
// threaded through docking and the scoring engine, so a ctrl-C stops
// the campaign within one inference batch and leaves a clean resume
// point (interrupted units stay in-flight and re-run on resume).
func interruptibleContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required; must not already hold a campaign)")
	targets := fs.String("targets", "", "comma-separated binding sites (default: all four)")
	scorers := fs.String("scorers", "coherent", "comma-separated scorer set, primary first: "+strings.Join(experiments.ScorerNames(), "|"))
	n := fs.Int("n", 48, "compounds in the screening deck")
	chunk := fs.Int("chunk", 12, "compounds per work unit")
	workers := fs.Int("workers", 2, "concurrently running units")
	loaders := fs.Int("loaders", 0, "data loaders per rank inside each unit's scoring job — the featurization/inference balance, recorded in the manifest (0 = engine default)")
	precision := fs.String("precision", "f64", "engine arithmetic: f64 (reference) or f32 (fast path), recorded in the manifest")
	top := fs.Int("top", 8, "compounds selected per target")
	failprob := fs.Float64("failprob", 0, "injected per-job failure probability (paper: ~0.03 at 4 nodes)")
	seed := fs.Int64("seed", 1, "campaign seed (docking + failure dice; never the scores)")
	full := fs.Bool("full", false, "train the scoring model at the full budget")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("run: -dir is required")
	}

	cfg := campaign.DefaultConfig()
	if *targets != "" {
		cfg.Targets = strings.Split(*targets, ",")
	}
	cfg.Compounds = *n
	cfg.ChunkSize = *chunk
	cfg.Workers = *workers
	if *loaders > 0 {
		cfg.Job.LoadersPerRank = *loaders
	}
	cfg.Job.Precision = campaign.Precision(*precision)
	cfg.TopN = *top
	cfg.Job.FailureProb = *failprob
	cfg.Seed = *seed
	cfg.ModelScale = "smoke"
	if *full {
		cfg.ModelScale = "full"
	}

	names := strings.Split(*scorers, ",")
	fmt.Printf("building scorer set %v (scale=%s)...\n", names, cfg.ModelScale)
	set, err := experiments.ScorersByName(scaleOf(cfg.ModelScale), names)
	if err != nil {
		log.Fatal(err)
	}

	c, err := campaign.New(*dir, cfg, set)
	if err != nil {
		log.Fatal(err)
	}
	execute(c)
}

func cmdResume(args []string) {
	fs := flag.NewFlagSet("campaign resume", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory to resume (required)")
	precision := fs.String("precision", "", "engine arithmetic the resume expects (f64|f32); must match the manifest (default: accept the manifest's)")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("resume: -dir is required")
	}
	st, err := campaign.ReadStatus(*dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := campaign.ReadConfig(*dir)
	if err != nil {
		log.Fatal(err)
	}
	scale := "smoke"
	if cfg.ModelScale != "" {
		scale = cfg.ModelScale
	}
	fmt.Printf("resuming %s: %d/%d units done, rebuilding scorer set %v (scale=%s, precision=%s)...\n",
		st.Name, st.Done, st.Total, cfg.Scorers, scale, st.Precision)
	set, err := experiments.ScorersByName(scaleOf(scale), cfg.Scorers)
	if err != nil {
		log.Fatal(err)
	}
	var opts []campaign.LoadOption
	if *precision != "" {
		opts = append(opts, campaign.WithPrecision(campaign.Precision(*precision)))
	}
	c, err := campaign.Load(*dir, set, opts...)
	if err != nil {
		log.Fatal(err)
	}
	execute(c)
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required)")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("status: -dir is required")
	}
	st, err := campaign.ReadStatus(*dir)
	if err != nil {
		log.Fatal(err)
	}
	printStatus(st)
}

// execute runs (or continues) a campaign and prints progress, the
// final selections and the two-stage confirmation summary.
func execute(c *campaign.Campaign) {
	ctx, stop := interruptibleContext()
	defer stop()
	c.OnUnitDone = func(u campaign.UnitRecord) {
		st := c.Status()
		fmt.Printf("  unit %-18s done: %4d poses (%d skipped, %d attempt(s))  [%d/%d]\n",
			u.ID, u.Poses, u.Skipped, u.Attempts, st.Done, st.Total)
	}
	res, err := c.Run(ctx)
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			fmt.Printf("\ninterrupted — resume with: campaign resume -dir %s\n", c.Dir())
			os.Exit(3)
		}
		log.Fatal(err)
	}
	fmt.Println()
	for _, tr := range res.PerTarget {
		fmt.Printf("%s: screened %d compounds, selected %d (primary hits %d, confirmed %d)\n",
			tr.Target, tr.Screened, len(tr.Selections), tr.PrimaryHits, tr.Confirmed)
		for _, s := range tr.Selections {
			fmt.Printf("  %-28s  pK %5.2f  vina %7.2f  combined %6.2f  inhib %5.1f%%\n",
				s.CompoundID, s.Fusion, s.Vina, s.Combined, s.Inhibition)
		}
	}
	fmt.Printf("\ncampaign complete: %d tested, %d primary hits (%.1f%%), %d confirmed\n",
		res.Tested, res.Hits, 100*res.HitRate(), res.Confirmed)
}

func printStatus(st campaign.Status) {
	fmt.Printf("campaign %s (%s)\n", st.Name, st.Dir)
	fmt.Printf("scorers: %s\n", strings.Join(st.Scorers, ", "))
	fmt.Printf("precision: %s\n", st.Precision)
	fmt.Printf("deck: %d compounds; units: %d done, %d in-flight, %d failed, %d pending of %d; poses scored: %d\n",
		st.DeckSize, st.Done, st.InFlight, st.Failed, st.Pending, st.Total, st.Poses)
	for _, ts := range st.PerTarget {
		fmt.Printf("  %-12s %d/%d units  %6d poses\n", ts.Target, ts.Done, ts.Total, ts.Poses)
	}
	if st.Finalized {
		fmt.Println("state: finalized (selections recorded in manifest)")
	} else if st.Done == st.Total {
		fmt.Println("state: scored, awaiting finalize (run resume)")
	} else {
		fmt.Println("state: in progress (run resume to continue)")
	}
}

func scaleOf(name string) experiments.Scale {
	if name == "full" {
		return experiments.Full
	}
	return experiments.Smoke
}
