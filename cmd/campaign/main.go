// Command campaign drives the durable multi-target screening
// orchestrator: the production layer that ran the paper's months-long
// four-target SARS-CoV-2 campaign as many concurrent, restartable
// Fusion jobs. A campaign lives in a directory holding a JSON
// manifest plus compound-keyed h5lite shards; killing the process at
// any point loses at most the in-flight chunks, and `resume` picks up
// exactly where the run stopped.
//
// Usage:
//
//	campaign run    -dir DIR [-targets a,b] [-scorers a,b,c] [-n N]
//	                [-chunk N] [-workers N] [-loaders N] [-top N]
//	                [-precision f64|f32] [-failprob P] [-seed N] [-full]
//	                [-distributed] [-lease-ttl D] [-listen ADDR]
//	campaign resume -dir DIR [-precision f64|f32] [-distributed]
//	                [-workers N] [-lease-ttl D] [-listen ADDR]
//	campaign worker -dir DIR [-id ID] [-lease-ttl D]
//	campaign worker -coordinator URL [-scratch DIR] [-id ID] [-lease-ttl D]
//	campaign status -dir DIR [-json]
//	campaign status -coordinator URL [-json]
//	campaign fsck   -dir DIR [-repair] [-json]
//
// `run` creates the campaign (refusing to clobber an existing one),
// builds the requested scorer set (training models at the requested
// scale) and executes every work unit. `resume` reloads the manifest,
// deterministically rebuilds the same scorer set from the recorded
// names and scale, skips completed chunks and re-runs the rest —
// refusing to resume under a different scorer set. `status` prints
// per-target progress, the manifest's scorer set and (for distributed
// runs) per-worker liveness without touching models or compound
// libraries.
//
// With -distributed, run/resume start the multi-process runtime
// instead of the in-process worker pool: the coordinator runs in this
// process (sole manifest writer, lease expiry, finalization) and
// forks -workers N worker processes over the `worker` subcommand,
// each claiming (target, chunk) units through the campaign
// directory's lease store. `campaign worker -dir DIR` is the attach
// mode: run it by hand — on this host or any host sharing the
// directory — to join extra workers to a live campaign
// (-distributed -workers 0 runs a coordinator that relies entirely
// on attached workers). Killing a worker at any instant loses
// nothing: its leases expire and the coordinator reassigns the units,
// with final selections byte-identical to an uninterrupted
// single-process run.
//
// With -listen the coordinator additionally serves the lease protocol
// over HTTP, so workers on hosts that do NOT share the campaign
// directory can join: `campaign worker -coordinator http://host:8765`
// mirrors the manifest into a local scratch directory, claims units
// over the wire, and ships finished shard bytes back before acking.
// Transient network faults are retried with capped backoff; the
// epoch fence makes every retried ack fold exactly once, so the
// byte-identity guarantee holds across network partitions too.
//
// Every shard is a checksummed h5lite v2 file and every fold point
// verifies integrity before trusting bytes, so torn writes, bit flips
// and truncation are detected — corrupt shards are quarantined (never
// deleted) and their units re-run automatically under a bounded
// repair budget. `campaign fsck -dir DIR` walks a campaign directory
// offline and reports damaged or unaccounted files; add -repair to
// quarantine the damage and re-queue the affected units for the next
// resume. `status` surfaces the lifetime corruption/repair counters.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/campaign/dispatch"
	"deepfusion/internal/campaign/dispatchhttp"
	"deepfusion/internal/cluster"
	"deepfusion/internal/experiments"
)

func usage() {
	fmt.Fprintf(os.Stderr, `campaign — durable, resumable multi-target screening runs

Subcommands:
  run     create a campaign directory and run it to completion
  resume  continue a killed, interrupted or failure-stalled campaign
  worker  attach one worker process to a distributed campaign
  status  print per-target unit progress (and worker liveness) from the manifest
  fsck    verify every shard's checksums offline; -repair quarantines damage and re-queues units

Run 'campaign <subcommand> -h' for the subcommand's flags.

A campaign directory holds manifest.json plus shards/*.h5l (and, for
distributed runs, claims/ + results/). Kill the process at any time;
'campaign resume -dir DIR' skips completed chunks and re-runs only
in-flight or failed ones, producing the same selections as an
uninterrupted run. With -distributed the campaign runs as a
coordinator plus N worker processes claiming chunks through a
lease-aware store; killed workers' units are reassigned on lease
expiry with the same byte-identity guarantee. Add -listen ADDR to
also serve the lease protocol over HTTP, and join workers from hosts
with no shared filesystem via
'campaign worker -coordinator http://host:port'.
`)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	switch flag.Arg(0) {
	case "run":
		cmdRun(flag.Args()[1:])
	case "resume":
		cmdResume(flag.Args()[1:])
	case "worker":
		cmdWorker(flag.Args()[1:])
	case "status":
		cmdStatus(flag.Args()[1:])
	case "fsck":
		cmdFsck(flag.Args()[1:])
	default:
		log.Printf("unknown subcommand %q", flag.Arg(0))
		usage()
		os.Exit(2)
	}
}

// interruptibleContext cancels on SIGINT/SIGTERM. The context is
// threaded through docking and the scoring engine, so a ctrl-C stops
// the campaign within one inference batch and leaves a clean resume
// point (interrupted units stay in-flight and re-run on resume).
func interruptibleContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required; must not already hold a campaign)")
	targets := fs.String("targets", "", "comma-separated binding sites (default: all four)")
	scorers := fs.String("scorers", "coherent", "comma-separated scorer set, primary first: "+strings.Join(experiments.ScorerNames(), "|"))
	n := fs.Int("n", 48, "compounds in the screening deck")
	chunk := fs.Int("chunk", 12, "compounds per work unit")
	workers := fs.Int("workers", 2, "concurrently running units")
	loaders := fs.Int("loaders", 0, "data loaders per rank inside each unit's scoring job — the featurization/inference balance, recorded in the manifest (0 = engine default)")
	precision := fs.String("precision", "f64", "engine arithmetic: f64 (reference) or f32 (fast path), recorded in the manifest")
	top := fs.Int("top", 8, "compounds selected per target")
	failprob := fs.Float64("failprob", 0, "injected per-job failure probability (paper: ~0.03 at 4 nodes)")
	seed := fs.Int64("seed", 1, "campaign seed (docking + failure dice; never the scores)")
	full := fs.Bool("full", false, "train the scoring model at the full budget")
	distributed := fs.Bool("distributed", false, "run as coordinator + forked worker processes claiming chunks through the lease store (0 workers: coordinator only, attach workers by hand)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "distributed: heartbeat TTL before a worker's units are reassigned")
	listen := fs.String("listen", "", "distributed: also serve the lease protocol over HTTP on this address (host:port) so workers on other hosts can join with -coordinator")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("run: -dir is required")
	}

	cfg := campaign.DefaultConfig()
	if *targets != "" {
		cfg.Targets = strings.Split(*targets, ",")
	}
	cfg.Compounds = *n
	cfg.ChunkSize = *chunk
	cfg.Workers = *workers
	if *loaders > 0 {
		cfg.Job.LoadersPerRank = *loaders
	}
	cfg.Job.Precision = campaign.Precision(*precision)
	cfg.TopN = *top
	cfg.Job.FailureProb = *failprob
	cfg.Seed = *seed
	cfg.ModelScale = "smoke"
	if *full {
		cfg.ModelScale = "full"
	}

	fmt.Printf("building scorer set %q (scale=%s)...\n", *scorers, cfg.ModelScale)
	set, err := experiments.ScorersFromSpec(scaleOf(cfg.ModelScale), *scorers)
	if err != nil {
		log.Fatal(err)
	}

	c, err := campaign.New(*dir, cfg, set)
	if err != nil {
		log.Fatal(err)
	}
	if *distributed {
		executeDistributed(c, *workers, *leaseTTL, *listen)
		return
	}
	if *listen != "" {
		log.Fatal("run: -listen requires -distributed (the HTTP server fronts the coordinator's lease store)")
	}
	execute(c)
}

func cmdResume(args []string) {
	fs := flag.NewFlagSet("campaign resume", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory to resume (required)")
	precision := fs.String("precision", "", "engine arithmetic the resume expects (f64|f32); must match the manifest (default: accept the manifest's)")
	distributed := fs.Bool("distributed", false, "resume as coordinator + forked worker processes")
	workers := fs.Int("workers", 2, "distributed: worker processes to fork (0: coordinator only)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "distributed: heartbeat TTL before a worker's units are reassigned")
	listen := fs.String("listen", "", "distributed: also serve the lease protocol over HTTP on this address (host:port) so workers on other hosts can join with -coordinator")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("resume: -dir is required")
	}
	st, err := campaign.ReadStatus(*dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := campaign.ReadConfig(*dir)
	if err != nil {
		log.Fatal(err)
	}
	scale := "smoke"
	if cfg.ModelScale != "" {
		scale = cfg.ModelScale
	}
	fmt.Printf("resuming %s: %d/%d units done, rebuilding scorer set %v (scale=%s, precision=%s)...\n",
		st.Name, st.Done, st.Total, cfg.Scorers, scale, st.Precision)
	set, err := experiments.ScorersByName(scaleOf(scale), cfg.Scorers)
	if err != nil {
		log.Fatal(err)
	}
	var opts []campaign.LoadOption
	if *precision != "" {
		opts = append(opts, campaign.WithPrecision(campaign.Precision(*precision)))
	}
	c, err := campaign.Load(*dir, set, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *distributed {
		executeDistributed(c, *workers, *leaseTTL, *listen)
		return
	}
	if *listen != "" {
		log.Fatal("resume: -listen requires -distributed (the HTTP server fronts the coordinator's lease store)")
	}
	execute(c)
}

// cmdWorker attaches one worker process to an existing campaign: it
// rebuilds the manifest's scorer set deterministically, opens the
// campaign read-only (workers never write the manifest) and runs the
// claim → execute → ack loop until every unit settles. With -dir the
// lease store is the shared campaign directory; with -coordinator the
// worker needs no shared filesystem at all — it mirrors the manifest
// from the coordinator's HTTP server into a local scratch directory,
// claims units over the wire, and ships shard bytes back before
// acking.
func cmdWorker(args []string) {
	fs := flag.NewFlagSet("campaign worker", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory to attach to (shared-filesystem mode)")
	coordinator := fs.String("coordinator", "", "coordinator base URL, e.g. http://host:8765 (multi-host mode; no shared filesystem needed)")
	scratch := fs.String("scratch", "", "multi-host: local scratch directory for the mirrored manifest and staged shards (default: a fresh temp dir)")
	id := fs.String("id", "", "worker ID recorded in claims and the manifest (default: host-pid)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "heartbeat TTL; must match the coordinator's")
	fs.Parse(args)
	if (*dir == "") == (*coordinator == "") {
		log.Fatal("worker: exactly one of -dir (shared filesystem) or -coordinator URL (multi-host) is required")
	}

	campDir := *dir
	var store campaign.Dispatcher
	var client *dispatchhttp.Client
	if *coordinator != "" {
		local := *scratch
		if local == "" {
			tmp, err := os.MkdirTemp("", "campaign-worker-*")
			if err != nil {
				log.Fatal(err)
			}
			local = tmp
		}
		cl, err := dispatchhttp.NewClient(*coordinator, local, dispatchhttp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mirroring campaign from %s into %s...\n", *coordinator, local)
		if err := cl.MirrorCampaign(); err != nil {
			log.Fatal(err)
		}
		campDir = local
		store = cl
		client = cl
	} else {
		store = campaign.NewDispatchStore(campDir, nil)
	}

	cfg, err := campaign.ReadConfig(campDir)
	if err != nil {
		log.Fatal(err)
	}
	scale := "smoke"
	if cfg.ModelScale != "" {
		scale = cfg.ModelScale
	}
	fmt.Printf("worker attaching to %s: rebuilding scorer set %v (scale=%s)...\n", campDir, cfg.Scorers, scale)
	set, err := experiments.ScorersByName(scaleOf(scale), cfg.Scorers)
	if err != nil {
		log.Fatal(err)
	}
	c, err := campaign.Attach(campDir, set)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := interruptibleContext()
	defer stop()
	w := &dispatch.Worker{
		ID:    *id,
		Camp:  c,
		Store: store,
		Lease: campaign.LeaseOptions{TTL: *leaseTTL},
		OnEvent: func(ev dispatch.Event) {
			if ev.Kind == dispatch.EventAcked {
				fmt.Printf("  worker %s: unit %s acked (epoch %d)\n", ev.Worker, ev.Unit, ev.Epoch)
			}
		},
	}
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	if client != nil {
		if s := client.Stats(); s.Retries > 0 {
			fmt.Printf("network: %d request retr%s, %d backoff sleep(s)\n",
				s.Retries, plural(s.Retries, "y", "ies"), s.Backoffs)
		}
	}
	fmt.Println("worker done: campaign settled")
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// executeDistributed runs the coordinator in this process and forks n
// workers over the `worker` subcommand. The campaign handle must come
// from New or Load (the coordinator is the manifest writer). A
// non-empty listen address additionally serves the lease protocol
// over HTTP for workers on hosts that do not share the campaign
// directory.
func executeDistributed(c *campaign.Campaign, n int, leaseTTL time.Duration, listen string) {
	ctx, stop := interruptibleContext()
	defer stop()
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			log.Fatalf("listen %s: %v", listen, err)
		}
		srv := &http.Server{Handler: dispatchhttp.NewServer(c.Dir(), nil).Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("serving dispatch on http://%s — join from any host with `campaign worker -coordinator http://<this-host>:%d`\n",
			ln.Addr(), ln.Addr().(*net.TCPAddr).Port)
	}
	if n == 0 {
		fmt.Printf("coordinator only: attach workers with `campaign worker -dir %s`\n", c.Dir())
	}
	lastDone := -1
	co := &dispatch.Coordinator{
		Camp:  c,
		Lease: campaign.LeaseOptions{TTL: leaseTTL},
		OnSync: func(rep campaign.SyncReport) {
			if rep.Done != lastDone {
				lastDone = rep.Done
				fmt.Printf("  %d done / %d in flight / %d pending / %d failed\n",
					rep.Done, rep.InFlight, rep.Pending, rep.Failed)
			}
			for _, u := range rep.Reassigned {
				fmt.Printf("  lease expired: unit %s reassigned\n", u)
			}
		},
	}
	res, err := dispatch.RunProcesses(ctx, co, n, exe, func(i int) []string {
		return []string{"worker", "-dir", c.Dir(), "-id", dispatch.WorkerID(i), "-lease-ttl", leaseTTL.String()}
	})
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			fmt.Printf("\ninterrupted — resume with: campaign resume -distributed -dir %s\n", c.Dir())
			os.Exit(3)
		}
		log.Fatal(err)
	}
	printRunStats(co.RunStats())
	printResult(res)
}

func printRunStats(rs cluster.RunStats) {
	if rs.Units == 0 {
		return
	}
	fmt.Printf("\ndistributed run: %d units, %d poses in %v (%.1f poses/s), peak %d in flight, %d reassignment(s)\n",
		rs.Units, rs.PosesScored, rs.Makespan.Round(time.Millisecond), rs.PosesPerSecond(), rs.PeakUnits, rs.Reassignments)
	for _, w := range rs.PerWorker {
		fmt.Printf("  %-12s %3d units  %6d poses  busy %v\n", w.Worker, w.Units, w.Poses, w.Busy.Round(time.Millisecond))
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (filesystem mode)")
	coordinator := fs.String("coordinator", "", "coordinator base URL to query instead of a local directory (multi-host mode)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of the human summary (one Status object; ops tooling and the serve /v1/status handler consume the same shape)")
	fs.Parse(args)
	if (*dir == "") == (*coordinator == "") {
		log.Fatal("status: exactly one of -dir or -coordinator URL is required")
	}
	var st campaign.Status
	var err error
	if *coordinator != "" {
		cl, cerr := dispatchhttp.NewClient(*coordinator, "", dispatchhttp.Options{})
		if cerr != nil {
			log.Fatal(cerr)
		}
		st, err = cl.Status()
	} else {
		st, err = campaign.ReadStatus(*dir)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Fatal(err)
		}
		return
	}
	printStatus(st)
}

func cmdFsck(args []string) {
	fs := flag.NewFlagSet("campaign fsck", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory to verify (required; detach workers first)")
	repair := fs.Bool("repair", false, "quarantine damaged shards and re-queue their units for the next resume")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("fsck: -dir is required")
	}
	rep, err := campaign.Fsck(*dir, *repair)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		printFsck(rep)
	}
	// Exit 1 when damage was found but left in place, so scripts can
	// gate on it; informational findings (orphan shards) don't fail.
	if !*repair {
		for _, p := range rep.Problems {
			if p.Kind == "corrupt-shard" || p.Kind == "missing-shard" {
				os.Exit(1)
			}
		}
	}
}

func printFsck(rep campaign.FsckReport) {
	fmt.Printf("fsck %s: %d unit(s), %d shard(s) verified\n", rep.Dir, rep.UnitsChecked, rep.ShardsChecked)
	for _, p := range rep.Problems {
		fmt.Printf("  [%s] %s\n", p.Kind, p.Detail)
	}
	for _, q := range rep.Quarantined {
		fmt.Printf("  quarantined: %s\n", q)
	}
	if len(rep.Repaired) > 0 {
		fmt.Printf("re-queued %d unit(s) for the next resume: %s\n", len(rep.Repaired), strings.Join(rep.Repaired, ", "))
	}
	if rep.Corruptions > 0 || rep.Repairs > 0 {
		fmt.Printf("lifetime counters: %d corruption(s), %d repair(s)\n", rep.Corruptions, rep.Repairs)
	}
	if rep.Clean() {
		fmt.Println("clean: every done unit's shards verified")
	}
}

// execute runs (or continues) a campaign and prints progress, the
// final selections and the two-stage confirmation summary.
func execute(c *campaign.Campaign) {
	ctx, stop := interruptibleContext()
	defer stop()
	c.OnUnitDone = func(u campaign.UnitRecord) {
		st := c.Status()
		fmt.Printf("  unit %-18s done: %4d poses (%d skipped, %d attempt(s))  [%d/%d]\n",
			u.ID, u.Poses, u.Skipped, u.Attempts, st.Done, st.Total)
	}
	res, err := c.Run(ctx)
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			fmt.Printf("\ninterrupted — resume with: campaign resume -dir %s\n", c.Dir())
			os.Exit(3)
		}
		log.Fatal(err)
	}
	printResult(res)
}

func printResult(res *campaign.Result) {
	fmt.Println()
	for _, tr := range res.PerTarget {
		fmt.Printf("%s: screened %d compounds, selected %d (primary hits %d, confirmed %d)\n",
			tr.Target, tr.Screened, len(tr.Selections), tr.PrimaryHits, tr.Confirmed)
		for _, s := range tr.Selections {
			fmt.Printf("  %-28s  pK %5.2f  vina %7.2f  combined %6.2f  inhib %5.1f%%\n",
				s.CompoundID, s.Fusion, s.Vina, s.Combined, s.Inhibition)
		}
	}
	fmt.Printf("\ncampaign complete: %d tested, %d primary hits (%.1f%%), %d confirmed\n",
		res.Tested, res.Hits, 100*res.HitRate(), res.Confirmed)
}

func printStatus(st campaign.Status) {
	fmt.Printf("campaign %s (%s)\n", st.Name, st.Dir)
	switch st.Backend {
	case "http":
		fmt.Printf("dispatch: http via coordinator %s\n", st.Coordinator)
	case "fs":
		fmt.Println("dispatch: fs (shared campaign directory)")
	}
	fmt.Printf("scorers: %s\n", strings.Join(st.Scorers, ", "))
	fmt.Printf("precision: %s\n", st.Precision)
	fmt.Printf("deck: %d compounds; units: %d done, %d in-flight, %d failed, %d pending of %d; poses scored: %d\n",
		st.DeckSize, st.Done, st.InFlight, st.Failed, st.Pending, st.Total, st.Poses)
	if st.Corruptions > 0 || st.Repairs > 0 {
		fmt.Printf("integrity: %d corrupt shard(s) detected and quarantined, %d repair re-queue(s) granted\n",
			st.Corruptions, st.Repairs)
	}
	for _, ts := range st.PerTarget {
		fmt.Printf("  %-12s %d/%d units  %6d poses\n", ts.Target, ts.Done, ts.Total, ts.Poses)
	}
	if len(st.Workers) > 0 {
		fmt.Printf("workers (%d reassignment(s)):\n", st.Reassignments)
		for _, w := range st.Workers {
			held := "-"
			if len(w.Leases) > 0 {
				held = strings.Join(w.Leases, ",")
			}
			net := ""
			if w.DispatchRetries > 0 || w.DispatchBackoffs > 0 {
				net = fmt.Sprintf("  net: %d retries/%d backoffs", w.DispatchRetries, w.DispatchBackoffs)
			}
			fmt.Printf("  %-14s last beat %s ago  %2d units (%.2f/s)  %6d poses  holds: %s%s\n",
				w.ID, time.Since(w.LastBeat).Round(time.Second), w.UnitsDone, w.UnitsPerSec, w.PosesDone, held, net)
		}
	}
	if st.Finalized {
		fmt.Println("state: finalized (selections recorded in manifest)")
	} else if st.Done == st.Total {
		fmt.Println("state: scored, awaiting finalize (run resume)")
	} else {
		fmt.Println("state: in progress (run resume to continue)")
	}
}

func scaleOf(name string) experiments.Scale {
	if name == "full" {
		return experiments.Full
	}
	return experiments.Smoke
}
