package main

// The -kernels mode records the performance trajectory of the
// screening engine's hot paths. For PR 6 that is precision: every row
// pairs the pinned float64 reference against the float32 fast path —
// the packed GEMM panel kernel, the lowered Conv3D forward, the full
// Coherent PredictBatch at repro and paper scale, and the distributed
// scoring job end to end — on identical shapes and weights, so the
// speedup column is the memory-traffic win of halving the element
// width plus the SSE width of the f32 scatter/axpy kernels. `make
// bench` archives the JSON form as BENCH_6.json. (BENCH_5.json, the
// PR-5 featurization-cache trajectory, stays committed as history; its
// RunJob/after-prefeature row — 541 poses/s — is the baseline the f64
// RunJob row here chains from.)

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/nn"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

type benchRecord struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type kernelReport struct {
	PR         int                `json:"pr"`
	Note       string             `json:"note"`
	Benchmarks []benchRecord      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

func record(name string, extra map[string]float64, fn func(b *testing.B)) benchRecord {
	// All pairs share one process; return the previous benchmark's dead
	// heap to the runtime so a 48^3-scale pair doesn't tax the next
	// record's GC on the single-core host.
	runtime.GC()
	r := testing.Benchmark(fn)
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Extra:       extra,
	}
}

func benchPoses(n int) []screen.Pose {
	var poses []screen.Pose
	for i := 0; len(poses) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, screen.Pose{CompoundID: fmt.Sprintf("%s_%d", m.Name, i), PoseRank: 0, Mol: m, VinaScore: -6})
	}
	return poses
}

// benchSamples featurizes n library poses at the given voxel options —
// the PredictBatch pairs score exactly this batch at both precisions.
func benchSamples(n int, vo featurize.VoxelOptions) []*fusion.Sample {
	gro := featurize.DefaultGraphOptions()
	var samples []*fusion.Sample
	for i := 0; len(samples) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		samples = append(samples, fusion.FeaturizeComplex(m.Name, target.Protease1, m, 0, vo, gro))
	}
	return samples
}

func runKernelReport() kernelReport {
	rep := kernelReport{
		PR: 6,
		Note: "float32 inference fast path: before = pinned f64 reference, after = f32 " +
			"(convert-once packed weights, f32 panel GEMM / conv scatter / im2col, " +
			"widen-at-output); identical shapes and weights, rank-fidelity pinned by the A/B harness",
		Speedups: map[string]float64{},
	}
	add := func(group string, before, after benchRecord) {
		rep.Benchmarks = append(rep.Benchmarks, before, after)
		rep.Speedups[group] = before.NsPerOp / after.NsPerOp
	}

	// Packed panel GEMM at a dense-layer shape big enough to spill the
	// cache: the B panel is where the element width shows up as pure
	// memory traffic.
	{
		const m64, k64, n64 = 8, 2048, 512
		rng := rand.New(rand.NewSource(61))
		a := tensor.New(m64, k64)
		bm := tensor.New(k64, n64)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range bm.Data {
			bm.Data[i] = rng.NormFloat64()
		}
		before := record("MatMulPacked/f64", nil, func(b *testing.B) {
			b.ReportAllocs()
			var pb tensor.PackedB
			pb.Pack(bm)
			c := tensor.New(m64, n64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulPackedInto(c, a, &pb)
			}
		})
		after := record("MatMulPacked/f32", nil, func(b *testing.B) {
			b.ReportAllocs()
			bm32 := tensor.NewF32(k64, n64)
			bm32.CopyFrom64(bm)
			var pb tensor.PackedB32
			pb.Pack(bm32)
			a32 := tensor.NewF32(m64, k64)
			a32.CopyFrom64(a)
			c := tensor.NewF32(m64, n64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulPacked32Into(c, a32, &pb)
			}
		})
		add("MatMulPacked", before, after)
	}

	// Lowered Conv3D forward on the tile (im2col+GEMM) path: batch 8,
	// 16 channels, 16^3 grid, 32 filters.
	{
		conv := nn.NewConv3D(rand.New(rand.NewSource(62)), 16, 32, 3)
		x := tensor.New(8, 16, 16, 16, 16)
		rng := rand.New(rand.NewSource(63))
		for i := range x.Data {
			if rng.Float64() < 0.2 {
				x.Data[i] = rng.NormFloat64()
			}
		}
		x32 := tensor.NewF32FromShape(x.Shape)
		x32.CopyFrom64(x)
		ws := nn.NewWorkspace()
		before := record("Conv3DForward/f64", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ws.Reset()
				conv.ForwardInfer(x, ws)
			}
		})
		after := record("Conv3DForward/f32", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ws.Reset()
				conv.ForwardInfer32(x32, ws)
			}
		})
		add("Conv3DForward", before, after)
	}

	// PredictBatch: the whole Coherent Fusion forward (voxel head +
	// graph head + fusion trunk) at both scales. The repro pair (8^3
	// grid, 8/16 filters, batch 8) chains from the PR-4 PredictBatch
	// trajectory; the headline pair runs the paper's production shape
	// (48^3 voxel grid, 32/64 conv filters, 128 dense nodes), where
	// the grids spill every cache level and the halved element width
	// plus the 4-wide f32 scatter kernel show up as wall-clock.
	predictPair := func(group string, coh *fusion.Fusion, samples []*fusion.Sample) {
		out := make([]float64, len(samples))
		one := func(name string, p fusion.Precision) benchRecord {
			return record(name, nil, func(b *testing.B) {
				b.ReportAllocs()
				ws := fusion.NewWorkspaceFor(p)
				coh.PredictBatchInto(samples, ws, out) // warm packs and pools
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					coh.PredictBatchInto(samples, ws, out)
				}
			})
		}
		add(group, one(group+"/f64", fusion.PrecisionF64), one(group+"/f32", fusion.PrecisionF32))
	}
	{
		cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 64)
		sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 65)
		coh := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 66)
		predictPair("PredictBatchRepro", coh, benchSamples(8, featurize.DefaultVoxelOptions()))
	}
	{
		cfg := fusion.DefaultCNN3DConfig()
		cfg.Voxel = featurize.PaperVoxelOptions()
		cfg.ConvFilters1 = 32
		cfg.ConvFilters2 = 64
		cfg.DenseNodes = 128
		cnn := fusion.NewCNN3D(cfg, 67)
		sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 68)
		coh := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 69)
		predictPair("PredictBatch", coh, benchSamples(2, cfg.Voxel))
	}

	// RunJob: the distributed scoring job end to end at both engine
	// precisions. Same job shape as the PR-4/PR-5 trajectories (96
	// poses, 2 ranks, 2 loaders, batch 8), so the poses/s rows chain
	// across the committed BENCH_*.json artifacts.
	{
		cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 46)
		sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 47)
		f := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 48)
		poses := benchPoses(96)
		o := screen.DefaultJobOptions()
		o.Ranks = 2
		o.LoadersPerRank = 2
		o.BatchSize = 8
		posesPerSec := func(ns float64) float64 { return float64(len(poses)) / (ns / 1e9) }
		runJob := func(o screen.JobOptions) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := screen.RunJob(context.Background(), f, target.Protease1, poses, o); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		o32 := o
		o32.Precision = screen.PrecisionF32
		// A 2-rank job on a single core is scheduler-noise dominated
		// (isolated runs swing ±15%), so record the best of three — the
		// stable floor — rather than one draw per precision.
		best := func(name string, fn func(b *testing.B)) benchRecord {
			r := record(name, nil, fn)
			for i := 0; i < 2; i++ {
				if again := record(name, nil, fn); again.NsPerOp < r.NsPerOp {
					r = again
				}
			}
			r.Extra = map[string]float64{"poses/s": posesPerSec(r.NsPerOp)}
			return r
		}
		add("RunJob", best("RunJob/f64", runJob(o)), best("RunJob/f32", runJob(o32)))
	}
	return rep
}

func printKernelReport(rep kernelReport) {
	fmt.Printf("PR %d benchmark trajectory — %s\n\n", rep.PR, rep.Note)
	fmt.Printf("%-36s %14s %14s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-36s %14.0f %14d %12d", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %s=%.1f", k, v)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, g := range []string{"MatMulPacked", "Conv3DForward", "PredictBatchRepro", "PredictBatch", "RunJob"} {
		fmt.Printf("speedup %-20s %.2fx\n", g, rep.Speedups[g])
	}
}
