package main

// The -kernels mode records the performance trajectory of the pooled
// inference engine: before/after pairs for the four levels of the
// stack — the GEMM kernel (scalar vs cache-blocked packed), the 3D
// convolution (allocating Forward vs workspace ForwardInfer), batched
// model inference (PredictBatch vs PredictBatchInto) and the full
// distributed scoring job (allocating scorer path vs the pooled
// ScorerInto path, identical JobOptions). `make bench` archives the
// JSON form as BENCH_4.json.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/nn"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

type benchRecord struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type kernelReport struct {
	PR         int                `json:"pr"`
	Note       string             `json:"note"`
	Benchmarks []benchRecord      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

func record(name string, extra map[string]float64, fn func(b *testing.B)) benchRecord {
	r := testing.Benchmark(fn)
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Extra:       extra,
	}
}

// sparseTensor fills ~frac of the elements with normal values — the
// occupancy profile of splatted voxel grids.
func sparseTensor(rng *rand.Rand, frac float64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		if rng.Float64() < frac {
			t.Data[i] = rng.NormFloat64()
		}
	}
	return t
}

// allocScorer hides the ScorerInto handshake of a fusion model, so the
// engine runs it on the historical allocating path — the pre-PR
// baseline measured against the pooled path on identical JobOptions.
type allocScorer struct{ f *fusion.Fusion }

func (a allocScorer) Name() string                            { return a.f.Name() }
func (a allocScorer) ScoreBatch(s []*fusion.Sample) []float64 { return a.f.ScoreBatch(s) }
func (a allocScorer) FeatureOptions() fusion.FeatureOptions   { return a.f.FeatureOptions() }
func (a allocScorer) CloneScorer() any                        { return allocScorer{f: a.f.Clone()} }

func benchPoses(n int) []screen.Pose {
	var poses []screen.Pose
	for i := 0; len(poses) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, screen.Pose{CompoundID: fmt.Sprintf("%s_%d", m.Name, i), PoseRank: 0, Mol: m, VinaScore: -6})
	}
	return poses
}

func runKernelReport() kernelReport {
	rep := kernelReport{
		PR: 4,
		Note: "zero-allocation steady-state screening: before = allocating path, " +
			"after = pooled workspace + packed GEMM path (byte-identical scores)",
		Speedups: map[string]float64{},
	}
	add := func(group string, before, after benchRecord) {
		rep.Benchmarks = append(rep.Benchmarks, before, after)
		rep.Speedups[group] = before.NsPerOp / after.NsPerOp
	}

	// MatMul: the dense-layer product y = x·Wᵀ — the GEMM shape every
	// inference layer runs — as the allocating scalar MatMulTransB vs
	// the pooled cache-blocked panel kernel with Wᵀ packed once per
	// (weights, shape), register-accumulated. (Sparse voxel patches
	// deliberately stay on the zero-skip scalar kernel; see
	// tensor/pack.go.)
	{
		rng := rand.New(rand.NewSource(41))
		a := sparseTensor(rng, 1, 256, 384)
		w := sparseTensor(rng, 1, 64, 384)
		before := record("MatMul/before-scalar-alloc", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.MatMulTransB(a, w)
			}
		})
		var pb tensor.PackedB
		pb.PackTransposed(w.Data, 64, 384)
		c := tensor.New(256, 64)
		after := record("MatMul/after-packed", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.MatMulPackedInto(c, a, &pb)
			}
		})
		add("MatMul", before, after)
	}

	// Conv3D: allocating Forward vs pooled ForwardInfer at the
	// production repro geometry (16 -> 8 channels, 5x5x5, 8^3 grid).
	{
		rng := rand.New(rand.NewSource(42))
		conv := nn.NewConv3D(rng, 16, 8, 5)
		x := sparseTensor(rng, 0.2, 8, 16, 8, 8, 8)
		before := record("Conv3D/before-alloc", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				conv.Forward(x, false)
			}
		})
		ws := nn.NewWorkspace()
		after := record("Conv3D/after-pooled", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ws.Reset()
				conv.ForwardInfer(x, ws)
			}
		})
		add("Conv3D", before, after)
	}

	// PredictBatch: the full Coherent Fusion stack over a production
	// batch, allocating vs pooled.
	{
		cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 43)
		sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 44)
		f := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 45)
		var samples []*fusion.Sample
		for _, p := range benchPoses(8) {
			samples = append(samples,
				fusion.FeaturizeComplex(p.CompoundID, target.Protease1, p.Mol, 0, cnn.Cfg.Voxel, sg.Cfg.Graph))
		}
		before := record("PredictBatch/before-alloc", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.PredictBatch(samples)
			}
		})
		ws := fusion.NewWorkspace()
		out := make([]float64, len(samples))
		after := record("PredictBatch/after-pooled", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.PredictBatchInto(samples, ws, out)
			}
		})
		add("PredictBatch", before, after)
	}

	// RunJob: the distributed scoring job end to end — docked poses,
	// loaders, rank replicas, batched scoring — allocating scorer path
	// vs pooled ScorerInto path on identical options. 96 poses per job
	// approximate the steady state of the paper's long-running jobs
	// (2M poses each), where per-job setup is amortized.
	{
		cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 46)
		sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 47)
		f := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 48)
		poses := benchPoses(96)
		o := screen.DefaultJobOptions()
		o.Ranks = 2
		o.LoadersPerRank = 2
		o.BatchSize = 8
		posesPerSec := func(ns float64) float64 { return float64(len(poses)) / (ns / 1e9) }
		before := record("RunJob/before-alloc", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := screen.RunJob(context.Background(), allocScorer{f: f}, target.Protease1, poses, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		before.Extra = map[string]float64{"poses/s": posesPerSec(before.NsPerOp)}
		after := record("RunJob/after-pooled", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := screen.RunJob(context.Background(), f, target.Protease1, poses, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		after.Extra = map[string]float64{"poses/s": posesPerSec(after.NsPerOp)}
		add("RunJob", before, after)
	}
	return rep
}

func printKernelReport(rep kernelReport) {
	fmt.Printf("PR %d benchmark trajectory — %s\n\n", rep.PR, rep.Note)
	fmt.Printf("%-28s %14s %14s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-28s %14.0f %14d %12d", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %s=%.1f", k, v)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, g := range []string{"MatMul", "Conv3D", "PredictBatch", "RunJob"} {
		fmt.Printf("speedup %-14s %.2fx\n", g, rep.Speedups[g])
	}
}
