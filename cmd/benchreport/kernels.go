package main

// The -kernels mode records the performance trajectory of the
// screening engine's hot paths. For PR 5 that is featurization: the
// per-pose cost of the voxel grid and the spatial graph, uncached vs
// through the target-invariant PocketPrefeature cache (pocket voxel
// baseline + touched-voxel restore, cached pocket node rows, cell-list
// neighbor search) — at the repro grid and at the paper's 48^3 grid —
// plus the full distributed scoring job with the cache on and off.
// `make bench` archives the JSON form as BENCH_5.json. (BENCH_4.json,
// the PR-4 allocating-vs-pooled inference trajectory, stays committed
// as history.)

import (
	"context"
	"fmt"
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

type benchRecord struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type kernelReport struct {
	PR         int                `json:"pr"`
	Note       string             `json:"note"`
	Benchmarks []benchRecord      `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

func record(name string, extra map[string]float64, fn func(b *testing.B)) benchRecord {
	r := testing.Benchmark(fn)
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Extra:       extra,
	}
}

func benchPoses(n int) []screen.Pose {
	var poses []screen.Pose
	for i := 0; len(poses) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, screen.Pose{CompoundID: fmt.Sprintf("%s_%d", m.Name, i), PoseRank: 0, Mol: m, VinaScore: -6})
	}
	return poses
}

// kernelLigand is the mid-sized drug-like probe the featurization
// rows share (same molecule as internal/featurize's benchmarks).
func kernelLigand() *chem.Mol {
	m, err := chem.ParseSMILES("CCN(CC)CCNC(=O)c1ccc(N)cc1")
	if err != nil {
		panic(err)
	}
	chem.Embed3D(m, 3)
	target.Protease1.PlaceLigand(m)
	return m
}

func runKernelReport() kernelReport {
	rep := kernelReport{
		PR: 5,
		Note: "target-invariant featurization: before = per-pose pocket re-featurization, " +
			"after = shared PocketPrefeature (pocket voxel baseline + touched-voxel restore, " +
			"cached node rows, cell-list K-NN); byte-identical outputs",
		Speedups: map[string]float64{},
	}
	add := func(group string, before, after benchRecord) {
		rep.Benchmarks = append(rep.Benchmarks, before, after)
		rep.Speedups[group] = before.NsPerOp / after.NsPerOp
	}

	m := kernelLigand()
	gro := featurize.DefaultGraphOptions()

	// Voxelize at the paper grid (48^3 at 1 A): the uncached path
	// zeroes the whole 16-channel grid and splats ligand + pocket;
	// the cached path restores the previous pose's touched voxels and
	// splats the ligand only.
	voxelPair := func(group string, vo featurize.VoxelOptions) {
		before := record(group+"/before-uncached", nil, func(b *testing.B) {
			b.ReportAllocs()
			dst := featurize.Voxelize(target.Protease1, m, vo)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = featurize.VoxelizeInto(dst, target.Protease1, m, vo)
			}
		})
		after := record(group+"/after-prefeature", nil, func(b *testing.B) {
			b.ReportAllocs()
			pf := featurize.NewPocketPrefeature(target.Protease1, vo, gro)
			var st featurize.VoxelSlotState
			dst := pf.VoxelizeInto(nil, &st, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = pf.VoxelizeInto(dst, &st, m)
			}
		})
		add(group, before, after)
	}
	voxelPair("VoxelizePaper", featurize.PaperVoxelOptions())

	// BuildGraph at the production graph options: cached pocket node
	// rows + cell-list K-NN vs the brute-force sweep.
	{
		before := record("BuildGraph/before-uncached", nil, func(b *testing.B) {
			b.ReportAllocs()
			g := featurize.BuildGraph(target.Protease1, m, gro)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g = featurize.BuildGraphInto(g, target.Protease1, m, gro)
			}
		})
		after := record("BuildGraph/after-prefeature", nil, func(b *testing.B) {
			b.ReportAllocs()
			pf := featurize.NewPocketPrefeature(target.Protease1, featurize.DefaultVoxelOptions(), gro)
			g := pf.BuildGraphInto(nil, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g = pf.BuildGraphInto(g, m)
			}
		})
		add("BuildGraph", before, after)
	}

	// FeaturizePose: the loader's full per-pose work (voxel grid +
	// spatial graph) at both scales — the pair the ISSUE's >=2x
	// acceptance bar is measured on at PaperVoxelOptions.
	posePair := func(group string, vo featurize.VoxelOptions) {
		before := record(group+"/before-uncached", nil, func(b *testing.B) {
			b.ReportAllocs()
			dst := featurize.Voxelize(target.Protease1, m, vo)
			g := featurize.BuildGraph(target.Protease1, m, gro)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = featurize.VoxelizeInto(dst, target.Protease1, m, vo)
				g = featurize.BuildGraphInto(g, target.Protease1, m, gro)
			}
		})
		after := record(group+"/after-prefeature", nil, func(b *testing.B) {
			b.ReportAllocs()
			pf := featurize.NewPocketPrefeature(target.Protease1, vo, gro)
			var st featurize.VoxelSlotState
			var g *featurize.Graph
			var dst *tensor.Tensor
			dst = pf.VoxelizeInto(dst, &st, m)
			g = pf.BuildGraphInto(g, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = pf.VoxelizeInto(dst, &st, m)
				g = pf.BuildGraphInto(g, m)
			}
		})
		add(group, before, after)
	}
	posePair("FeaturizePoseRepro", featurize.DefaultVoxelOptions())
	posePair("FeaturizePosePaper", featurize.PaperVoxelOptions())

	// RunJob: the distributed scoring job end to end on identical
	// options — per-pose pocket re-featurization (DisablePrefeature)
	// vs the shared per-job prefeature. Same job shape as the PR-4
	// trajectory (96 poses, 2 ranks, 2 loaders, batch 8), so the
	// poses/s rows chain across the committed BENCH_*.json artifacts.
	{
		cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 46)
		sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 47)
		f := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 48)
		poses := benchPoses(96)
		o := screen.DefaultJobOptions()
		o.Ranks = 2
		o.LoadersPerRank = 2
		o.BatchSize = 8
		posesPerSec := func(ns float64) float64 { return float64(len(poses)) / (ns / 1e9) }
		runJob := func(o screen.JobOptions) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := screen.RunJob(context.Background(), f, target.Protease1, poses, o); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		oOff := o
		oOff.DisablePrefeature = true
		before := record("RunJob/before-uncached", nil, runJob(oOff))
		before.Extra = map[string]float64{"poses/s": posesPerSec(before.NsPerOp)}
		after := record("RunJob/after-prefeature", nil, runJob(o))
		after.Extra = map[string]float64{"poses/s": posesPerSec(after.NsPerOp)}
		add("RunJob", before, after)
	}
	return rep
}

func printKernelReport(rep kernelReport) {
	fmt.Printf("PR %d benchmark trajectory — %s\n\n", rep.PR, rep.Note)
	fmt.Printf("%-36s %14s %14s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-36s %14.0f %14d %12d", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %s=%.1f", k, v)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, g := range []string{"VoxelizePaper", "BuildGraph", "FeaturizePoseRepro", "FeaturizePosePaper", "RunJob"} {
		fmt.Printf("speedup %-20s %.2fx\n", g, rep.Speedups[g])
	}
}
