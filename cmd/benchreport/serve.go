package main

// The -serve mode records the screening service's performance
// trajectory for PR 8: the warm engine behind the HTTP front door must
// not give back the batched-engine throughput PR 6 bought. Three rows:
//
//   RunJob/f64            the batch-engine baseline (same job shape as
//                         the BENCH_6 trajectory: 96 poses, 2 ranks,
//                         2 loaders, batch 8 — 702 poses/s there)
//   ServeSaturation       the service at saturation: 12 concurrent
//                         8-pose submissions through the cross-request
//                         batcher and two workers; the poses/s row
//                         must hold >= 0.9x the RunJob baseline
//   ServeLowLoad          sequential batch-sized submissions (no
//                         queueing); the p99 request latency must stay
//                         under the configured batching deadline
//
// `make bench-serve` archives the JSON form as BENCH_8.json.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"deepfusion/internal/fusion"
	"deepfusion/internal/screen"
	"deepfusion/internal/serve"
	"deepfusion/internal/target"
)

// serveMaxWait is the batching deadline the service is benchmarked
// at (the DefaultConfig production value). The low-load p99 row is
// asserted against it.
const serveMaxWait = 25 * time.Millisecond

func runServeReport() kernelReport {
	rep := kernelReport{
		PR: 8,
		Note: "screening service trajectory: warm engine + cross-request batcher vs the " +
			"solo RunJob baseline on the same scorer, poses and batch shape; saturation " +
			"throughput must hold >= 0.9x RunJob, low-load p99 must stay under the " +
			fmt.Sprintf("%s batching deadline", serveMaxWait),
		Speedups: map[string]float64{},
	}

	// Same scorer seeds and job shape as the BENCH_6 RunJob rows, so
	// the poses/s columns chain across the committed artifacts.
	cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 46)
	sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 47)
	f := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 48)
	poses := benchPoses(96)
	o := screen.DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2
	o.BatchSize = 8
	posesPerSec := func(ns float64) float64 { return float64(len(poses)) / (ns / 1e9) }

	// A 2-way-concurrent job on a small CI host is scheduler-noise
	// dominated; record the best of three (the stable floor) for both
	// the baseline and the saturation row.
	best := func(name string, fn func(b *testing.B)) benchRecord {
		r := record(name, nil, fn)
		for i := 0; i < 2; i++ {
			if again := record(name, nil, fn); again.NsPerOp < r.NsPerOp {
				r = again
			}
		}
		r.Extra = map[string]float64{"poses/s": posesPerSec(r.NsPerOp)}
		return r
	}

	baseline := best("RunJob/f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := screen.RunJob(context.Background(), f, target.Protease1, poses, o); err != nil {
				b.Fatal(err)
			}
		}
	})

	cfg := serve.DefaultConfig([]screen.Scorer{f})
	cfg.Job = o // batch 8, same featurization, f64
	cfg.Workers = o.Ranks
	cfg.MaxWait = serveMaxWait
	cfg.QueueDepth = 32 // 256-pose capacity: saturation never trips admission
	engine, err := serve.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	defer engine.Drain()

	// Saturation: all 96 poses in flight at once as 12 batch-sized
	// client submissions — every batch flushes on batch-full, both
	// workers stay busy, and one op is the same 96-pose job RunJob
	// scores above.
	saturation := best("ServeSaturation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reqs := make([]*serve.Request, 0, len(poses)/o.BatchSize)
			for at := 0; at < len(poses); at += o.BatchSize {
				r, err := engine.SubmitPoses("protease1", poses[at:at+o.BatchSize])
				if err != nil {
					b.Fatal(err)
				}
				reqs = append(reqs, r)
			}
			for _, r := range reqs {
				<-r.Done()
			}
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, baseline, saturation)
	rep.Speedups["ServeVsRunJob"] = baseline.NsPerOp / saturation.NsPerOp

	// Low load: one batch-sized submission at a time against a fresh
	// engine (clean latency ring), each waited to completion before the
	// next — request latency is pure scoring time plus dispatch
	// overhead, and its p99 must sit under the batching deadline.
	lowEngine, err := serve.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	defer lowEngine.Drain()
	const lowLoadReqs = 50
	low := record("ServeLowLoad", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < lowLoadReqs; j++ {
				at := (j * o.BatchSize) % len(poses)
				r, err := lowEngine.SubmitPoses("protease1", poses[at:at+o.BatchSize])
				if err != nil {
					b.Fatal(err)
				}
				<-r.Done()
			}
		}
	})
	stats := lowEngine.Status().Stats
	low.Extra = map[string]float64{
		"p50_ms":      stats.P50LatencyMS,
		"p99_ms":      stats.P99LatencyMS,
		"max_wait_ms": float64(serveMaxWait) / float64(time.Millisecond),
	}
	rep.Benchmarks = append(rep.Benchmarks, low)
	rep.Speedups["LowLoadP99VsDeadline"] = stats.P99LatencyMS / (float64(serveMaxWait) / float64(time.Millisecond))
	return rep
}

func printServeReport(rep kernelReport) {
	fmt.Printf("PR %d benchmark trajectory — %s\n\n", rep.PR, rep.Note)
	fmt.Printf("%-20s %14s %14s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-20s %14.0f %14d %12d", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %s=%.2f", k, v)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("serve/runjob throughput ratio  %.2fx (floor 0.90x)\n", rep.Speedups["ServeVsRunJob"])
	fmt.Printf("low-load p99 / deadline        %.2fx (must be < 1)\n", rep.Speedups["LowLoadP99VsDeadline"])
}
