package main

// The -integrity mode records what the durability layer costs on the
// paths the campaign actually exercises: the same prediction shard
// written and read through the real shard I/O primitives
// (WriteShardFile / WriteBytesAtomic: temp-write + fsync + rename +
// dir fsync; ReadShardFile: read + CRC verification) at format v1 (no
// checksums) and v2 (CRC32C per dataset section + whole-file trailer,
// the default every shard is written at since the self-healing PR).
// The WriteShard/ReadShard v2/v1 ratios are the acceptance rows and
// must stay within a few percent of 1; the EncodeShard/DecodeShard
// rows isolate the raw CPU cost of checksumming with file I/O
// stripped away, for the curious. `make bench-integrity` archives the
// JSON form as BENCH_10.json.

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/screen"
)

// integrityShardPreds is the shard payload shape: one campaign-unit
// sized block of predictions (deterministic synthetic values — the
// encoder cost is byte-shape dependent, not value dependent).
func integrityShardPreds(n int) []screen.Prediction {
	rng := rand.New(rand.NewSource(10))
	preds := make([]screen.Prediction, n)
	for i := range preds {
		preds[i] = screen.Prediction{
			CompoundID: fmt.Sprintf("ZINC%08d", i/3),
			Target:     "protease1",
			PoseRank:   i % 3,
			Fusion:     4 + 3*rng.Float64(),
			Vina:       -9 + 2*rng.Float64(),
			MMGBSA:     -40 + 10*rng.Float64(),
			Rank:       i % 8,
		}
	}
	return preds
}

// measureInterleaved times two operations by strictly alternating
// them inside one loop, recording every per-op duration, and reports
// each side's 20%-trimmed mean. Interleaving makes the comparison
// trustworthy on a busy host — scheduler steal, page-cache state and
// fsync latency drift hit both operations equally, where back-to-back
// benchmark runs would charge the whole drift to whichever version
// ran later — and trimming the slowest tail removes the GC pauses and
// steal bursts that land on one side by coin flip. The work being
// compared (checksumming) is uniform per op, so trimming cannot bias
// the ratio, only de-noise it.
func measureInterleaved(f1, f2 func(), budget time.Duration) (ns1, ns2 float64) {
	// Warm both paths, then calibrate an iteration count that fills
	// the budget.
	start := time.Now()
	f1()
	f2()
	perIter := time.Since(start)
	if perIter <= 0 {
		perIter = time.Microsecond
	}
	iters := int(budget / perIter)
	if iters < 16 {
		iters = 16
	}
	s1 := make([]time.Duration, iters)
	s2 := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		s := time.Now()
		f1()
		s1[i] = time.Since(s)
		s = time.Now()
		f2()
		s2[i] = time.Since(s)
	}
	return trimmedMeanNs(s1), trimmedMeanNs(s2)
}

// trimmedMeanNs averages the fastest 80% of the samples.
func trimmedMeanNs(samples []time.Duration) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	keep := samples[:len(samples)-len(samples)/5]
	var total time.Duration
	for _, d := range keep {
		total += d
	}
	return float64(total.Nanoseconds()) / float64(len(keep))
}

// allocStats reports allocations and bytes per call of f.
func allocStats(f func()) (allocs, allocedBytes int64) {
	const n = 16
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs-before.Mallocs) / n, int64(after.TotalAlloc-before.TotalAlloc) / n
}

func runIntegrityReport() kernelReport {
	rep := kernelReport{
		PR: 10,
		Note: "durability-layer cost: one prediction shard written/read through the real " +
			"shard I/O path (atomic temp+fsync+rename commit, verified read + fold) at h5lite " +
			"v1 (no checksums) vs v2 (per-section CRC32C + whole-file trailer, the default); " +
			"the WriteShard/ReadShard v2/v1 ns ratios are the integrity overhead and must " +
			"stay near 1; EncodeShard/DecodeShard isolate the CPU cost without file I/O; " +
			"each v1/v2 pair is timed strictly interleaved so host noise cancels",
		Speedups: map[string]float64{},
	}

	// 2048 predictions ≈ a real campaign unit's shard (ChunkSize
	// compounds x poses), large enough that fixed costs vanish.
	preds := integrityShardPreds(2048)
	shard := screen.WriteShards(preds, 1)[0]

	var v1, v2 bytes.Buffer
	if err := shard.WriteV1(&v1); err != nil {
		panic(err)
	}
	if err := shard.Write(&v2); err != nil {
		panic(err)
	}

	dir, err := os.MkdirTemp("", "benchintegrity")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	v1Path := filepath.Join(dir, "shard_v1.h5l")
	v2Path := filepath.Join(dir, "shard_v2.h5l")
	if err := campaign.WriteBytesAtomic(v1Path, v1.Bytes()); err != nil {
		log.Fatal(err)
	}
	if err := campaign.WriteShardFile(v2Path, shard); err != nil {
		log.Fatal(err)
	}

	var sink int
	// The acceptance pairs drive the full shard write path (encode +
	// atomic durable commit) and the full shard read path (read + CRC
	// verification + decode + fold back to predictions), exactly as
	// campaign finalize, the dispatch runtime and the screening
	// service run them. The CPU-only pairs strip the file system away
	// so the raw checksumming cost is visible rather than hidden
	// under fsync.
	writeV1 := func() {
		var buf bytes.Buffer
		if err := shard.WriteV1(&buf); err != nil {
			log.Fatal(err)
		}
		if err := campaign.WriteBytesAtomic(filepath.Join(dir, "w1.h5l"), buf.Bytes()); err != nil {
			log.Fatal(err)
		}
	}
	writeV2 := func() {
		if err := campaign.WriteShardFile(filepath.Join(dir, "w2.h5l"), shard); err != nil {
			log.Fatal(err)
		}
	}
	readFrom := func(path string) func() {
		return func() {
			f, err := campaign.ReadShardFile(path)
			if err != nil {
				log.Fatal(err)
			}
			out, err := screen.ReadShards([]*h5lite.File{f})
			if err != nil {
				log.Fatal(err)
			}
			sink += len(out)
		}
	}
	encodeWith := func(write func(*bytes.Buffer) error) func() {
		return func() {
			var buf bytes.Buffer
			if err := write(&buf); err != nil {
				log.Fatal(err)
			}
			sink += buf.Len()
		}
	}
	decodeOf := func(name string, data []byte) func() {
		return func() {
			f, err := h5lite.Decode(name, data)
			if err != nil {
				log.Fatal(err)
			}
			sink += len(f.Root().Children())
		}
	}

	type pair struct {
		group  string
		ratio  string
		f1, f2 func()
		budget time.Duration
	}
	pairs := []pair{
		{"WriteShard", "WriteV2OverV1", writeV1, writeV2, 3 * time.Second},
		{"ReadShard", "ReadV2OverV1", readFrom(v1Path), readFrom(v2Path), 2 * time.Second},
		{"EncodeShard", "EncodeV2OverV1",
			encodeWith(func(b *bytes.Buffer) error { return shard.WriteV1(b) }),
			encodeWith(func(b *bytes.Buffer) error { return shard.Write(b) }), 2 * time.Second},
		{"DecodeShard", "DecodeV2OverV1",
			decodeOf("bench_v1.h5l", v1.Bytes()),
			decodeOf("bench_v2.h5l", v2.Bytes()), 2 * time.Second},
	}
	sizes := map[string]int{"v1": v1.Len(), "v2": v2.Len()}
	for _, p := range pairs {
		runtime.GC()
		ns1, ns2 := measureInterleaved(p.f1, p.f2, p.budget)
		for vers, ns := range map[string]float64{"v1": ns1, "v2": ns2} {
			f := p.f1
			if vers == "v2" {
				f = p.f2
			}
			allocs, alloced := allocStats(f)
			nbytes := sizes[vers]
			rep.Benchmarks = append(rep.Benchmarks, benchRecord{
				Name:        p.group + "/" + vers,
				NsPerOp:     ns,
				AllocsPerOp: allocs,
				BytesPerOp:  alloced,
				Extra: map[string]float64{
					"MB/s":        float64(nbytes) / (ns / 1e9) / (1 << 20),
					"shard_bytes": float64(nbytes),
				},
			})
		}
		rep.Speedups[p.ratio] = ns2 / ns1
	}
	_ = sink
	// map iteration above appends v1/v2 in arbitrary order; fix it.
	sortBenchmarksByName(rep.Benchmarks)

	rep.Speedups["V2SizeOverV1"] = float64(v2.Len()) / float64(v1.Len())
	return rep
}

// sortBenchmarksByName keeps pair members adjacent and deterministic
// (v1 before v2) without disturbing the group order laid down above.
func sortBenchmarksByName(b []benchRecord) {
	for i := 0; i+1 < len(b); i += 2 {
		if b[i].Name > b[i+1].Name {
			b[i], b[i+1] = b[i+1], b[i]
		}
	}
}

func printIntegrityReport(rep kernelReport) {
	fmt.Printf("PR %d benchmark trajectory — %s\n\n", rep.PR, rep.Note)
	fmt.Printf("%-16s %14s %14s %12s %10s\n", "benchmark", "ns/op", "B/op", "allocs/op", "MB/s")
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-16s %14.0f %14d %12d %10.1f\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Extra["MB/s"])
	}
	fmt.Println()
	fmt.Printf("shard write v2/v1 cost ratio   %.3fx (ceiling 1.05x)\n", rep.Speedups["WriteV2OverV1"])
	fmt.Printf("shard read  v2/v1 cost ratio   %.3fx (ceiling 1.05x)\n", rep.Speedups["ReadV2OverV1"])
	fmt.Printf("encode v2/v1 cpu ratio         %.3fx (informational)\n", rep.Speedups["EncodeV2OverV1"])
	fmt.Printf("decode v2/v1 cpu ratio         %.3fx (informational)\n", rep.Speedups["DecodeV2OverV1"])
	fmt.Printf("v2/v1 size ratio               %.4fx\n", rep.Speedups["V2SizeOverV1"])
}
