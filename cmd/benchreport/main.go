// Command benchreport regenerates the paper's tables and figures as
// text reports. With no flags it runs every experiment; -exp selects
// one; -json emits a machine-readable array of {experiment, text}
// records so the Makefile's bench target can archive the perf
// trajectory. -kernels instead records the screening engine's hot-path
// performance trajectory — for PR 6, f64-vs-f32 pairs for the packed
// panel GEMM, the lowered Conv3D forward, the Coherent PredictBatch
// and the distributed RunJob; `make bench` archives its JSON form as
// BENCH_6.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"deepfusion/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	exp := flag.String("exp", "all", "experiment: fig1|table1|table2|table3|table4|table5|table6|table7|table8|fig2|fig4|fig5|fig6|fig7|hitrate|all")
	full := flag.Bool("full", false, "use the full benchmark budget (minutes) instead of the smoke budget")
	asJSON := flag.Bool("json", false, "emit a JSON array of {experiment, text} records instead of plain text")
	kernels := flag.Bool("kernels", false, "benchmark the engine's f64 reference vs f32 fast-path kernels (MatMulPacked, Conv3DForward, PredictBatch, RunJob) instead of the paper experiments")
	serveBench := flag.Bool("serve", false, "benchmark the screening service (warm engine + cross-request batcher) against the solo RunJob baseline instead of the paper experiments")
	integrity := flag.Bool("integrity", false, "benchmark shard encode/decode at h5lite v1 (no checksums) vs v2 (CRC32C sections + trailer) instead of the paper experiments")
	flag.Parse()

	if *integrity {
		rep := runIntegrityReport()
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
			return
		}
		printIntegrityReport(rep)
		return
	}
	if *serveBench {
		rep := runServeReport()
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
			return
		}
		printServeReport(rep)
		return
	}
	if *kernels {
		rep := runKernelReport()
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
			return
		}
		printKernelReport(rep)
		return
	}

	s := experiments.Smoke
	if *full {
		s = experiments.Full
	}
	runners := []struct {
		name string
		run  func() string
	}{
		{"fig1", func() string { return experiments.Figure1(s) }},
		{"table1", func() string { return experiments.Table1() }},
		{"table2", func() string { return experiments.Table2SGCNN(s).Text }},
		{"table3", func() string { return experiments.Table3CNN3D(s).Text }},
		{"table4", func() string { return experiments.Table4MidFusion(s).Text }},
		{"table5", func() string { return experiments.Table5Coherent(s).Text }},
		{"table6", func() string { return experiments.Table6(s).Text }},
		{"fig2", func() string { return experiments.Figure2(s).Text }},
		{"table7", func() string { return experiments.Table7().Text }},
		{"fig4", func() string { return experiments.Figure4().Text }},
		{"fig5", func() string { return experiments.Figure5(s).Text }},
		{"table8", func() string { return experiments.Table8(s).Text }},
		{"fig6", func() string { return experiments.Figure6(s).Text }},
		{"fig7", func() string { return experiments.Figure7(s).Text }},
		{"hitrate", func() string { return experiments.HitRate(s).Text }},
	}
	want := strings.ToLower(*exp)
	found := false
	type record struct {
		Experiment string `json:"experiment"`
		Text       string `json:"text"`
	}
	var records []record
	for _, r := range runners {
		if want != "all" && r.name != want {
			continue
		}
		found = true
		if *asJSON {
			records = append(records, record{Experiment: r.name, Text: r.run()})
		} else {
			fmt.Println(r.run())
		}
	}
	if !found {
		log.Fatalf("unknown experiment %q", *exp)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			log.Fatal(err)
		}
	}
}
