// Command hpo runs the PB2 (Population-Based Bandits) hyper-parameter
// optimization for one of the paper's models and prints the converged
// configuration next to the paper's Tables 2-5 values.
package main

import (
	"flag"
	"fmt"
	"log"

	"deepfusion/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hpo: ")
	model := flag.String("model", "sgcnn", "model to optimize: sgcnn | cnn3d | mid | coherent")
	full := flag.Bool("full", false, "use the full benchmark budget")
	flag.Parse()

	scale := experiments.Smoke
	if *full {
		scale = experiments.Full
	}
	var res experiments.HPOResult
	switch *model {
	case "sgcnn":
		res = experiments.Table2SGCNN(scale)
	case "cnn3d":
		res = experiments.Table3CNN3D(scale)
	case "mid":
		res = experiments.Table4MidFusion(scale)
	case "coherent":
		res = experiments.Table5Coherent(scale)
	default:
		log.Fatalf("unknown model %q (want sgcnn, cnn3d, mid or coherent)", *model)
	}
	fmt.Println(res.Text)
	fmt.Printf("best validation MSE: %.4f\n", res.BestLoss)
}
