package deepfusion

import (
	"context"
	"fmt"

	"deepfusion/internal/dock"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/screen"
)

// Scorer is the one scoring contract of the funnel (screen.Scorer):
// every fusion model family, the Vina and MM/GBSA physics surrogates,
// and Consensus all implement it, and the distributed engine screens
// any of them — alone or as an ensemble sharing one featurization
// pass.
type Scorer = screen.Scorer

// Prediction is one scored pose (screen.Prediction): the primary
// scorer's value plus, for ensembles, every scorer's prediction keyed
// by name.
type Prediction = screen.Prediction

// DockProblem names a compound the docking stage rejected and why.
type DockProblem = screen.DockProblem

// VinaScorer returns the Vina docking-score surrogate as a Scorer.
func VinaScorer() Scorer { return dock.VinaScorer{} }

// MMGBSAScorer returns the MM/GBSA rescoring surrogate as a Scorer.
func MMGBSAScorer() Scorer { return mmgbsa.Scorer{} }

// NewConsensus combines scorers into a single consensus Scorer (mean
// of pK-oriented member scores, featurizing each pose once).
func NewConsensus(members ...Scorer) (Scorer, error) { return screen.NewConsensus(members...) }

// Scorer returns the named trained model as a screening Scorer:
// cnn3d, sgcnn, late, mid or coherent.
func (m *Models) Scorer(name string) (Scorer, error) {
	switch name {
	case "cnn3d":
		return m.CNN3D, nil
	case "sgcnn":
		return m.SGCNN, nil
	case "late":
		return m.Late, nil
	case "mid":
		return m.Mid, nil
	case "coherent":
		return m.Coherent, nil
	}
	return nil, fmt.Errorf("deepfusion: unknown model scorer %q (want cnn3d|sgcnn|late|mid|coherent)", name)
}

// Result is the rich outcome of a Pipeline run: per-stage counts, the
// docking rejections the legacy API used to swallow, retry
// accounting, and the full prediction set (with per-scorer columns
// for ensembles) behind the ranked selection.
type Result struct {
	Target      string
	ScorerNames []string // the scorer set, primary first

	// Docking stage.
	Compounds int           // compounds entering the funnel
	Docked    int           // poses produced
	Rejected  int           // compounds the docking stage rejected
	Problems  []DockProblem // why, per rejected compound

	// Scoring stage.
	Attempts int // scoring job attempts consumed (>1 means retries)
	Scored   int // pose predictions produced

	// Selection stage.
	Predictions []Prediction    // every pose-level prediction
	Scores      []CompoundScore // per-compound aggregation, input order
	Selected    []CompoundScore // ranked by the selection cost function
}

// Pipeline is the composable screening funnel: dock -> distributed
// ensemble scoring -> per-compound aggregation -> cost-function
// selection. Build one with NewPipeline, refine it with the With*
// options (each returns the pipeline for chaining), and execute with
// Run. The zero configuration screens with the Coherent Fusion model
// and the paper's default selection weights.
type Pipeline struct {
	scorers     []Scorer
	job         screen.JobOptions
	weights     screen.CostWeights
	maxPoses    int
	selectN     int
	maxAttempts int
	seed        int64
}

// NewPipeline builds a screening pipeline over the trained models,
// defaulting to the Coherent Fusion scorer — the paper's production
// choice — with repro-scale docking and job options.
func NewPipeline(m *Models) *Pipeline {
	o := DefaultScreenOptions()
	return &Pipeline{
		scorers:     []Scorer{m.Coherent},
		job:         o.Job,
		weights:     screen.DefaultCostWeights(),
		maxPoses:    o.MaxPoses,
		maxAttempts: 3,
		seed:        o.Seed,
	}
}

// WithScorers replaces the scorer set. The first scorer is primary:
// its prediction fills the selection-facing fusion column. Two or
// more scorers run as an ensemble — featurized once, scored N ways,
// with per-scorer columns in Result.Predictions and output shards.
func (p *Pipeline) WithScorers(scorers ...Scorer) *Pipeline {
	p.scorers = scorers
	return p
}

// WithSelection sets the selection cost weights and the number of
// compounds to select (n <= 0 selects all).
func (p *Pipeline) WithSelection(w screen.CostWeights, n int) *Pipeline {
	p.weights = w
	p.selectN = n
	return p
}

// WithJob replaces the distributed-job options (ranks, loaders, batch
// size, failure injection).
func (p *Pipeline) WithJob(o screen.JobOptions) *Pipeline {
	p.job = o
	return p
}

// WithDocking sets the per-compound pose cap and the docking seed.
func (p *Pipeline) WithDocking(maxPoses int, seed int64) *Pipeline {
	p.maxPoses = maxPoses
	p.seed = seed
	return p
}

// WithRetry sets the scoring-job retry budget.
func (p *Pipeline) WithRetry(maxAttempts int) *Pipeline {
	p.maxAttempts = maxAttempts
	return p
}

// WithPrecision selects the engine arithmetic for the scoring stage:
// PrecisionF64 (the verified reference, the default) or PrecisionF32
// (the half-memory-traffic fast path; rank-faithful to the reference
// per the engine's A/B harness).
func (p *Pipeline) WithPrecision(prec Precision) *Pipeline {
	p.job.Precision = prec
	return p
}

// Run executes the funnel for one target: dock every compound, score
// all poses with the distributed job, aggregate to per-compound
// scores, and rank with the selection cost function. Cancelling ctx
// stops docking between compounds and scoring within one inference
// batch.
func (p *Pipeline) Run(ctx context.Context, tgt *Pocket, compounds []*Mol) (*Result, error) {
	if len(p.scorers) == 0 {
		return nil, fmt.Errorf("deepfusion: pipeline has no scorers")
	}
	poses, problems, err := screen.DockCompounds(ctx, tgt, compounds, p.maxPoses, p.seed)
	if err != nil {
		return nil, err
	}
	preds, attempts, err := screen.RunJobEnsembleWithRetry(ctx, p.scorers, tgt, poses, p.job, p.maxAttempts)
	if err != nil {
		return nil, err
	}
	scores := screen.AggregateByCompound(preds)
	n := p.selectN
	if n <= 0 || n > len(scores) {
		n = len(scores)
	}
	return &Result{
		Target:      tgt.Name,
		ScorerNames: screen.ScorerNames(p.scorers),
		Compounds:   len(compounds),
		Docked:      len(poses),
		Rejected:    len(problems),
		Problems:    problems,
		Attempts:    attempts,
		Scored:      len(preds),
		Predictions: preds,
		Scores:      scores,
		Selected:    screen.SelectForExperiment(scores, p.weights, n),
	}, nil
}
