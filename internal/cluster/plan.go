package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// PlanJob is one job of a heterogeneous campaign plan: a Fusion
// scoring job attributed to a target. The campaign orchestrator maps
// its per-target work units onto PlanJobs to project repro-scale
// campaigns up to the paper's production run.
type PlanJob struct {
	Target string
	Spec   FusionJobSpec
}

// TargetPlanStats aggregates one target's jobs within a plan
// simulation.
type TargetPlanStats struct {
	Target        string
	Jobs          int
	Resubmissions int
	PosesScored   int
	Finish        time.Duration // when the target's last job completed
}

// PlanResult is the outcome of simulating a full multi-target
// campaign plan on one allocation.
type PlanResult struct {
	Makespan      time.Duration
	PosesScored   int
	Jobs          int
	Resubmissions int
	PeakJobs      int
	MeanQueueWait time.Duration
	MaxQueueWait  time.Duration
	PerTarget     []TargetPlanStats
}

// SimulatePlan runs a heterogeneous campaign plan through the LSF
// event loop: jobs dispatch FIFO while nodes are free (throttled by
// the scheduler's dispatch interval and concurrent-job comfort zone),
// failed jobs are resubmitted at their failure time (the paper's
// fault-tolerant many-small-jobs design), and per-target statistics
// track when each binding site's screen drains. Queue wait is the gap
// between a job becoming ready (time 0, or its predecessor's failure)
// and its dispatch — the campaign-level queueing the paper absorbed
// by keeping 125 four-node jobs in flight on a 500-node allocation.
func SimulatePlan(jobs []PlanJob, allocNodes int, seed int64) (PlanResult, error) {
	for _, j := range jobs {
		if j.Spec.Nodes > allocNodes {
			return PlanResult{}, fmt.Errorf("cluster: job for %s needs %d nodes, allocation has %d", j.Target, j.Spec.Nodes, allocNodes)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	type queued struct {
		job   PlanJob
		ready float64 // seconds at which the job may dispatch
	}
	type running struct {
		job    PlanJob
		end    float64
		result JobResult
	}
	var res PlanResult
	stats := map[string]*TargetPlanStats{}
	var order []string
	statFor := func(t string) *TargetPlanStats {
		s, ok := stats[t]
		if !ok {
			s = &TargetPlanStats{Target: t}
			stats[t] = s
			order = append(order, t)
		}
		return s
	}
	var pending []queued
	for _, j := range jobs {
		pending = append(pending, queued{job: j})
		statFor(j.Target) // register targets in plan order
	}
	now := 0.0
	freeNodes := allocNodes
	dispatchReady := 0.0
	var active []running
	var waits []float64
	for len(pending) > 0 || len(active) > 0 {
		// FIFO dispatch while the head job fits (no backfill — the
		// paper's LSF behavior at this job scale).
		for len(pending) > 0 && len(active) < schedulerJobCap && now >= dispatchReady {
			head := pending[0]
			if head.ready > now || freeNodes < head.job.Spec.Nodes {
				break
			}
			pending = pending[1:]
			jr := SimulateFusionJob(head.job.Spec, rng)
			active = append(active, running{job: head.job, end: now + jr.Total().Seconds(), result: jr})
			freeNodes -= head.job.Spec.Nodes
			waits = append(waits, now-head.ready)
			dispatchReady = now + dispatchInterval
			if len(active) > res.PeakJobs {
				res.PeakJobs = len(active)
			}
		}
		// Advance to the next event: a completion, the dispatch
		// throttle clearing, or the head job becoming ready.
		next := -1.0
		if len(active) > 0 {
			sort.Slice(active, func(a, b int) bool { return active[a].end < active[b].end })
			next = active[0].end
		}
		if len(pending) > 0 {
			if dispatchReady > now && (next < 0 || dispatchReady < next) && freeNodes >= pending[0].job.Spec.Nodes && pending[0].ready <= dispatchReady {
				next = dispatchReady
			}
			if pending[0].ready > now && (next < 0 || pending[0].ready < next) {
				next = pending[0].ready
			}
		}
		if next < 0 {
			break // defensive: nothing can make progress
		}
		if next > now {
			now = next
		}
		// Retire every job completing at or before now.
		for len(active) > 0 && active[0].end <= now {
			done := active[0]
			active = active[1:]
			freeNodes += done.job.Spec.Nodes
			st := statFor(done.job.Target)
			res.Jobs++
			st.Jobs++
			if done.result.Failed {
				res.Resubmissions++
				st.Resubmissions++
				pending = append(pending, queued{job: done.job, ready: now})
			} else {
				res.PosesScored += done.job.Spec.Poses
				st.PosesScored += done.job.Spec.Poses
				if d := time.Duration(now * float64(time.Second)); d > st.Finish {
					st.Finish = d
				}
			}
		}
	}
	res.Makespan = time.Duration(now * float64(time.Second))
	var sum, max float64
	for _, w := range waits {
		sum += w
		if w > max {
			max = w
		}
	}
	if len(waits) > 0 {
		res.MeanQueueWait = time.Duration(sum / float64(len(waits)) * float64(time.Second))
		res.MaxQueueWait = time.Duration(max * float64(time.Second))
	}
	for _, t := range order {
		res.PerTarget = append(res.PerTarget, *stats[t])
	}
	return res, nil
}

// PosesPerSecond returns the plan's aggregate throughput.
func (r PlanResult) PosesPerSecond() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.PosesScored) / r.Makespan.Seconds()
}
