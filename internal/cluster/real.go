package cluster

import (
	"sort"
	"time"
)

// UnitSpan is one completed work unit of a REAL distributed campaign
// run — the measured counterpart of the simulator's PlanJob. The
// distributed coordinator records one span per folded completion ack
// (start = lease grant, end = ack).
type UnitSpan struct {
	Worker string
	Target string
	Start  time.Time
	End    time.Time
	Poses  int
}

// WorkerRunStats aggregates one worker's completed units.
type WorkerRunStats struct {
	Worker string
	Units  int
	Poses  int
	Busy   time.Duration // summed span durations
}

// RunStats aggregates real unit spans into the same campaign-level
// quantities SimulatePlan reports for a synthetic plan — makespan,
// poses scored, peak concurrency, resubmission drag — so a real
// distributed run and its paper-scale simulation are directly
// comparable.
type RunStats struct {
	Makespan      time.Duration
	PosesScored   int
	Units         int
	PeakUnits     int // max units in flight at once (the real ~125-jobs regime analogue)
	Reassignments int // lease-expiry reassignments (the real resubmission analogue)
	PerWorker     []WorkerRunStats
}

// PosesPerSecond returns the run's aggregate throughput.
func (r RunStats) PosesPerSecond() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.PosesScored) / r.Makespan.Seconds()
}

// CollectRun folds completed-unit spans into run statistics. Peak
// concurrency is computed with a sweep over span boundaries (starts
// before ends at equal instants, matching how a job that begins the
// moment another acks still overlapped it on the wire).
func CollectRun(spans []UnitSpan, reassignments int) RunStats {
	stats := RunStats{Units: len(spans), Reassignments: reassignments}
	if len(spans) == 0 {
		return stats
	}
	var t0, t1 time.Time
	type boundary struct {
		at    time.Time
		delta int
	}
	var bounds []boundary
	perWorker := map[string]*WorkerRunStats{}
	var order []string
	for i, s := range spans {
		stats.PosesScored += s.Poses
		if i == 0 || s.Start.Before(t0) {
			t0 = s.Start
		}
		if i == 0 || s.End.After(t1) {
			t1 = s.End
		}
		bounds = append(bounds, boundary{s.Start, +1}, boundary{s.End, -1})
		w, ok := perWorker[s.Worker]
		if !ok {
			w = &WorkerRunStats{Worker: s.Worker}
			perWorker[s.Worker] = w
			order = append(order, s.Worker)
		}
		w.Units++
		w.Poses += s.Poses
		w.Busy += s.End.Sub(s.Start)
	}
	stats.Makespan = t1.Sub(t0)
	sort.Slice(bounds, func(a, b int) bool {
		if !bounds[a].at.Equal(bounds[b].at) {
			return bounds[a].at.Before(bounds[b].at)
		}
		return bounds[a].delta > bounds[b].delta // starts before ends
	})
	cur := 0
	for _, b := range bounds {
		cur += b.delta
		if cur > stats.PeakUnits {
			stats.PeakUnits = cur
		}
	}
	sort.Strings(order)
	for _, id := range order {
		stats.PerWorker = append(stats.PerWorker, *perWorker[id])
	}
	return stats
}
