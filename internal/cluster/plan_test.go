package cluster

import (
	"testing"
	"time"
)

func TestSimulatePlanScoresEveryJob(t *testing.T) {
	spec := DefaultFusionJob()
	var jobs []PlanJob
	targets := []string{"protease1", "protease2", "spike1", "spike2"}
	perTarget := 30
	for _, tgt := range targets {
		for i := 0; i < perTarget; i++ {
			jobs = append(jobs, PlanJob{Target: tgt, Spec: spec})
		}
	}
	res, err := SimulatePlan(jobs, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := len(jobs) * spec.Poses
	if res.PosesScored != want {
		t.Fatalf("scored %d poses, want %d", res.PosesScored, want)
	}
	if res.Jobs != len(jobs)+res.Resubmissions {
		t.Fatalf("jobs run (%d) != submitted (%d) + resubmissions (%d)", res.Jobs, len(jobs), res.Resubmissions)
	}
	if res.PeakJobs < 1 || res.PeakJobs > schedulerJobCap {
		t.Fatalf("peak jobs %d outside [1, %d]", res.PeakJobs, schedulerJobCap)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
	if res.MaxQueueWait < res.MeanQueueWait {
		t.Fatalf("max queue wait %v < mean %v", res.MaxQueueWait, res.MeanQueueWait)
	}
	if len(res.PerTarget) != len(targets) {
		t.Fatalf("want %d per-target stats, got %d", len(targets), len(res.PerTarget))
	}
	var last time.Duration
	for _, st := range res.PerTarget {
		if st.PosesScored != perTarget*spec.Poses {
			t.Fatalf("target %s scored %d poses, want %d", st.Target, st.PosesScored, perTarget*spec.Poses)
		}
		if st.Finish > res.Makespan {
			t.Fatalf("target %s finishes at %v, after the %v makespan", st.Target, st.Finish, res.Makespan)
		}
		if st.Finish > last {
			last = st.Finish
		}
	}
	if last != res.Makespan {
		t.Fatalf("latest target finish %v != makespan %v", last, res.Makespan)
	}
}

func TestSimulatePlanQueuesBeyondAllocation(t *testing.T) {
	// 40 four-node jobs on a 16-node allocation: at most 4 run at
	// once, the rest wait in queue.
	spec := DefaultFusionJob()
	var jobs []PlanJob
	for i := 0; i < 40; i++ {
		jobs = append(jobs, PlanJob{Target: "protease1", Spec: spec})
	}
	res, err := SimulatePlan(jobs, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakJobs > 4 {
		t.Fatalf("peak %d jobs on a 4-slot allocation", res.PeakJobs)
	}
	if res.MaxQueueWait <= 0 {
		t.Fatal("an oversubscribed plan must show queue wait")
	}
	if res.PosesScored != 40*spec.Poses {
		t.Fatalf("scored %d poses, want %d", res.PosesScored, 40*spec.Poses)
	}
}

func TestSimulatePlanRejectsOversizedJob(t *testing.T) {
	spec := DefaultFusionJob()
	spec.Nodes = 8
	if _, err := SimulatePlan([]PlanJob{{Target: "spike1", Spec: spec}}, 4, 1); err == nil {
		t.Fatal("job larger than the allocation must be rejected")
	}
}
