package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// TraceEntry is one job's lifecycle in a campaign trace.
type TraceEntry struct {
	JobID  int
	Start  time.Duration
	End    time.Duration
	Failed bool
}

// TracedCampaign runs SimulateCampaign while recording per-job start
// and end times, for scheduling analysis and the Gantt rendering in
// examples/scaling.
func TracedCampaign(nJobs, allocNodes int, spec FusionJobSpec, seed int64) (CampaignResult, []TraceEntry, error) {
	if spec.Nodes > allocNodes {
		return CampaignResult{}, nil, fmt.Errorf("cluster: job needs %d nodes, allocation has %d", spec.Nodes, allocNodes)
	}
	rng := rand.New(rand.NewSource(seed))
	type running struct {
		id     int
		start  float64
		end    float64
		result JobResult
	}
	var res CampaignResult
	var trace []TraceEntry
	pending := nJobs
	freeNodes := allocNodes
	now := 0.0
	nextID := 0
	var active []running
	dispatchReady := 0.0
	for pending > 0 || len(active) > 0 {
		for pending > 0 && freeNodes >= spec.Nodes && len(active) < schedulerJobCap {
			if now < dispatchReady {
				break
			}
			jr := SimulateFusionJob(spec, rng)
			active = append(active, running{id: nextID, start: now, end: now + jr.Total().Seconds(), result: jr})
			nextID++
			freeNodes -= spec.Nodes
			pending--
			dispatchReady = now + dispatchInterval
			if len(active) > res.PeakJobs {
				res.PeakJobs = len(active)
			}
		}
		if len(active) == 0 {
			now = dispatchReady
			continue
		}
		sort.Slice(active, func(a, b int) bool { return active[a].end < active[b].end })
		nextEvent := active[0].end
		if pending > 0 && freeNodes >= spec.Nodes && dispatchReady > now && dispatchReady < nextEvent {
			now = dispatchReady
			continue
		}
		now = nextEvent
		done := active[0]
		active = active[1:]
		freeNodes += spec.Nodes
		res.Jobs = append(res.Jobs, done.result)
		trace = append(trace, TraceEntry{
			JobID:  done.id,
			Start:  time.Duration(done.start * float64(time.Second)),
			End:    time.Duration(done.end * float64(time.Second)),
			Failed: done.result.Failed,
		})
		if done.result.Failed {
			pending++
			res.Resubmissions++
		} else {
			res.PosesScored += spec.Poses
		}
	}
	res.Makespan = time.Duration(now * float64(time.Second))
	sort.Slice(trace, func(a, b int) bool { return trace[a].JobID < trace[b].JobID })
	return res, trace, nil
}

// RenderGantt draws an ASCII Gantt chart of a campaign trace, one row
// per job ('#' running, 'x' marks a failed job's bar), at the given
// width in characters.
func RenderGantt(trace []TraceEntry, width int) string {
	if len(trace) == 0 || width < 10 {
		return ""
	}
	var maxEnd time.Duration
	for _, e := range trace {
		if e.End > maxEnd {
			maxEnd = e.End
		}
	}
	if maxEnd == 0 {
		return ""
	}
	var sb strings.Builder
	scale := float64(width) / maxEnd.Seconds()
	for _, e := range trace {
		startCol := int(e.Start.Seconds() * scale)
		endCol := int(e.End.Seconds() * scale)
		if endCol <= startCol {
			endCol = startCol + 1
		}
		if endCol > width {
			endCol = width
		}
		mark := byte('#')
		if e.Failed {
			mark = 'x'
		}
		fmt.Fprintf(&sb, "job %3d |%s%s%s| %5.1fh\n",
			e.JobID,
			strings.Repeat(" ", startCol),
			strings.Repeat(string(mark), endCol-startCol),
			strings.Repeat(" ", width-endCol),
			(e.End - e.Start).Hours())
	}
	return sb.String()
}
