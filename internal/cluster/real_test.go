package cluster

import (
	"math"
	"testing"
	"time"
)

// TestCollectRun pins the real-run aggregation: makespan across all
// spans, boundary-sweep peak concurrency (starts ordered before ends
// at equal instants), and per-worker totals sorted by worker ID.
func TestCollectRun(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	at := func(s int) time.Time { return t0.Add(time.Duration(s) * time.Second) }
	spans := []UnitSpan{
		{Worker: "w2", Target: "spike1", Start: at(5), End: at(15), Poses: 50},
		{Worker: "w1", Target: "protease1", Start: at(0), End: at(10), Poses: 100},
		// Starts the instant the first w1 span ends: the sweep orders
		// the start before the end, so both overlap the w2 span at t=10.
		{Worker: "w1", Target: "protease1", Start: at(10), End: at(20), Poses: 25},
	}
	rs := CollectRun(spans, 3)

	if rs.Units != 3 || rs.PosesScored != 175 {
		t.Fatalf("units/poses = %d/%d, want 3/175", rs.Units, rs.PosesScored)
	}
	if rs.Makespan != 20*time.Second {
		t.Fatalf("makespan = %v, want 20s", rs.Makespan)
	}
	if rs.PeakUnits != 3 {
		t.Fatalf("peak units = %d, want 3 (start-before-end at t=10)", rs.PeakUnits)
	}
	if rs.Reassignments != 3 {
		t.Fatalf("reassignments = %d, want 3", rs.Reassignments)
	}
	if got := rs.PosesPerSecond(); math.Abs(got-175.0/20.0) > 1e-12 {
		t.Fatalf("poses/s = %v, want 8.75", got)
	}

	if len(rs.PerWorker) != 2 || rs.PerWorker[0].Worker != "w1" || rs.PerWorker[1].Worker != "w2" {
		t.Fatalf("per-worker = %+v, want [w1 w2] sorted", rs.PerWorker)
	}
	w1 := rs.PerWorker[0]
	if w1.Units != 2 || w1.Poses != 125 || w1.Busy != 20*time.Second {
		t.Fatalf("w1 = %+v, want 2 units / 125 poses / 20s busy", w1)
	}
}

// TestCollectRunEmpty pins the degenerate cases: no spans yields zero
// stats (but keeps the reassignment count), and zero makespan yields
// zero throughput rather than a division blowup.
func TestCollectRunEmpty(t *testing.T) {
	rs := CollectRun(nil, 2)
	if rs.Units != 0 || rs.PosesScored != 0 || rs.PeakUnits != 0 || rs.Makespan != 0 {
		t.Fatalf("empty stats = %+v, want zeros", rs)
	}
	if rs.Reassignments != 2 {
		t.Fatalf("reassignments = %d, want 2", rs.Reassignments)
	}
	if rs.PosesPerSecond() != 0 {
		t.Fatalf("poses/s on empty run = %v, want 0", rs.PosesPerSecond())
	}
}
