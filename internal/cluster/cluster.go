// Package cluster is a discrete-event simulator of the HPC system the
// screening campaign ran on: LLNL's Lassen (792 nodes x 4 V100 GPUs,
// IBM Spectrum LSF with a 12-hour job limit). It reproduces the
// paper's measured job anatomy — ~20 min startup, loader-bound
// evaluation, ~6.5 min parallel file output — the per-node-count job
// failure rates, and the queueing behavior of running 125 four-node
// Fusion jobs on a 500-node allocation. Simulated time is free, so the
// throughput and strong-scaling experiments (Table 7, Figure 4) run at
// full paper scale.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Machine describes a simulated cluster.
type Machine struct {
	Name            string
	Nodes           int
	GPUsPerNode     int
	CPUCoresPerNode int
	MemoryGBPerNode int
	GPUMemoryGB     int
	JobTimeLimit    time.Duration
}

// Lassen returns the paper's system: 792 nodes, each with 44 Power9
// cores, 4 NVIDIA V100 GPUs (16 GB) and 256 GB of memory, under a
// 12-hour LSF run limit.
func Lassen() Machine {
	return Machine{
		Name:            "lassen",
		Nodes:           792,
		GPUsPerNode:     4,
		CPUCoresPerNode: 44,
		MemoryGBPerNode: 256,
		GPUMemoryGB:     16,
		JobTimeLimit:    12 * time.Hour,
	}
}

// FusionJobSpec describes one distributed Fusion scoring job
// (Figure 3): poses divided across nodes, 4 ranks per node (1 GPU, 10
// cores, 64 GB each), 12 parallel data loaders per rank.
type FusionJobSpec struct {
	Poses          int
	Nodes          int
	BatchPerRank   int
	LoadersPerRank int
}

// DefaultFusionJob is the production configuration: 2 million poses on
// 4 nodes with batch size 56.
func DefaultFusionJob() FusionJobSpec {
	return FusionJobSpec{Poses: 2_000_000, Nodes: 4, BatchPerRank: 56, LoadersPerRank: 12}
}

// Ranks returns the number of MPI ranks (one per GPU).
func (s FusionJobSpec) Ranks() int { return s.Nodes * 4 }

// Cost-model constants calibrated to the paper's measurements:
// a 4-node, batch-56 job evaluates 2M poses in ~280 min (7.44
// poses/s/rank) with a fixed ~20 min startup and ~6.5 min output
// phase; batch 12 costs ~10 extra minutes. The GPU is under-utilized
// — evaluation is bound by the 12 parallel data loaders per rank
// (file reading + featurization), which the model reflects by keeping
// the loader ceiling below the GPU's capability at any batch size.
const (
	rankRateCeiling  = 7.51  // poses/s/rank as batch -> infinity
	batchHalfPoint   = 0.555 // batch size at which rate halves
	startupMinutes   = 20.0
	outputMinutes    = 6.5
	gpuPeakRate      = 40.0 // poses/s a V100 could sustain if fed
	schedulerJobCap  = 200  // LSF struggled dispatching >200 concurrent jobs
	dispatchInterval = 2.0  // seconds between LSF job dispatches
)

// RankRate returns the sustained evaluation rate (poses/s) of one rank
// at the given batch size per rank.
func RankRate(batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	r := rankRateCeiling * float64(batch) / (float64(batch) + batchHalfPoint)
	if r > gpuPeakRate {
		r = gpuPeakRate
	}
	return r
}

// GPUUtilization reports the fraction of GPU capability used at a
// batch size — the under-utilization the paper observed.
func GPUUtilization(batch int) float64 {
	return RankRate(batch) / gpuPeakRate
}

// FailureRate returns the paper's measured per-job failure probability
// by node count (~2% for 1-2 nodes, ~3% for 4, ~20% for 8, driven by
// Horovod/PyTorch instability on POWER9).
func FailureRate(nodes int) float64 {
	switch {
	case nodes <= 2:
		return 0.02
	case nodes <= 4:
		return 0.03
	default:
		return 0.20
	}
}

// JobResult is the outcome of one simulated Fusion job.
type JobResult struct {
	Spec      FusionJobSpec
	Startup   time.Duration
	Eval      time.Duration
	Output    time.Duration
	Failed    bool
	FailPoint time.Duration // elapsed run time at failure
}

// Total returns the job wall-clock time (time to failure for failed
// jobs).
func (j JobResult) Total() time.Duration {
	if j.Failed {
		return j.FailPoint
	}
	return j.Startup + j.Eval + j.Output
}

// PosesPerSecond returns the end-to-end job throughput (0 for failed
// jobs).
func (j JobResult) PosesPerSecond() float64 {
	if j.Failed {
		return 0
	}
	return float64(j.Spec.Poses) / j.Total().Seconds()
}

// SimulateFusionJob runs one Fusion scoring job through the cost
// model. Jitter models run-to-run variance (< 5 minutes in the
// paper's measurements).
func SimulateFusionJob(spec FusionJobSpec, rng *rand.Rand) JobResult {
	res := JobResult{Spec: spec}
	jitter := func(base float64) float64 {
		return base * (1 + 0.01*rng.NormFloat64())
	}
	res.Startup = minutes(jitter(startupMinutes))
	rate := RankRate(spec.BatchPerRank) * float64(spec.Ranks())
	evalMin := float64(spec.Poses) / rate / 60
	res.Eval = minutes(jitter(evalMin))
	res.Output = minutes(jitter(outputMinutes))
	if rng.Float64() < FailureRate(spec.Nodes) {
		res.Failed = true
		res.FailPoint = minutes(rng.Float64() * (startupMinutes + evalMin))
	}
	return res
}

func minutes(m float64) time.Duration {
	return time.Duration(m * float64(time.Minute))
}

// CampaignResult aggregates a many-job screening campaign.
type CampaignResult struct {
	Jobs          []JobResult
	Resubmissions int
	Makespan      time.Duration
	PosesScored   int
	PeakJobs      int // max concurrently running jobs
}

// PosesPerSecond returns the aggregate campaign throughput.
func (c CampaignResult) PosesPerSecond() float64 {
	if c.Makespan <= 0 {
		return 0
	}
	return float64(c.PosesScored) / c.Makespan.Seconds()
}

// PosesPerHour returns the aggregate hourly pose throughput.
func (c CampaignResult) PosesPerHour() float64 { return c.PosesPerSecond() * 3600 }

// CompoundsPerHour converts pose throughput to compound throughput
// (10 poses per compound, as in the screen).
func (c CampaignResult) CompoundsPerHour() float64 { return c.PosesPerHour() / 10 }

// PeakThroughput returns the aggregate poses/s of nJobs identical
// Fusion jobs running fully in parallel — Table 7's "peak performance
// (125 parallel jobs)" view, which excludes failure-resubmission drag.
func PeakThroughput(nJobs int, spec FusionJobSpec) float64 {
	rate := RankRate(spec.BatchPerRank) * float64(spec.Ranks())
	evalSec := float64(spec.Poses) / rate
	totalSec := startupMinutes*60 + evalSec + outputMinutes*60
	return float64(nJobs) * float64(spec.Poses) / totalSec
}

// SimulateCampaign runs nJobs Fusion jobs on an allocation of
// allocNodes nodes using an LSF-style event loop: jobs dispatch while
// nodes are free (throttled past the scheduler's concurrent-job
// comfort zone), failed jobs are resubmitted (the paper's fault-
// tolerant many-small-jobs design: a failed job affects only its own
// 2M poses), and the campaign ends when every pose set has been
// scored.
func SimulateCampaign(nJobs, allocNodes int, spec FusionJobSpec, seed int64) (CampaignResult, error) {
	if spec.Nodes > allocNodes {
		return CampaignResult{}, fmt.Errorf("cluster: job needs %d nodes, allocation has %d", spec.Nodes, allocNodes)
	}
	rng := rand.New(rand.NewSource(seed))
	type running struct {
		end    float64 // seconds
		result JobResult
	}
	var res CampaignResult
	pending := nJobs
	freeNodes := allocNodes
	now := 0.0
	var active []running
	dispatchReady := 0.0
	for pending > 0 || len(active) > 0 {
		// Dispatch while nodes are free.
		for pending > 0 && freeNodes >= spec.Nodes && len(active) < schedulerJobCap {
			if now < dispatchReady {
				break
			}
			jr := SimulateFusionJob(spec, rng)
			active = append(active, running{end: now + jr.Total().Seconds(), result: jr})
			freeNodes -= spec.Nodes
			pending--
			dispatchReady = now + dispatchInterval
			if len(active) > res.PeakJobs {
				res.PeakJobs = len(active)
			}
		}
		if len(active) == 0 {
			now = dispatchReady
			continue
		}
		// Advance to the next completion (or dispatch slot).
		sort.Slice(active, func(a, b int) bool { return active[a].end < active[b].end })
		nextEvent := active[0].end
		if pending > 0 && freeNodes >= spec.Nodes && dispatchReady > now && dispatchReady < nextEvent {
			now = dispatchReady
			continue
		}
		now = nextEvent
		done := active[0]
		active = active[1:]
		freeNodes += spec.Nodes
		res.Jobs = append(res.Jobs, done.result)
		if done.result.Failed {
			pending++ // another job takes its place
			res.Resubmissions++
		} else {
			res.PosesScored += spec.Poses
		}
	}
	res.Makespan = time.Duration(now * float64(time.Second))
	return res, nil
}
