package cluster

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"deepfusion/internal/mmgbsa"
)

func TestLassenSpec(t *testing.T) {
	m := Lassen()
	if m.Nodes != 792 || m.GPUsPerNode != 4 || m.GPUMemoryGB != 16 {
		t.Fatalf("Lassen spec drifted: %+v", m)
	}
	if m.JobTimeLimit != 12*time.Hour {
		t.Fatal("LSF 12-hour limit drifted")
	}
}

func TestRankRateCalibration(t *testing.T) {
	// A 4-node batch-56 job must evaluate 2M poses in ~280 min.
	spec := DefaultFusionJob()
	rate := RankRate(spec.BatchPerRank) * float64(spec.Ranks())
	evalMin := 2_000_000 / rate / 60
	if math.Abs(evalMin-280) > 10 {
		t.Fatalf("eval time %v min, paper ~280", evalMin)
	}
}

func TestRankRateMonotoneInBatch(t *testing.T) {
	prev := 0.0
	for _, b := range []int{1, 12, 23, 56} {
		r := RankRate(b)
		if r <= prev {
			t.Fatalf("rate not increasing with batch: %v at %d", r, b)
		}
		prev = r
	}
}

func TestBatch56VsBatch12Gap(t *testing.T) {
	// Paper Figure 4: ~10 minute advantage for batch 56 over batch 12
	// on a 4-node job.
	spec := DefaultFusionJob()
	t56 := float64(spec.Poses) / (RankRate(56) * float64(spec.Ranks())) / 60
	t12 := float64(spec.Poses) / (RankRate(12) * float64(spec.Ranks())) / 60
	gap := t12 - t56
	if gap < 4 || gap > 20 {
		t.Fatalf("batch 12->56 gap = %v min, paper ~10", gap)
	}
}

func TestGPUUnderUtilized(t *testing.T) {
	// The paper observed loader-bound evaluation with the GPU
	// intermittently idle: utilization must be well below 1 even at the
	// largest batch.
	if u := GPUUtilization(56); u > 0.5 {
		t.Fatalf("GPU utilization %v; should be loader-bound", u)
	}
}

func TestFailureRates(t *testing.T) {
	cases := map[int]float64{1: 0.02, 2: 0.02, 4: 0.03, 8: 0.20}
	for nodes, want := range cases {
		if got := FailureRate(nodes); got != want {
			t.Fatalf("FailureRate(%d) = %v, want %v", nodes, got, want)
		}
	}
}

func TestSimulateFusionJobAnatomy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := DefaultFusionJob()
	// Average over several seeds to smooth jitter.
	var startup, eval, output, total float64
	n := 0
	for i := 0; i < 50; i++ {
		j := SimulateFusionJob(spec, rng)
		if j.Failed {
			continue
		}
		startup += j.Startup.Minutes()
		eval += j.Eval.Minutes()
		output += j.Output.Minutes()
		total += j.Total().Minutes()
		n++
	}
	startup /= float64(n)
	eval /= float64(n)
	output /= float64(n)
	total /= float64(n)
	if math.Abs(startup-20) > 2 {
		t.Fatalf("startup %v min, paper 20", startup)
	}
	if math.Abs(eval-280) > 12 {
		t.Fatalf("eval %v min, paper 280", eval)
	}
	if math.Abs(output-6.5) > 1 {
		t.Fatalf("output %v min, paper 6.5", output)
	}
	// Total ~5.1 hours.
	if math.Abs(total/60-5.1) > 0.3 {
		t.Fatalf("total %v h, paper ~5.1", total/60)
	}
}

func TestSingleJobThroughputMatchesTable7(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pps float64
	n := 0
	for i := 0; i < 60; i++ {
		j := SimulateFusionJob(DefaultFusionJob(), rng)
		if j.Failed {
			continue
		}
		pps += j.PosesPerSecond()
		n++
	}
	pps /= float64(n)
	// Table 7: 108 poses/s for a single job.
	if math.Abs(pps-108) > 8 {
		t.Fatalf("single-job throughput %v poses/s, paper 108", pps)
	}
}

func TestCampaignPeakThroughput(t *testing.T) {
	// Table 7 peak: 125 parallel 4-node jobs on 500 nodes reach
	// ~13,594 poses/s (~48.6M poses/hour, ~4.86M compounds/hour).
	peak := PeakThroughput(125, DefaultFusionJob())
	if math.Abs(peak-13594) > 800 {
		t.Fatalf("peak throughput %v poses/s, paper ~13,594", peak)
	}
	res, err := SimulateCampaign(125, 500, DefaultFusionJob(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// The full campaign (with failure resubmission) is slower than the
	// ideal parallel window but must stay in its vicinity.
	pps := res.PosesPerSecond()
	if pps < 0.5*peak || pps > peak {
		t.Fatalf("campaign throughput %v vs peak %v", pps, peak)
	}
	if res.PeakJobs != 125 {
		t.Fatalf("peak concurrent jobs %d, want 125", res.PeakJobs)
	}
	if res.PosesScored != 125*2_000_000 {
		t.Fatalf("poses scored %d", res.PosesScored)
	}
}

func TestCampaignResubmitsFailures(t *testing.T) {
	// With 8-node jobs (20% failure) failures must appear and be
	// resubmitted so all poses still get scored.
	spec := DefaultFusionJob()
	spec.Nodes = 8
	res, err := SimulateCampaign(60, 500, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resubmissions == 0 {
		t.Fatal("no failures at 20% failure rate over 60 jobs")
	}
	if res.PosesScored != 60*2_000_000 {
		t.Fatalf("failed jobs lost poses: %d", res.PosesScored)
	}
}

func TestCampaignQueuesWhenAllocationSmall(t *testing.T) {
	// 10 four-node jobs on 8 nodes: only 2 run at a time.
	res, err := SimulateCampaign(10, 8, DefaultFusionJob(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakJobs > 2 {
		t.Fatalf("peak jobs %d with an 8-node allocation", res.PeakJobs)
	}
	// Makespan must reflect ~5 sequential waves.
	if res.Makespan < 4*5*time.Hour/2 {
		t.Fatalf("makespan %v implausibly short", res.Makespan)
	}
}

func TestCampaignRejectsOversizedJob(t *testing.T) {
	spec := DefaultFusionJob()
	spec.Nodes = 16
	if _, err := SimulateCampaign(1, 8, spec, 6); err == nil {
		t.Fatal("expected error for job larger than allocation")
	}
}

func TestSchedulerJobCapRespected(t *testing.T) {
	// The paper hit LSF trouble past ~250 concurrent jobs; the
	// simulator caps concurrency at the scheduler comfort zone.
	spec := DefaultFusionJob()
	spec.Nodes = 1
	res, err := SimulateCampaign(400, 792, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakJobs > schedulerJobCap {
		t.Fatalf("scheduler allowed %d concurrent jobs", res.PeakJobs)
	}
}

func TestFusionSpeedupsVsPhysics(t *testing.T) {
	// Paper Section 4.2: Fusion is ~2.7x faster than Vina and ~403x
	// faster than MM/GBSA per node.
	rng := rand.New(rand.NewSource(8))
	var pps float64
	n := 0
	for i := 0; i < 40; i++ {
		j := SimulateFusionJob(DefaultFusionJob(), rng)
		if !j.Failed {
			pps += j.PosesPerSecond()
			n++
		}
	}
	pps /= float64(n)
	perNode := pps / 4
	vinaSpeedup := perNode / mmgbsa.VinaPosesPerSecPerNode
	gbsaSpeedup := perNode / mmgbsa.MMGBSAPosesPerSecPerNode
	if math.Abs(vinaSpeedup-2.7) > 0.4 {
		t.Fatalf("Vina speedup %v, paper 2.7x", vinaSpeedup)
	}
	if math.Abs(gbsaSpeedup-403) > 60 {
		t.Fatalf("MM/GBSA speedup %v, paper 403x", gbsaSpeedup)
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Figure 4: run time decreases with node count with diminishing
	// returns (fixed startup/output overheads).
	spec := DefaultFusionJob()
	var prevTotal float64 = math.Inf(1)
	var prevGain float64 = math.Inf(1)
	for _, nodes := range []int{1, 2, 4, 8} {
		spec.Nodes = nodes
		rate := RankRate(spec.BatchPerRank) * float64(spec.Ranks())
		total := startupMinutes + float64(spec.Poses)/rate/60 + outputMinutes
		if total >= prevTotal {
			t.Fatalf("no speedup at %d nodes", nodes)
		}
		gain := prevTotal - total
		if gain > prevGain {
			t.Fatalf("scaling gain should diminish: %v then %v", prevGain, gain)
		}
		prevGain = gain
		prevTotal = total
	}
}

func TestMaxBatchPerGPUMatchesPaper(t *testing.T) {
	// Paper: 56 poses fit alongside the 1.5 GB model on a 16 GB V100.
	if got := MaxBatchPerGPU(16); got != 56 {
		t.Fatalf("MaxBatchPerGPU(16) = %d, paper 56", got)
	}
	if got := MaxBatchPerGPU(1.9); got != 0 {
		t.Fatalf("tiny GPU should hold no poses, got %d", got)
	}
}

func TestNodeMemoryBudget(t *testing.T) {
	m := Lassen()
	if !FitsOnNode(m, 12) {
		t.Fatal("the production 12-loader configuration must fit a Lassen node")
	}
	if MaxLoadersPerRank(m) < 12 {
		t.Fatalf("MaxLoadersPerRank = %d; paper ran 12", MaxLoadersPerRank(m))
	}
	if FitsOnNode(Machine{GPUsPerNode: 4, MemoryGBPerNode: 20}, 12) {
		t.Fatal("48 loader-GB cannot fit a 20 GB node")
	}
}

func TestTracedCampaignMatchesPlain(t *testing.T) {
	spec := DefaultFusionJob()
	plain, err := SimulateCampaign(12, 500, spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	traced, trace, err := TracedCampaign(12, 500, spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if traced.PosesScored != plain.PosesScored {
		t.Fatalf("traced campaign diverges: %d vs %d poses", traced.PosesScored, plain.PosesScored)
	}
	if len(trace) != len(traced.Jobs) {
		t.Fatalf("trace entries %d, jobs %d", len(trace), len(traced.Jobs))
	}
	for _, e := range trace {
		if e.End <= e.Start {
			t.Fatalf("job %d: end before start", e.JobID)
		}
	}
}

func TestRenderGantt(t *testing.T) {
	_, trace, err := TracedCampaign(6, 16, DefaultFusionJob(), 10)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGantt(trace, 60)
	if out == "" {
		t.Fatal("empty gantt")
	}
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines < len(trace) {
		t.Fatalf("gantt rows %d < trace %d", lines, len(trace))
	}
	if RenderGantt(nil, 60) != "" {
		t.Fatal("empty trace must render empty")
	}
}
