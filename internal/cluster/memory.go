package cluster

// GPU and host memory accounting for the Fusion scoring job, from the
// paper's Section 4.2: the Coherent Fusion model occupies 1.5 GB of
// each 16 GB V100; the remaining memory bounds the pose batch, and 56
// poses per batch was the production maximum. Host memory (256 GB per
// node) holds the data loaders' pre-featurized batches.

// Memory model constants (GB unless noted).
const (
	ModelGPUMemGB   = 1.5  // Coherent Fusion resident size
	poseGPUMemGB    = 0.25 // one voxel+graph pose on the GPU
	gpuReserveGB    = 0.5  // allocator overhead / workspace
	hostPerLoaderGB = 1.0  // staging buffers per data loader
	hostSystemGB    = 16.0 // OS + runtime per node
)

// MaxBatchPerGPU returns the largest pose batch that fits alongside
// the model on a GPU with the given memory. With the paper's 16 GB
// V100 this is 56, the production batch size.
func MaxBatchPerGPU(gpuMemGB float64) int {
	free := gpuMemGB - ModelGPUMemGB - gpuReserveGB
	if free <= 0 {
		return 0
	}
	return int(free / poseGPUMemGB)
}

// FitsOnNode reports whether a job's per-node footprint — 4 model
// replicas plus loaders' host staging — fits the node's memory.
func FitsOnNode(m Machine, loadersPerRank int) bool {
	ranksPerNode := float64(m.GPUsPerNode)
	host := hostSystemGB + ranksPerNode*float64(loadersPerRank)*hostPerLoaderGB
	return host <= float64(m.MemoryGBPerNode)
}

// MaxLoadersPerRank returns the largest loader count whose host
// staging fits the node (the paper used 12 and noted more loaders
// reduced stability).
func MaxLoadersPerRank(m Machine) int {
	free := float64(m.MemoryGBPerNode) - hostSystemGB
	perRank := free / float64(m.GPUsPerNode)
	n := int(perRank / hostPerLoaderGB)
	if n < 0 {
		return 0
	}
	return n
}
