package fusion

import (
	"fmt"
	"strings"
	"testing"
)

func TestCNN3DSummaryCountsMatchParams(t *testing.T) {
	m := NewCNN3D(tinyCNNConfig(), 1)
	s := m.Summary()
	want := fmt.Sprintf("total: %d trainable parameters", countParams(m.Params()))
	if !strings.Contains(s, want) {
		t.Fatalf("summary total mismatch; want %q in:\n%s", want, s)
	}
	for _, layer := range []string{"conv1 (5x5x5)", "conv2 (3x3x3)", "fc1", "fc2 (latent)", "out"} {
		if !strings.Contains(s, layer) {
			t.Errorf("summary missing layer %q", layer)
		}
	}
}

func TestSGCNNSummaryCountsMatchParams(t *testing.T) {
	m := NewSGCNN(tinySGConfig(), 2)
	s := m.Summary()
	want := fmt.Sprintf("total: %d trainable parameters", countParams(m.Params()))
	if !strings.Contains(s, want) {
		t.Fatalf("summary total mismatch; want %q in:\n%s", want, s)
	}
	for _, layer := range []string{"project", "gated conv (cov)", "gated conv (noncov)", "gather (latent)"} {
		if !strings.Contains(s, layer) {
			t.Errorf("summary missing layer %q", layer)
		}
	}
}

func TestFusionSummaryModes(t *testing.T) {
	cnn := NewCNN3D(tinyCNNConfig(), 3)
	sg := NewSGCNN(tinySGConfig(), 4)

	mid := NewFusion(DefaultMidFusionConfig(), cnn, sg, 5)
	midSum := mid.Summary()
	if !strings.Contains(midSum, "Mid-level Fusion (frozen heads)") {
		t.Errorf("mid-level summary lacks mode line:\n%s", midSum)
	}

	coh := NewFusion(DefaultCoherentConfig(), cnn, sg, 6)
	cohSum := coh.Summary()
	if !strings.Contains(cohSum, "Coherent Fusion (backprop through both heads)") {
		t.Errorf("coherent summary lacks mode line:\n%s", cohSum)
	}

	// The trainable count differs by exactly the heads' parameters.
	headParams := countParams(cnn.Params()) + countParams(sg.Params())
	midTrainable := countParams(mid.Params())
	cohTrainable := countParams(coh.Params())
	wantGap := headParams
	// The two configs may differ in fusion-layer hyper-parameters, so
	// compare against each model's own FusionParams instead.
	if cohTrainable-countParams(coh.FusionParams()) != wantGap {
		t.Errorf("coherent trainable params should exceed its fusion block by the heads (%d), got %d",
			wantGap, cohTrainable-countParams(coh.FusionParams()))
	}
	if midTrainable != countParams(mid.FusionParams()) {
		t.Errorf("mid-level trainable params (%d) should equal its fusion block (%d)",
			midTrainable, countParams(mid.FusionParams()))
	}

	// Both render the paper's three blocks.
	for _, block := range []string{"3D-CNN head", "SG-CNN head", "Fusion block"} {
		if !strings.Contains(cohSum, block) {
			t.Errorf("summary missing %q block", block)
		}
	}
}

func TestFusionSummaryModelSpecificLayers(t *testing.T) {
	cnn := NewCNN3D(tinyCNNConfig(), 7)
	sg := NewSGCNN(tinySGConfig(), 8)
	cfg := DefaultMidFusionConfig()
	cfg.ModelSpecific = true
	f := NewFusion(cfg, cnn, sg, 9)
	s := f.Summary()
	if !strings.Contains(s, "model-specific CNN") || !strings.Contains(s, "model-specific SG") {
		t.Fatalf("ModelSpecific summary should list both optional dense layers:\n%s", s)
	}
}
