package fusion

import "fmt"

// Precision selects the numeric width of the pooled inference path.
// Float64 is the verified reference — byte-identical to the
// allocating PredictBatch and the golden baselines — and stays the
// default everywhere. Float32 is the screening fast path: half the
// memory traffic through every panel, scatter and gather kernel, with
// rank fidelity against the reference pinned by the engine-level A/B
// harness (Spearman and top-K overlap on the planted-affinity oracle)
// rather than bitwise equality.
//
// The knob rides on the inference workspace (NewWorkspaceFor), so one
// Scorer contract serves both widths: the engine builds per-rank
// workspaces at the job's precision and every ScoreBatchInto dispatch
// follows the workspace.
type Precision string

const (
	// PrecisionF64 is the float64 reference path.
	PrecisionF64 Precision = "f64"
	// PrecisionF32 is the float32 inference fast path.
	PrecisionF32 Precision = "f32"
)

// Normalize maps the empty string — legacy configs, zero values,
// pre-PR6 campaign manifests — to the f64 reference.
func (p Precision) Normalize() Precision {
	if p == "" {
		return PrecisionF64
	}
	return p
}

// Validate rejects anything but f32, f64 and the empty string.
func (p Precision) Validate() error {
	switch p.Normalize() {
	case PrecisionF64, PrecisionF32:
		return nil
	}
	return fmt.Errorf("fusion: unknown precision %q (want f32 or f64)", string(p))
}
