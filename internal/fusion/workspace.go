package fusion

import (
	"fmt"

	"deepfusion/internal/chem"
	"deepfusion/internal/featurize"
	"deepfusion/internal/graph"
	"deepfusion/internal/nn"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// This file is the zero-allocation batched-inference surface of the
// fusion models: every family gains PredictBatchInto, which scores a
// batch through workspace-pooled buffers and writes predictions into a
// caller-owned slice. After one warm-up batch, a steady-state call
// performs zero heap allocations, and the scores are byte-identical to
// PredictBatch — the allocating path survives unchanged as the
// training/reference engine and the golden baseline.

// Workspace owns the pooled buffers of one inference stream: the
// tensor arena and cached weight packings (via nn.Workspace) plus the
// batch-assembly scratch — disjoint-union edge lists and gather
// segments. The screening engine gives each rank one workspace, shared
// by every scorer replica the rank owns; each PredictBatchInto call
// recycles the previous call's buffers, so results must be copied out
// before the next call (PredictBatchInto's out slice satisfies this by
// construction).
//
// A Workspace is not safe for concurrent use, and its cached weight
// packings assume frozen weights: create it after training, which the
// screening engine does by cloning rank replicas from trained models.
type Workspace struct {
	nn        *nn.Workspace
	precision Precision
	cov       []featurize.Edge
	nc        []featurize.Edge
	segs      []graph.Segment
}

// NewWorkspace returns an empty inference workspace on the f64
// reference path.
func NewWorkspace() *Workspace { return NewWorkspaceFor(PrecisionF64) }

// NewWorkspaceFor returns an empty inference workspace running at the
// given precision: every PredictBatchInto/ScoreBatchInto call through
// it dispatches to that numeric width, so the engine selects the
// whole funnel's precision by constructing rank workspaces once. It
// panics on an unknown precision (Validate upstream for an error).
func NewWorkspaceFor(p Precision) *Workspace {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Workspace{nn: nn.NewWorkspace(), precision: p.Normalize()}
}

// Precision reports the numeric width this workspace dispatches to.
func (ws *Workspace) Precision() Precision { return ws.precision }

// Reset recycles the per-batch buffers; cached weight packings persist.
func (ws *Workspace) Reset() { ws.nn.Reset() }

// stackVoxels assembles per-sample [C,G,G,G] grids into a pooled
// [B,C,G,G,G] batch tensor — the inference counterpart of stackVoxels
// (no augmentation; inference never rotates).
func (ws *Workspace) stackVoxels(samples []*Sample) *tensor.Tensor {
	s0 := samples[0].Voxels
	b := ws.nn.Arena.GetUninit(len(samples), s0.Dim(0), s0.Dim(1), s0.Dim(2), s0.Dim(3))
	per := s0.Len()
	for i, s := range samples {
		copy(b.Data[i*per:(i+1)*per], s.Voxels.Data)
	}
	return b
}

// unionSamples builds the disjoint union of the samples' complex
// graphs into pooled buffers — the inference counterpart of
// unionGraphs, identical layout and edge order.
func (ws *Workspace) unionSamples(samples []*Sample) (nodes *tensor.Tensor, cov, nc []featurize.Edge, segs []graph.Segment) {
	totalNodes := 0
	for _, s := range samples {
		totalNodes += s.Graph.NumNodes()
	}
	nodes = ws.nn.Arena.GetUninit(totalNodes, featurize.NodeFeatures)
	ws.cov, ws.nc, ws.segs = ws.cov[:0], ws.nc[:0], ws.segs[:0]
	off := 0
	for _, s := range samples {
		g := s.Graph
		copy(nodes.Data[off*featurize.NodeFeatures:], g.Nodes.Data)
		ws.segs = append(ws.segs, graph.Segment{Start: off, NumLigand: g.NumLigand})
		for _, e := range g.Covalent {
			ws.cov = append(ws.cov, featurize.Edge{From: e.From + off, To: e.To + off, Dist: e.Dist})
		}
		for _, e := range g.NonCov {
			ws.nc = append(ws.nc, featurize.Edge{From: e.From + off, To: e.To + off, Dist: e.Dist})
		}
		off += g.NumNodes()
	}
	return nodes, ws.cov, ws.nc, ws.segs
}

// addInfer is the pooled counterpart of tensor.Add.
func addInfer(ws *nn.Workspace, a, b *tensor.Tensor) *tensor.Tensor {
	if len(a.Data) != len(b.Data) {
		panic("fusion: addInfer length mismatch")
	}
	r := ws.Arena.GetUninit(a.Shape...)
	for i := range a.Data {
		r.Data[i] = a.Data[i] + b.Data[i]
	}
	return r
}

func checkInto(samples []*Sample, out []float64) {
	if len(out) != len(samples) {
		panic(fmt.Sprintf("fusion: PredictBatchInto out length %d != batch size %d", len(out), len(samples)))
	}
}

// forwardInfer is the pooled inference forward of the voxel head —
// Forward with train=false, stage for stage, into arena buffers.
func (m *CNN3D) forwardInfer(x *tensor.Tensor, ws *nn.Workspace) (pred, latent *tensor.Tensor) {
	h := m.act[0].ForwardInfer(m.conv1.ForwardInfer(x, ws), ws)
	h2 := m.act[1].ForwardInfer(m.conv2.ForwardInfer(h, ws), ws)
	if m.Cfg.Residual1 {
		h2 = addInfer(ws, h2, h)
	}
	h2 = m.pool1.ForwardInfer(h2, ws)
	h3 := m.act[2].ForwardInfer(m.conv3.ForwardInfer(h2, ws), ws)
	h4 := m.act[3].ForwardInfer(m.conv4.ForwardInfer(h3, ws), ws)
	if m.Cfg.Residual2 {
		h4 = addInfer(ws, h4, h3)
	}
	h4 = m.pool2.ForwardInfer(h4, ws)
	f := m.flat.ForwardInfer(h4, ws)
	// drop1/drop2 are the identity at inference.
	d1 := m.fc1.ForwardInfer(f, ws)
	if m.bn != nil {
		d1 = m.bn.ForwardInfer(d1, ws)
	}
	d1 = m.act[4].ForwardInfer(d1, ws)
	latent = m.act[5].ForwardInfer(m.fc2.ForwardInfer(d1, ws), ws)
	pred = m.out.ForwardInfer(latent, ws)
	return pred, latent
}

// forwardBatchInfer is the pooled inference forward of the graph head
// over the disjoint union of the samples' graphs.
func (m *SGCNN) forwardBatchInfer(samples []*Sample, ws *Workspace) (pred, latent *tensor.Tensor) {
	nodes, cov, nc, segs := ws.unionSamples(samples)
	h := m.proj.ForwardInfer(nodes, ws.nn)
	h = m.covConv.ForwardInfer(h, cov, ws.nn)
	h = m.bridge.ForwardInfer(h, ws.nn)
	h = m.ncConv.ForwardInfer(h, nc, ws.nn)
	latent = m.gather.ForwardSegmentsInfer(h, nodes, segs, ws.nn)
	y := m.act1.ForwardInfer(m.d1.ForwardInfer(latent, ws.nn), ws.nn)
	y = m.act2.ForwardInfer(m.d2.ForwardInfer(y, ws.nn), ws.nn)
	pred = m.out.ForwardInfer(y, ws.nn)
	return pred, latent
}

// PredictBatchInto scores featurized samples through the pooled
// engine, writing one prediction per sample into out (which must have
// the batch's length). Scores are byte-identical to PredictBatch; a
// warm workspace makes the call allocation-free.
func (m *CNN3D) PredictBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	checkInto(samples, out)
	if len(samples) == 0 {
		return
	}
	ws.Reset()
	if ws.precision == PrecisionF32 {
		m.predictBatchInto32(samples, ws, out)
		return
	}
	pred, _ := m.forwardInfer(ws.stackVoxels(samples), ws.nn)
	copy(out, pred.Data)
}

// PredictBatchInto scores featurized samples through the pooled graph
// engine; see CNN3D.PredictBatchInto for the contract.
func (m *SGCNN) PredictBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	checkInto(samples, out)
	if len(samples) == 0 {
		return
	}
	ws.Reset()
	if ws.precision == PrecisionF32 {
		m.predictBatchInto32(samples, ws, out)
		return
	}
	pred, _ := m.forwardBatchInfer(samples, ws)
	copy(out, pred.Data)
}

// PredictBatchInto evaluates both heads through the pooled engine and
// averages, like PredictBatch.
func (l *LateFusion) PredictBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	checkInto(samples, out)
	if len(samples) == 0 {
		return
	}
	ws.Reset()
	if ws.precision == PrecisionF32 {
		l.predictBatchInto32(samples, ws, out)
		return
	}
	cnnPred, _ := l.CNN.forwardInfer(ws.stackVoxels(samples), ws.nn)
	sgPred, _ := l.SG.forwardBatchInfer(samples, ws)
	for i := range out {
		out[i] = (cnnPred.Data[i] + sgPred.Data[i]) / 2
	}
}

// PredictBatchInto runs the pooled inference pass of the Mid-level /
// Coherent fusion stack; see CNN3D.PredictBatchInto for the contract.
func (f *Fusion) PredictBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	checkInto(samples, out)
	if len(samples) == 0 {
		return
	}
	ws.Reset()
	if ws.precision == PrecisionF32 {
		f.predictBatchInto32(samples, ws, out)
		return
	}
	_, cnnLat := f.CNN.forwardInfer(ws.stackVoxels(samples), ws.nn)
	_, sgLat := f.SG.forwardBatchInfer(samples, ws)

	b := len(samples)
	concat := ws.nn.Arena.GetUninit(b, f.concatWidth)
	for i := 0; i < b; i++ {
		copy(concat.Row(i)[:f.cnnLatW], cnnLat.Row(i))
		copy(concat.Row(i)[f.cnnLatW:f.cnnLatW+f.sgLatW], sgLat.Row(i))
	}
	if f.msCNN != nil {
		mc := f.msActC.ForwardInfer(f.msCNN.ForwardInfer(cnnLat, ws.nn), ws.nn)
		ms := f.msActS.ForwardInfer(f.msSG.ForwardInfer(sgLat, ws.nn), ws.nn)
		off := f.cnnLatW + f.sgLatW
		for i := 0; i < b; i++ {
			copy(concat.Row(i)[off:off+f.msW], mc.Row(i))
			copy(concat.Row(i)[off+f.msW:], ms.Row(i))
		}
	}
	h := concat
	for i, l := range f.layers {
		prev := h
		h = l.ForwardInfer(h, ws.nn)
		if f.bns[i] != nil {
			h = f.bns[i].ForwardInfer(h, ws.nn)
		}
		h = f.acts[i].ForwardInfer(h, ws.nn)
		// drops are the identity at inference.
		if f.Cfg.ResidualFusion && prev.Dim(1) == h.Dim(1) {
			h = addInfer(ws.nn, h, prev)
		}
	}
	pred := f.out.ForwardInfer(h, ws.nn)
	copy(out, pred.Data)
}

// ScoreBatchInto implements the screening engine's pooled scoring
// handshake (screen.ScorerInto) for the voxel head.
func (m *CNN3D) ScoreBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	m.PredictBatchInto(samples, ws, out)
}

// ScoreBatchInto implements the pooled scoring handshake.
func (m *SGCNN) ScoreBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	m.PredictBatchInto(samples, ws, out)
}

// ScoreBatchInto implements the pooled scoring handshake.
func (l *LateFusion) ScoreBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	l.PredictBatchInto(samples, ws, out)
}

// ScoreBatchInto implements the pooled scoring handshake.
func (f *Fusion) ScoreBatchInto(samples []*Sample, ws *Workspace, out []float64) {
	f.PredictBatchInto(samples, ws, out)
}

// FeaturizeComplexInto featurizes a posed complex into s, reusing its
// voxel grid and graph buffers (see featurize.VoxelizeInto and
// featurize.BuildGraphInto) — the screening loaders recycle pose slots
// through it. A nil s allocates a fresh sample. Results are identical
// to FeaturizeComplex.
func FeaturizeComplexInto(s *Sample, id string, p *target.Pocket, mol *chem.Mol, label float64, vo featurize.VoxelOptions, gro featurize.GraphOptions) *Sample {
	if s == nil {
		s = &Sample{}
	}
	s.ID, s.Pocket, s.Mol, s.Label = id, p, mol, label
	s.Voxels = featurize.VoxelizeInto(s.Voxels, p, mol, vo)
	s.voxState = featurize.VoxelSlotState{} // grid no longer holds a baseline
	s.Graph = featurize.BuildGraphInto(s.Graph, p, mol, gro)
	return s
}

// FeaturizeComplexWithPrefeature featurizes a posed complex into s
// through a shared target-invariant prefeature cache
// (featurize.PocketPrefeature): per-pose voxelization splats only the
// ligand over the cached pocket baseline, and graph construction
// copies the cached pocket node rows and finds pocket neighbors
// through the prefeature's cell list. Results are byte-identical to
// FeaturizeComplex with the prefeature's options; a warm slot
// allocates nothing. A nil s allocates a fresh sample.
func FeaturizeComplexWithPrefeature(s *Sample, pre *featurize.PocketPrefeature, id string, mol *chem.Mol, label float64) *Sample {
	if s == nil {
		s = &Sample{}
	}
	s.ID, s.Pocket, s.Mol, s.Label = id, pre.Pocket(), mol, label
	s.Voxels = pre.VoxelizeInto(s.Voxels, &s.voxState, mol)
	s.Graph = pre.BuildGraphInto(s.Graph, mol)
	return s
}
