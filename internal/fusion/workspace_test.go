package fusion

import (
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/pdbbind"
)

// TestPredictBatchIntoByteIdentical is the golden guarantee of the
// pooled engine: for every model family and batch size, a pooled
// PredictBatchInto over a (dirty, reused) workspace must reproduce the
// allocating PredictBatch bit for bit.
func TestPredictBatchIntoByteIdentical(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:8])
	cnn := NewCNN3D(tinyCNNConfig(), 91)
	sg := NewSGCNN(tinySGConfig(), 92)
	late := &LateFusion{CNN: cnn, SG: sg}
	mid := NewFusion(DefaultMidFusionConfig(), cnn, sg, 93)
	coh := NewFusion(DefaultCoherentConfig(), cnn, sg, 94)

	ws := NewWorkspace() // one workspace shared across families and batches
	models := []struct {
		name  string
		batch func(ss []*Sample) []float64
		into  func(ss []*Sample, out []float64)
	}{
		{"CNN3D", cnn.PredictBatch, func(ss []*Sample, out []float64) { cnn.PredictBatchInto(ss, ws, out) }},
		{"SGCNN", sg.PredictBatch, func(ss []*Sample, out []float64) { sg.PredictBatchInto(ss, ws, out) }},
		{"Late", late.PredictBatch, func(ss []*Sample, out []float64) { late.PredictBatchInto(ss, ws, out) }},
		{"Mid", mid.PredictBatch, func(ss []*Sample, out []float64) { mid.PredictBatchInto(ss, ws, out) }},
		{"Coherent", coh.PredictBatch, func(ss []*Sample, out []float64) { coh.PredictBatchInto(ss, ws, out) }},
	}
	for _, m := range models {
		for _, bs := range []int{1, 3, 8} {
			for lo := 0; lo < len(samples); lo += bs {
				hi := lo + bs
				if hi > len(samples) {
					hi = len(samples)
				}
				want := m.batch(samples[lo:hi])
				got := make([]float64, hi-lo)
				m.into(samples[lo:hi], got)
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("%s: batch size %d sample %d: pooled %v != allocating %v",
							m.name, bs, lo+j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestWorkspaceInterleavedScorersNoLeakage guards against cross-batch
// buffer leakage: two different models alternate batches over ONE
// workspace, and every result must equal the fresh-allocation path.
// Stale data surviving a Reset, a packed-weight cache collision, or a
// buffer handed to two tensors would all break the equality.
func TestWorkspaceInterleavedScorersNoLeakage(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:8])
	cnnA := NewCNN3D(tinyCNNConfig(), 31)
	sgA := NewSGCNN(tinySGConfig(), 32)
	a := NewFusion(DefaultCoherentConfig(), cnnA, sgA, 33)
	cnnB := NewCNN3D(tinyCNNConfig(), 41)
	sgB := NewSGCNN(tinySGConfig(), 42)
	b := NewFusion(DefaultMidFusionConfig(), cnnB, sgB, 43)

	ws := NewWorkspace()
	out := make([]float64, len(samples))
	for round := 0; round < 3; round++ {
		for bi, m := range []*Fusion{a, b} {
			// Vary batch geometry across rounds to stress the size classes.
			bs := 2 + round*2 + bi
			for lo := 0; lo < len(samples); lo += bs {
				hi := lo + bs
				if hi > len(samples) {
					hi = len(samples)
				}
				m.PredictBatchInto(samples[lo:hi], ws, out[lo:hi])
				want := m.PredictBatch(samples[lo:hi])
				for j := range want {
					if out[lo+j] != want[j] {
						t.Fatalf("round %d model %d batch [%d,%d) sample %d: interleaved %v != fresh %v",
							round, bi, lo, hi, lo+j, out[lo+j], want[j])
					}
				}
			}
		}
	}
}

// TestPredictBatchIntoZeroAlloc pins the tentpole: a warm steady-state
// batch through the full Coherent Fusion stack (both heads, fusion
// layers) performs zero heap allocations.
func TestPredictBatchIntoZeroAlloc(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:8])
	cnn := NewCNN3D(tinyCNNConfig(), 51)
	sg := NewSGCNN(tinySGConfig(), 52)
	f := NewFusion(DefaultCoherentConfig(), cnn, sg, 53)
	ws := NewWorkspace()
	out := make([]float64, len(samples))
	run := func() { f.PredictBatchInto(samples, ws, out) }
	for i := 0; i < 3; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Fatalf("warm PredictBatchInto allocates %.1f times per run, want 0", avg)
	}
}

// TestFeaturizeComplexWithPrefeatureMatchesFresh pins the cached
// loader path at the Sample level: featurizing through a shared pocket
// prefeature into a recycled slot — including a slot previously used
// by the uncached path, and across two different pockets' prefeatures
// — equals a fresh FeaturizeComplex bit-for-bit.
func TestFeaturizeComplexWithPrefeatureMatchesFresh(t *testing.T) {
	ds := dataset(t)
	vo := tinyCNNConfig().Voxel
	gro := tinySGConfig().Graph
	c1, c2, c3 := ds.Core[0], ds.Core[1], ds.Core[2]
	pre1 := featurize.NewPocketPrefeature(c1.Pocket, vo, gro)

	// Start the slot on the uncached path, then move it through the
	// prefeature path — the slot must detect the foreign grid.
	slot := FeaturizeComplexInto(nil, c3.ID, c3.Pocket, c3.Mol, 3, vo, gro)
	steps := []struct {
		pre *featurize.PocketPrefeature
		c   *pdbbind.Complex
	}{
		{pre1, c1},
		{pre1, c2},
		{featurize.NewPocketPrefeature(c3.Pocket, vo, gro), c3},
		{pre1, c1},
	}
	for i, st := range steps {
		slot = FeaturizeComplexWithPrefeature(slot, st.pre, st.c.ID, st.c.Mol, float64(i))
		want := FeaturizeComplex(st.c.ID, st.c.Pocket, st.c.Mol, float64(i), vo, gro)
		if slot.ID != want.ID || slot.Label != want.Label || slot.Pocket != want.Pocket {
			t.Fatalf("step %d identity: got %s/%v want %s/%v", i, slot.ID, slot.Label, want.ID, want.Label)
		}
		for j := range want.Voxels.Data {
			if slot.Voxels.Data[j] != want.Voxels.Data[j] {
				t.Fatalf("step %d: voxel %d differs from fresh featurization", i, j)
			}
		}
		if slot.Graph.NumNodes() != want.Graph.NumNodes() ||
			len(slot.Graph.Covalent) != len(want.Graph.Covalent) ||
			len(slot.Graph.NonCov) != len(want.Graph.NonCov) {
			t.Fatalf("step %d: graph geometry differs from fresh featurization", i)
		}
		for j := range want.Graph.Nodes.Data {
			if slot.Graph.Nodes.Data[j] != want.Graph.Nodes.Data[j] {
				t.Fatalf("step %d: node feature %d differs from fresh featurization", i, j)
			}
		}
		for j, e := range want.Graph.NonCov {
			if slot.Graph.NonCov[j] != e {
				t.Fatalf("step %d: non-covalent edge %d differs from fresh featurization", i, j)
			}
		}
	}
}

// TestFeaturizeComplexIntoMatchesFresh pins slot recycling: a sample
// featurized into a dirty slot equals a freshly featurized one.
func TestFeaturizeComplexIntoMatchesFresh(t *testing.T) {
	ds := dataset(t)
	c1, c2 := ds.Core[0], ds.Core[1]
	vo := tinyCNNConfig().Voxel
	gro := tinySGConfig().Graph
	slot := FeaturizeComplexInto(nil, c1.ID, c1.Pocket, c1.Mol, 1, vo, gro)
	slot = FeaturizeComplexInto(slot, c2.ID, c2.Pocket, c2.Mol, 2, vo, gro)
	want := FeaturizeComplex(c2.ID, c2.Pocket, c2.Mol, 2, vo, gro)
	if slot.ID != want.ID || slot.Label != want.Label {
		t.Fatalf("identity: got %s/%v want %s/%v", slot.ID, slot.Label, want.ID, want.Label)
	}
	for i := range want.Voxels.Data {
		if slot.Voxels.Data[i] != want.Voxels.Data[i] {
			t.Fatalf("voxel %d differs after slot reuse", i)
		}
	}
	if slot.Graph.NumNodes() != want.Graph.NumNodes() ||
		len(slot.Graph.Covalent) != len(want.Graph.Covalent) ||
		len(slot.Graph.NonCov) != len(want.Graph.NonCov) {
		t.Fatalf("graph geometry differs after slot reuse")
	}
	for i := range want.Graph.Nodes.Data {
		if slot.Graph.Nodes.Data[i] != want.Graph.Nodes.Data[i] {
			t.Fatalf("node feature %d differs after slot reuse", i)
		}
	}
}
