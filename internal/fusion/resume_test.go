package fusion

// Pause/resume invariants. The paper's training ran under Lassen's LSF
// scheduler, "pausing, rescheduling, and resuming training jobs after
// a maximum run-time" (Section 3.2). These tests pin the property that
// makes requeueing safe: checkpointing a model mid-run and resuming
// from the restored weights behaves exactly like continuing in memory.

import (
	"bytes"
	"testing"

	"deepfusion/internal/nn"
)

// zeroParams wipes every parameter so a later LoadParams provably does
// the restoration work.
func zeroParams(params []*nn.Param) {
	for _, p := range params {
		p.Value.Fill(0)
	}
}

func TestSGCNNCheckpointResumeMatchesInMemory(t *testing.T) {
	ds := dataset(t)
	train, val := featurized(t, ds.Train[:48]), featurized(t, ds.Val[:12])
	cfg := tinySGConfig()
	cfg.Epochs = 2

	// Phase 1: two epochs.
	m, _ := TrainSGCNN(cfg, train, val, 11)

	// Path A: continue in memory.
	inMem := m.Clone()
	histA := ContinueSGCNN(inMem, cfg, train, val, 12)

	// Path B: checkpoint to bytes, restore into a wiped clone
	// (simulating an LSF requeue onto a fresh allocation), continue
	// with the same seed.
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	restored := m.Clone()
	zeroParams(restored.Params())
	if err := nn.LoadParams(&buf, restored.Params()); err != nil {
		t.Fatal(err)
	}
	histB := ContinueSGCNN(restored, cfg, train, val, 12)

	if len(histA.ValLoss) == 0 || len(histA.ValLoss) != len(histB.ValLoss) {
		t.Fatalf("mismatched histories: %d vs %d epochs", len(histA.ValLoss), len(histB.ValLoss))
	}
	for i := range histA.ValLoss {
		if histA.ValLoss[i] != histB.ValLoss[i] {
			t.Fatalf("epoch %d: in-memory val loss %v != resumed val loss %v — checkpointing perturbs training",
				i, histA.ValLoss[i], histB.ValLoss[i])
		}
	}
	if a, b := EvalSGCNN(inMem, val), EvalSGCNN(restored, val); a != b {
		t.Fatalf("final val MSE differs after resume: %v != %v", a, b)
	}
}

func TestCNN3DCheckpointResumeMatchesInMemory(t *testing.T) {
	ds := dataset(t)
	train, val := featurized(t, ds.Train[:48]), featurized(t, ds.Val[:12])
	cfg := tinyCNNConfig()
	cfg.Epochs = 1

	m, _ := TrainCNN3D(cfg, train, val, 21)

	inMem := m.Clone()
	histA := ContinueCNN3D(inMem, cfg, train, val, 22)

	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	restored := m.Clone()
	zeroParams(restored.Params())
	if err := nn.LoadParams(&buf, restored.Params()); err != nil {
		t.Fatal(err)
	}
	histB := ContinueCNN3D(restored, cfg, train, val, 22)

	if len(histA.ValLoss) != len(histB.ValLoss) {
		t.Fatalf("mismatched histories: %d vs %d epochs", len(histA.ValLoss), len(histB.ValLoss))
	}
	for i := range histA.ValLoss {
		if histA.ValLoss[i] != histB.ValLoss[i] {
			t.Fatalf("epoch %d: in-memory %v != resumed %v", i, histA.ValLoss[i], histB.ValLoss[i])
		}
	}
	if a, b := EvalCNN3D(inMem, val), EvalCNN3D(restored, val); a != b {
		t.Fatalf("final val MSE differs after resume: %v != %v", a, b)
	}
}

func coherentAllParams(f *Fusion) []*nn.Param {
	all := append([]*nn.Param{}, f.FusionParams()...)
	all = append(all, f.CNN.Params()...)
	return append(all, f.SG.Params()...)
}

func TestCoherentCheckpointRoundTripPreservesPredictions(t *testing.T) {
	// Save -> load alone (no further training) is prediction-exact for
	// the full coherent fusion model, whose checkpoint cmd/train ships.
	ds := dataset(t)
	train, val := featurized(t, ds.Train[:48]), featurized(t, ds.Val[:12])
	cnnCfg := tinyCNNConfig()
	cnnCfg.Epochs = 1
	cnn, _ := TrainCNN3D(cnnCfg, train, val, 31)
	sgCfg := tinySGConfig()
	sgCfg.Epochs = 1
	sg, _ := TrainSGCNN(sgCfg, train, val, 32)
	cfg := DefaultCoherentConfig()
	cfg.Epochs = 1
	f := NewFusion(cfg, cnn, sg, 33)
	TrainFusion(f, train, val, 34)

	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, coherentAllParams(f)); err != nil {
		t.Fatal(err)
	}
	g := f.Clone()
	zeroParams(coherentAllParams(g))
	if err := nn.LoadParams(&buf, coherentAllParams(g)); err != nil {
		t.Fatal(err)
	}
	for i, s := range val {
		if a, b := f.Predict(s), g.Predict(s); a != b {
			t.Fatalf("val sample %d: %v != %v after checkpoint round trip", i, a, b)
		}
	}
}
