package fusion

import (
	"math/rand"

	"deepfusion/internal/chem"
	"deepfusion/internal/featurize"
	"deepfusion/internal/target"
	"deepfusion/internal/tensor"
)

// Sample is one featurized complex: both model input representations
// plus the training label. Featurization is done once up front (the
// paper's parallel data loaders fill the same role).
type Sample struct {
	ID     string
	Pocket *target.Pocket
	Mol    *chem.Mol
	Voxels *tensor.Tensor // [C, G, G, G]
	Graph  *featurize.Graph
	Label  float64

	// voxState tracks which pocket prefeature's baseline the recycled
	// voxel grid currently holds, so a warm pose slot re-voxelizes by
	// restoring only the voxels the previous pose touched (see
	// FeaturizeComplexWithPrefeature).
	voxState featurize.VoxelSlotState
}

// FeaturizeComplex builds a Sample from a posed complex.
func FeaturizeComplex(id string, p *target.Pocket, mol *chem.Mol, label float64, vo featurize.VoxelOptions, gro featurize.GraphOptions) *Sample {
	return &Sample{
		ID:     id,
		Pocket: p,
		Mol:    mol,
		Voxels: featurize.Voxelize(p, mol, vo),
		Graph:  featurize.BuildGraph(p, mol, gro),
		Label:  label,
	}
}

// FeaturizeAll featurizes complexes in parallel.
func FeaturizeAll(ids []string, pockets []*target.Pocket, mols []*chem.Mol, labels []float64, vo featurize.VoxelOptions, gro featurize.GraphOptions) []*Sample {
	out := make([]*Sample, len(ids))
	tensor.ParallelFor(len(ids), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = FeaturizeComplex(ids[i], pockets[i], mols[i], labels[i], vo, gro)
		}
	})
	return out
}

// stackVoxels concatenates per-sample [C,G,G,G] grids into a batch
// tensor [B,C,G,G,G]. When rng is non-nil, each grid is independently
// rotation-augmented per the paper (10% chance per axis).
func stackVoxels(samples []*Sample, rng *rand.Rand) *tensor.Tensor {
	if len(samples) == 0 {
		return tensor.New(0)
	}
	shape := samples[0].Voxels.Shape
	b := tensor.New(append([]int{len(samples)}, shape...)...)
	per := samples[0].Voxels.Len()
	for i, s := range samples {
		v := s.Voxels
		if rng != nil {
			v = augmentVoxels(v, rng)
		}
		copy(b.Data[i*per:(i+1)*per], v.Data)
	}
	return b
}

// augmentVoxels applies the 90-degree rotation augmentation directly in
// voxel space: each axis rotation permutes grid coordinates exactly, so
// no re-voxelization is needed. Returns the input unchanged (not
// copied) when no rotation fires.
func augmentVoxels(v *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
	out := v
	for axis := 0; axis < 3; axis++ {
		if rng.Float64() < 0.10 {
			out = rotateVoxels(out, axis)
		}
	}
	return out
}

// rotateVoxels rotates a [C, G, G, G] grid by 90 degrees about the
// given axis (0=X, 1=Y, 2=Z).
func rotateVoxels(v *tensor.Tensor, axis int) *tensor.Tensor {
	c, g := v.Dim(0), v.Dim(1)
	out := tensor.New(v.Shape...)
	for ch := 0; ch < c; ch++ {
		for x := 0; x < g; x++ {
			for y := 0; y < g; y++ {
				for z := 0; z < g; z++ {
					var nx, ny, nz int
					switch axis {
					case 0: // (y,z) -> (-z, y)
						nx, ny, nz = x, g-1-z, y
					case 1: // (z,x) -> (-x, z) => new x = z, new z = g-1-x
						nx, ny, nz = z, y, g-1-x
					default: // (x,y) -> (-y, x)
						nx, ny, nz = g-1-y, x, z
					}
					out.Set(v.At(ch, x, y, z), ch, nx, ny, nz)
				}
			}
		}
	}
	return out
}

// Labels extracts the label vector of a sample list.
func Labels(samples []*Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Label
	}
	return out
}
