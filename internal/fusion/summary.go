package fusion

// Architecture summaries — the textual rendering of the paper's
// Figure 1: the 3D-CNN head (orange), the SG-CNN head (blue) and the
// fusion block (yellow), with shapes and trainable-parameter counts.

import (
	"fmt"
	"strings"

	"deepfusion/internal/nn"
)

func countParams(ps []*nn.Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Len()
	}
	return n
}

// Summary renders the 3D-CNN head layer by layer.
func (m *CNN3D) Summary() string {
	var b strings.Builder
	g := m.Cfg.Voxel.GridSize
	c := m.Cfg.Voxel.Channels()
	fmt.Fprintf(&b, "3D-CNN head (input voxel grid [%d, %d, %d, %d]):\n", c, g, g, g)
	row := func(name, desc string, ps []*nn.Param) {
		fmt.Fprintf(&b, "  %-22s %-38s %8d params\n", name, desc, countParams(ps))
	}
	row("conv1 (5x5x5)", fmt.Sprintf("%d -> %d filters, ReLU", c, m.Cfg.ConvFilters1), m.conv1.Params())
	res1 := ""
	if m.Cfg.Residual1 {
		res1 = " + residual 1"
	}
	row("conv2 (3x3x3)", fmt.Sprintf("%d -> %d filters, ReLU%s", m.Cfg.ConvFilters1, m.Cfg.ConvFilters1, res1), m.conv2.Params())
	fmt.Fprintf(&b, "  %-22s %-38s\n", "maxpool 2x", fmt.Sprintf("grid %d -> %d", g, g/2))
	row("conv3 (3x3x3)", fmt.Sprintf("%d -> %d filters, ReLU", m.Cfg.ConvFilters1, m.Cfg.ConvFilters2), m.conv3.Params())
	res2 := ""
	if m.Cfg.Residual2 {
		res2 = " + residual 2"
	}
	row("conv4 (3x3x3)", fmt.Sprintf("%d -> %d filters, ReLU%s", m.Cfg.ConvFilters2, m.Cfg.ConvFilters2, res2), m.conv4.Params())
	fmt.Fprintf(&b, "  %-22s %-38s\n", "maxpool 2x + flatten", fmt.Sprintf("grid %d -> %d", g/2, g/4))
	bn := ""
	if m.bn != nil {
		bn = ", batch norm"
	}
	row("fc1", fmt.Sprintf("dense -> %d, ReLU, dropout %.3g%s", m.Cfg.DenseNodes, m.Cfg.Dropout1, bn), m.fc1.Params())
	row("fc2 (latent)", fmt.Sprintf("dense -> %d, ReLU, dropout %.3g", m.LatentWidth(), m.Cfg.Dropout2), m.fc2.Params())
	row("out", "dense -> 1 (pK)", m.out.Params())
	fmt.Fprintf(&b, "  total: %d trainable parameters\n", countParams(m.Params()))
	return b.String()
}

// Summary renders the SG-CNN head layer by layer.
func (m *SGCNN) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SG-CNN head (PotentialNet stages over the complex graph):\n")
	row := func(name, desc string, ps []*nn.Param) {
		fmt.Fprintf(&b, "  %-22s %-38s %8d params\n", name, desc, countParams(ps))
	}
	row("project", fmt.Sprintf("node features -> %d", m.Cfg.CovGatherWidth), m.proj.Params())
	row("gated conv (cov)", fmt.Sprintf("K=%d, threshold %.2f A", m.Cfg.CovK, m.Cfg.Graph.CovThreshold), m.covConv.Params())
	row("bridge", fmt.Sprintf("%d -> %d", m.Cfg.CovGatherWidth, m.Cfg.NonCovGatherWidth), m.bridge.Params())
	row("gated conv (noncov)", fmt.Sprintf("K=%d, threshold %.2f A", m.Cfg.NonCovK, m.Cfg.Graph.NonCovThreshold), m.ncConv.Params())
	row("gather (latent)", fmt.Sprintf("ligand-node pool -> %d", m.LatentWidth()), m.gather.Params())
	row("d1", "dense (gather width / 1.5), ReLU", m.d1.Params())
	row("d2", "dense (then / 2), ReLU", m.d2.Params())
	row("out", "dense -> 1 (pK)", m.out.Params())
	fmt.Fprintf(&b, "  total: %d trainable parameters\n", countParams(m.Params()))
	return b.String()
}

// Summary renders the full fusion model: both heads plus the fusion
// block, mirroring Figure 1 of the paper.
func (f *Fusion) Summary() string {
	var b strings.Builder
	kind := "Mid-level Fusion (frozen heads)"
	if f.Cfg.Coherent {
		kind = "Coherent Fusion (backprop through both heads)"
	}
	fmt.Fprintf(&b, "%s\n\n", kind)
	b.WriteString(f.CNN.Summary())
	b.WriteString("\n")
	b.WriteString(f.SG.Summary())
	fmt.Fprintf(&b, "\nFusion block (%s activation):\n", f.Cfg.Activation)
	row := func(name, desc string, ps []*nn.Param) {
		fmt.Fprintf(&b, "  %-22s %-38s %8d params\n", name, desc, countParams(ps))
	}
	if f.Cfg.ModelSpecific {
		row("model-specific CNN", fmt.Sprintf("%d -> %d", f.cnnLatW, f.msW), f.msCNN.Params())
		row("model-specific SG", fmt.Sprintf("%d -> %d", f.sgLatW, f.msW), f.msSG.Params())
	}
	fmt.Fprintf(&b, "  %-22s %-38s\n", "concat", fmt.Sprintf("latent widths -> %d", f.concatWidth))
	for i, l := range f.layers {
		res := ""
		if f.Cfg.ResidualFusion && i > 0 {
			res = ", residual"
		}
		row(fmt.Sprintf("fusion %d", i+1), fmt.Sprintf("dense -> %d%s", f.Cfg.DenseNodes, res), l.Params())
	}
	row("out", "dense -> 1 (pK)", f.out.Params())
	total := countParams(f.FusionParams()) + countParams(f.CNN.Params()) + countParams(f.SG.Params())
	fmt.Fprintf(&b, "  total (full model): %d parameters (%d trainable in this mode)\n",
		total, countParams(f.Params()))
	return b.String()
}
