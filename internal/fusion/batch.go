package fusion

import (
	"deepfusion/internal/featurize"
	"deepfusion/internal/graph"
	"deepfusion/internal/tensor"
)

// This file is the batched-inference surface of the fusion models.
// Every model exposes PredictBatch([]*Sample) []float64, the screening
// engine's unit of work: voxel grids stack into a leading batch
// dimension, complex graphs join into a disjoint union scored in one
// pass, and the dense stacks run one GEMM per layer for the whole
// batch. Per-row math matches single-sample evaluation exactly, so
// Predict is just the B=1 case and batch composition never changes a
// prediction.

// predictChunk is the batch size PredictAll uses: the paper's
// production jobs score up to 56 poses per device; 16 keeps the
// im2col scratch modest on repro-scale grids while amortizing
// per-layer dispatch.
const predictChunk = 16

// unionGraphs builds the disjoint union of complex graphs: node
// feature rows concatenated in order, edges shifted by each graph's
// node offset, and one gather segment per graph (ligand rows lead
// each block). Message passing never crosses segment boundaries
// because no edge does.
func unionGraphs(gs []*featurize.Graph) (nodes *tensor.Tensor, cov, nc []featurize.Edge, segs []graph.Segment) {
	totalNodes, totalCov, totalNC := 0, 0, 0
	for _, g := range gs {
		totalNodes += g.NumNodes()
		totalCov += len(g.Covalent)
		totalNC += len(g.NonCov)
	}
	nodes = tensor.New(totalNodes, featurize.NodeFeatures)
	cov = make([]featurize.Edge, 0, totalCov)
	nc = make([]featurize.Edge, 0, totalNC)
	segs = make([]graph.Segment, len(gs))
	off := 0
	for i, g := range gs {
		copy(nodes.Data[off*featurize.NodeFeatures:], g.Nodes.Data)
		segs[i] = graph.Segment{Start: off, NumLigand: g.NumLigand}
		for _, e := range g.Covalent {
			cov = append(cov, featurize.Edge{From: e.From + off, To: e.To + off, Dist: e.Dist})
		}
		for _, e := range g.NonCov {
			nc = append(nc, featurize.Edge{From: e.From + off, To: e.To + off, Dist: e.Dist})
		}
		off += g.NumNodes()
	}
	return nodes, cov, nc, segs
}

func sampleGraphs(samples []*Sample) []*featurize.Graph {
	gs := make([]*featurize.Graph, len(samples))
	for i, s := range samples {
		gs[i] = s.Graph
	}
	return gs
}

// PredictBatch evaluates featurized samples in one batched forward
// pass of the voxel head.
func (m *CNN3D) PredictBatch(samples []*Sample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	pred, _ := m.Forward(stackVoxels(samples, nil), false)
	out := make([]float64, len(samples))
	copy(out, pred.Data)
	return out
}

// PredictAll evaluates many samples through the batched engine.
func (m *CNN3D) PredictAll(samples []*Sample) []float64 {
	return chunked(samples, m.PredictBatch)
}

// PredictBatch evaluates featurized samples as one disjoint-union
// graph forward pass.
func (m *SGCNN) PredictBatch(samples []*Sample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	pred, _ := m.ForwardBatch(sampleGraphs(samples), false)
	out := make([]float64, len(samples))
	copy(out, pred.Data)
	return out
}

// PredictAll evaluates many samples through the batched engine.
func (m *SGCNN) PredictAll(samples []*Sample) []float64 {
	return chunked(samples, m.PredictBatch)
}

// PredictBatch evaluates samples through both heads in one batched
// pass each and averages the predictions (paper Section 2.1).
func (l *LateFusion) PredictBatch(samples []*Sample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	cnnPred, _ := l.CNN.Forward(stackVoxels(samples, nil), false)
	sgPred, _ := l.SG.ForwardBatch(sampleGraphs(samples), false)
	out := make([]float64, len(samples))
	for i := range out {
		out[i] = (cnnPred.Data[i] + sgPred.Data[i]) / 2
	}
	return out
}

// PredictBatch evaluates samples in one batched inference pass through
// both heads and the fusion stack.
func (f *Fusion) PredictBatch(samples []*Sample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	pred := f.forwardBatch(samples, false, nil)
	out := make([]float64, len(samples))
	copy(out, pred.Data)
	return out
}

// chunked folds a batch predictor over samples in predictChunk-sized
// batches, preserving order.
func chunked(samples []*Sample, predict func([]*Sample) []float64) []float64 {
	out := make([]float64, 0, len(samples))
	for lo := 0; lo < len(samples); lo += predictChunk {
		hi := lo + predictChunk
		if hi > len(samples) {
			hi = len(samples)
		}
		out = append(out, predict(samples[lo:hi])...)
	}
	return out
}
