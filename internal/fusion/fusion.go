package fusion

import (
	"math/rand"

	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// LateFusion predicts the unweighted arithmetic mean of the two base
// model predictions (paper Section 2.1).
type LateFusion struct {
	CNN *CNN3D
	SG  *SGCNN
}

// Predict evaluates one sample.
func (l *LateFusion) Predict(s *Sample) float64 {
	x := stackVoxels([]*Sample{s}, nil)
	cnnPred, _ := l.CNN.Forward(x, false)
	sgPred, _ := l.SG.Forward(s.Graph, false)
	return (cnnPred.Data[0] + sgPred.Data[0]) / 2
}

// PredictAll evaluates many samples.
func (l *LateFusion) PredictAll(samples []*Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = l.Predict(s)
	}
	return out
}

// Fusion is the Mid-level / Coherent Fusion model: latent vectors from
// both heads, optional model-specific dense layers, concatenation, and
// a stack of fusion dense layers ending in a single affinity output
// (Figure 1, yellow block). With Cfg.Coherent the backward pass
// continues into both heads (the paper's new Coherent Fusion); without
// it the heads are frozen feature extractors (Mid-level Fusion).
type Fusion struct {
	Cfg FusionConfig
	CNN *CNN3D
	SG  *SGCNN

	msCNN, msSG *nn.Dense // model-specific layers (optional)
	msActC      *nn.Activation
	msActS      *nn.Activation
	layers      []*nn.Dense
	acts        []*nn.Activation
	drops       []*nn.Dropout
	bns         []*nn.BatchNorm
	out         *nn.Dense

	concatWidth int
	cnnLatW     int
	sgLatW      int
	msW         int
}

// NewFusion wires a fusion head around trained (or fresh) base models.
func NewFusion(cfg FusionConfig, cnn *CNN3D, sg *SGCNN, seed int64) *Fusion {
	rng := rand.New(rand.NewSource(seed))
	f := &Fusion{Cfg: cfg, CNN: cnn, SG: sg, cnnLatW: cnn.LatentWidth(), sgLatW: sg.LatentWidth()}
	f.concatWidth = f.cnnLatW + f.sgLatW
	if cfg.ModelSpecific {
		f.msW = cfg.DenseNodes
		f.msCNN = nn.NewDense(rng, f.cnnLatW, f.msW)
		f.msSG = nn.NewDense(rng, f.sgLatW, f.msW)
		f.msActC = nn.NewActivation(cfg.Activation)
		f.msActS = nn.NewActivation(cfg.Activation)
		f.concatWidth += 2 * f.msW
	}
	width := f.concatWidth
	dropRates := []float64{cfg.Dropout1, cfg.Dropout2, cfg.Dropout3}
	for i := 0; i < cfg.NumFusionLayers; i++ {
		next := cfg.DenseNodes
		f.layers = append(f.layers, nn.NewDense(rng, width, next))
		f.acts = append(f.acts, nn.NewActivation(cfg.Activation))
		rate := 0.0
		if i < len(dropRates) {
			rate = dropRates[i]
		}
		f.drops = append(f.drops, nn.NewDropout(rng, rate))
		if cfg.BatchNorm {
			f.bns = append(f.bns, nn.NewBatchNorm(next))
		} else {
			f.bns = append(f.bns, nil)
		}
		width = next
	}
	f.out = nn.NewDense(rng, width, 1)
	return f
}

// FusionParams returns the fusion-layer parameters only (what
// Mid-level Fusion trains).
func (f *Fusion) FusionParams() []*nn.Param {
	var ps []*nn.Param
	if f.msCNN != nil {
		ps = append(ps, f.msCNN.Params()...)
		ps = append(ps, f.msSG.Params()...)
	}
	for i, l := range f.layers {
		ps = append(ps, l.Params()...)
		if f.bns[i] != nil {
			ps = append(ps, f.bns[i].Params()...)
		}
	}
	return append(ps, f.out.Params()...)
}

// Params returns the trainable parameters for the configured mode:
// fusion layers only (Mid-level) or fusion layers plus both heads
// (Coherent).
func (f *Fusion) Params() []*nn.Param {
	ps := f.FusionParams()
	if f.Cfg.Coherent {
		ps = append(ps, f.CNN.Params()...)
		ps = append(ps, f.SG.Params()...)
	}
	return ps
}

// forward evaluates one sample, returning the prediction ([1, 1]).
// When train is true, dropout is active in the fusion stack; the heads
// run in training mode only under Coherent Fusion (frozen heads stay
// deterministic).
func (f *Fusion) forward(s *Sample, train bool, rng *rand.Rand) *tensor.Tensor {
	headTrain := train && f.Cfg.Coherent
	var vox *tensor.Tensor
	if headTrain && rng != nil {
		vox = stackVoxels([]*Sample{s}, rng)
	} else {
		vox = stackVoxels([]*Sample{s}, nil)
	}
	_, cnnLat := f.CNN.Forward(vox, headTrain)
	_, sgLat := f.SG.Forward(s.Graph, headTrain)

	concat := tensor.New(1, f.concatWidth)
	copy(concat.Data[:f.cnnLatW], cnnLat.Data)
	copy(concat.Data[f.cnnLatW:f.cnnLatW+f.sgLatW], sgLat.Data)
	if f.msCNN != nil {
		mc := f.msActC.Forward(f.msCNN.Forward(cnnLat, train), train)
		ms := f.msActS.Forward(f.msSG.Forward(sgLat, train), train)
		off := f.cnnLatW + f.sgLatW
		copy(concat.Data[off:off+f.msW], mc.Data)
		copy(concat.Data[off+f.msW:], ms.Data)
	}
	h := concat
	for i, l := range f.layers {
		prev := h
		h = l.Forward(h, train)
		if f.bns[i] != nil {
			h = f.bns[i].Forward(h, train)
		}
		h = f.acts[i].Forward(h, train)
		h = f.drops[i].Forward(h, train)
		if f.Cfg.ResidualFusion && prev.Dim(1) == h.Dim(1) {
			h = tensor.Add(h, prev)
		}
	}
	return f.out.Forward(h, train)
}

// backward propagates the prediction gradient through the fusion stack
// and, under Coherent Fusion, into both heads.
func (f *Fusion) backward(dpred *tensor.Tensor) {
	g := f.out.Backward(dpred)
	for i := len(f.layers) - 1; i >= 0; i-- {
		skip := f.Cfg.ResidualFusion && residualApplied(f, i)
		gd := f.drops[i].Backward(g)
		gd = f.acts[i].Backward(gd)
		if f.bns[i] != nil {
			gd = f.bns[i].Backward(gd)
		}
		gd = f.layers[i].Backward(gd)
		if skip {
			gd.AddInPlace(g)
		}
		g = gd
	}
	// Split concat gradient.
	dcnnLat := tensor.FromSlice(append([]float64(nil), g.Data[:f.cnnLatW]...), 1, f.cnnLatW)
	dsgLat := tensor.FromSlice(append([]float64(nil), g.Data[f.cnnLatW:f.cnnLatW+f.sgLatW]...), 1, f.sgLatW)
	if f.msCNN != nil {
		off := f.cnnLatW + f.sgLatW
		dmc := tensor.FromSlice(append([]float64(nil), g.Data[off:off+f.msW]...), 1, f.msW)
		dms := tensor.FromSlice(append([]float64(nil), g.Data[off+f.msW:]...), 1, f.msW)
		dcnnLat.AddInPlace(f.msCNN.Backward(f.msActC.Backward(dmc)))
		dsgLat.AddInPlace(f.msSG.Backward(f.msActS.Backward(dms)))
	}
	if f.Cfg.Coherent {
		f.CNN.Backward(nil, dcnnLat)
		f.SG.Backward(nil, dsgLat)
	}
}

// residualApplied reports whether the skip connection fired for layer
// i during forward (widths must match).
func residualApplied(f *Fusion, i int) bool {
	inW := f.concatWidth
	if i > 0 {
		inW = f.Cfg.DenseNodes
	}
	return inW == f.Cfg.DenseNodes
}

// Predict evaluates one sample in inference mode.
func (f *Fusion) Predict(s *Sample) float64 {
	return f.forward(s, false, nil).Data[0]
}

// PredictAll evaluates samples in parallel-safe sequence. (Each Fusion
// instance holds forward caches, so concurrent Predict calls on one
// instance are not safe; the screening pipeline gives each rank its own
// replica, as the paper loads one model instance per GPU.)
func (f *Fusion) PredictAll(samples []*Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = f.Predict(s)
	}
	return out
}
