package fusion

import (
	"math/rand"

	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// LateFusion predicts the unweighted arithmetic mean of the two base
// model predictions (paper Section 2.1).
type LateFusion struct {
	CNN *CNN3D
	SG  *SGCNN
}

// Predict evaluates one sample (the B=1 case of PredictBatch).
func (l *LateFusion) Predict(s *Sample) float64 {
	return l.PredictBatch([]*Sample{s})[0]
}

// PredictAll evaluates many samples through the batched engine.
func (l *LateFusion) PredictAll(samples []*Sample) []float64 {
	return chunked(samples, l.PredictBatch)
}

// Fusion is the Mid-level / Coherent Fusion model: latent vectors from
// both heads, optional model-specific dense layers, concatenation, and
// a stack of fusion dense layers ending in a single affinity output
// (Figure 1, yellow block). With Cfg.Coherent the backward pass
// continues into both heads (the paper's new Coherent Fusion); without
// it the heads are frozen feature extractors (Mid-level Fusion).
type Fusion struct {
	Cfg FusionConfig
	CNN *CNN3D
	SG  *SGCNN

	msCNN, msSG *nn.Dense // model-specific layers (optional)
	msActC      *nn.Activation
	msActS      *nn.Activation
	layers      []*nn.Dense
	acts        []*nn.Activation
	drops       []*nn.Dropout
	bns         []*nn.BatchNorm
	out         *nn.Dense

	concatWidth int
	cnnLatW     int
	sgLatW      int
	msW         int
}

// NewFusion wires a fusion head around trained (or fresh) base models.
func NewFusion(cfg FusionConfig, cnn *CNN3D, sg *SGCNN, seed int64) *Fusion {
	rng := rand.New(rand.NewSource(seed))
	f := &Fusion{Cfg: cfg, CNN: cnn, SG: sg, cnnLatW: cnn.LatentWidth(), sgLatW: sg.LatentWidth()}
	f.concatWidth = f.cnnLatW + f.sgLatW
	if cfg.ModelSpecific {
		f.msW = cfg.DenseNodes
		f.msCNN = nn.NewDense(rng, f.cnnLatW, f.msW)
		f.msSG = nn.NewDense(rng, f.sgLatW, f.msW)
		f.msActC = nn.NewActivation(cfg.Activation)
		f.msActS = nn.NewActivation(cfg.Activation)
		f.concatWidth += 2 * f.msW
	}
	width := f.concatWidth
	dropRates := []float64{cfg.Dropout1, cfg.Dropout2, cfg.Dropout3}
	for i := 0; i < cfg.NumFusionLayers; i++ {
		next := cfg.DenseNodes
		f.layers = append(f.layers, nn.NewDense(rng, width, next))
		f.acts = append(f.acts, nn.NewActivation(cfg.Activation))
		rate := 0.0
		if i < len(dropRates) {
			rate = dropRates[i]
		}
		f.drops = append(f.drops, nn.NewDropout(rng, rate))
		if cfg.BatchNorm {
			f.bns = append(f.bns, nn.NewBatchNorm(next))
		} else {
			f.bns = append(f.bns, nil)
		}
		width = next
	}
	f.out = nn.NewDense(rng, width, 1)
	return f
}

// FusionParams returns the fusion-layer parameters only (what
// Mid-level Fusion trains).
func (f *Fusion) FusionParams() []*nn.Param {
	var ps []*nn.Param
	if f.msCNN != nil {
		ps = append(ps, f.msCNN.Params()...)
		ps = append(ps, f.msSG.Params()...)
	}
	for i, l := range f.layers {
		ps = append(ps, l.Params()...)
		if f.bns[i] != nil {
			ps = append(ps, f.bns[i].Params()...)
		}
	}
	return append(ps, f.out.Params()...)
}

// Params returns the trainable parameters for the configured mode:
// fusion layers only (Mid-level) or fusion layers plus both heads
// (Coherent).
func (f *Fusion) Params() []*nn.Param {
	ps := f.FusionParams()
	if f.Cfg.Coherent {
		ps = append(ps, f.CNN.Params()...)
		ps = append(ps, f.SG.Params()...)
	}
	return ps
}

// forward evaluates one sample, returning the prediction ([1, 1]).
// It is the B=1 case of forwardBatch.
func (f *Fusion) forward(s *Sample, train bool, rng *rand.Rand) *tensor.Tensor {
	return f.forwardBatch([]*Sample{s}, train, rng)
}

// forwardBatch evaluates a batch of samples, returning the prediction
// tensor ([B, 1]). Voxels stack into one [B, C, G, G, G] head input
// and the graphs run as a disjoint union, so every layer sees a real
// batch dimension. When train is true, dropout is active in the
// fusion stack; the heads run in training mode only under Coherent
// Fusion (frozen heads stay deterministic).
func (f *Fusion) forwardBatch(samples []*Sample, train bool, rng *rand.Rand) *tensor.Tensor {
	headTrain := train && f.Cfg.Coherent
	var vox *tensor.Tensor
	if headTrain && rng != nil {
		vox = stackVoxels(samples, rng)
	} else {
		vox = stackVoxels(samples, nil)
	}
	_, cnnLat := f.CNN.Forward(vox, headTrain)
	_, sgLat := f.SG.ForwardBatch(sampleGraphs(samples), headTrain)

	b := len(samples)
	concat := tensor.New(b, f.concatWidth)
	for i := 0; i < b; i++ {
		copy(concat.Row(i)[:f.cnnLatW], cnnLat.Row(i))
		copy(concat.Row(i)[f.cnnLatW:f.cnnLatW+f.sgLatW], sgLat.Row(i))
	}
	if f.msCNN != nil {
		mc := f.msActC.Forward(f.msCNN.Forward(cnnLat, train), train)
		ms := f.msActS.Forward(f.msSG.Forward(sgLat, train), train)
		off := f.cnnLatW + f.sgLatW
		for i := 0; i < b; i++ {
			copy(concat.Row(i)[off:off+f.msW], mc.Row(i))
			copy(concat.Row(i)[off+f.msW:], ms.Row(i))
		}
	}
	h := concat
	for i, l := range f.layers {
		prev := h
		h = l.Forward(h, train)
		if f.bns[i] != nil {
			h = f.bns[i].Forward(h, train)
		}
		h = f.acts[i].Forward(h, train)
		h = f.drops[i].Forward(h, train)
		if f.Cfg.ResidualFusion && prev.Dim(1) == h.Dim(1) {
			h = tensor.Add(h, prev)
		}
	}
	return f.out.Forward(h, train)
}

// backward propagates the prediction gradient ([B, 1], matching the
// most recent forwardBatch) through the fusion stack and, under
// Coherent Fusion, into both heads.
func (f *Fusion) backward(dpred *tensor.Tensor) {
	g := f.out.Backward(dpred)
	for i := len(f.layers) - 1; i >= 0; i-- {
		skip := f.Cfg.ResidualFusion && residualApplied(f, i)
		gd := f.drops[i].Backward(g)
		gd = f.acts[i].Backward(gd)
		if f.bns[i] != nil {
			gd = f.bns[i].Backward(gd)
		}
		gd = f.layers[i].Backward(gd)
		if skip {
			gd.AddInPlace(g)
		}
		g = gd
	}
	// Split the concat gradient row-wise into the head latents.
	b := g.Dim(0)
	dcnnLat := tensor.New(b, f.cnnLatW)
	dsgLat := tensor.New(b, f.sgLatW)
	for i := 0; i < b; i++ {
		copy(dcnnLat.Row(i), g.Row(i)[:f.cnnLatW])
		copy(dsgLat.Row(i), g.Row(i)[f.cnnLatW:f.cnnLatW+f.sgLatW])
	}
	if f.msCNN != nil {
		off := f.cnnLatW + f.sgLatW
		dmc := tensor.New(b, f.msW)
		dms := tensor.New(b, f.msW)
		for i := 0; i < b; i++ {
			copy(dmc.Row(i), g.Row(i)[off:off+f.msW])
			copy(dms.Row(i), g.Row(i)[off+f.msW:])
		}
		dcnnLat.AddInPlace(f.msCNN.Backward(f.msActC.Backward(dmc)))
		dsgLat.AddInPlace(f.msSG.Backward(f.msActS.Backward(dms)))
	}
	if f.Cfg.Coherent {
		f.CNN.Backward(nil, dcnnLat)
		f.SG.Backward(nil, dsgLat)
	}
}

// residualApplied reports whether the skip connection fired for layer
// i during forward (widths must match).
func residualApplied(f *Fusion, i int) bool {
	inW := f.concatWidth
	if i > 0 {
		inW = f.Cfg.DenseNodes
	}
	return inW == f.Cfg.DenseNodes
}

// Predict evaluates one sample in inference mode (the B=1 case of
// PredictBatch).
func (f *Fusion) Predict(s *Sample) float64 {
	return f.PredictBatch([]*Sample{s})[0]
}

// PredictAll evaluates samples through the batched engine. (Each
// Fusion instance holds forward caches, so concurrent PredictBatch
// calls on one instance are not safe; the screening pipeline gives
// each rank its own replica, as the paper loads one model instance per
// GPU.)
func (f *Fusion) PredictAll(samples []*Sample) []float64 {
	return chunked(samples, f.PredictBatch)
}
