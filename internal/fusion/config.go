// Package fusion implements the paper's primary contribution: the
// structure-based Deep Fusion binding-affinity models. It provides the
// two base predictors — a 3D convolutional network over voxelized
// complexes (3D-CNN) and a spatial-graph gated network (SG-CNN) — and
// the three fusion strategies evaluated in the paper:
//
//   - Late Fusion: the unweighted mean of the two base predictions.
//   - Mid-level Fusion: latent vectors extracted from both heads feed
//     trained fusion layers; the head weights stay frozen.
//   - Coherent Fusion (the paper's new model): the same architecture
//     but with gradients backpropagated coherently through the fusion
//     layers AND both heads, fine-tuning them jointly.
package fusion

import (
	"deepfusion/internal/featurize"
)

// CNN3DConfig is the 3D-CNN hyper-parameter block (Tables 1 and 3).
// The repro-scale defaults shrink the paper's filter counts by 4x and
// the grid from 48^3x19 to 8^3x16 so CPU training stays in seconds;
// the architecture (two conv stages, optional residual connections,
// reduced dense stack, dropout placement) is preserved.
type CNN3DConfig struct {
	Voxel        featurize.VoxelOptions
	ConvFilters1 int  // first conv stage width (paper: 32/64/96)
	ConvFilters2 int  // second conv stage width (paper: 64/96/128)
	DenseNodes   int  // first dense layer width (paper: 40..128)
	Residual1    bool // residual around first conv pair
	Residual2    bool // residual around second conv pair
	BatchNorm    bool
	Dropout1     float64 // early dropout (paper final: 0.25)
	Dropout2     float64 // mid dropout (paper final: 0.125)
	LearningRate float64
	BatchSize    int
	Epochs       int
}

// DefaultCNN3DConfig mirrors the converged Table 3 values at repro
// scale (filters 32->64 scaled to 8->16, dense 128 scaled to 32).
func DefaultCNN3DConfig() CNN3DConfig {
	return CNN3DConfig{
		Voxel:        featurize.DefaultVoxelOptions(),
		ConvFilters1: 8,
		ConvFilters2: 16,
		DenseNodes:   32,
		Residual1:    false,
		Residual2:    true,
		BatchNorm:    false,
		Dropout1:     0.25,
		Dropout2:     0.125,
		LearningRate: 4.9e-4,
		BatchSize:    12,
		Epochs:       6,
	}
}

// SGCNNConfig is the SG-CNN hyper-parameter block (Tables 1 and 2).
type SGCNNConfig struct {
	Graph             featurize.GraphOptions
	CovGatherWidth    int // covalent stage width (paper: 24)
	NonCovGatherWidth int // non-covalent stage + gather width (paper: 128)
	CovK              int // message-passing steps, covalent stage
	NonCovK           int // message-passing steps, non-covalent stage
	LearningRate      float64
	BatchSize         int
	Epochs            int
}

// DefaultSGCNNConfig mirrors the converged Table 2 values at repro
// scale (gather widths 24/128 scaled to 12/24, K 6/3 scaled to 2/2).
func DefaultSGCNNConfig() SGCNNConfig {
	return SGCNNConfig{
		Graph:             featurize.DefaultGraphOptions(),
		CovGatherWidth:    12,
		NonCovGatherWidth: 24,
		CovK:              2,
		NonCovK:           2,
		LearningRate:      2.66e-3,
		BatchSize:         8,
		Epochs:            10,
	}
}

// FusionConfig is the fusion-layer hyper-parameter block (Tables 1, 4
// and 5).
type FusionConfig struct {
	NumFusionLayers int    // dense fusion layers (paper: 3-5)
	DenseNodes      int    // fusion layer width (paper: 8..128)
	ModelSpecific   bool   // model-specific dense layers before concat
	ResidualFusion  bool   // residual fusion layers
	Activation      string // relu / lrelu / selu
	Optimizer       string // adam / adamw / rmsprop / adadelta
	BatchNorm       bool
	Dropout1        float64 // early
	Dropout2        float64 // mid
	Dropout3        float64 // late
	LearningRate    float64
	BatchSize       int
	Epochs          int
	Pretrained      bool // load trained heads (Coherent Fusion, Table 5)
	Coherent        bool // backpropagate into the heads
}

// DefaultMidFusionConfig mirrors Table 4: every optional layer on,
// SELU, 5 fusion layers, light dropout, frozen heads.
func DefaultMidFusionConfig() FusionConfig {
	return FusionConfig{
		NumFusionLayers: 5,
		DenseNodes:      16,
		ModelSpecific:   true,
		ResidualFusion:  true,
		Activation:      "selu",
		Optimizer:       "adam",
		Dropout1:        0.251,
		Dropout2:        0.125,
		Dropout3:        0.0,
		LearningRate:    4.03e-4,
		BatchSize:       1,
		Epochs:          8,
		Pretrained:      true,
		Coherent:        false,
	}
}

// DefaultCoherentConfig mirrors Table 5: pre-trained heads, simpler
// 4-layer fusion stack without model-specific layers, larger batch,
// stronger dropout, coherent backpropagation.
func DefaultCoherentConfig() FusionConfig {
	return FusionConfig{
		NumFusionLayers: 4,
		DenseNodes:      16,
		ModelSpecific:   false,
		ResidualFusion:  false,
		Activation:      "selu",
		Optimizer:       "adam",
		Dropout1:        0.386,
		Dropout2:        0.247,
		Dropout3:        0.055,
		LearningRate:    1.08e-4,
		BatchSize:       12,
		Epochs:          6,
		Pretrained:      true,
		Coherent:        true,
	}
}
