package fusion

import (
	"math/rand"

	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// CNN3D is the voxel-grid head: two convolution stages (the paper's
// 5x5x5 then 3x3x3 filters) with optional residual connections and a
// reduced dense stack. The penultimate dense activation is the latent
// vector consumed by the fusion layers (Layer M-1 of the M-layer
// model).
type CNN3D struct {
	Cfg CNN3DConfig

	conv1, conv2 *nn.Conv3D // stage 1 (k=5 then k=3)
	conv3, conv4 *nn.Conv3D // stage 2 (k=3)
	pool1, pool2 *nn.MaxPool3D
	act          []*nn.Activation
	flat         *nn.Flatten
	drop1, drop2 *nn.Dropout
	bn           *nn.BatchNorm
	fc1, fc2     *nn.Dense
	out          *nn.Dense

	// cached forward state for residual backward routing
	stash cnnStash
}

type cnnStash struct {
	r1In, r2In *tensor.Tensor
	latent     *tensor.Tensor
}

// LatentWidth returns the fusion-visible latent vector width.
func (m *CNN3D) LatentWidth() int { return m.Cfg.DenseNodes / 2 }

// NewCNN3D constructs the model. The voxel grid must be divisible by 4
// (two 2x pooling stages).
func NewCNN3D(cfg CNN3DConfig, seed int64) *CNN3D {
	rng := rand.New(rand.NewSource(seed))
	c := cfg.Voxel.Channels()
	g := cfg.Voxel.GridSize
	if g%4 != 0 {
		panic("fusion: voxel grid size must be divisible by 4")
	}
	flatWidth := cfg.ConvFilters2 * (g / 4) * (g / 4) * (g / 4)
	m := &CNN3D{
		Cfg:   cfg,
		conv1: nn.NewConv3D(rng, c, cfg.ConvFilters1, 5),
		conv2: nn.NewConv3D(rng, cfg.ConvFilters1, cfg.ConvFilters1, 3),
		conv3: nn.NewConv3D(rng, cfg.ConvFilters1, cfg.ConvFilters2, 3),
		conv4: nn.NewConv3D(rng, cfg.ConvFilters2, cfg.ConvFilters2, 3),
		pool1: nn.NewMaxPool3D(2),
		pool2: nn.NewMaxPool3D(2),
		flat:  &nn.Flatten{},
		drop1: nn.NewDropout(rng, cfg.Dropout1),
		drop2: nn.NewDropout(rng, cfg.Dropout2),
		fc1:   nn.NewDense(rng, flatWidth, cfg.DenseNodes),
		fc2:   nn.NewDense(rng, cfg.DenseNodes, cfg.DenseNodes/2),
		out:   nn.NewDense(rng, cfg.DenseNodes/2, 1),
	}
	if cfg.BatchNorm {
		m.bn = nn.NewBatchNorm(cfg.DenseNodes)
	}
	for i := 0; i < 6; i++ {
		m.act = append(m.act, nn.NewActivation(nn.ActReLU))
	}
	return m
}

// SetDirectConv switches every convolution stage between the lowered
// im2col/GEMM path (default) and the direct reference loops. The
// screening throughput benchmarks use it to measure the batched
// engine against the seed's per-sample baseline.
func (m *CNN3D) SetDirectConv(direct bool) {
	for _, c := range []*nn.Conv3D{m.conv1, m.conv2, m.conv3, m.conv4} {
		c.Direct = direct
	}
}

// Params returns all trainable parameters.
func (m *CNN3D) Params() []*nn.Param {
	ps := append([]*nn.Param{}, m.conv1.Params()...)
	ps = append(ps, m.conv2.Params()...)
	ps = append(ps, m.conv3.Params()...)
	ps = append(ps, m.conv4.Params()...)
	ps = append(ps, m.fc1.Params()...)
	ps = append(ps, m.fc2.Params()...)
	ps = append(ps, m.out.Params()...)
	if m.bn != nil {
		ps = append(ps, m.bn.Params()...)
	}
	return ps
}

// Forward computes the binding-affinity prediction ([N, 1]) and the
// latent vector ([N, DenseNodes/2]) for a voxel batch [N, C, G, G, G].
func (m *CNN3D) Forward(x *tensor.Tensor, train bool) (pred, latent *tensor.Tensor) {
	h := m.act[0].Forward(m.conv1.Forward(x, train), train)
	m.stash.r1In = h
	h2 := m.act[1].Forward(m.conv2.Forward(h, train), train)
	if m.Cfg.Residual1 {
		h2 = tensor.Add(h2, h)
	}
	h2 = m.pool1.Forward(h2, train)
	h3 := m.act[2].Forward(m.conv3.Forward(h2, train), train)
	m.stash.r2In = h3
	h4 := m.act[3].Forward(m.conv4.Forward(h3, train), train)
	if m.Cfg.Residual2 {
		h4 = tensor.Add(h4, h3)
	}
	h4 = m.pool2.Forward(h4, train)
	f := m.flat.Forward(h4, train)
	f = m.drop1.Forward(f, train)
	d1 := m.fc1.Forward(f, train)
	if m.bn != nil {
		d1 = m.bn.Forward(d1, train)
	}
	d1 = m.act[4].Forward(d1, train)
	d1 = m.drop2.Forward(d1, train)
	latent = m.act[5].Forward(m.fc2.Forward(d1, train), train)
	m.stash.latent = latent
	pred = m.out.Forward(latent, train)
	return pred, latent
}

// Backward propagates gradients. dpred is the gradient w.r.t. the
// prediction ([N, 1]) and dlatent w.r.t. the latent vector; either may
// be nil. Parameter gradients accumulate; the input gradient is
// discarded (inputs are data).
func (m *CNN3D) Backward(dpred, dlatent *tensor.Tensor) {
	var g *tensor.Tensor
	if dpred != nil {
		g = m.out.Backward(dpred)
	}
	if dlatent != nil {
		if g == nil {
			g = dlatent.Clone()
		} else {
			g.AddInPlace(dlatent)
		}
	}
	if g == nil {
		return
	}
	g = m.fc2.Backward(m.act[5].Backward(g))
	g = m.drop2.Backward(g)
	g = m.act[4].Backward(g)
	if m.bn != nil {
		g = m.bn.Backward(g)
	}
	g = m.fc1.Backward(g)
	g = m.drop1.Backward(g)
	g = m.flat.Backward(g)
	g = m.pool2.Backward(g)
	// Residual 2: gradient flows through conv4 and the skip.
	gConv := m.conv4.Backward(m.act[3].Backward(g))
	if m.Cfg.Residual2 {
		gConv.AddInPlace(g)
	}
	g = m.conv3.Backward(m.act[2].Backward(gConv))
	g = m.pool1.Backward(g)
	gConv = m.conv2.Backward(m.act[1].Backward(g))
	if m.Cfg.Residual1 {
		gConv.AddInPlace(g)
	}
	m.conv1.Backward(m.act[0].Backward(gConv))
}
