package fusion

import (
	"deepfusion/internal/featurize"
	"deepfusion/internal/pdbbind"
	"deepfusion/internal/tensor"
)

// FeaturizeDataset converts PDBbind complexes into model-ready samples
// in parallel.
func FeaturizeDataset(cs []*pdbbind.Complex, vo featurize.VoxelOptions, gro featurize.GraphOptions) []*Sample {
	out := make([]*Sample, len(cs))
	tensor.ParallelFor(len(cs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := cs[i]
			out[i] = FeaturizeComplex(c.ID, c.Pocket, c.Mol, c.Label, vo, gro)
		}
	})
	return out
}
