package fusion

// Target-specific fine-tuning: the paper's stated future work ("use
// our baseline Coherent Fusion model to fine tune and predict for
// specific protein target types and binding sites ... reducing the
// scope of the binding affinity prediction problem will increase the
// value of relative differences in the model's predictions").
//
// FineTune continues coherent training of a trained model on
// complexes from a single target, at a reduced learning rate so the
// general-purpose weights are adapted rather than overwritten.

// FineTuneOptions configures target-specific adaptation.
type FineTuneOptions struct {
	Epochs       int
	LearningRate float64 // typically ~1/4 of the base rate
	BatchSize    int
}

// DefaultFineTuneOptions returns a short, conservative adaptation.
func DefaultFineTuneOptions() FineTuneOptions {
	return FineTuneOptions{Epochs: 3, LearningRate: 2.7e-5, BatchSize: 8}
}

// FineTune clones the model and adapts the clone to the given
// target-specific samples (all from one binding site), returning the
// specialized model and its training history. The input model is
// unchanged.
func FineTune(base *Fusion, targetSamples, val []*Sample, o FineTuneOptions, seed int64) (*Fusion, *History) {
	ft := base.Clone()
	ft.Cfg.Coherent = true // adaptation always reaches into the heads
	ft.Cfg.Epochs = o.Epochs
	ft.Cfg.LearningRate = o.LearningRate
	ft.Cfg.BatchSize = o.BatchSize
	hist := TrainFusion(ft, targetSamples, val, seed)
	return ft, hist
}
