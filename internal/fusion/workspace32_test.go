package fusion

import (
	"math"
	"testing"
)

// TestPredictBatchInto32Tolerance pins the f32 fast path's
// per-pose accumulation error against the f64 reference at ≤1e-4
// relative, for every model family and batch geometry — the explicit
// numeric contract of the precision knob (rank fidelity on top of
// this is pinned by the engine-level A/B harness).
func TestPredictBatchInto32Tolerance(t *testing.T) {
	const tol = 1e-4
	ds := dataset(t)
	samples := featurized(t, ds.Core[:8])
	cnn := NewCNN3D(tinyCNNConfig(), 91)
	sg := NewSGCNN(tinySGConfig(), 92)
	late := &LateFusion{CNN: cnn, SG: sg}
	mid := NewFusion(DefaultMidFusionConfig(), cnn, sg, 93)
	coh := NewFusion(DefaultCoherentConfig(), cnn, sg, 94)

	ws64 := NewWorkspaceFor(PrecisionF64)
	ws32 := NewWorkspaceFor(PrecisionF32)
	if ws32.Precision() != PrecisionF32 {
		t.Fatalf("workspace precision = %q, want f32", ws32.Precision())
	}
	models := []struct {
		name string
		into func(ss []*Sample, ws *Workspace, out []float64)
	}{
		{"CNN3D", func(ss []*Sample, ws *Workspace, out []float64) { cnn.PredictBatchInto(ss, ws, out) }},
		{"SGCNN", func(ss []*Sample, ws *Workspace, out []float64) { sg.PredictBatchInto(ss, ws, out) }},
		{"Late", func(ss []*Sample, ws *Workspace, out []float64) { late.PredictBatchInto(ss, ws, out) }},
		{"Mid", func(ss []*Sample, ws *Workspace, out []float64) { mid.PredictBatchInto(ss, ws, out) }},
		{"Coherent", func(ss []*Sample, ws *Workspace, out []float64) { coh.PredictBatchInto(ss, ws, out) }},
	}
	for _, m := range models {
		for _, bs := range []int{1, 3, 8} {
			for lo := 0; lo < len(samples); lo += bs {
				hi := lo + bs
				if hi > len(samples) {
					hi = len(samples)
				}
				want := make([]float64, hi-lo)
				got := make([]float64, hi-lo)
				m.into(samples[lo:hi], ws64, want)
				m.into(samples[lo:hi], ws32, got)
				for j := range got {
					den := math.Abs(want[j])
					if den < 1 {
						den = 1
					}
					if e := math.Abs(got[j]-want[j]) / den; e > tol {
						t.Fatalf("%s: batch size %d sample %d: f32 %v vs f64 %v (rel err %g > %g)",
							m.name, bs, lo+j, got[j], want[j], e, tol)
					}
				}
			}
		}
	}
}

// TestPredictBatchInto32WarmZeroAlloc pins the warm f32 batch to zero
// heap allocations — the same steady-state bar the f64 pooled path
// holds since PR 4.
func TestPredictBatchInto32WarmZeroAlloc(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:8])
	cnn := NewCNN3D(tinyCNNConfig(), 95)
	sg := NewSGCNN(tinySGConfig(), 96)
	coh := NewFusion(DefaultCoherentConfig(), cnn, sg, 97)

	ws := NewWorkspaceFor(PrecisionF32)
	out := make([]float64, len(samples))
	score := func() { coh.PredictBatchInto(samples, ws, out) }
	score()
	score()
	if allocs := testing.AllocsPerRun(20, score); allocs != 0 {
		t.Fatalf("warm f32 PredictBatchInto allocates %v times per batch", allocs)
	}
}

// TestPrecisionValidate covers the knob's normalization and rejection.
func TestPrecisionValidate(t *testing.T) {
	if got := Precision("").Normalize(); got != PrecisionF64 {
		t.Fatalf("Normalize(\"\") = %q, want f64", got)
	}
	for _, p := range []Precision{"", "f32", "f64"} {
		if err := p.Validate(); err != nil {
			t.Fatalf("Validate(%q) = %v", p, err)
		}
	}
	if err := Precision("f16").Validate(); err == nil {
		t.Fatal("Validate(\"f16\") accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorkspaceFor(\"bad\") did not panic")
		}
	}()
	NewWorkspaceFor("bad")
}
