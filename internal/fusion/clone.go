package fusion

import "deepfusion/internal/nn"

// Clone returns a deep copy of the model with identical weights. The
// screening pipeline gives each rank its own replica, mirroring the
// paper's one-model-instance-per-GPU deployment (forward caches make a
// single instance unsafe to share across goroutines).
func (m *CNN3D) Clone() *CNN3D {
	c := NewCNN3D(m.Cfg, 0)
	if err := nn.CopyParams(c.Params(), m.Params()); err != nil {
		panic("fusion: CNN3D clone shape mismatch: " + err.Error())
	}
	// Preserve the convolution algorithm selection (the screening
	// benchmarks pin replicas to the direct reference path).
	c.conv1.Direct = m.conv1.Direct
	c.conv2.Direct = m.conv2.Direct
	c.conv3.Direct = m.conv3.Direct
	c.conv4.Direct = m.conv4.Direct
	return c
}

// Clone returns a deep copy of the model with identical weights.
func (m *SGCNN) Clone() *SGCNN {
	c := NewSGCNN(m.Cfg, 0)
	if err := nn.CopyParams(c.Params(), m.Params()); err != nil {
		panic("fusion: SGCNN clone shape mismatch: " + err.Error())
	}
	return c
}

// Clone returns a deep copy of the fusion model, including both heads.
func (f *Fusion) Clone() *Fusion {
	c := NewFusion(f.Cfg, f.CNN.Clone(), f.SG.Clone(), 0)
	if err := nn.CopyParams(c.FusionParams(), f.FusionParams()); err != nil {
		panic("fusion: Fusion clone shape mismatch: " + err.Error())
	}
	return c
}
