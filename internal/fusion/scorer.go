package fusion

import "deepfusion/internal/featurize"

// This file adapts every model family to the screening engine's
// Scorer contract (screen.Scorer): a stable Name, a batched
// ScoreBatch, the Featurizer handshake declaring the featurization
// each model consumes (so the engine featurizes each pose once and
// shares the sample across an ensemble), and the Cloner handshake
// that gives each simulated MPI rank its own replica — the forward
// caches make one instance unsafe to score concurrently. The fusion
// package does not import screen; the contract is satisfied
// structurally.

// FeatureOptions is the Featurizer handshake payload: the
// featurization a scorer requires, nil meaning "no requirement". It
// lives here (next to Sample and FeaturizeComplex) so model packages
// can declare their needs without importing the engine.
type FeatureOptions struct {
	Voxel *featurize.VoxelOptions
	Graph *featurize.GraphOptions
}

// Name identifies the voxel head in shard columns and manifests.
func (m *CNN3D) Name() string { return "cnn3d" }

// ScoreBatch implements the screening scoring contract: one batched
// forward pass in inference mode.
func (m *CNN3D) ScoreBatch(samples []*Sample) []float64 { return m.PredictBatch(samples) }

// CloneScorer implements the replication handshake.
func (m *CNN3D) CloneScorer() any { return m.Clone() }

// FeatureOptions declares the voxel grid this head consumes.
func (m *CNN3D) FeatureOptions() FeatureOptions {
	vo := m.Cfg.Voxel
	return FeatureOptions{Voxel: &vo}
}

// Name identifies the graph head in shard columns and manifests.
func (m *SGCNN) Name() string { return "sgcnn" }

// ScoreBatch implements the screening scoring contract.
func (m *SGCNN) ScoreBatch(samples []*Sample) []float64 { return m.PredictBatch(samples) }

// CloneScorer implements the replication handshake.
func (m *SGCNN) CloneScorer() any { return m.Clone() }

// FeatureOptions declares the complex graph this head consumes.
func (m *SGCNN) FeatureOptions() FeatureOptions {
	gro := m.Cfg.Graph
	return FeatureOptions{Graph: &gro}
}

// Name identifies the prediction-averaging fusion strategy.
func (l *LateFusion) Name() string { return "late" }

// ScoreBatch implements the screening scoring contract.
func (l *LateFusion) ScoreBatch(samples []*Sample) []float64 { return l.PredictBatch(samples) }

// CloneScorer implements the replication handshake.
func (l *LateFusion) CloneScorer() any { return &LateFusion{CNN: l.CNN.Clone(), SG: l.SG.Clone()} }

// FeatureOptions declares both head representations.
func (l *LateFusion) FeatureOptions() FeatureOptions {
	vo, gro := l.CNN.Cfg.Voxel, l.SG.Cfg.Graph
	return FeatureOptions{Voxel: &vo, Graph: &gro}
}

// Name distinguishes the two latent-fusion strategies sharing this
// type: "coherent" backpropagates into the heads, "mid" freezes them.
func (f *Fusion) Name() string {
	if f.Cfg.Coherent {
		return "coherent"
	}
	return "mid"
}

// ScoreBatch implements the screening scoring contract.
func (f *Fusion) ScoreBatch(samples []*Sample) []float64 { return f.PredictBatch(samples) }

// CloneScorer implements the replication handshake.
func (f *Fusion) CloneScorer() any { return f.Clone() }

// FeatureOptions declares both head representations.
func (f *Fusion) FeatureOptions() FeatureOptions {
	vo, gro := f.CNN.Cfg.Voxel, f.SG.Cfg.Graph
	return FeatureOptions{Voxel: &vo, Graph: &gro}
}
