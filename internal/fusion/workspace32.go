package fusion

import (
	"deepfusion/internal/featurize"
	"deepfusion/internal/graph"
	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// This file is the float32 leg of the pooled inference surface:
// forward passes mirroring workspace.go stage for stage over the nn
// and graph packages' ForwardInfer32 kernels. Per-pose features stay
// float64 (shared with the reference path and the prefeature caches)
// and narrow exactly once per batch, at assembly time, via
// featurize.EmitF32; scores widen back to float64 at the output
// boundary so Prediction and every consumer above the workspace are
// precision-blind. Dispatch happens inside PredictBatchInto on the
// workspace's precision — there is no separate f32 scorer type.

// stackVoxels32 assembles per-sample [C,G,G,G] float64 grids into a
// pooled float32 [B,C,G,G,G] batch tensor — the narrowing twin of
// stackVoxels.
func (ws *Workspace) stackVoxels32(samples []*Sample) *tensor.F32 {
	s0 := samples[0].Voxels
	b := ws.nn.Arena32.GetUninit(len(samples), s0.Dim(0), s0.Dim(1), s0.Dim(2), s0.Dim(3))
	per := s0.Len()
	for i, s := range samples {
		featurize.EmitF32(b.Data[i*per:(i+1)*per], s.Voxels.Data)
	}
	return b
}

// unionSamples32 builds the disjoint union of the samples' complex
// graphs into pooled float32 buffers — identical layout and edge
// order to unionSamples, with node rows narrowed at emission.
func (ws *Workspace) unionSamples32(samples []*Sample) (nodes *tensor.F32, cov, nc []featurize.Edge, segs []graph.Segment) {
	totalNodes := 0
	for _, s := range samples {
		totalNodes += s.Graph.NumNodes()
	}
	nodes = ws.nn.Arena32.GetUninit(totalNodes, featurize.NodeFeatures)
	ws.cov, ws.nc, ws.segs = ws.cov[:0], ws.nc[:0], ws.segs[:0]
	off := 0
	for _, s := range samples {
		g := s.Graph
		featurize.EmitF32(nodes.Data[off*featurize.NodeFeatures:(off+g.NumNodes())*featurize.NodeFeatures], g.Nodes.Data)
		ws.segs = append(ws.segs, graph.Segment{Start: off, NumLigand: g.NumLigand})
		for _, e := range g.Covalent {
			ws.cov = append(ws.cov, featurize.Edge{From: e.From + off, To: e.To + off, Dist: e.Dist})
		}
		for _, e := range g.NonCov {
			ws.nc = append(ws.nc, featurize.Edge{From: e.From + off, To: e.To + off, Dist: e.Dist})
		}
		off += g.NumNodes()
	}
	return nodes, ws.cov, ws.nc, ws.segs
}

// addInfer32 is the pooled counterpart of tensor addition for the
// residual connections.
func addInfer32(ws *nn.Workspace, a, b *tensor.F32) *tensor.F32 {
	if len(a.Data) != len(b.Data) {
		panic("fusion: addInfer32 length mismatch")
	}
	r := ws.Arena32.GetUninit(a.Shape...)
	for i := range a.Data {
		r.Data[i] = a.Data[i] + b.Data[i]
	}
	return r
}

// forwardInfer32 is the f32 pooled forward of the voxel head,
// mirroring forwardInfer stage for stage.
func (m *CNN3D) forwardInfer32(x *tensor.F32, ws *nn.Workspace) (pred, latent *tensor.F32) {
	h := m.act[0].ForwardInfer32(m.conv1.ForwardInfer32(x, ws), ws)
	h2 := m.act[1].ForwardInfer32(m.conv2.ForwardInfer32(h, ws), ws)
	if m.Cfg.Residual1 {
		h2 = addInfer32(ws, h2, h)
	}
	h2 = m.pool1.ForwardInfer32(h2, ws)
	h3 := m.act[2].ForwardInfer32(m.conv3.ForwardInfer32(h2, ws), ws)
	h4 := m.act[3].ForwardInfer32(m.conv4.ForwardInfer32(h3, ws), ws)
	if m.Cfg.Residual2 {
		h4 = addInfer32(ws, h4, h3)
	}
	h4 = m.pool2.ForwardInfer32(h4, ws)
	f := m.flat.ForwardInfer32(h4, ws)
	// drop1/drop2 are the identity at inference.
	d1 := m.fc1.ForwardInfer32(f, ws)
	if m.bn != nil {
		d1 = m.bn.ForwardInfer32(d1, ws)
	}
	d1 = m.act[4].ForwardInfer32(d1, ws)
	latent = m.act[5].ForwardInfer32(m.fc2.ForwardInfer32(d1, ws), ws)
	pred = m.out.ForwardInfer32(latent, ws)
	return pred, latent
}

// forwardBatchInfer32 is the f32 pooled forward of the graph head
// over the disjoint union of the samples' graphs.
func (m *SGCNN) forwardBatchInfer32(samples []*Sample, ws *Workspace) (pred, latent *tensor.F32) {
	nodes, cov, nc, segs := ws.unionSamples32(samples)
	h := m.proj.ForwardInfer32(nodes, ws.nn)
	h = m.covConv.ForwardInfer32(h, cov, ws.nn)
	h = m.bridge.ForwardInfer32(h, ws.nn)
	h = m.ncConv.ForwardInfer32(h, nc, ws.nn)
	latent = m.gather.ForwardSegmentsInfer32(h, nodes, segs, ws.nn)
	y := m.act1.ForwardInfer32(m.d1.ForwardInfer32(latent, ws.nn), ws.nn)
	y = m.act2.ForwardInfer32(m.d2.ForwardInfer32(y, ws.nn), ws.nn)
	pred = m.out.ForwardInfer32(y, ws.nn)
	return pred, latent
}

// widenScores copies an f32 prediction column into the caller's
// float64 out slice — the single f32→f64 point of the fast path.
func widenScores(out []float64, pred []float32) {
	for i, v := range pred {
		out[i] = float64(v)
	}
}

// predictBatchInto32 is the f32 leg of CNN3D.PredictBatchInto.
func (m *CNN3D) predictBatchInto32(samples []*Sample, ws *Workspace, out []float64) {
	pred, _ := m.forwardInfer32(ws.stackVoxels32(samples), ws.nn)
	widenScores(out, pred.Data)
}

// predictBatchInto32 is the f32 leg of SGCNN.PredictBatchInto.
func (m *SGCNN) predictBatchInto32(samples []*Sample, ws *Workspace, out []float64) {
	pred, _ := m.forwardBatchInfer32(samples, ws)
	widenScores(out, pred.Data)
}

// predictBatchInto32 is the f32 leg of LateFusion.PredictBatchInto:
// both heads evaluate at f32 and the head average runs in f32 too,
// widening only the final score.
func (l *LateFusion) predictBatchInto32(samples []*Sample, ws *Workspace, out []float64) {
	cnnPred, _ := l.CNN.forwardInfer32(ws.stackVoxels32(samples), ws.nn)
	sgPred, _ := l.SG.forwardBatchInfer32(samples, ws)
	for i := range out {
		out[i] = float64((cnnPred.Data[i] + sgPred.Data[i]) / 2)
	}
}

// predictBatchInto32 is the f32 leg of Fusion.PredictBatchInto
// (Mid-level and Coherent fusion).
func (f *Fusion) predictBatchInto32(samples []*Sample, ws *Workspace, out []float64) {
	_, cnnLat := f.CNN.forwardInfer32(ws.stackVoxels32(samples), ws.nn)
	_, sgLat := f.SG.forwardBatchInfer32(samples, ws)

	b := len(samples)
	concat := ws.nn.Arena32.GetUninit(b, f.concatWidth)
	for i := 0; i < b; i++ {
		copy(concat.Row(i)[:f.cnnLatW], cnnLat.Row(i))
		copy(concat.Row(i)[f.cnnLatW:f.cnnLatW+f.sgLatW], sgLat.Row(i))
	}
	if f.msCNN != nil {
		mc := f.msActC.ForwardInfer32(f.msCNN.ForwardInfer32(cnnLat, ws.nn), ws.nn)
		ms := f.msActS.ForwardInfer32(f.msSG.ForwardInfer32(sgLat, ws.nn), ws.nn)
		off := f.cnnLatW + f.sgLatW
		for i := 0; i < b; i++ {
			copy(concat.Row(i)[off:off+f.msW], mc.Row(i))
			copy(concat.Row(i)[off+f.msW:], ms.Row(i))
		}
	}
	h := concat
	for i, l := range f.layers {
		prev := h
		h = l.ForwardInfer32(h, ws.nn)
		if f.bns[i] != nil {
			h = f.bns[i].ForwardInfer32(h, ws.nn)
		}
		h = f.acts[i].ForwardInfer32(h, ws.nn)
		// drops are the identity at inference.
		if f.Cfg.ResidualFusion && prev.Dim(1) == h.Dim(1) {
			h = addInfer32(ws.nn, h, prev)
		}
	}
	pred := f.out.ForwardInfer32(h, ws.nn)
	widenScores(out, pred.Data)
}
