package fusion

import (
	"math"
	"math/rand"

	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// History records per-epoch training and validation MSE losses.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
}

// Best returns the minimum validation loss (or +Inf when empty).
func (h *History) Best() float64 {
	best := math.Inf(1)
	for _, v := range h.ValLoss {
		if v < best {
			best = v
		}
	}
	return best
}

// TrainCNN3D trains a 3D-CNN on the featurized samples with MSE loss,
// Adam, mini-batches and the rotation augmentation of the paper.
func TrainCNN3D(cfg CNN3DConfig, train, val []*Sample, seed int64) (*CNN3D, *History) {
	m := NewCNN3D(cfg, seed)
	m.out.B.Value.Data[0] = meanLabel(train)
	return m, ContinueCNN3D(m, cfg, train, val, seed)
}

// TrainCNN3DNoAugment trains a fresh 3D-CNN without the rotation
// augmentation; the ablation benchmarks use it to isolate the
// augmentation's effect.
func TrainCNN3DNoAugment(cfg CNN3DConfig, train, val []*Sample, seed int64) (*CNN3D, *History) {
	m := NewCNN3D(cfg, seed)
	m.out.B.Value.Data[0] = meanLabel(train)
	return m, continueCNN3D(m, cfg, train, val, seed, false)
}

// ContinueCNN3D resumes training an existing 3D-CNN (PB2 exploits
// clone a running trial and keep training it).
func ContinueCNN3D(m *CNN3D, cfg CNN3DConfig, train, val []*Sample, seed int64) *History {
	return continueCNN3D(m, cfg, train, val, seed, true)
}

func continueCNN3D(m *CNN3D, cfg CNN3DConfig, train, val []*Sample, seed int64, augment bool) *History {
	opt := nn.NewAdam(m.Params(), cfg.LearningRate)
	bestVal := math.Inf(1)
	var bestSnap []*tensor.Tensor
	rng := rand.New(rand.NewSource(seed + 1))
	hist := &History{}
	idx := indices(len(train))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		nb := 0
		for lo := 0; lo < len(idx); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			batch := make([]*Sample, 0, hi-lo)
			for _, i := range idx[lo:hi] {
				batch = append(batch, train[i])
			}
			aug := rng
			if !augment {
				aug = nil
			}
			x := stackVoxels(batch, aug)
			y := labelTensor(batch)
			pred, _ := m.Forward(x, true)
			loss, dpred := nn.MSELoss(pred, y)
			m.Backward(dpred, nil)
			opt.Step()
			epochLoss += loss
			nb++
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss/float64(nb))
		v := EvalCNN3D(m, val)
		hist.ValLoss = append(hist.ValLoss, v)
		if v < bestVal && len(val) > 0 {
			bestVal = v
			bestSnap = snapshotParams(m.Params())
		}
	}
	if bestSnap != nil {
		restoreParams(m.Params(), bestSnap)
	}
	return hist
}

// EvalCNN3D returns the MSE of the model on samples.
func EvalCNN3D(m *CNN3D, samples []*Sample) float64 {
	return mseOf(m.PredictAll(samples), samples)
}

// PredictCNN3D evaluates the model on samples through the batched
// engine.
func PredictCNN3D(m *CNN3D, samples []*Sample) []float64 {
	return m.PredictAll(samples)
}

// mseOf folds batched predictions into a mean squared error.
func mseOf(preds []float64, samples []*Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	se := 0.0
	for i, s := range samples {
		d := preds[i] - s.Label
		se += d * d
	}
	return se / float64(len(samples))
}

// TrainSGCNN trains an SG-CNN. Graphs vary in size, so each
// mini-batch runs as one disjoint-union ForwardBatch (no edge crosses
// a segment boundary) with a single batched backward pass.
func TrainSGCNN(cfg SGCNNConfig, train, val []*Sample, seed int64) (*SGCNN, *History) {
	m := NewSGCNN(cfg, seed)
	m.out.B.Value.Data[0] = meanLabel(train)
	return m, ContinueSGCNN(m, cfg, train, val, seed)
}

// ContinueSGCNN resumes training an existing SG-CNN (PB2 exploits
// clone a running trial and keep training it).
func ContinueSGCNN(m *SGCNN, cfg SGCNNConfig, train, val []*Sample, seed int64) *History {
	opt := nn.NewAdam(m.Params(), cfg.LearningRate)
	bestVal := math.Inf(1)
	var bestSnap []*tensor.Tensor
	rng := rand.New(rand.NewSource(seed + 2))
	hist := &History{}
	idx := indices(len(train))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		nb := 0
		for lo := 0; lo < len(idx); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			batch := make([]*Sample, 0, hi-lo)
			for _, i := range idx[lo:hi] {
				batch = append(batch, train[i])
			}
			// One disjoint-union forward/backward per mini-batch; the
			// batch-mean MSE gradient matches the former per-sample
			// accumulation with 1/|batch| scaling.
			pred, _ := m.ForwardBatch(sampleGraphs(batch), true)
			loss, dpred := nn.MSELoss(pred, labelTensor(batch))
			m.Backward(dpred, nil)
			opt.Step()
			epochLoss += loss
			nb++
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss/float64(nb))
		v := EvalSGCNN(m, val)
		hist.ValLoss = append(hist.ValLoss, v)
		if v < bestVal && len(val) > 0 {
			bestVal = v
			bestSnap = snapshotParams(m.Params())
		}
	}
	if bestSnap != nil {
		restoreParams(m.Params(), bestSnap)
	}
	return hist
}

// EvalSGCNN returns the MSE of the model on samples.
func EvalSGCNN(m *SGCNN, samples []*Sample) float64 {
	return mseOf(m.PredictAll(samples), samples)
}

// PredictSGCNN evaluates the model on samples through the batched
// engine.
func PredictSGCNN(m *SGCNN, samples []*Sample) []float64 {
	return m.PredictAll(samples)
}

// TrainFusion trains the fusion stack (and, when cfg.Coherent, the
// heads) on the featurized samples.
func TrainFusion(f *Fusion, train, val []*Sample, seed int64) *History {
	cfg := f.Cfg
	if f.out.B.Value.Data[0] == 0 {
		f.out.B.Value.Data[0] = meanLabel(train)
	}
	opt := nn.NewOptimizer(cfg.Optimizer, f.Params(), cfg.LearningRate)
	rng := rand.New(rand.NewSource(seed + 3))
	hist := &History{}
	idx := indices(len(train))
	// Model selection: keep the weights of the best validation epoch
	// (the paper's PB2 objective is minimum validation MSE).
	bestVal := math.Inf(1)
	var bestSnap []*tensor.Tensor
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		nb := 0
		bs := cfg.BatchSize
		if bs < 1 {
			bs = 1
		}
		for lo := 0; lo < len(idx); lo += bs {
			hi := lo + bs
			if hi > len(idx) {
				hi = len(idx)
			}
			batch := make([]*Sample, 0, hi-lo)
			for _, i := range idx[lo:hi] {
				batch = append(batch, train[i])
			}
			pred := f.forwardBatch(batch, true, rng)
			loss, dpred := nn.MSELoss(pred, labelTensor(batch))
			f.backward(dpred)
			opt.Step()
			epochLoss += loss
			nb++
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss/float64(nb))
		v := EvalFusion(f, val)
		hist.ValLoss = append(hist.ValLoss, v)
		if v < bestVal && len(val) > 0 {
			bestVal = v
			bestSnap = snapshotParams(f.Params())
		}
	}
	if bestSnap != nil {
		restoreParams(f.Params(), bestSnap)
	}
	return hist
}

// EvalFusion returns the MSE of the fusion model on samples.
func EvalFusion(f *Fusion, samples []*Sample) float64 {
	return mseOf(f.PredictAll(samples), samples)
}

func indices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func labelTensor(samples []*Sample) *tensor.Tensor {
	y := tensor.New(len(samples), 1)
	for i, s := range samples {
		y.Data[i] = s.Label
	}
	return y
}

// snapshotParams copies parameter values (model-selection checkpoint).
func snapshotParams(ps []*nn.Param) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Value.Clone()
	}
	return out
}

// restoreParams writes a snapshot back into the parameters.
func restoreParams(ps []*nn.Param, snap []*tensor.Tensor) {
	for i, p := range ps {
		copy(p.Value.Data, snap[i].Data)
	}
}

// meanLabel returns the mean training label, used to initialize output
// biases so early epochs are not spent learning the dataset mean.
func meanLabel(samples []*Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range samples {
		s += x.Label
	}
	return s / float64(len(samples))
}
