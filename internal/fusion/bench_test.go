package fusion

import (
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/libgen"
	"deepfusion/internal/target"
)

// benchBatch featurizes n library poses at the production options —
// the same batch the precision trajectory's PredictBatch pair scores
// (cmd/benchreport/kernels.go).
func benchBatch(b *testing.B, n int) []*Sample {
	b.Helper()
	vo := featurize.DefaultVoxelOptions()
	gro := featurize.DefaultGraphOptions()
	var samples []*Sample
	for i := 0; len(samples) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		samples = append(samples, FeaturizeComplex(m.Name, target.Protease1, m, 0, vo, gro))
	}
	return samples
}

// BenchmarkPredictBatchInto pairs the whole Coherent Fusion forward
// (voxel head + graph head + fusion trunk) at both engine precisions
// on one production batch of 8. The workspace is warmed before the
// timer so the steady state is measured: the f32 sub-benchmark must
// stay at 0 allocs/op just like the reference. `make bench-precision`
// runs this pair.
func BenchmarkPredictBatchInto(b *testing.B) {
	cnn := NewCNN3D(DefaultCNN3DConfig(), 64)
	sg := NewSGCNN(DefaultSGCNNConfig(), 65)
	coh := NewFusion(DefaultCoherentConfig(), cnn, sg, 66)
	samples := benchBatch(b, 8)
	out := make([]float64, len(samples))

	for _, p := range []Precision{PrecisionF64, PrecisionF32} {
		b.Run(string(p), func(b *testing.B) {
			b.ReportAllocs()
			ws := NewWorkspaceFor(p)
			coh.PredictBatchInto(samples, ws, out) // warm packs and pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coh.PredictBatchInto(samples, ws, out)
			}
		})
	}
}
