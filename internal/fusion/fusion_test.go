package fusion

import (
	"bytes"
	"math"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/metrics"
	"deepfusion/internal/nn"
	"deepfusion/internal/pdbbind"
	"deepfusion/internal/tensor"
)

// tinyVoxel returns a small grid config for fast tests.
func tinyVoxel() featurize.VoxelOptions {
	return featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
}

func tinyCNNConfig() CNN3DConfig {
	cfg := DefaultCNN3DConfig()
	cfg.Voxel = tinyVoxel()
	cfg.ConvFilters1 = 4
	cfg.ConvFilters2 = 6
	cfg.DenseNodes = 8
	cfg.Epochs = 3
	cfg.BatchSize = 8
	return cfg
}

func tinySGConfig() SGCNNConfig {
	cfg := DefaultSGCNNConfig()
	cfg.CovGatherWidth = 6
	cfg.NonCovGatherWidth = 8
	cfg.Epochs = 4
	return cfg
}

// testData builds a small featurized dataset once per test run.
var testDS *pdbbind.Dataset

func dataset(t *testing.T) *pdbbind.Dataset {
	t.Helper()
	if testDS == nil {
		testDS = pdbbind.Generate(pdbbind.Options{
			NGeneral: 100, NRefined: 50, NCore: 30,
			ValFraction: 0.12, NumPockets: 6, Seed: 31,
		})
	}
	return testDS
}

func featurized(t *testing.T, cs []*pdbbind.Complex) []*Sample {
	t.Helper()
	return FeaturizeDataset(cs, tinyVoxel(), featurize.DefaultGraphOptions())
}

func TestCNN3DForwardShapes(t *testing.T) {
	cfg := tinyCNNConfig()
	m := NewCNN3D(cfg, 1)
	x := tensor.New(3, cfg.Voxel.Channels(), 4, 4, 4)
	pred, lat := m.Forward(x, false)
	if pred.Dim(0) != 3 || pred.Dim(1) != 1 {
		t.Fatalf("pred shape %v", pred.Shape)
	}
	if lat.Dim(0) != 3 || lat.Dim(1) != m.LatentWidth() {
		t.Fatalf("latent shape %v, want width %d", lat.Shape, m.LatentWidth())
	}
}

func TestCNN3DGridMustDivide(t *testing.T) {
	cfg := tinyCNNConfig()
	cfg.Voxel.GridSize = 6
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for grid not divisible by 4")
		}
	}()
	NewCNN3D(cfg, 1)
}

func TestCNN3DGradientThroughLatent(t *testing.T) {
	// Finite-difference check of the latent-path backward (the path
	// Coherent Fusion uses).
	cfg := tinyCNNConfig()
	cfg.Dropout1, cfg.Dropout2 = 0, 0
	m := NewCNN3D(cfg, 2)
	x := tensor.New(1, cfg.Voxel.Channels(), 4, 4, 4)
	rngFill(x)
	_, lat := m.Forward(x, false)
	dlat := tensor.New(lat.Shape...)
	dlat.Fill(1)
	nn.ZeroGrads(m.Params())
	m.Backward(nil, dlat)
	// Check gradient of one conv1 weight numerically.
	p := m.conv1.Params()[0]
	const eps = 1e-5
	for _, i := range []int{0, 7, 33} {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + eps
		_, up := m.Forward(x, false)
		p.Value.Data[i] = orig - eps
		_, down := m.Forward(x, false)
		p.Value.Data[i] = orig
		want := (up.Sum() - down.Sum()) / (2 * eps)
		if math.Abs(p.Grad.Data[i]-want) > 1e-4 {
			t.Fatalf("conv1 grad[%d] = %v, numeric %v", i, p.Grad.Data[i], want)
		}
	}
}

func TestSGCNNForwardShapes(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:2])
	m := NewSGCNN(tinySGConfig(), 3)
	pred, lat := m.Forward(samples[0].Graph, false)
	if pred.Len() != 1 {
		t.Fatalf("pred shape %v", pred.Shape)
	}
	if lat.Dim(1) != m.LatentWidth() {
		t.Fatalf("latent width %d, want %d", lat.Dim(1), m.LatentWidth())
	}
}

func TestFusionPredictDeterministicEval(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:2])
	cnn := NewCNN3D(tinyCNNConfig(), 4)
	sg := NewSGCNN(tinySGConfig(), 5)
	f := NewFusion(DefaultMidFusionConfig(), cnn, sg, 6)
	a := f.Predict(samples[0])
	b := f.Predict(samples[0])
	if a != b {
		t.Fatal("inference must be deterministic (dropout off)")
	}
}

func TestFusionParamsModes(t *testing.T) {
	cnn := NewCNN3D(tinyCNNConfig(), 7)
	sg := NewSGCNN(tinySGConfig(), 8)
	mid := NewFusion(DefaultMidFusionConfig(), cnn, sg, 9)
	cohCfg := DefaultCoherentConfig()
	coh := NewFusion(cohCfg, cnn, sg, 10)
	if len(mid.Params()) >= len(coh.Params()) {
		t.Fatal("coherent mode must expose strictly more trainable params (heads included)")
	}
	nHead := len(cnn.Params()) + len(sg.Params())
	if len(coh.Params())-len(coh.FusionParams()) != nHead {
		t.Fatal("coherent params must be fusion params + head params")
	}
}

func TestFusionGradientCheck(t *testing.T) {
	// Full coherent-fusion gradient check on a couple of fusion-layer
	// and head parameters.
	ds := dataset(t)
	s := featurized(t, ds.Core[:1])[0]
	cfg := DefaultCoherentConfig()
	cfg.Dropout1, cfg.Dropout2, cfg.Dropout3 = 0, 0, 0
	cnnCfg := tinyCNNConfig()
	cnnCfg.Dropout1, cnnCfg.Dropout2 = 0, 0
	cnn := NewCNN3D(cnnCfg, 11)
	sg := NewSGCNN(tinySGConfig(), 12)
	f := NewFusion(cfg, cnn, sg, 13)

	pred := f.forward(s, false, nil)
	dpred := tensor.New(pred.Shape...)
	dpred.Fill(1)
	nn.ZeroGrads(f.Params())
	// Re-run forward in "train" mode (no dropout configured) so caches
	// line up, then backward.
	f.forward(s, false, nil)
	f.backward(dpred)

	check := func(p *nn.Param, idx int) {
		const eps = 1e-5
		orig := p.Value.Data[idx]
		p.Value.Data[idx] = orig + eps
		up := f.forward(s, false, nil).Sum()
		p.Value.Data[idx] = orig - eps
		down := f.forward(s, false, nil).Sum()
		p.Value.Data[idx] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(p.Grad.Data[idx]-want) > 1e-4 {
			t.Fatalf("param %s grad[%d] = %v, numeric %v", p.Name, idx, p.Grad.Data[idx], want)
		}
	}
	check(f.out.W, 0)
	check(f.layers[0].W, 3)
	check(cnn.fc2.W, 1)       // head dense, reached via latent path
	check(sg.gather.Wg, 2)    // SG head gather
	check(sg.covConv.Wmsg, 0) // deep inside SG head
}

func TestLateFusionAveragesPredictions(t *testing.T) {
	ds := dataset(t)
	s := featurized(t, ds.Core[:1])[0]
	cnn := NewCNN3D(tinyCNNConfig(), 14)
	sg := NewSGCNN(tinySGConfig(), 15)
	late := &LateFusion{CNN: cnn, SG: sg}
	x := stackVoxels([]*Sample{s}, nil)
	cp, _ := cnn.Forward(x, false)
	sp, _ := sg.Forward(s.Graph, false)
	want := (cp.Data[0] + sp.Data[0]) / 2
	if got := late.Predict(s); math.Abs(got-want) > 1e-12 {
		t.Fatalf("late fusion = %v, want %v", got, want)
	}
}

func TestRotateVoxelsPreservesMass(t *testing.T) {
	v := tensor.New(2, 4, 4, 4)
	rngFill(v)
	for axis := 0; axis < 3; axis++ {
		r := rotateVoxels(v, axis)
		if math.Abs(r.Sum()-v.Sum()) > 1e-9 {
			t.Fatalf("axis %d rotation changed mass", axis)
		}
		// Four rotations = identity.
		r4 := v
		for k := 0; k < 4; k++ {
			r4 = rotateVoxels(r4, axis)
		}
		for i := range v.Data {
			if math.Abs(r4.Data[i]-v.Data[i]) > 1e-12 {
				t.Fatalf("axis %d: 4 rotations != identity", axis)
			}
		}
	}
}

func TestTrainCNN3DLearns(t *testing.T) {
	ds := dataset(t)
	train := featurized(t, ds.Train)
	val := featurized(t, ds.Val)
	cfg := tinyCNNConfig()
	cfg.Epochs = 6
	m, hist := TrainCNN3D(cfg, train, val, 21)
	if len(hist.TrainLoss) != cfg.Epochs {
		t.Fatalf("history length %d", len(hist.TrainLoss))
	}
	// Loss should trend down across the run (tiny-budget training is
	// noisy epoch to epoch, so compare the best reached to the start).
	best := hist.TrainLoss[0]
	for _, v := range hist.TrainLoss[1:] {
		if v < best {
			best = v
		}
	}
	if best >= hist.TrainLoss[0] {
		t.Fatalf("3D-CNN loss never improved from %v", hist.TrainLoss[0])
	}
	preds := PredictCNN3D(m, val)
	if r := metrics.Pearson(preds, Labels(val)); r < 0.15 {
		t.Fatalf("3D-CNN val Pearson %v; no signal learned", r)
	}
}

func TestTrainSGCNNLearns(t *testing.T) {
	ds := dataset(t)
	train := featurized(t, ds.Train)
	val := featurized(t, ds.Val)
	cfg := tinySGConfig()
	m, hist := TrainSGCNN(cfg, train, val, 22)
	first, last := hist.TrainLoss[0], hist.TrainLoss[len(hist.TrainLoss)-1]
	if last >= first {
		t.Fatalf("SG-CNN loss did not decrease: %v -> %v", first, last)
	}
	preds := PredictSGCNN(m, val)
	if r := metrics.Pearson(preds, Labels(val)); r < 0.15 {
		t.Fatalf("SG-CNN val Pearson %v; no signal learned", r)
	}
}

func TestTrainFusionImprovesOverInit(t *testing.T) {
	ds := dataset(t)
	train := featurized(t, ds.Train)
	val := featurized(t, ds.Val)
	cnn, _ := TrainCNN3D(tinyCNNConfig(), train, val, 23)
	sg, _ := TrainSGCNN(tinySGConfig(), train, val, 24)
	cfg := DefaultCoherentConfig()
	cfg.Epochs = 3
	f := NewFusion(cfg, cnn, sg, 25)
	before := EvalFusion(f, val)
	TrainFusion(f, train, val, 26)
	after := EvalFusion(f, val)
	if after >= before {
		t.Fatalf("coherent fusion training did not improve val MSE: %v -> %v", before, after)
	}
}

func TestHistoryBest(t *testing.T) {
	h := &History{ValLoss: []float64{3, 1.5, 2}}
	if h.Best() != 1.5 {
		t.Fatalf("Best = %v", h.Best())
	}
	empty := &History{}
	if !math.IsInf(empty.Best(), 1) {
		t.Fatal("empty history Best must be +Inf")
	}
}

func rngFill(x *tensor.Tensor) {
	v := 0.37
	for i := range x.Data {
		v = math.Mod(v*1.618+0.31, 1)
		x.Data[i] = v - 0.5
	}
}

func TestFineTuneImprovesOnTarget(t *testing.T) {
	// Paper future work: specializing the baseline Coherent Fusion to a
	// single binding site should improve (or at least not hurt) its MSE
	// on that site, while the base model stays untouched.
	ds := dataset(t)
	train := featurized(t, ds.Train)
	val := featurized(t, ds.Val)
	cnn, _ := TrainCNN3D(tinyCNNConfig(), train, val, 61)
	sg, _ := TrainSGCNN(tinySGConfig(), train, val, 62)
	cfg := DefaultCoherentConfig()
	cfg.Epochs = 2
	base := NewFusion(cfg, cnn, sg, 63)
	TrainFusion(base, train, val, 64)

	// Target-specific subset: complexes from one pocket.
	pocketName := ds.Train[0].Pocket.Name
	var tgtTrain, tgtVal []*Sample
	for _, s := range train {
		if s.Pocket.Name == pocketName {
			tgtTrain = append(tgtTrain, s)
		}
	}
	for _, s := range val {
		if s.Pocket.Name == pocketName {
			tgtVal = append(tgtVal, s)
		}
	}
	if len(tgtTrain) < 4 || len(tgtVal) < 1 {
		t.Skip("too few target-specific samples in the tiny corpus")
	}
	before := EvalFusion(base, tgtVal)
	baseParam := base.CNN.Params()[0].Value.Clone()

	o := DefaultFineTuneOptions()
	o.Epochs = 4
	o.LearningRate = 3e-4
	ft, hist := FineTune(base, tgtTrain, tgtVal, o, 65)
	after := EvalFusion(ft, tgtVal)
	if len(hist.ValLoss) != o.Epochs {
		t.Fatalf("history length %d", len(hist.ValLoss))
	}
	if hist.Best() > before*1.5 {
		t.Fatalf("fine-tuning diverged: best %v vs before %v", hist.Best(), before)
	}
	_ = after
	// The base model must be unchanged (FineTune works on a clone).
	for i, v := range base.CNN.Params()[0].Value.Data {
		if v != baseParam.Data[i] {
			t.Fatal("FineTune mutated the base model")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := dataset(t)
	s := featurized(t, ds.Core[:1])[0]
	cnn := NewCNN3D(tinyCNNConfig(), 66)
	sg := NewSGCNN(tinySGConfig(), 67)
	f := NewFusion(DefaultCoherentConfig(), cnn, sg, 68)
	c := f.Clone()
	if c.Predict(s) != f.Predict(s) {
		t.Fatal("clone predicts differently")
	}
	// Mutating the clone must not affect the original.
	c.CNN.Params()[0].Value.Data[0] += 10
	if c.Predict(s) == f.Predict(s) {
		t.Fatal("clone shares weights with original")
	}
}

func TestFusionCheckpointRoundTrip(t *testing.T) {
	// Save and reload the full coherent model (fusion layers + heads)
	// through the nn checkpoint format; predictions must be identical.
	ds := dataset(t)
	s := featurized(t, ds.Core[:1])[0]
	cnn := NewCNN3D(tinyCNNConfig(), 81)
	sg := NewSGCNN(tinySGConfig(), 82)
	f := NewFusion(DefaultCoherentConfig(), cnn, sg, 83)
	want := f.Predict(s)

	var buf bytes.Buffer
	all := append(append([]*nn.Param{}, f.FusionParams()...), f.CNN.Params()...)
	all = append(all, f.SG.Params()...)
	if err := nn.SaveParams(&buf, all); err != nil {
		t.Fatal(err)
	}

	cnn2 := NewCNN3D(tinyCNNConfig(), 99)
	sg2 := NewSGCNN(tinySGConfig(), 98)
	f2 := NewFusion(DefaultCoherentConfig(), cnn2, sg2, 97)
	all2 := append(append([]*nn.Param{}, f2.FusionParams()...), f2.CNN.Params()...)
	all2 = append(all2, f2.SG.Params()...)
	if err := nn.LoadParams(&buf, all2); err != nil {
		t.Fatal(err)
	}
	if got := f2.Predict(s); got != want {
		t.Fatalf("prediction after checkpoint reload %v != %v", got, want)
	}
}

func TestStackVoxelsLayout(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:3])
	b := stackVoxels(samples, nil)
	if b.Dim(0) != 3 {
		t.Fatalf("batch dim %d", b.Dim(0))
	}
	per := samples[0].Voxels.Len()
	for i, s := range samples {
		for j := 0; j < per; j += 17 {
			if b.Data[i*per+j] != s.Voxels.Data[j] {
				t.Fatalf("sample %d misplaced in batch", i)
			}
		}
	}
}

func TestLabelsAndMeanLabel(t *testing.T) {
	s := []*Sample{{Label: 2}, {Label: 4}}
	ls := Labels(s)
	if ls[0] != 2 || ls[1] != 4 {
		t.Fatal("Labels")
	}
	if meanLabel(s) != 3 {
		t.Fatal("meanLabel")
	}
	if meanLabel(nil) != 0 {
		t.Fatal("meanLabel empty")
	}
}

func TestBestValRestore(t *testing.T) {
	// The trainer must return the best-validation-epoch weights: the
	// final reported model's val MSE equals the history minimum.
	ds := dataset(t)
	train := featurized(t, ds.Train[:60])
	val := featurized(t, ds.Val)
	cfg := tinySGConfig()
	cfg.Epochs = 6
	m, hist := TrainSGCNN(cfg, train, val, 44)
	finalVal := EvalSGCNN(m, val)
	if math.Abs(finalVal-hist.Best()) > 1e-9 {
		t.Fatalf("returned model val MSE %v != history best %v", finalVal, hist.Best())
	}
}
