package fusion

import (
	"math/rand"

	"deepfusion/internal/featurize"
	"deepfusion/internal/graph"
	"deepfusion/internal/nn"
	"deepfusion/internal/tensor"
)

// SGCNN is the spatial-graph head (PotentialNet architecture, as in
// the original FAST code): a covalent gated-graph stage over the bond
// graph, a non-covalent stage over the distance-thresholded contact
// graph (including protein nodes), the gated gather pooling over
// ligand atoms, and a dense stack whose sizes follow the Non-covalent
// Gather Width reduced by 1.5x and then 2x. The gather output is the
// latent vector consumed by the fusion layers (Layer N-3).
type SGCNN struct {
	Cfg SGCNNConfig

	proj    *graph.Project // node features -> covalent width
	covConv *graph.GGConv
	bridge  *graph.Project // covalent width -> non-covalent width
	ncConv  *graph.GGConv
	gather  *graph.Gather
	d1, d2  *nn.Dense
	out     *nn.Dense
	act1    *nn.Activation
	act2    *nn.Activation
}

// LatentWidth returns the fusion-visible latent vector width (the
// gather output width).
func (m *SGCNN) LatentWidth() int { return m.Cfg.NonCovGatherWidth }

// NewSGCNN constructs the model.
func NewSGCNN(cfg SGCNNConfig, seed int64) *SGCNN {
	rng := rand.New(rand.NewSource(seed))
	w1 := cfg.CovGatherWidth
	w2 := cfg.NonCovGatherWidth
	d1w := max(2, w2*2/3) // reduce by 1.5x
	d2w := max(1, d1w/2)  // then by 2x
	return &SGCNN{
		Cfg:     cfg,
		proj:    graph.NewProject(rng, featurize.NodeFeatures, w1),
		covConv: graph.NewGGConv(rng, w1, cfg.CovK),
		bridge:  graph.NewProject(rng, w1, w2),
		ncConv:  graph.NewGGConv(rng, w2, cfg.NonCovK),
		gather:  graph.NewGather(rng, w2, featurize.NodeFeatures, w2),
		d1:      nn.NewDense(rng, w2, d1w),
		d2:      nn.NewDense(rng, d1w, d2w),
		out:     nn.NewDense(rng, d2w, 1),
		act1:    nn.NewActivation(nn.ActReLU),
		act2:    nn.NewActivation(nn.ActReLU),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Params returns all trainable parameters.
func (m *SGCNN) Params() []*nn.Param {
	ps := append([]*nn.Param{}, m.proj.Params()...)
	ps = append(ps, m.covConv.Params()...)
	ps = append(ps, m.bridge.Params()...)
	ps = append(ps, m.ncConv.Params()...)
	ps = append(ps, m.gather.Params()...)
	ps = append(ps, m.d1.Params()...)
	ps = append(ps, m.d2.Params()...)
	ps = append(ps, m.out.Params()...)
	return ps
}

// Forward evaluates one complex graph, returning the prediction
// ([1, 1]) and the latent gather vector ([1, NonCovGatherWidth]). It
// is the B=1 case of ForwardBatch.
func (m *SGCNN) Forward(g *featurize.Graph, train bool) (pred, latent *tensor.Tensor) {
	return m.ForwardBatch([]*featurize.Graph{g}, train)
}

// ForwardBatch evaluates a batch of complex graphs in one pass over
// their disjoint union: every message-passing GEMM runs once on the
// stacked node rows, and the gather pools each graph's segment into
// its own latent row. Returns the predictions ([B, 1]) and latent
// vectors ([B, NonCovGatherWidth]). Per-row math matches Forward
// exactly because no edge crosses a segment boundary.
func (m *SGCNN) ForwardBatch(gs []*featurize.Graph, train bool) (pred, latent *tensor.Tensor) {
	nodes, cov, nc, segs := unionGraphs(gs)
	h := m.proj.Forward(nodes)
	h = m.covConv.Forward(h, cov)
	h = m.bridge.Forward(h)
	h = m.ncConv.Forward(h, nc)
	latent = m.gather.ForwardSegments(h, nodes, segs)
	y := m.act1.Forward(m.d1.Forward(latent, train), train)
	y = m.act2.Forward(m.d2.Forward(y, train), train)
	pred = m.out.Forward(y, train)
	return pred, latent
}

// Backward propagates gradients from the prediction (dpred, [B, 1])
// and/or the latent vector (dlatent, [B, W]) of the most recent
// forward pass; either may be nil.
func (m *SGCNN) Backward(dpred, dlatent *tensor.Tensor) {
	var g *tensor.Tensor
	if dpred != nil {
		g = m.out.Backward(dpred)
		g = m.act2.Backward(g)
		g = m.d2.Backward(g)
		g = m.act1.Backward(g)
		g = m.d1.Backward(g)
	}
	if dlatent != nil {
		if g == nil {
			g = dlatent.Clone()
		} else {
			g.AddInPlace(dlatent)
		}
	}
	if g == nil {
		return
	}
	dh := m.gather.Backward(g)
	dh = m.ncConv.Backward(dh)
	dh = m.bridge.Backward(dh)
	dh = m.covConv.Backward(dh)
	m.proj.Backward(dh)
}
