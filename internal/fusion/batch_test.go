package fusion

import (
	"math"
	"testing"
)

// TestPredictBatchMatchesPredict is the golden equivalence guarantee
// of the batched inference engine: for every model family and batch
// size, PredictBatch must reproduce per-sample Predict within 1e-9
// (in practice bitwise — batch composition never touches per-row
// math).
func TestPredictBatchMatchesPredict(t *testing.T) {
	ds := dataset(t)
	samples := featurized(t, ds.Core[:8])
	cnn := NewCNN3D(tinyCNNConfig(), 91)
	sg := NewSGCNN(tinySGConfig(), 92)
	late := &LateFusion{CNN: cnn, SG: sg}
	mid := NewFusion(DefaultMidFusionConfig(), cnn, sg, 93)
	cohCfg := DefaultCoherentConfig()
	coh := NewFusion(cohCfg, cnn, sg, 94)

	models := []struct {
		name   string
		single func(s *Sample) float64
		batch  func(ss []*Sample) []float64
	}{
		{"CNN3D", func(s *Sample) float64 { return cnn.PredictBatch([]*Sample{s})[0] }, cnn.PredictBatch},
		{"SGCNN", func(s *Sample) float64 { return sg.PredictBatch([]*Sample{s})[0] }, sg.PredictBatch},
		{"Late", late.Predict, late.PredictBatch},
		{"Mid", mid.Predict, mid.PredictBatch},
		{"Coherent", coh.Predict, coh.PredictBatch},
	}
	for _, m := range models {
		want := make([]float64, len(samples))
		for i, s := range samples {
			want[i] = m.single(s)
		}
		for _, bs := range []int{1, 3, 8} {
			for lo := 0; lo < len(samples); lo += bs {
				hi := lo + bs
				if hi > len(samples) {
					hi = len(samples)
				}
				got := m.batch(samples[lo:hi])
				for j := range got {
					if d := math.Abs(got[j] - want[lo+j]); d > 1e-9 {
						t.Fatalf("%s: batch size %d sample %d: batched %v vs per-sample %v (|d|=%v)",
							m.name, bs, lo+j, got[j], want[lo+j], d)
					}
				}
			}
		}
	}
}

// TestPredictBatchEmpty keeps the degenerate case defined.
func TestPredictBatchEmpty(t *testing.T) {
	cnn := NewCNN3D(tinyCNNConfig(), 95)
	sg := NewSGCNN(tinySGConfig(), 96)
	f := NewFusion(DefaultCoherentConfig(), cnn, sg, 97)
	if got := f.PredictBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch produced %v", got)
	}
	if got := (&LateFusion{CNN: cnn, SG: sg}).PredictBatch(nil); len(got) != 0 {
		t.Fatalf("empty late batch produced %v", got)
	}
}

// TestPredictAllMatchesPredict pins the chunked path to the same
// guarantee across a batch-boundary-straddling sample count.
func TestPredictAllMatchesPredict(t *testing.T) {
	ds := dataset(t)
	n := predictChunk + 3
	if n > len(ds.Train) {
		n = len(ds.Train)
	}
	samples := featurized(t, ds.Train[:n])
	cnn := NewCNN3D(tinyCNNConfig(), 98)
	sg := NewSGCNN(tinySGConfig(), 99)
	f := NewFusion(DefaultCoherentConfig(), cnn, sg, 100)
	all := f.PredictAll(samples)
	if len(all) != len(samples) {
		t.Fatalf("PredictAll returned %d of %d", len(all), len(samples))
	}
	for i, s := range samples {
		if d := math.Abs(all[i] - f.Predict(s)); d > 1e-9 {
			t.Fatalf("sample %d: PredictAll %v vs Predict %v", i, all[i], f.Predict(s))
		}
	}
}
