// Package metrics implements the regression and classification
// statistics the paper reports: RMSE, MAE, R^2, Pearson and Spearman
// correlation, precision/recall curves, F1 scores and Cohen's kappa.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when paired series differ in length.
var ErrLengthMismatch = errors.New("metrics: input series have different lengths")

// RMSE returns the root-mean-squared error between predictions and
// ground truth.
func RMSE(pred, truth []float64) float64 {
	mustPair(pred, truth)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	mustPair(pred, truth)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination of pred against truth.
func R2(pred, truth []float64) float64 {
	mustPair(pred, truth)
	if len(pred) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	ssRes, ssTot := 0.0, 0.0
	for i := range pred {
		d := truth[i] - pred[i]
		ssRes += d * d
		m := truth[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Pearson returns the Pearson correlation coefficient of x and y, or 0
// when either series is constant.
func Pearson(x, y []float64) float64 {
	mustPair(x, y)
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	mx, my := 0.0, 0.0
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of x and y (Pearson on
// fractional ranks, with ties receiving their average rank).
func Spearman(x, y []float64) float64 {
	mustPair(x, y)
	return Pearson(ranks(x), ranks(y))
}

func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// PRPoint is one precision/recall operating point.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve sweeps a descending score threshold over (score, label) pairs
// and returns the precision/recall at every distinct score, mirroring
// the curves in Figures 2 and 6 of the paper. Labels are true for the
// positive class.
func PRCurve(scores []float64, labels []bool) []PRPoint {
	if len(scores) != len(labels) {
		panic(ErrLengthMismatch)
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	totalPos := 0
	for _, l := range labels {
		if l {
			totalPos++
		}
	}
	var curve []PRPoint
	tp, fp := 0, 0
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		for k := i; k <= j; k++ {
			if labels[idx[k]] {
				tp++
			} else {
				fp++
			}
		}
		p := PRPoint{Threshold: scores[idx[i]]}
		if tp+fp > 0 {
			p.Precision = float64(tp) / float64(tp+fp)
		}
		if totalPos > 0 {
			p.Recall = float64(tp) / float64(totalPos)
		}
		curve = append(curve, p)
		i = j + 1
	}
	return curve
}

// BestF1 returns the maximum F1 score over the PR curve along with the
// threshold achieving it.
func BestF1(scores []float64, labels []bool) (f1, threshold float64) {
	for _, p := range PRCurve(scores, labels) {
		if p.Precision+p.Recall == 0 {
			continue
		}
		f := 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
		if f > f1 {
			f1, threshold = f, p.Threshold
		}
	}
	return f1, threshold
}

// F1At computes the F1 score classifying score >= threshold as
// positive.
func F1At(scores []float64, labels []bool, threshold float64) float64 {
	if len(scores) != len(labels) {
		panic(ErrLengthMismatch)
	}
	tp, fp, fn := 0, 0, 0
	for i, s := range scores {
		pred := s >= threshold
		switch {
		case pred && labels[i]:
			tp++
		case pred && !labels[i]:
			fp++
		case !pred && labels[i]:
			fn++
		}
	}
	if 2*tp+fp+fn == 0 {
		return 0
	}
	return 2 * float64(tp) / float64(2*tp+fp+fn)
}

// CohenKappa returns Cohen's kappa statistic for binary predictions
// against labels: agreement beyond chance. A random classifier scores
// ~0 (Equation 2 of the paper).
func CohenKappa(pred, labels []bool) float64 {
	if len(pred) != len(labels) {
		panic(ErrLengthMismatch)
	}
	n := float64(len(pred))
	if n == 0 {
		return 0
	}
	var tp, tn, fp, fn float64
	for i := range pred {
		switch {
		case pred[i] && labels[i]:
			tp++
		case pred[i] && !labels[i]:
			fp++
		case !pred[i] && labels[i]:
			fn++
		default:
			tn++
		}
	}
	po := (tp + tn) / n
	pyes := (tp + fp) / n * (tp + fn) / n
	pno := (tn + fn) / n * (tn + fp) / n
	pe := pyes + pno
	if pe == 1 {
		return 0
	}
	return (po - pe) / (1 - pe)
}

// AveragePrecision returns the area under the PR curve via the step
// interpolation used by scikit-learn.
func AveragePrecision(scores []float64, labels []bool) float64 {
	curve := PRCurve(scores, labels)
	ap := 0.0
	prevRecall := 0.0
	for _, p := range curve {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap
}

// PositiveRate returns the fraction of true labels — the precision of a
// random classifier, drawn as the dashed baseline in Figures 2 and 6.
func PositiveRate(labels []bool) float64 {
	if len(labels) == 0 {
		return 0
	}
	n := 0
	for _, l := range labels {
		if l {
			n++
		}
	}
	return float64(n) / float64(len(labels))
}

func mustPair(a, b []float64) {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
}
