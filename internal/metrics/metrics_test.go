package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRMSEMAEKnown(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 4, 2}
	if got := RMSE(pred, truth); !almost(got, math.Sqrt(5.0/3), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if got := MAE(pred, truth); !almost(got, 1, 1e-12) {
		t.Fatalf("MAE = %v", got)
	}
}

func TestRMSEEmpty(t *testing.T) {
	if RMSE(nil, nil) != 0 || MAE(nil, nil) != 0 || R2(nil, nil) != 0 {
		t.Fatal("empty series must give 0")
	}
}

func TestRMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestR2PerfectAndMean(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	if got := R2(truth, truth); !almost(got, 1, 1e-12) {
		t.Fatalf("perfect R2 = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(mean, truth); !almost(got, 0, 1e-12) {
		t.Fatalf("mean-predictor R2 = %v", got)
	}
}

func TestR2ConstantTruth(t *testing.T) {
	if got := R2([]float64{1, 2}, []float64{3, 3}); got != 0 {
		t.Fatalf("constant-truth R2 = %v, want 0", got)
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); !almost(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("constant Pearson = %v, want 0", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // monotone nonlinear
	if got := Spearman(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
	if p := Pearson(x, y); p >= 0.999 {
		t.Fatalf("sanity: Pearson should be < 1 for nonlinear, got %v", p)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 2, 3}
	if got := Spearman(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("tied Spearman = %v, want 1", got)
	}
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestPRCurvePerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	curve := PRCurve(scores, labels)
	if len(curve) != 4 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0].Precision != 1 || curve[0].Recall != 0.5 {
		t.Fatalf("first point %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.Recall != 1 || !almost(last.Precision, 0.5, 1e-12) {
		t.Fatalf("last point %+v", last)
	}
	f1, thr := BestF1(scores, labels)
	if !almost(f1, 1, 1e-12) || thr != 0.8 {
		t.Fatalf("BestF1 = %v at %v", f1, thr)
	}
}

func TestPRCurveTiedScores(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5}
	labels := []bool{true, false, true}
	curve := PRCurve(scores, labels)
	if len(curve) != 1 {
		t.Fatalf("tied scores must collapse to one point, got %d", len(curve))
	}
	if !almost(curve[0].Precision, 2.0/3, 1e-12) || curve[0].Recall != 1 {
		t.Fatalf("point %+v", curve[0])
	}
}

func TestF1At(t *testing.T) {
	scores := []float64{0.9, 0.6, 0.4, 0.1}
	labels := []bool{true, false, true, false}
	// threshold 0.5: tp=1 fp=1 fn=1 -> F1 = 2/4
	if got := F1At(scores, labels, 0.5); !almost(got, 0.5, 1e-12) {
		t.Fatalf("F1At = %v", got)
	}
	if got := F1At(nil, nil, 0.5); got != 0 {
		t.Fatalf("empty F1 = %v", got)
	}
}

func TestCohenKappaPerfectAndRandom(t *testing.T) {
	labels := []bool{true, true, false, false}
	if got := CohenKappa(labels, labels); !almost(got, 1, 1e-12) {
		t.Fatalf("perfect kappa = %v", got)
	}
	// A constant classifier has kappa 0.
	all := []bool{true, true, true, true}
	if got := CohenKappa(all, labels); !almost(got, 0, 1e-12) {
		t.Fatalf("constant-classifier kappa = %v", got)
	}
}

func TestCohenKappaRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20000
	pred := make([]bool, n)
	labels := make([]bool, n)
	for i := range pred {
		pred[i] = rng.Float64() < 0.3
		labels[i] = rng.Float64() < 0.3
	}
	if got := CohenKappa(pred, labels); math.Abs(got) > 0.03 {
		t.Fatalf("random kappa = %v, want ~0", got)
	}
}

func TestAveragePrecisionBounds(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2}
	labels := []bool{true, true, false, false}
	ap := AveragePrecision(scores, labels)
	if !almost(ap, 1, 1e-12) {
		t.Fatalf("perfect AP = %v", ap)
	}
	inverted := []bool{false, false, true, true}
	apInv := AveragePrecision(scores, inverted)
	if apInv >= ap {
		t.Fatalf("inverted AP %v should be worse than %v", apInv, ap)
	}
}

func TestPositiveRate(t *testing.T) {
	if got := PositiveRate([]bool{true, false, false, true}); !almost(got, 0.5, 1e-12) {
		t.Fatalf("rate = %v", got)
	}
	if PositiveRate(nil) != 0 {
		t.Fatal("empty rate must be 0")
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = x[i]*0.5 + rng.NormFloat64()
		}
		base := Pearson(x, y)
		x2 := make([]float64, n)
		for i := range x2 {
			x2[i] = 3*x[i] + 7
		}
		return almost(Pearson(x2, y), base, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestSpearmanMonotoneInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		base := Spearman(x, y)
		x2 := make([]float64, n)
		for i := range x2 {
			x2[i] = math.Exp(x[i])
		}
		return almost(Spearman(x2, y), base, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: RMSE >= MAE always.
func TestRMSEDominatesMAEProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		return RMSE(a, b) >= MAE(a, b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: PR curve recall is non-decreasing as the threshold drops.
func TestPRCurveRecallMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Float64() < 0.4
		}
		curve := PRCurve(scores, labels)
		for i := 1; i < len(curve); i++ {
			if curve[i].Recall < curve[i-1].Recall-1e-12 {
				return false
			}
			if curve[i].Threshold >= curve[i-1].Threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestROCCurvePerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	curve := ROCCurve(scores, labels)
	last := curve[len(curve)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC must end at (1,1): %+v", last)
	}
	if got := AUC(scores, labels); !almost(got, 1, 1e-12) {
		t.Fatalf("perfect AUC = %v", got)
	}
}

func TestAUCRandomNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.5
	}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 0.03 {
		t.Fatalf("random AUC = %v, want ~0.5", got)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{false, false, true, true}
	if got := AUC(scores, labels); !almost(got, 0, 1e-12) {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
}

func TestBootstrapCICoversPointEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 120
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.6*x[i] + 0.8*rng.NormFloat64()
	}
	point := Pearson(x, y)
	lo, hi := BootstrapCI(x, y, Pearson, 400, 0.05, 11)
	if lo > point || hi < point {
		t.Fatalf("CI [%v, %v] misses point estimate %v", lo, hi, point)
	}
	if hi-lo <= 0 || hi-lo > 1 {
		t.Fatalf("CI width %v implausible", hi-lo)
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	lo, hi := BootstrapCI(nil, nil, Pearson, 100, 0.05, 1)
	if lo != 0 || hi != 0 {
		t.Fatal("empty bootstrap must return zeros")
	}
}

// Property: AUC is invariant under strictly monotone score transforms.
func TestAUCMonotoneInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Float64() < 0.5
		}
		base := AUC(scores, labels)
		tr := make([]float64, n)
		for i := range tr {
			tr[i] = math.Exp(scores[i])
		}
		return almost(AUC(tr, labels), base, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
