package metrics

import (
	"math/rand"
	"sort"
)

// ROCPoint is one receiver-operating-characteristic operating point.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // sensitivity
	FPR       float64 // 1 - specificity
}

// ROCCurve sweeps a descending threshold and returns the ROC points.
// The paper argues P/R curves are more informative than ROC on the
// small, imbalanced docked-pose sets; both are provided so the choice
// can be reproduced.
func ROCCurve(scores []float64, labels []bool) []ROCPoint {
	if len(scores) != len(labels) {
		panic(ErrLengthMismatch)
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	totalPos, totalNeg := 0, 0
	for _, l := range labels {
		if l {
			totalPos++
		} else {
			totalNeg++
		}
	}
	var curve []ROCPoint
	tp, fp := 0, 0
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		for k := i; k <= j; k++ {
			if labels[idx[k]] {
				tp++
			} else {
				fp++
			}
		}
		p := ROCPoint{Threshold: scores[idx[i]]}
		if totalPos > 0 {
			p.TPR = float64(tp) / float64(totalPos)
		}
		if totalNeg > 0 {
			p.FPR = float64(fp) / float64(totalNeg)
		}
		curve = append(curve, p)
		i = j + 1
	}
	return curve
}

// AUC returns the area under the ROC curve by trapezoidal
// integration. A random classifier scores 0.5.
func AUC(scores []float64, labels []bool) float64 {
	curve := ROCCurve(scores, labels)
	area := 0.0
	prevFPR, prevTPR := 0.0, 0.0
	for _, p := range curve {
		area += (p.FPR - prevFPR) * (p.TPR + prevTPR) / 2
		prevFPR, prevTPR = p.FPR, p.TPR
	}
	return area
}

// BootstrapCI estimates a confidence interval for a statistic of
// paired data via the percentile bootstrap: resample pairs with
// replacement nBoot times and take the (alpha/2, 1-alpha/2)
// percentiles. Used to qualify the near-zero Table 8 correlations
// ("the interpretation of near-zero correlation coefficients is
// unavailing").
func BootstrapCI(x, y []float64, stat func(a, b []float64) float64, nBoot int, alpha float64, seed int64) (lo, hi float64) {
	mustPair(x, y)
	n := len(x)
	if n == 0 || nBoot < 2 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, nBoot)
	bx := make([]float64, n)
	by := make([]float64, n)
	for b := 0; b < nBoot; b++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i], by[i] = x[j], y[j]
		}
		vals[b] = stat(bx, by)
	}
	sort.Float64s(vals)
	loIdx := int(alpha / 2 * float64(nBoot))
	hiIdx := int((1 - alpha/2) * float64(nBoot))
	if hiIdx >= nBoot {
		hiIdx = nBoot - 1
	}
	return vals[loIdx], vals[hiIdx]
}
