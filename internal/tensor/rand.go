package tensor

import "math/rand"

// RandNormal fills t with N(0, std^2) samples drawn from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// RandUniform fills t with Uniform(lo, hi) samples drawn from rng.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}
