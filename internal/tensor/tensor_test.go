package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dim")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	x.Set(42, 0, 1)
	if d[1] != 42 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	k := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 5; l++ {
				x.Set(k, i, j, l)
				k++
			}
		}
	}
	// Row-major ordering means Data should be 0..59 in order.
	for i, v := range x.Data {
		if v != float64(i) {
			t.Fatalf("Data[%d] = %v, want %d", i, v, i)
		}
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(4, 3)
	y := x.Reshape(2, 6)
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("Reshape must alias data")
	}
	if y.Dim(0) != 2 || y.Dim(1) != 6 {
		t.Fatalf("bad reshape %v", y.Shape)
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Reshape(3)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	a.AXPY(2, b)
	if a.Data[0] != 9 {
		t.Fatalf("AXPY = %v", a.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 3, 2}, 3)
	if x.Sum() != 4 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if math.Abs(x.Mean()-4.0/3) > 1e-12 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 3 || x.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if math.Abs(x.Norm2()-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
}

func TestMeanEmpty(t *testing.T) {
	if New(0).Mean() != 0 {
		t.Fatal("Mean of empty tensor should be 0")
	}
}

func TestApplyMap(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	y := x.Map(math.Sqrt)
	if y.Data[2] != 3 {
		t.Fatalf("Map = %v", y.Data)
	}
	x.Apply(func(v float64) float64 { return -v })
	if x.Data[0] != -1 {
		t.Fatalf("Apply = %v", x.Data)
	}
}

func TestRow(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if len(r) != 3 || r[0] != 4 {
		t.Fatalf("Row = %v", r)
	}
	r[0] = 40
	if x.At(1, 0) != 40 {
		t.Fatal("Row must be a view")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 4)
	b := New(5, 3)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	// A^T * B computed two ways.
	at := New(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := MatMul(at, b)
	got := MatMulTransA(a, b)
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("MatMulTransA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	// A * B^T computed two ways.
	c := New(4, 5)
	c.RandNormal(rng, 1)
	bt := New(3, 5)
	d := New(5, 3)
	d.RandNormal(rng, 1)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			bt.Set(d.At(i, j), j, i)
		}
	}
	want2 := MatMul(c, d)
	got2 := MatMulTransB(c, bt)
	for i := range want2.Data {
		if math.Abs(want2.Data[i]-got2.Data[i]) > 1e-12 {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

func TestMatMulLargeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(130, 60)
	b := New(60, 90)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	c := MatMul(a, b) // large enough to trigger the parallel path
	// Spot-check a few entries against a direct dot product.
	for _, ij := range [][2]int{{0, 0}, {129, 89}, {64, 45}} {
		i, j := ij[0], ij[1]
		s := 0.0
		for p := 0; p < 60; p++ {
			s += a.At(i, p) * b.At(p, j)
		}
		if math.Abs(s-c.At(i, j)) > 1e-9 {
			t.Fatalf("parallel MatMul (%d,%d) = %v, want %v", i, j, c.At(i, j), s)
		}
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 100, 1000} {
		counts := make([]int32, n)
		done := make(chan struct{})
		go func() {
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[i]++
				}
			})
			close(done)
		}()
		<-done
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestRandNormalStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := New(20000)
	x.RandNormal(rng, 2)
	if m := x.Mean(); math.Abs(m) > 0.1 {
		t.Fatalf("mean = %v, want ~0", m)
	}
	varSum := 0.0
	for _, v := range x.Data {
		varSum += v * v
	}
	if sd := math.Sqrt(varSum / float64(x.Len())); math.Abs(sd-2) > 0.1 {
		t.Fatalf("std = %v, want ~2", sd)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := New(1000)
	x.RandUniform(rng, -1, 3)
	if x.Min() < -1 || x.Max() > 3 {
		t.Fatalf("uniform out of range [%v, %v]", x.Min(), x.Max())
	}
}

// Property: (A*B)*C == A*(B*C) within floating-point tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(4, 3), New(3, 5), New(5, 2)
		a.RandNormal(rng, 1)
		b.RandNormal(rng, 1)
		c.RandNormal(rng, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(Add(a,b),b) == a.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		a := FromSlice(append([]float64(nil), vals...), len(vals))
		b := a.Map(func(v float64) float64 { return v/2 + 1 })
		if !a.SameShape(b) {
			return false
		}
		back := Sub(Add(a, b), b)
		for i := range back.Data {
			diff := math.Abs(back.Data[i] - a.Data[i])
			scale := math.Max(1, math.Abs(a.Data[i]))
			if diff/scale > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndFill(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	x.Scale(2)
	if x.Data[2] != 6 {
		t.Fatalf("Scale: %v", x.Data)
	}
	x.Fill(7)
	for _, v := range x.Data {
		if v != 7 {
			t.Fatal("Fill")
		}
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero")
	}
}

func TestSameShape(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	c := New(3, 2)
	d := New(2, 3, 1)
	if !a.SameShape(b) || a.SameShape(c) || a.SameShape(d) {
		t.Fatal("SameShape")
	}
}

func TestStringSummary(t *testing.T) {
	s := New(2, 2).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestMaxMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0).Max()
}

func TestAddInPlaceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddInPlace(New(3))
}
