package tensor

import "fmt"

// This file implements the cache-blocked packed GEMM behind the
// steady-state inference path. The right-hand operand — in practice a
// weight matrix that is constant across every batch of a screening job
// — is repacked once into contiguous column panels; the multiply then
// sweeps each panel with an unrolled 8-lane accumulation, so one panel
// (K x 8 doubles) stays cache-resident while the A rows stream past
// and the output row accumulates in registers instead of memory.
// Per-element term order is exactly the scalar kernels' ascending-k
// order, which is what keeps pooled-path scores byte-identical to the
// allocating path.
//
// The panel kernel is the DENSE fast path — activations through
// y = x·Wᵀ layers. For sparse A (im2col voxel patches) the scalar
// zero-skip kernel MatMulAcc wins instead: it pays one data-dependent
// branch per A value and skips a whole output row of work, where the
// panel sweep would pay one branch per (value, panel) pair — measured
// 2-4x slower at realistic voxel sparsity. Call sites choose by
// operand character, not size.

// packPanel is the panel width: 8 float64 columns, one 64-byte cache
// line per accumulation row.
const packPanel = 8

// PackedB is a K x N matrix repacked into column panels for
// MatMulAccPacked / MatMulPackedInto. Panel j holds columns
// [j*packPanel, (j+1)*packPanel) stored k-major (row p of the panel is
// contiguous); the last panel is zero-padded. A PackedB is built once
// per (weights, shape) — typically cached in an inference workspace —
// and read concurrently by any number of multiplies.
type PackedB struct {
	K, N int
	data []float64
}

func (pb *PackedB) init(k, n int) {
	pb.K, pb.N = k, n
	need := (n + packPanel - 1) / packPanel * packPanel * k
	if cap(pb.data) < need {
		pb.data = make([]float64, need)
	} else {
		pb.data = pb.data[:need]
	}
}

// Pack fills pb from the row-major K x N matrix b, reusing pb's buffer
// when it is large enough.
func (pb *PackedB) Pack(b *Tensor) {
	if b.Rank() != 2 {
		panic("tensor: PackedB.Pack requires a rank-2 tensor")
	}
	k, n := b.Shape[0], b.Shape[1]
	pb.init(k, n)
	for j0 := 0; j0 < n; j0 += packPanel {
		panel := pb.data[j0/packPanel*k*packPanel:]
		w := n - j0
		if w > packPanel {
			w = packPanel
		}
		for p := 0; p < k; p++ {
			src := b.Data[p*n+j0 : p*n+j0+w]
			dst := panel[p*packPanel : p*packPanel+packPanel]
			copy(dst, src)
			for t := w; t < packPanel; t++ {
				dst[t] = 0
			}
		}
	}
}

// PackTransposed fills pb with the transpose of the row-major n x k
// matrix held in data (higher-rank weights collapse to [n, k] row
// major, e.g. conv kernels [Out, In*K^3]). The result is the packed
// form of the k x n matrix dataᵀ, built without materializing the
// transpose — the packed counterpart of Transpose(w) and the B operand
// of every y = x·Wᵀ layer.
func (pb *PackedB) PackTransposed(data []float64, n, k int) {
	if len(data) != n*k {
		panic(fmt.Sprintf("tensor: PackTransposed needs %d elements, got %d", n*k, len(data)))
	}
	pb.init(k, n)
	for j0 := 0; j0 < n; j0 += packPanel {
		panel := pb.data[j0/packPanel*k*packPanel:]
		w := n - j0
		if w > packPanel {
			w = packPanel
		}
		for p := 0; p < k; p++ {
			dst := panel[p*packPanel : p*packPanel+packPanel]
			for t := 0; t < w; t++ {
				dst[t] = data[(j0+t)*k+p]
			}
			for t := w; t < packPanel; t++ {
				dst[t] = 0
			}
		}
	}
}

// MatMulAccPacked computes c += a x B for the packed B, preserving
// MatMulAcc's semantics exactly: ascending-k accumulation per output
// element with zero entries of A skipped. The caller owns parallelism
// (disjoint row blocks of c may be filled concurrently via
// matMulPackedRows through MatMul; this entry point is serial).
func MatMulAccPacked(c, a *Tensor, pb *PackedB) {
	checkPackedShapes("MatMulAccPacked", c, a, pb)
	matMulPackedRows(c, a, pb, 0, a.Shape[0], true, true)
}

// MatMulPackedInto computes c = a x B for the packed B, fully
// overwriting c without reading it. No zero-skip is applied, so when
// pb holds Wᵀ (PackTransposed) the result is bitwise MatMulTransB(a, w)
// — the dense-layer forward product.
func MatMulPackedInto(c, a *Tensor, pb *PackedB) {
	checkPackedShapes("MatMulPackedInto", c, a, pb)
	matMulPackedRows(c, a, pb, 0, a.Shape[0], false, false)
}

func checkPackedShapes(op string, c, a *Tensor, pb *PackedB) {
	if a.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: " + op + " requires rank-2 tensors")
	}
	if a.Shape[1] != pb.K || c.Shape[0] != a.Shape[0] || c.Shape[1] != pb.N {
		panic(fmt.Sprintf("tensor: %s shapes %v x [%d %d] -> %v", op, a.Shape, pb.K, pb.N, c.Shape))
	}
}

// matMulPackedRows runs the panel kernel over output rows [lo, hi).
// acc selects += (reading c) vs = (overwriting); skip selects the
// sparse zero-skip of the accumulating kernels.
func matMulPackedRows(c, a *Tensor, pb *PackedB, lo, hi int, acc, skip bool) {
	k, n := pb.K, pb.N
	full := n / packPanel * packPanel
	for j0 := 0; j0 < full; j0 += packPanel {
		panel := pb.data[j0/packPanel*k*packPanel : (j0/packPanel+1)*k*packPanel]
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n+j0 : i*n+j0+packPanel : i*n+j0+packPanel]
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			if acc {
				s0, s1, s2, s3 = ci[0], ci[1], ci[2], ci[3]
				s4, s5, s6, s7 = ci[4], ci[5], ci[6], ci[7]
			}
			for p, av := range ai {
				if skip && av == 0 {
					continue
				}
				r := panel[p*packPanel : p*packPanel+packPanel]
				s0 += av * r[0]
				s1 += av * r[1]
				s2 += av * r[2]
				s3 += av * r[3]
				s4 += av * r[4]
				s5 += av * r[5]
				s6 += av * r[6]
				s7 += av * r[7]
			}
			ci[0], ci[1], ci[2], ci[3] = s0, s1, s2, s3
			ci[4], ci[5], ci[6], ci[7] = s4, s5, s6, s7
		}
	}
	if full == n {
		return
	}
	// Tail panel: fewer than packPanel live columns. A 4-lane block
	// covers the common half-panel widths (e.g. graph stages of width
	// 12); the rest runs scalar per lane. Per-element order is still
	// ascending k.
	panel := pb.data[full/packPanel*k*packPanel:]
	t0 := 0
	if n-full >= 4 {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n+full : i*n+full+4 : i*n+full+4]
			var s0, s1, s2, s3 float64
			if acc {
				s0, s1, s2, s3 = ci[0], ci[1], ci[2], ci[3]
			}
			for p, av := range ai {
				if skip && av == 0 {
					continue
				}
				r := panel[p*packPanel : p*packPanel+4]
				s0 += av * r[0]
				s1 += av * r[1]
				s2 += av * r[2]
				s3 += av * r[3]
			}
			ci[0], ci[1], ci[2], ci[3] = s0, s1, s2, s3
		}
		t0 = 4
	}
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		for t := t0; t < n-full; t++ {
			var s float64
			if acc {
				s = c.Data[i*n+full+t]
			}
			for p, av := range ai {
				if skip && av == 0 {
					continue
				}
				s += av * panel[p*packPanel+t]
			}
			c.Data[i*n+full+t] = s
		}
	}
}
