// Package tensor provides a minimal n-dimensional dense tensor of
// float64 values together with the linear-algebra kernels the neural
// network layers in this repository are built on.
//
// The package is deliberately small: row-major contiguous storage, a
// handful of element-wise operations, matrix multiplication, and a
// parallel-for helper used by the compute-heavy kernels. It plays the
// role PyTorch's ATen plays for the original FAST/Deep Fusion code.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major n-dimensional array of float64.
// The zero value is an empty tensor with no shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative. The variadic shape is
// defensively copied (callers may pass a retained slice via New(s...));
// code that already owns a fresh shape slice — the Arena pool, Clone —
// uses NewFromShape to skip the copy.
func New(shape ...int) *Tensor {
	return NewFromShape(append([]int(nil), shape...))
}

// NewFromShape is the single-shot constructor behind New and the Arena
// pool: it takes ownership of shape (no defensive copy), so building a
// tensor costs exactly one data allocation plus the header. The caller
// must not retain or mutate shape afterwards.
func NewFromShape(shape []int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: shape, Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape.
//
// Aliasing contract: the slice is used directly, never copied — the
// tensor and the caller share one buffer, writes through either are
// visible to both, and the caller must keep the slice alive and
// unrestructured for the life of the tensor. This is what lets kernels
// carve sub-tile views out of preallocated scratch without allocating.
// It panics if the length does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v requires %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape covering the same data.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0. Unlike Fill(0) — whose store loop the
// compiler cannot specialize because the value is a parameter — clear
// lowers to a vectorized memclr, so zeroing runs at memory bandwidth.
func (t *Tensor) Zero() { clear(t.Data) }

// AddInPlace adds o element-wise into t. Shapes must match in length.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddInPlace length mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY computes t += a*o element-wise.
func (t *Tensor) AXPY(a float64, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AXPY length mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Add length mismatch")
	}
	r := New(t.Shape...)
	for i := range t.Data {
		r.Data[i] = t.Data[i] + o.Data[i]
	}
	return r
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Sub length mismatch")
	}
	r := New(t.Shape...)
	for i := range t.Data {
		r.Data[i] = t.Data[i] - o.Data[i]
	}
	return r
}

// Mul returns the element-wise (Hadamard) product of t and o.
func Mul(t, o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Mul length mismatch")
	}
	r := New(t.Shape...)
	for i := range t.Data {
		r.Data[i] = t.Data[i] * o.Data[i]
	}
	return r
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Map returns a new tensor whose elements are f applied to t's.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	r := New(t.Shape...)
	for i, v := range t.Data {
		r.Data[i] = f(v)
	}
	return r
}

// Row returns a view of row i of a rank-2 tensor as a slice.
func (t *Tensor) Row(i int) []float64 {
	if len(t.Shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// String implements fmt.Stringer with a compact summary.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v n=%d", t.Shape, len(t.Data))
}
