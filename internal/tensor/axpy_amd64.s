// 4-wide SSE f32 AXPY: dst[i] += v * w[i]. See axpy_amd64.go for the
// bit-identity argument (independent lanes, one MULPS + one ADDPS
// rounding per element — the same two roundings as the scalar loop).
// SSE MOVUPS/MULPS/ADDPS are baseline amd64; buffers need no
// alignment.

#include "textflag.h"

// func Axpy32(dst, w []float32, v float32)
TEXT ·Axpy32(SB), NOSPLIT, $0-52
	MOVQ	dst_base+0(FP), DI
	MOVQ	dst_len+8(FP), CX
	MOVQ	w_base+24(FP), SI
	MOVSS	v+48(FP), X0
	SHUFPS	$0x00, X0, X0
	XORQ	AX, AX
	MOVQ	CX, DX
	ANDQ	$-8, DX
	JZ	tail
blk8:
	MOVUPS	(SI)(AX*4), X1
	MOVUPS	16(SI)(AX*4), X2
	MULPS	X0, X1
	MULPS	X0, X2
	MOVUPS	(DI)(AX*4), X3
	MOVUPS	16(DI)(AX*4), X4
	ADDPS	X1, X3
	ADDPS	X2, X4
	MOVUPS	X3, (DI)(AX*4)
	MOVUPS	X4, 16(DI)(AX*4)
	ADDQ	$8, AX
	CMPQ	AX, DX
	JL	blk8
tail:
	CMPQ	AX, CX
	JGE	done
tail1:
	MOVSS	(SI)(AX*4), X1
	MULSS	X0, X1
	MOVSS	(DI)(AX*4), X2
	ADDSS	X1, X2
	MOVSS	X2, (DI)(AX*4)
	INCQ	AX
	CMPQ	AX, CX
	JL	tail1
done:
	RET

// func packedAccSkip32(ci, ai, panel []float32)
// ci[0:8] += sum over p of ai[p]*panel[p*8:p*8+8], zero ai skipped.
// The UCOMISS/JP/JE pair skips only true zeros: a NaN multiplier sets
// PF and falls through to the multiply, matching the Go loop's
// av == 0 test.
TEXT ·packedAccSkip32(SB), NOSPLIT, $0-72
	MOVQ	ci_base+0(FP), DI
	MOVQ	ai_base+24(FP), SI
	MOVQ	ai_len+32(FP), CX
	MOVQ	panel_base+48(FP), BX
	MOVUPS	(DI), X0
	MOVUPS	16(DI), X1
	XORPS	X7, X7
	TESTQ	CX, CX
	JZ	accdone
accloop:
	MOVSS	(SI), X2
	UCOMISS	X7, X2
	JP	accwork
	JE	accnext
accwork:
	SHUFPS	$0x00, X2, X2
	MOVUPS	(BX), X3
	MOVUPS	16(BX), X4
	MULPS	X2, X3
	MULPS	X2, X4
	ADDPS	X3, X0
	ADDPS	X4, X1
accnext:
	ADDQ	$4, SI
	ADDQ	$32, BX
	DECQ	CX
	JNZ	accloop
accdone:
	MOVUPS	X0, (DI)
	MOVUPS	X1, 16(DI)
	RET

// func packedInto32(ci, ai, panel []float32)
// ci[0:8] = sum over p of ai[p]*panel[p*8:p*8+8], dense (no skip).
TEXT ·packedInto32(SB), NOSPLIT, $0-72
	MOVQ	ci_base+0(FP), DI
	MOVQ	ai_base+24(FP), SI
	MOVQ	ai_len+32(FP), CX
	MOVQ	panel_base+48(FP), BX
	XORPS	X0, X0
	XORPS	X1, X1
	TESTQ	CX, CX
	JZ	intodone
intoloop:
	MOVSS	(SI), X2
	SHUFPS	$0x00, X2, X2
	MOVUPS	(BX), X3
	MOVUPS	16(BX), X4
	MULPS	X2, X3
	MULPS	X2, X4
	ADDPS	X3, X0
	ADDPS	X4, X1
	ADDQ	$4, SI
	ADDQ	$32, BX
	DECQ	CX
	JNZ	intoloop
intodone:
	MOVUPS	X0, (DI)
	MOVUPS	X1, 16(DI)
	RET
