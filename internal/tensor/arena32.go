package tensor

// Arena32 is the float32 counterpart of Arena: a size-classed pool of
// F32 tensors recycled between inference batches, with pooled view
// headers so reshapes of pooled data stay off the heap. The f32
// inference workspace owns one per rank alongside the f64 arena; the
// same warm-loop zero-allocation contract applies (tensors are valid
// until the next Reset, no concurrent use).
type Arena32 struct {
	free  [65][]*F32 // by ceil-log2 of element count
	used  []*F32
	vfree []*F32 // pooled view headers (no owned data)
	vused []*F32
}

// NewArena32 returns an empty arena.
func NewArena32() *Arena32 { return &Arena32{} }

// GetUninit returns an F32 of the given shape whose contents are
// arbitrary (possibly stale data from a previous cycle). Use it for
// outputs every element of which is overwritten; use Get when the
// kernel accumulates into the buffer.
func (a *Arena32) GetUninit(shape ...int) *F32 {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: Arena32.Get negative dimension")
		}
		n *= d
	}
	cls := sizeClass(n)
	var t *F32
	if l := a.free[cls]; len(l) > 0 {
		t = l[len(l)-1]
		a.free[cls] = l[:len(l)-1]
		t.Data = t.Data[:n]
		t.Shape = append(t.Shape[:0], shape...)
	} else {
		// Fresh buffers are allocated at full class capacity so any
		// later request of the class reuses them.
		data := make([]float32, 1<<cls)
		t = &F32{Shape: append([]int(nil), shape...), Data: data[:n]}
	}
	a.used = append(a.used, t)
	return t
}

// Get returns a zero-filled F32 of the given shape, recycled from the
// pool when possible.
func (a *Arena32) Get(shape ...int) *F32 {
	t := a.GetUninit(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// View returns a pooled F32 header over data with the given shape (no
// copy, no owned buffer). Like Get results, the header is valid until
// Reset.
func (a *Arena32) View(data []float32, shape ...int) *F32 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic("tensor: Arena32.View shape/data length mismatch")
	}
	var t *F32
	if l := a.vfree; len(l) > 0 {
		t = l[len(l)-1]
		a.vfree = l[:len(l)-1]
		t.Shape = append(t.Shape[:0], shape...)
	} else {
		t = &F32{Shape: append([]int(nil), shape...)}
	}
	t.Data = data
	a.vused = append(a.vused, t)
	return t
}

// Put returns t — which must have come from Get/GetUninit on this
// arena — to its free list before the end of the cycle.
func (a *Arena32) Put(t *F32) {
	for i := len(a.used) - 1; i >= 0; i-- {
		if a.used[i] == t {
			a.used[i] = a.used[len(a.used)-1]
			a.used = a.used[:len(a.used)-1]
			a.free[sizeClass(cap(t.Data))] = append(a.free[sizeClass(cap(t.Data))], t)
			return
		}
	}
	panic("tensor: Arena32.Put of a tensor not handed out this cycle")
}

// Reset recycles every tensor and view handed out since the previous
// Reset. Buffers stay owned by the arena; only the bookkeeping rewinds.
func (a *Arena32) Reset() {
	for _, t := range a.used {
		a.free[sizeClass(cap(t.Data))] = append(a.free[sizeClass(cap(t.Data))], t)
	}
	a.used = a.used[:0]
	for _, t := range a.vused {
		t.Data = nil
		a.vfree = append(a.vfree, t)
	}
	a.vused = a.vused[:0]
}
