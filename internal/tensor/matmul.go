package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul computes C = A x B for rank-2 tensors A (m x k) and B (k x n).
// Small products run the scalar i-k-j kernel; large ones pack B into
// contiguous cache-line panels once and run the unrolled panel kernel
// over GOMAXPROCS row blocks. Both paths accumulate each output element
// in ascending-k order with zero A entries skipped, so the packed
// rebuild is bitwise-identical to the historical scalar kernel.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	if m*n*k < 32*1024 {
		matMulAccRows(c, a, b, 0, m)
		return c
	}
	var pb PackedB
	pb.Pack(b)
	ParallelFor(m, func(lo, hi int) { matMulPackedRows(c, a, &pb, lo, hi, true, true) })
	return c
}

// matMulAccRows is the scalar C += A x B kernel over output rows
// [lo, hi): i-k-j order so B streams row-wise, with zero A entries
// skipped (the sparse-voxel fast path). Shared by MatMul's small-size
// path and MatMulAcc.
func matMulAccRows(c, a, b *Tensor, lo, hi int) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		ci := c.Data[i*n : (i+1)*n]
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = A^T x B where A is (k x m) and B is (k x n),
// producing an (m x n) tensor. Used for weight-gradient accumulation.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A x B^T where A is (m x k) and B is (n x k),
// producing an (m x n) tensor. Used for input-gradient propagation.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// ParallelFor splits [0, n) into contiguous blocks and runs body(lo, hi)
// on each block concurrently, one block per available CPU. body must be
// safe to run concurrently on disjoint ranges. ParallelFor returns when
// every block has completed.
func ParallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
