package tensor

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, m, n int, sparsity float64) *Tensor {
	t := New(m, n)
	for i := range t.Data {
		if rng.Float64() >= sparsity {
			t.Data[i] = rng.NormFloat64()
		}
	}
	return t
}

// TestPackedKernelsMatchScalar pins the packed GEMM family bitwise to
// the scalar kernels across shapes that exercise full panels, tail
// panels and sparse A — the invariant the zero-allocation inference
// path's byte-identical-scores guarantee is built on.
func TestPackedKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 8}, {4, 7, 16}, {5, 9, 3}, {8, 16, 11},
		{2, 400, 13}, {17, 31, 64}, {6, 8, 9},
	}
	for _, sh := range shapes {
		for _, sparsity := range []float64{0, 0.7} {
			a := randMat(rng, sh.m, sh.k, sparsity)
			b := randMat(rng, sh.k, sh.n, 0)

			// MatMulAccPacked vs MatMulAcc, accumulating on a non-zero C.
			seed := randMat(rng, sh.m, sh.n, 0)
			want := seed.Clone()
			MatMulAcc(want, a, b)
			got := seed.Clone()
			var pb PackedB
			pb.Pack(b)
			MatMulAccPacked(got, a, &pb)
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("MatMulAccPacked %dx%dx%d elem %d: %v != %v", sh.m, sh.k, sh.n, i, got.Data[i], want.Data[i])
				}
			}

			// MatMulPackedInto(a, packed wᵀ) vs MatMulTransB(a, w).
			w := randMat(rng, sh.n, sh.k, 0)
			wantT := MatMulTransB(a, w)
			gotT := New(sh.m, sh.n)
			gotT.Fill(42) // must be fully overwritten
			var pt PackedB
			pt.PackTransposed(w.Data, sh.n, sh.k)
			MatMulPackedInto(gotT, a, &pt)
			for i := range wantT.Data {
				if wantT.Data[i] != gotT.Data[i] {
					t.Fatalf("MatMulPackedInto %dx%dx%d elem %d: %v != %v", sh.m, sh.k, sh.n, i, gotT.Data[i], wantT.Data[i])
				}
			}

			// Rebuilt MatMul (packs internally above the size threshold)
			// vs the scalar reference.
			ref := New(sh.m, sh.n)
			matMulAccRows(ref, a, b, 0, sh.m)
			mm := MatMul(a, b)
			for i := range ref.Data {
				if ref.Data[i] != mm.Data[i] {
					t.Fatalf("MatMul %dx%dx%d elem %d: %v != %v", sh.m, sh.k, sh.n, i, mm.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestPackReuse pins that re-packing different shapes into one PackedB
// reuses its buffer and produces correct panels each time.
func TestPackReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var pb PackedB
	for _, sh := range []struct{ k, n int }{{40, 24}, {8, 3}, {12, 17}} {
		a := randMat(rng, 5, sh.k, 0.5)
		b := randMat(rng, sh.k, sh.n, 0)
		pb.Pack(b)
		want := New(5, sh.n)
		MatMulAcc(want, a, b)
		got := New(5, sh.n)
		MatMulAccPacked(got, a, &pb)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("repack %v: elem %d differs", sh, i)
			}
		}
	}
}

// TestArenaRecycles exercises the pool contract: same-class requests
// after Reset reuse buffers, Get zeroes, GetUninit may not, views
// alias their data.
func TestArenaRecycles(t *testing.T) {
	a := NewArena()
	t1 := a.Get(4, 8)
	t1.Fill(3)
	buf := &t1.Data[0]
	a.Reset()
	t2 := a.GetUninit(32)
	if &t2.Data[0] != buf {
		t.Fatalf("same-class request after Reset did not recycle the buffer")
	}
	if t2.Rank() != 1 || t2.Dim(0) != 32 {
		t.Fatalf("recycled tensor has shape %v", t2.Shape)
	}
	t3 := a.Get(4, 8) // fresh buffer, must be zero
	for _, v := range t3.Data {
		if v != 0 {
			t.Fatalf("Get returned non-zero data")
		}
	}
	// Smaller request of the same class reuses capacity.
	a.Reset()
	t4 := a.Get(3, 7)
	if len(t4.Data) != 21 {
		t.Fatalf("len %d", len(t4.Data))
	}
	v := a.View(t4.Data, 21)
	v.Data[0] = 9
	if t4.Data[0] != 9 {
		t.Fatalf("view does not alias its data")
	}
}

// TestArenaPut pins early recycling within one cycle.
func TestArenaPut(t *testing.T) {
	a := NewArena()
	t1 := a.GetUninit(100)
	p1 := &t1.Data[0]
	a.Put(t1)
	t2 := a.GetUninit(100)
	if &t2.Data[0] != p1 {
		t.Fatalf("Put did not make the buffer immediately reusable")
	}
	a.Reset()
	if got := len(a.used); got != 0 {
		t.Fatalf("%d used tensors after Reset", got)
	}
}

// TestArenaZeroAllocSteadyState is the kernel-level allocation pin:
// a warm Get/View/Reset cycle performs zero heap allocations.
func TestArenaZeroAllocSteadyState(t *testing.T) {
	a := NewArena()
	cycle := func() {
		x := a.Get(16, 16)
		y := a.GetUninit(16, 16)
		_ = a.View(x.Data, 256)
		copy(y.Data, x.Data)
		a.Reset()
	}
	for i := 0; i < 3; i++ {
		cycle() // warm the free lists
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("warm arena cycle allocates %.1f times per run, want 0", avg)
	}
}

// TestNewFromShapeOwnership documents the single-shot constructor's
// ownership contract.
func TestNewFromShapeOwnership(t *testing.T) {
	shape := []int{2, 3}
	tt := NewFromShape(shape)
	if &tt.Shape[0] != &shape[0] {
		t.Fatalf("NewFromShape copied the shape it was given ownership of")
	}
	if tt.Len() != 6 {
		t.Fatalf("len %d", tt.Len())
	}
}
