package tensor

import "math/bits"

// This file holds the steady-state memory machinery of the inference
// engine: a size-classed tensor pool (Arena) that makes warm scoring
// loops allocation-free, and pooled view headers so reshapes of pooled
// data do not touch the heap either. The screening engine gives every
// simulated MPI rank one arena; after the first batch warms the free
// lists, each subsequent batch recycles the previous batch's buffers
// instead of allocating (and GC-scanning) fresh ones.

// Arena is a pool of tensors recycled between inference batches.
//
// Get/GetUninit hand out tensors whose backing buffers come from
// per-size-class free lists (capacity rounded up to the next power of
// two, so variable batch geometry — e.g. disjoint-union graph node
// counts — still reuses buffers). Reset recycles every tensor handed
// out since the previous Reset in O(handed out); after the free lists
// are warm, a Get/Reset cycle performs zero heap allocations.
//
// Tensors obtained from an arena are valid only until the next Reset;
// callers must copy anything that outlives the cycle. An Arena is not
// safe for concurrent use — the screening engine owns one per rank.
type Arena struct {
	free  [65][]*Tensor // by ceil-log2 of element count
	used  []*Tensor
	vfree []*Tensor // pooled view headers (no owned data)
	vused []*Tensor
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// sizeClass returns the free-list index for n elements: the smallest c
// with 1<<c >= n. Buffers are allocated at full class capacity so any
// request of the same class reuses them.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetUninit returns a tensor of the given shape whose contents are
// arbitrary (possibly stale data from a previous cycle). Use it for
// outputs every element of which is overwritten; use Get when the
// kernel accumulates into the buffer.
func (a *Arena) GetUninit(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: Arena.Get negative dimension")
		}
		n *= d
	}
	cls := sizeClass(n)
	var t *Tensor
	if l := a.free[cls]; len(l) > 0 {
		t = l[len(l)-1]
		a.free[cls] = l[:len(l)-1]
		t.Data = t.Data[:n]
		t.Shape = append(t.Shape[:0], shape...)
	} else {
		// Fresh buffers are allocated at full class capacity so any
		// later request of the class reuses them.
		data := make([]float64, 1<<cls)
		t = &Tensor{Shape: append([]int(nil), shape...), Data: data[:n]}
	}
	a.used = append(a.used, t)
	return t
}

// Get returns a zero-filled tensor of the given shape, recycled from
// the pool when possible.
func (a *Arena) Get(shape ...int) *Tensor {
	t := a.GetUninit(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// View returns a pooled tensor header over data with the given shape
// (no copy, no owned buffer). Like Get results, the header is valid
// until Reset. It is the arena counterpart of Reshape for pooled data.
func (a *Arena) View(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic("tensor: Arena.View shape/data length mismatch")
	}
	var t *Tensor
	if l := a.vfree; len(l) > 0 {
		t = l[len(l)-1]
		a.vfree = l[:len(l)-1]
		t.Shape = append(t.Shape[:0], shape...)
	} else {
		t = &Tensor{Shape: append([]int(nil), shape...)}
	}
	t.Data = data
	a.vused = append(a.vused, t)
	return t
}

// Put returns t — which must have come from Get/GetUninit on this
// arena — to its free list before the end of the cycle, so tight loops
// over many same-shaped tiles run at O(1) live scratch. Using t after
// Put is a logic error.
func (a *Arena) Put(t *Tensor) {
	for i := len(a.used) - 1; i >= 0; i-- {
		if a.used[i] == t {
			a.used[i] = a.used[len(a.used)-1]
			a.used = a.used[:len(a.used)-1]
			a.free[sizeClass(cap(t.Data))] = append(a.free[sizeClass(cap(t.Data))], t)
			return
		}
	}
	panic("tensor: Arena.Put of a tensor not handed out this cycle")
}

// Reset recycles every tensor and view handed out since the previous
// Reset. Buffers stay owned by the arena; only the bookkeeping rewinds.
func (a *Arena) Reset() {
	for _, t := range a.used {
		a.free[sizeClass(cap(t.Data))] = append(a.free[sizeClass(cap(t.Data))], t)
	}
	a.used = a.used[:0]
	for _, t := range a.vused {
		t.Data = nil
		a.vfree = append(a.vfree, t)
	}
	a.vused = a.vused[:0]
}
