package tensor

// Axpy32 computes dst[i] += v * w[i] for every element of dst; w must
// be at least as long as dst. It is the lane-parallel inner kernel of
// the f32 fast path (zero-skip GEMM rows, scatter-convolution channel
// accumulation): each lane is an independent accumulator, so the
// 4-wide SSE implementation performs exactly one multiply rounding
// and one add rounding per element in the same order as the scalar
// loop — results are bit-identical, only the instruction width
// changes. SSE is baseline on amd64 (GOAMD64=v1), so no feature
// detection is needed. The f64 reference deliberately keeps the
// pure-Go scalar loops: its accumulation is pinned bitwise by the
// golden tests, and twice-as-many-lanes-per-register is precisely the
// half-width advantage this kernel exists to collect.
//
//go:noescape
func Axpy32(dst, w []float32, v float32)

// packedAccSkip32 accumulates one output row of a full 8-column panel:
// ci[0:8] += ai[p] * panel[p*8 : p*8+8] for ascending p, skipping
// zero ai entries — the (acc, skip) inner loop of matMulPacked32Rows
// with the 8 accumulators held in two vector registers across the
// whole k sweep. Zero-skip tests NaN-correctly (a NaN multiplier is
// processed, matching the scalar loop's av == 0 comparison). ci must
// hold exactly 8 lanes, panel len(ai)*8.
//
//go:noescape
func packedAccSkip32(ci, ai, panel []float32)

// packedInto32 overwrites one output row of a full 8-column panel:
// ci[0:8] = sum over p of ai[p] * panel[p*8 : p*8+8], ascending p, no
// zero-skip — the (overwrite, dense) inner loop of MatMulPacked32Into.
//
//go:noescape
func packedInto32(ci, ai, panel []float32)
