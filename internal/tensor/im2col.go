package tensor

import "fmt"

// This file holds the lowering kernels that turn 3D convolution into
// matrix multiplication (im2col / col2im) plus the accumulating GEMM
// they feed. Lowered convolution is the batched-inference fast path:
// one position-major patch matrix per sample tile, multiplied against
// the transposed kernel matrix, with the GEMM's zero-skip exploiting
// the natural sparsity of voxelized complexes (most grid cells hold
// no atom density).

// Im2Col3D fills cols with the patch matrix for output positions
// [posLo, posHi) of sample b of x, which must be a rank-5 tensor
// [B, C, D, H, W]. Convolution geometry is the repository's Conv3D
// contract: cubic kernel k, stride 1, same zero padding (pad = k/2).
//
// cols must be shaped [posHi-posLo, C*k*k*k]; row r holds the
// flattened (c, kd, kh, kw) patch for output position posLo+r, where
// positions enumerate (zd, zh, zw) in row-major order. Out-of-bounds
// patch entries are zero.
//
// Every element of cols is written exactly once — in-bounds runs as
// contiguous copies from the input rows, clipped edges as explicit
// zeros — so no separate whole-tile clear pass is needed. That halves
// the kernel's write traffic versus zero-fill-then-scatter, which is
// what makes the tile convolution bandwidth-bound rather than
// store-bound (and is where the f32 twin's narrower elements pay).
func Im2Col3D(x *Tensor, b, k, posLo, posHi int, cols *Tensor) {
	if x.Rank() != 5 {
		panic("tensor: Im2Col3D requires a rank-5 input")
	}
	c, d, h, w := x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	ck3 := c * k * k * k
	rows := posHi - posLo
	if cols.Rank() != 2 || cols.Dim(0) != rows || cols.Dim(1) != ck3 {
		panic(fmt.Sprintf("tensor: Im2Col3D cols shape %v, want [%d %d]", cols.Shape, rows, ck3))
	}
	pad := k / 2
	for pos := posLo; pos < posHi; pos++ {
		zd, rem := pos/(h*w), pos%(h*w)
		zh, zw := rem/w, rem%w
		// kw clip range, shared by every (c, kd, kh) plane of this row.
		kwLo, kwHi := 0, k
		if lo := pad - zw; lo > 0 {
			kwLo = lo
		}
		if hi := w + pad - zw; hi < k {
			kwHi = hi
		}
		iwLo := zw - pad + kwLo
		row := cols.Data[(pos-posLo)*ck3 : (pos-posLo+1)*ck3]
		for ci := 0; ci < c; ci++ {
			for kd := 0; kd < k; kd++ {
				id := zd + kd - pad
				dst := row[((ci*k+kd)*k)*k : ((ci*k+kd)*k+k)*k]
				if id < 0 || id >= d {
					clear(dst)
					continue
				}
				xPlane := x.Data[(((b*c+ci)*d+id)*h)*w : (((b*c+ci)*d+id)*h+h)*w]
				for kh := 0; kh < k; kh++ {
					ih := zh + kh - pad
					seg := dst[kh*k : kh*k+k]
					if ih < 0 || ih >= h {
						clear(seg)
						continue
					}
					clear(seg[:kwLo])
					copy(seg[kwLo:kwHi], xPlane[ih*w+iwLo:])
					clear(seg[kwHi:])
				}
			}
		}
	}
}

// Col2Im3D scatter-adds the patch-matrix gradient dcols (shaped
// [posHi-posLo, C*k*k*k], the layout Im2Col3D produces) back into the
// input gradient dx ([B, C, D, H, W]) for sample b. It is the adjoint
// of Im2Col3D; out-of-bounds patch entries are dropped.
func Col2Im3D(dcols *Tensor, b, k, posLo, posHi int, dx *Tensor) {
	c, d, h, w := dx.Dim(1), dx.Dim(2), dx.Dim(3), dx.Dim(4)
	ck3 := c * k * k * k
	pad := k / 2
	for pos := posLo; pos < posHi; pos++ {
		zd, rem := pos/(h*w), pos%(h*w)
		zh, zw := rem/w, rem%w
		row := dcols.Data[(pos-posLo)*ck3 : (pos-posLo+1)*ck3]
		for ci := 0; ci < c; ci++ {
			for kd := 0; kd < k; kd++ {
				id := zd + kd - pad
				if id < 0 || id >= d {
					continue
				}
				for kh := 0; kh < k; kh++ {
					ih := zh + kh - pad
					if ih < 0 || ih >= h {
						continue
					}
					dxRow := dx.Data[((((b*c+ci)*d+id)*h + ih) * w):((((b*c+ci)*d+id)*h+ih)*w + w)]
					src := row[((ci*k+kd)*k+kh)*k : ((ci*k+kd)*k+kh)*k+k]
					for kw := 0; kw < k; kw++ {
						if iw := zw + kw - pad; iw >= 0 && iw < w {
							dxRow[iw] += src[kw]
						}
					}
				}
			}
		}
	}
}

// MatMulAcc computes C += A x B into the preallocated tensor c for
// rank-2 tensors a (m x p) and b (p x n). Like MatMul it streams B
// row-wise and skips zero A entries, which is what makes the lowered
// convolution cheap on sparse voxel patches. The caller owns
// parallelism (no internal goroutines), so disjoint destination
// tensors can be filled concurrently. Steady-state loops that reuse
// one B across many calls should pack it once and use MatMulAccPacked
// instead (identical results, cache-blocked).
func MatMulAcc(c, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMulAcc requires rank-2 tensors")
	}
	m, p := a.Shape[0], a.Shape[1]
	p2, n := b.Shape[0], b.Shape[1]
	if p != p2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc shapes %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	matMulAccRows(c, a, b, 0, m)
}

// Transpose returns aᵀ for a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	t := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			t.Data[j*m+i] = v
		}
	}
	return t
}
