package tensor

import "fmt"

// This file is the float32 twin of pack.go: the same cache-blocked
// panel GEMM with the same packPanel=8 blocking and the same 8-lane
// register accumulation, over float32 operands. Halving the element
// width halves the memory traffic of every panel sweep — a K x 8
// panel is 32 bytes per accumulation row instead of 64 — which is the
// point of the f32 inference fast path. Per-element term order is the
// same ascending-k order as the f64 kernels; only the arithmetic width
// differs, so f32 results track the f64 reference to rounding error
// rather than diverging algorithmically.
//
// Weights enter this path exactly once per inference workspace:
// PackTransposed64 converts the float64 training weights to float32
// while packing, so the conversion point is the pack and nothing
// upstream ever holds an f32 weight copy.

// PackedB32 is a K x N float32 matrix repacked into column panels for
// MatMulAccPacked32 / MatMulPacked32Into. Layout is identical to
// PackedB: panel j holds columns [j*packPanel, (j+1)*packPanel)
// stored k-major, last panel zero-padded. Built once, read
// concurrently.
type PackedB32 struct {
	K, N int
	data []float32
}

func (pb *PackedB32) init(k, n int) {
	pb.K, pb.N = k, n
	need := (n + packPanel - 1) / packPanel * packPanel * k
	if cap(pb.data) < need {
		pb.data = make([]float32, need)
	} else {
		pb.data = pb.data[:need]
	}
}

// Pack fills pb from the row-major K x N float32 matrix b, reusing
// pb's buffer when it is large enough.
func (pb *PackedB32) Pack(b *F32) {
	if b.Rank() != 2 {
		panic("tensor: PackedB32.Pack requires a rank-2 tensor")
	}
	k, n := b.Shape[0], b.Shape[1]
	pb.init(k, n)
	for j0 := 0; j0 < n; j0 += packPanel {
		panel := pb.data[j0/packPanel*k*packPanel:]
		w := n - j0
		if w > packPanel {
			w = packPanel
		}
		for p := 0; p < k; p++ {
			src := b.Data[p*n+j0 : p*n+j0+w]
			dst := panel[p*packPanel : p*packPanel+packPanel]
			copy(dst, src)
			for t := w; t < packPanel; t++ {
				dst[t] = 0
			}
		}
	}
}

// PackTransposed64 fills pb with the float32 transpose of the
// row-major n x k float64 matrix held in data — the f64→f32 weight
// conversion point of the inference fast path. The result is the
// packed form of float32(dataᵀ), built without materializing either
// the transpose or an intermediate f32 copy.
func (pb *PackedB32) PackTransposed64(data []float64, n, k int) {
	if len(data) != n*k {
		panic(fmt.Sprintf("tensor: PackTransposed64 needs %d elements, got %d", n*k, len(data)))
	}
	pb.init(k, n)
	for j0 := 0; j0 < n; j0 += packPanel {
		panel := pb.data[j0/packPanel*k*packPanel:]
		w := n - j0
		if w > packPanel {
			w = packPanel
		}
		for p := 0; p < k; p++ {
			dst := panel[p*packPanel : p*packPanel+packPanel]
			for t := 0; t < w; t++ {
				dst[t] = float32(data[(j0+t)*k+p])
			}
			for t := w; t < packPanel; t++ {
				dst[t] = 0
			}
		}
	}
}

// MatMulAccPacked32 computes c += a x B for the packed B with zero
// entries of A skipped — the float32 mirror of MatMulAccPacked.
func MatMulAccPacked32(c, a *F32, pb *PackedB32) {
	checkPackedShapes32("MatMulAccPacked32", c, a, pb)
	matMulPacked32Rows(c, a, pb, 0, a.Shape[0], true, true)
}

// MatMulPacked32Into computes c = a x B for the packed B, fully
// overwriting c without reading it — the dense-layer forward product
// of the f32 path when pb holds Wᵀ (PackTransposed64).
func MatMulPacked32Into(c, a *F32, pb *PackedB32) {
	checkPackedShapes32("MatMulPacked32Into", c, a, pb)
	matMulPacked32Rows(c, a, pb, 0, a.Shape[0], false, false)
}

func checkPackedShapes32(op string, c, a *F32, pb *PackedB32) {
	if a.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: " + op + " requires rank-2 tensors")
	}
	if a.Shape[1] != pb.K || c.Shape[0] != a.Shape[0] || c.Shape[1] != pb.N {
		panic(fmt.Sprintf("tensor: %s shapes %v x [%d %d] -> %v", op, a.Shape, pb.K, pb.N, c.Shape))
	}
}

// matMulPacked32Rows runs the panel kernel over output rows [lo, hi),
// structurally identical to matMulPackedRows: 8 register lanes per
// full panel (the SSE kernels in axpy_amd64.s — two vector registers
// swept down the whole panel), a 4-lane block then scalar lanes for
// the ragged tail, ascending-k per-element order, optional zero-skip.
// Only the two combinations the exported entry points use exist:
// (acc, skip) for MatMulAccPacked32 and (overwrite, dense) for
// MatMulPacked32Into.
func matMulPacked32Rows(c, a *F32, pb *PackedB32, lo, hi int, acc, skip bool) {
	k, n := pb.K, pb.N
	full := n / packPanel * packPanel
	for j0 := 0; j0 < full; j0 += packPanel {
		panel := pb.data[j0/packPanel*k*packPanel : (j0/packPanel+1)*k*packPanel]
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n+j0 : i*n+j0+packPanel : i*n+j0+packPanel]
			if acc {
				packedAccSkip32(ci, ai, panel)
			} else {
				packedInto32(ci, ai, panel)
			}
		}
	}
	if full == n {
		return
	}
	// Tail panel: fewer than packPanel live columns, same 4-lane block
	// plus scalar lanes as the f64 kernel.
	panel := pb.data[full/packPanel*k*packPanel:]
	t0 := 0
	if n-full >= 4 {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n+full : i*n+full+4 : i*n+full+4]
			var s0, s1, s2, s3 float32
			if acc {
				s0, s1, s2, s3 = ci[0], ci[1], ci[2], ci[3]
			}
			for p, av := range ai {
				if skip && av == 0 {
					continue
				}
				r := panel[p*packPanel : p*packPanel+4]
				s0 += av * r[0]
				s1 += av * r[1]
				s2 += av * r[2]
				s3 += av * r[3]
			}
			ci[0], ci[1], ci[2], ci[3] = s0, s1, s2, s3
		}
		t0 = 4
	}
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		for t := t0; t < n-full; t++ {
			var s float32
			if acc {
				s = c.Data[i*n+full+t]
			}
			for p, av := range ai {
				if skip && av == 0 {
					continue
				}
				s += av * panel[p*packPanel+t]
			}
			c.Data[i*n+full+t] = s
		}
	}
}
