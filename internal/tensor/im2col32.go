package tensor

import "fmt"

// Float32 twins of the im2col lowering kernels (inference only — the
// adjoint Col2Im3D stays f64 with the training path). Geometry and
// loop structure match im2col.go exactly; only the element width
// changes, so the f32 tile path selects the same algorithm and visits
// the same positions as the f64 reference.

// Im2Col3D32 fills cols with the patch matrix for output positions
// [posLo, posHi) of sample b of x ([B, C, D, H, W] float32), under the
// repository's Conv3D contract (cubic kernel k, stride 1, same zero
// padding). See Im2Col3D for the layout and the single-pass dense
// write scheme — at four bytes per element this kernel moves half the
// reference path's bytes.
func Im2Col3D32(x *F32, b, k, posLo, posHi int, cols *F32) {
	if x.Rank() != 5 {
		panic("tensor: Im2Col3D32 requires a rank-5 input")
	}
	c, d, h, w := x.Dim(1), x.Dim(2), x.Dim(3), x.Dim(4)
	ck3 := c * k * k * k
	rows := posHi - posLo
	if cols.Rank() != 2 || cols.Dim(0) != rows || cols.Dim(1) != ck3 {
		panic(fmt.Sprintf("tensor: Im2Col3D32 cols shape %v, want [%d %d]", cols.Shape, rows, ck3))
	}
	pad := k / 2
	for pos := posLo; pos < posHi; pos++ {
		zd, rem := pos/(h*w), pos%(h*w)
		zh, zw := rem/w, rem%w
		kwLo, kwHi := 0, k
		if lo := pad - zw; lo > 0 {
			kwLo = lo
		}
		if hi := w + pad - zw; hi < k {
			kwHi = hi
		}
		iwLo := zw - pad + kwLo
		row := cols.Data[(pos-posLo)*ck3 : (pos-posLo+1)*ck3]
		for ci := 0; ci < c; ci++ {
			for kd := 0; kd < k; kd++ {
				id := zd + kd - pad
				dst := row[((ci*k+kd)*k)*k : ((ci*k+kd)*k+k)*k]
				if id < 0 || id >= d {
					clear(dst)
					continue
				}
				xPlane := x.Data[(((b*c+ci)*d+id)*h)*w : (((b*c+ci)*d+id)*h+h)*w]
				for kh := 0; kh < k; kh++ {
					ih := zh + kh - pad
					seg := dst[kh*k : kh*k+k]
					if ih < 0 || ih >= h {
						clear(seg)
						continue
					}
					clear(seg[:kwLo])
					copy(seg[kwLo:kwHi], xPlane[ih*w+iwLo:])
					clear(seg[kwHi:])
				}
			}
		}
	}
}

// MatMulAcc32 computes C += A x B for rank-2 F32 tensors, streaming B
// row-wise with zero A entries skipped — the sparse-voxel fast path of
// the f32 tile convolution, mirroring MatMulAcc.
func MatMulAcc32(c, a, b *F32) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMulAcc32 requires rank-2 tensors")
	}
	m, p := a.Shape[0], a.Shape[1]
	p2, n := b.Shape[0], b.Shape[1]
	if p != p2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc32 shapes %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	for i := 0; i < m; i++ {
		ci := c.Data[i*n : (i+1)*n]
		ai := a.Data[i*p : (i+1)*p]
		for q := 0; q < p; q++ {
			av := ai[q]
			if av == 0 {
				continue
			}
			Axpy32(ci, b.Data[q*n:(q+1)*n], av)
		}
	}
}

// Transpose64To32 returns the float32 transpose of the row-major
// n x k float64 matrix held in data — the f32 counterpart of the
// cached transposed weights behind the tile convolution's zero-skip
// GEMM, converting at the same single point as PackTransposed64.
func Transpose64To32(data []float64, n, k int) *F32 {
	if len(data) != n*k {
		panic(fmt.Sprintf("tensor: Transpose64To32 needs %d elements, got %d", n*k, len(data)))
	}
	t := NewF32(k, n)
	for i := 0; i < n; i++ {
		row := data[i*k : (i+1)*k]
		for j, v := range row {
			t.Data[j*n+i] = float32(v)
		}
	}
	return t
}
