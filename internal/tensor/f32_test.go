package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refMatMul32 is the naive float32 i-j-k reference (ascending-k
// accumulation, matching the kernels' term order).
func refMatMul32(a, b *F32, seed float32) *F32 {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := NewF32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := seed
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func randF32(rng *rand.Rand, shape ...int) *F32 {
	t := NewF32(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
		if rng.Intn(4) == 0 { // exercise the zero-skip branch
			t.Data[i] = 0
		}
	}
	return t
}

// TestMatMulPacked32RaggedTails sweeps M, N, K through values that are
// not multiples of the panel width (including the 4-lane tail block
// and the scalar lanes) and pins the packed kernel to the naive f32
// reference exactly — same term order, so bitwise equality is required.
func TestMatMulPacked32RaggedTails(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, m := range []int{1, 3, 8, 13} {
		for _, n := range []int{1, 2, 4, 5, 7, 8, 9, 12, 15, 16, 17} {
			for _, k := range []int{1, 3, 8, 11} {
				a := randF32(rng, m, k)
				b := randF32(rng, k, n)
				want := refMatMul32(a, b, 0)

				var pb PackedB32
				pb.Pack(b)
				got := NewF32(m, n)
				MatMulPacked32Into(got, a, &pb)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("MatMulPacked32Into m=%d n=%d k=%d: elem %d = %g, want %g", m, n, k, i, got.Data[i], want.Data[i])
					}
				}

				// Accumulating variant: the seed enters the running
				// accumulator first, so the reference must seed too.
				wantAcc := refMatMul32(a, b, 0.5)
				acc := NewF32(m, n)
				acc.Fill(0.5)
				MatMulAccPacked32(acc, a, &pb)
				for i := range wantAcc.Data {
					if acc.Data[i] != wantAcc.Data[i] {
						t.Fatalf("MatMulAccPacked32 m=%d n=%d k=%d: elem %d = %g, want %g", m, n, k, i, acc.Data[i], wantAcc.Data[i])
					}
				}
			}
		}
	}
}

// TestPackTransposed64MatchesPack pins the f64→f32 conversion point:
// packing float32(wᵀ) directly must equal converting-while-packing.
func TestPackTransposed64MatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, nk := range [][2]int{{1, 1}, {5, 3}, {8, 8}, {13, 7}, {16, 9}} {
		n, k := nk[0], nk[1]
		w := make([]float64, n*k)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		wt := NewF32(k, n)
		for i := 0; i < n; i++ {
			for p := 0; p < k; p++ {
				wt.Data[p*n+i] = float32(w[i*k+p])
			}
		}
		var want, got PackedB32
		want.Pack(wt)
		got.PackTransposed64(w, n, k)
		if want.K != got.K || want.N != got.N || len(want.data) != len(got.data) {
			t.Fatalf("n=%d k=%d: header mismatch", n, k)
		}
		for i := range want.data {
			if want.data[i] != got.data[i] {
				t.Fatalf("n=%d k=%d: panel elem %d = %g, want %g", n, k, i, got.data[i], want.data[i])
			}
		}
	}
}

// TestIm2Col3D32MatchesF64 runs the f32 lowering against the f64 one
// on identical (exactly representable) inputs, covering the boundary
// clipping on every face of the grid.
func TestIm2Col3D32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	b, c, d, h, w := 2, 3, 4, 5, 4
	x64 := New(b, c, d, h, w)
	x32 := NewF32(b, c, d, h, w)
	for i := range x64.Data {
		v := float64(rng.Intn(16)) / 4 // exactly representable in f32
		x64.Data[i] = v
		x32.Data[i] = float32(v)
	}
	for _, k := range []int{3, 5} {
		ck3 := c * k * k * k
		dhw := d * h * w
		for _, span := range [][2]int{{0, dhw}, {3, 17}, {dhw - 5, dhw}} {
			lo, hi := span[0], span[1]
			cols64 := New(hi-lo, ck3)
			cols32 := NewF32(hi-lo, ck3)
			Im2Col3D3264Pair(x64, x32, 1, k, lo, hi, cols64, cols32)
			for i := range cols64.Data {
				if float64(cols32.Data[i]) != cols64.Data[i] {
					t.Fatalf("k=%d span=%v: col elem %d = %g, want %g", k, span, i, cols32.Data[i], cols64.Data[i])
				}
			}
		}
	}
}

// Im2Col3D3264Pair lowers the same sample through both precisions.
func Im2Col3D3264Pair(x64 *Tensor, x32 *F32, b, k, lo, hi int, cols64 *Tensor, cols32 *F32) {
	Im2Col3D(x64, b, k, lo, hi, cols64)
	Im2Col3D32(x32, b, k, lo, hi, cols32)
}

// TestMatMulAcc32MatchesF64 pins the zero-skip accumulating GEMM to
// the f64 kernel on exactly representable inputs.
func TestMatMulAcc32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	m, p, n := 7, 11, 9
	a64, b64, c64 := New(m, p), New(p, n), New(m, n)
	a32, b32, c32 := NewF32(m, p), NewF32(p, n), NewF32(m, n)
	for i := range a64.Data {
		v := float64(rng.Intn(8)) - 3
		if rng.Intn(3) == 0 {
			v = 0
		}
		a64.Data[i] = v
		a32.Data[i] = float32(v)
	}
	for i := range b64.Data {
		v := float64(rng.Intn(8)) - 3
		b64.Data[i] = v
		b32.Data[i] = float32(v)
	}
	MatMulAcc(c64, a64, b64)
	MatMulAcc32(c32, a32, b32)
	for i := range c64.Data {
		if float64(c32.Data[i]) != c64.Data[i] {
			t.Fatalf("elem %d = %g, want %g", i, c32.Data[i], c64.Data[i])
		}
	}
}

// TestTranspose64To32 checks the cached-transpose conversion helper.
func TestTranspose64To32(t *testing.T) {
	n, k := 5, 3
	w := make([]float64, n*k)
	for i := range w {
		w[i] = float64(i) * 0.25
	}
	wt := Transpose64To32(w, n, k)
	if wt.Dim(0) != k || wt.Dim(1) != n {
		t.Fatalf("shape %v, want [%d %d]", wt.Shape, k, n)
	}
	for i := 0; i < n; i++ {
		for p := 0; p < k; p++ {
			if wt.Data[p*n+i] != float32(w[i*k+p]) {
				t.Fatalf("elem (%d,%d) = %g, want %g", p, i, wt.Data[p*n+i], float32(w[i*k+p]))
			}
		}
	}
}

// TestArena32Recycles mirrors the f64 arena contract: after a warm
// cycle, Get/Reset performs zero heap allocations.
func TestArena32Recycles(t *testing.T) {
	a := NewArena32()
	warm := func() {
		x := a.Get(4, 7)
		y := a.GetUninit(16)
		_ = a.View(x.Data, 28)
		a.Put(y)
		z := a.GetUninit(16) // reuses y's buffer
		_ = z
		a.Reset()
	}
	warm()
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Fatalf("warm Arena32 cycle allocates %v times", allocs)
	}
	x := a.Get(3, 3)
	for _, v := range x.Data {
		if v != 0 {
			t.Fatalf("Arena32.Get returned dirty buffer")
		}
	}
	if x.Len() != 9 || x.Rank() != 2 {
		t.Fatalf("Arena32.Get shape bookkeeping broken: %v", x.Shape)
	}
}

// TestF32CopyFrom64 checks the narrowing conversion helper.
func TestF32CopyFrom64(t *testing.T) {
	x := New(2, 3)
	for i := range x.Data {
		x.Data[i] = float64(i) + 0.5
	}
	y := NewF32(2, 3)
	y.CopyFrom64(x)
	for i := range x.Data {
		if y.Data[i] != float32(x.Data[i]) {
			t.Fatalf("elem %d = %g, want %g", i, y.Data[i], float32(x.Data[i]))
		}
	}
	if math.IsNaN(float64(y.Data[0])) {
		t.Fatal("unexpected NaN")
	}
}
