package tensor

import (
	"math/rand"
	"testing"
)

// BenchmarkMatMulPacked pairs the f64 reference panel GEMM against the
// f32 fast path on the dense-layer shape the precision trajectory
// records (cmd/benchreport/kernels.go): m=8, k=2048, n=512 — the B
// panel spills the cache, so the speedup is the memory-traffic win of
// halving the element width. `make bench-precision` runs this pair.
func BenchmarkMatMulPacked(b *testing.B) {
	const m, k, n = 8, 2048, 512
	rng := rand.New(rand.NewSource(61))
	a := New(m, k)
	bm := New(k, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range bm.Data {
		bm.Data[i] = rng.NormFloat64()
	}

	b.Run("f64", func(b *testing.B) {
		b.ReportAllocs()
		var pb PackedB
		pb.Pack(bm)
		c := New(m, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMulPackedInto(c, a, &pb)
		}
	})
	b.Run("f32", func(b *testing.B) {
		b.ReportAllocs()
		bm32 := NewF32(k, n)
		bm32.CopyFrom64(bm)
		var pb PackedB32
		pb.Pack(bm32)
		a32 := NewF32(m, k)
		a32.CopyFrom64(a)
		c := NewF32(m, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMulPacked32Into(c, a32, &pb)
		}
	})
}
