package tensor

import (
	"math/rand"
	"testing"
)

// axpy32Scalar is the reference semantics of Axpy32: one multiply
// rounding and one add rounding per element, ascending order.
func axpy32Scalar(dst, w []float32, v float32) {
	for i := range dst {
		dst[i] += v * w[i]
	}
}

// TestAxpy32MatchesScalarBitwise pins the vector kernel bit-identical
// to the scalar loop across every tail length the 8-lane block loop
// can leave behind, including zero-length and subnormal-producing
// inputs.
func TestAxpy32MatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for n := 0; n <= 35; n++ {
		dst := make([]float32, n)
		w := make([]float32, n)
		for i := range dst {
			dst[i] = float32(rng.NormFloat64())
			w[i] = float32(rng.NormFloat64())
		}
		v := float32(rng.NormFloat64())
		want := append([]float32(nil), dst...)
		axpy32Scalar(want, w, v)
		Axpy32(dst, w, v)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: Axpy32 diverged from scalar at %d: %v != %v", n, i, dst[i], want[i])
			}
		}
	}
	// Tiny v times tiny w drives lanes subnormal; the vector unit must
	// round them identically.
	dst := []float32{1e-38, -1e-38, 0, 1e-38, -1, 2, -3, 4, 5e-40}
	w := []float32{1e-38, 2e-38, 3e-38, -1e-38, 1e-38, 1, 2, 3, 4}
	want := append([]float32(nil), dst...)
	axpy32Scalar(want, w, 1e-5)
	Axpy32(dst, w, 1e-5)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("subnormal lane %d: %v != %v", i, dst[i], want[i])
		}
	}
}

// TestAxpy32LongerW pins the contract that w may be longer than dst:
// only len(dst) elements are touched.
func TestAxpy32LongerW(t *testing.T) {
	dst := []float32{1, 2, 3}
	w := []float32{10, 20, 30, 40, 50}
	Axpy32(dst, w, 2)
	for i, want := range []float32{21, 42, 63} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want)
		}
	}
}
