//go:build !amd64

package tensor

// Axpy32 computes dst[i] += v * w[i] for every element of dst; w must
// be at least as long as dst. Portable fallback for the SSE kernel in
// axpy_amd64.s — same per-element rounding, so results match the
// vector path bitwise.
func Axpy32(dst, w []float32, v float32) {
	for i := range dst {
		dst[i] += v * w[i]
	}
}

// packedAccSkip32 accumulates one output row of a full 8-column panel
// with zero ai entries skipped (see axpy_amd64.go).
func packedAccSkip32(ci, ai, panel []float32) {
	s0, s1, s2, s3 := ci[0], ci[1], ci[2], ci[3]
	s4, s5, s6, s7 := ci[4], ci[5], ci[6], ci[7]
	for p, av := range ai {
		if av == 0 {
			continue
		}
		r := panel[p*8 : p*8+8]
		s0 += av * r[0]
		s1 += av * r[1]
		s2 += av * r[2]
		s3 += av * r[3]
		s4 += av * r[4]
		s5 += av * r[5]
		s6 += av * r[6]
		s7 += av * r[7]
	}
	ci[0], ci[1], ci[2], ci[3] = s0, s1, s2, s3
	ci[4], ci[5], ci[6], ci[7] = s4, s5, s6, s7
}

// packedInto32 overwrites one output row of a full 8-column panel,
// dense ascending-p accumulation (see axpy_amd64.go).
func packedInto32(ci, ai, panel []float32) {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	for p, av := range ai {
		r := panel[p*8 : p*8+8]
		s0 += av * r[0]
		s1 += av * r[1]
		s2 += av * r[2]
		s3 += av * r[3]
		s4 += av * r[4]
		s5 += av * r[5]
		s6 += av * r[6]
		s7 += av * r[7]
	}
	ci[0], ci[1], ci[2], ci[3] = s0, s1, s2, s3
	ci[4], ci[5], ci[6], ci[7] = s4, s5, s6, s7
}
