package tensor

import "fmt"

// F32 is the single-precision sibling of Tensor: a dense, row-major
// n-dimensional array of float32. It exists for the inference fast
// path only — training and the verified reference forward pass stay in
// float64 — so it carries just the surface the f32 kernels need
// (construction, views, row access, fill) rather than the full
// element-wise algebra of Tensor.
type F32 struct {
	Shape []int
	Data  []float32
}

// NewF32 returns a zero-filled float32 tensor with the given shape.
// Like New, the variadic shape is defensively copied.
func NewF32(shape ...int) *F32 {
	return NewF32FromShape(append([]int(nil), shape...))
}

// NewF32FromShape takes ownership of shape (no defensive copy),
// mirroring NewFromShape's one-allocation contract.
func NewF32FromShape(shape []int) *F32 {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &F32{Shape: shape, Data: make([]float32, n)}
}

// F32FromSlice wraps data in an F32 with the given shape. The slice is
// aliased, never copied — the same contract as FromSlice.
func F32FromSlice(data []float32, shape ...int) *F32 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v requires %d elements, got %d", shape, n, len(data)))
	}
	return &F32{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *F32) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *F32) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *F32) Rank() int { return len(t.Shape) }

// Row returns a view of row i of a rank-2 tensor as a slice.
func (t *F32) Row(i int) []float32 {
	if len(t.Shape) != 2 {
		panic("tensor: F32.Row requires a rank-2 tensor")
	}
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Fill sets every element to v.
func (t *F32) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0 via memclr (see Tensor.Zero); at four
// bytes per element the clear moves half the reference path's bytes.
func (t *F32) Zero() { clear(t.Data) }

// CopyFrom64 fills t element-wise from the float64 tensor x, which
// must have the same element count. It is the narrowing conversion at
// the f64→f32 boundary: weights convert once per workspace, features
// convert once per batch, and everything downstream stays float32.
func (t *F32) CopyFrom64(x *Tensor) {
	if len(t.Data) != len(x.Data) {
		panic("tensor: F32.CopyFrom64 length mismatch")
	}
	for i, v := range x.Data {
		t.Data[i] = float32(v)
	}
}
