package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/screen"
)

// RequestRecord is the durable form of one service request. Records
// live as requests/<id>.json under the service directory and are
// written with the campaign's atomic JSON primitive, so a kill at any
// instant leaves either the old record or the new one, never a torn
// file.
type RequestRecord struct {
	ID        string    `json:"id"`
	Target    string    `json:"target"`
	State     string    `json:"state"`
	Poses     int       `json:"poses"`
	Submitted time.Time `json:"submitted"`
	Completed time.Time `json:"completed,omitzero"`
	Error     string    `json:"error,omitempty"`
}

// Store persists service requests and their results under one
// directory, reusing the campaign's write primitives: atomic JSON for
// request records, fsynced shard files for predictions. The layout —
// requests/*.json + results/*.h5l — is the service-shaped sibling of
// a campaign directory's manifest + shards.
type Store struct {
	dir string
}

const (
	requestsDirName = "requests"
	resultsDirName  = "results"
)

// OpenStore creates (or reopens) the service persistence directory.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{requestsDirName, resultsDirName} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o777); err != nil {
			return nil, fmt.Errorf("serve: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// SaveRequest atomically writes the request's durable record.
func (s *Store) SaveRequest(rec RequestRecord) error {
	return campaign.WriteJSONAtomic(filepath.Join(s.dir, requestsDirName, rec.ID+".json"), rec)
}

// SaveResults writes the request's predictions as one shard file,
// with the same temp-write + fsync + rename durability as campaign
// shards (and the identical h5lite column layout, so campaign tooling
// reads service results unchanged).
func (s *Store) SaveResults(id string, preds []screen.Prediction) error {
	f := screen.WriteShards(preds, 1)[0]
	return campaign.WriteShardFile(filepath.Join(s.dir, resultsDirName, id+".h5l"), f)
}

// StoredRequest is one reloaded request: its record plus (for
// completed requests) the predictions read back from its shard.
type StoredRequest struct {
	Record RequestRecord
	Preds  []screen.Prediction
}

// Load reads every persisted request record, restoring completed
// requests' predictions from their result shards.
func (s *Store) Load() ([]StoredRequest, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, requestsDirName))
	if err != nil {
		return nil, fmt.Errorf("serve: load store: %w", err)
	}
	var out []StoredRequest
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, requestsDirName, ent.Name()))
		if err != nil {
			return nil, err
		}
		var rec RequestRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("serve: corrupt request record %s: %w", ent.Name(), err)
		}
		sr := StoredRequest{Record: rec}
		if rec.State == StateDone {
			f, err := campaign.ReadShardFile(filepath.Join(s.dir, resultsDirName, rec.ID+".h5l"))
			if err != nil {
				return nil, fmt.Errorf("serve: request %s is done but its result shard is unreadable: %w", rec.ID, err)
			}
			preds, err := screen.ReadShards([]*h5lite.File{f})
			if err != nil {
				return nil, err
			}
			sr.Preds = preds
		}
		out = append(out, sr)
	}
	return out, nil
}
