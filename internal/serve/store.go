package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/screen"
)

// RequestRecord is the durable form of one service request. Records
// live as requests/<id>.json under the service directory and are
// written with the campaign's atomic JSON primitive, so a kill at any
// instant leaves either the old record or the new one, never a torn
// file.
type RequestRecord struct {
	ID        string    `json:"id"`
	Target    string    `json:"target"`
	State     string    `json:"state"`
	Poses     int       `json:"poses"`
	Submitted time.Time `json:"submitted"`
	Completed time.Time `json:"completed,omitzero"`
	Error     string    `json:"error,omitempty"`
}

// Store persists service requests and their results under one
// directory, reusing the campaign's write primitives: atomic JSON for
// request records, fsynced shard files for predictions. The layout —
// requests/*.json + results/*.h5l — is the service-shaped sibling of
// a campaign directory's manifest + shards.
type Store struct {
	dir string
}

const (
	requestsDirName = "requests"
	resultsDirName  = "results"
)

// OpenStore creates (or reopens) the service persistence directory.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{requestsDirName, resultsDirName} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o777); err != nil {
			return nil, fmt.Errorf("serve: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// SaveRequest atomically writes the request's durable record.
func (s *Store) SaveRequest(rec RequestRecord) error {
	return campaign.WriteJSONAtomic(filepath.Join(s.dir, requestsDirName, rec.ID+".json"), rec)
}

// SaveResults writes the request's predictions as one shard file,
// with the same temp-write + fsync + rename durability as campaign
// shards (and the identical h5lite column layout, so campaign tooling
// reads service results unchanged).
func (s *Store) SaveResults(id string, preds []screen.Prediction) error {
	f := screen.WriteShards(preds, 1)[0]
	return campaign.WriteShardFile(filepath.Join(s.dir, resultsDirName, id+".h5l"), f)
}

// StoredRequest is one reloaded request: its record plus (for
// completed requests) the predictions read back from its shard.
type StoredRequest struct {
	Record RequestRecord
	Preds  []screen.Prediction
}

// Load reads every persisted request record, restoring completed
// requests' predictions from their result shards.
//
// Damage does not crash the restart: a request record that fails to
// parse, or a done request whose result shard is missing or fails its
// h5lite checksums, is healed instead — the damaged file is moved to
// quarantine/ (preserved for post-mortem, never deleted), the request
// is marked lost with the diagnosis in its error, and the rewritten
// record is returned alongside the healthy ones. Clients that re-poll
// a lost request see a terminal state and resubmit; they never see
// silently wrong scores.
func (s *Store) Load() ([]StoredRequest, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, requestsDirName))
	if err != nil {
		return nil, fmt.Errorf("serve: load store: %w", err)
	}
	var out []StoredRequest
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") || strings.Contains(ent.Name(), ".tmp") {
			continue
		}
		rel := filepath.Join(requestsDirName, ent.Name())
		data, err := os.ReadFile(filepath.Join(s.dir, rel))
		if err != nil {
			return nil, err
		}
		var rec RequestRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" {
			// The record itself is damaged. Quarantine it and restore
			// the request (identity from the filename) as lost.
			if qerr := s.quarantine(rel); qerr != nil {
				return nil, qerr
			}
			id := strings.TrimSuffix(ent.Name(), ".json")
			rec = RequestRecord{
				ID:    id,
				State: StateLost,
				Error: fmt.Sprintf("serve: request record was corrupt and has been quarantined: %v", err),
			}
			if err := s.SaveRequest(rec); err != nil {
				return nil, err
			}
			out = append(out, StoredRequest{Record: rec})
			continue
		}
		sr := StoredRequest{Record: rec}
		if rec.State == StateDone {
			shardRel := filepath.Join(resultsDirName, rec.ID+".h5l")
			f, err := campaign.ReadShardFile(filepath.Join(s.dir, shardRel))
			if err != nil {
				// Done with an unreadable shard: quarantine the shard
				// (when present) and demote the request to lost rather
				// than crash the restart or serve damaged scores.
				if qerr := s.quarantine(shardRel); qerr != nil {
					return nil, qerr
				}
				rec.State = StateLost
				rec.Error = fmt.Sprintf("serve: result shard failed verification and has been quarantined: %v", err)
				if err := s.SaveRequest(rec); err != nil {
					return nil, err
				}
				out = append(out, StoredRequest{Record: rec})
				continue
			}
			preds, err := screen.ReadShards([]*h5lite.File{f})
			if err != nil {
				return nil, err
			}
			sr.Preds = preds
		}
		out = append(out, sr)
	}
	return out, nil
}

// quarantine moves one store-relative file into quarantine/ with a
// collision-safe name; a missing source is a no-op.
func (s *Store) quarantine(rel string) error {
	src := filepath.Join(s.dir, rel)
	if _, err := os.Stat(src); err != nil {
		return nil
	}
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o777); err != nil {
		return err
	}
	base := filepath.Base(rel)
	dst := filepath.Join(qdir, base)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	return os.Rename(src, dst)
}
