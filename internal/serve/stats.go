package serve

import (
	"sort"
	"sync"
	"time"

	"deepfusion/internal/campaign"
)

// flushCause labels why a batch left the batcher.
type flushCause int

const (
	flushFull     flushCause = iota // reached BatchSize
	flushDeadline                   // latency bound expired
	flushDrain                      // engine drain
)

// latencyWindow is how many recent request latencies the percentile
// ring retains. Power of two, sized to smooth percentile estimates
// without unbounded growth.
const latencyWindow = 512

// throughputWindow is how many recent batch completions the poses/s
// estimate is computed over.
const throughputWindow = 128

// Stats aggregates the service's operational counters: flush-cause
// breakdown (the batcher's observable behavior — tests assert on it),
// scored-pose throughput over a recent window, and request-latency
// percentiles over a ring of completions. All time comes from the
// engine clock, so FakeClock tests read deterministic numbers.
type Stats struct {
	mu    sync.Mutex
	clock campaign.Clock

	posesScored     int64
	flushesFull     int64
	flushesDeadline int64
	flushesDrain    int64
	rejections      int64
	evictions       int64

	lat  [latencyWindow]time.Duration
	latN int64 // total latencies observed; ring index is latN % window

	tput  [throughputWindow]tputSample
	tputN int64
}

type tputSample struct {
	at    time.Time
	poses int
}

func newStats(clock campaign.Clock) *Stats {
	return &Stats{clock: clock}
}

func (s *Stats) flushed(cause flushCause, poses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cause {
	case flushFull:
		s.flushesFull++
	case flushDeadline:
		s.flushesDeadline++
	case flushDrain:
		s.flushesDrain++
	}
}

func (s *Stats) scored(poses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.posesScored += int64(poses)
	s.tput[s.tputN%throughputWindow] = tputSample{at: s.clock.Now(), poses: poses}
	s.tputN++
}

func (s *Stats) latency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lat[s.latN%latencyWindow] = d
	s.latN++
}

func (s *Stats) rejected() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rejections++
}

func (s *Stats) evictedTarget() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictions++
}

// FlushCounts returns the batcher's flush-cause breakdown (full,
// deadline, drain) — the exactly-once observability hook the FakeClock
// tests assert on.
func (s *Stats) FlushCounts() (full, deadline, drain int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushesFull, s.flushesDeadline, s.flushesDrain
}

// StatsSnapshot is the JSON form of the live counters.
type StatsSnapshot struct {
	PosesScored     int64   `json:"poses_scored"`
	PosesPerSec     float64 `json:"poses_per_sec"`
	P50LatencyMS    float64 `json:"p50_latency_ms"`
	P99LatencyMS    float64 `json:"p99_latency_ms"`
	FlushesFull     int64   `json:"flushes_full"`
	FlushesDeadline int64   `json:"flushes_deadline"`
	FlushesDrain    int64   `json:"flushes_drain"`
	Rejections      int64   `json:"rejections"`
	TargetEvictions int64   `json:"target_evictions"`
}

func (s *Stats) snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatsSnapshot{
		PosesScored:     s.posesScored,
		FlushesFull:     s.flushesFull,
		FlushesDeadline: s.flushesDeadline,
		FlushesDrain:    s.flushesDrain,
		Rejections:      s.rejections,
		TargetEvictions: s.evictions,
	}
	snap.PosesPerSec = s.posesPerSecLocked()
	snap.P50LatencyMS, snap.P99LatencyMS = s.percentilesLocked()
	return snap
}

// posesPerSecLocked estimates recent throughput over the completion
// window: poses scored between the oldest retained sample and now.
// A frozen clock (FakeClock tests) yields zero elapsed time; report 0
// rather than Inf.
func (s *Stats) posesPerSecLocked() float64 {
	n := s.tputN
	if n == 0 {
		return 0
	}
	w := int64(throughputWindow)
	if n < w {
		w = n
	}
	oldest := s.tput[(s.tputN-w)%throughputWindow]
	total := 0
	for i := int64(0); i < w; i++ {
		total += s.tput[(s.tputN-1-i)%throughputWindow].poses
	}
	elapsed := s.clock.Now().Sub(oldest.at).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(total) / elapsed
}

// percentilesLocked computes p50/p99 over the retained latency ring.
func (s *Stats) percentilesLocked() (p50, p99 float64) {
	n := s.latN
	if n == 0 {
		return 0, 0
	}
	w := int64(latencyWindow)
	if n < w {
		w = n
	}
	buf := make([]time.Duration, w)
	for i := int64(0); i < w; i++ {
		buf[i] = s.lat[(s.latN-1-i)%latencyWindow]
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(buf)-1))
		return float64(buf[idx]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.99)
}
