package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"deepfusion/internal/chem"
	"deepfusion/internal/libgen"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// SubmitRequest is the POST /v1/submit body. Clients name compounds
// by library-qualified ID ("zinc-world-approved:17") or inline SMILES
// strings; the service prepares and docks them server-side, then
// feeds the poses through the cross-request batcher.
type SubmitRequest struct {
	Target string `json:"target"`
	// Compounds are library-qualified IDs resolved through the
	// deterministic compound libraries.
	Compounds []string `json:"compounds,omitempty"`
	// SMILES are ad-hoc structures, prepared exactly like library
	// downloads (desalt, protonate, embed).
	SMILES []string `json:"smiles,omitempty"`
	// MaxPoses caps docked poses per compound (default 3).
	MaxPoses int `json:"max_poses,omitempty"`
}

// SubmitResponse acknowledges an admitted submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	Poses int    `json:"poses"`
	// DockProblems lists compounds that failed preparation or docking
	// and were skipped (the funnel's tolerance of bad inputs).
	DockProblems []string `json:"dock_problems,omitempty"`
}

// ResultsResponse is the completed request's score table.
type ResultsResponse struct {
	ID          string             `json:"id"`
	Target      string             `json:"target"`
	Predictions []PredictionRecord `json:"predictions"`
}

// PredictionRecord is one scored pose in wire form.
type PredictionRecord struct {
	CompoundID string             `json:"compound_id"`
	PoseRank   int                `json:"pose_rank"`
	Fusion     float64            `json:"fusion_pk"`
	Vina       float64            `json:"vina_kcal"`
	MMGBSA     float64            `json:"mmgbsa_kcal"`
	Scores     map[string]float64 `json:"scores,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler wires the service's HTTP surface onto the engine:
//
//	POST /v1/submit               dock + admit a compound set
//	GET  /v1/requests/{id}         request status
//	GET  /v1/requests/{id}/results scores (?wait=1 long-polls)
//	GET  /v1/status               engine + batcher statistics
//	GET  /healthz                 liveness (503 while draining)
//
// Overload maps to 429 with a Retry-After header; submissions during
// drain map to 503.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(e, w, r)
	})
	mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		req, ok := e.Request(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown request %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, e.Snapshot(req))
	})
	mux.HandleFunc("GET /v1/requests/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		handleResults(e, w, r)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Status())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			writeError(w, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func handleSubmit(e *Engine, w http.ResponseWriter, r *http.Request) {
	var sub SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad submit body: %w", err))
		return
	}
	if sub.Target == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("submit names no target"))
		return
	}
	if len(sub.Compounds)+len(sub.SMILES) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("submit names no compounds"))
		return
	}
	poses, problems, err := e.dockSubmission(r.Context(), &sub)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(poses) == 0 {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("no compound survived docking: %s", strings.Join(problems, "; ")))
		return
	}
	req, err := e.SubmitPoses(sub.Target, poses)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: req.ID, Poses: len(poses), DockProblems: problems})
}

// dockSubmission resolves and docks the submission's compounds — the
// ingest half of the funnel, run in the handler so the batcher only
// ever sees ready-to-score poses.
func (e *Engine) dockSubmission(ctx context.Context, sub *SubmitRequest) ([]screen.Pose, []string, error) {
	pocket := target.ByName(sub.Target)
	if pocket == nil {
		return nil, nil, fmt.Errorf("unknown target %q", sub.Target)
	}
	maxPoses := sub.MaxPoses
	if maxPoses <= 0 {
		maxPoses = 3
	}
	var mols []*chem.Mol
	var problems []string
	for _, id := range sub.Compounds {
		m, err := libgen.MolByID(id)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		mols = append(mols, m)
	}
	for i, s := range sub.SMILES {
		m, err := chem.ParseSMILES(s)
		if err != nil {
			problems = append(problems, fmt.Sprintf("smiles[%d]: %v", i, err))
			continue
		}
		if m.Name == "" {
			m.Name = fmt.Sprintf("smiles:%d", i)
		}
		prepared, err := chem.Prepare(m, e.cfg.Job.Seed)
		if err != nil {
			problems = append(problems, fmt.Sprintf("smiles[%d]: %v", i, err))
			continue
		}
		prepared.Name = m.Name
		mols = append(mols, prepared)
	}
	if len(mols) == 0 {
		return nil, problems, nil
	}
	poses, dockProblems, err := screen.DockCompounds(ctx, pocket, mols, maxPoses, e.cfg.Job.Seed)
	if err != nil {
		return nil, nil, err
	}
	for _, p := range dockProblems {
		problems = append(problems, p.String())
	}
	return poses, problems, nil
}

func handleResults(e *Engine, w http.ResponseWriter, r *http.Request) {
	req, ok := e.Request(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown request %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-req.Done():
		case <-r.Context().Done():
			return
		}
	}
	preds, err := e.Results(req)
	if err != nil {
		st := e.Snapshot(req)
		switch st.State {
		case StateQueued:
			writeError(w, http.StatusConflict, err)
		default:
			writeError(w, http.StatusGone, err)
		}
		return
	}
	resp := ResultsResponse{ID: req.ID, Target: req.Target, Predictions: make([]PredictionRecord, len(preds))}
	for i, p := range preds {
		resp.Predictions[i] = PredictionRecord{
			CompoundID: p.CompoundID,
			PoseRank:   p.PoseRank,
			Fusion:     p.Fusion,
			Vina:       p.Vina,
			MMGBSA:     p.MMGBSA,
			Scores:     p.Scores,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeSubmitError maps engine admission errors onto HTTP semantics:
// overload → 429 + Retry-After (integer seconds, rounded up), drain →
// 503, anything else → 400.
func writeSubmitError(w http.ResponseWriter, err error) {
	var over *OverloadError
	switch {
	case errors.As(err, &over):
		secs := int(math.Ceil(over.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
	case err == ErrDraining:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// Server couples the HTTP listener with the engine's drain sequence:
// Shutdown stops admission first (so load balancers fail over), then
// drains the engine (in-flight work finishes and persists), then
// closes the listener.
type Server struct {
	Engine *Engine
	HTTP   *http.Server
}

// NewServer builds an http.Server on addr serving the engine.
func NewServer(e *Engine, addr string) *Server {
	return &Server{
		Engine: e,
		HTTP:   &http.Server{Addr: addr, Handler: NewHandler(e)},
	}
}

// Shutdown is the SIGTERM path: drain the engine (refusing new
// submissions, flushing partial batches, persisting every in-flight
// request), then stop the HTTP listener so late long-pollers get
// their responses before the socket closes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Engine.Drain()
	shutdownCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	return s.HTTP.Shutdown(shutdownCtx)
}
