package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deepfusion/internal/campaign"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", path, err)
		}
	}
	return resp
}

// TestHTTPRoundTrip drives the full client workflow over real HTTP:
// submit a compound set, poll status, long-poll results, read the
// engine status page. Uses the system clock (the server docks and
// scores for real); determinism pins live in the FakeClock suite.
func TestHTTPRoundTrip(t *testing.T) {
	cfg := testConfig(nil) // system clock
	cfg.MaxWait = 5 * time.Millisecond
	e := newTestEngine(t, cfg)
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/submit", SubmitRequest{
		Target:    "protease1",
		Compounds: []string{"zinc-world-approved:0", "zinc-world-approved:1"},
		MaxPoses:  1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Poses == 0 {
		t.Fatalf("submit ack %+v, want an ID and at least one pose", sub)
	}

	var st RequestStatus
	if resp := getJSON(t, srv, "/v1/requests/"+sub.ID, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint %d, want 200", resp.StatusCode)
	}
	if st.ID != sub.ID || st.Poses != sub.Poses {
		t.Fatalf("status %+v does not match submit ack %+v", st, sub)
	}

	// ?wait=1 long-polls until the deadline flush scores the batch.
	var res ResultsResponse
	if resp := getJSON(t, srv, "/v1/requests/"+sub.ID+"/results?wait=1", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("results endpoint %d, want 200", resp.StatusCode)
	}
	if len(res.Predictions) != sub.Poses {
		t.Fatalf("results carry %d predictions, want %d", len(res.Predictions), sub.Poses)
	}
	for _, p := range res.Predictions {
		if p.Vina == 0 {
			t.Fatalf("prediction %+v has no Vina score", p)
		}
	}

	var status ServiceStatus
	getJSON(t, srv, "/v1/status", &status)
	if status.Stats.PosesScored != int64(sub.Poses) {
		t.Fatalf("status page scored %d poses, want %d", status.Stats.PosesScored, sub.Poses)
	}
	if resp := getJSON(t, srv, "/v1/requests/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown request returned %d, want 404", resp.StatusCode)
	}
}

// TestHTTPSubmitValidation pins the 400/422 mappings for malformed
// and undockable submissions.
func TestHTTPSubmitValidation(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	e := newTestEngine(t, testConfig(clock))
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"no target", SubmitRequest{Compounds: []string{"zinc-world-approved:0"}}, http.StatusBadRequest},
		{"no compounds", SubmitRequest{Target: "protease1"}, http.StatusBadRequest},
		{"unknown target", SubmitRequest{Target: "nope", Compounds: []string{"zinc-world-approved:0"}}, http.StatusBadRequest},
		{"unparseable compound", SubmitRequest{Target: "protease1", Compounds: []string{"no-such-library:0"}}, http.StatusUnprocessableEntity},
		{"bad smiles", SubmitRequest{Target: "protease1", SMILES: []string{"((("}}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := postJSON(t, srv, "/v1/submit", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestHTTPOverload pins the 429 mapping: with the engine's queue
// pre-filled to the brim (frozen clock, nothing flushes), an HTTP
// submission is refused with Retry-After, and admitted again once the
// queued work scores.
func TestHTTPOverload(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	cfg := testConfig(clock)
	cfg.Job.BatchSize = 8
	cfg.QueueDepth = 1 // capacity: 8 poses
	e := newTestEngine(t, cfg)
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Pre-fill: 7 of 8 pose slots reserved in an open batch that a
	// frozen clock never flushes.
	r1, err := e.SubmitPoses("protease1", testPoses(t, 7))
	if err != nil {
		t.Fatal(err)
	}

	body := SubmitRequest{
		Target:    "protease1",
		Compounds: []string{"zinc-world-approved:0"},
		MaxPoses:  2,
	}
	resp := postJSON(t, srv, "/v1/submit", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After header")
	}

	// Recovery: flush and score the queued batch, then resubmit.
	clock.Advance(cfg.MaxWait)
	waitDone(t, r1)
	resp = postJSON(t, srv, "/v1/submit", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery: status %d, want 202", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	clock.Advance(cfg.MaxWait)
	req, _ := e.Request(sub.ID)
	waitDone(t, req)
}

// TestHTTPDrain pins the shutdown surface: a draining engine answers
// healthz with 503 and refuses submissions with 503 + Retry-After,
// while results of completed requests stay readable.
func TestHTTPDrain(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	e := newTestEngine(t, testConfig(clock))
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	r, err := e.SubmitPoses("protease1", testPoses(t, 4)) // batch-full: scores immediately
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r)

	if resp := getJSON(t, srv, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", resp.StatusCode)
	}
	e.Drain()
	if resp := getJSON(t, srv, "/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}
	resp := postJSON(t, srv, "/v1/submit", SubmitRequest{
		Target:    "protease1",
		Compounds: []string{"zinc-world-approved:0"},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection carries no Retry-After header")
	}
	// Completed work stays readable after drain.
	var res ResultsResponse
	if resp := getJSON(t, srv, "/v1/requests/"+r.ID+"/results", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("results after drain: %d, want 200", resp.StatusCode)
	}
	if len(res.Predictions) != 4 {
		t.Fatalf("results after drain carry %d predictions, want 4", len(res.Predictions))
	}
}
