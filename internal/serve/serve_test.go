package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/dock"
	"deepfusion/internal/libgen"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// testConfig is the FakeClock engine harness every batcher test
// starts from: the free Vina physics scorer (no model training), one
// worker, small batches, a frozen virtual clock the test advances by
// hand. No test in this file sleeps wall-clock time.
func testConfig(clock campaign.Clock) Config {
	cfg := DefaultConfig([]screen.Scorer{dock.VinaScorer{}})
	cfg.Job.BatchSize = 4
	cfg.Workers = 1
	cfg.MaxWait = 50 * time.Millisecond
	cfg.QueueDepth = 8
	cfg.Clock = clock
	return cfg
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Drain)
	return e
}

// testPoses builds n ready-to-score poses in the pocket frame from
// the deterministic ZINC library, with distinct per-pose Vina scores
// so the carried column is load-bearing in identity checks.
func testPoses(t *testing.T, n int) []screen.Pose {
	t.Helper()
	var poses []screen.Pose
	for i := 0; len(poses) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, screen.Pose{
			CompoundID: m.Name,
			PoseRank:   len(poses) % 3,
			Mol:        m,
			VinaScore:  -5 - 0.25*float64(len(poses)),
		})
	}
	return poses
}

func waitDone(t *testing.T, r *Request) {
	t.Helper()
	select {
	case <-r.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("request %s never completed", r.ID)
	}
}

// TestBatchFullFlush pins the no-latency path: a submission that
// fills a batch flushes immediately, with no clock advance at all.
func TestBatchFullFlush(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	e := newTestEngine(t, testConfig(clock))
	poses := testPoses(t, 4)

	r, err := e.SubmitPoses("protease1", poses)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r) // completes without any Advance: batch-full flush
	full, deadline, drain := e.stats.FlushCounts()
	if full != 1 || deadline != 0 || drain != 0 {
		t.Fatalf("flush counts (full,deadline,drain) = (%d,%d,%d), want (1,0,0)", full, deadline, drain)
	}
	if st := e.Snapshot(r); st.State != StateDone || st.Scored != 4 {
		t.Fatalf("request state %+v, want done with 4 scored", st)
	}
}

// TestDeadlineFlush pins the latency-bound path: a partial batch sits
// until the virtual clock passes MaxWait, then flushes exactly once.
func TestDeadlineFlush(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	e := newTestEngine(t, testConfig(clock))
	poses := testPoses(t, 2)

	r, err := e.SubmitPoses("protease1", poses)
	if err != nil {
		t.Fatal(err)
	}
	if full, deadline, _ := e.stats.FlushCounts(); full != 0 || deadline != 0 {
		t.Fatalf("partial batch flushed before the deadline: full=%d deadline=%d", full, deadline)
	}
	clock.Advance(e.cfg.MaxWait) // SubmitPoses armed the timer before returning
	waitDone(t, r)
	full, deadline, drain := e.stats.FlushCounts()
	if full != 0 || deadline != 1 || drain != 0 {
		t.Fatalf("flush counts (full,deadline,drain) = (%d,%d,%d), want (0,1,0)", full, deadline, drain)
	}
}

// TestNoStarvationAcrossRequests pins the starvation bound: the
// deadline is armed when a batch opens, so a pose joining an already
// open batch waits only the remainder — no request waits past MaxWait
// from batch opening, however the traffic dribbles in.
func TestNoStarvationAcrossRequests(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	e := newTestEngine(t, testConfig(clock))
	poses := testPoses(t, 3)

	r1, err := e.SubmitPoses("protease1", poses[0:1])
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(e.cfg.MaxWait / 2)
	r2, err := e.SubmitPoses("protease1", poses[1:3]) // joins r1's open batch
	if err != nil {
		t.Fatal(err)
	}
	// Advancing to exactly r1's deadline must flush both: r2 rode the
	// batch opened by r1 and cannot restart its timer.
	clock.Advance(e.cfg.MaxWait / 2)
	waitDone(t, r1)
	waitDone(t, r2)
	if full, deadline, _ := e.stats.FlushCounts(); full != 0 || deadline != 1 {
		t.Fatalf("flush counts full=%d deadline=%d, want one deadline flush carrying both requests", full, deadline)
	}
}

// TestStaleDeadlineTimerIsNoOp pins the generation counter: a timer
// armed for a batch that was already flushed (batch-full here) must
// not flush the next batch early. The stale firing is driven
// synchronously, so the test is deterministic.
func TestStaleDeadlineTimerIsNoOp(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	e := newTestEngine(t, testConfig(clock))
	poses := testPoses(t, 5)

	r1, err := e.SubmitPoses("protease1", poses[0:4]) // batch-full flush, gen 0 -> 1
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r1)
	if _, err := e.SubmitPoses("protease1", poses[4:5]); err != nil { // opens batch gen 1
		t.Fatal(err)
	}

	e.mu.Lock()
	tr := e.targets["protease1"]
	e.mu.Unlock()
	e.deadlineFlush(tr, 0) // r1's stale timer firing late
	e.mu.Lock()
	stillOpen := tr.open != nil
	e.mu.Unlock()
	if !stillOpen {
		t.Fatal("stale deadline timer flushed the next open batch")
	}
	if full, deadline, _ := e.stats.FlushCounts(); full != 1 || deadline != 0 {
		t.Fatalf("flush counts full=%d deadline=%d after stale fire, want 1,0", full, deadline)
	}
	e.deadlineFlush(tr, 1) // the current batch's own timer
	if full, deadline, _ := e.stats.FlushCounts(); full != 1 || deadline != 1 {
		t.Fatalf("flush counts full=%d deadline=%d, want 1,1", full, deadline)
	}
}

// TestDrainFlushesPartialExactlyOnce pins the shutdown path: Drain
// flushes an open partial batch exactly once (cause: drain), scores
// it, and a later deadline firing for that batch is a no-op.
func TestDrainFlushesPartialExactlyOnce(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	e := newTestEngine(t, testConfig(clock))
	poses := testPoses(t, 3)

	r, err := e.SubmitPoses("protease1", poses)
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	tr := e.targets["protease1"]
	e.mu.Unlock()

	e.Drain()
	waitDone(t, r)
	if st := e.Snapshot(r); st.State != StateDone || st.Scored != 3 {
		t.Fatalf("drained request %+v, want done with 3 scored", st)
	}
	full, deadline, drain := e.stats.FlushCounts()
	if full != 0 || deadline != 0 || drain != 1 {
		t.Fatalf("flush counts (full,deadline,drain) = (%d,%d,%d), want (0,0,1)", full, deadline, drain)
	}
	// The drained batch's deadline timer fires after shutdown: no-op.
	e.deadlineFlush(tr, 0)
	if _, _, drain := e.stats.FlushCounts(); drain != 1 {
		t.Fatalf("drain flushed twice")
	}
	if _, err := e.SubmitPoses("protease1", poses[:1]); err != ErrDraining {
		t.Fatalf("submit during drain returned %v, want ErrDraining", err)
	}
}

// TestBatchedScoresMatchRunJob is the service's core identity pin:
// poses submitted as three separate client requests — coalesced into
// cross-request batches by the batcher — score byte-identically to
// one solo RunJob over the same poses. Driven entirely on the
// FakeClock: full batches flush on their own, the final partial
// flushes on one Advance.
func TestBatchedScoresMatchRunJob(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	cfg := testConfig(clock)
	cfg.Workers = 2
	e := newTestEngine(t, cfg)
	poses := testPoses(t, 11)

	o := cfg.Job
	want, err := screen.RunJob(context.Background(), dock.VinaScorer{}, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}

	// Three client submissions: 4 (fills a batch), 5 (fills the next
	// with r2's first pose, leaves 2 open), 2 (joins the open batch).
	var reqs []*Request
	for _, cut := range [][2]int{{0, 4}, {4, 9}, {9, 11}} {
		r, err := e.SubmitPoses("protease1", poses[cut[0]:cut[1]])
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	clock.Advance(e.cfg.MaxWait) // flush the trailing partial batch
	got := make([]screen.Prediction, 0, len(poses))
	for _, r := range reqs {
		waitDone(t, r)
		preds, err := e.Results(r)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, preds...)
	}

	for i := range poses {
		g, w := got[i], want[i]
		if g.Fusion != w.Fusion || g.Vina != w.Vina || g.MMGBSA != w.MMGBSA {
			t.Fatalf("pose %d: service %+v != RunJob %+v", i, g, w)
		}
		if g.CompoundID != w.CompoundID || g.PoseRank != w.PoseRank || g.Target != w.Target {
			t.Fatalf("pose %d: identity mismatch: service %+v != RunJob %+v", i, g, w)
		}
	}
}

// TestAdmissionControl pins the bounded queue: reservations beyond
// QueueDepth full batches are refused with a Retry-After hint, and
// capacity frees as soon as the queued work scores.
func TestAdmissionControl(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	cfg := testConfig(clock)
	cfg.QueueDepth = 1 // capacity: one batch = 4 poses
	e := newTestEngine(t, cfg)
	poses := testPoses(t, 5)

	r1, err := e.SubmitPoses("protease1", poses[0:3]) // 3 of 4 reserved
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.SubmitPoses("protease1", poses[3:5]) // 3+2 > 4
	over, ok := err.(*OverloadError)
	if !ok {
		t.Fatalf("submit over capacity returned %v, want OverloadError", err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("overload carries no Retry-After hint: %+v", over)
	}
	st := e.Status()
	if st.Stats.Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", st.Stats.Rejections)
	}

	// Recovery: the deadline flush scores the queued poses, releasing
	// their reservation; the same submission is then admitted.
	clock.Advance(e.cfg.MaxWait)
	waitDone(t, r1)
	r2, err := e.SubmitPoses("protease1", poses[3:5])
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	clock.Advance(e.cfg.MaxWait)
	waitDone(t, r2)
}

// TestStoreRoundTrip pins service persistence: a completed request
// survives an engine restart with its record and scores intact, and
// the restarted engine continues the request-ID sequence.
func TestStoreRoundTrip(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	cfg := testConfig(clock)
	cfg.Dir = t.TempDir()
	e := newTestEngine(t, cfg)
	poses := testPoses(t, 4)

	r, err := e.SubmitPoses("protease1", poses)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, r)
	want, err := e.Results(r)
	if err != nil {
		t.Fatal(err)
	}
	e.Drain()

	e2 := newTestEngine(t, cfg)
	r2, ok := e2.Request(r.ID)
	if !ok {
		t.Fatalf("restarted engine lost request %s", r.ID)
	}
	if st := e2.Snapshot(r2); st.State != StateDone || st.Poses != 4 {
		t.Fatalf("restored request %+v, want done with 4 poses", st)
	}
	got, err := e2.Results(r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored %d predictions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].CompoundID != want[i].CompoundID || got[i].Fusion != want[i].Fusion || got[i].MMGBSA != want[i].MMGBSA {
			t.Fatalf("restored prediction %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	rNext, err := e2.SubmitPoses("protease1", poses[:1])
	if err != nil {
		t.Fatal(err)
	}
	if rNext.ID == r.ID {
		t.Fatalf("restarted engine reissued request ID %s", r.ID)
	}
	clock.Advance(cfg.MaxWait)
	waitDone(t, rNext)
}

// TestPrefeatureLRU pins the per-target cache bound: submitting a
// fourth target through a MaxTargets=3 engine evicts the least
// recently used runtime, and the evicted target still scores
// correctly when it returns.
func TestPrefeatureLRU(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	cfg := testConfig(clock)
	cfg.MaxTargets = 3
	e := newTestEngine(t, cfg)
	poses := testPoses(t, 4)

	targets := []string{"protease1", "protease2", "spike1", "spike2"}
	var reqs []*Request
	for i, tn := range targets {
		clock.Advance(time.Millisecond) // distinct lastUse stamps
		r, err := e.SubmitPoses(tn, poses[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(e.cfg.MaxWait)
		waitDone(t, r)
		reqs = append(reqs, r)
	}
	if n := e.Status().Stats.TargetEvictions; n != 1 {
		t.Fatalf("target evictions = %d, want 1 (protease1 evicted by spike2)", n)
	}
	// The evicted target comes back: its prefeature rebuilds and
	// scores match a fresh RunJob exactly.
	r, err := e.SubmitPoses("protease1", poses[0:1])
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(e.cfg.MaxWait)
	waitDone(t, r)
	got, err := e.Results(r)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Results(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	g, w := got[0], first[0]
	if g.Fusion != w.Fusion || g.Vina != w.Vina || g.MMGBSA != w.MMGBSA || g.CompoundID != w.CompoundID {
		t.Fatalf("post-eviction score %+v != pre-eviction %+v", g, w)
	}
}

// TestRestartHealsCorruptStore pins the self-healing restart: a
// request record full of garbage and a done request whose result
// shard took a bit flip must not crash NewEngine. Both requests come
// back lost with the diagnosis in their error, the damaged files move
// to quarantine/, and the untouched request restores done with its
// predictions intact.
func TestRestartHealsCorruptStore(t *testing.T) {
	clock := campaign.NewFakeClock(time.Unix(1000, 0))
	cfg := testConfig(clock)
	cfg.Dir = t.TempDir()
	e := newTestEngine(t, cfg)
	poses := testPoses(t, 8)

	var ids []string
	for i := 0; i < 3; i++ {
		r, err := e.SubmitPoses("protease1", poses[2*i:2*i+2])
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(cfg.MaxWait)
		waitDone(t, r)
		ids = append(ids, r.ID)
	}
	e.Drain()

	// Damage request 0's record and request 1's result shard; leave
	// request 2 untouched.
	recPath := filepath.Join(cfg.Dir, "requests", ids[0]+".json")
	if err := os.WriteFile(recPath, []byte("{ not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(cfg.Dir, "results", ids[1]+".h5l")
	shard, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	shard[len(shard)/2] ^= 0x40
	if err := os.WriteFile(shardPath, shard, 0o666); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, cfg)
	for i, want := range []string{StateLost, StateLost, StateDone} {
		r, ok := e2.Request(ids[i])
		if !ok {
			t.Fatalf("restarted engine lost request %s", ids[i])
		}
		st := e2.Snapshot(r)
		if st.State != want {
			t.Fatalf("request %d restored as %q (error %q), want %q", i, st.State, st.Error, want)
		}
		if want == StateLost && !strings.Contains(st.Error, "quarantined") {
			t.Fatalf("lost request %d error %q does not name the quarantine", i, st.Error)
		}
	}
	healthy, _ := e2.Request(ids[2])
	if preds, err := e2.Results(healthy); err != nil || len(preds) != 2 {
		t.Fatalf("healthy request restored %d predictions (err %v), want 2", len(preds), err)
	}

	// The damaged files moved to quarantine/ — preserved, not deleted.
	for _, name := range []string{ids[0] + ".json", ids[1] + ".h5l"} {
		if _, err := os.Stat(filepath.Join(cfg.Dir, "quarantine", name)); err != nil {
			t.Fatalf("damaged file %s not quarantined: %v", name, err)
		}
	}
	if _, err := os.Stat(shardPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt shard still present at %s (err %v)", shardPath, err)
	}

	// A third restart is clean: the healed records parse, the lost
	// requests have no shard to verify, nothing new is quarantined.
	e2.Drain()
	e3 := newTestEngine(t, cfg)
	if r, ok := e3.Request(ids[0]); !ok || e3.Snapshot(r).State != StateLost {
		t.Fatalf("healed record did not survive a second restart")
	}
}
