// Package serve is the screening service front door: a long-lived
// engine that loads scorers once, keeps per-worker fusion workspaces
// and per-target pocket prefeatures warm, and scores small client
// submissions by coalescing them into full inference batches.
//
// The headline mechanism is the cross-request batcher. Every target
// keeps at most one open batch; submitted poses append to it, and the
// batch is dispatched to the scoring workers when it reaches the
// engine's batch size (batch-full flush) or when the configured
// latency bound expires (deadline flush), whichever happens first.
// Deadlines run through the campaign Clock abstraction, so the whole
// flush state machine is driven deterministically by a FakeClock in
// tests — no wall-clock sleeps anywhere in the test suite. A
// generation counter per target makes the three flush causes
// (batch-full, deadline, drain) mutually exclusive: whoever flushes
// first bumps the generation, and a stale deadline timer finds the
// generation moved and does nothing.
//
// Scores are byte-identical to a solo screen.RunJob over the same
// poses: batches are scored through screen.Session, which featurizes
// and scores with literally the engine's rank-loop code, and the
// Scorer contract guarantees batch-composition independence — so how
// client submissions interleave into batches cannot change any score.
//
// Admission control is pose-denominated: the engine reserves capacity
// for a request's poses at submit time and releases it when they are
// scored. When the reservation would exceed QueueDepth full batches,
// Submit fails with an OverloadError carrying a Retry-After hint (the
// HTTP layer maps it to 429). Draining (SIGTERM) flushes every
// partial batch exactly once, lets in-flight requests finish and
// persist, and refuses new submissions with ErrDraining (503).
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/featurize"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// Config parameterizes the engine. The zero value is not runnable;
// use DefaultConfig and override.
type Config struct {
	// Scorers is the scorer set every request is scored with, primary
	// first (the same contract as screen.RunJobEnsemble).
	Scorers []screen.Scorer
	// Job carries the engine knobs shared with batch jobs: BatchSize
	// (the batcher's flush threshold), Precision, featurization
	// options, Seed (docking determinism for compound submissions).
	Job screen.JobOptions
	// Workers is the number of concurrent scoring sessions — the
	// service's analogue of the batch engine's ranks. Each worker owns
	// its own screen.Session per target (workspace, slots), exactly as
	// runRanks gives each rank a private emitter.
	Workers int
	// MaxWait is the cross-request batching deadline: the longest a
	// submitted pose waits for co-batching before a partial batch is
	// flushed. It is the service's latency/throughput dial.
	MaxWait time.Duration
	// QueueDepth bounds admitted-but-unscored work, measured in full
	// batches: admission reserves poses and refuses submissions beyond
	// QueueDepth*BatchSize reserved poses.
	QueueDepth int
	// MaxTargets caps the per-target runtime (prefeature) cache; the
	// least-recently-used target is evicted beyond it. Prefeatures are
	// immutable, so eviction never affects in-flight batches.
	MaxTargets int
	// MaxPosesPerRequest rejects oversized submissions outright (they
	// should be batch jobs, not service requests).
	MaxPosesPerRequest int
	// Clock drives batching deadlines and all timestamps. Nil means
	// the system clock; tests inject campaign.NewFakeClock.
	Clock campaign.Clock
	// Dir is the persistence root for request records and result
	// shards (the campaign's atomic write primitives). Empty runs the
	// engine fully in-memory.
	Dir string
}

// DefaultConfig returns production-shaped service settings.
func DefaultConfig(scorers []screen.Scorer) Config {
	return Config{
		Scorers:            scorers,
		Job:                screen.DefaultJobOptions(),
		Workers:            2,
		MaxWait:            25 * time.Millisecond,
		QueueDepth:         32,
		MaxTargets:         4,
		MaxPosesPerRequest: 256,
	}
}

// Request states.
const (
	StateQueued = "queued" // admitted, poses batched or being scored
	StateDone   = "done"   // every pose scored, results available
	StateFailed = "failed" // a scoring batch errored
	StateLost   = "lost"   // interrupted by a restart before completion
)

// ErrDraining rejects submissions while the engine shuts down.
var ErrDraining = errors.New("serve: engine is draining")

// OverloadError is the admission-control rejection: the bounded queue
// is full. RetryAfter is the engine's backoff hint (the HTTP layer
// rounds it up into a Retry-After header).
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: queue full, retry after %s", e.RetryAfter)
}

// Request is one admitted client submission. Fields are guarded by
// the engine mutex; handlers read consistent snapshots via Snapshot.
type Request struct {
	ID        string
	Target    string
	Submitted time.Time

	preds     []screen.Prediction // slot-indexed results
	remaining int                 // poses not yet scored
	state     string
	err       error
	completed time.Time
	done      chan struct{} // closed when state leaves "queued"
}

// Done returns a channel closed when the request finishes (done,
// failed or lost) — the wait hook for long-polling handlers.
func (r *Request) Done() <-chan struct{} { return r.done }

// RequestStatus is a consistent point-in-time view of a request.
type RequestStatus struct {
	ID        string    `json:"id"`
	Target    string    `json:"target"`
	State     string    `json:"state"`
	Poses     int       `json:"poses"`
	Scored    int       `json:"scored"`
	Submitted time.Time `json:"submitted"`
	Completed time.Time `json:"completed,omitzero"`
	Error     string    `json:"error,omitempty"`
}

// batchEntry routes one scored pose back to its request slot.
type batchEntry struct {
	req  *Request
	slot int
}

// batch is one unit of scoring work: poses coalesced from one or more
// requests against a single target.
type batch struct {
	tr      *targetRuntime
	pre     *featurize.PocketPrefeature
	poses   []screen.Pose
	entries []batchEntry
}

// targetRuntime is the per-target batcher state: the warm prefeature
// and the open (accumulating) batch with its flush generation.
type targetRuntime struct {
	name    string
	pocket  *target.Pocket
	pre     *featurize.PocketPrefeature
	lastUse time.Time
	open    *batch
	// gen counts flushes. A deadline timer armed when a batch opens
	// captures the generation it was armed for; if any other path
	// (batch-full, drain, an earlier deadline) flushed first, the
	// generation has moved and the timer does nothing — each batch is
	// flushed exactly once.
	gen int
}

// Engine is the resident screening service: warm scoring state, the
// cross-request batcher, admission control and request bookkeeping.
type Engine struct {
	cfg   Config
	clock campaign.Clock
	store *Store
	stats *Stats

	batches   chan *batch
	workers   sync.WaitGroup
	reqWG     sync.WaitGroup
	drainOnce sync.Once

	mu       sync.Mutex
	targets  map[string]*targetRuntime
	reqs     map[string]*Request
	reserved int // admitted poses not yet scored
	capacity int // QueueDepth * BatchSize poses
	draining bool
	seq      int
}

// NewEngine validates the configuration, restores persisted requests
// from cfg.Dir (when set) and starts the scoring workers.
func NewEngine(cfg Config) (*Engine, error) {
	if err := screen.ValidateScorerSet(cfg.Scorers); err != nil {
		return nil, err
	}
	if err := cfg.Job.Precision.Validate(); err != nil {
		return nil, err
	}
	if cfg.Job.BatchSize < 1 {
		return nil, fmt.Errorf("serve: batch size %d, want >= 1", cfg.Job.BatchSize)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("serve: %d workers, want >= 1", cfg.Workers)
	}
	if cfg.MaxWait <= 0 {
		return nil, fmt.Errorf("serve: batching deadline %s, want > 0", cfg.MaxWait)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d, want >= 1", cfg.QueueDepth)
	}
	if cfg.MaxTargets < 1 {
		return nil, fmt.Errorf("serve: max targets %d, want >= 1", cfg.MaxTargets)
	}
	if cfg.MaxPosesPerRequest < 1 {
		cfg.MaxPosesPerRequest = cfg.Job.BatchSize
	}
	clock := cfg.Clock
	if clock == nil {
		clock = campaign.SystemClock{}
	}
	e := &Engine{
		cfg:      cfg,
		clock:    clock,
		stats:    newStats(clock),
		targets:  map[string]*targetRuntime{},
		reqs:     map[string]*Request{},
		capacity: cfg.QueueDepth * cfg.Job.BatchSize,
		// Every dispatched-but-unscored batch holds at least one
		// reserved pose and reservations never exceed capacity, so a
		// channel of capacity batches makes dispatch non-blocking by
		// construction (flushLocked sends while holding the mutex).
		batches: make(chan *batch, cfg.QueueDepth*cfg.Job.BatchSize),
	}
	if cfg.Dir != "" {
		st, err := OpenStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		e.store = st
		if err := e.restore(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		e.workers.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// restore reloads persisted request records (and completed results)
// so a restarted service answers status/results queries for past
// work. Requests caught mid-flight by the previous shutdown are
// marked lost: their poses were never scored and the submitting
// client must retry.
func (e *Engine) restore() error {
	stored, err := e.store.Load()
	if err != nil {
		return err
	}
	for _, sr := range stored {
		r := &Request{
			ID:        sr.Record.ID,
			Target:    sr.Record.Target,
			Submitted: sr.Record.Submitted,
			completed: sr.Record.Completed,
			state:     sr.Record.State,
			preds:     sr.Preds,
			done:      make(chan struct{}),
		}
		if sr.Record.Error != "" {
			r.err = errors.New(sr.Record.Error)
		}
		if r.state == StateQueued {
			r.state = StateLost
			r.err = errors.New("serve: interrupted by service restart before scoring completed")
			rec := sr.Record
			rec.State = r.state
			rec.Error = r.err.Error()
			if err := e.store.SaveRequest(rec); err != nil {
				return err
			}
		}
		close(r.done) // every restored request is terminal
		e.reqs[r.ID] = r
		if n := requestSeq(r.ID); n > e.seq {
			e.seq = n
		}
	}
	return nil
}

// SubmitPoses admits pre-docked poses for scoring against the named
// target, appending them to the target's open batch. It returns as
// soon as the poses are batched (with any deadline timer armed), so a
// FakeClock test may Advance immediately after it returns.
func (e *Engine) SubmitPoses(targetName string, poses []screen.Pose) (*Request, error) {
	if len(poses) == 0 {
		return nil, fmt.Errorf("serve: empty submission")
	}
	if len(poses) > e.cfg.MaxPosesPerRequest {
		return nil, fmt.Errorf("serve: %d poses exceeds the %d-pose request limit (submit a batch job instead)", len(poses), e.cfg.MaxPosesPerRequest)
	}
	pocket := target.ByName(targetName)
	if pocket == nil {
		return nil, fmt.Errorf("serve: unknown target %q", targetName)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		return nil, ErrDraining
	}
	if e.reserved+len(poses) > e.capacity {
		e.stats.rejected()
		return nil, &OverloadError{RetryAfter: e.cfg.MaxWait}
	}
	tr, err := e.runtimeLocked(pocket)
	if err != nil {
		return nil, err
	}

	e.seq++
	r := &Request{
		ID:        fmt.Sprintf("r%06d", e.seq),
		Target:    targetName,
		Submitted: e.clock.Now(),
		preds:     make([]screen.Prediction, len(poses)),
		remaining: len(poses),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	e.reqs[r.ID] = r
	e.reqWG.Add(1)
	e.reserved += len(poses)
	if e.store != nil {
		if err := e.store.SaveRequest(r.recordLocked()); err != nil {
			// Roll the admission back; nothing was batched yet.
			delete(e.reqs, r.ID)
			e.reqWG.Done()
			e.reserved -= len(poses)
			return nil, err
		}
	}
	for i := range poses {
		e.appendPoseLocked(tr, poses[i], r, i)
	}
	return r, nil
}

// runtimeLocked returns the target's runtime, building its prefeature
// on first use and evicting the least-recently-used target beyond
// MaxTargets.
func (e *Engine) runtimeLocked(p *target.Pocket) (*targetRuntime, error) {
	if tr, ok := e.targets[p.Name]; ok {
		tr.lastUse = e.clock.Now()
		return tr, nil
	}
	for len(e.targets) >= e.cfg.MaxTargets {
		victim := ""
		for name, tr := range e.targets {
			// Never evict a target with an open batch: its deadline
			// timer holds a pointer into the runtime's flush state.
			if tr.open != nil {
				continue
			}
			if victim == "" || tr.lastUse.Before(e.targets[victim].lastUse) {
				victim = name
			}
		}
		if victim == "" {
			break // every runtime is mid-batch; admit the extra target
		}
		delete(e.targets, victim)
		e.stats.evictedTarget()
	}
	pre, err := screen.PrefeatureFor(e.cfg.Scorers, p, e.cfg.Job)
	if err != nil {
		return nil, err
	}
	tr := &targetRuntime{name: p.Name, pocket: p, pre: pre, lastUse: e.clock.Now()}
	e.targets[p.Name] = tr
	return tr, nil
}

// appendPoseLocked adds one pose to the target's open batch, opening
// a fresh batch (and arming its deadline synchronously, before Submit
// returns) when none is accumulating, and flushing on batch-full.
func (e *Engine) appendPoseLocked(tr *targetRuntime, ps screen.Pose, r *Request, slot int) {
	if tr.open == nil {
		tr.open = &batch{tr: tr, pre: tr.pre}
		gen := tr.gen
		ch := e.clock.After(e.cfg.MaxWait)
		go func() {
			<-ch
			e.deadlineFlush(tr, gen)
		}()
	}
	tr.open.poses = append(tr.open.poses, ps)
	tr.open.entries = append(tr.open.entries, batchEntry{req: r, slot: slot})
	if len(tr.open.poses) >= e.cfg.Job.BatchSize {
		e.flushLocked(tr, flushFull)
	}
}

// deadlineFlush fires when a batch's latency bound expires. The
// generation check makes it a no-op if the batch it was armed for was
// already flushed by any other path.
func (e *Engine) deadlineFlush(tr *targetRuntime, gen int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if tr.open == nil || tr.gen != gen {
		return
	}
	e.flushLocked(tr, flushDeadline)
}

// flushLocked dispatches the target's open batch to the workers.
func (e *Engine) flushLocked(tr *targetRuntime, cause flushCause) {
	b := tr.open
	tr.open = nil
	tr.gen++
	e.stats.flushed(cause, len(b.poses))
	e.batches <- b // never blocks: see the channel-capacity invariant
}

// worker is one scoring loop: it owns a warm screen.Session per
// target (bounded by MaxTargets, LRU-evicted) and scores batches as
// the batcher dispatches them. idx tags predictions' Rank column.
func (e *Engine) worker(idx int) {
	defer e.workers.Done()
	type warmSession struct {
		sess    *screen.Session
		lastUse time.Time
	}
	sessions := map[string]*warmSession{}
	for b := range e.batches {
		ws, ok := sessions[b.tr.name]
		if !ok {
			for len(sessions) >= e.cfg.MaxTargets {
				victim := ""
				for name, s := range sessions {
					if victim == "" || s.lastUse.Before(sessions[victim].lastUse) {
						victim = name
					}
				}
				delete(sessions, victim)
			}
			o := e.cfg.Job
			o.Prefeature = b.pre
			sess, err := screen.NewSession(e.cfg.Scorers, b.tr.pocket, o, idx)
			if err != nil {
				e.completeBatch(b, nil, err)
				continue
			}
			ws = &warmSession{sess: sess}
			sessions[b.tr.name] = ws
		}
		ws.lastUse = e.clock.Now()
		out := make([]screen.Prediction, len(b.poses))
		err := ws.sess.ScoreBatch(b.poses, out)
		e.completeBatch(b, out, err)
	}
}

// completeBatch routes scored predictions back to their requests,
// releases the batch's admission reservation and finishes any request
// whose last pose this batch carried.
func (e *Engine) completeBatch(b *batch, out []screen.Prediction, err error) {
	var finished []*Request
	e.mu.Lock()
	e.reserved -= len(b.poses)
	e.stats.scored(len(b.poses))
	for j, en := range b.entries {
		r := en.req
		if err != nil {
			r.err = err
		} else {
			r.preds[en.slot] = out[j]
		}
		r.remaining--
		if r.remaining == 0 {
			finished = append(finished, r)
		}
	}
	e.mu.Unlock()
	for _, r := range finished {
		e.finishRequest(r)
	}
}

// finishRequest persists the request's terminal record (and its
// result shard) and wakes every waiter. Persistence happens before
// the done channel closes, so a client that sees "done" can always
// read results — even from a restarted service.
func (e *Engine) finishRequest(r *Request) {
	e.mu.Lock()
	if r.err != nil {
		r.state = StateFailed
	} else {
		r.state = StateDone
	}
	r.completed = e.clock.Now()
	e.stats.latency(r.completed.Sub(r.Submitted))
	rec := r.recordLocked()
	preds := r.preds
	e.mu.Unlock()

	if e.store != nil {
		if r.err == nil {
			if err := e.store.SaveResults(r.ID, preds); err != nil {
				e.mu.Lock()
				r.state = StateFailed
				r.err = err
				rec = r.recordLocked()
				e.mu.Unlock()
			}
		}
		if err := e.store.SaveRequest(rec); err != nil && r.err == nil {
			e.mu.Lock()
			r.state = StateFailed
			r.err = err
			e.mu.Unlock()
		}
	}
	close(r.done)
	e.reqWG.Done()
}

// recordLocked snapshots the request's durable form. Caller holds
// e.mu (or has exclusive access during construction).
func (r *Request) recordLocked() RequestRecord {
	rec := RequestRecord{
		ID:        r.ID,
		Target:    r.Target,
		State:     r.state,
		Poses:     len(r.preds),
		Submitted: r.Submitted,
		Completed: r.completed,
	}
	if r.err != nil {
		rec.Error = r.err.Error()
	}
	return rec
}

// Request returns the engine's view of a request by ID.
func (e *Engine) Request(id string) (*Request, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.reqs[id]
	return r, ok
}

// Snapshot returns a consistent status view of the request.
func (e *Engine) Snapshot(r *Request) RequestStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := RequestStatus{
		ID:        r.ID,
		Target:    r.Target,
		State:     r.state,
		Poses:     len(r.preds),
		Scored:    len(r.preds) - r.remaining,
		Submitted: r.Submitted,
		Completed: r.completed,
	}
	if r.err != nil {
		st.Error = r.err.Error()
	}
	return st
}

// Results returns the request's predictions, pose-ordered. It fails
// until the request completes; long-polling callers wait on Done
// first.
func (e *Engine) Results(r *Request) ([]screen.Prediction, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch r.state {
	case StateDone:
		return r.preds, nil
	case StateFailed, StateLost:
		return nil, r.err
	default:
		return nil, fmt.Errorf("serve: request %s is still scoring (%d/%d poses)", r.ID, len(r.preds)-r.remaining, len(r.preds))
	}
}

// ServiceStatus is the /v1/status payload: live queue state plus the
// throughput/latency window.
type ServiceStatus struct {
	Draining      bool           `json:"draining"`
	ReservedPoses int            `json:"reserved_poses"`
	Capacity      int            `json:"capacity_poses"`
	BatchSize     int            `json:"batch_size"`
	MaxWaitMS     float64        `json:"max_wait_ms"`
	Workers       int            `json:"workers"`
	Targets       []string       `json:"targets,omitempty"`
	Requests      map[string]int `json:"requests"`
	Stats         StatsSnapshot  `json:"stats"`
}

// Status summarizes the live engine.
func (e *Engine) Status() ServiceStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := ServiceStatus{
		Draining:      e.draining,
		ReservedPoses: e.reserved,
		Capacity:      e.capacity,
		BatchSize:     e.cfg.Job.BatchSize,
		MaxWaitMS:     float64(e.cfg.MaxWait) / float64(time.Millisecond),
		Workers:       e.cfg.Workers,
		Requests:      map[string]int{},
		Stats:         e.stats.snapshot(),
	}
	for name := range e.targets {
		st.Targets = append(st.Targets, name)
	}
	for _, r := range e.reqs {
		st.Requests[r.state]++
	}
	return st
}

// Draining reports whether the engine has begun shutting down.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Drain shuts the engine down gracefully: refuse new submissions,
// flush every partial batch exactly once, score everything admitted,
// persist every finished request, then stop the workers. It is the
// SIGTERM path and is safe to call more than once; every call blocks
// until the drain completes.
func (e *Engine) Drain() {
	e.drainOnce.Do(func() {
		e.mu.Lock()
		e.draining = true
		for _, tr := range e.targets {
			if tr.open != nil {
				e.flushLocked(tr, flushDrain)
			}
		}
		e.mu.Unlock()
		e.reqWG.Wait()
		close(e.batches)
	})
	e.workers.Wait()
}

// requestSeq parses the numeric suffix of a request ID ("r000017"),
// so a restarted engine continues its ID sequence without collisions.
func requestSeq(id string) int {
	if len(id) < 2 || id[0] != 'r' {
		return 0
	}
	n := 0
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
