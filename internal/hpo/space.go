// Package hpo implements the paper's distributed, genetic
// hyper-parameter optimization: the Table 1 search spaces and the
// Population-Based Bandits (PB2) algorithm — population training with
// quantile-based exploitation and a time-varying Gaussian-process
// bandit for the exploration step (Parker-Holder et al. 2020).
package hpo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind is the type of one hyper-parameter dimension.
type Kind int

// Hyper-parameter kinds (Table 1 column "range of values": binary,
// a list of options, or uniformly sampled continuous variables).
const (
	Bool Kind = iota
	Choice
	Uniform
	LogUniform
)

// Param is one dimension of a search space.
type Param struct {
	Name    string
	Kind    Kind
	Options []float64 // Choice: allowed values
	Strings []string  // Choice over strings (optimizer, activation)
	Lo, Hi  float64   // Uniform / LogUniform bounds
}

// Space is an ordered hyper-parameter search space.
type Space struct {
	Params []Param
}

// Config is one concrete assignment. Numeric values are float64;
// string choices are stored under the same name in Strs.
type Config struct {
	Num  map[string]float64
	Strs map[string]string
}

// Clone deep-copies the config.
func (c Config) Clone() Config {
	out := Config{Num: map[string]float64{}, Strs: map[string]string{}}
	for k, v := range c.Num {
		out.Num[k] = v
	}
	for k, v := range c.Strs {
		out.Strs[k] = v
	}
	return out
}

// Sample draws a uniform random configuration.
func (s *Space) Sample(rng *rand.Rand) Config {
	c := Config{Num: map[string]float64{}, Strs: map[string]string{}}
	for _, p := range s.Params {
		switch p.Kind {
		case Bool:
			c.Num[p.Name] = float64(rng.Intn(2))
		case Choice:
			if len(p.Strings) > 0 {
				c.Strs[p.Name] = p.Strings[rng.Intn(len(p.Strings))]
			} else {
				c.Num[p.Name] = p.Options[rng.Intn(len(p.Options))]
			}
		case Uniform:
			c.Num[p.Name] = p.Lo + rng.Float64()*(p.Hi-p.Lo)
		case LogUniform:
			c.Num[p.Name] = math.Exp(math.Log(p.Lo) + rng.Float64()*(math.Log(p.Hi)-math.Log(p.Lo)))
		}
	}
	return c
}

// continuous returns the ordered continuous (Uniform/LogUniform)
// params — the subspace PB2's GP bandit optimizes.
func (s *Space) continuous() []Param {
	var out []Param
	for _, p := range s.Params {
		if p.Kind == Uniform || p.Kind == LogUniform {
			out = append(out, p)
		}
	}
	return out
}

// vectorize maps the continuous subspace of c to [0,1]^d.
func (s *Space) vectorize(c Config) []float64 {
	var v []float64
	for _, p := range s.continuous() {
		x := c.Num[p.Name]
		switch p.Kind {
		case Uniform:
			v = append(v, (x-p.Lo)/(p.Hi-p.Lo))
		case LogUniform:
			v = append(v, (math.Log(x)-math.Log(p.Lo))/(math.Log(p.Hi)-math.Log(p.Lo)))
		}
	}
	return v
}

// devectorize writes a [0,1]^d point back into the config's continuous
// params, clamping to bounds.
func (s *Space) devectorize(c Config, v []float64) Config {
	out := c.Clone()
	for i, p := range s.continuous() {
		x := math.Max(0, math.Min(1, v[i]))
		switch p.Kind {
		case Uniform:
			out.Num[p.Name] = p.Lo + x*(p.Hi-p.Lo)
		case LogUniform:
			out.Num[p.Name] = math.Exp(math.Log(p.Lo) + x*(math.Log(p.Hi)-math.Log(p.Lo)))
		}
	}
	return out
}

// String renders the config deterministically (sorted keys).
func (c Config) String() string {
	var keys []string
	for k := range c.Num {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%.4g ", k, c.Num[k])
	}
	var skeys []string
	for k := range c.Strs {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	for _, k := range skeys {
		out += fmt.Sprintf("%s=%s ", k, c.Strs[k])
	}
	return out
}
