package hpo

// Table 1 of the paper: the hyper-parameters and value ranges the PB2
// optimization considered for each model. The paper-scale spaces are
// reported verbatim for the Table 1 reproduction; the repro-scale
// spaces shrink layer widths (not ranges of training dynamics) so
// populations train on a CPU.

// CNN3DSpacePaper is the 3D-CNN column of Table 1.
func CNN3DSpacePaper() *Space {
	return &Space{Params: []Param{
		{Name: "optimizer", Kind: Choice, Strings: []string{"adam"}},
		{Name: "activation", Kind: Choice, Strings: []string{"relu"}},
		{Name: "batch_size", Kind: Choice, Options: []float64{8, 12, 24}},
		{Name: "learning_rate", Kind: LogUniform, Lo: 1e-6, Hi: 1e-4},
		{Name: "epochs", Kind: Uniform, Lo: 0, Hi: 150},
		{Name: "batch_norm", Kind: Bool},
		{Name: "dropout1", Kind: Choice, Options: []float64{0.25}},
		{Name: "dropout2", Kind: Choice, Options: []float64{0.125}},
		{Name: "dense_nodes", Kind: Choice, Options: []float64{40, 64, 88, 104, 128}},
		{Name: "residual1", Kind: Bool},
		{Name: "residual2", Kind: Bool},
		{Name: "conv_filters1", Kind: Choice, Options: []float64{32, 64, 96}},
		{Name: "conv_filters2", Kind: Choice, Options: []float64{64, 96, 128}},
	}}
}

// SGCNNSpacePaper is the SG-CNN column of Table 1.
func SGCNNSpacePaper() *Space {
	return &Space{Params: []Param{
		{Name: "optimizer", Kind: Choice, Strings: []string{"adam"}},
		{Name: "activation", Kind: Choice, Strings: []string{"relu"}},
		{Name: "batch_size", Kind: Choice, Options: []float64{4, 8, 12, 16}},
		{Name: "learning_rate", Kind: LogUniform, Lo: 2e-4, Hi: 2e-2},
		{Name: "epochs", Kind: Uniform, Lo: 0, Hi: 350},
		{Name: "cov_k", Kind: Choice, Options: []float64{2, 3, 4, 5, 6, 7, 8}},
		{Name: "noncov_k", Kind: Choice, Options: []float64{2, 3, 4, 5, 6, 7, 8}},
		{Name: "cov_threshold", Kind: Uniform, Lo: 1.2, Hi: 5.9},
		{Name: "noncov_threshold", Kind: Uniform, Lo: 1.2, Hi: 5.9},
		{Name: "cov_gather_width", Kind: Choice, Options: []float64{8, 24, 40, 64, 88, 104, 128}},
		{Name: "noncov_gather_width", Kind: Choice, Options: []float64{8, 24, 40, 64, 88, 104, 128}},
	}}
}

// FusionSpacePaper is the Fusion column of Table 1.
func FusionSpacePaper() *Space {
	return &Space{Params: []Param{
		{Name: "optimizer", Kind: Choice, Strings: []string{"adam", "adamw", "rmsprop", "adadelta"}},
		{Name: "activation", Kind: Choice, Strings: []string{"relu", "lrelu", "selu"}},
		{Name: "batch_size", Kind: Choice, Options: []float64{1, 2, 4, 5, 8, 12, 16, 24, 28, 34, 38, 48, 56}},
		{Name: "learning_rate", Kind: LogUniform, Lo: 1e-8, Hi: 1e-3},
		{Name: "epochs", Kind: Uniform, Lo: 0, Hi: 500},
		{Name: "model_specific_layers", Kind: Bool},
		{Name: "pretrained", Kind: Bool},
		{Name: "batch_norm", Kind: Bool},
		{Name: "dropout1", Kind: Uniform, Lo: 0, Hi: 0.50},
		{Name: "dropout2", Kind: Uniform, Lo: 0, Hi: 0.25},
		{Name: "dropout3", Kind: Uniform, Lo: 0, Hi: 0.125},
		{Name: "num_fusion_layers", Kind: Choice, Options: []float64{3, 4, 5}},
		{Name: "dense_nodes", Kind: Choice, Options: []float64{8, 24, 40, 64, 88, 104, 128}},
		{Name: "residual_fusion", Kind: Bool},
	}}
}

// SGCNNSpaceRepro is the repro-scale SG-CNN space: training dynamics
// ranges preserved, widths shrunk ~4-8x, epoch budget shrunk to CPU
// scale.
func SGCNNSpaceRepro() *Space {
	return &Space{Params: []Param{
		{Name: "batch_size", Kind: Choice, Options: []float64{4, 8, 12, 16}},
		{Name: "learning_rate", Kind: LogUniform, Lo: 2e-4, Hi: 2e-2},
		{Name: "cov_k", Kind: Choice, Options: []float64{1, 2, 3}},
		{Name: "noncov_k", Kind: Choice, Options: []float64{1, 2, 3}},
		{Name: "cov_threshold", Kind: Uniform, Lo: 1.2, Hi: 5.9},
		{Name: "noncov_threshold", Kind: Uniform, Lo: 1.2, Hi: 5.9},
		{Name: "cov_gather_width", Kind: Choice, Options: []float64{4, 8, 12, 16}},
		{Name: "noncov_gather_width", Kind: Choice, Options: []float64{8, 16, 24, 32}},
	}}
}

// CNN3DSpaceRepro is the repro-scale 3D-CNN space.
func CNN3DSpaceRepro() *Space {
	return &Space{Params: []Param{
		{Name: "batch_size", Kind: Choice, Options: []float64{8, 12, 24}},
		{Name: "learning_rate", Kind: LogUniform, Lo: 1e-5, Hi: 1e-2},
		{Name: "batch_norm", Kind: Bool},
		{Name: "dense_nodes", Kind: Choice, Options: []float64{16, 24, 32, 48}},
		{Name: "residual1", Kind: Bool},
		{Name: "residual2", Kind: Bool},
		{Name: "conv_filters1", Kind: Choice, Options: []float64{4, 8, 12}},
		{Name: "conv_filters2", Kind: Choice, Options: []float64{8, 16, 24}},
	}}
}

// FusionSpaceRepro is the repro-scale fusion space.
func FusionSpaceRepro() *Space {
	return &Space{Params: []Param{
		{Name: "optimizer", Kind: Choice, Strings: []string{"adam", "adamw", "rmsprop", "adadelta"}},
		{Name: "activation", Kind: Choice, Strings: []string{"relu", "lrelu", "selu"}},
		{Name: "batch_size", Kind: Choice, Options: []float64{1, 2, 4, 8, 12, 16}},
		{Name: "learning_rate", Kind: LogUniform, Lo: 1e-6, Hi: 1e-2},
		{Name: "model_specific_layers", Kind: Bool},
		{Name: "pretrained", Kind: Bool},
		{Name: "dropout1", Kind: Uniform, Lo: 0, Hi: 0.50},
		{Name: "dropout2", Kind: Uniform, Lo: 0, Hi: 0.25},
		{Name: "dropout3", Kind: Uniform, Lo: 0, Hi: 0.125},
		{Name: "num_fusion_layers", Kind: Choice, Options: []float64{3, 4, 5}},
		{Name: "dense_nodes", Kind: Choice, Options: []float64{8, 16, 24, 32}},
		{Name: "residual_fusion", Kind: Bool},
	}}
}
