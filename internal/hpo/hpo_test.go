package hpo

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpaceSampleWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := FusionSpacePaper()
	for i := 0; i < 100; i++ {
		c := s.Sample(rng)
		lr := c.Num["learning_rate"]
		if lr < 1e-8 || lr > 1e-3 {
			t.Fatalf("learning rate %v out of bounds", lr)
		}
		d1 := c.Num["dropout1"]
		if d1 < 0 || d1 > 0.5 {
			t.Fatalf("dropout1 %v out of bounds", d1)
		}
		if c.Strs["optimizer"] == "" {
			t.Fatal("optimizer not sampled")
		}
		bn := c.Num["batch_norm"]
		if bn != 0 && bn != 1 {
			t.Fatalf("bool param = %v", bn)
		}
		found := false
		for _, o := range []float64{1, 2, 4, 5, 8, 12, 16, 24, 28, 34, 38, 48, 56} {
			if c.Num["batch_size"] == o {
				found = true
			}
		}
		if !found {
			t.Fatalf("batch size %v not in Table 1 options", c.Num["batch_size"])
		}
	}
}

func TestVectorizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := SGCNNSpaceRepro()
	c := s.Sample(rng)
	v := s.vectorize(c)
	for _, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("vectorized value %v outside [0,1]", x)
		}
	}
	c2 := s.devectorize(c, v)
	for _, p := range s.continuous() {
		rel := math.Abs(c2.Num[p.Name]-c.Num[p.Name]) / math.Max(1e-12, math.Abs(c.Num[p.Name]))
		if rel > 1e-9 {
			t.Fatalf("%s round trip %v -> %v", p.Name, c.Num[p.Name], c2.Num[p.Name])
		}
	}
}

func TestDevectorizeClamps(t *testing.T) {
	s := &Space{Params: []Param{{Name: "x", Kind: Uniform, Lo: 2, Hi: 4}}}
	c := Config{Num: map[string]float64{"x": 3}, Strs: map[string]string{}}
	out := s.devectorize(c, []float64{1.7})
	if out.Num["x"] != 4 {
		t.Fatalf("clamp failed: %v", out.Num["x"])
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	c := Config{Num: map[string]float64{"a": 1}, Strs: map[string]string{"b": "x"}}
	d := c.Clone()
	d.Num["a"] = 2
	d.Strs["b"] = "y"
	if c.Num["a"] != 1 || c.Strs["b"] != "x" {
		t.Fatal("Clone must deep-copy")
	}
}

func TestGPFitsQuadratic(t *testing.T) {
	// GP posterior mean should track a smooth function near data.
	g := newTVGP()
	var xs [][]float64
	var ts, ys []float64
	f := func(x float64) float64 { return -(x - 0.6) * (x - 0.6) }
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x})
		ts = append(ts, 0)
		ys = append(ys, f(x))
	}
	if err := g.Fit(xs, ts, ys); err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.55}, 0)
	if math.Abs(mu-f(0.55)) > 0.05 {
		t.Fatalf("GP mean %v, want ~%v", mu, f(0.55))
	}
	// Variance should be higher away from data than at data.
	_, atData := g.Predict([]float64{0.5}, 0)
	_, farAway := g.Predict([]float64{0.5}, 20) // distant in time
	if farAway <= atData {
		t.Fatalf("time-varying variance should grow with time distance: %v vs %v", farAway, atData)
	}
}

func TestGPEmptyPredicts(t *testing.T) {
	g := newTVGP()
	if err := g.Fit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	mu, s2 := g.Predict([]float64{0.5}, 0)
	if mu != 0 || s2 != 1 {
		t.Fatalf("empty GP prior = %v/%v", mu, s2)
	}
}

func TestGPMismatchedLengths(t *testing.T) {
	g := newTVGP()
	if err := g.Fit([][]float64{{1}}, []float64{0, 1}, []float64{0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestInvert(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	inv, err := invert(a)
	if err != nil {
		t.Fatal(err)
	}
	// A * A^-1 = I
	id := [][]float64{
		{4*inv[0][0] + 1*inv[1][0], 4*inv[0][1] + 1*inv[1][1]},
		{1*inv[0][0] + 3*inv[1][0], 1*inv[0][1] + 3*inv[1][1]},
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(id[i][j]-want) > 1e-9 {
				t.Fatalf("A*Ainv != I: %v", id)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	if _, err := invert([][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Fatal("singular matrix must error")
	}
}

// PB2 on a synthetic objective: loss is minimized at lr*=0.01 on a log
// scale; state carries cumulative training benefit so exploitation
// matters.
func TestPB2OptimizesSyntheticObjective(t *testing.T) {
	space := &Space{Params: []Param{
		{Name: "lr", Kind: LogUniform, Lo: 1e-5, Hi: 1e-1},
		{Name: "width", Kind: Choice, Options: []float64{8, 16, 32}},
	}}
	obj := func(cfg Config, prev State, seed int64) (State, float64) {
		progress := 0.0
		if prev != nil {
			progress = prev.(float64)
		}
		lr := cfg.Num["lr"]
		quality := math.Abs(math.Log10(lr) - math.Log10(0.01)) // 0 is best
		progress += 1.0
		loss := 2.0*quality/progress + 0.5*quality
		return progress, loss
	}
	o := Options{Population: 10, QuantileFraction: 0.5, Rounds: 6, UCBBeta: 1.0, Seed: 3}
	res := Run(space, obj, o)
	bestLR := res.Best.Config.Num["lr"]
	if math.Abs(math.Log10(bestLR)-math.Log10(0.01)) > 1.0 {
		t.Fatalf("PB2 best lr = %v, want within a decade of 0.01", bestLR)
	}
	// Population-best loss must improve across rounds.
	first := math.Inf(1)
	last := math.Inf(1)
	for _, ob := range res.History {
		if ob.Round == 0 && ob.Loss < first {
			first = ob.Loss
		}
		if ob.Round == o.Rounds-1 && ob.Loss < last {
			last = ob.Loss
		}
	}
	if last >= first {
		t.Fatalf("PB2 did not improve: round0 best %v, final best %v", first, last)
	}
}

func TestPB2HistoryComplete(t *testing.T) {
	space := &Space{Params: []Param{{Name: "x", Kind: Uniform, Lo: 0, Hi: 1}}}
	obj := func(cfg Config, prev State, seed int64) (State, float64) {
		return nil, cfg.Num["x"]
	}
	o := Options{Population: 4, QuantileFraction: 0.5, Rounds: 3, UCBBeta: 1, Seed: 4}
	res := Run(space, obj, o)
	if len(res.History) != 12 {
		t.Fatalf("history has %d entries, want 12", len(res.History))
	}
	if len(res.Population) != 4 {
		t.Fatalf("population %d", len(res.Population))
	}
	// Best must be the minimum observed final-round loss.
	for _, tr := range res.Population {
		if tr.Loss < res.Best.Loss {
			t.Fatal("Best is not the population minimum")
		}
	}
}

func TestPB2ExploitsCopiesState(t *testing.T) {
	// An objective where progress only accumulates; losers should
	// inherit winners' progress rather than restarting.
	space := &Space{Params: []Param{{Name: "x", Kind: Uniform, Lo: 0, Hi: 1}}}
	obj := func(cfg Config, prev State, seed int64) (State, float64) {
		p := 0.0
		if prev != nil {
			p = prev.(float64)
		}
		p += cfg.Num["x"] // progress faster with bigger x
		return p, 10 - p
	}
	res := Run(space, obj, Options{Population: 6, QuantileFraction: 0.5, Rounds: 5, UCBBeta: 1, Seed: 5})
	// After 5 rounds with exploitation the best progress should exceed
	// what the best x alone could reach without inheritance (5 * max x
	// with x<=1 gives 5; exploitation can only help reach closer to 5).
	best := res.Best.State.(float64)
	if best < 2.5 {
		t.Fatalf("best progress %v; exploitation appears broken", best)
	}
}

func TestTable1SpacesCoverPaperRows(t *testing.T) {
	cnn := CNN3DSpacePaper()
	sg := SGCNNSpacePaper()
	fu := FusionSpacePaper()
	if len(fu.Params) < 13 {
		t.Fatalf("fusion space has %d rows", len(fu.Params))
	}
	// Spot-check paper values.
	find := func(s *Space, name string) Param {
		for _, p := range s.Params {
			if p.Name == name {
				return p
			}
		}
		t.Fatalf("param %s missing", name)
		return Param{}
	}
	if p := find(cnn, "learning_rate"); p.Lo != 1e-6 || p.Hi != 1e-4 {
		t.Fatal("3D-CNN learning-rate range drifted from Table 1")
	}
	if p := find(sg, "learning_rate"); p.Lo != 2e-4 || p.Hi != 2e-2 {
		t.Fatal("SG-CNN learning-rate range drifted from Table 1")
	}
	if p := find(fu, "learning_rate"); p.Lo != 1e-8 || p.Hi != 1e-3 {
		t.Fatal("Fusion learning-rate range drifted from Table 1")
	}
	if p := find(fu, "optimizer"); len(p.Strings) != 4 {
		t.Fatal("Fusion must offer 4 optimizers")
	}
	if p := find(sg, "cov_k"); len(p.Options) != 7 {
		t.Fatal("K options must be 2..8")
	}
	if p := find(sg, "noncov_threshold"); p.Lo != 1.2 || p.Hi != 5.9 {
		t.Fatal("neighbor threshold range drifted from Table 1")
	}
}

func TestConfigStringDeterministic(t *testing.T) {
	c := Config{Num: map[string]float64{"b": 2, "a": 1}, Strs: map[string]string{"z": "q"}}
	if c.String() != c.String() {
		t.Fatal("String must be deterministic")
	}
}

func TestGPVarianceShrinksNearData(t *testing.T) {
	g := newTVGP()
	if err := g.Fit([][]float64{{0.5}}, []float64{0}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	_, near := g.Predict([]float64{0.5}, 0)
	_, far := g.Predict([]float64{0.0}, 0)
	if near >= far {
		t.Fatalf("variance near data (%v) must be below far (%v)", near, far)
	}
}

func TestUCBGrowsWithBeta(t *testing.T) {
	g := newTVGP()
	if err := g.Fit([][]float64{{0.2}, {0.8}}, []float64{0, 0}, []float64{0.5, -0.5}); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5}
	if g.UCB(x, 0, 2) <= g.UCB(x, 0, 0.5) {
		t.Fatal("larger beta must give larger UCB")
	}
}

func TestPerturbVecStaysInUnitBox(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := []float64{0, 1, 0.5}
	for i := 0; i < 200; i++ {
		v := perturbVec(base, rng)
		for _, x := range v {
			if x < 0 || x > 1 {
				t.Fatalf("perturbed value %v outside [0,1]", x)
			}
		}
	}
}

func TestPB2SingleRound(t *testing.T) {
	space := &Space{Params: []Param{{Name: "x", Kind: Uniform, Lo: 0, Hi: 1}}}
	obj := func(cfg Config, prev State, seed int64) (State, float64) {
		return nil, cfg.Num["x"]
	}
	res := Run(space, obj, Options{Population: 3, QuantileFraction: 0.5, Rounds: 1, UCBBeta: 1, Seed: 8})
	if len(res.History) != 3 {
		t.Fatalf("single round history %d", len(res.History))
	}
}
