package hpo

import (
	"fmt"
	"math"
)

// tvGP is the time-varying Gaussian process of PB2: a squared-
// exponential kernel over normalized hyper-parameter vectors
// multiplied by a geometric decay over the time (epoch) distance, so
// stale observations lose influence — the bandit treats the reward
// surface as a time-varying function.
type tvGP struct {
	lengthscale float64
	timeDecay   float64 // per unit time-distance factor in (0,1]
	noise       float64

	xs   [][]float64
	ts   []float64
	ys   []float64
	kInv [][]float64
	mean float64
}

func newTVGP() *tvGP {
	return &tvGP{lengthscale: 0.35, timeDecay: 0.9, noise: 1e-3}
}

func (g *tvGP) kernel(x1 []float64, t1 float64, x2 []float64, t2 float64) float64 {
	d2 := 0.0
	for i := range x1 {
		d := x1[i] - x2[i]
		d2 += d * d
	}
	se := math.Exp(-d2 / (2 * g.lengthscale * g.lengthscale))
	tv := math.Pow(g.timeDecay, math.Abs(t1-t2))
	return se * tv
}

// Fit conditions the GP on observations (x_i, t_i) -> y_i.
func (g *tvGP) Fit(xs [][]float64, ts, ys []float64) error {
	if len(xs) != len(ts) || len(ts) != len(ys) {
		return fmt.Errorf("hpo: GP observation lengths differ")
	}
	n := len(xs)
	g.xs, g.ts = xs, ts
	g.mean = 0
	for _, y := range ys {
		g.mean += y
	}
	if n > 0 {
		g.mean /= float64(n)
	}
	g.ys = make([]float64, n)
	for i, y := range ys {
		g.ys[i] = y - g.mean
	}
	if n == 0 {
		g.kInv = nil
		return nil
	}
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = g.kernel(xs[i], ts[i], xs[j], ts[j])
		}
		k[i][i] += g.noise
	}
	inv, err := invert(k)
	if err != nil {
		return err
	}
	g.kInv = inv
	return nil
}

// Predict returns the posterior mean and variance at (x, t).
func (g *tvGP) Predict(x []float64, t float64) (mu, sigma2 float64) {
	n := len(g.xs)
	if n == 0 {
		return g.mean, 1
	}
	kv := make([]float64, n)
	for i := range kv {
		kv[i] = g.kernel(x, t, g.xs[i], g.ts[i])
	}
	// mu = k^T K^-1 y ; sigma2 = k(x,x) - k^T K^-1 k
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += g.kInv[i][j] * kv[j]
		}
		tmp[i] = s
	}
	mu = g.mean
	for i := 0; i < n; i++ {
		mu += tmp[i] * g.ys[i]
	}
	sigma2 = g.kernel(x, t, x, t)
	for i := 0; i < n; i++ {
		sigma2 -= kv[i] * tmp[i]
	}
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	return mu, sigma2
}

// UCB is the upper confidence bound acquisition value at (x, t).
func (g *tvGP) UCB(x []float64, t, beta float64) float64 {
	mu, s2 := g.Predict(x, t)
	return mu + beta*math.Sqrt(s2)
}

// invert computes the inverse of a symmetric positive-definite matrix
// via Gauss-Jordan with partial pivoting.
func invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[p][col]) {
				p = r
			}
		}
		if math.Abs(aug[p][col]) < 1e-12 {
			return nil, fmt.Errorf("hpo: singular kernel matrix at column %d", col)
		}
		aug[col], aug[p] = aug[p], aug[col]
		inv := 1 / aug[col][col]
		for c := 0; c < 2*n; c++ {
			aug[col][c] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < 2*n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = aug[i][n:]
	}
	return out, nil
}
