package hpo

import (
	"math"
	"math/rand"
	"testing"
)

// quadObjective is a synthetic objective with one continuous optimum:
// loss = (x - 0.7)^2 + small per-state training bonus, so both the
// explore step and state reuse matter.
func quadObjective(paramName string) Objective {
	return func(cfg Config, prev State, seed int64) (State, float64) {
		steps := 0
		if prev != nil {
			steps = prev.(int)
		}
		steps++
		x := cfg.Num[paramName]
		loss := (x-0.7)*(x-0.7) + 0.5/float64(steps)
		return steps, loss
	}
}

func quadSpace() *Space {
	return &Space{Params: []Param{{Name: "x", Kind: Uniform, Lo: 0, Hi: 1}}}
}

func TestPBTOptimizesSyntheticObjective(t *testing.T) {
	res := RunPBT(quadSpace(), quadObjective("x"), Options{
		Population: 8, QuantileFraction: 0.5, Rounds: 6, Seed: 3,
	})
	if res.Best.Loss > 0.25 {
		t.Fatalf("PBT best loss %.3f did not approach the optimum", res.Best.Loss)
	}
	if got := res.Best.Config.Num["x"]; math.Abs(got-0.7) > 0.35 {
		t.Fatalf("PBT best x = %.3f, want near 0.7", got)
	}
}

func TestPBTExploitsState(t *testing.T) {
	// After exploitation, losers inherit winners' accumulated training
	// steps, so every survivor's state advances monotonically: by the
	// final round no trial should be on its first interval.
	res := RunPBT(quadSpace(), quadObjective("x"), Options{
		Population: 6, QuantileFraction: 0.5, Rounds: 5, Seed: 11,
	})
	for _, tr := range res.Population {
		if steps := tr.State.(int); steps < 2 {
			t.Fatalf("trial %d finished with %d training intervals; exploitation should carry state", tr.ID, steps)
		}
	}
}

func TestPBTHistoryComplete(t *testing.T) {
	o := Options{Population: 5, QuantileFraction: 0.4, Rounds: 4, Seed: 7}
	res := RunPBT(quadSpace(), quadObjective("x"), o)
	if want := o.Population * o.Rounds; len(res.History) != want {
		t.Fatalf("history has %d observations, want %d", len(res.History), want)
	}
	for _, ob := range res.History {
		if ob.Round < 0 || ob.Round >= o.Rounds || ob.TrialID < 0 || ob.TrialID >= o.Population {
			t.Fatalf("observation out of range: %+v", ob)
		}
	}
}

func TestRandomSearchBudgetAndBest(t *testing.T) {
	o := Options{Population: 6, QuantileFraction: 0.5, Rounds: 3, Seed: 5}
	res := RunRandomSearch(quadSpace(), quadObjective("x"), o)
	if want := o.Population * o.Rounds; len(res.History) != want {
		t.Fatalf("random search used %d evaluations, want %d", len(res.History), want)
	}
	// Best is the minimum final loss over the population.
	min := math.Inf(1)
	for _, tr := range res.Population {
		min = math.Min(min, tr.Loss)
	}
	if res.Best.Loss != min {
		t.Fatalf("Best.Loss = %v, want population minimum %v", res.Best.Loss, min)
	}
}

func TestRandomSearchNeverMutatesConfigs(t *testing.T) {
	// Random search has no explore step: every trial's config in the
	// last history round equals its config in the first round.
	o := Options{Population: 4, QuantileFraction: 0.5, Rounds: 3, Seed: 9}
	res := RunRandomSearch(quadSpace(), quadObjective("x"), o)
	first := make(map[int]float64)
	for _, ob := range res.History {
		x := ob.Config.Num["x"]
		if ob.Round == 0 {
			first[ob.TrialID] = x
			continue
		}
		if got, ok := first[ob.TrialID]; !ok || got != x {
			t.Fatalf("trial %d config changed across rounds: %v -> %v", ob.TrialID, got, x)
		}
	}
}

func TestAblationLadderOnSyntheticObjective(t *testing.T) {
	// On the synthetic objective, population methods must beat random
	// search at equal budget on average across seeds (PB2 vs PBT is
	// measured, not asserted: their gap is small at toy scale).
	var pb2Sum, pbtSum, randSum float64
	const seeds = 8
	for s := int64(0); s < seeds; s++ {
		o := Options{Population: 6, QuantileFraction: 0.5, Rounds: 5, UCBBeta: 1, Seed: 100 + s}
		pb2Sum += Run(quadSpace(), quadObjective("x"), o).Best.Loss
		pbtSum += RunPBT(quadSpace(), quadObjective("x"), o).Best.Loss
		randSum += RunRandomSearch(quadSpace(), quadObjective("x"), o).Best.Loss
	}
	pb2, pbt, rnd := pb2Sum/seeds, pbtSum/seeds, randSum/seeds
	t.Logf("mean best loss: PB2 %.4f, PBT %.4f, random %.4f", pb2, pbt, rnd)
	if pb2 > rnd {
		t.Errorf("PB2 (%.4f) should beat random search (%.4f) at equal budget", pb2, rnd)
	}
	if pbt > rnd {
		t.Errorf("PBT (%.4f) should beat random search (%.4f) at equal budget", pbt, rnd)
	}
}

func TestDefaultOptionsMatchPaperSettings(t *testing.T) {
	o := DefaultOptions()
	if o.QuantileFraction != 0.5 {
		t.Fatalf("paper initialized PB2 with a 50%% quantile fraction, got %v", o.QuantileFraction)
	}
	if o.Population < 2 || o.Rounds < 1 {
		t.Fatalf("degenerate defaults: %+v", o)
	}
}

func TestReproSpacesSampleWithinPaperRanges(t *testing.T) {
	// The *Repro spaces shrink layer widths but must keep every sample
	// inside its declared bounds, like the paper-scale spaces.
	rng := rand.New(rand.NewSource(4))
	for _, space := range []*Space{CNN3DSpaceRepro(), SGCNNSpaceRepro(), FusionSpaceRepro()} {
		for trial := 0; trial < 25; trial++ {
			cfg := space.Sample(rng)
			for _, p := range space.Params {
				switch p.Kind {
				case Uniform, LogUniform:
					v := cfg.Num[p.Name]
					if v < p.Lo-1e-12 || v > p.Hi+1e-12 {
						t.Fatalf("%s: sampled %v outside [%v, %v]", p.Name, v, p.Lo, p.Hi)
					}
				}
			}
		}
	}
}
