package hpo

import (
	"math/rand"
	"sort"
)

// State is the opaque model state a trial carries between perturbation
// intervals (network weights, optimizer moments).
type State interface{}

// Objective trains a trial for one perturbation interval: it receives
// the trial's config and previous state (nil on the first interval)
// and returns the updated state and the validation-set MSE (the
// paper's objective function Q).
type Objective func(cfg Config, prev State, seed int64) (State, float64)

// Trial is one population member.
type Trial struct {
	ID     int
	Config Config
	State  State
	Loss   float64 // latest validation loss
	Frozen bool    // finished trials keep their state
}

// Options configures a PB2 run. The paper initialized PB2 with a
// quantile fraction of 50%, time scale in epochs and a perturbation
// interval of 100 epochs.
type Options struct {
	Population       int
	QuantileFraction float64 // bottom fraction exploits/explores
	Rounds           int     // perturbation intervals
	UCBBeta          float64
	Seed             int64
}

// DefaultOptions returns the paper's PB2 settings at repro scale.
func DefaultOptions() Options {
	return Options{Population: 8, QuantileFraction: 0.5, Rounds: 4, UCBBeta: 1.0, Seed: 1}
}

// Result is the outcome of a PB2 run.
type Result struct {
	Best       Trial
	Population []Trial
	// History records (round, trialID, loss) tuples for analysis.
	History []Observation
}

// Observation is one trial evaluation.
type Observation struct {
	Round   int
	TrialID int
	Config  Config
	Loss    float64
}

// Run executes the PB2 loop: random initial population; each round
// every trial trains one perturbation interval; under-performing
// trials (below the quantile fraction) clone a top performer's state
// (exploit) and select new continuous hyper-parameters by maximizing
// the time-varying GP-UCB over reward improvement (explore).
// Categorical hyper-parameters are inherited from the exploited trial
// and resampled with probability 0.25.
func Run(space *Space, obj Objective, o Options) *Result {
	rng := rand.New(rand.NewSource(o.Seed))
	trials := make([]Trial, o.Population)
	for i := range trials {
		trials[i] = Trial{ID: i, Config: space.Sample(rng)}
	}
	res := &Result{}
	// GP training data: (config vector, round) -> loss improvement.
	var gx [][]float64
	var gt, gy []float64
	prevLoss := make([]float64, o.Population)
	for i := range prevLoss {
		prevLoss[i] = -1 // unknown
	}

	for round := 0; round < o.Rounds; round++ {
		for i := range trials {
			st, loss := obj(trials[i].Config, trials[i].State, o.Seed+int64(round*1000+i))
			trials[i].State = st
			trials[i].Loss = loss
			res.History = append(res.History, Observation{Round: round, TrialID: i, Config: trials[i].Config.Clone(), Loss: loss})
			if v := space.vectorize(trials[i].Config); len(v) > 0 {
				improvement := 0.0
				if prevLoss[i] >= 0 {
					improvement = prevLoss[i] - loss
				}
				gx = append(gx, v)
				gt = append(gt, float64(round))
				gy = append(gy, improvement)
			}
			prevLoss[i] = loss
		}
		if round == o.Rounds-1 {
			break
		}
		// Rank: ascending loss (lower is better).
		order := make([]int, len(trials))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return trials[order[a]].Loss < trials[order[b]].Loss })
		nBottom := int(float64(len(trials)) * o.QuantileFraction)
		if nBottom < 1 {
			nBottom = 1
		}
		nTop := len(trials) - nBottom
		if nTop < 1 {
			nTop = 1
		}
		gp := newTVGP()
		fitOK := gp.Fit(gx, gt, gy) == nil
		for bi := len(trials) - nBottom; bi < len(trials); bi++ {
			loser := order[bi]
			winner := order[rng.Intn(nTop)]
			// Exploit: copy state and config.
			trials[loser].State = trials[winner].State
			trials[loser].Config = trials[winner].Config.Clone()
			prevLoss[loser] = trials[winner].Loss
			// Explore: GP-UCB over the continuous subspace.
			base := space.vectorize(trials[loser].Config)
			if len(base) > 0 && fitOK {
				best := base
				bestU := gp.UCB(base, float64(round+1), o.UCBBeta)
				for cand := 0; cand < 32; cand++ {
					v := perturbVec(base, rng)
					if u := gp.UCB(v, float64(round+1), o.UCBBeta); u > bestU {
						best, bestU = v, u
					}
				}
				trials[loser].Config = space.devectorize(trials[loser].Config, best)
			}
			// Categoricals: occasional resample keeps the genetic search
			// moving through the discrete subspace.
			explored := space.Sample(rng)
			for _, p := range space.Params {
				if p.Kind == Uniform || p.Kind == LogUniform {
					continue
				}
				if rng.Float64() < 0.25 {
					if len(p.Strings) > 0 {
						trials[loser].Config.Strs[p.Name] = explored.Strs[p.Name]
					} else {
						trials[loser].Config.Num[p.Name] = explored.Num[p.Name]
					}
				}
			}
		}
	}
	best := trials[0]
	for _, t := range trials[1:] {
		if t.Loss < best.Loss {
			best = t
		}
	}
	res.Best = best
	res.Population = trials
	return res
}

// perturbVec proposes a nearby point in [0,1]^d.
func perturbVec(base []float64, rng *rand.Rand) []float64 {
	v := make([]float64, len(base))
	for i, x := range base {
		n := x + rng.NormFloat64()*0.15
		if n < 0 {
			n = 0
		}
		if n > 1 {
			n = 1
		}
		v[i] = n
	}
	return v
}
