package hpo

import (
	"math/rand"
	"sort"
)

// RunPBT executes the original Population-Based Training loop
// (Jaderberg et al. 2017) that PB2 improves on: identical
// exploit step (losers clone a winner's state and config), but the
// explore step perturbs continuous hyper-parameters with random
// multiplicative noise instead of maximizing a time-varying GP-UCB.
// It exists as the ablation baseline separating the value of PB2's
// bandit model from the value of population training itself
// (BenchmarkAblationPB2VsPBT).
func RunPBT(space *Space, obj Objective, o Options) *Result {
	rng := rand.New(rand.NewSource(o.Seed))
	trials := make([]Trial, o.Population)
	for i := range trials {
		trials[i] = Trial{ID: i, Config: space.Sample(rng)}
	}
	res := &Result{}

	for round := 0; round < o.Rounds; round++ {
		for i := range trials {
			st, loss := obj(trials[i].Config, trials[i].State, o.Seed+int64(round*1000+i))
			trials[i].State = st
			trials[i].Loss = loss
			res.History = append(res.History, Observation{Round: round, TrialID: i, Config: trials[i].Config.Clone(), Loss: loss})
		}
		if round == o.Rounds-1 {
			break
		}
		order := make([]int, len(trials))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return trials[order[a]].Loss < trials[order[b]].Loss })
		nBottom := int(float64(len(trials)) * o.QuantileFraction)
		if nBottom < 1 {
			nBottom = 1
		}
		nTop := len(trials) - nBottom
		if nTop < 1 {
			nTop = 1
		}
		for bi := len(trials) - nBottom; bi < len(trials); bi++ {
			loser := order[bi]
			winner := order[rng.Intn(nTop)]
			// Exploit: same as PB2.
			trials[loser].State = trials[winner].State
			trials[loser].Config = trials[winner].Config.Clone()
			// Explore: random perturbation of the continuous subspace
			// (PBT's 0.8x / 1.2x rule expressed in normalized space),
			// plus the same categorical resampling as PB2.
			if base := space.vectorize(trials[loser].Config); len(base) > 0 {
				trials[loser].Config = space.devectorize(trials[loser].Config, perturbVec(base, rng))
			}
			explored := space.Sample(rng)
			for _, p := range space.Params {
				if p.Kind == Uniform || p.Kind == LogUniform {
					continue
				}
				if rng.Float64() < 0.25 {
					if len(p.Strings) > 0 {
						trials[loser].Config.Strs[p.Name] = explored.Strs[p.Name]
					} else {
						trials[loser].Config.Num[p.Name] = explored.Num[p.Name]
					}
				}
			}
		}
	}
	best := trials[0]
	for _, t := range trials[1:] {
		if t.Loss < best.Loss {
			best = t
		}
	}
	res.Best = best
	res.Population = trials
	return res
}

// RunRandomSearch trains Population independently sampled
// configurations for Rounds intervals each — the same training budget
// as a PB2/PBT run but with no exploit or explore steps. It is the
// non-population baseline of the ablation ladder (random < PBT < PB2).
func RunRandomSearch(space *Space, obj Objective, o Options) *Result {
	rng := rand.New(rand.NewSource(o.Seed))
	res := &Result{}
	trials := make([]Trial, o.Population)
	for i := range trials {
		trials[i] = Trial{ID: i, Config: space.Sample(rng)}
	}
	for round := 0; round < o.Rounds; round++ {
		for i := range trials {
			st, loss := obj(trials[i].Config, trials[i].State, o.Seed+int64(round*1000+i))
			trials[i].State = st
			trials[i].Loss = loss
			res.History = append(res.History, Observation{Round: round, TrialID: i, Config: trials[i].Config.Clone(), Loss: loss})
		}
	}
	best := trials[0]
	for _, t := range trials[1:] {
		if t.Loss < best.Loss {
			best = t
		}
	}
	res.Best = best
	res.Population = trials
	return res
}
