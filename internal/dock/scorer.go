package dock

import "deepfusion/internal/fusion"

// VinaScorer adapts the Vina-style empirical scoring function to the
// screening engine's Scorer contract, so the docking score competes in
// the same funnel as the deep models — the paper's method comparison
// is exactly this: Vina vs the fusion families against one selection
// cost function. The scorer reads the raw posed complex off the shared
// Sample (it does not implement the Featurizer handshake) and is
// stateless, so ranks share one instance.
type VinaScorer struct{}

// Name identifies the Vina surrogate in shard columns and manifests.
func (VinaScorer) Name() string { return "vina" }

// ScoreBatch evaluates the empirical score of each posed complex, in
// kcal/mol (lower is stronger).
func (VinaScorer) ScoreBatch(samples []*fusion.Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = VinaScore(s.Pocket, s.Mol)
	}
	return out
}

// LowerIsBetter reports the kcal/mol orientation.
func (VinaScorer) LowerIsBetter() bool { return true }
