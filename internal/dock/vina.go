// Package dock implements the physics-based docking substrate of the
// screening pipeline: an AutoDock-Vina-style empirical scoring
// function, Monte-Carlo rigid-body pose search, RMSD pose comparison
// and the four-stage ConveyorLC toolchain (receptor prep, ligand prep,
// docking, MM/GBSA rescoring hand-off) the paper's physics pipeline is
// built on.
package dock

import (
	"math"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// Vina-style scoring-function weights (Trott & Olson 2010 ordering:
// gauss1, gauss2, repulsion, hydrophobic, hbond; rotor penalty).
const (
	wGauss1      = -0.0356
	wGauss2      = -0.00516
	wRepulsion   = 0.840
	wHydrophobic = -0.0351
	wHBond       = -0.587
	wRotor       = 0.0585
	// cutoff distance for pair interactions
	pairCutoff = 8.0
)

// vinaBias is the Vina surrogate's systematic error profile: strong on
// shape complementarity and hydrophobics, weak on electrostatics and
// hydrogen-bond chemistry, over-penalizing rotors, with per-compound
// noise calibrated so docked-pose Pearson against true pK lands near
// the paper's 0.579.
var vinaBias = target.MethodBias{
	Tag:     "vina",
	Contact: 1.0, Hydro: 1.25, HBond: 0.55, Arom: 0.80, Rot: 1.5, Charge: 0.30,
	Noise: 0.48,
}

// kcalPerPK converts pK units to kcal/mol at ~300 K (dG = -RT ln K).
const kcalPerPK = 1.36

// VinaScore evaluates the Vina-style empirical binding score of mol
// posed in the pocket frame, in kcal/mol (more negative is better).
// The score combines the classic empirical pair terms (gauss,
// repulsion, hydrophobic, hbond, rotor normalization) with the
// method's biased view of the planted affinity surface.
func VinaScore(p *target.Pocket, mol *chem.Mol) float64 {
	return -kcalPerPK*p.BiasedAffinity(mol, vinaBias) + 0.15*empiricalTerms(p, mol)
}

// empiricalTerms computes the Trott & Olson pairwise terms; retained at
// reduced weight so pose optimization feels Vina's characteristic
// distance response.
func empiricalTerms(p *target.Pocket, mol *chem.Mol) float64 {
	var gauss1, gauss2, repulsion, hydrophobic, hbond float64
	for _, a := range mol.Atoms {
		ea, ok := chem.Elements[a.Symbol]
		if !ok {
			continue
		}
		for _, pa := range p.Atoms {
			d := a.Pos.Dist(pa.Pos)
			if d > pairCutoff {
				continue
			}
			// Surface distance relative to summed vdW radii (protein
			// pseudo-atoms use a generic 1.7 A radius).
			sd := d - (ea.VdwRadius + 1.7)
			gauss1 += math.Exp(-(sd / 0.5) * (sd / 0.5))
			gauss2 += math.Exp(-((sd - 3) / 2) * ((sd - 3) / 2))
			if sd < 0 {
				repulsion += sd * sd
			}
			if ea.Hydrophobic && pa.Hydrophobic {
				hydrophobic += slope(sd, 0.5, 1.5)
			}
			donorAcceptor := (ea.Donor && pa.Acceptor) || (ea.Acceptor && pa.Donor)
			if donorAcceptor {
				hbond += slope(sd, -0.7, 0)
			}
		}
	}
	inter := wGauss1*gauss1 + wGauss2*gauss2 + wRepulsion*repulsion +
		wHydrophobic*hydrophobic + wHBond*hbond
	rotors := float64(mol.RotatableBonds())
	return inter / (1 + wRotor*rotors)
}

// slope is Vina's piecewise-linear interpolation: 1 below good, 0
// above bad.
func slope(x, good, bad float64) float64 {
	if x <= good {
		return 1
	}
	if x >= bad {
		return 0
	}
	return (bad - x) / (bad - good)
}
