package dock

import (
	"math"
	"testing"
	"testing/quick"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

func embedded(t *testing.T, smiles string) *chem.Mol {
	t.Helper()
	m, err := chem.ParseSMILES(smiles)
	if err != nil {
		t.Fatal(err)
	}
	chem.Embed3D(m, 17)
	return m
}

func TestTorsionsMatchRotatableBondCount(t *testing.T) {
	for _, tc := range []struct {
		smiles string
		want   int
	}{
		{"CCO", 0},             // terminal bonds only
		{"CCCC", 1},            // one central rotor
		{"CCCCC", 2},           // two rotors
		{"c1ccccc1", 0},        // aromatic ring
		{"c1ccccc1CCN", 2},     // exocyclic chain
		{"CC(=O)Nc1ccccc1", 2}, // amide C-N and N-ring
		{"C1CCCCC1", 0},        // aliphatic ring bonds excluded
	} {
		m := embedded(t, tc.smiles)
		tors := Torsions(m)
		if len(tors) != m.RotatableBonds() {
			t.Errorf("%s: Torsions()=%d but RotatableBonds()=%d — definitions must agree",
				tc.smiles, len(tors), m.RotatableBonds())
		}
		if len(tors) != tc.want {
			t.Errorf("%s: %d torsions, want %d", tc.smiles, len(tors), tc.want)
		}
	}
}

func TestTorsionMovingSetsExcludeProximalSide(t *testing.T) {
	m := embedded(t, "CCCC")
	tors := Torsions(m)
	if len(tors) != 1 {
		t.Fatalf("butane should have 1 torsion, got %d", len(tors))
	}
	tor := tors[0]
	moving := map[int]bool{}
	for _, i := range tor.Moving {
		moving[i] = true
	}
	if moving[tor.A] {
		t.Fatal("axis atom A must not move")
	}
	if !moving[tor.B] {
		t.Fatal("axis atom B anchors the distal side and should be in the moving set")
	}
	if len(tor.Moving) >= len(m.Atoms) {
		t.Fatalf("moving set (%d) must be a strict subset of the molecule (%d)", len(tor.Moving), len(m.Atoms))
	}
}

func TestRotateTorsionPreservesBondsAndFragments(t *testing.T) {
	m := embedded(t, "CC(=O)Nc1ccc(O)cc1")
	tors := Torsions(m)
	if len(tors) == 0 {
		t.Fatal("expected torsions")
	}
	check := func(seed int64, torPick uint, angle float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		angle = math.Mod(angle, math.Pi)
		tor := tors[int(torPick%uint(len(tors)))]
		r := m.Clone()
		RotateTorsion(r, tor, angle)
		// Every bond length is exactly preserved.
		for _, b := range m.Bonds {
			d0 := m.Atoms[b.A].Pos.Dist(m.Atoms[b.B].Pos)
			d1 := r.Atoms[b.A].Pos.Dist(r.Atoms[b.B].Pos)
			if math.Abs(d0-d1) > 1e-9 {
				return false
			}
		}
		// Atoms outside the moving set do not move at all.
		moving := map[int]bool{}
		for _, i := range tor.Moving {
			moving[i] = true
		}
		for i := range m.Atoms {
			if !moving[i] && m.Atoms[i].Pos.Dist(r.Atoms[i].Pos) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateTorsionFullTurnIsIdentity(t *testing.T) {
	m := embedded(t, "CCCCCC")
	for _, tor := range Torsions(m) {
		r := m.Clone()
		RotateTorsion(r, tor, 2*math.Pi)
		for i := range m.Atoms {
			if m.Atoms[i].Pos.Dist(r.Atoms[i].Pos) > 1e-9 {
				t.Fatalf("2*pi rotation about bond %d-%d moved atom %d", tor.A, tor.B, i)
			}
		}
	}
}

func TestRotateTorsionChangesConformation(t *testing.T) {
	m := embedded(t, "CCCC")
	tor := Torsions(m)[0]
	r := m.Clone()
	RotateTorsion(r, tor, math.Pi/2)
	// End-to-end distance must change: that is the point of a torsion.
	d0 := m.Atoms[0].Pos.Dist(m.Atoms[3].Pos)
	d1 := r.Atoms[0].Pos.Dist(r.Atoms[3].Pos)
	if math.Abs(d0-d1) < 1e-6 {
		t.Fatalf("90-degree torsion left the 1-4 distance unchanged (%.3f)", d0)
	}
}

func TestFlexibleDockingFindsBetterOrEqualPoses(t *testing.T) {
	// With the same total proposal budget, adding torsional moves must
	// not hurt on average across flexible compounds (it samples a
	// strict superset of the conformation space).
	p := target.Protease1
	smiles := []string{
		"CCOC(=O)CCc1ccccc1",
		"CCN(CC)CCNC(=O)c1ccccc1",
		"CC(C)CC(N)C(=O)O",
	}
	var rigidSum, flexSum float64
	for i, s := range smiles {
		m := embedded(t, s)
		o := DefaultSearchOptions()
		o.MCSteps = 80
		o.Seed = int64(100 + i)
		rigid := Dock(p, m, o)
		o.TorsionMoves = true
		flex := Dock(p, m, o)
		rigidSum += rigid[0].Score
		flexSum += flex[0].Score
	}
	if flexSum > rigidSum+1.5 {
		t.Fatalf("flexible docking much worse than rigid: %.2f vs %.2f total", flexSum, rigidSum)
	}
	t.Logf("total best scores: rigid %.2f, flexible %.2f", rigidSum, flexSum)
}

func TestFlexibleDockingDeterministic(t *testing.T) {
	p := target.Spike1
	m := embedded(t, "CCOC(=O)CCc1ccccc1")
	o := DefaultSearchOptions()
	o.TorsionMoves = true
	a := Dock(p, m, o)
	b := Dock(p, m, o)
	if len(a) != len(b) {
		t.Fatalf("pose counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Fatalf("pose %d scores differ: %v vs %v", i, a[i].Score, b[i].Score)
		}
	}
}

func TestTorsionMovesPreserveBondLengthsThroughDocking(t *testing.T) {
	p := target.Protease2
	m := embedded(t, "CCN(CC)CCNC(=O)c1ccccc1")
	o := DefaultSearchOptions()
	o.TorsionMoves = true
	for _, pose := range Dock(p, m, o) {
		for _, b := range m.Bonds {
			d0 := m.Atoms[b.A].Pos.Dist(m.Atoms[b.B].Pos)
			d1 := pose.Mol.Atoms[b.A].Pos.Dist(pose.Mol.Atoms[b.B].Pos)
			if math.Abs(d0-d1) > 1e-6 {
				t.Fatalf("bond %d-%d length changed %.4f -> %.4f in docked pose", b.A, b.B, d0, d1)
			}
		}
	}
}

func TestTorsionsRigidMoleculeEmpty(t *testing.T) {
	m := embedded(t, "c1ccc2ccccc2c1") // naphthalene: fully rigid
	if tors := Torsions(m); len(tors) != 0 {
		t.Fatalf("rigid molecule reported %d torsions", len(tors))
	}
	// Docking with TorsionMoves on a rigid molecule must still work.
	o := DefaultSearchOptions()
	o.TorsionMoves = true
	if poses := Dock(target.Spike2, m, o); len(poses) == 0 {
		t.Fatal("no poses for rigid molecule with TorsionMoves enabled")
	}
}
