package dock

// Torsional flexibility for the Monte-Carlo docking search. AutoDock
// Vina samples ligand conformations by rotating about single acyclic
// bonds in addition to rigid-body moves; this file adds the same move
// class. Rigid docking (the default SearchOptions) is kept for the
// calibrated pipeline experiments; flexible docking is opt-in via
// SearchOptions.TorsionMoves and measured against rigid docking by
// BenchmarkAblationFlexibleDocking.

import (
	"math"
	"math/rand"

	"deepfusion/internal/chem"
)

// Torsion is one rotatable bond with the atom set that moves when it
// turns: the side of the bond containing atom B (the "distal" side),
// by convention.
type Torsion struct {
	A, B   int   // bond atoms; the axis runs A -> B
	Moving []int // atoms on B's side (excluding A's side entirely)
}

// Torsions enumerates the rotatable bonds of m using the same
// definition as chem.(*Mol).RotatableBonds — acyclic single bonds
// between non-terminal heavy atoms — and precomputes each bond's
// moving atom set.
func Torsions(m *chem.Mol) []Torsion {
	adj := m.Adjacency()
	inRing := m.RingBonds()
	var out []Torsion
	for bi, b := range m.Bonds {
		if b.Order != 1 || b.Aromatic || inRing[bi] {
			continue
		}
		if len(adj[b.A]) < 2 || len(adj[b.B]) < 2 {
			continue
		}
		moving := distalAtoms(m, adj, b.A, b.B)
		if len(moving) == 0 || len(moving) == len(m.Atoms) {
			continue // not a separating bond (shouldn't happen acyclically)
		}
		out = append(out, Torsion{A: b.A, B: b.B, Moving: moving})
	}
	return out
}

// distalAtoms returns the atoms reachable from b without crossing the
// a-b bond (including b itself).
func distalAtoms(m *chem.Mol, adj [][]chem.AdjEntry, a, b int) []int {
	seen := make([]bool, len(m.Atoms))
	seen[a] = true // wall off the proximal side
	stack := []int{b}
	seen[b] = true
	var out []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, e := range adj[v] {
			if !seen[e.Nbr] {
				seen[e.Nbr] = true
				stack = append(stack, e.Nbr)
			}
		}
	}
	// If the bond sits in a cycle the walk returns to a's side; detect
	// by checking whether everything was reached.
	if len(out) >= len(m.Atoms)-1 {
		return nil
	}
	return out
}

// RotateTorsion turns the torsion's moving atoms by angle radians
// about the A->B bond axis, in place. Bond lengths and the geometry of
// each rigid fragment are preserved exactly.
func RotateTorsion(m *chem.Mol, tor Torsion, angle float64) {
	origin := m.Atoms[tor.A].Pos
	axis := m.Atoms[tor.B].Pos.Sub(origin)
	n := axis.Norm()
	if n < 1e-9 {
		return
	}
	axis = axis.Scale(1 / n)
	sinA, cosA := math.Sin(angle), math.Cos(angle)
	for _, i := range tor.Moving {
		v := m.Atoms[i].Pos.Sub(origin)
		term1 := v.Scale(cosA)
		term2 := cross(axis, v).Scale(sinA)
		term3 := axis.Scale(axis.Dot(v) * (1 - cosA))
		m.Atoms[i].Pos = origin.Add(term1).Add(term2).Add(term3)
	}
}

// torsionJitter applies one random torsional move of up to maxAngle
// radians about a randomly chosen rotatable bond.
func torsionJitter(m *chem.Mol, tors []Torsion, rng *rand.Rand, maxAngle float64) {
	if len(tors) == 0 {
		return
	}
	tor := tors[rng.Intn(len(tors))]
	RotateTorsion(m, tor, (rng.Float64()*2-1)*maxAngle)
}
