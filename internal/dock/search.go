package dock

import (
	"math"
	"math/rand"
	"sort"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// Pose is one docked ligand conformation with its Vina score.
type Pose struct {
	Mol   *chem.Mol
	Score float64 // kcal/mol, more negative is better
	Rank  int     // 0 = best
}

// SearchOptions configures the Monte-Carlo docking search.
type SearchOptions struct {
	NumPoses    int     // poses to keep (ConveyorLC keeps up to 10)
	MCSteps     int     // Metropolis steps per restart
	Restarts    int     // independent MC chains (8 in the paper's runs)
	Temperature float64 // Metropolis acceptance temperature, kcal/mol
	Seed        int64
	// TorsionMoves enables Vina-style ligand flexibility: half of the
	// Monte-Carlo proposals rotate a random rotatable bond instead of
	// moving the whole body. Off by default (the calibrated pipeline
	// experiments use rigid docking).
	TorsionMoves    bool
	TorsionMaxAngle float64 // radians per torsion proposal (default pi/3)
}

// DefaultSearchOptions mirrors the ConveyorLC configuration: up to 10
// retained poses from 8 Monte-Carlo restarts.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{NumPoses: 10, MCSteps: 60, Restarts: 8, Temperature: 1.2, Seed: 1}
}

// Dock runs rigid-body Monte-Carlo pose search of mol in the pocket
// and returns up to NumPoses poses sorted by score (best first). The
// input molecule is not modified.
func Dock(p *target.Pocket, mol *chem.Mol, o SearchOptions) []Pose {
	rng := rand.New(rand.NewSource(o.Seed ^ int64(len(mol.Atoms))))
	var tors []Torsion
	if o.TorsionMoves {
		tors = Torsions(mol)
	}
	maxTorAngle := o.TorsionMaxAngle
	if maxTorAngle <= 0 {
		maxTorAngle = math.Pi / 3
	}
	var poses []Pose
	for restart := 0; restart < o.Restarts; restart++ {
		cur := mol.Clone()
		p.PlaceLigand(cur)
		// Random initial placement within the site.
		jitter(cur, rng, p.Radius*0.4, math.Pi)
		curScore := VinaScore(p, cur)
		best := cur.Clone()
		bestScore := curScore
		for step := 0; step < o.MCSteps; step++ {
			cand := cur.Clone()
			if len(tors) > 0 && rng.Float64() < 0.5 {
				torsionJitter(cand, tors, rng, maxTorAngle)
			} else {
				jitter(cand, rng, 1.2, 0.35)
			}
			s := VinaScore(p, cand)
			if s < curScore || rng.Float64() < math.Exp((curScore-s)/o.Temperature) {
				cur, curScore = cand, s
				if s < bestScore {
					best, bestScore = cand.Clone(), s
				}
			}
		}
		poses = append(poses, Pose{Mol: best, Score: bestScore})
	}
	sort.Slice(poses, func(a, b int) bool { return poses[a].Score < poses[b].Score })
	// Deduplicate near-identical poses (RMSD < 0.5 A), keep best-scored.
	var kept []Pose
	for _, cand := range poses {
		dup := false
		for _, k := range kept {
			if RMSD(cand.Mol, k.Mol) < 0.5 {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, cand)
		}
		if len(kept) == o.NumPoses {
			break
		}
	}
	for i := range kept {
		kept[i].Rank = i
	}
	return kept
}

// jitter applies a random rigid-body move: translation with standard
// deviation transStd per axis and rotation up to maxAngle radians about
// a random axis through the centroid.
func jitter(m *chem.Mol, rng *rand.Rand, transStd, maxAngle float64) {
	d := chem.Vec3{
		X: rng.NormFloat64() * transStd,
		Y: rng.NormFloat64() * transStd,
		Z: rng.NormFloat64() * transStd,
	}
	axis := randUnit(rng)
	angle := (rng.Float64()*2 - 1) * maxAngle
	c := m.Centroid()
	sinA, cosA := math.Sin(angle), math.Cos(angle)
	for i := range m.Atoms {
		v := m.Atoms[i].Pos.Sub(c)
		// Rodrigues rotation formula.
		term1 := v.Scale(cosA)
		term2 := cross(axis, v).Scale(sinA)
		term3 := axis.Scale(axis.Dot(v) * (1 - cosA))
		m.Atoms[i].Pos = c.Add(term1).Add(term2).Add(term3).Add(d)
	}
}

func cross(a, b chem.Vec3) chem.Vec3 {
	return chem.Vec3{
		X: a.Y*b.Z - a.Z*b.Y,
		Y: a.Z*b.X - a.X*b.Z,
		Z: a.X*b.Y - a.Y*b.X,
	}
}

func randUnit(rng *rand.Rand) chem.Vec3 {
	for {
		v := chem.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		if n := v.Norm(); n > 1e-6 {
			return v.Scale(1 / n)
		}
	}
}

// RMSD returns the root-mean-square deviation between two poses of the
// same molecule (matched atom order, no superposition — poses share
// the pocket frame). It panics if atom counts differ.
func RMSD(a, b *chem.Mol) float64 {
	if len(a.Atoms) != len(b.Atoms) {
		panic("dock: RMSD requires equal atom counts")
	}
	if len(a.Atoms) == 0 {
		return 0
	}
	s := 0.0
	for i := range a.Atoms {
		d := a.Atoms[i].Pos.Dist(b.Atoms[i].Pos)
		s += d * d
	}
	return math.Sqrt(s / float64(len(a.Atoms)))
}
