package dock

import (
	"fmt"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// Pipeline is the ConveyorLC toolchain: four parallelized stages that
// prepare the receptor (CDT1Receptor), prepare ligands (CDT2Ligand),
// dock (CDT3Docking) and re-score a subset with MM/GBSA (CDT4mmgbsa).
// The MM/GBSA stage is injected as a function so the physics rescorer
// stays a separate substrate (mirroring the separate programs of the
// real toolchain).
type Pipeline struct {
	Search  SearchOptions
	Rescore func(p *target.Pocket, mol *chem.Mol) float64

	// MaxRescorePoses caps how many best poses CDT4 re-scores per
	// compound (ConveyorLC re-scores up to 10 best docking poses, and
	// only on a subset of the screen because of MM/GBSA's cost).
	MaxRescorePoses int
}

// NewPipeline builds a ConveyorLC pipeline with default search options.
func NewPipeline(rescore func(p *target.Pocket, mol *chem.Mol) float64) *Pipeline {
	return &Pipeline{Search: DefaultSearchOptions(), Rescore: rescore, MaxRescorePoses: 10}
}

// Receptor is the CDT1Receptor output: a prepared docking target.
type Receptor struct {
	Pocket   *target.Pocket
	Prepared bool
}

// CDT1Receptor performs protein preparation. For the synthetic pockets
// this validates the site definition and marks it docking-ready.
func (pl *Pipeline) CDT1Receptor(p *target.Pocket) (*Receptor, error) {
	if p == nil || len(p.Atoms) == 0 {
		return nil, fmt.Errorf("dock: receptor %v has no site atoms", p)
	}
	return &Receptor{Pocket: p, Prepared: true}, nil
}

// CDT2Ligand performs ligand preparation (desalt, protonate at pH 7,
// embed and minimize 3D coordinates).
func (pl *Pipeline) CDT2Ligand(m *chem.Mol, seed int64) (*chem.Mol, error) {
	return chem.Prepare(m, seed)
}

// CDT3Docking docks the prepared ligand into the prepared receptor.
func (pl *Pipeline) CDT3Docking(r *Receptor, m *chem.Mol) ([]Pose, error) {
	if r == nil || !r.Prepared {
		return nil, fmt.Errorf("dock: CDT3Docking requires a prepared receptor")
	}
	poses := Dock(r.Pocket, m, pl.Search)
	if len(poses) == 0 {
		return nil, fmt.Errorf("dock: no poses found for %s", m.Name)
	}
	return poses, nil
}

// RescoredPose pairs a docking pose with its MM/GBSA re-score.
type RescoredPose struct {
	Pose
	MMGBSA float64 // kcal/mol, more negative is better
}

// CDT4mmgbsa re-scores the best poses with the injected MM/GBSA
// function.
func (pl *Pipeline) CDT4mmgbsa(r *Receptor, poses []Pose) ([]RescoredPose, error) {
	if pl.Rescore == nil {
		return nil, fmt.Errorf("dock: pipeline has no MM/GBSA rescorer")
	}
	n := len(poses)
	if pl.MaxRescorePoses > 0 && n > pl.MaxRescorePoses {
		n = pl.MaxRescorePoses
	}
	out := make([]RescoredPose, 0, n)
	for _, p := range poses[:n] {
		out = append(out, RescoredPose{Pose: p, MMGBSA: pl.Rescore(r.Pocket, p.Mol)})
	}
	return out, nil
}

// Run executes all four stages for one compound, returning docked and
// re-scored poses.
func (pl *Pipeline) Run(p *target.Pocket, raw *chem.Mol, seed int64) ([]RescoredPose, error) {
	r, err := pl.CDT1Receptor(p)
	if err != nil {
		return nil, err
	}
	lig, err := pl.CDT2Ligand(raw, seed)
	if err != nil {
		return nil, err
	}
	lig.Name = raw.Name
	poses, err := pl.CDT3Docking(r, lig)
	if err != nil {
		return nil, err
	}
	return pl.CDT4mmgbsa(r, poses)
}
