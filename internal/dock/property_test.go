package dock

// Property-based tests (testing/quick) for the docking substrate: the
// RMSD metric axioms, scoring determinism, and the pose-set contracts
// of the Monte-Carlo search.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

func randomPosedMol(rng *rand.Rand) *chem.Mol {
	n := 4 + rng.Intn(10)
	m := &chem.Mol{Name: "prop"}
	symbols := []string{"C", "N", "O"}
	for i := 0; i < n; i++ {
		m.Atoms = append(m.Atoms, chem.Atom{
			Symbol: symbols[rng.Intn(len(symbols))],
			Pos: chem.Vec3{
				X: rng.NormFloat64() * 3,
				Y: rng.NormFloat64() * 3,
				Z: rng.NormFloat64() * 3,
			},
		})
		if i > 0 {
			m.Bonds = append(m.Bonds, chem.Bond{A: i - 1, B: i, Order: 1})
		}
	}
	return m
}

func TestRMSDIdentityProperty(t *testing.T) {
	check := func(seed int64) bool {
		m := randomPosedMol(rand.New(rand.NewSource(seed)))
		return RMSD(m, m) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSDSymmetryProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPosedMol(rng)
		b := a.Clone()
		jitter(b, rng, 1.0, 0.5)
		return math.Abs(RMSD(a, b)-RMSD(b, a)) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSDPureTranslationProperty(t *testing.T) {
	// Translating every atom by d gives RMSD exactly |d|.
	check := func(seed int64, dx, dy, dz float64) bool {
		for _, v := range []float64{dx, dy, dz} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		d := chem.Vec3{X: math.Mod(dx, 50), Y: math.Mod(dy, 50), Z: math.Mod(dz, 50)}
		a := randomPosedMol(rand.New(rand.NewSource(seed)))
		b := a.Clone()
		b.Translate(d)
		return math.Abs(RMSD(a, b)-d.Norm()) < 1e-9*(1+d.Norm())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSDNonNegativeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPosedMol(rng)
		b := a.Clone()
		jitter(b, rng, 2.0, 1.0)
		return RMSD(a, b) >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVinaScoreDeterministicProperty(t *testing.T) {
	targets := target.All()
	check := func(seed int64, tPick uint) bool {
		p := targets[int(tPick%uint(len(targets)))]
		m := randomPosedMol(rand.New(rand.NewSource(seed)))
		p.PlaceLigand(m)
		s1 := VinaScore(p, m)
		s2 := VinaScore(p, m)
		return s1 == s2 && !math.IsNaN(s1) && !math.IsInf(s1, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDockPoseSetContractsProperty(t *testing.T) {
	// For random seeds: pose count bounded by NumPoses, ranks
	// sequential, scores sorted ascending, and the input unmodified.
	p := target.Protease1
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomPosedMol(rng)
		orig := m.Clone()
		o := SearchOptions{NumPoses: 1 + rng.Intn(6), MCSteps: 10, Restarts: 4, Temperature: 1.2, Seed: seed}
		poses := Dock(p, m, o)
		if len(poses) == 0 || len(poses) > o.NumPoses {
			return false
		}
		for i, ps := range poses {
			if ps.Rank != i {
				return false
			}
			if i > 0 && ps.Score < poses[i-1].Score {
				return false
			}
		}
		for i := range m.Atoms {
			if m.Atoms[i].Pos != orig.Atoms[i].Pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinePoseNeverWorsensProperty(t *testing.T) {
	// Coordinate-descent refinement accepts only improving moves, so
	// the refined score can never exceed the input score.
	p := target.Spike1
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomPosedMol(rng)
		p.PlaceLigand(m)
		jitter(m, rng, 1.5, 0.7)
		before := VinaScore(p, m)
		o := RefineOptions{Steps: 8, TransStep: 0.25, RotStep: 0.08}
		_, after := RefinePose(p, m, o)
		return after <= before+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
