package dock

import (
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

func TestRefinePoseImprovesScore(t *testing.T) {
	m := mustMol(t, "c1ccccc1CCN", "ref1")
	target.Protease1.PlaceLigand(m)
	// Perturb away from the placed pose.
	m.Translate(chem.Vec3{X: 2.5, Y: -1.5})
	before := VinaScore(target.Protease1, m)
	refined, after := RefinePose(target.Protease1, m, DefaultRefineOptions())
	if after > before {
		t.Fatalf("refinement worsened score: %v -> %v", before, after)
	}
	if refined == m {
		t.Fatal("RefinePose must not return its input")
	}
	// Input must be untouched.
	if VinaScore(target.Protease1, m) != before {
		t.Fatal("RefinePose mutated its input")
	}
}

func TestRefinePoseDeterministic(t *testing.T) {
	m := mustMol(t, "CCOC(=O)c1ccccc1", "ref2")
	target.Spike1.PlaceLigand(m)
	_, a := RefinePose(target.Spike1, m, DefaultRefineOptions())
	_, b := RefinePose(target.Spike1, m, DefaultRefineOptions())
	if a != b {
		t.Fatal("refinement not deterministic")
	}
}

func TestRefinePosePreservesGeometry(t *testing.T) {
	m := mustMol(t, "c1ccc2ccccc2c1", "ref3")
	target.Spike1.PlaceLigand(m)
	refined, _ := RefinePose(target.Spike1, m, DefaultRefineOptions())
	for i := range m.Atoms {
		for j := i + 1; j < len(m.Atoms); j++ {
			a := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
			b := refined.Atoms[i].Pos.Dist(refined.Atoms[j].Pos)
			if diff := a - b; diff > 1e-9 || diff < -1e-9 {
				t.Fatal("rigid refinement distorted internal geometry")
			}
		}
	}
}

func TestRefinePosesSortsByScore(t *testing.T) {
	m := mustMol(t, "CCc1ccccc1O", "ref4")
	poses := Dock(target.Spike2, m, SearchOptions{NumPoses: 4, MCSteps: 15, Restarts: 4, Temperature: 1, Seed: 6})
	refined := RefinePoses(target.Spike2, poses, DefaultRefineOptions())
	if len(refined) != len(poses) {
		t.Fatal("pose count changed")
	}
	for i := 1; i < len(refined); i++ {
		if refined[i].Score < refined[i-1].Score {
			t.Fatal("refined poses not sorted")
		}
	}
	for i, p := range refined {
		if p.Rank != i {
			t.Fatal("ranks not reassigned")
		}
	}
}
