package dock

import (
	"math"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

// RefineOptions configures local pose refinement — the short
// minimization step drug-discovery pipelines insert between docking
// and final candidate selection (the paper notes "even molecular
// dynamics simulations can be used before finalizing candidates").
type RefineOptions struct {
	Steps     int     // coordinate-descent iterations
	TransStep float64 // translation probe, Angstroms
	RotStep   float64 // rotation probe, radians
}

// DefaultRefineOptions returns a short deterministic local search.
func DefaultRefineOptions() RefineOptions {
	return RefineOptions{Steps: 25, TransStep: 0.25, RotStep: 0.08}
}

// RefinePose performs deterministic rigid-body coordinate descent on
// the Vina score: at each step it probes +/- translations along each
// axis and +/- rotations about each axis, keeping the best improving
// move. It returns the refined pose and its score; the input is not
// modified.
func RefinePose(p *target.Pocket, mol *chem.Mol, o RefineOptions) (*chem.Mol, float64) {
	cur := mol.Clone()
	curScore := VinaScore(p, cur)
	for step := 0; step < o.Steps; step++ {
		bestScore := curScore
		var best *chem.Mol
		for axis := 0; axis < 3; axis++ {
			for _, sign := range []float64{1, -1} {
				// Translation probe.
				cand := cur.Clone()
				d := chem.Vec3{}
				switch axis {
				case 0:
					d.X = sign * o.TransStep
				case 1:
					d.Y = sign * o.TransStep
				case 2:
					d.Z = sign * o.TransStep
				}
				cand.Translate(d)
				if s := VinaScore(p, cand); s < bestScore {
					bestScore, best = s, cand
				}
				// Rotation probe about the centroid.
				cand2 := cur.Clone()
				rotateRigid(cand2, axis, sign*o.RotStep)
				if s := VinaScore(p, cand2); s < bestScore {
					bestScore, best = s, cand2
				}
			}
		}
		if best == nil {
			break // local minimum
		}
		cur, curScore = best, bestScore
	}
	return cur, curScore
}

// rotateRigid rotates the molecule about the given axis through its
// centroid.
func rotateRigid(m *chem.Mol, axis int, angle float64) {
	c := m.Centroid()
	sin, cos := math.Sin(angle), math.Cos(angle)
	for i := range m.Atoms {
		v := m.Atoms[i].Pos.Sub(c)
		var r chem.Vec3
		switch axis {
		case 0:
			r = chem.Vec3{X: v.X, Y: cos*v.Y - sin*v.Z, Z: sin*v.Y + cos*v.Z}
		case 1:
			r = chem.Vec3{X: cos*v.X + sin*v.Z, Y: v.Y, Z: -sin*v.X + cos*v.Z}
		default:
			r = chem.Vec3{X: cos*v.X - sin*v.Y, Y: sin*v.X + cos*v.Y, Z: v.Z}
		}
		m.Atoms[i].Pos = c.Add(r)
	}
}

// RefinePoses refines each pose in place-order and re-sorts by the
// refined score.
func RefinePoses(p *target.Pocket, poses []Pose, o RefineOptions) []Pose {
	out := make([]Pose, len(poses))
	for i, ps := range poses {
		mol, score := RefinePose(p, ps.Mol, o)
		out[i] = Pose{Mol: mol, Score: score}
	}
	// insertion sort by score (few poses)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Score < out[j-1].Score; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := range out {
		out[i].Rank = i
	}
	return out
}
