package dock

import (
	"math"
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/target"
)

func mustMol(t *testing.T, s, name string) *chem.Mol {
	t.Helper()
	m, err := chem.ParseSMILES(s)
	if err != nil {
		t.Fatal(err)
	}
	m.Name = name
	chem.Embed3D(m, 5)
	return m
}

func TestVinaScoreFiniteAndDeterministic(t *testing.T) {
	m := mustMol(t, "CC(=O)Oc1ccccc1C(=O)O", "asp")
	target.Protease1.PlaceLigand(m)
	a := VinaScore(target.Protease1, m)
	b := VinaScore(target.Protease1, m)
	if a != b {
		t.Fatal("VinaScore not deterministic")
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("VinaScore = %v", a)
	}
}

func TestVinaPrefersPocketOverBulk(t *testing.T) {
	// Averaged over compounds, the score in the pocket must beat the
	// score far outside (contact terms vanish there).
	smiles := []string{"c1ccccc1CCN", "CC(=O)Oc1ccccc1C(=O)O", "c1ccc2ccccc2c1", "CCCCCCCC", "NCCO"}
	better := 0
	for i, s := range smiles {
		m := mustMol(t, s, s)
		target.Protease1.PlaceLigand(m)
		in := VinaScore(target.Protease1, m)
		m.Translate(chem.Vec3{X: 50})
		out := VinaScore(target.Protease1, m)
		if in < out {
			better++
		}
		_ = i
	}
	if better < 4 {
		t.Fatalf("pocket poses better for only %d/5 compounds", better)
	}
}

func TestClashRaisesVinaScore(t *testing.T) {
	m := mustMol(t, "CCCCC", "pent")
	// Place directly on a pocket atom -> repulsion dominates.
	m.Translate(target.Protease1.Atoms[0].Pos.Sub(m.Centroid()))
	clashed := VinaScore(target.Protease1, m)
	m2 := mustMol(t, "CCCCC", "pent")
	target.Protease1.PlaceLigand(m2)
	centered := VinaScore(target.Protease1, m2)
	if clashed <= centered {
		t.Fatalf("clash score %v should exceed centered score %v", clashed, centered)
	}
}

func TestSlope(t *testing.T) {
	if slope(-1, -0.7, 0) != 1 {
		t.Fatal("below good must be 1")
	}
	if slope(0.5, -0.7, 0) != 0 {
		t.Fatal("above bad must be 0")
	}
	if v := slope(-0.35, -0.7, 0); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("midpoint = %v", v)
	}
}

func TestDockReturnsSortedDistinctPoses(t *testing.T) {
	m := mustMol(t, "c1ccccc1CC(=O)O", "test1")
	o := DefaultSearchOptions()
	o.Restarts = 6
	o.MCSteps = 30
	poses := Dock(target.Spike1, m, o)
	if len(poses) == 0 {
		t.Fatal("no poses")
	}
	for i := 1; i < len(poses); i++ {
		if poses[i].Score < poses[i-1].Score {
			t.Fatal("poses not sorted by score")
		}
		if RMSD(poses[i].Mol, poses[i-1].Mol) < 0.5 {
			t.Fatal("duplicate poses survived dedup")
		}
	}
	for i, p := range poses {
		if p.Rank != i {
			t.Fatalf("pose %d has rank %d", i, p.Rank)
		}
	}
	if len(poses) > o.NumPoses {
		t.Fatalf("kept %d poses, cap %d", len(poses), o.NumPoses)
	}
}

func TestDockDoesNotMutateInput(t *testing.T) {
	m := mustMol(t, "CCO", "eth")
	orig := m.Clone()
	Dock(target.Spike1, m, SearchOptions{NumPoses: 3, MCSteps: 10, Restarts: 2, Temperature: 1, Seed: 2})
	for i := range m.Atoms {
		if m.Atoms[i].Pos != orig.Atoms[i].Pos {
			t.Fatal("Dock mutated input coordinates")
		}
	}
}

func TestDockDeterministicForSeed(t *testing.T) {
	m := mustMol(t, "c1ccccc1O", "phenol")
	o := SearchOptions{NumPoses: 5, MCSteps: 20, Restarts: 3, Temperature: 1, Seed: 42}
	a := Dock(target.Spike2, m, o)
	b := Dock(target.Spike2, m, o)
	if len(a) != len(b) {
		t.Fatal("pose counts differ")
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Fatal("docking not deterministic")
		}
	}
}

func TestDockFindsPocket(t *testing.T) {
	// The best pose should sit near the pocket center, not in bulk.
	m := mustMol(t, "c1ccccc1CCN", "tgt")
	o := DefaultSearchOptions()
	poses := Dock(target.Protease1, m, o)
	best := poses[0]
	if d := best.Mol.Centroid().Norm(); d > target.Protease1.Radius*1.5 {
		t.Fatalf("best pose centroid %v A from site center", d)
	}
}

func TestRMSD(t *testing.T) {
	a := mustMol(t, "CCO", "a")
	b := a.Clone()
	if RMSD(a, b) != 0 {
		t.Fatal("identical poses must have RMSD 0")
	}
	b.Translate(chem.Vec3{X: 2})
	if math.Abs(RMSD(a, b)-2) > 1e-12 {
		t.Fatalf("RMSD = %v, want 2", RMSD(a, b))
	}
}

func TestRMSDMismatchPanics(t *testing.T) {
	a := mustMol(t, "CCO", "a")
	b := mustMol(t, "CC", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMSD(a, b)
}

func TestJitterPreservesGeometry(t *testing.T) {
	m := mustMol(t, "c1ccccc1", "benz")
	orig := m.Clone()
	rng := newTestRand()
	jitter(m, rng, 1.0, 0.5)
	for i := range m.Atoms {
		for j := i + 1; j < len(m.Atoms); j++ {
			a := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
			b := orig.Atoms[i].Pos.Dist(orig.Atoms[j].Pos)
			if math.Abs(a-b) > 1e-9 {
				t.Fatal("rigid-body jitter distorted internal geometry")
			}
		}
	}
}

func TestConveyorLCStages(t *testing.T) {
	pl := NewPipeline(func(p *target.Pocket, m *chem.Mol) float64 { return -7.5 })
	pl.Search = SearchOptions{NumPoses: 4, MCSteps: 15, Restarts: 3, Temperature: 1, Seed: 3}
	r, err := pl.CDT1Receptor(target.Protease1)
	if err != nil || !r.Prepared {
		t.Fatalf("CDT1Receptor: %v", err)
	}
	raw, err := chem.ParseSMILES("CC(=O)Oc1ccccc1C(=O)O.[Na+]")
	if err != nil {
		t.Fatal(err)
	}
	raw.Name = "aspirin"
	lig, err := pl.CDT2Ligand(raw, 9)
	if err != nil {
		t.Fatalf("CDT2Ligand: %v", err)
	}
	if lig.ContainsMetal() {
		t.Fatal("ligand prep kept the counter-ion")
	}
	poses, err := pl.CDT3Docking(r, lig)
	if err != nil {
		t.Fatalf("CDT3Docking: %v", err)
	}
	rescored, err := pl.CDT4mmgbsa(r, poses)
	if err != nil {
		t.Fatalf("CDT4mmgbsa: %v", err)
	}
	if len(rescored) == 0 || len(rescored) > pl.MaxRescorePoses {
		t.Fatalf("rescored %d poses", len(rescored))
	}
	for _, rp := range rescored {
		if rp.MMGBSA != -7.5 {
			t.Fatal("rescore function not applied")
		}
	}
}

func TestConveyorLCRunEndToEnd(t *testing.T) {
	pl := NewPipeline(func(p *target.Pocket, m *chem.Mol) float64 { return -5 })
	pl.Search = SearchOptions{NumPoses: 3, MCSteps: 10, Restarts: 2, Temperature: 1, Seed: 4}
	raw, _ := chem.ParseSMILES("c1ccccc1CCO")
	raw.Name = "pea"
	out, err := pl.Run(target.Spike1, raw, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("pipeline produced no poses")
	}
}

func TestConveyorLCErrors(t *testing.T) {
	pl := NewPipeline(nil)
	if _, err := pl.CDT1Receptor(nil); err == nil {
		t.Fatal("nil receptor must error")
	}
	if _, err := pl.CDT3Docking(&Receptor{}, nil); err == nil {
		t.Fatal("unprepared receptor must error")
	}
	if _, err := pl.CDT4mmgbsa(&Receptor{Prepared: true}, nil); err == nil {
		t.Fatal("missing rescorer must error")
	}
}
