package experiments

import (
	"testing"

	"deepfusion/internal/screen"
)

// TestScorerNamesRoundTripThroughFactory: every name the factory
// advertises — and, crucially, every name the built scorers *report*
// (what a campaign manifest records) — must resolve back through the
// factory, so `campaign resume` can always rebuild a recorded set.
func TestScorerNamesRoundTripThroughFactory(t *testing.T) {
	for _, name := range ScorerNames() {
		s, err := ScorerByName(Smoke, name)
		if err != nil {
			t.Fatalf("factory name %q: %v", name, err)
		}
		// The reported name (composite for consensus) must itself
		// resolve, and to a scorer reporting the same name.
		back, err := ScorerByName(Smoke, s.Name())
		if err != nil {
			t.Fatalf("reported name %q does not round-trip: %v", s.Name(), err)
		}
		if back.Name() != s.Name() {
			t.Fatalf("round-trip renamed %q to %q", s.Name(), back.Name())
		}
	}
	// The full recorded-set path, as cmdResume uses it.
	set, err := ScorersByName(Smoke, []string{"coherent", "vina", "mmgbsa"})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ScorersByName(Smoke, screen.ScorerNames(set))
	if err != nil {
		t.Fatalf("recorded scorer set does not round-trip: %v", err)
	}
	if len(rebuilt) != len(set) {
		t.Fatalf("round-trip changed set size: %d vs %d", len(rebuilt), len(set))
	}
	if _, err := ScorerByName(Smoke, "bogus"); err == nil {
		t.Fatal("unknown scorer must error")
	}
}
