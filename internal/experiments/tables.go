package experiments

import (
	"fmt"

	"deepfusion/internal/cluster"
	"deepfusion/internal/fusion"
	"deepfusion/internal/hpo"
	"deepfusion/internal/metrics"
	"deepfusion/internal/mmgbsa"
)

// Table1 renders the PB2 search space (paper Table 1) from the space
// definitions.
func Table1() string {
	spaces := []struct {
		name  string
		space *hpo.Space
	}{
		{"3D-CNN", hpo.CNN3DSpacePaper()},
		{"SG-CNN", hpo.SGCNNSpacePaper()},
		{"Fusion", hpo.FusionSpacePaper()},
	}
	var rows [][]string
	for _, s := range spaces {
		for _, p := range s.space.Params {
			var rng string
			switch p.Kind {
			case hpo.Bool:
				rng = "T/F"
			case hpo.Choice:
				if len(p.Strings) > 0 {
					rng = fmt.Sprintf("%v", p.Strings)
				} else {
					rng = fmt.Sprintf("%v", p.Options)
				}
			case hpo.Uniform:
				rng = fmt.Sprintf("U(%g, %g)", p.Lo, p.Hi)
			case hpo.LogUniform:
				rng = fmt.Sprintf("logU(%g, %g)", p.Lo, p.Hi)
			}
			rows = append(rows, []string{s.name, p.Name, rng})
		}
	}
	return table("Table 1: PB2 hyper-parameter search space",
		[]string{"model", "hyper-parameter", "range"}, rows)
}

// HPOResult carries a mini-PB2 outcome for Tables 2-5.
type HPOResult struct {
	Best     hpo.Config
	BestLoss float64
	Text     string
}

// hpoBudget returns (population, rounds, epochs/round, train subset).
func hpoBudget(s Scale) (pop, rounds, epochs, subset int) {
	if s == Smoke {
		return 4, 2, 1, 60
	}
	return 6, 2, 2, 160
}

// Table2SGCNN runs the SG-CNN PB2 population (paper: 90 trials) at
// repro scale and reports the converged hyper-parameters next to the
// paper's Table 2 values.
func Table2SGCNN(s Scale) HPOResult {
	b := models(s)
	pop, rounds, epochs, subset := hpoBudget(s)
	train := b.train
	if len(train) > subset {
		train = train[:subset]
	}
	obj := func(cfg hpo.Config, prev hpo.State, seed int64) (hpo.State, float64) {
		sgCfg := fusion.DefaultSGCNNConfig()
		sgCfg.BatchSize = int(cfg.Num["batch_size"])
		sgCfg.LearningRate = cfg.Num["learning_rate"]
		sgCfg.CovK = int(cfg.Num["cov_k"])
		sgCfg.NonCovK = int(cfg.Num["noncov_k"])
		sgCfg.CovGatherWidth = int(cfg.Num["cov_gather_width"])
		sgCfg.NonCovGatherWidth = int(cfg.Num["noncov_gather_width"])
		sgCfg.Graph.CovThreshold = cfg.Num["cov_threshold"]
		sgCfg.Graph.NonCovThreshold = cfg.Num["noncov_threshold"]
		sgCfg.Epochs = epochs
		var m *fusion.SGCNN
		if prev != nil {
			m = prev.(*fusion.SGCNN)
			hist := fusion.ContinueSGCNN(m, sgCfg, train, b.val, seed)
			return m, hist.ValLoss[len(hist.ValLoss)-1]
		}
		m, hist := fusion.TrainSGCNN(sgCfg, train, b.val, seed)
		return m, hist.ValLoss[len(hist.ValLoss)-1]
	}
	res := hpo.Run(hpo.SGCNNSpaceRepro(), obj, hpo.Options{
		Population: pop, QuantileFraction: 0.5, Rounds: rounds, UCBBeta: 1, Seed: 2001,
	})
	rows := [][]string{
		{"Batch size", fmt.Sprintf("%.0f", res.Best.Config.Num["batch_size"]), "16"},
		{"Learning rate", fmt.Sprintf("%.3g", res.Best.Config.Num["learning_rate"]), "2.66e-3"},
		{"Non-covalent K", fmt.Sprintf("%.0f", res.Best.Config.Num["noncov_k"]), "3"},
		{"Covalent K", fmt.Sprintf("%.0f", res.Best.Config.Num["cov_k"]), "6"},
		{"Non-covalent threshold (A)", fmt.Sprintf("%.2f", res.Best.Config.Num["noncov_threshold"]), "5.22"},
		{"Covalent threshold (A)", fmt.Sprintf("%.2f", res.Best.Config.Num["cov_threshold"]), "2.24"},
		{"Non-covalent gather width", fmt.Sprintf("%.0f", res.Best.Config.Num["noncov_gather_width"]), "128 (repro/5.3)"},
		{"Covalent gather width", fmt.Sprintf("%.0f", res.Best.Config.Num["cov_gather_width"]), "24 (repro/2)"},
		{"Best val MSE", fmt.Sprintf("%.3f", res.Best.Loss), "-"},
	}
	return HPOResult{Best: res.Best.Config, BestLoss: res.Best.Loss,
		Text: table(fmt.Sprintf("Table 2: final SG-CNN hyper-parameters (PB2, population %d)", pop),
			[]string{"hyper-parameter", "repro", "paper"}, rows)}
}

// Table3CNN3D runs the 3D-CNN PB2 population (paper: 90 trials).
func Table3CNN3D(s Scale) HPOResult {
	b := models(s)
	pop, rounds, epochs, subset := hpoBudget(s)
	if s == Full {
		subset = 160 // the 3D-CNN is the costliest head; keep PB2 tractable
	}
	train := b.train
	if len(train) > subset {
		train = train[:subset]
	}
	obj := func(cfg hpo.Config, prev hpo.State, seed int64) (hpo.State, float64) {
		c := fusion.DefaultCNN3DConfig()
		c.BatchSize = int(cfg.Num["batch_size"])
		c.LearningRate = cfg.Num["learning_rate"]
		c.BatchNorm = cfg.Num["batch_norm"] == 1
		c.DenseNodes = int(cfg.Num["dense_nodes"])
		c.Residual1 = cfg.Num["residual1"] == 1
		c.Residual2 = cfg.Num["residual2"] == 1
		c.ConvFilters1 = int(cfg.Num["conv_filters1"])
		c.ConvFilters2 = int(cfg.Num["conv_filters2"])
		c.Epochs = epochs
		// The 3D-CNN's architecture hyper-parameters change tensor
		// shapes, so PB2 restarts the model when they differ; matching
		// shapes resume training (state carry-over).
		if prev != nil {
			if m, ok := prev.(*fusion.CNN3D); ok && sameCNNShape(m.Cfg, c) {
				c2 := c
				mHist := fusion.ContinueCNN3D(m, c2, train, b.val, seed)
				return m, mHist.ValLoss[len(mHist.ValLoss)-1]
			}
		}
		m, hist := fusion.TrainCNN3D(c, train, b.val, seed)
		return m, hist.ValLoss[len(hist.ValLoss)-1]
	}
	res := hpo.Run(hpo.CNN3DSpaceRepro(), obj, hpo.Options{
		Population: pop, QuantileFraction: 0.5, Rounds: rounds, UCBBeta: 1, Seed: 2002,
	})
	boolStr := func(v float64) string {
		if v == 1 {
			return "T"
		}
		return "F"
	}
	rows := [][]string{
		{"Batch size", fmt.Sprintf("%.0f", res.Best.Config.Num["batch_size"]), "12"},
		{"Learning rate", fmt.Sprintf("%.3g", res.Best.Config.Num["learning_rate"]), "4.90e-5"},
		{"Batch normalization", boolStr(res.Best.Config.Num["batch_norm"]), "F"},
		{"# dense nodes", fmt.Sprintf("%.0f", res.Best.Config.Num["dense_nodes"]), "128 (repro/4)"},
		{"# conv filters 1", fmt.Sprintf("%.0f", res.Best.Config.Num["conv_filters1"]), "32 (repro/4)"},
		{"# conv filters 2", fmt.Sprintf("%.0f", res.Best.Config.Num["conv_filters2"]), "64 (repro/4)"},
		{"Residual option 1", boolStr(res.Best.Config.Num["residual1"]), "F"},
		{"Residual option 2", boolStr(res.Best.Config.Num["residual2"]), "T"},
		{"Best val MSE", fmt.Sprintf("%.3f", res.Best.Loss), "-"},
	}
	return HPOResult{Best: res.Best.Config, BestLoss: res.Best.Loss,
		Text: table(fmt.Sprintf("Table 3: final 3D-CNN hyper-parameters (PB2, population %d)", pop),
			[]string{"hyper-parameter", "repro", "paper"}, rows)}
}

func sameCNNShape(a, b fusion.CNN3DConfig) bool {
	return a.ConvFilters1 == b.ConvFilters1 && a.ConvFilters2 == b.ConvFilters2 &&
		a.DenseNodes == b.DenseNodes && a.BatchNorm == b.BatchNorm
}

// fusionHPO runs a PB2 population over the fusion space with the given
// coherence mode fixed, returning the converged configuration.
func fusionHPO(s Scale, coherent bool, seed int64) (HPOResult, hpo.Config) {
	b := models(s)
	pop, rounds, epochs, subset := hpoBudget(s)
	train := b.train
	if len(train) > subset {
		train = train[:subset]
	}
	obj := func(cfg hpo.Config, prev hpo.State, objSeed int64) (hpo.State, float64) {
		fCfg := fusion.FusionConfig{
			NumFusionLayers: int(cfg.Num["num_fusion_layers"]),
			DenseNodes:      int(cfg.Num["dense_nodes"]),
			ModelSpecific:   cfg.Num["model_specific_layers"] == 1,
			ResidualFusion:  cfg.Num["residual_fusion"] == 1,
			Activation:      cfg.Strs["activation"],
			Optimizer:       cfg.Strs["optimizer"],
			Dropout1:        cfg.Num["dropout1"],
			Dropout2:        cfg.Num["dropout2"],
			Dropout3:        cfg.Num["dropout3"],
			LearningRate:    cfg.Num["learning_rate"],
			BatchSize:       int(cfg.Num["batch_size"]),
			Epochs:          epochs,
			Pretrained:      cfg.Num["pretrained"] == 1,
			Coherent:        coherent,
		}
		var f *fusion.Fusion
		if prev != nil {
			if pf, ok := prev.(*fusion.Fusion); ok && sameFusionShape(pf.Cfg, fCfg) {
				f = pf
				f.Cfg.LearningRate = fCfg.LearningRate
				f.Cfg.BatchSize = fCfg.BatchSize
				hist := fusion.TrainFusion(f, train, b.val, objSeed)
				return f, hist.ValLoss[len(hist.ValLoss)-1]
			}
		}
		var cnn *fusion.CNN3D
		var sg *fusion.SGCNN
		if fCfg.Pretrained {
			cnn, sg = b.cnn.Clone(), b.sg.Clone()
		} else {
			cnn = fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), objSeed)
			sg = fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), objSeed+1)
		}
		f = fusion.NewFusion(fCfg, cnn, sg, objSeed+2)
		hist := fusion.TrainFusion(f, train, b.val, objSeed)
		return f, hist.ValLoss[len(hist.ValLoss)-1]
	}
	res := hpo.Run(hpo.FusionSpaceRepro(), obj, hpo.Options{
		Population: pop, QuantileFraction: 0.5, Rounds: rounds, UCBBeta: 1, Seed: seed,
	})
	return HPOResult{Best: res.Best.Config, BestLoss: res.Best.Loss}, res.Best.Config
}

func sameFusionShape(a, b fusion.FusionConfig) bool {
	return a.NumFusionLayers == b.NumFusionLayers && a.DenseNodes == b.DenseNodes &&
		a.ModelSpecific == b.ModelSpecific && a.ResidualFusion == b.ResidualFusion &&
		a.Activation == b.Activation && a.Optimizer == b.Optimizer &&
		a.Pretrained == b.Pretrained
}

func fusionHPOTable(title string, r HPOResult, paper map[string]string) string {
	boolStr := func(v float64) string {
		if v == 1 {
			return "T"
		}
		return "F"
	}
	c := r.Best
	rows := [][]string{
		{"Pre-trained", boolStr(c.Num["pretrained"]), paper["pretrained"]},
		{"Batch size", fmt.Sprintf("%.0f", c.Num["batch_size"]), paper["batch_size"]},
		{"Learning rate", fmt.Sprintf("%.3g", c.Num["learning_rate"]), paper["learning_rate"]},
		{"Optimizer", c.Strs["optimizer"], paper["optimizer"]},
		{"Activation", c.Strs["activation"], paper["activation"]},
		{"Model-specific layers", boolStr(c.Num["model_specific_layers"]), paper["model_specific"]},
		{"Residual fusion layers", boolStr(c.Num["residual_fusion"]), paper["residual"]},
		{"Dropout 1 (early)", fmt.Sprintf("%.3f", c.Num["dropout1"]), paper["dropout1"]},
		{"Dropout 2 (mid)", fmt.Sprintf("%.3f", c.Num["dropout2"]), paper["dropout2"]},
		{"Dropout 3 (late)", fmt.Sprintf("%.3f", c.Num["dropout3"]), paper["dropout3"]},
		{"# fusion layers", fmt.Sprintf("%.0f", c.Num["num_fusion_layers"]), paper["layers"]},
		{"Best val MSE", fmt.Sprintf("%.3f", r.BestLoss), "-"},
	}
	return table(title, []string{"hyper-parameter", "repro", "paper"}, rows)
}

// Table4MidFusion runs PB2 for Mid-level Fusion (paper: 180 trials).
func Table4MidFusion(s Scale) HPOResult {
	r, _ := fusionHPO(s, false, 2003)
	r.Text = fusionHPOTable("Table 4: final Mid-level Fusion hyper-parameters", r, map[string]string{
		"pretrained": "T", "batch_size": "1", "learning_rate": "4.03e-4",
		"optimizer": "adam", "activation": "selu", "model_specific": "T",
		"residual": "T", "dropout1": "0.251", "dropout2": "0.125",
		"dropout3": "~0", "layers": "5",
	})
	return r
}

// Table5Coherent runs PB2 for Coherent Fusion (paper: 270 trials).
func Table5Coherent(s Scale) HPOResult {
	r, _ := fusionHPO(s, true, 2004)
	r.Text = fusionHPOTable("Table 5: final Coherent Fusion hyper-parameters", r, map[string]string{
		"pretrained": "T", "batch_size": "48", "learning_rate": "1.08e-4",
		"optimizer": "adam", "activation": "selu", "model_specific": "F",
		"residual": "F", "dropout1": "0.386", "dropout2": "0.247",
		"dropout3": "0.055", "layers": "4",
	})
	return r
}

// Table6Row is one model's core-set performance.
type Table6Row struct {
	Model    string
	RMSE     float64
	MAE      float64
	R2       float64
	Pearson  float64
	Spearman float64
}

// Table6Result is the core-set benchmark (paper Table 6).
type Table6Result struct {
	Rows []Table6Row
	Text string
}

// Table6 evaluates Mid-level, Late and Coherent Fusion on the held-out
// core set crystal poses.
func Table6(s Scale) Table6Result {
	b := models(s)
	labels := fusion.Labels(b.core)
	eval := func(name string, preds []float64) Table6Row {
		return Table6Row{
			Model:    name,
			RMSE:     metrics.RMSE(preds, labels),
			MAE:      metrics.MAE(preds, labels),
			R2:       metrics.R2(preds, labels),
			Pearson:  metrics.Pearson(preds, labels),
			Spearman: metrics.Spearman(preds, labels),
		}
	}
	var res Table6Result
	res.Rows = append(res.Rows, eval("3D-CNN", fusion.PredictCNN3D(b.cnn, b.core)))
	res.Rows = append(res.Rows, eval("SG-CNN", fusion.PredictSGCNN(b.sg, b.core)))
	res.Rows = append(res.Rows, eval("Mid-level Fusion", b.mid.PredictAll(b.core)))
	res.Rows = append(res.Rows, eval("Late Fusion", b.late.PredictAll(b.core)))
	res.Rows = append(res.Rows, eval("Coherent Fusion", b.coherent.PredictAll(b.core)))
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{r.Model,
			fmt.Sprintf("%.3f", r.RMSE), fmt.Sprintf("%.3f", r.MAE),
			fmt.Sprintf("%.3f", r.R2), fmt.Sprintf("%.3f", r.Pearson),
			fmt.Sprintf("%.3f", r.Spearman)})
	}
	res.Text = table(fmt.Sprintf("Table 6: PDBbind core set (n=%d crystal poses); paper: Mid 1.38/0.778, Late 1.33/0.813, Coherent 1.30/0.807 (RMSE/Pearson)", len(labels)),
		[]string{"model", "RMSE", "MAE", "R2", "Pearson", "Spearman"}, rows)
	return res
}

// Table7Result is the throughput table (paper Table 7).
type Table7Result struct {
	SingleStartupMin float64
	SingleEvalMin    float64
	SingleOutputMin  float64
	SinglePosesSec   float64
	PeakPosesSec     float64
	PeakPosesHour    float64
	PeakCompoundsHr  float64
	VinaSpeedup      float64
	GBSASpeedup      float64
	Text             string
}

// Table7 simulates the single-job anatomy and the 125-parallel-job
// peak on the cluster model.
func Table7() Table7Result {
	spec := cluster.DefaultFusionJob()
	// Average the single-job anatomy over simulated runs.
	var res Table7Result
	const runs = 40
	n := 0
	rng := newRand(3001)
	for i := 0; i < runs; i++ {
		j := cluster.SimulateFusionJob(spec, rng)
		if j.Failed {
			continue
		}
		res.SingleStartupMin += j.Startup.Minutes()
		res.SingleEvalMin += j.Eval.Minutes()
		res.SingleOutputMin += j.Output.Minutes()
		res.SinglePosesSec += j.PosesPerSecond()
		n++
	}
	res.SingleStartupMin /= float64(n)
	res.SingleEvalMin /= float64(n)
	res.SingleOutputMin /= float64(n)
	res.SinglePosesSec /= float64(n)
	res.PeakPosesSec = cluster.PeakThroughput(125, spec)
	res.PeakPosesHour = res.PeakPosesSec * 3600
	res.PeakCompoundsHr = res.PeakPosesHour / 10
	perNode := res.SinglePosesSec / float64(spec.Nodes)
	res.VinaSpeedup = perNode / mmgbsa.VinaPosesPerSecPerNode
	res.GBSASpeedup = perNode / mmgbsa.MMGBSAPosesPerSecPerNode
	rows := [][]string{
		{"Avg. startup (min)", fmt.Sprintf("%.1f", res.SingleStartupMin), "20"},
		{"Avg. evaluation (min)", fmt.Sprintf("%.1f", res.SingleEvalMin), "280"},
		{"Avg. file output (min)", fmt.Sprintf("%.1f", res.SingleOutputMin), "6.5"},
		{"Poses/sec (single job)", fmt.Sprintf("%.0f", res.SinglePosesSec), "108"},
		{"Poses/sec (peak, 125 jobs)", fmt.Sprintf("%.0f", res.PeakPosesSec), "13,594"},
		{"Poses/hour (peak)", fmt.Sprintf("%.2e", res.PeakPosesHour), "48,600,000"},
		{"Compounds/hour (peak)", fmt.Sprintf("%.2e", res.PeakCompoundsHr), "4,860,000"},
		{"Speedup vs Vina (per node)", fmt.Sprintf("%.1fx", res.VinaSpeedup), "2.7x"},
		{"Speedup vs MM/GBSA (per node)", fmt.Sprintf("%.0fx", res.GBSASpeedup), "403x"},
	}
	res.Text = table("Table 7: Fusion prediction throughput (2M poses/job, 4 nodes)",
		[]string{"metric", "repro", "paper"}, rows)
	return res
}
