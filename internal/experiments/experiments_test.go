package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The Smoke scale trains tiny models and screens a few dozen
// compounds; these tests validate experiment plumbing and the
// qualitative result shapes that do not need the Full budget.

func TestTable1ContainsAllModels(t *testing.T) {
	txt := Table1()
	for _, want := range []string{"3D-CNN", "SG-CNN", "Fusion", "learning_rate", "logU(1e-08, 0.001)"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, txt)
		}
	}
}

func TestTable6ShapesAndSanity(t *testing.T) {
	res := Table6(Smoke)
	if len(res.Rows) != 5 {
		t.Fatalf("Table 6 rows = %d, want 5", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.RMSE <= 0 || r.RMSE > 5 {
			t.Fatalf("%s RMSE = %v implausible", r.Model, r.RMSE)
		}
		if r.MAE > r.RMSE {
			t.Fatalf("%s MAE %v > RMSE %v", r.Model, r.MAE, r.RMSE)
		}
	}
	// Fusion variants must appear in the text output.
	for _, name := range []string{"Mid-level Fusion", "Late Fusion", "Coherent Fusion"} {
		if !strings.Contains(res.Text, name) {
			t.Fatalf("Table 6 text missing %s", name)
		}
	}
}

func TestTable7MatchesPaperAnatomy(t *testing.T) {
	res := Table7()
	if res.SingleStartupMin < 18 || res.SingleStartupMin > 22 {
		t.Fatalf("startup %v", res.SingleStartupMin)
	}
	if res.SinglePosesSec < 100 || res.SinglePosesSec > 116 {
		t.Fatalf("single-job poses/s %v, paper 108", res.SinglePosesSec)
	}
	if res.PeakPosesSec < 12800 || res.PeakPosesSec > 14400 {
		t.Fatalf("peak poses/s %v, paper 13594", res.PeakPosesSec)
	}
	if res.VinaSpeedup < 2.3 || res.VinaSpeedup > 3.1 {
		t.Fatalf("Vina speedup %v, paper 2.7", res.VinaSpeedup)
	}
	if res.GBSASpeedup < 340 || res.GBSASpeedup > 460 {
		t.Fatalf("GBSA speedup %v, paper 403", res.GBSASpeedup)
	}
}

func TestFigure4Shape(t *testing.T) {
	res := Figure4()
	if len(res.Points) != 12 {
		t.Fatalf("points = %d, want 12", len(res.Points))
	}
	// For each batch size, runtime decreases with nodes.
	byBatch := map[int][]Figure4Point{}
	for _, p := range res.Points {
		byBatch[p.Batch] = append(byBatch[p.Batch], p)
	}
	for batch, pts := range byBatch {
		for i := 1; i < len(pts); i++ {
			if pts[i].RunMinutes >= pts[i-1].RunMinutes {
				t.Fatalf("batch %d: no speedup from %d to %d nodes", batch, pts[i-1].Nodes, pts[i].Nodes)
			}
		}
	}
	// At 4 nodes, batch 56 beats batch 12 by several minutes.
	t12, t56 := 0.0, 0.0
	for _, p := range res.Points {
		if p.Nodes == 4 && p.Batch == 12 {
			t12 = p.RunMinutes
		}
		if p.Nodes == 4 && p.Batch == 56 {
			t56 = p.RunMinutes
		}
	}
	if t56 >= t12 {
		t.Fatalf("batch 56 (%v min) should beat batch 12 (%v min)", t56, t12)
	}
	// 8-node failure rate reported at 20%.
	for _, p := range res.Points {
		if p.Nodes == 8 && p.FailurePct != 20 {
			t.Fatalf("8-node failure %v%%, want 20%%", p.FailurePct)
		}
	}
}

func TestCampaignSmoke(t *testing.T) {
	c := Campaign(Smoke)
	if len(c.PerTarget) != 4 {
		t.Fatalf("targets = %d", len(c.PerTarget))
	}
	if c.NumTested == 0 {
		t.Fatal("no compounds tested")
	}
	for _, tgt := range c.PerTarget {
		if len(tgt.Tested) == 0 {
			t.Fatalf("%s: nothing tested", tgt.Target.Name)
		}
		for _, tc := range tgt.Tested {
			if tc.Inhibition < 0 || tc.Inhibition > 100 {
				t.Fatalf("inhibition %v out of range", tc.Inhibition)
			}
		}
	}
}

func TestFigure5CountsActives(t *testing.T) {
	res := Figure5(Smoke)
	if len(res.Counts) != 4 {
		t.Fatalf("counts for %d targets", len(res.Counts))
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total == 0 {
		t.Fatal("no active compounds anywhere; Figure 5 would be empty")
	}
}

func TestTable8AllCells(t *testing.T) {
	res := Table8(Smoke)
	if len(res.Rows) != 12 {
		t.Fatalf("Table 8 rows = %d, want 12 (3 methods x 4 targets)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Pearson < -1 || r.Pearson > 1 {
			t.Fatalf("Pearson %v out of range", r.Pearson)
		}
	}
}

func TestFigure6AllCells(t *testing.T) {
	res := Figure6(Smoke)
	if len(res.Rows) != 12 {
		t.Fatalf("Figure 6 rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.F1 < 0 || r.F1 > 1 {
			t.Fatalf("F1 %v out of range", r.F1)
		}
	}
}

func TestFigure7TopCompounds(t *testing.T) {
	res := Figure7(Smoke)
	if len(res.Top) == 0 {
		t.Fatal("no top compounds")
	}
	for i := 1; i < len(res.Top); i += 2 {
		if res.Top[i].Inhibition > res.Top[i-1].Inhibition {
			t.Fatal("per-target top compounds not sorted by inhibition")
		}
	}
}

func TestHitRatePositive(t *testing.T) {
	res := HitRate(Smoke)
	if res.Tested == 0 {
		t.Fatal("nothing tested")
	}
	if res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("hit rate %v", res.HitRate)
	}
}

func TestHPOTablesSmoke(t *testing.T) {
	if r := Table2SGCNN(Smoke); r.Text == "" || r.BestLoss <= 0 {
		t.Fatal("Table 2 empty")
	}
	if r := Table4MidFusion(Smoke); !strings.Contains(r.Text, "Mid-level") {
		t.Fatal("Table 4 empty")
	}
}

func TestWriteFullReportCoversEveryExperiment(t *testing.T) {
	// The full report is the release artifact cmd/benchreport ships; it
	// must render every table and figure of the paper's evaluation in
	// order, at smoke scale, without panicking.
	var buf bytes.Buffer
	WriteFullReport(&buf, Smoke)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Table 6", "Figure 2", "Table 7", "Figure 4", "Figure 5",
		"Table 8", "Figure 6", "Figure 7", "Hit rate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full report is missing the %q section", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("full report contains NaN cells")
	}
}

func TestCoherentModelCached(t *testing.T) {
	// Coherent() must hand back the memoized bundle: two calls at the
	// same scale return the identical trained model.
	a := Coherent(Smoke)
	b := Coherent(Smoke)
	if a != b {
		t.Fatal("Coherent(Smoke) should return the cached instance")
	}
	if a == nil {
		t.Fatal("Coherent(Smoke) returned nil")
	}
}

func TestFigure1RendersTrainedArchitecture(t *testing.T) {
	out := Figure1(Smoke)
	for _, want := range []string{
		"Figure 1", "3D-CNN head", "SG-CNN head", "Fusion block",
		"Coherent Fusion (backprop through both heads)", "total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q", want)
		}
	}
	if d := DescribeModels(Smoke); !strings.Contains(d, "Coherent Fusion") {
		t.Errorf("DescribeModels output incomplete:\n%s", d)
	}
}
