// Package experiments implements every table and figure of the
// paper's evaluation as a reproducible computation. Each experiment
// returns both structured results and a formatted text block whose
// rows mirror the paper's, so the top-level benchmarks and the
// benchreport command share one implementation. EXPERIMENTS.md records
// paper-vs-measured values for each.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/pdbbind"
)

// Scale selects the experiment budget.
type Scale int

// Budgets: Smoke is for tests (seconds), Full for benchmark runs
// (minutes).
const (
	Smoke Scale = iota
	Full
)

// trainBundle carries the models trained once and shared by the
// model-quality experiments (Table 6, Figure 2, campaign analyses).
type trainBundle struct {
	ds       *pdbbind.Dataset
	train    []*fusion.Sample
	val      []*fusion.Sample
	core     []*fusion.Sample
	cnn      *fusion.CNN3D
	sg       *fusion.SGCNN
	late     *fusion.LateFusion
	mid      *fusion.Fusion
	coherent *fusion.Fusion
	voxel    featurize.VoxelOptions
	graph    featurize.GraphOptions
}

var (
	bundleMu sync.Mutex
	bundles  = map[Scale]*trainBundle{}
)

// datasetOptions sizes the synthetic PDBbind corpus per scale.
func datasetOptions(s Scale) pdbbind.Options {
	o := pdbbind.DefaultOptions()
	if s == Smoke {
		o.NGeneral, o.NRefined, o.NCore = 120, 60, 32
	}
	return o
}

// models trains (once per scale) the 3D-CNN, SG-CNN and the three
// fusion variants on the synthetic PDBbind corpus, following the
// paper's procedure: individual heads first, Mid-level Fusion with
// frozen pre-trained heads, Coherent Fusion fine-tuning pre-trained
// heads.
func models(s Scale) *trainBundle {
	bundleMu.Lock()
	defer bundleMu.Unlock()
	if b, ok := bundles[s]; ok {
		return b
	}
	b := &trainBundle{voxel: featurize.DefaultVoxelOptions(), graph: featurize.DefaultGraphOptions()}
	b.ds = pdbbind.Generate(datasetOptions(s))
	b.train = fusion.FeaturizeDataset(b.ds.Train, b.voxel, b.graph)
	b.val = fusion.FeaturizeDataset(b.ds.Val, b.voxel, b.graph)
	b.core = fusion.FeaturizeDataset(b.ds.Core, b.voxel, b.graph)

	cnnCfg := fusion.DefaultCNN3DConfig()
	sgCfg := fusion.DefaultSGCNNConfig()
	midCfg := fusion.DefaultMidFusionConfig()
	cohCfg := fusion.DefaultCoherentConfig()
	if s == Smoke {
		cnnCfg.Epochs, sgCfg.Epochs, midCfg.Epochs, cohCfg.Epochs = 2, 4, 2, 2
	}
	b.cnn, _ = fusion.TrainCNN3D(cnnCfg, b.train, b.val, 1001)
	b.sg, _ = fusion.TrainSGCNN(sgCfg, b.train, b.val, 1002)
	b.late = &fusion.LateFusion{CNN: b.cnn, SG: b.sg}

	b.mid = fusion.NewFusion(midCfg, b.cnn.Clone(), b.sg.Clone(), 1003)
	fusion.TrainFusion(b.mid, b.train, b.val, 1004)

	b.coherent = fusion.NewFusion(cohCfg, b.cnn.Clone(), b.sg.Clone(), 1005)
	fusion.TrainFusion(b.coherent, b.train, b.val, 1006)

	bundles[s] = b
	return b
}

// Coherent returns the trained Coherent Fusion model for the scale
// (trains on first use).
func Coherent(s Scale) *fusion.Fusion { return models(s).coherent }

// table renders rows with a header as an aligned text block.
func table(title string, header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
