package experiments

import (
	"fmt"
	"sort"

	"deepfusion/internal/cluster"
	"deepfusion/internal/dock"
	"deepfusion/internal/fusion"
	"deepfusion/internal/metrics"
	"deepfusion/internal/mmgbsa"
)

// Figure2Result is the docked-pose classification benchmark (paper
// Figure 2 plus the docking-space correlations of Section 3.4).
type Figure2Result struct {
	N             int
	NPos, NNeg    int
	VinaPearson   float64
	GBSAPearson   float64
	FusionPearson float64
	VinaF1        float64
	GBSAF1        float64
	FusionF1      float64
	Baseline      float64 // random-classifier precision
	Text          string
}

// Figure2 docks the core-set complexes, filters to well-reproduced
// poses (the paper kept compounds with a pose within 1 A RMSD of the
// crystal; the coarse repro-scale search uses 2.5 A), then compares
// Vina, MM/GBSA and Coherent Fusion as classifiers of stronger vs
// weaker binders on the docked poses.
func Figure2(s Scale) Figure2Result {
	b := models(s)
	so := dock.SearchOptions{NumPoses: 5, MCSteps: 40, Restarts: 5, Temperature: 1.2, Seed: 41}
	var truth, vina, gbsa, fus []float64
	for _, c := range b.ds.Core {
		poses := dock.Dock(c.Pocket, c.Mol, so)
		if len(poses) == 0 {
			continue
		}
		// Pose-quality filter against the crystal pose: keep the pose
		// closest to the crystal geometry, provided it reproduces the
		// binding mode at all (the paper used RMSD < 1 A; the repro
		// Monte-Carlo search is far coarser, so the gate is the pocket
		// radius).
		best := 0
		bestRMSD := dock.RMSD(poses[0].Mol, c.Mol)
		for i, p := range poses[1:] {
			if r := dock.RMSD(p.Mol, c.Mol); r < bestRMSD {
				best, bestRMSD = i+1, r
			}
		}
		if bestRMSD > c.Pocket.Radius {
			continue
		}
		pose := poses[best]
		truth = append(truth, c.Label)
		vina = append(vina, -pose.Score)
		gbsa = append(gbsa, -mmgbsa.Rescore(c.Pocket, pose.Mol))
		sample := fusion.FeaturizeComplex(c.ID, c.Pocket, pose.Mol, 0, b.voxel, b.graph)
		fus = append(fus, b.coherent.Predict(sample))
	}
	var res Figure2Result
	res.N = len(truth)
	res.VinaPearson = metrics.Pearson(vina, truth)
	res.GBSAPearson = metrics.Pearson(gbsa, truth)
	res.FusionPearson = metrics.Pearson(fus, truth)

	// Binary classification: stronger vs weaker binders. The paper used
	// pKi > 8 vs < 6 on PDBbind labels; the synthetic corpus is centered
	// lower, so the thresholds are the corresponding upper/lower
	// terciles of the label distribution.
	hi, lo := tercileThresholds(truth)
	var labels []bool
	var vinaC, gbsaC, fusC []float64
	for i, v := range truth {
		switch {
		case v >= hi:
			labels = append(labels, true)
		case v <= lo:
			labels = append(labels, false)
		default:
			continue
		}
		vinaC = append(vinaC, vina[i])
		gbsaC = append(gbsaC, gbsa[i])
		fusC = append(fusC, fus[i])
	}
	for _, l := range labels {
		if l {
			res.NPos++
		} else {
			res.NNeg++
		}
	}
	res.VinaF1, _ = metrics.BestF1(vinaC, labels)
	res.GBSAF1, _ = metrics.BestF1(gbsaC, labels)
	res.FusionF1, _ = metrics.BestF1(fusC, labels)
	res.Baseline = metrics.PositiveRate(labels)
	rows := [][]string{
		{"Vina", fmt.Sprintf("%.3f", res.VinaPearson), fmt.Sprintf("%.3f", res.VinaF1), "0.579", "lowest"},
		{"MM/GBSA", fmt.Sprintf("%.3f", res.GBSAPearson), fmt.Sprintf("%.3f", res.GBSAF1), "0.591", "middle"},
		{"Coherent Fusion", fmt.Sprintf("%.3f", res.FusionPearson), fmt.Sprintf("%.3f", res.FusionF1), "0.745", "highest"},
	}
	res.Text = table(fmt.Sprintf("Figure 2: docked core-set classification (n=%d scored, %d strong / %d weak; random baseline precision %.2f)",
		res.N, res.NPos, res.NNeg, res.Baseline),
		[]string{"method", "Pearson (docked)", "best F1", "paper Pearson", "paper F1 order"}, rows)
	return res
}

func tercileThresholds(v []float64) (hi, lo float64) {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	lo = s[len(s)/3]
	hi = s[len(s)*2/3]
	return hi, lo
}

// Figure4Point is one strong-scaling measurement.
type Figure4Point struct {
	Nodes      int
	Batch      int
	RunMinutes float64
	FailurePct float64
}

// Figure4Result is the strong-scaling study (paper Figure 4).
type Figure4Result struct {
	Points []Figure4Point
	Text   string
}

// Figure4 simulates the 2M-pose job at every node count and batch size
// of the paper's study (10 jobs per point, as in the paper).
func Figure4() Figure4Result {
	var res Figure4Result
	rng := newRand(4001)
	var rows [][]string
	for _, batch := range []int{12, 23, 56} {
		for _, nodes := range []int{1, 2, 4, 8} {
			spec := cluster.DefaultFusionJob()
			spec.Nodes = nodes
			spec.BatchPerRank = batch
			total := 0.0
			n := 0
			for i := 0; i < 10; i++ {
				j := cluster.SimulateFusionJob(spec, rng)
				if j.Failed {
					continue
				}
				total += j.Total().Minutes()
				n++
			}
			p := Figure4Point{
				Nodes:      nodes,
				Batch:      batch,
				RunMinutes: total / float64(n),
				FailurePct: 100 * cluster.FailureRate(nodes),
			}
			res.Points = append(res.Points, p)
			rows = append(rows, []string{
				fmt.Sprintf("%d", batch), fmt.Sprintf("%d", nodes),
				fmt.Sprintf("%.0f", p.RunMinutes), fmt.Sprintf("%.0f%%", p.FailurePct)})
		}
	}
	res.Text = table("Figure 4: strong scaling of one 2M-pose Coherent Fusion job (10 jobs/point)",
		[]string{"batch/rank", "nodes", "run time (min)", "job failure rate"}, rows)
	return res
}
