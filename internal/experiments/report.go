package experiments

import (
	"fmt"
	"io"
)

// WriteFullReport renders every experiment at the given scale to w, in
// the paper's order. cmd/benchreport and release tooling use this to
// produce a single reproduction document.
func WriteFullReport(w io.Writer, s Scale) {
	sections := []func() string{
		func() string { return Figure1(s) },
		Table1,
		func() string { return Table2SGCNN(s).Text },
		func() string { return Table3CNN3D(s).Text },
		func() string { return Table4MidFusion(s).Text },
		func() string { return Table5Coherent(s).Text },
		func() string { return Table6(s).Text },
		func() string { return Figure2(s).Text },
		func() string { return Table7().Text },
		func() string { return Figure4().Text },
		func() string { return Figure5(s).Text },
		func() string { return Table8(s).Text },
		func() string { return Figure6(s).Text },
		func() string { return Figure7(s).Text },
		func() string { return HitRate(s).Text },
	}
	for _, f := range sections {
		fmt.Fprintln(w, f())
	}
}
