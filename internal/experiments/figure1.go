package experiments

import (
	"fmt"
	"strings"
)

// Figure1 renders the paper's architecture figure as text: the 3D-CNN
// head, the SG-CNN head and the fusion block of the trained Coherent
// Fusion model, layer by layer with parameter counts. The dashed
// optional components of the paper's figure appear when the converged
// configuration enables them (residual connections, model-specific
// dense layers, batch normalization).
func Figure1(s Scale) string {
	f := Coherent(s)
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 1: Deep Fusion architecture (trained configuration)")
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	b.WriteString(f.Summary())
	return b.String()
}

// DescribeModels renders all five trained model variants' headline
// numbers for quick comparison (used by cmd/train -v style output).
func DescribeModels(s Scale) string {
	m := models(s)
	var b strings.Builder
	fmt.Fprintf(&b, "model parameter counts at %s scale:\n", scaleLabel(s))
	fmt.Fprintf(&b, "  3D-CNN: %s", firstLineTotal(m.cnn.Summary()))
	fmt.Fprintf(&b, "  SG-CNN: %s", firstLineTotal(m.sg.Summary()))
	fmt.Fprintf(&b, "  Coherent Fusion: %s", firstLineTotal(m.coherent.Summary()))
	return b.String()
}

func firstLineTotal(summary string) string {
	for _, line := range strings.Split(summary, "\n") {
		if strings.Contains(line, "total") {
			return strings.TrimSpace(line) + "\n"
		}
	}
	return "?\n"
}

func scaleLabel(s Scale) string {
	if s == Full {
		return "full"
	}
	return "smoke"
}
