package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"deepfusion/internal/assay"
	"deepfusion/internal/chem"
	"deepfusion/internal/libgen"
	"deepfusion/internal/metrics"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// TestedCompound is one experimentally prosecuted compound with its
// computational predictions and assay readout.
type TestedCompound struct {
	ID         string
	Fusion     float64 // max predicted pK over poses
	Vina       float64 // min kcal/mol over poses
	AMPL       float64 // AMPL MM/GBSA surrogate, kcal/mol
	Inhibition float64 // percent at the assay concentration
}

// TargetOutcome is the retrospective dataset for one binding site.
type TargetOutcome struct {
	Target   *target.Pocket
	Assay    *assay.Assay
	Tested   []TestedCompound
	Screened int
}

// Active returns the tested compounds with > 1% inhibition (the subset
// used for Figure 5 and Table 8).
func (t *TargetOutcome) Active() []TestedCompound {
	var out []TestedCompound
	for _, c := range t.Tested {
		if c.Inhibition > 1 {
			out = append(out, c)
		}
	}
	return out
}

// CampaignResult is the full four-target screening + experimental
// validation retrospective.
type CampaignResult struct {
	PerTarget []*TargetOutcome
	NumTested int
	NumHits   int // >= 33% inhibition
	NumFull   int // >= 95% inhibition ("100%" class of the paper)
}

// HitRate is the fraction of tested compounds with >= 33% inhibition
// (paper: 108/1042 = 10.4%).
func (c *CampaignResult) HitRate() float64 {
	if c.NumTested == 0 {
		return 0
	}
	return float64(c.NumHits) / float64(c.NumTested)
}

var (
	campaignMu    sync.Mutex
	campaignCache = map[Scale]*CampaignResult{}
)

// campaignBudget returns (compounds screened per target, compounds
// selected for experiment per target).
func campaignBudget(s Scale) (screened, tested int) {
	if s == Smoke {
		return 36, 24
	}
	return 420, 260
}

// Campaign runs (once per scale) the end-to-end screen: draw compounds
// from all four libraries, prepare, dock against each target, score
// poses with the distributed Fusion job, fold to per-compound scores,
// fit the per-target AMPL surrogate, select the purchase list with the
// weighted cost function and read out the simulated assays.
func Campaign(s Scale) *CampaignResult {
	campaignMu.Lock()
	defer campaignMu.Unlock()
	if c, ok := campaignCache[s]; ok {
		return c
	}
	b := models(s)
	nScreen, nTest := campaignBudget(s)

	// Draw the deduplicated screening deck from the four libraries.
	mols := libgen.Draw(libgen.All(), nScreen)
	byID := map[string]*chem.Mol{}
	for _, m := range mols {
		byID[m.Name] = m
	}

	res := &CampaignResult{}
	for ti, tgt := range target.All() {
		poses, _, dockErr := screen.DockCompounds(context.Background(), tgt, mols, 5, int64(5000+ti))
		if dockErr != nil {
			continue
		}
		jobOpts := screen.DefaultJobOptions()
		jobOpts.Voxel = b.voxel
		jobOpts.Graph = b.graph
		jobOpts.Seed = int64(6000 + ti)
		preds, _, err := screen.RunJobWithRetry(context.Background(), b.coherent, tgt, toScreenPoses(poses), jobOpts, 3)
		if err != nil {
			continue
		}
		scores := screen.AggregateByCompound(preds)

		ampl := mmgbsa.NewAMPL(tgt)
		fitSet := mols
		if len(fitSet) > 60 {
			fitSet = fitSet[:60]
		}
		if err := ampl.Fit(fitSet); err == nil {
			screen.AttachAMPL(scores, ampl, byID)
		}
		selected := screen.SelectForExperiment(scores, screen.DefaultCostWeights(), nTest)

		out := &TargetOutcome{Target: tgt, Assay: assay.ForTarget(tgt), Screened: len(scores)}
		for _, cs := range selected {
			m := byID[cs.CompoundID]
			if m == nil {
				continue
			}
			inh := out.Assay.Inhibition(m)
			out.Tested = append(out.Tested, TestedCompound{
				ID: cs.CompoundID, Fusion: cs.Fusion, Vina: cs.Vina, AMPL: cs.AMPL, Inhibition: inh,
			})
			res.NumTested++
			if inh >= 33 {
				res.NumHits++
			}
			if inh >= 95 {
				res.NumFull++
			}
		}
		res.PerTarget = append(res.PerTarget, out)
	}
	campaignCache[s] = res
	return res
}

func toScreenPoses(ps []screen.Pose) []screen.Pose { return ps }

// Figure5Result summarizes predicted affinity vs experimental
// inhibition for compounds with measurable activity (paper Figure 5).
type Figure5Result struct {
	Counts map[string]int // active compounds per target
	Text   string
}

// Figure5 reports, per target, the active-compound count and the
// Fusion prediction statistics of the scatter the paper plots.
func Figure5(s Scale) Figure5Result {
	c := Campaign(s)
	res := Figure5Result{Counts: map[string]int{}}
	var rows [][]string
	paperCounts := map[string]string{
		"protease1": "130 (at 100 uM)", "protease2": "81 (at 100 uM)",
		"spike1": "151 (at 10 uM)", "spike2": "113 (at 10 uM)",
	}
	for _, t := range c.PerTarget {
		act := t.Active()
		res.Counts[t.Target.Name] = len(act)
		var pk, inh []float64
		for _, a := range act {
			pk = append(pk, a.Fusion)
			inh = append(inh, a.Inhibition)
		}
		meanPK := mean(pk)
		rows = append(rows, []string{
			t.Target.Name,
			fmt.Sprintf("%d", len(act)),
			fmt.Sprintf("%.0f uM", t.Assay.ConcentrationUM),
			fmt.Sprintf("%.2f", meanPK),
			fmt.Sprintf("%.1f%%", mean(inh)),
			paperCounts[t.Target.Name],
		})
	}
	res.Text = table("Figure 5: Coherent Fusion predicted pK vs experimental inhibition (> 1% inhibition subset)",
		[]string{"target", "active n", "assay conc", "mean predicted pK", "mean inhibition", "paper active n"}, rows)
	return res
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Table8Row is one method x target correlation measurement.
type Table8Row struct {
	Method   string
	Target   string
	Pearson  float64
	Spearman float64
}

// Table8Result is the correlation table on the > 1% inhibition subset
// (paper Table 8).
type Table8Result struct {
	Rows []Table8Row
	Text string
}

// Table8 computes Pearson/Spearman of each scoring method against
// percent inhibition on compounds with measurable activity, using the
// absolute value of the physics scores (as the paper does).
func Table8(s Scale) Table8Result {
	c := Campaign(s)
	var res Table8Result
	var rows [][]string
	paper := map[string][2]string{
		"Vina/protease1":            {"0.03", "-0.08"},
		"AMPL MM/GBSA/protease1":    {"0.08", "0.01"},
		"Coherent Fusion/protease1": {"-0.06", "-0.04"},
		"Vina/protease2":            {"-0.08", "-0.14"},
		"AMPL MM/GBSA/protease2":    {"-0.05", "-0.07"},
		"Coherent Fusion/protease2": {"0.04", "0.04"},
		"Vina/spike1":               {"-0.02", "0.06"},
		"AMPL MM/GBSA/spike1":       {"0.15", "0.22"},
		"Coherent Fusion/spike1":    {"0.22", "0.30"},
		"Vina/spike2":               {"0.13", "0.27"},
		"AMPL MM/GBSA/spike2":       {"-0.02", "-0.05"},
		"Coherent Fusion/spike2":    {"-0.02", "-0.01"},
	}
	for _, t := range c.PerTarget {
		act := t.Active()
		var inh, vina, ampl, fus []float64
		for _, a := range act {
			inh = append(inh, a.Inhibition)
			vina = append(vina, math.Abs(a.Vina))
			ampl = append(ampl, math.Abs(a.AMPL))
			fus = append(fus, a.Fusion)
		}
		for _, m := range []struct {
			name string
			pred []float64
		}{
			{"Vina", vina},
			{"AMPL MM/GBSA", ampl},
			{"Coherent Fusion", fus},
		} {
			row := Table8Row{
				Method: m.name, Target: t.Target.Name,
				Pearson:  metrics.Pearson(m.pred, inh),
				Spearman: metrics.Spearman(m.pred, inh),
			}
			res.Rows = append(res.Rows, row)
			pv := paper[m.name+"/"+t.Target.Name]
			rows = append(rows, []string{m.name, t.Target.Name,
				fmt.Sprintf("%.2f", row.Pearson), fmt.Sprintf("%.2f", row.Spearman),
				pv[0], pv[1]})
		}
	}
	res.Text = table("Table 8: correlation with percent inhibition (> 1% inhibition subset)",
		[]string{"method", "target/site", "Pearson", "Spearman", "paper P", "paper S"}, rows)
	return res
}

// Figure6Row is one method x target classification result at the 33%
// inhibition threshold.
type Figure6Row struct {
	Method string
	Target string
	F1     float64
	Kappa  float64
	NPos   int
	NNeg   int
}

// Figure6Result is the per-target precision/recall study (paper
// Figure 6).
type Figure6Result struct {
	Rows []Figure6Row
	Text string
}

// Figure6 classifies tested compounds at 33% inhibition per target and
// method, reporting best F1 and Cohen's kappa at the best-F1 operating
// point against the random-classifier baseline.
func Figure6(s Scale) Figure6Result {
	c := Campaign(s)
	var res Figure6Result
	var rows [][]string
	for _, t := range c.PerTarget {
		var labels []bool
		var vina, ampl, fus []float64
		nPos, nNeg := 0, 0
		for _, a := range t.Tested {
			pos := a.Inhibition > 33
			labels = append(labels, pos)
			if pos {
				nPos++
			} else {
				nNeg++
			}
			vina = append(vina, math.Abs(a.Vina))
			ampl = append(ampl, math.Abs(a.AMPL))
			fus = append(fus, a.Fusion)
		}
		baseline := metrics.PositiveRate(labels)
		for _, m := range []struct {
			name string
			pred []float64
		}{
			{"Vina", vina},
			{"AMPL MM/GBSA", ampl},
			{"Coherent Fusion", fus},
		} {
			f1, thr := metrics.BestF1(m.pred, labels)
			var cls []bool
			for _, p := range m.pred {
				cls = append(cls, p >= thr)
			}
			row := Figure6Row{
				Method: m.name, Target: t.Target.Name,
				F1: f1, Kappa: metrics.CohenKappa(cls, labels),
				NPos: nPos, NNeg: nNeg,
			}
			res.Rows = append(res.Rows, row)
			rows = append(rows, []string{m.name, t.Target.Name,
				fmt.Sprintf("%d/%d", nPos, nNeg),
				fmt.Sprintf("%.3f", f1), fmt.Sprintf("%.3f", row.Kappa),
				fmt.Sprintf("%.2f", baseline)})
		}
	}
	res.Text = table("Figure 6: classification at 33% inhibition (paper pos/neg: 30/311, 20/196, 32/209, 26/218)",
		[]string{"method", "target", "pos/neg", "best F1", "kappa", "random baseline"}, rows)
	return res
}

// Figure7Result lists the top experimental inhibitors with their
// predicted affinities (paper Figure 7: predicted pK 8.5/8.1 for two
// Mpro compounds at 100% inhibition, 7.6/8.3 for two spike compounds
// at 100%/98%).
type Figure7Result struct {
	Top  []TestedCompound
	Text string
}

// Figure7 reports the two strongest experimental inhibitors of
// protease1 and spike1.
func Figure7(s Scale) Figure7Result {
	c := Campaign(s)
	var res Figure7Result
	var rows [][]string
	for _, t := range c.PerTarget {
		if t.Target != target.Protease1 && t.Target != target.Spike1 {
			continue
		}
		tested := append([]TestedCompound(nil), t.Tested...)
		sort.SliceStable(tested, func(a, b int) bool { return tested[a].Inhibition > tested[b].Inhibition })
		for i := 0; i < 2 && i < len(tested); i++ {
			res.Top = append(res.Top, tested[i])
			rows = append(rows, []string{t.Target.Name, tested[i].ID,
				fmt.Sprintf("%.1f", tested[i].Fusion),
				fmt.Sprintf("%.0f%%", tested[i].Inhibition)})
		}
	}
	res.Text = table("Figure 7: top experimental inhibitors (paper: Mpro 8.5/100%, 8.1/100%; spike 7.6/100%, 8.3/98%)",
		[]string{"target", "compound", "predicted pK", "inhibition"}, rows)
	return res
}

// HitRateResult is the campaign-level enrichment summary (paper
// Section 5.3: 108 of 1042 tested compounds at >= 33%, a 10.4% hit
// rate, with 9 distinct compounds at 100% Mpro inhibition).
type HitRateResult struct {
	Tested  int
	Hits    int
	Full    int
	HitRate float64
	Text    string
}

// HitRate summarizes the campaign's experimental enrichment.
func HitRate(s Scale) HitRateResult {
	c := Campaign(s)
	res := HitRateResult{Tested: c.NumTested, Hits: c.NumHits, Full: c.NumFull, HitRate: c.HitRate()}
	rows := [][]string{
		{"compounds tested", fmt.Sprintf("%d", res.Tested), "1042"},
		{"hits (>= 33% inhibition)", fmt.Sprintf("%d", res.Hits), "108"},
		{"hit rate", fmt.Sprintf("%.1f%%", 100*res.HitRate), "10.4%"},
		{"full inhibitors (>= 95%)", fmt.Sprintf("%d", res.Full), "9 (at 100%)"},
	}
	res.Text = table("Hit rate: experimental enrichment of the selected compounds",
		[]string{"metric", "repro", "paper"}, rows)
	return res
}
