package experiments

import (
	"fmt"
	"strings"

	"deepfusion/internal/dock"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/screen"
)

// ScorerNames lists every scorer the factory can build: the five
// trained model families, the two physics surrogates, and the
// consensus over {coherent, vina, mmgbsa} — the paper's method
// comparison as one flag surface.
func ScorerNames() []string {
	return []string{"cnn3d", "sgcnn", "late", "mid", "coherent", "vina", "mmgbsa", "consensus"}
}

// ScorerByName builds the named scorer at the given training scale.
// Model scorers train (once per scale, cached) on first use; the
// physics surrogates are free. Beyond the factory keys, the composite
// names a Consensus reports — "consensus(a+b+c)" — resolve back to
// the same consensus, so the scorer set a campaign manifest records
// round-trips through this factory on resume.
func ScorerByName(s Scale, name string) (screen.Scorer, error) {
	switch name {
	case "vina":
		return dock.VinaScorer{}, nil
	case "mmgbsa":
		return mmgbsa.Scorer{}, nil
	case "consensus":
		b := models(s)
		return screen.NewConsensus(b.coherent, dock.VinaScorer{}, mmgbsa.Scorer{})
	}
	if inner, ok := strings.CutPrefix(name, "consensus("); ok && strings.HasSuffix(inner, ")") {
		members, err := ScorersByName(s, strings.Split(strings.TrimSuffix(inner, ")"), "+"))
		if err != nil {
			return nil, err
		}
		return screen.NewConsensus(members...)
	}
	b := models(s)
	switch name {
	case "cnn3d":
		return b.cnn, nil
	case "sgcnn":
		return b.sg, nil
	case "late":
		return b.late, nil
	case "mid":
		return b.mid, nil
	case "coherent":
		return b.coherent, nil
	}
	return nil, fmt.Errorf("experiments: unknown scorer %q (want %s)", name, strings.Join(ScorerNames(), "|"))
}

// ScorersByName builds a scorer set from a name list, in order (the
// first is the primary scorer).
func ScorersByName(s Scale, names []string) ([]screen.Scorer, error) {
	out := make([]screen.Scorer, 0, len(names))
	for _, n := range names {
		sc, err := ScorerByName(s, strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// ScorersFromSpec parses a comma-separated scorer-set spec
// ("coherent" or "coherent,vina,mmgbsa"; blanks around commas are
// tolerated, the first name is the primary scorer) and builds the set
// at the given scale. It is the one parser behind every -scorers flag
// — the campaign runner and the screening service both resolve specs
// here, so the grammar cannot drift between front doors.
func ScorersFromSpec(s Scale, spec string) ([]screen.Scorer, error) {
	var names []string
	for _, n := range strings.Split(spec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("experiments: scorer spec %q names no scorers (want a comma-separated subset of %s)", spec, strings.Join(ScorerNames(), "|"))
	}
	return ScorersByName(s, names)
}
