package screen

import (
	"testing"
)

func TestAggregateEmpty(t *testing.T) {
	if got := AggregateByCompound(nil); len(got) != 0 {
		t.Fatal("empty aggregation")
	}
}

func TestAggregatePreservesFirstSeenOrder(t *testing.T) {
	preds := []Prediction{
		{CompoundID: "z", Target: "t", Fusion: 1},
		{CompoundID: "a", Target: "t", Fusion: 2},
		{CompoundID: "z", Target: "t", Fusion: 3},
	}
	agg := AggregateByCompound(preds)
	if agg[0].CompoundID != "z" || agg[1].CompoundID != "a" {
		t.Fatalf("order not preserved: %+v", agg)
	}
	if agg[0].Fusion != 3 {
		t.Fatal("max-pose aggregation wrong")
	}
}

func TestSelectForExperimentStable(t *testing.T) {
	// Equal combined scores keep input order (stable sort).
	scores := []CompoundScore{
		{CompoundID: "first", Fusion: 5},
		{CompoundID: "second", Fusion: 5},
	}
	top := SelectForExperiment(scores, CostWeights{Fusion: 1}, 2)
	if top[0].CompoundID != "first" {
		t.Fatal("stable ordering violated")
	}
}

func TestSelectDoesNotMutateInput(t *testing.T) {
	scores := []CompoundScore{
		{CompoundID: "low", Fusion: 1},
		{CompoundID: "high", Fusion: 9},
	}
	SelectForExperiment(scores, DefaultCostWeights(), 1)
	if scores[0].CompoundID != "low" {
		t.Fatal("SelectForExperiment reordered its input")
	}
}

func TestDefaultCostWeightsFavorFusion(t *testing.T) {
	w := DefaultCostWeights()
	if w.Fusion <= w.Vina || w.Fusion <= w.AMPL {
		t.Fatalf("fusion should carry the largest weight: %+v", w)
	}
	if w.Fusion+w.Vina+w.AMPL != 1 {
		t.Fatalf("weights should sum to 1: %+v", w)
	}
}
