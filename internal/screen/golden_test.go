package screen

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"deepfusion/internal/dock"
	"deepfusion/internal/fusion"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/target"
)

// legacyRunJob is a straight-line reimplementation of the
// pre-redesign RunJob semantics (the single-model engine this PR
// replaced): for every pose, featurize with the JobOptions options,
// predict with the Fusion model, attach the pose's Vina score and the
// MM/GBSA rescore, and attribute the pose to the rank that owned its
// index stride. The golden test pins the generic Scorer engine
// byte-identical to this path.
func legacyRunJob(f *fusion.Fusion, p *target.Pocket, poses []Pose, o JobOptions) []Prediction {
	out := make([]Prediction, len(poses))
	for i, ps := range poses {
		s := fusion.FeaturizeComplex(ps.CompoundID, p, ps.Mol, 0, o.Voxel, o.Graph)
		out[i] = Prediction{
			CompoundID: ps.CompoundID,
			Target:     p.Name,
			PoseRank:   ps.PoseRank,
			Fusion:     f.Predict(s),
			Vina:       ps.VinaScore,
			MMGBSA:     mmgbsa.Rescore(p, ps.Mol),
			Rank:       i % o.Ranks,
		}
	}
	return out
}

// TestGoldenCoherentEngineMatchesLegacyRunJob is the redesign's
// acceptance pin: the Scorer-based engine running the Coherent Fusion
// model produces predictions — and serialized h5lite shard bytes —
// identical to the pre-redesign single-model RunJob path.
func TestGoldenCoherentEngineMatchesLegacyRunJob(t *testing.T) {
	f := tinyFusion(t)
	mols := testMols(t, 4)
	poses, _, err := DockCompounds(context.Background(), target.Protease1, mols, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	o := tinyJobOptions()

	want := legacyRunJob(f, target.Protease1, poses, o)
	got, err := RunJob(context.Background(), f, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("pose %d diverged from the legacy engine:\n new: %+v\n old: %+v", i, got[i], want[i])
			}
		}
		t.Fatalf("prediction lists diverged: %d vs %d", len(got), len(want))
	}

	// Byte-identity of the persisted output: single-scorer jobs keep
	// the exact legacy shard layout (no per-scorer columns).
	shardBytes := func(preds []Prediction) []byte {
		var all bytes.Buffer
		for _, file := range WriteShards(preds, 3) {
			if err := file.Write(&all); err != nil {
				t.Fatal(err)
			}
		}
		return all.Bytes()
	}
	if !bytes.Equal(shardBytes(got), shardBytes(want)) {
		t.Fatal("shard bytes diverged from the pre-redesign layout")
	}
}

// TestEnsembleSharesFeaturizationAndEmitsPerScorerColumns checks the
// featurize-once/score-N contract: an ensemble job emits every
// scorer's prediction, the primary fills the legacy column, and the
// per-scorer values match each scorer run alone.
func TestEnsembleSharesFeaturizationAndEmitsPerScorerColumns(t *testing.T) {
	f := tinyFusion(t)
	ensemble := []Scorer{f, dock.VinaScorer{}, mmgbsa.Scorer{}}
	mols := testMols(t, 3)
	poses, _, err := DockCompounds(context.Background(), target.Spike1, mols, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	o := tinyJobOptions()

	preds, err := RunJobEnsemble(context.Background(), ensemble, target.Spike1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	solo := make(map[string][]Prediction, len(ensemble))
	for _, s := range ensemble {
		ps, err := RunJob(context.Background(), s, target.Spike1, poses, o)
		if err != nil {
			t.Fatal(err)
		}
		solo[s.Name()] = ps
	}
	for i, pr := range preds {
		if len(pr.Scores) != len(ensemble) {
			t.Fatalf("pose %d carries %d scorer columns, want %d", i, len(pr.Scores), len(ensemble))
		}
		if pr.Fusion != pr.Scores[ensemble[0].Name()] {
			t.Fatalf("pose %d: primary column %v != primary scorer %v", i, pr.Fusion, pr.Scores[ensemble[0].Name()])
		}
		for _, s := range ensemble {
			// Solo jobs orient their primary column to pK; the ensemble
			// columns carry raw scorer units.
			if got, want := orientToPK(s, pr.Scores[s.Name()]), solo[s.Name()][i].Fusion; got != want {
				t.Fatalf("pose %d scorer %s: ensemble %v != solo %v", i, s.Name(), got, want)
			}
		}
	}

	// The columns survive the shard round trip.
	back, err := ReadShards(WriteShards(preds, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(preds) {
		t.Fatalf("round trip lost rows: %d vs %d", len(back), len(preds))
	}
	for _, pr := range back {
		if len(pr.Scores) != len(ensemble) {
			t.Fatalf("round-tripped pose lost scorer columns: %+v", pr)
		}
	}
}

// sampleProbe records what the engine's loaders put on the samples it
// scores.
type sampleProbe struct {
	sawVoxels *atomic.Bool
	sawNil    *atomic.Bool
}

func (p sampleProbe) Name() string { return "probe" }
func (p sampleProbe) ScoreBatch(samples []*fusion.Sample) []float64 {
	for _, s := range samples {
		if s.Voxels != nil && s.Graph != nil {
			p.sawVoxels.Store(true)
		}
		if s.Voxels == nil && s.Graph == nil {
			p.sawNil.Store(true)
		}
	}
	return make([]float64, len(samples))
}

// TestFeaturizationSkippedWithoutFeaturizer pins the loader contract:
// a job whose scorer set declares no representation receives raw
// samples (identity, pocket, pose only); adding one Featurizer scorer
// turns featurization back on for the whole shared batch.
func TestFeaturizationSkippedWithoutFeaturizer(t *testing.T) {
	mols := testMols(t, 2)
	poses, _, err := DockCompounds(context.Background(), target.Spike1, mols, 2, 45)
	if err != nil {
		t.Fatal(err)
	}
	o := tinyJobOptions()

	probe := sampleProbe{sawVoxels: &atomic.Bool{}, sawNil: &atomic.Bool{}}
	if _, err := RunJobEnsemble(context.Background(), []Scorer{probe, dock.VinaScorer{}}, target.Spike1, poses, o); err != nil {
		t.Fatal(err)
	}
	if probe.sawVoxels.Load() || !probe.sawNil.Load() {
		t.Fatal("featurizer-free job must hand raw samples to ScoreBatch")
	}

	probe = sampleProbe{sawVoxels: &atomic.Bool{}, sawNil: &atomic.Bool{}}
	if _, err := RunJobEnsemble(context.Background(), []Scorer{probe, tinyFusion(t)}, target.Spike1, poses, o); err != nil {
		t.Fatal(err)
	}
	if !probe.sawVoxels.Load() || probe.sawNil.Load() {
		t.Fatal("a Featurizer in the set must featurize the shared samples")
	}
}

// TestEnsembleRejectsDuplicateScorerNames: Scores and shard columns
// are keyed by name, so a duplicate would silently drop predictions.
func TestEnsembleRejectsDuplicateScorerNames(t *testing.T) {
	o := tinyJobOptions()
	_, err := RunJobEnsemble(context.Background(), []Scorer{dock.VinaScorer{}, dock.VinaScorer{}}, target.Spike1, nil, o)
	if err == nil {
		t.Fatal("duplicate scorer names must be refused")
	}
}

// slowScorer counts batches and blocks until released, letting the
// cancellation test cancel mid-job deterministically.
type slowScorer struct {
	batches *atomic.Int64
	started chan struct{} // closed after the first batch begins
	release chan struct{} // scoring blocks here until closed
	once    *sync.Once
}

func (s slowScorer) Name() string { return "slow" }
func (s slowScorer) ScoreBatch(samples []*fusion.Sample) []float64 {
	s.once.Do(func() { close(s.started) })
	<-s.release
	s.batches.Add(1)
	return make([]float64, len(samples))
}

// TestRunJobCancellationStopsWithinOneBatch cancels a running job
// after its first batch begins and checks the engine stops at the
// batch boundary: no rank starts another batch once the context is
// cancelled, and the job reports the context error.
func TestRunJobCancellationStopsWithinOneBatch(t *testing.T) {
	mols := testMols(t, 6)
	poses, _, err := DockCompounds(context.Background(), target.Spike2, mols, 3, 44)
	if err != nil {
		t.Fatal(err)
	}
	o := tinyJobOptions()
	o.Ranks = 1 // one scoring loop: batches are strictly sequential
	o.BatchSize = 2
	totalBatches := (len(poses) + o.BatchSize - 1) / o.BatchSize
	if totalBatches < 3 {
		t.Fatalf("need >= 3 batches to observe an early stop, got %d", totalBatches)
	}

	s := slowScorer{
		batches: &atomic.Int64{},
		started: make(chan struct{}),
		release: make(chan struct{}),
		once:    &sync.Once{},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-s.started // first batch is in flight
		cancel()
		close(s.release) // let it finish; the next batch must not start
	}()
	preds, err := RunJob(ctx, s, target.Spike2, poses, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job returned %v, want context.Canceled", err)
	}
	if preds != nil {
		t.Fatal("cancelled job must not return predictions")
	}
	if got := s.batches.Load(); got != 1 {
		t.Fatalf("engine scored %d batches after cancellation landed during batch 1 of %d", got, totalBatches)
	}
}
