package screen

import (
	"testing"

	"deepfusion/internal/target"
)

func TestStreamingJobDeliversAll(t *testing.T) {
	f := tinyFusion(t)
	mols := testMols(t, 3)
	poses, _ := DockCompounds(target.Spike1, mols, 2, 20)
	o := tinyJobOptions()
	ch, wait := RunJobStreaming(f, target.Spike1, poses, o)
	seen := map[string]int{}
	n := 0
	for pr := range ch {
		seen[pr.CompoundID]++
		n++
		if pr.Target != "spike1" {
			t.Fatalf("target %q", pr.Target)
		}
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if n != len(poses) {
		t.Fatalf("streamed %d predictions, want %d", n, len(poses))
	}
	if len(seen) == 0 {
		t.Fatal("no compounds streamed")
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	// Streaming and batch jobs must produce identical prediction sets.
	f := tinyFusion(t)
	mols := testMols(t, 2)
	poses, _ := DockCompounds(target.Protease1, mols, 2, 21)
	o := tinyJobOptions()
	batch, err := RunJob(f, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for _, pr := range batch {
		want[key(pr)] = pr.Fusion
	}
	ch, wait := RunJobStreaming(f, target.Protease1, poses, o)
	got := map[string]float64{}
	for pr := range ch {
		got[key(pr)] = pr.Fusion
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d distinct predictions, batch %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("prediction mismatch for %s: %v vs %v", k, got[k], v)
		}
	}
}

func key(p Prediction) string {
	return p.CompoundID + "#" + string(rune('0'+p.PoseRank))
}

func TestStreamingZeroRanks(t *testing.T) {
	f := tinyFusion(t)
	o := tinyJobOptions()
	o.Ranks = 0
	ch, wait := RunJobStreaming(f, target.Spike1, nil, o)
	for range ch {
		t.Fatal("no predictions expected")
	}
	if err := wait(); err == nil {
		t.Fatal("expected error for zero ranks")
	}
}
