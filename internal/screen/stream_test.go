package screen

import (
	"context"
	"errors"
	"testing"

	"deepfusion/internal/target"
)

func TestStreamingJobDeliversAll(t *testing.T) {
	f := tinyFusion(t)
	mols := testMols(t, 3)
	poses, _, _ := DockCompounds(context.Background(), target.Spike1, mols, 2, 20)
	o := tinyJobOptions()
	ch, wait := RunJobStreaming(context.Background(), f, target.Spike1, poses, o)
	seen := map[string]int{}
	n := 0
	for pr := range ch {
		seen[pr.CompoundID]++
		n++
		if pr.Target != "spike1" {
			t.Fatalf("target %q", pr.Target)
		}
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if n != len(poses) {
		t.Fatalf("streamed %d predictions, want %d", n, len(poses))
	}
	if len(seen) == 0 {
		t.Fatal("no compounds streamed")
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	// Streaming and batch jobs must produce identical prediction sets.
	f := tinyFusion(t)
	mols := testMols(t, 2)
	poses, _, _ := DockCompounds(context.Background(), target.Protease1, mols, 2, 21)
	o := tinyJobOptions()
	batch, err := RunJob(context.Background(), f, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for _, pr := range batch {
		want[key(pr)] = pr.Fusion
	}
	ch, wait := RunJobStreaming(context.Background(), f, target.Protease1, poses, o)
	got := map[string]float64{}
	for pr := range ch {
		got[key(pr)] = pr.Fusion
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d distinct predictions, batch %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("prediction mismatch for %s: %v vs %v", k, got[k], v)
		}
	}
}

func key(p Prediction) string {
	return p.CompoundID + "#" + string(rune('0'+p.PoseRank))
}

func TestStreamingFailureInjection(t *testing.T) {
	// The streaming path injects job failures exactly like RunJob: with
	// FailureProb 1 nothing streams and the wait reports ErrJobFailed.
	f := tinyFusion(t)
	mols := testMols(t, 1)
	poses, _, _ := DockCompounds(context.Background(), target.Spike1, mols, 1, 22)
	o := tinyJobOptions()
	o.FailureProb = 1.0
	ch, wait := RunJobStreaming(context.Background(), f, target.Spike1, poses, o)
	for range ch {
		t.Fatal("failed job must stream nothing")
	}
	if err := wait(); !errors.Is(err, ErrJobFailed) {
		t.Fatalf("expected ErrJobFailed, got %v", err)
	}
}

func TestStreamingRetryParity(t *testing.T) {
	f := tinyFusion(t)
	mols := testMols(t, 1)
	poses, _, _ := DockCompounds(context.Background(), target.Spike1, mols, 1, 23)
	o := tinyJobOptions()
	// Certain failure: retries exhaust, nothing streams.
	o.FailureProb = 1.0
	ch, wait := RunJobStreamingWithRetry(context.Background(), f, target.Spike1, poses, o, 3)
	for range ch {
		t.Fatal("exhausted retries must stream nothing")
	}
	if attempts, err := wait(); err == nil || attempts != 3 {
		t.Fatalf("retry should exhaust 3 attempts, got %d / %v", attempts, err)
	}
	// Moderate failure probability eventually succeeds and delivers
	// every pose exactly once.
	o.FailureProb = 0.5
	o.Seed = 2
	ch, wait = RunJobStreamingWithRetry(context.Background(), f, target.Spike1, poses, o, 20)
	n := 0
	for range ch {
		n++
	}
	attempts, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(poses) {
		t.Fatalf("streamed %d predictions, want %d", n, len(poses))
	}
	if attempts < 1 {
		t.Fatal("attempts must be >= 1")
	}
}

func TestStreamingRetryRejectsZeroAttempts(t *testing.T) {
	f := tinyFusion(t)
	o := tinyJobOptions()
	ch, wait := RunJobStreamingWithRetry(context.Background(), f, target.Spike1, nil, o, 0)
	for range ch {
		t.Fatal("zero attempts must stream nothing")
	}
	if attempts, err := wait(); err == nil || attempts != 0 {
		t.Fatalf("want (0, error), got (%d, %v)", attempts, err)
	}
}

func TestStreamingHonorsBatchSizeOne(t *testing.T) {
	// BatchSize clamps to 1 and still scores everything.
	f := tinyFusion(t)
	mols := testMols(t, 2)
	poses, _, _ := DockCompounds(context.Background(), target.Spike2, mols, 2, 24)
	o := tinyJobOptions()
	o.BatchSize = 0
	ch, wait := RunJobStreaming(context.Background(), f, target.Spike2, poses, o)
	n := 0
	for range ch {
		n++
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if n != len(poses) {
		t.Fatalf("streamed %d of %d", n, len(poses))
	}
}

func TestStreamingZeroRanks(t *testing.T) {
	f := tinyFusion(t)
	o := tinyJobOptions()
	o.Ranks = 0
	ch, wait := RunJobStreaming(context.Background(), f, target.Spike1, nil, o)
	for range ch {
		t.Fatal("no predictions expected")
	}
	if err := wait(); err == nil {
		t.Fatal("expected error for zero ranks")
	}
}
