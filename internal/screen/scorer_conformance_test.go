package screen

import (
	"context"
	"math"
	"testing"

	"deepfusion/internal/dock"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/target"
)

// The Scorer conformance suite: every implementation of the scoring
// contract — all five fusion model families, both physics surrogates,
// and consensus — must satisfy the same invariants the engine relies
// on: a stable non-empty name, deterministic scores, batch ==
// per-sample composition independence, one score per sample in input
// order, and replica equivalence for scorers implementing the Cloner
// handshake.

// conformanceScorers builds one instance of every Scorer
// implementation (tiny untrained models: the contract is about
// architecture, not accuracy).
func conformanceScorers(t *testing.T) map[string]Scorer {
	t.Helper()
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfg.ConvFilters1 = 4
	cnnCfg.ConvFilters2 = 6
	cnnCfg.DenseNodes = 8
	sgCfg := fusion.DefaultSGCNNConfig()
	sgCfg.CovGatherWidth = 6
	sgCfg.NonCovGatherWidth = 8
	cnn := fusion.NewCNN3D(cnnCfg, 1)
	sg := fusion.NewSGCNN(sgCfg, 2)
	midCfg := fusion.DefaultMidFusionConfig()
	coh := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn.Clone(), sg.Clone(), 3)
	consensus, err := NewConsensus(coh.Clone(), dock.VinaScorer{}, mmgbsa.Scorer{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Scorer{
		"cnn3d":                           cnn,
		"sgcnn":                           sg,
		"late":                            &fusion.LateFusion{CNN: cnn.Clone(), SG: sg.Clone()},
		"mid":                             fusion.NewFusion(midCfg, cnn.Clone(), sg.Clone(), 4),
		"coherent":                        coh,
		"vina":                            dock.VinaScorer{},
		"mmgbsa":                          mmgbsa.Scorer{},
		"consensus(coherent+vina+mmgbsa)": consensus,
	}
}

// conformanceSamples featurizes a handful of docked poses with the
// tiny-model options shared by every conformance scorer.
func conformanceSamples(t *testing.T, n int) []*fusion.Sample {
	t.Helper()
	mols := testMols(t, n)
	poses, _, err := DockCompounds(context.Background(), target.Protease1, mols, 2, 51)
	if err != nil {
		t.Fatal(err)
	}
	if len(poses) < n {
		t.Fatalf("docking produced %d poses, need %d", len(poses), n)
	}
	vo := featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	gro := featurize.DefaultGraphOptions()
	samples := make([]*fusion.Sample, n)
	for i := 0; i < n; i++ {
		samples[i] = fusion.FeaturizeComplex(poses[i].CompoundID, target.Protease1, poses[i].Mol, 0, vo, gro)
	}
	return samples
}

func TestScorerConformance(t *testing.T) {
	samples := conformanceSamples(t, 5)
	for wantName, s := range conformanceScorers(t) {
		s := s
		t.Run(wantName, func(t *testing.T) {
			runScorerConformance(t, wantName, s, samples)
		})
	}
}

// TestScorerConformanceF32 reruns the whole conformance suite with
// every scorer operating in f32 mode: the fast path is a precision
// choice, not a different contract, so the same invariants — name
// stability, determinism, batch composition independence, replica
// equivalence — must hold verbatim. Scorers without a pooled f32 path
// (the physics surrogates) pass through and stay precision-blind.
func TestScorerConformanceF32(t *testing.T) {
	samples := conformanceSamples(t, 5)
	for wantName, s := range conformanceScorers(t) {
		s := s
		t.Run(wantName, func(t *testing.T) {
			runScorerConformance(t, wantName, inF32Mode(s), samples)
		})
	}
}

// f32Mode adapts a scorer to score through an f32 workspace: exactly
// what a rank does when the job's Precision knob is "f32".
type f32Mode struct {
	inner Scorer
	ws    *fusion.Workspace
}

func inF32Mode(s Scorer) Scorer {
	return &f32Mode{inner: s, ws: fusion.NewWorkspaceFor(fusion.PrecisionF32)}
}

func (m *f32Mode) Name() string { return m.inner.Name() }

func (m *f32Mode) ScoreBatch(samples []*fusion.Sample) []float64 {
	into, ok := m.inner.(ScorerInto)
	if !ok {
		return m.inner.ScoreBatch(samples)
	}
	out := make([]float64, len(samples))
	into.ScoreBatchInto(samples, m.ws, out)
	return out
}

func (m *f32Mode) CloneScorer() any {
	if c, ok := m.inner.(Cloner); ok {
		return inF32Mode(c.CloneScorer().(Scorer))
	}
	return inF32Mode(m.inner)
}

func (m *f32Mode) FeatureOptions() FeatureOptions {
	if f, ok := m.inner.(Featurizer); ok {
		return f.FeatureOptions()
	}
	return FeatureOptions{}
}

// runScorerConformance is the suite body, shared by the f64 and f32
// conformance runs.
func runScorerConformance(t *testing.T, wantName string, s Scorer, samples []*fusion.Sample) {
	t.Helper()
	// Name stability: non-empty, the expected constant, and identical
	// on every call.
	if s.Name() == "" {
		t.Fatal("empty scorer name")
	}
	if got := s.Name(); got != wantName {
		t.Fatalf("Name() = %q, want %q", got, wantName)
	}
	if s.Name() != s.Name() {
		t.Fatal("Name() is not stable across calls")
	}

	// One score per sample.
	batch := s.ScoreBatch(samples)
	if len(batch) != len(samples) {
		t.Fatalf("ScoreBatch returned %d scores for %d samples", len(batch), len(samples))
	}
	for i, v := range batch {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("sample %d scored %v", i, v)
		}
	}

	// Determinism: a second call reproduces the first exactly.
	again := s.ScoreBatch(samples)
	for i := range batch {
		if batch[i] != again[i] {
			t.Fatalf("sample %d: %v then %v — scorer is not deterministic", i, batch[i], again[i])
		}
	}

	// Batch == per-sample: composition must not change a score.
	for i, smp := range samples {
		solo := s.ScoreBatch([]*fusion.Sample{smp})
		if len(solo) != 1 {
			t.Fatalf("singleton batch returned %d scores", len(solo))
		}
		if math.Abs(solo[0]-batch[i]) > 1e-9 {
			t.Fatalf("sample %d: batch %v != per-sample %v", i, batch[i], solo[0])
		}
	}

	// Replica equivalence for the Cloner handshake.
	if c, ok := s.(Cloner); ok {
		replica, ok := c.CloneScorer().(Scorer)
		if !ok {
			t.Fatal("CloneScorer did not return a Scorer")
		}
		if replica.Name() != s.Name() {
			t.Fatalf("replica renamed itself: %q vs %q", replica.Name(), s.Name())
		}
		rep := replica.ScoreBatch(samples)
		for i := range batch {
			if rep[i] != batch[i] {
				t.Fatalf("sample %d: replica %v != original %v", i, rep[i], batch[i])
			}
		}
	}
}

// TestReplicasOfMatchesOriginals pins the replica-set helper the rank
// loop is built on: replicasOf replicates every Cloner in the set into
// a distinct instance with identical scores, and passes stateless
// scorers through unchanged.
func TestReplicasOfMatchesOriginals(t *testing.T) {
	byName := conformanceScorers(t)
	samples := conformanceSamples(t, 3)
	var set []Scorer
	for _, name := range []string{"cnn3d", "sgcnn", "coherent", "vina", "mmgbsa"} {
		set = append(set, byName[name])
	}
	replicas := replicasOf(set)
	if len(replicas) != len(set) {
		t.Fatalf("replicasOf returned %d scorers for %d", len(replicas), len(set))
	}
	for i, s := range set {
		r := replicas[i]
		if r.Name() != s.Name() {
			t.Fatalf("replica %d renamed itself: %q vs %q", i, r.Name(), s.Name())
		}
		if _, cloner := s.(Cloner); cloner && r == s {
			t.Fatalf("replica %d (%s) shares the original instance despite the Cloner handshake", i, s.Name())
		}
		want := s.ScoreBatch(samples)
		got := r.ScoreBatch(samples)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("replica %d (%s) sample %d: %v != original %v", i, s.Name(), j, got[j], want[j])
			}
		}
	}
}

// TestConsensusOrientsKcalMembers pins the consensus mix: kcal/mol
// members (lower better) are negated and converted to pK scale before
// averaging, so a strongly-bound pose raises the consensus.
func TestConsensusOrientsKcalMembers(t *testing.T) {
	samples := conformanceSamples(t, 2)
	vina := dock.VinaScorer{}
	c, err := NewConsensus(vina)
	if err != nil {
		t.Fatal(err)
	}
	raw := vina.ScoreBatch(samples)
	mixed := c.ScoreBatch(samples)
	for i := range raw {
		want := -raw[i] / kcalPerPK
		if math.Abs(mixed[i]-want) > 1e-12 {
			t.Fatalf("sample %d: consensus %v, want oriented %v", i, mixed[i], want)
		}
	}
}

func TestConsensusRejectsBadMemberSets(t *testing.T) {
	if _, err := NewConsensus(); err == nil {
		t.Fatal("empty consensus must be rejected")
	}
	if _, err := NewConsensus(dock.VinaScorer{}, dock.VinaScorer{}); err == nil {
		t.Fatal("duplicate members must be rejected")
	}
	// Conflicting Featurizer handshakes cannot share one featurization
	// pass.
	cnnCfgA := fusion.DefaultCNN3DConfig()
	cnnCfgA.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfgA.ConvFilters1 = 4
	cnnCfgA.ConvFilters2 = 6
	cnnCfgA.DenseNodes = 8
	cnnCfgB := cnnCfgA
	cnnCfgB.Voxel.GridSize = 8
	sgCfg := fusion.DefaultSGCNNConfig()
	a := fusion.NewFusion(fusion.DefaultCoherentConfig(), fusion.NewCNN3D(cnnCfgA, 1), fusion.NewSGCNN(sgCfg, 2), 3)
	b := fusion.NewFusion(fusion.DefaultMidFusionConfig(), fusion.NewCNN3D(cnnCfgB, 4), fusion.NewSGCNN(sgCfg, 5), 6)
	if _, err := NewConsensus(a, b); err == nil {
		t.Fatal("conflicting voxel handshakes must be rejected")
	}
}
