// Package screen implements the high-throughput distributed scoring
// architecture of paper Section 4.2 (Figure 3), executed with real
// concurrency: a job takes a set of docked poses, divides them across
// simulated MPI ranks (goroutines, one scorer replica each, as the
// paper loads one Fusion instance per GPU), runs parallel data loaders
// per rank to featurize poses ahead of inference, gathers identifiers
// and predictions across ranks (the paper's Horovod allgather), and
// writes sharded h5lite archives whose layout mirrors ConveyorLC's
// CDT3Docking output.
//
// The engine is generic over the Scorer contract (scorer.go): any
// scorer — a fusion model family, a physics surrogate, a consensus —
// or an ensemble of them runs on the same batched machinery.
// Featurization happens once per pose and is shared across the
// ensemble; every scorer contributes its own prediction column to the
// output shards. All entry points take a context.Context and stop
// within one inference batch of cancellation.
package screen

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"deepfusion/internal/chem"
	"deepfusion/internal/dock"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/target"
)

// Pose is one docked pose queued for scoring.
type Pose struct {
	CompoundID string
	PoseRank   int
	Mol        *chem.Mol
	VinaScore  float64
}

// Prediction is one scored pose: the primary scorer's prediction
// alongside the physics scores carried through the funnel, plus (for
// ensemble jobs) every scorer's prediction keyed by scorer name.
type Prediction struct {
	CompoundID string
	Target     string
	PoseRank   int
	// Fusion is the primary scorer's prediction on the pK scale
	// (higher is stronger). Scorers declaring LowerIsBetter (kcal/mol
	// surrogates) are converted at emit time, so per-compound
	// aggregation (max over poses) and the selection cost function
	// treat every scorer uniformly; pK scorers pass through unchanged.
	Fusion float64
	Vina   float64 // kcal/mol (lower is stronger)
	MMGBSA float64 // kcal/mol (lower is stronger)
	Rank   int     // which simulated MPI rank scored it
	// Scores holds every scorer's raw prediction keyed by
	// Scorer.Name(), in the scorer's native units (kcal/mol stays
	// kcal/mol — only the primary Fusion column is pK-oriented).
	// It is populated only by ensemble jobs (two or more scorers);
	// single-scorer jobs keep the legacy three-column layout so their
	// shard bytes are unchanged from the pre-Scorer engine.
	Scores map[string]float64
}

// JobOptions configures a distributed scoring job.
type JobOptions struct {
	Ranks          int // simulated MPI ranks (paper: 16 = 4 nodes x 4 GPUs)
	LoadersPerRank int // parallel data loaders per rank (paper: 12)
	BatchSize      int // poses per inference batch (paper: up to 56)
	// Voxel and Graph are the featurization fallback; scorers
	// implementing the Featurizer handshake override them (the engine
	// featurizes once with the merged options).
	Voxel featurize.VoxelOptions
	Graph featurize.GraphOptions
	// Prefeature optionally injects a shared, read-only featurization
	// cache (featurize.NewPocketPrefeature, or PrefeatureFor) built
	// for this job's target and merged featurization options — the
	// campaign layer builds one per target and reuses it across every
	// compound chunk. It must match the job's (pocket, options) pair;
	// the engine refuses a mismatch. Nil lets the engine build its own
	// per job. Never serialized: a resumed campaign rebuilds it.
	Prefeature *featurize.PocketPrefeature `json:"-"`
	// DisablePrefeature forces per-pose re-featurization of the pocket
	// (the pre-cache path) — an A/B escape hatch for benchmarks and
	// byte-identity tests, not a production knob.
	DisablePrefeature bool `json:"-"`
	// Precision selects the numeric width of the inference engine:
	// PrecisionF64 (or empty — the zero value and every pre-PR6
	// serialized job) runs the verified float64 reference path;
	// PrecisionF32 runs the float32 fast path, whose rank fidelity
	// against the reference is pinned by the A/B harness. Serialized
	// into campaign manifests via the json tag, so a resumed campaign
	// can refuse a precision mismatch.
	Precision Precision `json:"precision,omitempty"`
	// FailureProb injects the paper's observed job failures (bad
	// metadata, node failure, broken pipes). A failed job returns
	// ErrJobFailed and must be resubmitted by the caller.
	FailureProb float64
	Seed        int64
}

// Precision re-exports the funnel-wide precision knob (see
// fusion.Precision) at the engine boundary.
type Precision = fusion.Precision

// The two engine precisions: the float64 verified reference and the
// float32 fast path.
const (
	PrecisionF64 = fusion.PrecisionF64
	PrecisionF32 = fusion.PrecisionF32
)

// DefaultJobOptions mirrors the production 4-node job at repro scale.
func DefaultJobOptions() JobOptions {
	return JobOptions{
		Ranks:          4,
		LoadersPerRank: 3,
		BatchSize:      8,
		Voxel:          featurize.DefaultVoxelOptions(),
		Graph:          featurize.DefaultGraphOptions(),
		Seed:           1,
	}
}

// ErrJobFailed marks an injected job failure.
var ErrJobFailed = fmt.Errorf("screen: job failed (injected fault)")

// prefeatureCache holds the engine's most recently self-built
// target-invariant prefeature. Callers that screen one target across
// many jobs without injecting JobOptions.Prefeature — retry loops,
// benchmark iterations, ad-hoc RunJob callers — used to pay the full
// prefeature construction (pocket voxel baseline, node rows, cell
// list: ~500 allocations and ~300 KB) on every job, which is exactly
// the steady-state allocation regression BENCH_5 recorded. A
// prefeature is immutable after construction and already read
// concurrently by every loader, so one cached slot (the common
// same-target-again case) is safe; a concurrent miss at worst builds
// twice and keeps one.
var prefeatureCache atomic.Pointer[featurize.PocketPrefeature]

// cachedPrefeature returns a prefeature for the job's (target,
// options), reusing the previous job's when it matches.
func cachedPrefeature(p *target.Pocket, vo featurize.VoxelOptions, gro featurize.GraphOptions) *featurize.PocketPrefeature {
	if pre := prefeatureCache.Load(); pre != nil && pre.Matches(p, vo, gro) {
		return pre
	}
	pre := featurize.NewPocketPrefeature(p, vo, gro)
	prefeatureCache.Store(pre)
	return pre
}

// injectFailure rolls the job-failure dice shared by the gathered and
// streaming paths (bad metadata, node failure, broken pipes — the
// paper's observed modes).
func injectFailure(o JobOptions) bool {
	if o.FailureProb <= 0 {
		return false
	}
	rng := rand.New(rand.NewSource(o.Seed))
	return rng.Float64() < o.FailureProb
}

// runRanks is the batched scoring engine behind every job entry point.
// Each rank gets its own replica of every scorer (via the Cloner
// handshake) and its index-strided share of the poses; loader
// goroutines featurize ahead of inference — once per pose, shared by
// the whole ensemble; the rank accumulates featurized samples until a
// full batch forms and scores it with one ScoreBatch call per scorer
// (the paper's up-to-56-poses-per-GPU batches). emit is called once
// per pose, from the scoring rank's goroutine, and must be safe for
// concurrent calls across ranks. runRanks returns when every rank has
// drained, or with ctx.Err() if cancelled — cancellation lands at
// batch boundaries, so a running job stops within one batch.
//
// Memory model: the steady state is allocation-free. Each rank owns
// one fusion.Workspace shared by all of its scorer replicas — scorers
// implementing the ScorerInto handshake score through it into
// rank-owned prediction buffers — and the loaders draw pose slots from
// a per-rank free list, featurizing into recycled voxel/graph buffers
// and returning each slot once its batch has been emitted. The
// target-invariant half of featurization is computed once per job (or
// injected via JobOptions.Prefeature and shared across jobs) and read
// concurrently by every loader (FeaturizeComplexWithPrefeature), so a
// pose costs only its ligand's share of splatting and neighbor search.
// After the first few batches warm the pools, the only per-pose
// allocations left are the emit-side bookkeeping of the caller.
func runRanks(ctx context.Context, scorers []Scorer, p *target.Pocket, poses []Pose, o JobOptions, emit func(idx int, pr Prediction)) error {
	vo, gro, err := mergeFeatureOptions(scorers, o.Voxel, o.Graph)
	if err != nil {
		return err
	}
	// Featurization is the dominant per-pose cost. When no scorer in
	// the set declares a representation through the Featurizer
	// handshake (pure physics surrogates, or a consensus of them —
	// which implements Featurizer but may declare nothing), loaders
	// hand over raw samples — identity, pocket and posed molecule only
	// — instead of voxelizing and graph-building representations
	// nothing will read.
	needFeatures := scorerSetNeedsFeatures(scorers)
	// The target-invariant half of featurization (pocket voxel
	// baseline, pocket node rows, the cell list) is computed once per
	// job — or once per campaign target, when the caller injects a
	// shared prefeature — and shared read-only by every loader on
	// every rank.
	var pre *featurize.PocketPrefeature
	if needFeatures && !o.DisablePrefeature {
		if o.Prefeature != nil {
			if !o.Prefeature.Matches(p, vo, gro) {
				return fmt.Errorf("screen: job prefeature was built for a different (target, featurization options) pair than (%s, %+v, %+v)", p.Name, vo, gro)
			}
			pre = o.Prefeature
		} else {
			pre = cachedPrefeature(p, vo, gro)
		}
	}
	bs := o.BatchSize
	if bs < 1 {
		bs = 1
	}
	var wg sync.WaitGroup
	for rank := 0; rank < o.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			be := newBatchEmitter(scorers, p, bs, o.Precision, rank)
			// The rank's share: index-strided, as in the paper ("divide
			// the set of compounds by the number of ranks and assign
			// each rank the subset with its index").
			mine := make([]int, 0, len(poses)/o.Ranks+1)
			for i := rank; i < len(poses); i += o.Ranks {
				mine = append(mine, i)
			}
			// Parallel data loaders featurize ahead of inference.
			type loaded struct {
				idx    int
				sample *fusion.Sample
			}
			work := make(chan int, len(mine))
			ready := make(chan loaded, bs*2+1)
			var loaders sync.WaitGroup
			nLoaders := o.LoadersPerRank
			if nLoaders < 1 {
				nLoaders = 1
			}
			// Pose slots recycle featurization buffers: loaders draw a
			// slot from the free list, featurize into it, and the scoring
			// loop returns it after the slot's batch is emitted. Capacity
			// covers every place a slot can be in flight.
			slotCap := cap(ready) + bs + nLoaders
			slots := make(chan *fusion.Sample, slotCap)
			for i := 0; i < slotCap; i++ {
				slots <- &fusion.Sample{}
			}
			for l := 0; l < nLoaders; l++ {
				loaders.Add(1)
				go func() {
					defer loaders.Done()
					for i := range work {
						if ctx.Err() != nil {
							return
						}
						var s *fusion.Sample
						select {
						case s = <-slots:
						case <-ctx.Done():
							return
						}
						ps := poses[i]
						switch {
						case pre != nil:
							fusion.FeaturizeComplexWithPrefeature(s, pre, ps.CompoundID, ps.Mol, 0)
						case needFeatures:
							fusion.FeaturizeComplexInto(s, ps.CompoundID, p, ps.Mol, 0, vo, gro)
						default:
							s.ID, s.Pocket, s.Mol, s.Label = ps.CompoundID, p, ps.Mol, 0
							s.Voxels, s.Graph = nil, nil
						}
						select {
						case ready <- loaded{idx: i, sample: s}:
						case <-ctx.Done():
							return
						}
					}
				}()
			}
			for _, i := range mine {
				work <- i
			}
			close(work)
			go func() {
				loaders.Wait()
				close(ready)
			}()
			// Batched inference loop: accumulate featurized samples up
			// to the batch size, score them — one forward pass per
			// scorer over the shared batch via the shared batchEmitter
			// (the same per-batch path the Session seam runs) — and
			// emit.
			idxs := make([]int, 0, bs)
			batch := make([]*fusion.Sample, 0, bs)
			batchPoses := make([]Pose, 0, bs)
			emitAt := func(j int, pr Prediction) { emit(idxs[j], pr) }
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				if ctx.Err() != nil {
					return false
				}
				batchPoses = batchPoses[:0]
				for _, idx := range idxs {
					batchPoses = append(batchPoses, poses[idx])
				}
				be.scoreBatch(batch, batchPoses, emitAt)
				// The batch is emitted; its slots go back to the loaders.
				for _, s := range batch {
					slots <- s
				}
				idxs = idxs[:0]
				batch = batch[:0]
				return true
			}
			for ld := range ready {
				idxs = append(idxs, ld.idx)
				batch = append(batch, ld.sample)
				if len(batch) == bs {
					if !flush() {
						return // cancelled mid-job; loaders exit via ctx
					}
				}
			}
			flush()
		}(rank)
	}
	wg.Wait() // the paper's allgather barrier
	return ctx.Err()
}

// checkJob validates the common job invariants.
func checkJob(scorers []Scorer, o JobOptions) error {
	if err := ValidateScorerSet(scorers); err != nil {
		return err
	}
	if o.Ranks < 1 {
		return fmt.Errorf("screen: need at least 1 rank")
	}
	if err := o.Precision.Validate(); err != nil {
		return err
	}
	return nil
}

// RunJob scores all poses against the target with one scorer on the
// batched engine, gathering results across ranks into input order.
// Any Scorer runs here: a fusion model, a physics surrogate, or a
// Consensus.
func RunJob(ctx context.Context, s Scorer, p *target.Pocket, poses []Pose, o JobOptions) ([]Prediction, error) {
	return RunJobEnsemble(ctx, []Scorer{s}, p, poses, o)
}

// RunJobEnsemble scores all poses with every scorer in one pass:
// featurize once, score N ways. The primary (first) scorer fills the
// legacy Fusion column; every scorer's prediction lands in
// Prediction.Scores and becomes its own shard column.
func RunJobEnsemble(ctx context.Context, scorers []Scorer, p *target.Pocket, poses []Pose, o JobOptions) ([]Prediction, error) {
	if err := checkJob(scorers, o); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if injectFailure(o) {
		return nil, ErrJobFailed
	}
	out := make([]Prediction, len(poses))
	if err := runRanks(ctx, scorers, p, poses, o, func(idx int, pr Prediction) { out[idx] = pr }); err != nil {
		return nil, err
	}
	return out, nil
}

// RunJobWithRetry resubmits a failed job with a fresh seed, the
// paper's fault-tolerance strategy ("when a job fails ... another job
// takes its place, and only a small set of compounds are affected").
// Cancellation is not retried: a cancelled attempt aborts the loop.
func RunJobWithRetry(ctx context.Context, s Scorer, p *target.Pocket, poses []Pose, o JobOptions, maxAttempts int) ([]Prediction, int, error) {
	return RunJobEnsembleWithRetry(ctx, []Scorer{s}, p, poses, o, maxAttempts)
}

// RunJobEnsembleWithRetry is RunJobWithRetry over a scorer ensemble.
// Only ErrJobFailed — the transient, injected failure mode — is
// retried; deterministic errors (scorer-set validation, a mismatched
// prefeature, feature-option conflicts) would fail identically on
// every resubmission and surface immediately instead.
func RunJobEnsembleWithRetry(ctx context.Context, scorers []Scorer, p *target.Pocket, poses []Pose, o JobOptions, maxAttempts int) ([]Prediction, int, error) {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		preds, err := RunJobEnsemble(ctx, scorers, p, poses, o)
		if err == nil {
			return preds, attempt + 1, nil
		}
		if ctx.Err() != nil {
			return nil, attempt + 1, ctx.Err()
		}
		if !errors.Is(err, ErrJobFailed) {
			return nil, attempt + 1, err
		}
		lastErr = err
		o.Seed++
	}
	return nil, maxAttempts, fmt.Errorf("screen: job failed after %d attempts: %w", maxAttempts, lastErr)
}

// DockProblem records one compound the docking stage rejected and why
// — the funnel tolerates bad inputs, but no longer silently.
type DockProblem struct {
	CompoundID string
	Reason     string
}

func (p DockProblem) String() string { return p.CompoundID + ": " + p.Reason }

// DockCompounds runs the ConveyorLC docking stage for a compound set,
// producing the pose queue for scoring. Compounds that fail
// preparation or docking are skipped and reported as DockProblems
// (sorted by compound ID), matching the production funnel's tolerance
// of bad inputs without discarding the evidence. Cancelling ctx stops
// the stage between compounds and returns ctx.Err().
func DockCompounds(ctx context.Context, p *target.Pocket, mols []*chem.Mol, maxPoses int, seed int64) ([]Pose, []DockProblem, error) {
	so := dock.DefaultSearchOptions()
	so.NumPoses = maxPoses
	so.MCSteps = 30
	so.Restarts = 4
	var mu sync.Mutex
	var poses []Pose
	var problems []DockProblem
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for _, m := range mols {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(m *chem.Mol) {
			defer wg.Done()
			defer func() { <-sem }()
			so := so
			// Per-compound seed from a name hash: XOR-ing with the name
			// length (the old scheme) collided for any two compounds with
			// same-length names, replaying identical MC trajectories.
			so.Seed = seed ^ int64(compoundHash(m.Name))
			ps := dock.Dock(p, m, so)
			mu.Lock()
			defer mu.Unlock()
			if len(ps) == 0 {
				problems = append(problems, DockProblem{CompoundID: m.Name, Reason: "no pose survived the search"})
				return
			}
			for _, dp := range ps {
				poses = append(poses, Pose{CompoundID: m.Name, PoseRank: dp.Rank, Mol: dp.Mol, VinaScore: dp.Score})
			}
		}(m)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Goroutines finish in scheduling order; report problems
	// deterministically.
	sort.Slice(problems, func(a, b int) bool { return problems[a].CompoundID < problems[b].CompoundID })
	return poses, problems, nil
}

// compoundHash is the stable FNV-1a identity used for per-compound
// seeding and shard assignment.
func compoundHash(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// ShardOf returns the shard a compound's poses are written to.
func ShardOf(compoundID string, shards int) int {
	if shards < 1 {
		return 0
	}
	return int(compoundHash(compoundID) % uint64(shards))
}

// scorerColumnPrefix namespaces per-scorer prediction datasets in the
// shard layout.
const scorerColumnPrefix = "score_"

// WriteShards distributes predictions across per-rank h5lite files,
// mirroring the paper's parallel output stage where each rank writes
// compounds assigned to the same files and directories: sharding is
// keyed by compound-ID hash, so every pose of a compound lands in the
// same shard file. Shard layout: root group "dock" / target /
// datasets ids, poses, fusion, vina, mmgbsa, plus one "score_<name>"
// dataset per ensemble scorer (single-scorer jobs keep the exact
// legacy layout).
func WriteShards(preds []Prediction, shards int) []*h5lite.File {
	if shards < 1 {
		shards = 1
	}
	files := make([]*h5lite.File, shards)
	type cols struct {
		ids                []string
		poseRanks          []float64
		fusion, vina, gbsa []float64
		extra              map[string][]float64
	}
	byShard := make([]map[string]*cols, shards)
	for i := range files {
		files[i] = h5lite.New()
		byShard[i] = map[string]*cols{}
	}
	for _, pr := range preds {
		s := ShardOf(pr.CompoundID, shards)
		c, ok := byShard[s][pr.Target]
		if !ok {
			c = &cols{extra: map[string][]float64{}}
			byShard[s][pr.Target] = c
		}
		c.ids = append(c.ids, pr.CompoundID)
		c.poseRanks = append(c.poseRanks, float64(pr.PoseRank))
		c.fusion = append(c.fusion, pr.Fusion)
		c.vina = append(c.vina, pr.Vina)
		c.gbsa = append(c.gbsa, pr.MMGBSA)
		// Per-scorer ensemble columns stay aligned with ids: every
		// prediction of a group carries the same scorer set (one
		// engine run), so each name grows in lockstep.
		for name, v := range pr.Scores {
			c.extra[name] = append(c.extra[name], v)
		}
	}
	for s, targets := range byShard {
		root := files[s].Root().Group("dock")
		for tgt, c := range targets {
			g := root.Group(tgt)
			g.SetStrings("ids", c.ids)
			g.SetFloats("pose_rank", c.poseRanks)
			g.SetFloats("fusion_pk", c.fusion)
			g.SetFloats("vina_kcal", c.vina)
			g.SetFloats("mmgbsa_kcal", c.gbsa)
			for name, vals := range c.extra {
				g.SetFloats(scorerColumnPrefix+name, vals)
			}
		}
	}
	return files
}

// ReadShards is the inverse of WriteShards: it folds the per-target
// prediction columns of the given shard files back into a flat
// prediction list, including any per-scorer ensemble columns. Pose
// order within a target group is preserved per shard; the
// simulated-rank attribution is not stored in shards and comes back as
// zero. Ragged column lengths report an error naming the target group.
func ReadShards(files []*h5lite.File) ([]Prediction, error) {
	var out []Prediction
	for _, f := range files {
		dock := f.Root().Lookup("dock")
		if dock == nil {
			continue
		}
		for _, tgt := range dock.Children() {
			g := dock.Lookup(tgt)
			ids, _ := g.Strings("ids")
			ranks, _ := g.Floats("pose_rank")
			fusion, _ := g.Floats("fusion_pk")
			vina, _ := g.Floats("vina_kcal")
			gbsa, _ := g.Floats("mmgbsa_kcal")
			if len(ids) != len(ranks) || len(ids) != len(fusion) ||
				len(ids) != len(vina) || len(ids) != len(gbsa) {
				return nil, fmt.Errorf("screen: ragged shard columns for target %s", tgt)
			}
			extra := map[string][]float64{}
			for _, name := range g.FloatNames() {
				if !strings.HasPrefix(name, scorerColumnPrefix) {
					continue
				}
				vals, _ := g.Floats(name)
				if len(vals) != len(ids) {
					return nil, fmt.Errorf("screen: ragged shard columns for target %s", tgt)
				}
				extra[strings.TrimPrefix(name, scorerColumnPrefix)] = vals
			}
			for i := range ids {
				pr := Prediction{
					CompoundID: ids[i],
					Target:     tgt,
					PoseRank:   int(ranks[i]),
					Fusion:     fusion[i],
					Vina:       vina[i],
					MMGBSA:     gbsa[i],
				}
				if len(extra) > 0 {
					pr.Scores = make(map[string]float64, len(extra))
					for name, vals := range extra {
						pr.Scores[name] = vals[i]
					}
				}
				out = append(out, pr)
			}
		}
	}
	return out, nil
}
