// Package screen implements the high-throughput distributed Fusion
// scoring architecture of paper Section 4.2 (Figure 3), executed with
// real concurrency: a job takes a set of docked poses, divides them
// across simulated MPI ranks (goroutines, one model replica each, as
// the paper loads one Fusion instance per GPU), runs parallel data
// loaders per rank to featurize poses ahead of inference, gathers
// identifiers and predictions across ranks (the paper's Horovod
// allgather), and writes sharded h5lite archives whose layout mirrors
// ConveyorLC's CDT3Docking output.
package screen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"deepfusion/internal/chem"
	"deepfusion/internal/dock"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/target"
)

// Pose is one docked pose queued for scoring.
type Pose struct {
	CompoundID string
	PoseRank   int
	Mol        *chem.Mol
	VinaScore  float64
}

// Prediction is one scored pose: the Fusion binding-affinity
// prediction alongside the physics scores carried through the funnel.
type Prediction struct {
	CompoundID string
	Target     string
	PoseRank   int
	Fusion     float64 // predicted pK (higher is stronger)
	Vina       float64 // kcal/mol (lower is stronger)
	MMGBSA     float64 // kcal/mol (lower is stronger)
	Rank       int     // which simulated MPI rank scored it
}

// JobOptions configures a distributed scoring job.
type JobOptions struct {
	Ranks          int // simulated MPI ranks (paper: 16 = 4 nodes x 4 GPUs)
	LoadersPerRank int // parallel data loaders per rank (paper: 12)
	BatchSize      int // poses per inference batch (paper: up to 56)
	Voxel          featurize.VoxelOptions
	Graph          featurize.GraphOptions
	// FailureProb injects the paper's observed job failures (bad
	// metadata, node failure, broken pipes). A failed job returns
	// ErrJobFailed and must be resubmitted by the caller.
	FailureProb float64
	Seed        int64
}

// DefaultJobOptions mirrors the production 4-node job at repro scale.
func DefaultJobOptions() JobOptions {
	return JobOptions{
		Ranks:          4,
		LoadersPerRank: 3,
		BatchSize:      8,
		Voxel:          featurize.DefaultVoxelOptions(),
		Graph:          featurize.DefaultGraphOptions(),
		Seed:           1,
	}
}

// ErrJobFailed marks an injected job failure.
var ErrJobFailed = fmt.Errorf("screen: job failed (injected fault)")

// injectFailure rolls the job-failure dice shared by the gathered and
// streaming paths (bad metadata, node failure, broken pipes — the
// paper's observed modes).
func injectFailure(o JobOptions) bool {
	if o.FailureProb <= 0 {
		return false
	}
	rng := rand.New(rand.NewSource(o.Seed))
	return rng.Float64() < o.FailureProb
}

// runRanks is the batched scoring engine behind RunJob and
// RunJobStreaming. Each rank gets a deep model replica and its
// index-strided share of the poses; loader goroutines featurize ahead
// of inference; the rank accumulates featurized samples until a full
// batch forms and scores it with one PredictBatch call (the paper's
// up-to-56-poses-per-GPU batches). emit is called once per pose, from
// the scoring rank's goroutine, and must be safe for concurrent calls
// across ranks. runRanks returns when every rank has drained.
func runRanks(f *fusion.Fusion, p *target.Pocket, poses []Pose, o JobOptions, emit func(idx int, pr Prediction)) {
	bs := o.BatchSize
	if bs < 1 {
		bs = 1
	}
	var wg sync.WaitGroup
	for rank := 0; rank < o.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			replica := f.Clone()
			// The rank's share: index-strided, as in the paper ("divide
			// the set of compounds by the number of ranks and assign
			// each rank the subset with its index").
			var mine []int
			for i := rank; i < len(poses); i += o.Ranks {
				mine = append(mine, i)
			}
			// Parallel data loaders featurize ahead of inference.
			type loaded struct {
				idx    int
				sample *fusion.Sample
			}
			work := make(chan int, len(mine))
			ready := make(chan loaded, bs*2+1)
			var loaders sync.WaitGroup
			nLoaders := o.LoadersPerRank
			if nLoaders < 1 {
				nLoaders = 1
			}
			for l := 0; l < nLoaders; l++ {
				loaders.Add(1)
				go func() {
					defer loaders.Done()
					for i := range work {
						ps := poses[i]
						s := fusion.FeaturizeComplex(ps.CompoundID, p, ps.Mol, 0, o.Voxel, o.Graph)
						ready <- loaded{idx: i, sample: s}
					}
				}()
			}
			for _, i := range mine {
				work <- i
			}
			close(work)
			go func() {
				loaders.Wait()
				close(ready)
			}()
			// Batched inference loop: accumulate featurized samples up
			// to the batch size, score them in one forward pass, emit.
			idxs := make([]int, 0, bs)
			batch := make([]*fusion.Sample, 0, bs)
			flush := func() {
				if len(batch) == 0 {
					return
				}
				preds := replica.PredictBatch(batch)
				for j, idx := range idxs {
					ps := poses[idx]
					emit(idx, Prediction{
						CompoundID: ps.CompoundID,
						Target:     p.Name,
						PoseRank:   ps.PoseRank,
						Fusion:     preds[j],
						Vina:       ps.VinaScore,
						MMGBSA:     mmgbsa.Rescore(p, ps.Mol),
						Rank:       rank,
					})
				}
				idxs = idxs[:0]
				batch = batch[:0]
			}
			for ld := range ready {
				idxs = append(idxs, ld.idx)
				batch = append(batch, ld.sample)
				if len(batch) == bs {
					flush()
				}
			}
			flush()
		}(rank)
	}
	wg.Wait() // the paper's allgather barrier
}

// RunJob scores all poses against the target with the Fusion model on
// the batched engine, gathering results across ranks into input order.
func RunJob(f *fusion.Fusion, p *target.Pocket, poses []Pose, o JobOptions) ([]Prediction, error) {
	if o.Ranks < 1 {
		return nil, fmt.Errorf("screen: need at least 1 rank")
	}
	if injectFailure(o) {
		return nil, ErrJobFailed
	}
	out := make([]Prediction, len(poses))
	runRanks(f, p, poses, o, func(idx int, pr Prediction) { out[idx] = pr })
	return out, nil
}

// RunJobWithRetry resubmits a failed job with a fresh seed, the
// paper's fault-tolerance strategy ("when a job fails ... another job
// takes its place, and only a small set of compounds are affected").
func RunJobWithRetry(f *fusion.Fusion, p *target.Pocket, poses []Pose, o JobOptions, maxAttempts int) ([]Prediction, int, error) {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		preds, err := RunJob(f, p, poses, o)
		if err == nil {
			return preds, attempt + 1, nil
		}
		lastErr = err
		o.Seed++
	}
	return nil, maxAttempts, fmt.Errorf("screen: job failed after %d attempts: %w", maxAttempts, lastErr)
}

// DockCompounds runs the ConveyorLC docking stage for a compound set,
// producing the pose queue for Fusion scoring. Compounds that fail
// preparation or docking are skipped (logged in the return count),
// matching the production funnel's tolerance of bad inputs.
func DockCompounds(p *target.Pocket, mols []*chem.Mol, maxPoses int, seed int64) ([]Pose, int) {
	so := dock.DefaultSearchOptions()
	so.NumPoses = maxPoses
	so.MCSteps = 30
	so.Restarts = 4
	var mu sync.Mutex
	var poses []Pose
	skipped := 0
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for _, m := range mols {
		wg.Add(1)
		sem <- struct{}{}
		go func(m *chem.Mol) {
			defer wg.Done()
			defer func() { <-sem }()
			so := so
			// Per-compound seed from a name hash: XOR-ing with the name
			// length (the old scheme) collided for any two compounds with
			// same-length names, replaying identical MC trajectories.
			so.Seed = seed ^ int64(compoundHash(m.Name))
			ps := dock.Dock(p, m, so)
			mu.Lock()
			defer mu.Unlock()
			if len(ps) == 0 {
				skipped++
				return
			}
			for _, dp := range ps {
				poses = append(poses, Pose{CompoundID: m.Name, PoseRank: dp.Rank, Mol: dp.Mol, VinaScore: dp.Score})
			}
		}(m)
	}
	wg.Wait()
	return poses, skipped
}

// compoundHash is the stable FNV-1a identity used for per-compound
// seeding and shard assignment.
func compoundHash(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// ShardOf returns the shard a compound's poses are written to.
func ShardOf(compoundID string, shards int) int {
	if shards < 1 {
		return 0
	}
	return int(compoundHash(compoundID) % uint64(shards))
}

// WriteShards distributes predictions across per-rank h5lite files,
// mirroring the paper's parallel output stage where each rank writes
// compounds assigned to the same files and directories: sharding is
// keyed by compound-ID hash, so every pose of a compound lands in the
// same shard file. Shard layout: root group "dock" / target /
// datasets ids, poses, fusion, vina, mmgbsa.
func WriteShards(preds []Prediction, shards int) []*h5lite.File {
	if shards < 1 {
		shards = 1
	}
	files := make([]*h5lite.File, shards)
	type cols struct {
		ids                []string
		poseRanks          []float64
		fusion, vina, gbsa []float64
	}
	byShard := make([]map[string]*cols, shards)
	for i := range files {
		files[i] = h5lite.New()
		byShard[i] = map[string]*cols{}
	}
	for _, pr := range preds {
		s := ShardOf(pr.CompoundID, shards)
		c, ok := byShard[s][pr.Target]
		if !ok {
			c = &cols{}
			byShard[s][pr.Target] = c
		}
		c.ids = append(c.ids, pr.CompoundID)
		c.poseRanks = append(c.poseRanks, float64(pr.PoseRank))
		c.fusion = append(c.fusion, pr.Fusion)
		c.vina = append(c.vina, pr.Vina)
		c.gbsa = append(c.gbsa, pr.MMGBSA)
	}
	for s, targets := range byShard {
		root := files[s].Root().Group("dock")
		for tgt, c := range targets {
			g := root.Group(tgt)
			g.SetStrings("ids", c.ids)
			g.SetFloats("pose_rank", c.poseRanks)
			g.SetFloats("fusion_pk", c.fusion)
			g.SetFloats("vina_kcal", c.vina)
			g.SetFloats("mmgbsa_kcal", c.gbsa)
		}
	}
	return files
}

// ReadShards is the inverse of WriteShards: it folds the per-target
// prediction columns of the given shard files back into a flat
// prediction list. Pose order within a target group is preserved per
// shard; the simulated-rank attribution is not stored in shards and
// comes back as zero. Ragged column lengths report an error naming
// the target group.
func ReadShards(files []*h5lite.File) ([]Prediction, error) {
	var out []Prediction
	for _, f := range files {
		dock := f.Root().Lookup("dock")
		if dock == nil {
			continue
		}
		for _, tgt := range dock.Children() {
			g := dock.Lookup(tgt)
			ids, _ := g.Strings("ids")
			ranks, _ := g.Floats("pose_rank")
			fusion, _ := g.Floats("fusion_pk")
			vina, _ := g.Floats("vina_kcal")
			gbsa, _ := g.Floats("mmgbsa_kcal")
			if len(ids) != len(ranks) || len(ids) != len(fusion) ||
				len(ids) != len(vina) || len(ids) != len(gbsa) {
				return nil, fmt.Errorf("screen: ragged shard columns for target %s", tgt)
			}
			for i := range ids {
				out = append(out, Prediction{
					CompoundID: ids[i],
					Target:     tgt,
					PoseRank:   int(ranks[i]),
					Fusion:     fusion[i],
					Vina:       vina[i],
					MMGBSA:     gbsa[i],
				})
			}
		}
	}
	return out, nil
}
