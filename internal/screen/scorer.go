package screen

import (
	"fmt"
	"strings"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/target"
)

// Scorer is the one scoring contract of the whole funnel: anything
// that can turn a batch of featurized complexes into per-pose scores
// can be screened at scale — the five fusion model families, the Vina
// docking-score surrogate, the MM/GBSA surrogate, or a consensus of
// them. The engine featurizes each pose exactly once and hands the
// shared samples to every scorer.
//
// ScoreBatch must be deterministic, must return exactly one score per
// sample in input order, and must give batch-composition-independent
// results (scoring a batch equals scoring each sample alone). Name
// must be stable across calls: it keys the per-scorer prediction
// columns in the h5lite shards and the campaign manifest's recorded
// scorer set.
type Scorer interface {
	Name() string
	ScoreBatch(samples []*fusion.Sample) []float64
}

// FeatureOptions is the Featurizer handshake payload: the featurization
// a scorer requires, with nil meaning "no requirement". The engine
// merges the declarations of every scorer in a job — featurization
// happens once, shared by all of them — and falls back to the
// JobOptions for anything left undeclared. The type lives in fusion
// (next to Sample) so model packages can declare their needs without
// importing the engine.
type FeatureOptions = fusion.FeatureOptions

// Featurizer is implemented by scorers that consume featurized
// representations (voxel grids, complex graphs) and therefore need the
// engine to featurize with specific options. Scorers that read only
// the raw pose (physics surrogates) do not implement it — and a job
// whose scorer set declares no representation at all skips
// featurization entirely, handing ScoreBatch samples that carry only
// identity, pocket and posed molecule. A scorer that reads
// Sample.Voxels or Sample.Graph MUST therefore implement Featurizer.
type Featurizer interface {
	FeatureOptions() FeatureOptions
}

// ScorerInto is the pooled-scoring handshake: scorers that can score a
// batch through a reusable fusion.Workspace — writing predictions into
// a caller-owned slice instead of allocating — implement it, and the
// engine's rank loop scores allocation-free after warm-up (each rank
// owns one workspace, shared by all of its scorer replicas).
// ScoreBatchInto must produce byte-identical results to ScoreBatch;
// scorers that do not implement it simply stay on the allocating path.
type ScorerInto interface {
	ScoreBatchInto(samples []*fusion.Sample, ws *fusion.Workspace, out []float64)
}

// Cloner is the replication handshake: scorers whose ScoreBatch is not
// safe for concurrent use (neural models hold forward caches)
// implement it, and each simulated MPI rank scores on its own replica
// — the paper's one-model-instance-per-GPU deployment. CloneScorer
// must return a value implementing Scorer with identical outputs.
// Stateless scorers are shared across ranks as-is.
type Cloner interface {
	CloneScorer() any
}

// LowerIsBetter is implemented by scorers whose raw score improves
// downward (the kcal/mol physics surrogates). Model scorers predict pK
// (higher is stronger) and do not implement it. Consensus uses the
// orientation to mix heterogeneous scorers on one scale.
type LowerIsBetter interface {
	LowerIsBetter() bool
}

// lowerIsBetter reports the scorer's orientation.
func lowerIsBetter(s Scorer) bool {
	l, ok := s.(LowerIsBetter)
	return ok && l.LowerIsBetter()
}

// orientToPK maps a raw score onto the pK scale used for mixing:
// kcal/mol scorers are negated and converted (dG = -RT ln K, 1.36
// kcal/mol per pK unit at ~300 K), pK scorers pass through.
func orientToPK(s Scorer, v float64) float64 {
	if lowerIsBetter(s) {
		return -v / kcalPerPK
	}
	return v
}

// mergeFeatureOptions folds the Featurizer declarations of a scorer
// set over the JobOptions fallback. Two scorers declaring different
// options for the same representation cannot share one featurization
// pass, so the merge refuses.
func mergeFeatureOptions(scorers []Scorer, vo featurize.VoxelOptions, gro featurize.GraphOptions) (featurize.VoxelOptions, featurize.GraphOptions, error) {
	var vBy, gBy string
	for _, s := range scorers {
		f, ok := s.(Featurizer)
		if !ok {
			continue
		}
		fo := f.FeatureOptions()
		if fo.Voxel != nil {
			if vBy != "" && *fo.Voxel != vo {
				return vo, gro, fmt.Errorf("screen: scorer %s needs voxel options %+v but %s already claimed %+v", s.Name(), *fo.Voxel, vBy, vo)
			}
			vo, vBy = *fo.Voxel, s.Name()
		}
		if fo.Graph != nil {
			if gBy != "" && *fo.Graph != gro {
				return vo, gro, fmt.Errorf("screen: scorer %s needs graph options %+v but %s already claimed %+v", s.Name(), *fo.Graph, gBy, gro)
			}
			gro, gBy = *fo.Graph, s.Name()
		}
	}
	return vo, gro, nil
}

// scorerSetNeedsFeatures reports whether any scorer in the set
// declares a featurized representation through the Featurizer
// handshake — when none does, jobs skip voxelization and graph
// construction entirely.
func scorerSetNeedsFeatures(scorers []Scorer) bool {
	for _, s := range scorers {
		if f, ok := s.(Featurizer); ok {
			if fo := f.FeatureOptions(); fo.Voxel != nil || fo.Graph != nil {
				return true
			}
		}
	}
	return false
}

// PrefeatureFor builds the target-invariant featurization cache a job
// with this scorer set will use against p: the scorer set's merged
// featurization options applied to featurize.NewPocketPrefeature. It
// returns nil (and no error) when the set declares no featurized
// representation — such jobs skip featurization entirely. Callers that
// screen many pose batches against one target (the campaign
// orchestrator) build this once and set JobOptions.Prefeature on every
// job; the cache is immutable and safe to share across jobs and ranks.
func PrefeatureFor(scorers []Scorer, p *target.Pocket, o JobOptions) (*featurize.PocketPrefeature, error) {
	if err := ValidateScorerSet(scorers); err != nil {
		return nil, err
	}
	vo, gro, err := mergeFeatureOptions(scorers, o.Voxel, o.Graph)
	if err != nil {
		return nil, err
	}
	if !scorerSetNeedsFeatures(scorers) {
		return nil, nil
	}
	return featurize.NewPocketPrefeature(p, vo, gro), nil
}

// replicaOf returns the scorer a rank should score on: a private clone
// when the scorer implements the Cloner handshake, the shared instance
// otherwise.
func replicaOf(s Scorer) Scorer {
	c, ok := s.(Cloner)
	if !ok {
		return s
	}
	r, ok := c.CloneScorer().(Scorer)
	if !ok {
		return s
	}
	return r
}

// replicasOf builds the per-rank replica set of a scorer list — one
// replicaOf per scorer, in order. Shared by the engine's rank loop and
// the conformance suite.
func replicasOf(scorers []Scorer) []Scorer {
	replicas := make([]Scorer, len(scorers))
	for i, s := range scorers {
		replicas[i] = replicaOf(s)
	}
	return replicas
}

// ScorerNames returns the stable name set of a scorer list, in list
// order — what the campaign manifest records and refuses to resume
// without.
func ScorerNames(scorers []Scorer) []string {
	names := make([]string, len(scorers))
	for i, s := range scorers {
		names[i] = s.Name()
	}
	return names
}

// ValidateScorerSet refuses an empty set and duplicate scorer names:
// Prediction.Scores, shard columns and campaign manifests all key by
// name, so a duplicate would silently overwrite its twin. Shared by
// the engine, Consensus and the campaign orchestrator.
func ValidateScorerSet(scorers []Scorer) error {
	if len(scorers) == 0 {
		return fmt.Errorf("screen: need at least one scorer")
	}
	seen := make(map[string]bool, len(scorers))
	for _, s := range scorers {
		if seen[s.Name()] {
			return fmt.Errorf("screen: duplicate scorer %q", s.Name())
		}
		seen[s.Name()] = true
	}
	return nil
}

// Consensus is itself a Scorer: the mean of its members' predictions
// after orienting every raw score onto the pK scale. It mirrors the
// consensus-docking line of ensemble screening — ranking quality lives
// in agreement across methods, not in any single scorer. Members score
// the same shared samples, so an N-way consensus still featurizes each
// pose once.
type Consensus struct {
	members []Scorer
	name    string

	scratch []float64 // pooled member-score buffer for ScoreBatchInto
}

// NewConsensus builds a consensus scorer over the given members. It
// refuses an empty or name-duplicated member set and members whose
// Featurizer handshakes conflict (they could not share one
// featurization pass).
func NewConsensus(members ...Scorer) (*Consensus, error) {
	if err := ValidateScorerSet(members); err != nil {
		return nil, fmt.Errorf("screen: consensus members: %w", err)
	}
	if _, _, err := mergeFeatureOptions(members, featurize.VoxelOptions{}, featurize.GraphOptions{}); err != nil {
		return nil, fmt.Errorf("screen: consensus members cannot share featurization: %w", err)
	}
	names := ScorerNames(members)
	return &Consensus{members: members, name: "consensus(" + strings.Join(names, "+") + ")"}, nil
}

// Members returns the member scorers in construction order.
func (c *Consensus) Members() []Scorer { return append([]Scorer(nil), c.members...) }

// Name identifies the consensus by its member set, so two campaigns
// built over different members never alias in a manifest.
func (c *Consensus) Name() string { return c.name }

// ScoreBatch returns the mean pK-oriented member score per sample. The
// mix is per-sample (no batch statistics), keeping consensus scores
// batch-composition independent like every other Scorer.
func (c *Consensus) ScoreBatch(samples []*fusion.Sample) []float64 {
	out := make([]float64, len(samples))
	for _, m := range c.members {
		vals := m.ScoreBatch(samples)
		for i, v := range vals {
			out[i] += orientToPK(m, v)
		}
	}
	n := float64(len(c.members))
	for i := range out {
		out[i] /= n
	}
	return out
}

// ScoreBatchInto implements the pooled-scoring handshake: members that
// implement ScorerInto score through the shared workspace, the rest
// fall back to ScoreBatch. The mix is byte-identical to ScoreBatch
// (same member order, same per-sample accumulation).
func (c *Consensus) ScoreBatchInto(samples []*fusion.Sample, ws *fusion.Workspace, out []float64) {
	if len(c.scratch) < len(samples) {
		c.scratch = make([]float64, len(samples))
	}
	for i := range out {
		out[i] = 0
	}
	for _, m := range c.members {
		var vals []float64
		if mi, ok := m.(ScorerInto); ok {
			vals = c.scratch[:len(samples)]
			mi.ScoreBatchInto(samples, ws, vals)
		} else {
			vals = m.ScoreBatch(samples)
		}
		for i, v := range vals {
			out[i] += orientToPK(m, v)
		}
	}
	n := float64(len(c.members))
	for i := range out {
		out[i] /= n
	}
}

// FeatureOptions merges the members' featurization needs (validated
// compatible at construction).
func (c *Consensus) FeatureOptions() FeatureOptions {
	var fo FeatureOptions
	for _, m := range c.members {
		f, ok := m.(Featurizer)
		if !ok {
			continue
		}
		mfo := f.FeatureOptions()
		if mfo.Voxel != nil {
			fo.Voxel = mfo.Voxel
		}
		if mfo.Graph != nil {
			fo.Graph = mfo.Graph
		}
	}
	return fo
}

// CloneScorer replicates the members that need replication, so a
// consensus can be scored on every rank concurrently.
func (c *Consensus) CloneScorer() any {
	members := make([]Scorer, len(c.members))
	for i, m := range c.members {
		members[i] = replicaOf(m)
	}
	return &Consensus{members: members, name: c.name}
}
