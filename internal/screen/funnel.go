package screen

import (
	"sort"

	"deepfusion/internal/chem"
	"deepfusion/internal/mmgbsa"
)

// CompoundScore is the per-compound aggregation of pose-level
// predictions for one binding site: the strongest prediction across
// all poses (maximum for Fusion, minimum for Vina and MM/GBSA), as in
// paper Section 5.2.
type CompoundScore struct {
	CompoundID string
	Target     string
	Fusion     float64 // max predicted pK over poses
	Vina       float64 // min kcal/mol over poses
	MMGBSA     float64 // min kcal/mol over poses
	AMPL       float64 // AMPL surrogate prediction (pose-independent)
	NumPoses   int
}

// AggregateByCompound folds pose-level predictions into per-compound
// scores.
func AggregateByCompound(preds []Prediction) []CompoundScore {
	byID := map[string]*CompoundScore{}
	var order []string
	for _, p := range preds {
		key := p.CompoundID + "|" + p.Target
		cs, ok := byID[key]
		if !ok {
			cs = &CompoundScore{CompoundID: p.CompoundID, Target: p.Target,
				Fusion: p.Fusion, Vina: p.Vina, MMGBSA: p.MMGBSA}
			byID[key] = cs
			order = append(order, key)
		}
		if p.Fusion > cs.Fusion {
			cs.Fusion = p.Fusion
		}
		if p.Vina < cs.Vina {
			cs.Vina = p.Vina
		}
		if p.MMGBSA < cs.MMGBSA {
			cs.MMGBSA = p.MMGBSA
		}
		cs.NumPoses++
	}
	out := make([]CompoundScore, 0, len(order))
	for _, k := range order {
		out = append(out, *byID[k])
	}
	return out
}

// CostWeights is the hand-tailored compound-selection cost function of
// the paper (Section 5): a weighted combination of the three energy
// calculations. Higher combined score = stronger candidate.
type CostWeights struct {
	Fusion float64
	Vina   float64
	AMPL   float64
}

// DefaultCostWeights weights Fusion most heavily with the physics
// scores as regularizers.
func DefaultCostWeights() CostWeights {
	return CostWeights{Fusion: 0.5, Vina: 0.25, AMPL: 0.25}
}

// kcalPerPK converts kcal/mol scores to pK scale for mixing.
const kcalPerPK = 1.36

// Combined returns the selection score of a compound (higher =
// stronger candidate).
func (w CostWeights) Combined(cs CompoundScore) float64 {
	return w.Fusion*cs.Fusion + w.Vina*(-cs.Vina/kcalPerPK) + w.AMPL*(-cs.AMPL/kcalPerPK)
}

// SelectForExperiment ranks compounds by the cost function and returns
// the top n — the purchase list sent for experimental testing.
func SelectForExperiment(scores []CompoundScore, w CostWeights, n int) []CompoundScore {
	ranked := append([]CompoundScore(nil), scores...)
	sort.SliceStable(ranked, func(a, b int) bool {
		return w.Combined(ranked[a]) > w.Combined(ranked[b])
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// AttachAMPL fills the AMPL surrogate score for each compound using a
// per-target fitted model (the paper used AMPL-predicted MM/GBSA for
// the retrospective analysis because full MM/GBSA on every tested
// compound was too expensive). mols maps compound ID to its prepared
// molecule.
func AttachAMPL(scores []CompoundScore, model *mmgbsa.AMPL, mols map[string]*chem.Mol) {
	for i := range scores {
		if m, ok := mols[scores[i].CompoundID]; ok {
			scores[i].AMPL = model.Predict(m)
		}
	}
}
