package screen

import (
	"context"
	"math"
	"sort"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/target"
)

// The precision A/B harness: the acceptance contract of the f32 fast
// path is rank fidelity, not bitwise scores. For every model family
// the engine runs the same screening job twice — once on the pinned
// f64 reference, once on the f32 path — over a library drawn from the
// planted-affinity oracle, and the two score columns must agree to
// Spearman >= 0.999 with top-K overlap >= 0.98. A funnel only acts on
// ranks (top-K promotion, per-compound max), so this is the exact
// property half-precision memory traffic must preserve.

const (
	minSpearman   = 0.999
	minTopKShared = 0.98
)

// rankVector assigns average ranks (ties share the mean rank), the
// standard preparation for a Spearman correlation.
func rankVector(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mean
		}
		i = j + 1
	}
	return ranks
}

// spearman is the rank correlation of two score columns.
func spearman(a, b []float64) float64 {
	ra, rb := rankVector(a), rankVector(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// topKOverlap is the fraction of the two columns' top-k index sets
// (higher score = better) that coincide.
func topKOverlap(a, b []float64, k int) float64 {
	top := func(x []float64) map[int]bool {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(p, q int) bool { return x[idx[p]] > x[idx[q]] })
		set := make(map[int]bool, k)
		for _, i := range idx[:k] {
			set[i] = true
		}
		return set
	}
	ta, tb := top(a), top(b)
	shared := 0
	for i := range ta {
		if tb[i] {
			shared++
		}
	}
	return float64(shared) / float64(k)
}

// precisionPoses draws n distinct planted-affinity library compounds
// posed into the pocket, plus their oracle affinities.
func precisionPoses(t *testing.T, n int) ([]Pose, []float64) {
	t.Helper()
	var poses []Pose
	var oracle []float64
	for i := 0; len(poses) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, Pose{CompoundID: m.Name, PoseRank: 0, Mol: m, VinaScore: -6})
		oracle = append(oracle, target.Protease1.TrueAffinity(m))
	}
	return poses, oracle
}

// abScores runs the same job at both precisions and returns the two
// Fusion score columns in pose order.
func abScores(t *testing.T, s Scorer, poses []Pose, o JobOptions) (f64, f32 []float64) {
	t.Helper()
	run := func(p Precision) []float64 {
		o := o
		o.Precision = p
		preds, err := RunJob(context.Background(), s, target.Protease1, poses, o)
		if err != nil {
			t.Fatalf("%s RunJob: %v", p, err)
		}
		scores := make([]float64, len(preds))
		for i, pr := range preds {
			scores[i] = pr.Fusion
		}
		return scores
	}
	return run(PrecisionF64), run(PrecisionF32)
}

// checkRankFidelity asserts the A/B acceptance bars on one family's
// two score columns.
func checkRankFidelity(t *testing.T, name string, f64s, f32s, oracle []float64, k int) {
	t.Helper()
	if rho := spearman(f64s, f32s); rho < minSpearman {
		t.Errorf("%s: f32-vs-f64 Spearman %.6f < %.3f", name, rho, minSpearman)
	}
	if ov := topKOverlap(f64s, f32s, k); ov < minTopKShared {
		t.Errorf("%s: top-%d overlap %.3f < %.2f", name, k, ov, minTopKShared)
	}
	// The two precisions must also see the planted truth identically:
	// whatever (un)trained correlation the family has with the oracle,
	// halving the arithmetic width must not move it.
	r64, r32 := spearman(f64s, oracle), spearman(f32s, oracle)
	if d := math.Abs(r64 - r32); d > 0.005 {
		t.Errorf("%s: oracle Spearman moved %.4f between precisions (f64 %.4f, f32 %.4f)",
			name, d, r64, r32)
	}
}

// TestPrecisionABRankFidelity is the engine-level A/B harness at the
// reproduction grid: every model family, production configs, 120
// library poses through RunJob at both precisions.
func TestPrecisionABRankFidelity(t *testing.T) {
	poses, oracle := precisionPoses(t, 120)
	cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 11)
	sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 12)
	families := []struct {
		name string
		s    Scorer
	}{
		{"cnn3d", cnn.Clone()},
		{"sgcnn", sg.Clone()},
		{"late", &fusion.LateFusion{CNN: cnn.Clone(), SG: sg.Clone()}},
		{"mid", fusion.NewFusion(fusion.DefaultMidFusionConfig(), cnn.Clone(), sg.Clone(), 13)},
		{"coherent", fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn.Clone(), sg.Clone(), 14)},
	}
	o := DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			f64s, f32s := abScores(t, fam.s, poses, o)
			checkRankFidelity(t, fam.name, f64s, f32s, oracle, 100)
		})
	}
}

// TestPrecisionABPaperGrid extends the harness to the paper's 48^3
// voxel grid (~200x the per-pose compute of the repro grid). Pose
// count and conv widths are reduced to keep tier-1 time sane — the
// coverage target is the grid geometry (boundary clipping, huge
// im2col panels, 110k-position accumulations), which filter count
// does not change. At 6 poses the Spearman bar only passes if the f32
// ordering is identical to f64's.
func TestPrecisionABPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-grid voxel compute")
	}
	poses, oracle := precisionPoses(t, 4)
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.PaperVoxelOptions()
	cnnCfg.ConvFilters1 = 8
	cnnCfg.ConvFilters2 = 12
	cnnCfg.DenseNodes = 32
	cnn := fusion.NewCNN3D(cnnCfg, 21)
	sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 22)
	coh := fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 23)
	o := DefaultJobOptions()
	o.Ranks = 1
	o.LoadersPerRank = 2
	f64s, f32s := abScores(t, coh, poses, o)
	checkRankFidelity(t, "coherent@paper", f64s, f32s, oracle, len(poses)/2)
}
