package screen

import (
	"sync"

	"deepfusion/internal/fusion"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/target"
)

// StreamingJob is the paper's stated future-work improvement to the
// scoring architecture: "efficiency will be improved by creating a
// separate, parallel process per rank to write results as they are
// computed" — instead of holding every prediction until the job-end
// allgather, each rank hands finished predictions to a dedicated
// writer goroutine that emits them immediately.
//
// RunJobStreaming returns a channel that delivers predictions as they
// are scored (in completion order, not input order) and a wait
// function that blocks until the job drains and reports any injected
// failure. A consumer that needs the original order can reassemble by
// the Prediction's identifiers.
func RunJobStreaming(f *fusion.Fusion, p *target.Pocket, poses []Pose, o JobOptions) (<-chan Prediction, func() error) {
	out := make(chan Prediction, o.Ranks*4+4)
	errc := make(chan error, 1)
	go func() {
		defer close(out)
		if o.Ranks < 1 {
			errc <- ErrJobFailed
			return
		}
		var wg sync.WaitGroup
		for rank := 0; rank < o.Ranks; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				replica := f.Clone()
				// Per-rank writer: predictions flow out as computed.
				for i := rank; i < len(poses); i += o.Ranks {
					ps := poses[i]
					s := fusion.FeaturizeComplex(ps.CompoundID, p, ps.Mol, 0, o.Voxel, o.Graph)
					out <- Prediction{
						CompoundID: ps.CompoundID,
						Target:     p.Name,
						PoseRank:   ps.PoseRank,
						Fusion:     replica.Predict(s),
						Vina:       ps.VinaScore,
						MMGBSA:     mmgbsa.Rescore(p, ps.Mol),
						Rank:       rank,
					}
				}
			}(rank)
		}
		wg.Wait()
		errc <- nil
	}()
	return out, func() error { return <-errc }
}
