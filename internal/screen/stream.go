package screen

import (
	"context"
	"fmt"

	"deepfusion/internal/target"
)

// StreamingJob is the paper's stated future-work improvement to the
// scoring architecture: "efficiency will be improved by creating a
// separate, parallel process per rank to write results as they are
// computed" — instead of holding every prediction until the job-end
// allgather, each rank hands finished predictions to the output
// channel as its batches complete.
//
// RunJobStreaming runs any Scorer on the same batched engine as
// RunJob (per-rank replicas, parallel data loaders, ScoreBatch-sized
// inference batches) and honors FailureProb identically: a failed job
// delivers nothing and reports ErrJobFailed from the wait function.
// Cancelling ctx stops the job within one batch; the wait function
// then reports the context error.
//
// It returns a channel that delivers predictions as they are scored
// (in completion order, not input order) and a wait function that
// blocks until the job drains and reports any injected failure. A
// consumer that needs the original order can reassemble by the
// Prediction's identifiers.
func RunJobStreaming(ctx context.Context, s Scorer, p *target.Pocket, poses []Pose, o JobOptions) (<-chan Prediction, func() error) {
	return RunJobStreamingEnsemble(ctx, []Scorer{s}, p, poses, o)
}

// RunJobStreamingEnsemble is the streaming analogue of
// RunJobEnsemble: featurize once, score with every scorer, stream
// predictions (with per-scorer Scores) as batches complete.
func RunJobStreamingEnsemble(ctx context.Context, scorers []Scorer, p *target.Pocket, poses []Pose, o JobOptions) (<-chan Prediction, func() error) {
	out := make(chan Prediction, o.Ranks*4+4)
	errc := make(chan error, 1)
	go func() {
		defer close(out)
		if err := checkJob(scorers, o); err != nil {
			errc <- err
			return
		}
		if err := ctx.Err(); err != nil {
			errc <- err
			return
		}
		if injectFailure(o) {
			errc <- ErrJobFailed
			return
		}
		errc <- runRanks(ctx, scorers, p, poses, o, func(_ int, pr Prediction) {
			select {
			case out <- pr:
			case <-ctx.Done():
			}
		})
	}()
	return out, func() error { return <-errc }
}

// RunJobStreamingWithRetry is the streaming analogue of
// RunJobWithRetry: it resubmits a failed job with a fresh seed until
// one succeeds or maxAttempts is exhausted. Failures are injected
// before any pose is scored, so the output channel carries exactly the
// successful attempt's predictions (no duplicates from failed runs).
// Cancellation is not retried. The wait function reports how many
// attempts ran and the final error.
func RunJobStreamingWithRetry(ctx context.Context, s Scorer, p *target.Pocket, poses []Pose, o JobOptions, maxAttempts int) (<-chan Prediction, func() (int, error)) {
	out := make(chan Prediction, o.Ranks*4+4)
	type result struct {
		attempts int
		err      error
	}
	resc := make(chan result, 1)
	go func() {
		defer close(out)
		if maxAttempts < 1 {
			resc <- result{attempts: 0, err: fmt.Errorf("screen: streaming retry needs at least 1 attempt, got %d", maxAttempts)}
			return
		}
		var lastErr error
		for attempt := 0; attempt < maxAttempts; attempt++ {
			ch, wait := RunJobStreaming(ctx, s, p, poses, o)
			for pr := range ch {
				out <- pr
			}
			if err := wait(); err == nil {
				resc <- result{attempts: attempt + 1, err: nil}
				return
			} else {
				lastErr = err
			}
			if err := ctx.Err(); err != nil {
				resc <- result{attempts: attempt + 1, err: err}
				return
			}
			o.Seed++
		}
		resc <- result{
			attempts: maxAttempts,
			err:      fmt.Errorf("screen: streaming job failed after %d attempts: %w", maxAttempts, lastErr),
		}
	}()
	return out, func() (int, error) {
		r := <-resc
		return r.attempts, r.err
	}
}
