package screen

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"deepfusion/internal/dock"
	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/target"
)

// The screening throughput benchmarks measure the tentpole of the
// batched inference engine: RunJob at the production BatchSize against
// the seed's per-sample baseline (BatchSize 1 with the direct
// reference convolution — exactly the pre-batching engine).
//
//	go test ./internal/screen/ -run xxx -bench BenchmarkRunJob -benchtime 5s
//
// reports poses/sec for both; the acceptance bar is >= 2x.

// benchFusion builds an untrained screening-default model (default
// voxel grid, default SG-CNN widths — the production configuration,
// not the test-sized one).
func benchFusion(b *testing.B) *fusion.Fusion {
	b.Helper()
	cnnCfg := fusion.DefaultCNN3DConfig()
	sgCfg := fusion.DefaultSGCNNConfig()
	cnn := fusion.NewCNN3D(cnnCfg, 1)
	sg := fusion.NewSGCNN(sgCfg, 2)
	return fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 3)
}

func benchPoses(b *testing.B, n int) []Pose {
	b.Helper()
	var poses []Pose
	for i := 0; len(poses) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, Pose{CompoundID: m.Name, PoseRank: 0, Mol: m, VinaScore: -6})
	}
	return poses
}

func runJobBench(b *testing.B, batchSize int, direct bool, precision Precision) {
	b.ReportAllocs()
	f := benchFusion(b)
	f.CNN.SetDirectConv(direct)
	poses := benchPoses(b, 24)
	o := DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2
	o.BatchSize = batchSize
	o.Precision = precision
	var scored int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds, err := RunJob(context.Background(), f, target.Protease1, poses, o)
		if err != nil {
			b.Fatal(err)
		}
		atomic.AddInt64(&scored, int64(len(preds)))
	}
	b.StopTimer()
	b.ReportMetric(float64(scored)/b.Elapsed().Seconds(), "poses/s")
}

// BenchmarkRunJobPerSample is the seed baseline: one pose per
// inference call, direct convolution loops.
func BenchmarkRunJobPerSample(b *testing.B) { runJobBench(b, 1, true, PrecisionF64) }

// BenchmarkRunJobBatchSize1 isolates the batch-dimension win: the
// lowered engine still scoring one pose at a time.
func BenchmarkRunJobBatchSize1(b *testing.B) { runJobBench(b, 1, false, PrecisionF64) }

// BenchmarkRunJobBatched is the production path: BatchSize 8 on the
// lowered batched engine, f64 reference arithmetic.
func BenchmarkRunJobBatched(b *testing.B) { runJobBench(b, 8, false, PrecisionF64) }

// BenchmarkRunJobBatchedF32 is the production path on the f32 fast
// path — the engine-level memory-traffic win of the precision knob.
func BenchmarkRunJobBatchedF32(b *testing.B) { runJobBench(b, 8, false, PrecisionF32) }

// BenchmarkRunJobBatched56 is the paper's per-GPU maximum batch.
func BenchmarkRunJobBatched56(b *testing.B) {
	b.ReportAllocs()
	f := benchFusion(b)
	poses := benchPoses(b, 56)
	o := DefaultJobOptions()
	o.Ranks = 1
	o.LoadersPerRank = 4
	o.BatchSize = 56
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunJob(context.Background(), f, target.Protease1, poses, o); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatchedBeatsPerSample is the acceptance guard for the batched
// engine: scoring the same job must be at least 2x faster than the
// seed's per-sample baseline. Run opt-in style via -short skip
// inversion is avoided; this is cheap enough (~seconds) to keep in
// tier 1.
func TestBatchedBeatsPerSample(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	f := benchFusion(&testing.B{})
	poses := func(n int) []Pose {
		var ps []Pose
		for i := 0; len(ps) < n; i++ {
			m, err := libgen.ZINC.Mol(i)
			if err != nil {
				continue
			}
			target.Protease1.PlaceLigand(m)
			ps = append(ps, Pose{CompoundID: m.Name, PoseRank: 0, Mol: m, VinaScore: -6})
		}
		return ps
	}(16)
	o := DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2

	timeJob := func(batchSize int, direct bool) float64 {
		f.CNN.SetDirectConv(direct)
		defer f.CNN.SetDirectConv(false)
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := RunJob(context.Background(), f, target.Protease1, poses, o); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start).Seconds(); rep == 0 || el < best {
				best = el
			}
		}
		return best
	}
	o.BatchSize = 1
	baseline := timeJob(1, true)
	o.BatchSize = 8
	batched := timeJob(8, false)
	t.Logf("per-sample baseline %.3fs, batched %.3fs, speedup %.2fx", baseline, batched, baseline/batched)
	if batched*2 > baseline {
		t.Fatalf("batched engine %.3fs not 2x faster than per-sample baseline %.3fs (%.2fx)",
			batched, baseline, baseline/batched)
	}
}

// benchEnsemble is the consensus-bench scorer set: the Coherent model
// plus both physics surrogates — the paper's method families side by
// side.
func benchEnsemble(b *testing.B) []Scorer {
	return []Scorer{benchFusion(b), dock.VinaScorer{}, mmgbsa.Scorer{}}
}

// BenchmarkConsensusFeaturizeOnce measures the ensemble engine:
// featurize each pose once, score it with all three scorers in the
// same batch pass (`make bench-consensus`).
func BenchmarkConsensusFeaturizeOnce(b *testing.B) {
	b.ReportAllocs()
	scorers := benchEnsemble(b)
	poses := benchPoses(b, 24)
	o := DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2
	var scored int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds, err := RunJobEnsemble(context.Background(), scorers, target.Protease1, poses, o)
		if err != nil {
			b.Fatal(err)
		}
		atomic.AddInt64(&scored, int64(len(preds)))
	}
	b.StopTimer()
	b.ReportMetric(float64(scored)/b.Elapsed().Seconds(), "poses/s")
}

// BenchmarkConsensusIndependentRuns is the naive alternative the
// ensemble engine replaces: one full job per scorer, featurizing
// every pose N times.
func BenchmarkConsensusIndependentRuns(b *testing.B) {
	b.ReportAllocs()
	scorers := benchEnsemble(b)
	poses := benchPoses(b, 24)
	o := DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2
	var scored int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range scorers {
			preds, err := RunJob(context.Background(), s, target.Protease1, poses, o)
			if err != nil {
				b.Fatal(err)
			}
			atomic.AddInt64(&scored, int64(len(preds)))
		}
	}
	b.StopTimer()
	// poses/s of complete 3-scorer consensus rows, comparable to the
	// featurize-once number.
	b.ReportMetric(float64(scored)/float64(len(scorers))/b.Elapsed().Seconds(), "poses/s")
}
