package screen

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"deepfusion/internal/h5lite"
)

func TestReadShardsInvertsWriteShards(t *testing.T) {
	preds := []Prediction{
		{CompoundID: "a", Target: "spike1", PoseRank: 0, Fusion: 5.5, Vina: -6, MMGBSA: -20},
		{CompoundID: "b", Target: "spike1", PoseRank: 1, Fusion: 4.5, Vina: -5, MMGBSA: -18},
		{CompoundID: "c", Target: "protease1", PoseRank: 0, Fusion: 6.5, Vina: -7, MMGBSA: -22},
		{CompoundID: "a", Target: "protease1", PoseRank: 2, Fusion: 3.5, Vina: -4, MMGBSA: -12},
	}
	files := WriteShards(preds, 3)
	back, err := ReadShards(files)
	if err != nil {
		t.Fatal(err)
	}
	if !samePredictionSet(preds, back) {
		t.Fatalf("round trip lost predictions:\n in: %+v\nout: %+v", preds, back)
	}
}

func TestReadShardsRoundTripProperty(t *testing.T) {
	// For random prediction sets and shard counts, write -> serialize
	// -> deserialize -> read recovers exactly the same multiset.
	targets := []string{"protease1", "protease2", "spike1", "spike2"}
	check := func(seed int64, shardPick uint) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		preds := make([]Prediction, n)
		for i := range preds {
			preds[i] = Prediction{
				CompoundID: "cmpd-" + string(rune('a'+rng.Intn(8))),
				Target:     targets[rng.Intn(len(targets))],
				PoseRank:   rng.Intn(10),
				Fusion:     rng.Float64() * 12,
				Vina:       -rng.Float64() * 10,
				MMGBSA:     -rng.Float64() * 40,
			}
		}
		shards := 1 + int(shardPick%5)
		files := WriteShards(preds, shards)
		// Serialize and reload every shard to exercise the binary path.
		reloaded := make([]*h5lite.File, len(files))
		for i, f := range files {
			var buf bytes.Buffer
			if err := f.Write(&buf); err != nil {
				return false
			}
			back, err := h5lite.Read(&buf)
			if err != nil {
				return false
			}
			reloaded[i] = back
		}
		got, err := ReadShards(reloaded)
		if err != nil {
			return false
		}
		return samePredictionSet(preds, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadShardsEmptyAndMissingGroups(t *testing.T) {
	if got, err := ReadShards(nil); err != nil || len(got) != 0 {
		t.Fatalf("ReadShards(nil) = %v, %v; want empty", got, err)
	}
	// A file with no dock group is skipped, not an error.
	f := h5lite.New()
	f.Root().Group("other")
	if got, err := ReadShards([]*h5lite.File{f}); err != nil || len(got) != 0 {
		t.Fatalf("file without dock group should read as empty, got %v, %v", got, err)
	}
}

func TestReadShardsRaggedColumnsError(t *testing.T) {
	// Each case truncates a different column; every one must surface
	// an error naming the target group rather than emitting skewed
	// predictions.
	cols := []string{"pose_rank", "fusion_pk", "vina_kcal", "mmgbsa_kcal"}
	for _, short := range append([]string{"ids"}, cols...) {
		f := h5lite.New()
		g := f.Root().Group("dock").Group("spike1")
		ids := []string{"a", "b"}
		if short == "ids" {
			ids = ids[:1]
		}
		g.SetStrings("ids", ids)
		for _, c := range cols {
			v := []float64{1, 2}
			if short == c {
				v = v[:1]
			}
			g.SetFloats(c, v)
		}
		_, err := ReadShards([]*h5lite.File{f})
		if err == nil {
			t.Fatalf("ragged %s column must be reported", short)
		}
		if !strings.Contains(err.Error(), "spike1") {
			t.Fatalf("ragged-column error %q does not name the target group", err)
		}
	}
}

// samePredictionSet compares two prediction lists as multisets,
// ignoring Rank (not persisted in shards).
func samePredictionSet(a, b []Prediction) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(ps []Prediction) []Prediction {
		out := make([]Prediction, len(ps))
		copy(out, ps)
		for i := range out {
			out[i].Rank = 0
		}
		sort.Slice(out, func(x, y int) bool {
			px, py := out[x], out[y]
			if px.CompoundID != py.CompoundID {
				return px.CompoundID < py.CompoundID
			}
			if px.Target != py.Target {
				return px.Target < py.Target
			}
			if px.PoseRank != py.PoseRank {
				return px.PoseRank < py.PoseRank
			}
			return px.Fusion < py.Fusion
		})
		return out
	}
	na, nb := norm(a), norm(b)
	for i := range na {
		if !reflect.DeepEqual(na[i], nb[i]) {
			return false
		}
	}
	return true
}
