package screen

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"deepfusion/internal/chem"
	"deepfusion/internal/dock"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/libgen"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/target"
)

// tinyFusion builds an untrained (but functional) fusion model for
// architecture tests.
func tinyFusion(t *testing.T) *fusion.Fusion {
	t.Helper()
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfg.ConvFilters1 = 4
	cnnCfg.ConvFilters2 = 6
	cnnCfg.DenseNodes = 8
	sgCfg := fusion.DefaultSGCNNConfig()
	sgCfg.CovGatherWidth = 6
	sgCfg.NonCovGatherWidth = 8
	cnn := fusion.NewCNN3D(cnnCfg, 1)
	sg := fusion.NewSGCNN(sgCfg, 2)
	cfg := fusion.DefaultCoherentConfig()
	return fusion.NewFusion(cfg, cnn, sg, 3)
}

func tinyJobOptions() JobOptions {
	o := DefaultJobOptions()
	o.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	return o
}

func testMols(t *testing.T, n int) []*chem.Mol {
	t.Helper()
	var mols []*chem.Mol
	for i := 0; len(mols) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		mols = append(mols, m)
	}
	return mols
}

func TestDockCompoundsProducesPoses(t *testing.T) {
	mols := testMols(t, 4)
	poses, problems, _ := DockCompounds(context.Background(), target.Spike1, mols, 3, 7)
	if len(poses) == 0 {
		t.Fatal("no poses")
	}
	if len(problems) == len(mols) {
		t.Fatal("all compounds skipped")
	}
	for _, p := range problems {
		if p.CompoundID == "" || p.Reason == "" {
			t.Fatalf("dock problem missing identity or reason: %+v", p)
		}
	}
	perCompound := map[string]int{}
	for _, p := range poses {
		perCompound[p.CompoundID]++
		if p.Mol == nil {
			t.Fatal("pose without coordinates")
		}
	}
	for id, n := range perCompound {
		if n > 3 {
			t.Fatalf("%s has %d poses, cap 3", id, n)
		}
	}
}

func TestRunJobScoresAllPoses(t *testing.T) {
	f := tinyFusion(t)
	mols := testMols(t, 3)
	poses, _, _ := DockCompounds(context.Background(), target.Spike1, mols, 2, 8)
	o := tinyJobOptions()
	preds, err := RunJob(context.Background(), f, target.Spike1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(poses) {
		t.Fatalf("predictions %d, poses %d", len(preds), len(poses))
	}
	ranksSeen := map[int]bool{}
	for i, pr := range preds {
		if pr.CompoundID != poses[i].CompoundID {
			t.Fatal("prediction order does not match input (allgather misaligned)")
		}
		if pr.Target != "spike1" {
			t.Fatalf("target %q", pr.Target)
		}
		ranksSeen[pr.Rank] = true
	}
	if len(ranksSeen) < 2 {
		t.Fatalf("work not distributed: only ranks %v", ranksSeen)
	}
}

func TestRunJobMatchesSerialPrediction(t *testing.T) {
	// The distributed job must produce exactly the same predictions as
	// serial inference with the same model.
	f := tinyFusion(t)
	mols := testMols(t, 2)
	poses, _, _ := DockCompounds(context.Background(), target.Protease1, mols, 2, 9)
	o := tinyJobOptions()
	preds, err := RunJob(context.Background(), f, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range poses {
		s := fusion.FeaturizeComplex(p.CompoundID, target.Protease1, p.Mol, 0, o.Voxel, o.Graph)
		want := f.Predict(s)
		if preds[i].Fusion != want {
			t.Fatalf("pose %d: distributed %v != serial %v", i, preds[i].Fusion, want)
		}
	}
}

func TestRunJobZeroRanksErrors(t *testing.T) {
	f := tinyFusion(t)
	o := tinyJobOptions()
	o.Ranks = 0
	if _, err := RunJob(context.Background(), f, target.Spike1, nil, o); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunJobFaultInjectionAndRetry(t *testing.T) {
	f := tinyFusion(t)
	mols := testMols(t, 1)
	poses, _, _ := DockCompounds(context.Background(), target.Spike1, mols, 1, 10)
	o := tinyJobOptions()
	o.FailureProb = 1.0
	if _, err := RunJob(context.Background(), f, target.Spike1, poses, o); !errors.Is(err, ErrJobFailed) {
		t.Fatalf("expected ErrJobFailed, got %v", err)
	}
	// Retry keeps resubmitting; with probability 1 it exhausts attempts.
	if _, attempts, err := RunJobWithRetry(context.Background(), f, target.Spike1, poses, o, 3); err == nil || attempts != 3 {
		t.Fatalf("retry should exhaust 3 attempts, got %d / %v", attempts, err)
	}
	// Moderate failure probability eventually succeeds.
	o.FailureProb = 0.5
	o.Seed = 2
	preds, attempts, err := RunJobWithRetry(context.Background(), f, target.Spike1, poses, o, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(poses) {
		t.Fatal("retry lost poses")
	}
	if attempts < 1 {
		t.Fatal("attempts must be >= 1")
	}
}

func TestDockCompoundsSeedsDifferForSameLengthNames(t *testing.T) {
	// The per-compound search seed hashes the compound name; two
	// compounds with identical structure but different (same-length)
	// names must not replay the same Monte-Carlo trajectory. With the
	// old len(name)-based seed their poses were coordinate-identical.
	mols := testMols(t, 1)
	a := mols[0]
	a.Name = "AAAAAAA"
	b := a.Clone()
	b.Name = "BBBBBBB"
	if compoundHash(a.Name) == compoundHash(b.Name) {
		t.Fatal("name hash collides for distinct same-length names")
	}
	poses, _, _ := DockCompounds(context.Background(), target.Spike1, []*chem.Mol{a, b}, 2, 31)
	byName := map[string][]Pose{}
	for _, p := range poses {
		byName[p.CompoundID] = append(byName[p.CompoundID], p)
	}
	pa, pb := byName["AAAAAAA"], byName["BBBBBBB"]
	if len(pa) == 0 || len(pb) == 0 {
		t.Fatalf("docking lost a compound: %d/%d poses", len(pa), len(pb))
	}
	// Same molecule, different seeds: the best poses must differ.
	if pa[0].VinaScore == pb[0].VinaScore && dock.RMSD(pa[0].Mol, pb[0].Mol) < 1e-9 {
		t.Fatal("same-length names replayed an identical search trajectory")
	}
}

func TestAggregateByCompound(t *testing.T) {
	preds := []Prediction{
		{CompoundID: "a", Target: "spike1", Fusion: 5, Vina: -6, MMGBSA: -20},
		{CompoundID: "a", Target: "spike1", Fusion: 7, Vina: -5, MMGBSA: -25},
		{CompoundID: "b", Target: "spike1", Fusion: 4, Vina: -8, MMGBSA: -15},
	}
	agg := AggregateByCompound(preds)
	if len(agg) != 2 {
		t.Fatalf("aggregated %d compounds", len(agg))
	}
	a := agg[0]
	if a.CompoundID != "a" || a.Fusion != 7 || a.Vina != -6 || a.MMGBSA != -25 {
		t.Fatalf("aggregation wrong: %+v", a)
	}
	if a.NumPoses != 2 {
		t.Fatalf("pose count %d", a.NumPoses)
	}
}

func TestAggregateSeparatesTargets(t *testing.T) {
	preds := []Prediction{
		{CompoundID: "a", Target: "spike1", Fusion: 5},
		{CompoundID: "a", Target: "spike2", Fusion: 6},
	}
	if agg := AggregateByCompound(preds); len(agg) != 2 {
		t.Fatalf("per-target aggregation collapsed: %d", len(agg))
	}
}

func TestSelectForExperiment(t *testing.T) {
	scores := []CompoundScore{
		{CompoundID: "weak", Fusion: 3, Vina: -3, AMPL: -5},
		{CompoundID: "strong", Fusion: 9, Vina: -10, AMPL: -30},
		{CompoundID: "mid", Fusion: 6, Vina: -6, AMPL: -15},
	}
	top := SelectForExperiment(scores, DefaultCostWeights(), 2)
	if len(top) != 2 || top[0].CompoundID != "strong" || top[1].CompoundID != "mid" {
		t.Fatalf("selection wrong: %+v", top)
	}
	all := SelectForExperiment(scores, DefaultCostWeights(), 10)
	if len(all) != 3 {
		t.Fatal("n > len must return all")
	}
}

func TestAttachAMPL(t *testing.T) {
	mols := testMols(t, 20)
	model := mmgbsa.NewAMPL(target.Spike1)
	if err := model.Fit(mols); err != nil {
		t.Fatal(err)
	}
	scores := []CompoundScore{{CompoundID: mols[0].Name}, {CompoundID: "missing"}}
	byID := map[string]*chem.Mol{mols[0].Name: mols[0]}
	AttachAMPL(scores, model, byID)
	if scores[0].AMPL == 0 {
		t.Fatal("AMPL score not attached")
	}
	if scores[1].AMPL != 0 {
		t.Fatal("missing compound must stay zero")
	}
}

func TestWriteShardsRoundTrip(t *testing.T) {
	preds := []Prediction{
		{CompoundID: "a", Target: "spike1", PoseRank: 0, Fusion: 5.5, Vina: -6, MMGBSA: -20},
		{CompoundID: "b", Target: "spike1", PoseRank: 1, Fusion: 4.5, Vina: -5, MMGBSA: -18},
		{CompoundID: "c", Target: "protease1", PoseRank: 0, Fusion: 6.5, Vina: -7, MMGBSA: -22},
	}
	files := WriteShards(preds, 2)
	if len(files) != 2 {
		t.Fatalf("shards %d", len(files))
	}
	// Every prediction must appear in exactly one shard, and shards
	// must survive serialization.
	total := 0
	for _, f := range files {
		var buf bytes.Buffer
		if err := f.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := h5lite.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		dockG := back.Root().Lookup("dock")
		if dockG == nil {
			continue
		}
		for _, tgt := range dockG.Children() {
			ids, _ := dockG.Lookup(tgt).Strings("ids")
			fus, _ := dockG.Lookup(tgt).Floats("fusion_pk")
			if len(ids) != len(fus) {
				t.Fatal("column lengths differ")
			}
			total += len(ids)
		}
	}
	if total != len(preds) {
		t.Fatalf("shards hold %d rows, want %d", total, len(preds))
	}
}

func TestWriteShardsZeroShards(t *testing.T) {
	files := WriteShards(nil, 0)
	if len(files) != 1 {
		t.Fatal("zero shards must clamp to 1")
	}
}

func TestCostWeightsCombined(t *testing.T) {
	w := CostWeights{Fusion: 1, Vina: 0, AMPL: 0}
	cs := CompoundScore{Fusion: 7}
	if w.Combined(cs) != 7 {
		t.Fatal("fusion-only weighting")
	}
	w = CostWeights{Vina: 1}
	cs = CompoundScore{Vina: -13.6}
	if got := w.Combined(cs); got < 9.999 || got > 10.001 {
		t.Fatalf("vina conversion: %v", got)
	}
}

func TestWriteShardsManyPredictions(t *testing.T) {
	// At realistic volume the shards must preserve every row and keep
	// each compound's poses in a single shard (the paper's "each rank
	// writes compounds assigned to the same files").
	var preds []Prediction
	for i := 0; i < 1000; i++ {
		preds = append(preds, Prediction{
			CompoundID: "c" + string(rune('a'+i%26)),
			Target:     []string{"protease1", "spike1"}[i%2],
			PoseRank:   i % 10,
			Fusion:     float64(i) / 100,
		})
	}
	files := WriteShards(preds, 7)
	total := 0
	shardOfCompound := map[string]int{}
	for s, f := range files {
		dockG := f.Root().Lookup("dock")
		for _, tgt := range dockG.Children() {
			ids, _ := dockG.Lookup(tgt).Strings("ids")
			total += len(ids)
			for _, id := range ids {
				if prev, seen := shardOfCompound[id]; seen && prev != s {
					t.Fatalf("compound %s scattered across shards %d and %d", id, prev, s)
				}
				shardOfCompound[id] = s
			}
		}
	}
	if total != 1000 {
		t.Fatalf("lost rows: %d", total)
	}
	// The hash must still spread compounds across files (no degenerate
	// single-shard pileup).
	used := map[int]bool{}
	for _, s := range shardOfCompound {
		used[s] = true
	}
	if len(used) < 3 {
		t.Fatalf("26 compounds landed in only %d of 7 shards", len(used))
	}
}

func TestShardOfStable(t *testing.T) {
	// Shard assignment is a pure function of compound ID, matching
	// WriteShards row placement.
	preds := []Prediction{
		{CompoundID: "cmpd-a", Target: "spike1"},
		{CompoundID: "cmpd-b", Target: "spike1"},
		{CompoundID: "cmpd-a", Target: "protease1", PoseRank: 4},
	}
	files := WriteShards(preds, 5)
	for s, f := range files {
		dockG := f.Root().Lookup("dock")
		if dockG == nil {
			continue
		}
		for _, tgt := range dockG.Children() {
			ids, _ := dockG.Lookup(tgt).Strings("ids")
			for _, id := range ids {
				if want := ShardOf(id, 5); want != s {
					t.Fatalf("compound %s in shard %d, ShardOf says %d", id, s, want)
				}
			}
		}
	}
	if ShardOf("anything", 0) != 0 {
		t.Fatal("ShardOf must clamp non-positive shard counts")
	}
}

func TestRunJobConcurrentJobs(t *testing.T) {
	// Multiple jobs sharing one base model must be isolated: each rank
	// clones, so concurrent jobs cannot race (run under -race).
	f := tinyFusion(t)
	mols := testMols(t, 2)
	poses, _, _ := DockCompounds(context.Background(), target.Spike2, mols, 2, 30)
	o := tinyJobOptions()
	done := make(chan error, 3)
	for j := 0; j < 3; j++ {
		go func(seed int64) {
			oo := o
			oo.Seed = seed
			_, err := RunJob(context.Background(), f, target.Spike2, poses, oo)
			done <- err
		}(int64(j))
	}
	for j := 0; j < 3; j++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
