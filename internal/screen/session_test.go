package screen

import (
	"context"
	"testing"

	"deepfusion/internal/target"
)

// TestSessionMatchesRunJob pins the seam's core contract: scoring
// poses through a warm Session — in whatever batch groupings — is
// byte-identical to a solo RunJob over the same poses. The session
// scores the pose set in three differently-sized calls (full batch,
// partial, remainder) to exercise cross-request-style grouping.
func TestSessionMatchesRunJob(t *testing.T) {
	f := allocTestScorer(91)
	poses := sessionTestPoses(t, 11)
	o := DefaultJobOptions()
	o.BatchSize = 4

	want, err := RunJob(context.Background(), f, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession([]Scorer{f}, target.Protease1, o, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Prediction, len(poses))
	// Uneven groupings: 4 + 5 (chunked internally as 4+1) + 2.
	for _, cut := range [][2]int{{0, 4}, {4, 9}, {9, 11}} {
		if err := sess.ScoreBatch(poses[cut[0]:cut[1]], got[cut[0]:cut[1]]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range poses {
		if got[i].Fusion != want[i].Fusion || got[i].Vina != want[i].Vina || got[i].MMGBSA != want[i].MMGBSA {
			t.Fatalf("pose %d: session %+v != RunJob %+v", i, got[i], want[i])
		}
		if got[i].CompoundID != want[i].CompoundID || got[i].PoseRank != want[i].PoseRank || got[i].Target != want[i].Target {
			t.Fatalf("pose %d: identity mismatch: session %+v != RunJob %+v", i, got[i], want[i])
		}
	}
}

// TestSessionEnsembleMatchesRunJob extends the byte-identity pin to
// ensemble scorer sets: every per-scorer column of the session equals
// the ensemble job's.
func TestSessionEnsembleMatchesRunJob(t *testing.T) {
	a := renamed{Scorer: allocTestScorer(93), name: "coherent_a"}
	b := renamed{Scorer: allocTestScorer(95), name: "coherent_b"}
	set := []Scorer{a, b}
	poses := sessionTestPoses(t, 7)
	o := DefaultJobOptions()
	o.BatchSize = 3

	want, err := RunJobEnsemble(context.Background(), set, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(set, target.Protease1, o, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Prediction, len(poses))
	if err := sess.ScoreBatch(poses, got); err != nil {
		t.Fatal(err)
	}
	for i := range poses {
		for _, name := range []string{"coherent_a", "coherent_b"} {
			if got[i].Scores[name] != want[i].Scores[name] {
				t.Fatalf("pose %d scorer %s: session %v != RunJobEnsemble %v", i, name, got[i].Scores[name], want[i].Scores[name])
			}
		}
	}
}

// TestWarmSessionZeroAlloc is the service-path allocation pin: the hot
// handler loop — featurize a full batch into recycled slots through
// the shared prefeature, score it through the warm workspace, assemble
// Predictions into a caller-owned slice — allocates nothing once warm,
// at both engine precisions.
func TestWarmSessionZeroAlloc(t *testing.T) {
	for _, p := range []Precision{PrecisionF64, PrecisionF32} {
		t.Run(string(p), func(t *testing.T) {
			f := allocTestScorer(97)
			poses := sessionTestPoses(t, 8)
			o := DefaultJobOptions()
			o.BatchSize = len(poses)
			o.Precision = p
			sess, err := NewSession([]Scorer{f}, target.Protease1, o, 0)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]Prediction, len(poses))
			loop := func() {
				if err := sess.ScoreBatch(poses, out); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				loop() // warm the workspace pools, slots and packed weights
			}
			if avg := testing.AllocsPerRun(30, loop); avg != 0 {
				t.Fatalf("warm session batch allocates %.1f times, want 0", avg)
			}
		})
	}
}

// TestSessionRefusesMismatchedPrefeature mirrors the engine's
// prefeature validation at the seam.
func TestSessionRefusesMismatchedPrefeature(t *testing.T) {
	f := allocTestScorer(99)
	o := DefaultJobOptions()
	pre, err := PrefeatureFor([]Scorer{f}, target.Protease2, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Prefeature = pre
	if _, err := NewSession([]Scorer{f}, target.Protease1, o, 0); err == nil {
		t.Fatal("session accepted a prefeature built for a different target")
	}
}

// sessionTestPoses docks nothing: it reuses the library poses the
// alloc tests place directly in the pocket frame, with distinct
// per-pose vina scores so the Vina column is load-bearing.
func sessionTestPoses(t *testing.T, n int) []Pose {
	t.Helper()
	f := allocTestScorer(101)
	samples := allocTestSamples(t, f, n)
	poses := make([]Pose, 0, n)
	for i, s := range samples {
		poses = append(poses, Pose{CompoundID: s.ID, PoseRank: i % 3, Mol: s.Mol, VinaScore: -5 - 0.25*float64(i)})
	}
	return poses
}
