package screen

import (
	"context"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/target"
)

func allocTestScorer(seed int64) *fusion.Fusion {
	cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), seed)
	sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), seed+1)
	return fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, seed+2)
}

func allocTestSamples(t testing.TB, f *fusion.Fusion, n int) []*fusion.Sample {
	t.Helper()
	vo := f.CNN.Cfg.Voxel
	gro := f.SG.Cfg.Graph
	var samples []*fusion.Sample
	for i := 0; len(samples) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		samples = append(samples, fusion.FeaturizeComplex(m.Name, target.Protease1, m, 0, vo, gro))
	}
	return samples
}

// TestWarmRankLoopZeroAlloc is the allocation-regression pin of the
// tentpole: the steady-state scoring step of a rank — a full batch
// through the production-config Coherent Fusion scorer via the
// ScorerInto handshake, exactly what runRanks' flush does — performs
// zero heap allocations once the rank's workspace is warm. The pin
// covers both engine precisions: the f32 fast path must hold the same
// zero-allocation bar as the f64 reference.
func TestWarmRankLoopZeroAlloc(t *testing.T) {
	for _, p := range []Precision{PrecisionF64, PrecisionF32} {
		t.Run(string(p), func(t *testing.T) {
			f := allocTestScorer(61)
			samples := allocTestSamples(t, f, 8)
			ws := fusion.NewWorkspaceFor(p)
			out := make([]float64, len(samples))
			var s ScorerInto = f
			loop := func() { s.ScoreBatchInto(samples, ws, out) }
			for i := 0; i < 3; i++ {
				loop() // warm the workspace pools and packed-weight caches
			}
			if avg := testing.AllocsPerRun(50, loop); avg != 0 {
				t.Fatalf("warm rank scoring loop allocates %.1f times per batch, want 0", avg)
			}
		})
	}
}

// TestSteadyStatePrefeatureReuse pins the fix for the BENCH_5
// steady-state regression: jobs that do not inject a prefeature made
// the engine rebuild the target-invariant cache (~500 allocations,
// ~300 KB) on every RunJob call. The regressed configuration — the
// default job options, nil Prefeature — must now reuse the previous
// job's prefeature: same pointer, zero allocations once warm.
func TestSteadyStatePrefeatureReuse(t *testing.T) {
	vo := featurize.DefaultVoxelOptions()
	gro := featurize.DefaultGraphOptions()
	a := cachedPrefeature(target.Protease1, vo, gro)
	b := cachedPrefeature(target.Protease1, vo, gro)
	if a != b {
		t.Fatal("consecutive same-target jobs rebuilt the prefeature")
	}
	if avg := testing.AllocsPerRun(10, func() { cachedPrefeature(target.Protease1, vo, gro) }); avg != 0 {
		t.Fatalf("warm prefeature lookup allocates %.1f times per job, want 0", avg)
	}
	// A different target (or options) must rebuild, then re-steady.
	po := featurize.PaperVoxelOptions()
	c := cachedPrefeature(target.Protease1, po, gro)
	if c == a {
		t.Fatal("option change did not rebuild the prefeature")
	}
	if d := cachedPrefeature(target.Protease1, po, gro); d != c {
		t.Fatal("second job after option change rebuilt the prefeature again")
	}
}

// TestWarmFeaturizingLoaderZeroAlloc extends the allocation pin to the
// loader side of the rank loop: featurizing a stream of poses into one
// recycled slot through a shared pocket prefeature — exactly what a
// warm loader does per pose — performs zero heap allocations. Together
// with TestWarmRankLoopZeroAlloc this covers the whole steady-state
// path from pose to prediction.
func TestWarmFeaturizingLoaderZeroAlloc(t *testing.T) {
	vo := featurize.DefaultVoxelOptions()
	gro := featurize.DefaultGraphOptions()
	pre := featurize.NewPocketPrefeature(target.Protease1, vo, gro)
	var poses []Pose
	for i := 0; len(poses) < 6; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, Pose{CompoundID: m.Name, Mol: m})
	}
	slot := &fusion.Sample{}
	i := 0
	loop := func() {
		ps := poses[i%len(poses)]
		fusion.FeaturizeComplexWithPrefeature(slot, pre, ps.CompoundID, ps.Mol, 0)
		i++
	}
	// Warm-up must see every pose so the slot's buffers and scratch
	// grow to the stream's maximum before measuring.
	for w := 0; w < 2*len(poses); w++ {
		loop()
	}
	if avg := testing.AllocsPerRun(60, loop); avg != 0 {
		t.Fatalf("warm featurizing loader allocates %.1f times per pose, want 0", avg)
	}
}

// TestEnsembleSharedWorkspaceMatchesSoloRuns guards the engine-level
// buffer-isolation contract: a rank's single workspace is shared by
// every scorer replica it owns, so an ensemble job's per-scorer
// predictions must be byte-identical to running each scorer in its own
// job (its own workspaces). Cross-scorer buffer leakage or a packing
// cache collision would break the equality.
func TestEnsembleSharedWorkspaceMatchesSoloRuns(t *testing.T) {
	a := allocTestScorer(71)
	b := allocTestScorer(81)
	// Distinct names so the ensemble accepts both Coherent models.
	sa := renamed{Scorer: a, name: "coherent_a"}
	sb := renamed{Scorer: b, name: "coherent_b"}
	var poses []Pose
	for i := 0; len(poses) < 10; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, Pose{CompoundID: m.Name, PoseRank: 0, Mol: m, VinaScore: -6})
	}
	o := DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2
	o.BatchSize = 3 // remainder batch exercises mixed shapes in one workspace

	both, err := RunJobEnsemble(context.Background(), []Scorer{sa, sb}, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	soloA, err := RunJob(context.Background(), sa, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	soloB, err := RunJob(context.Background(), sb, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range poses {
		if got, want := both[i].Scores["coherent_a"], soloA[i].Fusion; got != want {
			t.Fatalf("pose %d scorer a: shared-workspace %v != solo %v", i, got, want)
		}
		if got, want := both[i].Scores["coherent_b"], soloB[i].Fusion; got != want {
			t.Fatalf("pose %d scorer b: shared-workspace %v != solo %v", i, got, want)
		}
	}
}

// renamed wraps a scorer with a distinct stable name, forwarding every
// engine handshake the wrapped scorer implements.
type renamed struct {
	Scorer
	name string
}

func (r renamed) Name() string { return r.name }

func (r renamed) ScoreBatchInto(samples []*fusion.Sample, ws *fusion.Workspace, out []float64) {
	r.Scorer.(ScorerInto).ScoreBatchInto(samples, ws, out)
}

func (r renamed) FeatureOptions() FeatureOptions {
	return r.Scorer.(Featurizer).FeatureOptions()
}

func (r renamed) CloneScorer() any {
	return renamed{Scorer: r.Scorer.(Cloner).CloneScorer().(Scorer), name: r.name}
}
