package screen

// Engine-level tests of the featurization prefeature: a job scored
// through the cached path (default), through a caller-injected shared
// prefeature, and with the cache disabled must produce byte-identical
// predictions; a prefeature built for the wrong (target, options) pair
// must be refused.

import (
	"context"
	"strings"
	"testing"

	"deepfusion/internal/fusion"
	"deepfusion/internal/libgen"
	"deepfusion/internal/target"
)

func prefeatureTestScorer() *fusion.Fusion {
	cnn := fusion.NewCNN3D(fusion.DefaultCNN3DConfig(), 17)
	sg := fusion.NewSGCNN(fusion.DefaultSGCNNConfig(), 18)
	return fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 19)
}

func prefeatureTestPoses(t *testing.T, n int) []Pose {
	t.Helper()
	var poses []Pose
	for i := 0; len(poses) < n; i++ {
		m, err := libgen.ZINC.Mol(i)
		if err != nil {
			continue
		}
		target.Protease1.PlaceLigand(m)
		poses = append(poses, Pose{CompoundID: m.Name, PoseRank: 0, Mol: m, VinaScore: -6})
	}
	return poses
}

// TestRunJobPrefeatureByteIdentical pins the engine contract of the
// tentpole: predictions through the per-job prefeature, through a
// shared injected prefeature, and through the disabled (per-pose
// re-featurization) path are byte-identical.
func TestRunJobPrefeatureByteIdentical(t *testing.T) {
	f := prefeatureTestScorer()
	poses := prefeatureTestPoses(t, 10)
	o := DefaultJobOptions()
	o.Ranks = 2
	o.LoadersPerRank = 2
	o.BatchSize = 3 // remainder batch exercises slot recycling mid-job

	cached, err := RunJob(context.Background(), f, target.Protease1, poses, o)
	if err != nil {
		t.Fatal(err)
	}

	oOff := o
	oOff.DisablePrefeature = true
	uncached, err := RunJob(context.Background(), f, target.Protease1, poses, oOff)
	if err != nil {
		t.Fatal(err)
	}

	pf, err := PrefeatureFor([]Scorer{f}, target.Protease1, o)
	if err != nil {
		t.Fatal(err)
	}
	if pf == nil {
		t.Fatal("PrefeatureFor returned nil for a featurizing scorer")
	}
	oShared := o
	oShared.Prefeature = pf
	shared, err := RunJob(context.Background(), f, target.Protease1, poses, oShared)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run with the same injected prefeature: reuse across jobs is
	// the campaign's pattern.
	shared2, err := RunJob(context.Background(), f, target.Protease1, poses, oShared)
	if err != nil {
		t.Fatal(err)
	}

	for i := range poses {
		assertPredictionEqual(t, "cached", i, cached[i], uncached[i])
		assertPredictionEqual(t, "shared-prefeature", i, shared[i], uncached[i])
		assertPredictionEqual(t, "reused-prefeature", i, shared2[i], uncached[i])
	}
}

// assertPredictionEqual compares every field bit-for-bit (Prediction
// holds a map, so struct equality does not apply).
func assertPredictionEqual(t *testing.T, path string, i int, got, want Prediction) {
	t.Helper()
	if got.CompoundID != want.CompoundID || got.Target != want.Target ||
		got.PoseRank != want.PoseRank || got.Fusion != want.Fusion ||
		got.Vina != want.Vina || got.MMGBSA != want.MMGBSA || got.Rank != want.Rank {
		t.Fatalf("pose %d: %s %+v != uncached %+v", i, path, got, want)
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("pose %d: %s scorer columns %v != %v", i, path, got.Scores, want.Scores)
	}
	for name, v := range want.Scores {
		if got.Scores[name] != v {
			t.Fatalf("pose %d: %s score %q %v != %v", i, path, name, got.Scores[name], v)
		}
	}
}

// TestRunJobRefusesMismatchedPrefeature pins the safety check: a
// prefeature built for another target (or other options) fails the
// job instead of silently featurizing against the wrong cache.
func TestRunJobRefusesMismatchedPrefeature(t *testing.T) {
	f := prefeatureTestScorer()
	poses := prefeatureTestPoses(t, 2)
	o := DefaultJobOptions()
	pf, err := PrefeatureFor([]Scorer{f}, target.Spike1, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Prefeature = pf
	if _, err := RunJob(context.Background(), f, target.Protease1, poses, o); err == nil {
		t.Fatal("job accepted a prefeature built for a different target")
	} else if !strings.Contains(err.Error(), "prefeature") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A deterministic configuration error must surface immediately, not
	// burn the retry budget as if the job were flaky.
	_, attempts, err := RunJobWithRetry(context.Background(), f, target.Protease1, poses, o, 3)
	if err == nil {
		t.Fatal("retry wrapper accepted a mismatched prefeature")
	}
	if attempts != 1 {
		t.Fatalf("deterministic prefeature mismatch consumed %d attempts, want 1", attempts)
	}
}

// TestPrefeatureForPhysicsOnlySet pins the no-featurization case: a
// scorer set with no Featurizer representation gets a nil prefeature
// and the job still runs (on raw samples).
func TestPrefeatureForPhysicsOnlySet(t *testing.T) {
	pf, err := PrefeatureFor([]Scorer{stubScorer{}}, target.Protease1, DefaultJobOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pf != nil {
		t.Fatal("physics-only scorer set should not build a prefeature")
	}
}

// stubScorer is a minimal featurization-free Scorer.
type stubScorer struct{}

func (stubScorer) Name() string { return "stub" }
func (stubScorer) ScoreBatch(samples []*fusion.Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(len(s.ID))
	}
	return out
}
