package screen

import (
	"fmt"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/target"
)

// batchEmitter is the per-batch scoring core shared by runRanks' rank
// loop and the Session seam: one replica set, one fusion workspace,
// and the prediction-assembly logic that turns raw scorer outputs into
// Prediction values (pK orientation of the primary column, MM/GBSA
// reuse-or-rescore, per-scorer ensemble columns). Both entry points
// run literally this code over identically featurized samples, which
// is what makes a Session's scores byte-identical to a RunJob over the
// same poses.
type batchEmitter struct {
	scorers   []Scorer // the job's scorer set (names + orientation)
	replicas  []Scorer // what is actually scored (per-rank clones)
	ws        *fusion.Workspace
	scoreBuf  []float64
	extraBufs [][]float64
	bs        int
	ensemble  bool
	mmgbsaIdx int
	pocket    *target.Pocket
	rank      int
}

// newBatchEmitter builds the scoring core for one rank (or one
// session): private replicas of every scorer via the Cloner handshake,
// one workspace shared by all of them (allocation-free scoring for
// ScorerInto scorers), and pre-sized score buffers.
func newBatchEmitter(scorers []Scorer, p *target.Pocket, bs int, prec Precision, rank int) *batchEmitter {
	replicas := replicasOf(scorers)
	// One workspace per emitter, shared by its replicas, makes the
	// scoring loop allocation-free for ScorerInto scorers.
	var ws *fusion.Workspace
	for _, r := range replicas {
		if _, ok := r.(ScorerInto); ok {
			ws = fusion.NewWorkspaceFor(prec)
			break
		}
	}
	// When the MM/GBSA surrogate is in the scorer set, its ScoreBatch
	// already computes the rescore carried in the legacy MMGBSA column
	// (ScoreBatch is contractually deterministic) — reuse it instead of
	// paying the physics rescore twice per pose.
	mmgbsaIdx := -1
	for i, s := range scorers {
		if s.Name() == "mmgbsa" {
			mmgbsaIdx = i
			break
		}
	}
	e := &batchEmitter{
		scorers:   scorers,
		replicas:  replicas,
		ws:        ws,
		scoreBuf:  make([]float64, len(replicas)*bs),
		bs:        bs,
		ensemble:  len(scorers) > 1,
		mmgbsaIdx: mmgbsaIdx,
		pocket:    p,
		rank:      rank,
	}
	if e.ensemble {
		e.extraBufs = make([][]float64, len(replicas))
	}
	return e
}

// score runs one scorer replica over the batch, through the shared
// workspace when the scorer supports pooled scoring.
func (e *batchEmitter) score(si int, batch []*fusion.Sample) []float64 {
	if r, ok := e.replicas[si].(ScorerInto); ok && e.ws != nil {
		out := e.scoreBuf[si*e.bs : si*e.bs+len(batch)]
		r.ScoreBatchInto(batch, e.ws, out)
		return out
	}
	return e.replicas[si].ScoreBatch(batch)
}

// scoreBatch scores one assembled batch with every scorer — one
// forward pass per scorer over the shared samples — and calls emit
// once per sample with the finished Prediction. batchPoses[j] is the
// pose that batch[j] was featurized from. The steady state allocates
// nothing beyond the per-pose Scores map of ensemble jobs.
func (e *batchEmitter) scoreBatch(batch []*fusion.Sample, batchPoses []Pose, emit func(j int, pr Prediction)) {
	primary := e.score(0, batch)
	var extra [][]float64
	if e.ensemble {
		extra = e.extraBufs
		extra[0] = primary
		for si := 1; si < len(e.replicas); si++ {
			extra[si] = e.score(si, batch)
		}
	}
	for j := range batch {
		ps := batchPoses[j]
		var gbsa float64
		switch {
		case e.mmgbsaIdx == 0:
			gbsa = primary[j]
		case e.mmgbsaIdx > 0:
			gbsa = extra[e.mmgbsaIdx][j]
		default:
			gbsa = mmgbsa.Rescore(e.pocket, ps.Mol)
		}
		pr := Prediction{
			CompoundID: ps.CompoundID,
			Target:     e.pocket.Name,
			PoseRank:   ps.PoseRank,
			Fusion:     orientToPK(e.scorers[0], primary[j]),
			Vina:       ps.VinaScore,
			MMGBSA:     gbsa,
			Rank:       e.rank,
		}
		if e.ensemble {
			pr.Scores = make(map[string]float64, len(e.scorers))
			for si, s := range e.scorers {
				pr.Scores[s.Name()] = extra[si][j]
			}
		}
		emit(j, pr)
	}
}

// Session is the batch-submission seam on the rank engine: a
// long-lived, warm scoring context for one (scorer set, target, job
// options) triple. Where RunJob owns a fixed pose set and drives its
// own rank fan-out, a Session scores caller-assembled pose batches on
// demand — the screening service's cross-request batcher feeds it
// batches coalesced from many client submissions. It owns one fusion
// workspace, recycled featurization slots and the job's shared pocket
// prefeature, so after warm-up a single-scorer ScoreBatch performs
// zero heap allocations (pinned by TestWarmSessionZeroAlloc).
//
// Scores are byte-identical to a solo RunJob over the same poses: a
// Session featurizes with the same FeaturizeComplexWithPrefeature
// calls the engine's loaders make and scores through the same
// batchEmitter the rank loop flushes through, and the Scorer contract
// guarantees batch-composition independence — so how poses are grouped
// into batches (one client's request, or a coalesced cross-request
// batch) cannot change any pose's score. Pinned by
// TestSessionMatchesRunJob.
//
// A Session is NOT safe for concurrent use: it owns mutable scoring
// state (workspace, slots). Callers that score in parallel hold one
// Session per worker, exactly as runRanks holds one emitter per rank.
type Session struct {
	be           *batchEmitter
	pre          *featurize.PocketPrefeature
	needFeatures bool
	vo           featurize.VoxelOptions
	gro          featurize.GraphOptions
	pocket       *target.Pocket
	slots        []*fusion.Sample
	batchBuf     []*fusion.Sample
	bs           int

	// emit plumbing: one closure built at construction writes into
	// (emitDst, emitOff), so the warm ScoreBatch path never allocates a
	// fresh closure per call.
	emitDst []Prediction
	emitOff int
	emitFn  func(j int, pr Prediction)
}

// NewSession validates the scorer set and options exactly like a job
// submission and builds the warm scoring context. rank tags the
// predictions' Rank column (the service's worker index); jobs and
// sessions agree on every other field. The target-invariant prefeature
// is taken from o.Prefeature when injected (validated to match), or
// built/reused via the engine's cache.
func NewSession(scorers []Scorer, p *target.Pocket, o JobOptions, rank int) (*Session, error) {
	if err := ValidateScorerSet(scorers); err != nil {
		return nil, err
	}
	if err := o.Precision.Validate(); err != nil {
		return nil, err
	}
	vo, gro, err := mergeFeatureOptions(scorers, o.Voxel, o.Graph)
	if err != nil {
		return nil, err
	}
	needFeatures := scorerSetNeedsFeatures(scorers)
	var pre *featurize.PocketPrefeature
	if needFeatures && !o.DisablePrefeature {
		if o.Prefeature != nil {
			if !o.Prefeature.Matches(p, vo, gro) {
				return nil, fmt.Errorf("screen: session prefeature was built for a different (target, featurization options) pair than (%s, %+v, %+v)", p.Name, vo, gro)
			}
			pre = o.Prefeature
		} else {
			pre = cachedPrefeature(p, vo, gro)
		}
	}
	bs := o.BatchSize
	if bs < 1 {
		bs = 1
	}
	s := &Session{
		be:           newBatchEmitter(scorers, p, bs, o.Precision, rank),
		pre:          pre,
		needFeatures: needFeatures,
		vo:           vo,
		gro:          gro,
		pocket:       p,
		slots:        make([]*fusion.Sample, bs),
		batchBuf:     make([]*fusion.Sample, 0, bs),
		bs:           bs,
	}
	for i := range s.slots {
		s.slots[i] = &fusion.Sample{}
	}
	s.emitFn = func(j int, pr Prediction) { s.emitDst[s.emitOff+j] = pr }
	return s, nil
}

// BatchSize returns the batch size the session scores at — the flush
// threshold a cross-request batcher coalesces toward.
func (s *Session) BatchSize() int { return s.bs }

// Pocket returns the target the session scores against.
func (s *Session) Pocket() *target.Pocket { return s.pocket }

// ScoreBatch featurizes and scores poses, writing one Prediction per
// pose into out (len(out) must equal len(poses)). Pose sets larger
// than the batch size are scored in batch-size chunks, exactly as the
// rank loop would; callers batching for latency should submit at most
// BatchSize poses per call.
func (s *Session) ScoreBatch(poses []Pose, out []Prediction) error {
	if len(out) != len(poses) {
		return fmt.Errorf("screen: session output slice holds %d predictions for %d poses", len(out), len(poses))
	}
	for lo := 0; lo < len(poses); lo += s.bs {
		hi := lo + s.bs
		if hi > len(poses) {
			hi = len(poses)
		}
		chunk := poses[lo:hi]
		batch := s.batchBuf[:0]
		for j := range chunk {
			ps := chunk[j]
			slot := s.slots[j]
			// The same featurization switch the engine's loaders run:
			// prefeature-backed, full, or raw samples for scorer sets
			// declaring no representation.
			switch {
			case s.pre != nil:
				fusion.FeaturizeComplexWithPrefeature(slot, s.pre, ps.CompoundID, ps.Mol, 0)
			case s.needFeatures:
				fusion.FeaturizeComplexInto(slot, ps.CompoundID, s.pocket, ps.Mol, 0, s.vo, s.gro)
			default:
				slot.ID, slot.Pocket, slot.Mol, slot.Label = ps.CompoundID, s.pocket, ps.Mol, 0
				slot.Voxels, slot.Graph = nil, nil
			}
			batch = append(batch, slot)
		}
		s.emitDst, s.emitOff = out, lo
		s.be.scoreBatch(batch, chunk, s.emitFn)
	}
	s.emitDst = nil
	return nil
}
