package chem

import (
	"math"
	"strings"
	"testing"
)

func descriptorsFor(t *testing.T, smiles string) Descriptors {
	t.Helper()
	m, err := ParseSMILES(smiles)
	if err != nil {
		t.Fatalf("ParseSMILES(%q): %v", smiles, err)
	}
	return ComputeDescriptors(m)
}

func TestTPSANitrogenContributions(t *testing.T) {
	// Each nitrogen environment has its own polar-surface contribution;
	// the TPSA ordering must reflect it.
	cation := descriptorsFor(t, "C[NH3+]")    // charged N: 27.6
	primary := descriptorsFor(t, "CN")        // NH2: 26.0
	secondary := descriptorsFor(t, "CNC")     // NH: 12.0
	tertiary := descriptorsFor(t, "CN(C)C")   // no H: 3.2
	aromatic := descriptorsFor(t, "c1ccncc1") // pyridine N: 12.9

	if !(cation.TPSA > primary.TPSA && primary.TPSA > secondary.TPSA && secondary.TPSA > tertiary.TPSA) {
		t.Fatalf("nitrogen TPSA ordering wrong: cation %.1f, NH2 %.1f, NH %.1f, NR3 %.1f",
			cation.TPSA, primary.TPSA, secondary.TPSA, tertiary.TPSA)
	}
	if math.Abs(aromatic.TPSA-12.9) > 1e-9 {
		t.Fatalf("pyridine TPSA = %.1f, want 12.9", aromatic.TPSA)
	}
}

func TestTPSAOxygenAndSulfur(t *testing.T) {
	hydroxyl := descriptorsFor(t, "CO") // OH: 20.2
	ether := descriptorsFor(t, "COC")   // no H: 17.1
	carboxylate := descriptorsFor(t, "CC(=O)[O-]")
	thioether := descriptorsFor(t, "CSC") // S: 25.3
	if hydroxyl.TPSA <= ether.TPSA {
		t.Fatalf("OH TPSA (%.1f) should exceed ether TPSA (%.1f)", hydroxyl.TPSA, ether.TPSA)
	}
	if carboxylate.TPSA <= hydroxyl.TPSA {
		t.Fatalf("carboxylate TPSA (%.1f) should exceed a single OH (%.1f)", carboxylate.TPSA, hydroxyl.TPSA)
	}
	if thioether.TPSA != 25.3 {
		t.Fatalf("thioether TPSA = %.1f, want 25.3", thioether.TPSA)
	}
}

func TestLogPHalogenLadder(t *testing.T) {
	// Heavier halogens are more lipophilic: logP(CI) > logP(CBr) >
	// logP(CCl) > logP(CF).
	f := descriptorsFor(t, "CF").LogP
	cl := descriptorsFor(t, "CCl").LogP
	br := descriptorsFor(t, "CBr").LogP
	i := descriptorsFor(t, "CI").LogP
	if !(i > br && br > cl && cl > f) {
		t.Fatalf("halogen logP ladder broken: F %.2f, Cl %.2f, Br %.2f, I %.2f", f, cl, br, i)
	}
	// Charged atoms reduce logP.
	neutral := descriptorsFor(t, "CN").LogP
	charged := descriptorsFor(t, "C[NH3+]").LogP
	if charged >= neutral {
		t.Fatalf("protonated amine logP (%.2f) should be below neutral (%.2f)", charged, neutral)
	}
}

func TestLogPAromaticCarbonExceedsAliphatic(t *testing.T) {
	benzene := descriptorsFor(t, "c1ccccc1")
	hexane := descriptorsFor(t, "CCCCCC")
	if benzene.LogP/6 <= hexane.LogP/6 {
		t.Fatalf("per-carbon logP: aromatic %.3f should exceed aliphatic %.3f",
			benzene.LogP/6, hexane.LogP/6)
	}
	// Phosphorus is polar.
	if p := descriptorsFor(t, "CP").LogP; p >= descriptorsFor(t, "CC").LogP {
		t.Fatalf("phosphorus should reduce logP, got %.2f", p)
	}
}

func TestElementBySymbol(t *testing.T) {
	if e, ok := ElementBySymbol("C"); !ok || e.Number != 6 {
		t.Fatalf("carbon lookup = %+v, %v", e, ok)
	}
	if _, ok := ElementBySymbol("Xx"); ok {
		t.Fatal("unknown element should not resolve")
	}
}

func TestMolStringSummarizes(t *testing.T) {
	m, err := ParseSMILES("CCO")
	if err != nil {
		t.Fatal(err)
	}
	m.Name = "ethanol"
	s := m.String()
	if !strings.Contains(s, "ethanol") {
		t.Fatalf("String() should include the name: %q", s)
	}
}
