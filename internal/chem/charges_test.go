package chem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func chargesFor(t *testing.T, smiles string) (*Mol, []float64) {
	t.Helper()
	m, err := ParseSMILES(smiles)
	if err != nil {
		t.Fatalf("ParseSMILES(%q): %v", smiles, err)
	}
	return m, GasteigerCharges(m, 0)
}

func TestGasteigerConservesChargeProperty(t *testing.T) {
	// Total partial charge equals the net formal charge, for every
	// corpus molecule and iteration budget: PEOE only moves charge
	// along bonds, it never creates or destroys it.
	check := func(pick, itPick uint) bool {
		s := roundTripCorpus[int(pick%uint(len(roundTripCorpus)))]
		m, err := ParseSMILES(s)
		if err != nil {
			return false
		}
		q := GasteigerCharges(m, 1+int(itPick%12))
		var sum float64
		for _, qi := range q {
			sum += qi
		}
		return math.Abs(sum-float64(m.NetCharge())) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGasteigerSignPatterns(t *testing.T) {
	// Electronegative atoms pull negative charge from carbon.
	m, q := chargesFor(t, "CO") // methanol heavy atoms: C, O
	if q[1] >= 0 {
		t.Errorf("methanol oxygen charge = %.3f, want negative", q[1])
	}
	if q[0] <= 0 {
		t.Errorf("methanol carbon charge = %.3f, want positive", q[0])
	}
	if math.Abs(q[0]+q[1]) > 1e-9 {
		t.Errorf("methanol charges do not cancel: %v", q)
	}
	_ = m

	// Carbonyl: O more negative than the ether O in an ester.
	m2, q2 := chargesFor(t, "COC(C)=O") // C O C C O(carbonyl)
	carbonyl := q2[len(m2.Atoms)-1]
	ether := q2[1]
	if carbonyl >= 0 || ether >= 0 {
		t.Errorf("ester oxygens should both be negative: ether %.3f carbonyl %.3f", ether, carbonyl)
	}

	// Fluorine out-pulls chlorine on the same scaffold.
	_, qf := chargesFor(t, "CF")
	_, qcl := chargesFor(t, "CCl")
	if qf[1] >= qcl[1] {
		t.Errorf("F (%.3f) should be more negative than Cl (%.3f)", qf[1], qcl[1])
	}
}

func TestGasteigerFormalChargeSeedsIteration(t *testing.T) {
	// A protonated amine keeps roughly its +1 on the nitrogen
	// neighborhood; a neutral amine does not.
	_, qPlus := chargesFor(t, "C[NH3+]")
	_, qNeutral := chargesFor(t, "CN")
	var sumPlus, sumNeutral float64
	for _, v := range qPlus {
		sumPlus += v
	}
	for _, v := range qNeutral {
		sumNeutral += v
	}
	if math.Abs(sumPlus-1) > 1e-9 || math.Abs(sumNeutral) > 1e-9 {
		t.Fatalf("net charges wrong: cation %.3f (want 1), neutral %.3f (want 0)", sumPlus, sumNeutral)
	}
	if qPlus[1] <= qNeutral[1] {
		t.Errorf("protonated N (%.3f) should carry more positive charge than neutral N (%.3f)",
			qPlus[1], qNeutral[1])
	}
}

func TestGasteigerConvergesGeometrically(t *testing.T) {
	// Successive iteration budgets change the result less and less:
	// |q(k+1) - q(k)| must shrink by about the damping factor.
	m, err := ParseSMILES("CC(=O)Nc1ccc(O)cc1")
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for k := 2; k <= 8; k++ {
		a := GasteigerCharges(m, k-1)
		b := GasteigerCharges(m, k)
		var diff float64
		for i := range a {
			diff += math.Abs(b[i] - a[i])
		}
		if diff > prev+1e-12 {
			t.Fatalf("iteration-%d delta %.6f exceeds iteration-%d delta %.6f: not converging", k, diff, k-1, prev)
		}
		prev = diff
	}
	if prev > 0.01 {
		t.Fatalf("delta after 8 iterations still %.4f", prev)
	}
}

func TestGasteigerDeterministicAndSymmetric(t *testing.T) {
	// Deterministic; and symmetric atoms (ethane carbons) get equal
	// charges.
	m, err := ParseSMILES("CC")
	if err != nil {
		t.Fatal(err)
	}
	a := GasteigerCharges(m, 0)
	b := GasteigerCharges(m, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GasteigerCharges must be deterministic")
		}
	}
	if math.Abs(a[0]-a[1]) > 1e-12 {
		t.Fatalf("symmetric carbons should carry equal charge: %v", a)
	}
}

func TestGasteigerEdgeCases(t *testing.T) {
	if got := GasteigerCharges(&Mol{}, 0); len(got) != 0 {
		t.Fatalf("empty molecule should give no charges, got %v", got)
	}
	// Single disconnected ion: charge stays put.
	m := &Mol{Atoms: []Atom{{Symbol: "Na", Charge: 1}}}
	q := GasteigerCharges(m, 0)
	if len(q) != 1 || q[0] != 1 {
		t.Fatalf("lone cation charge = %v, want [1]", q)
	}
	// Unparameterized element (metal) falls back to carbon parameters
	// without panicking.
	m2 := &Mol{
		Atoms: []Atom{{Symbol: "Zn"}, {Symbol: "O"}},
		Bonds: []Bond{{A: 0, B: 1, Order: 1}},
	}
	q2 := GasteigerCharges(m2, 0)
	if math.Abs(q2[0]+q2[1]) > 1e-9 {
		t.Fatalf("fallback-element charges must still conserve: %v", q2)
	}
}

func TestGasteigerBoundedCharges(t *testing.T) {
	// No atom accumulates more than one electron of partial charge on
	// neutral random organic molecules.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomGeometryMol(rng)
		for _, qi := range GasteigerCharges(m, 0) {
			if math.Abs(qi) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
