package chem

import "errors"

// ErrRejected is returned by Prepare for ligands the MOE-style filter
// removes entirely (metal complexes, empty molecules).
var ErrRejected = errors.New("chem: ligand rejected by preparation filter")

// StripSalts keeps only the largest fragment by heavy-atom count,
// breaking ties by molecular weight — the desalting step of ligand
// preparation. The input is not modified.
func StripSalts(m *Mol) *Mol {
	frags := m.Fragments()
	if len(frags) == 1 {
		return frags[0]
	}
	best := frags[0]
	for _, f := range frags[1:] {
		if len(f.Atoms) > len(best.Atoms) ||
			(len(f.Atoms) == len(best.Atoms) && f.Weight() > best.Weight()) {
			best = f
		}
	}
	best.SMILES = "" // no longer matches the source string
	return best
}

// ProtonateAtPH7 sets the dominant protonation state at physiological
// pH in place: carboxylic acids are deprotonated (COO-), aliphatic
// primary/secondary/tertiary amines are protonated (N+), and existing
// charges on other groups are preserved.
func ProtonateAtPH7(m *Mol) {
	adj := m.Adjacency()
	for i := range m.Atoms {
		a := &m.Atoms[i]
		switch a.Symbol {
		case "O":
			if a.Charge != 0 || a.Aromatic {
				continue
			}
			// Hydroxyl oxygen on a carboxyl carbon: deprotonate.
			if a.NumH >= 1 && isCarboxylOxygen(m, adj, i) {
				a.Charge = -1
				a.NumH = 0
			}
		case "N":
			if a.Charge != 0 || a.Aromatic {
				continue
			}
			// sp3 amine nitrogen (all single bonds, not amide): protonate.
			if isBasicAmine(m, adj, i) {
				a.Charge = 1
				a.NumH++
			}
		}
	}
}

// isCarboxylOxygen reports whether atom oi is the -OH oxygen of a
// carboxylic acid: bonded to a carbon that also carries a double-bonded
// oxygen.
func isCarboxylOxygen(m *Mol, adj [][]AdjEntry, oi int) bool {
	for _, e := range adj[oi] {
		c := e.Nbr
		if m.Atoms[c].Symbol != "C" || m.Bonds[e.Bond].Order != 1 {
			continue
		}
		for _, e2 := range adj[c] {
			if e2.Nbr == oi {
				continue
			}
			if m.Atoms[e2.Nbr].Symbol == "O" && m.Bonds[e2.Bond].Order == 2 {
				return true
			}
		}
	}
	return false
}

// isBasicAmine reports whether atom ni is an aliphatic amine nitrogen:
// only single bonds, no adjacent carbonyl carbon (amides are not
// basic).
func isBasicAmine(m *Mol, adj [][]AdjEntry, ni int) bool {
	for _, e := range adj[ni] {
		if m.Bonds[e.Bond].Order != 1 || m.Bonds[e.Bond].Aromatic {
			return false
		}
		c := e.Nbr
		if m.Atoms[c].Symbol == "C" {
			for _, e2 := range adj[c] {
				if m.Atoms[e2.Nbr].Symbol == "O" && m.Bonds[e2.Bond].Order == 2 {
					return false // amide / carbamate
				}
			}
		}
	}
	return true
}

// Prepare runs the full MOE-style ligand preparation used ahead of
// docking: strip salts, reject metal-containing ligands, set pH 7
// protonation states, embed 3D coordinates and energy-minimize them.
// The returned molecule is a new object; the input is unchanged.
func Prepare(m *Mol, seed int64) (*Mol, error) {
	if len(m.Atoms) == 0 {
		return nil, ErrRejected
	}
	out := StripSalts(m.Clone())
	if out.ContainsMetal() {
		return nil, ErrRejected
	}
	ProtonateAtPH7(out)
	Embed3D(out, seed)
	return out, nil
}
