package chem

// Descriptors are the MOE-style per-compound properties exported with
// each prepared ligand and used by the compound-selection cost
// function.
type Descriptors struct {
	MolWeight      float64
	LogP           float64 // atom-contribution octanol/water estimate
	HBondDonors    int
	HBondAcceptors int
	TPSA           float64 // topological polar surface area estimate
	RotatableBonds int
	Rings          int
	HeavyAtoms     int
	NetCharge      int
}

// ComputeDescriptors derives the descriptor block for m.
func ComputeDescriptors(m *Mol) Descriptors {
	d := Descriptors{
		MolWeight:      m.Weight(),
		RotatableBonds: m.RotatableBonds(),
		Rings:          m.NumRings(),
		HeavyAtoms:     len(m.Atoms),
		NetCharge:      m.NetCharge(),
	}
	for _, a := range m.Atoms {
		switch a.Symbol {
		case "N":
			d.HBondAcceptors++
			if a.NumH > 0 {
				d.HBondDonors++
			}
			d.TPSA += nContribTPSA(a)
		case "O":
			d.HBondAcceptors++
			if a.NumH > 0 {
				d.HBondDonors++
			}
			d.TPSA += oContribTPSA(a)
		case "S":
			d.TPSA += 25.3
		}
		d.LogP += logPContribution(a)
	}
	return d
}

// logPContribution is a coarse Crippen-style atomic contribution.
func logPContribution(a Atom) float64 {
	switch a.Symbol {
	case "C":
		if a.Aromatic {
			return 0.29
		}
		return 0.14
	case "N":
		if a.Charge > 0 {
			return -1.0
		}
		return -0.6
	case "O":
		if a.Charge < 0 {
			return -1.2
		}
		return -0.4
	case "S":
		return 0.25
	case "F":
		return 0.22
	case "Cl":
		return 0.65
	case "Br":
		return 0.86
	case "I":
		return 1.1
	case "P":
		return -0.5
	default:
		return 0
	}
}

func nContribTPSA(a Atom) float64 {
	switch {
	case a.Charge > 0:
		return 27.6
	case a.Aromatic:
		return 12.9
	case a.NumH >= 2:
		return 26.0
	case a.NumH == 1:
		return 12.0
	default:
		return 3.2
	}
}

func oContribTPSA(a Atom) float64 {
	switch {
	case a.Charge < 0:
		return 23.1
	case a.NumH >= 1:
		return 20.2
	default:
		return 17.1
	}
}

// Lipinski reports whether the molecule passes Lipinski's rule of five
// (at most one violation allowed), the drug-likeness pre-filter the
// Enamine library advertises.
func Lipinski(d Descriptors) bool {
	violations := 0
	if d.MolWeight > 500 {
		violations++
	}
	if d.LogP > 5 {
		violations++
	}
	if d.HBondDonors > 5 {
		violations++
	}
	if d.HBondAcceptors > 10 {
		violations++
	}
	return violations <= 1
}
