package chem

import (
	"math"
	"math/rand"
)

// Geometry constants for the distance-geometry embedding.
const (
	idealBondLength = 1.5 // Angstroms, generic heavy-atom bond
	minNonBonded    = 2.8 // lower bound for non-bonded pairs
	embedSteps      = 300
	embedStepSize   = 0.02
)

// Embed3D generates 3D coordinates for the molecule in place and
// relaxes them with a simple distance-geometry force field: bonded
// pairs are pulled toward the ideal bond length, 1-3 pairs toward the
// tetrahedral distance, and all other pairs are pushed apart. This
// plays the role of MOE's "generate and energetically minimize 3D
// structures" step. The result is deterministic for a given seed.
func Embed3D(m *Mol, seed int64) {
	n := len(m.Atoms)
	if n == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	adj := m.Adjacency()

	// Initial placement: BFS from atom 0, each new atom at a random unit
	// direction from its parent, which avoids pathological overlaps.
	placed := make([]bool, n)
	order := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if placed[s] {
			continue
		}
		m.Atoms[s].Pos = Vec3{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
		placed[s] = true
		queue := []int{s}
		order = append(order, s)
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for _, e := range adj[a] {
				if placed[e.Nbr] {
					continue
				}
				dir := randomUnit(rng)
				m.Atoms[e.Nbr].Pos = m.Atoms[a].Pos.Add(dir.Scale(idealBondLength))
				placed[e.Nbr] = true
				queue = append(queue, e.Nbr)
				order = append(order, e.Nbr)
			}
		}
	}

	// Precompute bonded and 1-3 pair sets.
	bonded := map[[2]int]bool{}
	for _, b := range m.Bonds {
		bonded[pairKey(b.A, b.B)] = true
	}
	oneThree := map[[2]int]bool{}
	for a := 0; a < n; a++ {
		for i := 0; i < len(adj[a]); i++ {
			for j := i + 1; j < len(adj[a]); j++ {
				oneThree[pairKey(adj[a][i].Nbr, adj[a][j].Nbr)] = true
			}
		}
	}
	angleDist := idealBondLength * math.Sqrt(8.0/3.0) // tetrahedral 1-3 distance

	grad := make([]Vec3, n)
	for step := 0; step < embedSteps; step++ {
		for i := range grad {
			grad[i] = Vec3{}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := m.Atoms[j].Pos.Sub(m.Atoms[i].Pos)
				r := d.Norm()
				if r < 1e-9 {
					d = randomUnit(rng)
					r = 1e-3
				}
				var f float64 // positive pulls together, negative pushes apart
				key := pairKey(i, j)
				switch {
				case bonded[key]:
					f = 2 * (r - idealBondLength)
				case oneThree[key]:
					f = 1 * (r - angleDist)
				case r < minNonBonded:
					f = 4 * (r - minNonBonded)
				default:
					continue
				}
				u := d.Scale(f / r)
				grad[i] = grad[i].Add(u)
				grad[j] = grad[j].Sub(u)
			}
		}
		for i := 0; i < n; i++ {
			m.Atoms[i].Pos = m.Atoms[i].Pos.Add(grad[i].Scale(embedStepSize))
		}
	}

	// Center on the centroid so downstream placement is translation-free.
	m.Translate(m.Centroid().Scale(-1))
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func randomUnit(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if n := v.Norm(); n > 1e-6 {
			return v.Scale(1 / n)
		}
	}
}

// RadiusOfGyration returns the RMS distance of heavy atoms from the
// centroid, a compactness measure used in tests and workload stats.
func RadiusOfGyration(m *Mol) float64 {
	c := m.Centroid()
	if len(m.Atoms) == 0 {
		return 0
	}
	s := 0.0
	for _, a := range m.Atoms {
		d := a.Pos.Dist(c)
		s += d * d
	}
	return math.Sqrt(s / float64(len(m.Atoms)))
}
