package chem

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSDFRoundTrip(t *testing.T) {
	cases := []string{
		"CCO",
		"c1ccccc1",
		"CC(=O)Oc1ccccc1C(=O)O",
		"[NH3+]CC(=O)[O-]",
		"C#N",
	}
	for _, s := range cases {
		orig := mustParse(t, s)
		orig.Name = s
		Embed3D(orig, 11)
		var buf bytes.Buffer
		if err := WriteSDF(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := ParseSDF(&buf)
		if err != nil {
			t.Fatalf("%s: %v\n%s", s, err, buf.String())
		}
		if len(back) != 1 {
			t.Fatalf("%s: got %d molecules", s, len(back))
		}
		m := back[0]
		if m.Name != s {
			t.Fatalf("name %q != %q", m.Name, s)
		}
		if len(m.Atoms) != len(orig.Atoms) || len(m.Bonds) != len(orig.Bonds) {
			t.Fatalf("%s: atoms %d->%d bonds %d->%d", s,
				len(orig.Atoms), len(m.Atoms), len(orig.Bonds), len(m.Bonds))
		}
		if math.Abs(m.Weight()-orig.Weight()) > 1e-6 {
			t.Fatalf("%s: MW %v -> %v", s, orig.Weight(), m.Weight())
		}
		if m.NetCharge() != orig.NetCharge() {
			t.Fatalf("%s: charge %d -> %d", s, orig.NetCharge(), m.NetCharge())
		}
		// Coordinates survive to 4 decimals.
		for i := range m.Atoms {
			if m.Atoms[i].Pos.Dist(orig.Atoms[i].Pos) > 1e-3 {
				t.Fatalf("%s: atom %d moved", s, i)
			}
		}
	}
}

func TestSDFMultiMolecule(t *testing.T) {
	a := mustParse(t, "CCO")
	a.Name = "ethanol"
	b := mustParse(t, "c1ccccc1")
	b.Name = "benzene"
	var buf bytes.Buffer
	if err := WriteSDF(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	mols, err := ParseSDF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(mols) != 2 || mols[0].Name != "ethanol" || mols[1].Name != "benzene" {
		t.Fatalf("multi-mol SDF wrong: %v", mols)
	}
}

func TestSDFAromaticBondsSurvive(t *testing.T) {
	m := mustParse(t, "c1ccccc1")
	var buf bytes.Buffer
	if err := WriteSDF(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSDF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range back[0].Bonds {
		if !b.Aromatic {
			t.Fatal("aromatic bond lost in SDF round trip")
		}
	}
	for _, a := range back[0].Atoms {
		if a.NumH != 1 {
			t.Fatalf("benzene H count %d after round trip", a.NumH)
		}
	}
}

func TestParseSDFErrors(t *testing.T) {
	bad := []string{
		"name\nprog\ncomment\n",                                          // missing counts
		"name\nprog\ncomment\n abc  0\nM  END\n$$$$\n",                   // bad counts
		"name\nprog\ncomment\n  1  0  0  0  0  0  0  0  0  0999 V2000\n", // truncated atoms
	}
	for i, s := range bad {
		if _, err := ParseSDF(strings.NewReader(s)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestParseSDFEmpty(t *testing.T) {
	mols, err := ParseSDF(strings.NewReader(""))
	if err != nil || len(mols) != 0 {
		t.Fatalf("empty SDF: %v %v", mols, err)
	}
}

func TestWritePDBQT(t *testing.T) {
	m := mustParse(t, "c1ccccc1CC(=O)O")
	m.Name = "test-ligand"
	Embed3D(m, 5)
	var buf bytes.Buffer
	if err := WritePDBQT(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REMARK  Name = test-ligand") {
		t.Fatal("missing name remark")
	}
	if !strings.Contains(out, "ROOT") || !strings.Contains(out, "ENDROOT") {
		t.Fatal("missing ROOT markers")
	}
	if got := strings.Count(out, "HETATM"); got != len(m.Atoms) {
		t.Fatalf("HETATM lines %d, atoms %d", got, len(m.Atoms))
	}
	// Aromatic carbons use AutoDock type A.
	if !strings.Contains(out, " A \n") && !strings.Contains(out, " A\n") {
		t.Fatal("no aromatic-carbon AutoDock type in output")
	}
}
