package chem

import (
	"math"
	"testing"
)

func mustParse(t *testing.T, s string) *Mol {
	t.Helper()
	m, err := ParseSMILES(s)
	if err != nil {
		t.Fatalf("ParseSMILES(%q): %v", s, err)
	}
	return m
}

func TestParseEthanol(t *testing.T) {
	m := mustParse(t, "CCO")
	if len(m.Atoms) != 3 || len(m.Bonds) != 2 {
		t.Fatalf("atoms=%d bonds=%d", len(m.Atoms), len(m.Bonds))
	}
	if m.Atoms[0].NumH != 3 || m.Atoms[1].NumH != 2 || m.Atoms[2].NumH != 1 {
		t.Fatalf("implicit H = %d,%d,%d; want 3,2,1",
			m.Atoms[0].NumH, m.Atoms[1].NumH, m.Atoms[2].NumH)
	}
	// MW of ethanol is ~46.07.
	if w := m.Weight(); math.Abs(w-46.07) > 0.1 {
		t.Fatalf("MW = %v, want ~46.07", w)
	}
}

func TestParseBenzene(t *testing.T) {
	m := mustParse(t, "c1ccccc1")
	if len(m.Atoms) != 6 || len(m.Bonds) != 6 {
		t.Fatalf("atoms=%d bonds=%d", len(m.Atoms), len(m.Bonds))
	}
	for i, a := range m.Atoms {
		if !a.Aromatic {
			t.Fatalf("atom %d not aromatic", i)
		}
		if a.NumH != 1 {
			t.Fatalf("atom %d NumH = %d, want 1", i, a.NumH)
		}
	}
	for i, b := range m.Bonds {
		if !b.Aromatic {
			t.Fatalf("bond %d not aromatic", i)
		}
	}
	if rings := m.NumRings(); rings != 1 {
		t.Fatalf("rings = %d, want 1", rings)
	}
}

func TestParseAspirin(t *testing.T) {
	m := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O")
	if len(m.Atoms) != 13 {
		t.Fatalf("atoms = %d, want 13", len(m.Atoms))
	}
	// Aspirin MW ~180.16
	if w := m.Weight(); math.Abs(w-180.16) > 0.2 {
		t.Fatalf("MW = %v, want ~180.16", w)
	}
	if r := m.NumRings(); r != 1 {
		t.Fatalf("rings = %d, want 1", r)
	}
}

func TestParseChargedAtoms(t *testing.T) {
	m := mustParse(t, "[NH3+]CC(=O)[O-]") // glycine zwitterion
	if m.Atoms[0].Charge != 1 || m.Atoms[0].NumH != 3 {
		t.Fatalf("N: charge=%d H=%d", m.Atoms[0].Charge, m.Atoms[0].NumH)
	}
	if m.Atoms[4].Charge != -1 {
		t.Fatalf("O-: charge=%d", m.Atoms[4].Charge)
	}
	if m.NetCharge() != 0 {
		t.Fatalf("net charge = %d, want 0", m.NetCharge())
	}
}

func TestParseMultiDigitCharge(t *testing.T) {
	m := mustParse(t, "[Fe+2]")
	if m.Atoms[0].Charge != 2 {
		t.Fatalf("charge = %d, want 2", m.Atoms[0].Charge)
	}
	if !m.ContainsMetal() {
		t.Fatal("Fe should be metal")
	}
}

func TestParseTripleBond(t *testing.T) {
	m := mustParse(t, "C#N")
	if m.Bonds[0].Order != 3 {
		t.Fatalf("order = %d, want 3", m.Bonds[0].Order)
	}
	if m.Atoms[0].NumH != 1 || m.Atoms[1].NumH != 0 {
		t.Fatalf("H = %d,%d; want 1,0", m.Atoms[0].NumH, m.Atoms[1].NumH)
	}
}

func TestParseBranches(t *testing.T) {
	m := mustParse(t, "CC(C)(C)C") // neopentane
	if len(m.Atoms) != 5 || len(m.Bonds) != 4 {
		t.Fatalf("atoms=%d bonds=%d", len(m.Atoms), len(m.Bonds))
	}
	adj := m.Adjacency()
	if len(adj[1]) != 4 {
		t.Fatalf("central carbon degree = %d, want 4", len(adj[1]))
	}
}

func TestParsePercentRingClosure(t *testing.T) {
	a := mustParse(t, "C1CCCCC1")
	b := mustParse(t, "C%12CCCCC%12")
	if len(a.Bonds) != len(b.Bonds) || len(a.Atoms) != len(b.Atoms) {
		t.Fatal("%nn ring closure differs from digit closure")
	}
}

func TestParseDisconnectedFragments(t *testing.T) {
	m := mustParse(t, "CCO.[Na+]")
	frags := m.Fragments()
	if len(frags) != 2 {
		t.Fatalf("fragments = %d, want 2", len(frags))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"C(",
		"C)",
		"C1CC",  // unclosed ring
		"1CC",   // ring closure before atom
		"[Xx]",  // unknown element
		"[C",    // unterminated bracket
		"C$C",   // bad character
		"[123]", // bracket with no element
	}
	for _, s := range bad {
		if _, err := ParseSMILES(s); err == nil {
			t.Fatalf("ParseSMILES(%q) should fail", s)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	cases := []string{
		"CCO",
		"c1ccccc1",
		"CC(=O)Oc1ccccc1C(=O)O",
		"[NH3+]CC(=O)[O-]",
		"C#N",
		"CC(C)(C)C",
		"C1CCC2CCCCC2C1", // fused bicycle (decalin)
		"c1ccc2ccccc2c1", // naphthalene
		"CCO.CC",         // two fragments
		"FC(F)(F)c1ccccc1",
	}
	for _, s := range cases {
		orig := mustParse(t, s)
		out := WriteSMILES(orig)
		back, err := ParseSMILES(out)
		if err != nil {
			t.Fatalf("re-parsing WriteSMILES(%q) = %q: %v", s, out, err)
		}
		if len(back.Atoms) != len(orig.Atoms) || len(back.Bonds) != len(orig.Bonds) {
			t.Fatalf("%q -> %q: atoms %d->%d bonds %d->%d", s, out,
				len(orig.Atoms), len(back.Atoms), len(orig.Bonds), len(back.Bonds))
		}
		if math.Abs(back.Weight()-orig.Weight()) > 1e-6 {
			t.Fatalf("%q -> %q: MW %v -> %v", s, out, orig.Weight(), back.Weight())
		}
		if back.NetCharge() != orig.NetCharge() {
			t.Fatalf("%q -> %q: charge %d -> %d", s, out, orig.NetCharge(), back.NetCharge())
		}
		if back.NumRings() != orig.NumRings() {
			t.Fatalf("%q -> %q: rings %d -> %d", s, out, orig.NumRings(), back.NumRings())
		}
	}
}

func TestStripSaltsKeepsLargest(t *testing.T) {
	m := mustParse(t, "CC(=O)Oc1ccccc1C(=O)[O-].[Na+]")
	out := StripSalts(m)
	if out.ContainsMetal() {
		t.Fatal("salt not stripped")
	}
	if len(out.Atoms) != 13 {
		t.Fatalf("kept %d atoms, want 13", len(out.Atoms))
	}
}

func TestProtonateCarboxylicAcid(t *testing.T) {
	m := mustParse(t, "CC(=O)O") // acetic acid
	ProtonateAtPH7(m)
	found := false
	for _, a := range m.Atoms {
		if a.Symbol == "O" && a.Charge == -1 && a.NumH == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("carboxylic acid not deprotonated at pH 7")
	}
	if m.NetCharge() != -1 {
		t.Fatalf("net charge = %d, want -1", m.NetCharge())
	}
}

func TestProtonateAmine(t *testing.T) {
	m := mustParse(t, "CCN") // ethylamine
	ProtonateAtPH7(m)
	n := m.Atoms[2]
	if n.Charge != 1 || n.NumH != 3 {
		t.Fatalf("amine N: charge=%d H=%d, want +1/3H", n.Charge, n.NumH)
	}
}

func TestAmideNotProtonated(t *testing.T) {
	m := mustParse(t, "CC(=O)NC") // N-methylacetamide
	ProtonateAtPH7(m)
	for _, a := range m.Atoms {
		if a.Symbol == "N" && a.Charge != 0 {
			t.Fatal("amide nitrogen must not be protonated")
		}
	}
}

func TestAromaticAmineNotProtonated(t *testing.T) {
	m := mustParse(t, "c1ccncc1") // pyridine
	ProtonateAtPH7(m)
	for _, a := range m.Atoms {
		if a.Charge != 0 {
			t.Fatal("pyridine must be untouched by the simple pH rule")
		}
	}
}

func TestPrepareRejectsMetalComplex(t *testing.T) {
	m := mustParse(t, "[Zn+2]")
	if _, err := Prepare(m, 1); err == nil {
		t.Fatal("metal-only ligand must be rejected")
	}
}

func TestPrepareFullPipeline(t *testing.T) {
	m := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O.[Na+]")
	out, err := Prepare(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	if out.ContainsMetal() {
		t.Fatal("metal survived prep")
	}
	if out.NetCharge() != -1 {
		t.Fatalf("net charge = %d, want -1 (deprotonated acid)", out.NetCharge())
	}
	// 3D coordinates must be assigned and centered.
	if c := out.Centroid(); c.Norm() > 1e-6 {
		t.Fatalf("centroid = %v, want origin", c)
	}
	anyNonZero := false
	for _, a := range out.Atoms {
		if a.Pos.Norm() > 0.1 {
			anyNonZero = true
		}
	}
	if !anyNonZero {
		t.Fatal("3D embedding produced degenerate coordinates")
	}
	// Input must be unchanged.
	if m.Atoms[len(m.Atoms)-1].Symbol != "Na" {
		t.Fatal("Prepare mutated its input")
	}
}

func TestEmbed3DBondLengths(t *testing.T) {
	m := mustParse(t, "CCCCCC")
	Embed3D(m, 7)
	for _, b := range m.Bonds {
		d := m.Atoms[b.A].Pos.Dist(m.Atoms[b.B].Pos)
		if d < 1.0 || d > 2.2 {
			t.Fatalf("bond length %v out of plausible range", d)
		}
	}
	// Non-bonded atoms should not be collapsed.
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 2; j < len(m.Atoms); j++ {
			if m.Atoms[i].Pos.Dist(m.Atoms[j].Pos) < 1.0 {
				t.Fatalf("atoms %d,%d collapsed", i, j)
			}
		}
	}
}

func TestEmbed3DDeterministic(t *testing.T) {
	a := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O")
	b := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O")
	Embed3D(a, 99)
	Embed3D(b, 99)
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos {
			t.Fatal("embedding not deterministic for equal seeds")
		}
	}
}

func TestRotatableBonds(t *testing.T) {
	cases := []struct {
		smiles string
		want   int
	}{
		{"CCO", 0},         // both bonds involve a terminal heavy atom
		{"c1ccccc1", 0},    // ring
		{"CCCC", 1},        // central bond only
		{"C=CC=C", 1},      // single bond between vinyls
		{"CC(C)(C)C", 0},   // all terminal
		{"c1ccccc1CCO", 2}, // phenethyl alcohol: ring-CH2 and CH2-CH2
	}
	for _, c := range cases {
		m := mustParse(t, c.smiles)
		if got := m.RotatableBonds(); got != c.want {
			t.Fatalf("RotatableBonds(%q) = %d, want %d", c.smiles, got, c.want)
		}
	}
}

func TestDescriptors(t *testing.T) {
	m := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O") // aspirin
	d := ComputeDescriptors(m)
	if math.Abs(d.MolWeight-180.16) > 0.2 {
		t.Fatalf("MW = %v", d.MolWeight)
	}
	if d.HBondDonors != 1 {
		t.Fatalf("HBD = %d, want 1", d.HBondDonors)
	}
	if d.HBondAcceptors != 4 {
		t.Fatalf("HBA = %d, want 4", d.HBondAcceptors)
	}
	if d.Rings != 1 || d.HeavyAtoms != 13 {
		t.Fatalf("rings=%d heavy=%d", d.Rings, d.HeavyAtoms)
	}
	if !Lipinski(d) {
		t.Fatal("aspirin must pass Lipinski")
	}
}

func TestLipinskiViolations(t *testing.T) {
	d := Descriptors{MolWeight: 700, LogP: 6, HBondDonors: 7, HBondAcceptors: 12}
	if Lipinski(d) {
		t.Fatal("4-violation compound must fail Lipinski")
	}
	d2 := Descriptors{MolWeight: 700, LogP: 3}
	if !Lipinski(d2) {
		t.Fatal("single violation is allowed")
	}
}

func TestAtomChannels(t *testing.T) {
	c := AtomChannels("C", 0, false)
	if c[0] != 1 || c[4] != 0 {
		t.Fatalf("C channels = %v", c)
	}
	n := AtomChannels("N", 1, true)
	if n[1] != 1 || n[4] != 1 || n[7] != 1 {
		t.Fatalf("N+ aromatic channels = %v", n)
	}
	o := AtomChannels("O", -1, false)
	if o[2] != 1 || o[6] != 1 || o[7] != -1 {
		t.Fatalf("O- channels = %v", o)
	}
	unknown := AtomChannels("Xx", 0, false)
	for _, v := range unknown {
		if v != 0 {
			t.Fatal("unknown element must produce zero channels")
		}
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Fatal("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("Sub")
	}
	if a.Dot(b) != 32 {
		t.Fatal("Dot")
	}
	if math.Abs(a.Norm()-math.Sqrt(14)) > 1e-12 {
		t.Fatal("Norm")
	}
	if math.Abs(a.Dist(b)-math.Sqrt(27)) > 1e-12 {
		t.Fatal("Dist")
	}
}

func TestFragmentsPreserveBonds(t *testing.T) {
	m := mustParse(t, "CCO.c1ccccc1")
	frags := m.Fragments()
	total := 0
	for _, f := range frags {
		total += len(f.Bonds)
		for _, b := range f.Bonds {
			if b.A >= len(f.Atoms) || b.B >= len(f.Atoms) {
				t.Fatal("bond index out of range after fragment remap")
			}
		}
	}
	if total != len(m.Bonds) {
		t.Fatalf("bonds lost in fragmentation: %d != %d", total, len(m.Bonds))
	}
}

func TestRingBondsFusedSystem(t *testing.T) {
	m := mustParse(t, "C1CCC2CCCCC2C1") // decalin: all bonds cyclic
	for i, in := range m.RingBonds() {
		if !in {
			t.Fatalf("decalin bond %d not marked cyclic", i)
		}
	}
	m2 := mustParse(t, "CCc1ccccc1")
	rb := m2.RingBonds()
	if rb[0] || rb[1] {
		t.Fatal("chain bonds must not be cyclic")
	}
}

func TestParseStereoMarkersIgnored(t *testing.T) {
	// Stereo bonds and chirality are accepted and discarded (geometry is
	// re-derived in 3D embedding).
	plain := mustParse(t, "FC=CF")
	stereo := mustParse(t, "F/C=C\\F")
	if len(plain.Atoms) != len(stereo.Atoms) || len(plain.Bonds) != len(stereo.Bonds) {
		t.Fatal("stereo markers changed the molecule graph")
	}
	chiral := mustParse(t, "N[C@@H](C)C(=O)O") // alanine with chirality
	if len(chiral.Atoms) != 6 {
		t.Fatalf("chiral atom mis-parsed: %d atoms", len(chiral.Atoms))
	}
}

func TestParseIsotopeIgnored(t *testing.T) {
	m := mustParse(t, "[13C]")
	if m.Atoms[0].Symbol != "C" {
		t.Fatalf("isotope atom symbol %q", m.Atoms[0].Symbol)
	}
}

func TestParseExplicitBondOrders(t *testing.T) {
	m := mustParse(t, "C-C=C#C")
	want := []int{1, 2, 3}
	for i, b := range m.Bonds {
		if b.Order != want[i] {
			t.Fatalf("bond %d order %d, want %d", i, b.Order, want[i])
		}
	}
}

func TestParseRingBondOrder(t *testing.T) {
	// Double-bond ring closure: C1=CC...1 and C=1CC...1 styles.
	m := mustParse(t, "C1=CC=CC=C1") // Kekulé benzene
	doubles := 0
	for _, b := range m.Bonds {
		if b.Order == 2 {
			doubles++
		}
	}
	if doubles != 3 {
		t.Fatalf("Kekulé benzene has %d double bonds, want 3", doubles)
	}
}

func TestWeightEmptyMol(t *testing.T) {
	m := &Mol{}
	if m.Weight() != 0 || m.NumRings() != 0 {
		t.Fatal("empty molecule stats")
	}
	if m.Centroid() != (Vec3{}) {
		t.Fatal("empty centroid")
	}
	if RadiusOfGyration(m) != 0 {
		t.Fatal("empty Rg")
	}
}

func TestCloneDeep(t *testing.T) {
	m := mustParse(t, "CCO")
	c := m.Clone()
	c.Atoms[0].Symbol = "N"
	c.Bonds[0].Order = 3
	if m.Atoms[0].Symbol != "C" || m.Bonds[0].Order != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRadiusOfGyrationScales(t *testing.T) {
	small := mustParse(t, "CC")
	big := mustParse(t, "CCCCCCCCCCCC")
	Embed3D(small, 1)
	Embed3D(big, 1)
	if RadiusOfGyration(big) <= RadiusOfGyration(small) {
		t.Fatal("larger molecule should have larger Rg")
	}
}

func TestFingerprintIdenticalMolecules(t *testing.T) {
	a := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O")
	b := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O")
	fa, fb := ComputeFingerprint(a), ComputeFingerprint(b)
	if fa != fb {
		t.Fatal("identical molecules must share fingerprints")
	}
	if Tanimoto(fa, fb) != 1 {
		t.Fatal("self-Tanimoto must be 1")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := ComputeFingerprint(mustParse(t, "c1ccccc1"))
	b := ComputeFingerprint(mustParse(t, "CCCCCC"))
	if a == b {
		t.Fatal("benzene and hexane share a fingerprint")
	}
	if s := Tanimoto(a, b); s > 0.5 {
		t.Fatalf("dissimilar molecules Tanimoto %v", s)
	}
}

func TestFingerprintSimilarCompoundsScoreHigh(t *testing.T) {
	tol := ComputeFingerprint(mustParse(t, "Cc1ccccc1"))  // toluene
	xyl := ComputeFingerprint(mustParse(t, "Cc1ccccc1C")) // xylene
	hex := ComputeFingerprint(mustParse(t, "CCCCCC"))
	if Tanimoto(tol, xyl) <= Tanimoto(tol, hex) {
		t.Fatal("toluene should be closer to xylene than to hexane")
	}
}

func TestFingerprintEmptyMol(t *testing.T) {
	var fp Fingerprint
	got := ComputeFingerprint(&Mol{})
	if got != fp {
		t.Fatal("empty molecule must give empty fingerprint")
	}
	if Tanimoto(fp, fp) != 1 {
		t.Fatal("empty-vs-empty Tanimoto convention is 1")
	}
}

func TestFingerprintPopCount(t *testing.T) {
	fp := ComputeFingerprint(mustParse(t, "CC(=O)Oc1ccccc1C(=O)O"))
	n := fp.PopCount()
	if n < 10 || n > 500 {
		t.Fatalf("aspirin sets %d bits; expected a sparse fingerprint", n)
	}
}
