package chem

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Vec3 is a 3D coordinate in Angstroms.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Norm() }

// Atom is one atom of a molecule.
type Atom struct {
	Symbol   string
	Charge   int
	Aromatic bool
	NumH     int // implicit hydrogens
	Pos      Vec3
}

// Bond connects atoms A and B (indices into Mol.Atoms).
type Bond struct {
	A, B     int
	Order    int // 1, 2 or 3
	Aromatic bool
}

// Mol is a small molecule: atoms, bonds, and an optional identity.
type Mol struct {
	Name   string
	SMILES string // source string, if parsed from SMILES
	Atoms  []Atom
	Bonds  []Bond

	// rotCache memoizes RotatableBonds as count+1 (0 = not yet
	// computed). Topology is fixed once a Mol is built — only atom
	// positions change after parsing — so the count is computed at most
	// once per molecule instead of re-deriving ring membership on every
	// scoring call. Accessed atomically; the stored value is a pure
	// function of Bonds, so concurrent recomputation is idempotent.
	rotCache int32
}

// NumAtoms returns the heavy-atom count.
func (m *Mol) NumAtoms() int { return len(m.Atoms) }

// Adjacency returns, for each atom, the list of (neighbor, bond index)
// pairs.
func (m *Mol) Adjacency() [][]AdjEntry {
	adj := make([][]AdjEntry, len(m.Atoms))
	for bi, b := range m.Bonds {
		adj[b.A] = append(adj[b.A], AdjEntry{Nbr: b.B, Bond: bi})
		adj[b.B] = append(adj[b.B], AdjEntry{Nbr: b.A, Bond: bi})
	}
	return adj
}

// AdjEntry is one adjacency-list edge.
type AdjEntry struct {
	Nbr  int // neighbor atom index
	Bond int // bond index
}

// Weight returns the molecular weight in Daltons, including implicit
// hydrogens.
func (m *Mol) Weight() float64 {
	w := 0.0
	hMass := Elements["H"].Mass
	for _, a := range m.Atoms {
		e, ok := Elements[a.Symbol]
		if !ok {
			continue
		}
		w += e.Mass + float64(a.NumH)*hMass
	}
	return w
}

// NetCharge returns the sum of formal charges.
func (m *Mol) NetCharge() int {
	c := 0
	for _, a := range m.Atoms {
		c += a.Charge
	}
	return c
}

// ContainsMetal reports whether any atom is metallic (these ligands are
// removed in the MOE preparation step).
func (m *Mol) ContainsMetal() bool {
	for _, a := range m.Atoms {
		if e, ok := Elements[a.Symbol]; ok && e.Metal {
			return true
		}
	}
	return false
}

// Fragments partitions the molecule into connected components, used by
// salt stripping. Each returned Mol has remapped atom/bond indices.
func (m *Mol) Fragments() []*Mol {
	n := len(m.Atoms)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	adj := m.Adjacency()
	nc := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack := []int{s}
		comp[s] = nc
		for len(stack) > 0 {
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[a] {
				if comp[e.Nbr] == -1 {
					comp[e.Nbr] = nc
					stack = append(stack, e.Nbr)
				}
			}
		}
		nc++
	}
	if nc == 1 {
		return []*Mol{m}
	}
	frags := make([]*Mol, nc)
	remap := make([]int, n)
	for c := 0; c < nc; c++ {
		frags[c] = &Mol{Name: m.Name}
	}
	for i, a := range m.Atoms {
		c := comp[i]
		remap[i] = len(frags[c].Atoms)
		frags[c].Atoms = append(frags[c].Atoms, a)
	}
	for _, b := range m.Bonds {
		c := comp[b.A]
		frags[c].Bonds = append(frags[c].Bonds, Bond{A: remap[b.A], B: remap[b.B], Order: b.Order, Aromatic: b.Aromatic})
	}
	return frags
}

// RingBonds reports, for each bond, whether it participates in a cycle.
// A bond is cyclic iff its endpoints remain connected when the bond is
// removed.
func (m *Mol) RingBonds() []bool {
	adj := m.Adjacency()
	inRing := make([]bool, len(m.Bonds))
	for bi, b := range m.Bonds {
		inRing[bi] = m.connectedWithout(adj, b.A, b.B, bi)
	}
	return inRing
}

func (m *Mol) connectedWithout(adj [][]AdjEntry, from, to, skipBond int) bool {
	seen := make([]bool, len(m.Atoms))
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a == to {
			return true
		}
		for _, e := range adj[a] {
			if e.Bond == skipBond || seen[e.Nbr] {
				continue
			}
			seen[e.Nbr] = true
			stack = append(stack, e.Nbr)
		}
	}
	return false
}

// NumRings returns the circuit rank (bonds - atoms + components), the
// standard ring count for descriptors.
func (m *Mol) NumRings() int {
	return len(m.Bonds) - len(m.Atoms) + len(m.Fragments())
}

// RotatableBonds counts single, acyclic bonds between two heavy atoms
// that each have at least one other heavy neighbor — the standard
// definition used in drug-likeness filters and Vina's rotor penalty.
// The count is cached on the molecule: rescoring paths call this per
// pose, and the ring-membership derivation would otherwise dominate
// their allocation profile.
func (m *Mol) RotatableBonds() int {
	if c := atomic.LoadInt32(&m.rotCache); c != 0 {
		return int(c - 1)
	}
	n := m.rotatableBonds()
	atomic.StoreInt32(&m.rotCache, int32(n)+1)
	return n
}

func (m *Mol) rotatableBonds() int {
	adj := m.Adjacency()
	inRing := m.RingBonds()
	n := 0
	for bi, b := range m.Bonds {
		if b.Order != 1 || b.Aromatic || inRing[bi] {
			continue
		}
		if len(adj[b.A]) > 1 && len(adj[b.B]) > 1 {
			n++
		}
	}
	return n
}

// Centroid returns the mean heavy-atom position.
func (m *Mol) Centroid() Vec3 {
	var c Vec3
	if len(m.Atoms) == 0 {
		return c
	}
	for _, a := range m.Atoms {
		c = c.Add(a.Pos)
	}
	return c.Scale(1 / float64(len(m.Atoms)))
}

// Translate shifts every atom by d.
func (m *Mol) Translate(d Vec3) {
	for i := range m.Atoms {
		m.Atoms[i].Pos = m.Atoms[i].Pos.Add(d)
	}
}

// Clone returns a deep copy of the molecule.
func (m *Mol) Clone() *Mol {
	c := &Mol{Name: m.Name, SMILES: m.SMILES}
	c.Atoms = append([]Atom(nil), m.Atoms...)
	c.Bonds = append([]Bond(nil), m.Bonds...)
	return c
}

// String summarizes the molecule.
func (m *Mol) String() string {
	return fmt.Sprintf("Mol(%s atoms=%d bonds=%d mw=%.1f)", m.Name, len(m.Atoms), len(m.Bonds), m.Weight())
}
