package chem

import (
	"hash/fnv"
	"math/bits"
)

// FingerprintBits is the fixed fingerprint width (a 2048-bit hashed
// path fingerprint, the workhorse of compound dedup and similarity
// search in screening pipelines).
const FingerprintBits = 2048

// Fingerprint is a hashed-path molecular fingerprint.
type Fingerprint [FingerprintBits / 64]uint64

// ComputeFingerprint enumerates all linear atom paths of length 1-3
// bonds (typed by element, aromaticity and bond order) and hashes each
// into the bit vector — a compact stand-in for the Daylight-style
// fingerprints used to deduplicate multi-library compound sets.
func ComputeFingerprint(m *Mol) Fingerprint {
	var fp Fingerprint
	adj := m.Adjacency()
	setBit := func(key []byte) {
		h := fnv.New64a()
		h.Write(key)
		bit := h.Sum64() % FingerprintBits
		fp[bit/64] |= 1 << (bit % 64)
	}
	atomTag := func(i int) byte {
		a := m.Atoms[i]
		e := Elements[a.Symbol]
		t := byte(e.Number)
		if a.Aromatic {
			t |= 0x80
		}
		return t
	}
	bondTag := func(bi int) byte {
		b := m.Bonds[bi]
		if b.Aromatic {
			return 4
		}
		return byte(b.Order)
	}
	// Length-0 paths: atom types (with charge).
	for i, a := range m.Atoms {
		setBit([]byte{0, atomTag(i), byte(a.Charge + 8)})
	}
	// Paths of 1..3 bonds via DFS; canonicalize direction by comparing
	// the forward and reverse byte strings.
	var walk func(path []int, bondsUsed []int)
	emit := func(path []int, bondsUsed []int) {
		fwd := make([]byte, 0, 2*len(path))
		for k, ai := range path {
			fwd = append(fwd, atomTag(ai))
			if k < len(bondsUsed) {
				fwd = append(fwd, bondTag(bondsUsed[k]))
			}
		}
		rev := make([]byte, len(fwd))
		for i := range fwd {
			rev[i] = fwd[len(fwd)-1-i]
		}
		key := fwd
		for i := range fwd {
			if rev[i] < fwd[i] {
				key = rev
				break
			}
			if rev[i] > fwd[i] {
				break
			}
		}
		setBit(append([]byte{byte(len(bondsUsed))}, key...))
	}
	walk = func(path []int, bondsUsed []int) {
		if len(bondsUsed) > 0 {
			emit(path, bondsUsed)
		}
		if len(bondsUsed) == 3 {
			return
		}
		last := path[len(path)-1]
		for _, e := range adj[last] {
			// no immediate backtracking or revisits
			seen := false
			for _, p := range path {
				if p == e.Nbr {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			walk(append(path, e.Nbr), append(bondsUsed, e.Bond))
		}
	}
	for i := range m.Atoms {
		walk([]int{i}, nil)
	}
	return fp
}

// PopCount returns the number of set bits.
func (fp Fingerprint) PopCount() int {
	n := 0
	for _, w := range fp {
		n += bits.OnesCount64(w)
	}
	return n
}

// Tanimoto returns the Tanimoto (Jaccard) similarity of two
// fingerprints: |A and B| / |A or B|, 1 for identical bit sets.
func Tanimoto(a, b Fingerprint) float64 {
	inter, union := 0, 0
	for i := range a {
		inter += bits.OnesCount64(a[i] & b[i])
		union += bits.OnesCount64(a[i] | b[i])
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
