package chem

// Partial-charge assignment in the style of Gasteiger-Marsili PEOE
// (partial equalization of orbital electronegativity) — the role the
// AM1-BCC charges from antechamber play in the paper's ligand
// preparation (Section 4). Charges flow along bonds from
// electropositive to electronegative atoms, with each iteration's
// transfer damped by a factor of two, so the process converges
// geometrically while conserving total charge exactly.

// peoeParams are the electronegativity polynomial coefficients
// chi(q) = a + b*q + c*q^2 per element (values in the spirit of the
// original Gasteiger-Marsili 1980 parameter set; unparameterized
// elements fall back to carbon).
type peoeParams struct{ a, b, c float64 }

var peoeTable = map[string]peoeParams{
	"H":  {7.17, 6.24, -0.56},
	"C":  {7.98, 9.18, 1.88},
	"N":  {11.54, 10.82, 1.36},
	"O":  {14.18, 12.92, 1.39},
	"F":  {14.66, 13.85, 2.31},
	"Cl": {11.00, 9.69, 1.35},
	"Br": {10.08, 8.47, 1.16},
	"I":  {9.90, 7.96, 0.96},
	"S":  {10.14, 9.13, 1.38},
	"P":  {8.90, 8.24, 0.96},
	"B":  {7.50, 8.00, 1.50},
}

// chi evaluates the electronegativity of an atom carrying charge q.
func (p peoeParams) chi(q float64) float64 {
	return p.a + p.b*q + p.c*q*q
}

// chiPlus is the electronegativity of the element's cation, the
// normalization constant for charge flowing *into* the atom's bond
// partner (chi at q=+1).
func (p peoeParams) chiPlus() float64 {
	return p.a + p.b + p.c
}

// GasteigerCharges computes PEOE partial charges for every atom. The
// iteration starts from the formal charges, transfers charge across
// each bond proportionally to the electronegativity difference, and
// damps the transfer by 0.5^k at iteration k. Six iterations (the
// customary default; pass iters <= 0 to get it) reduce the residual
// below 2% of the initial transfer. The returned slice sums to the
// molecule's net formal charge to within round-off.
func GasteigerCharges(m *Mol, iters int) []float64 {
	if iters <= 0 {
		iters = 6
	}
	n := len(m.Atoms)
	q := make([]float64, n)
	for i, a := range m.Atoms {
		q[i] = float64(a.Charge)
	}
	if n == 0 || len(m.Bonds) == 0 {
		return q
	}
	params := make([]peoeParams, n)
	for i, a := range m.Atoms {
		p, ok := peoeTable[a.Symbol]
		if !ok {
			p = peoeTable["C"]
		}
		params[i] = p
	}
	damp := 1.0
	for it := 0; it < iters; it++ {
		damp *= 0.5
		transfer := make([]float64, n)
		for _, b := range m.Bonds {
			pa, pb := params[b.A], params[b.B]
			chiA, chiB := pa.chi(q[b.A]), pb.chi(q[b.B])
			// Charge flows from the less to the more electronegative
			// atom, normalized by the donor's cation electronegativity.
			var dq float64
			if chiA < chiB {
				dq = (chiB - chiA) / pa.chiPlus() * damp
				transfer[b.A] += dq
				transfer[b.B] -= dq
			} else {
				dq = (chiA - chiB) / pb.chiPlus() * damp
				transfer[b.B] += dq
				transfer[b.A] -= dq
			}
		}
		for i := range q {
			q[i] += transfer[i]
		}
	}
	return q
}
