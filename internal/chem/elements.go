// Package chem implements the small-molecule chemistry substrate of the
// screening pipeline: a molecular data model, a SMILES reader/writer,
// the MOE-style ligand preparation steps (salt stripping, protonation
// at pH 7, 3D embedding, descriptor calculation), and the properties
// the featurizers and scoring functions consume.
package chem

// Element describes the per-element data used by featurization and
// scoring: mass, van-der-Waals radius, electronegativity and coarse
// pharmacophore tendencies.
type Element struct {
	Symbol      string
	Number      int
	Mass        float64 // Daltons
	VdwRadius   float64 // Angstroms
	EN          float64 // Pauling electronegativity
	Valence     int     // default bonding valence
	Metal       bool
	Hydrophobic bool // carbon-like apolar
	Donor       bool // can donate H-bonds when protonated
	Acceptor    bool // can accept H-bonds
}

// Elements lists the species handled by the pipeline. The organic
// subset plus common salt counter-ions (for the MOE-style desalting
// step) and generic metals.
var Elements = map[string]Element{
	"H":  {Symbol: "H", Number: 1, Mass: 1.008, VdwRadius: 1.20, EN: 2.20, Valence: 1},
	"B":  {Symbol: "B", Number: 5, Mass: 10.81, VdwRadius: 1.92, EN: 2.04, Valence: 3},
	"C":  {Symbol: "C", Number: 6, Mass: 12.011, VdwRadius: 1.70, EN: 2.55, Valence: 4, Hydrophobic: true},
	"N":  {Symbol: "N", Number: 7, Mass: 14.007, VdwRadius: 1.55, EN: 3.04, Valence: 3, Donor: true, Acceptor: true},
	"O":  {Symbol: "O", Number: 8, Mass: 15.999, VdwRadius: 1.52, EN: 3.44, Valence: 2, Donor: true, Acceptor: true},
	"F":  {Symbol: "F", Number: 9, Mass: 18.998, VdwRadius: 1.47, EN: 3.98, Valence: 1, Acceptor: true},
	"P":  {Symbol: "P", Number: 15, Mass: 30.974, VdwRadius: 1.80, EN: 2.19, Valence: 3},
	"S":  {Symbol: "S", Number: 16, Mass: 32.06, VdwRadius: 1.80, EN: 2.58, Valence: 2, Acceptor: true},
	"Cl": {Symbol: "Cl", Number: 17, Mass: 35.45, VdwRadius: 1.75, EN: 3.16, Valence: 1},
	"Br": {Symbol: "Br", Number: 35, Mass: 79.904, VdwRadius: 1.85, EN: 2.96, Valence: 1},
	"I":  {Symbol: "I", Number: 53, Mass: 126.904, VdwRadius: 1.98, EN: 2.66, Valence: 1},
	"Na": {Symbol: "Na", Number: 11, Mass: 22.990, VdwRadius: 2.27, EN: 0.93, Valence: 1, Metal: true},
	"K":  {Symbol: "K", Number: 19, Mass: 39.098, VdwRadius: 2.75, EN: 0.82, Valence: 1, Metal: true},
	"Mg": {Symbol: "Mg", Number: 12, Mass: 24.305, VdwRadius: 1.73, EN: 1.31, Valence: 2, Metal: true},
	"Ca": {Symbol: "Ca", Number: 20, Mass: 40.078, VdwRadius: 2.31, EN: 1.00, Valence: 2, Metal: true},
	"Zn": {Symbol: "Zn", Number: 30, Mass: 65.38, VdwRadius: 1.39, EN: 1.65, Valence: 2, Metal: true},
	"Fe": {Symbol: "Fe", Number: 26, Mass: 55.845, VdwRadius: 1.94, EN: 1.83, Valence: 2, Metal: true},
}

// ElementBySymbol returns the element data for sym and whether it is
// known.
func ElementBySymbol(sym string) (Element, bool) {
	e, ok := Elements[sym]
	return e, ok
}

// FeatureChannels is the number of per-atom channels produced by
// AtomChannels, shared by the voxelizer and the graph featurizer.
const FeatureChannels = 8

// AtomChannels encodes an atom of element sym (with formal charge and
// aromaticity) into the 8-channel pharmacophore-style feature vector
// used by both model inputs: carbon/hydrophobic, nitrogen, oxygen,
// sulfur/phosphorus/halogen ("other heavy"), aromatic, H-bond donor,
// H-bond acceptor, formal charge.
func AtomChannels(sym string, charge int, aromatic bool) [FeatureChannels]float64 {
	var ch [FeatureChannels]float64
	e, ok := Elements[sym]
	if !ok {
		return ch
	}
	switch sym {
	case "C":
		ch[0] = 1
	case "N":
		ch[1] = 1
	case "O":
		ch[2] = 1
	default:
		ch[3] = 1
	}
	if aromatic {
		ch[4] = 1
	}
	if e.Donor && charge >= 0 {
		ch[5] = 1
	}
	if e.Acceptor {
		ch[6] = 1
	}
	ch[7] = float64(charge)
	return ch
}
