package chem

import (
	"fmt"
	"strings"
)

// ParseSMILES parses a SMILES string (Weininger 1988) covering the
// subset used by the compound libraries in this repository: the organic
// subset (B, C, N, O, P, S, F, Cl, Br, I), aromatic lower-case atoms,
// bracket atoms with charge and explicit hydrogen counts, branches,
// ring-bond closures (including %nn), explicit bond orders and
// dot-separated fragments. Stereo markers (/, \, @) are accepted and
// ignored, as the pipeline re-derives geometry in 3D embedding.
func ParseSMILES(s string) (*Mol, error) {
	p := &smilesParser{src: s, mol: &Mol{SMILES: s}, ring: map[int]ringOpen{}}
	if err := p.parse(); err != nil {
		return nil, fmt.Errorf("chem: parsing %q: %w", s, err)
	}
	if len(p.ring) > 0 {
		return nil, fmt.Errorf("chem: parsing %q: unclosed ring bond", s)
	}
	if len(p.mol.Atoms) == 0 {
		return nil, fmt.Errorf("chem: parsing %q: empty molecule", s)
	}
	assignImplicitH(p.mol)
	return p.mol, nil
}

type ringOpen struct {
	atom  int
	order int
}

type smilesParser struct {
	src  string
	pos  int
	mol  *Mol
	ring map[int]ringOpen
}

func (p *smilesParser) parse() error {
	var stack []int // branch return points
	prev := -1      // previous atom index
	pendingOrder := 0
	pendingAromatic := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '(':
			if prev < 0 {
				return fmt.Errorf("branch open before any atom at %d", p.pos)
			}
			stack = append(stack, prev)
			p.pos++
		case c == ')':
			if len(stack) == 0 {
				return fmt.Errorf("unbalanced ')' at %d", p.pos)
			}
			prev = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			p.pos++
		case c == '-':
			pendingOrder = 1
			p.pos++
		case c == '=':
			pendingOrder = 2
			p.pos++
		case c == '#':
			pendingOrder = 3
			p.pos++
		case c == ':':
			pendingOrder = 1
			pendingAromatic = true
			p.pos++
		case c == '/' || c == '\\':
			p.pos++ // stereo bond direction: ignored
		case c == '.':
			prev = -1
			pendingOrder = 0
			p.pos++
		case c >= '0' && c <= '9' || c == '%':
			n, err := p.ringNumber()
			if err != nil {
				return err
			}
			if prev < 0 {
				return fmt.Errorf("ring closure before any atom at %d", p.pos)
			}
			if open, ok := p.ring[n]; ok {
				order := pendingOrder
				if order == 0 {
					order = open.order
				}
				aromatic := p.mol.Atoms[open.atom].Aromatic && p.mol.Atoms[prev].Aromatic
				if order == 0 {
					order = 1
				}
				p.mol.Bonds = append(p.mol.Bonds, Bond{A: open.atom, B: prev, Order: order, Aromatic: aromatic})
				delete(p.ring, n)
			} else {
				p.ring[n] = ringOpen{atom: prev, order: pendingOrder}
			}
			pendingOrder = 0
			pendingAromatic = false
		default:
			ai, err := p.atom()
			if err != nil {
				return err
			}
			if prev >= 0 {
				order := pendingOrder
				aromatic := pendingAromatic ||
					(p.mol.Atoms[prev].Aromatic && p.mol.Atoms[ai].Aromatic && pendingOrder == 0)
				if order == 0 {
					order = 1
				}
				p.mol.Bonds = append(p.mol.Bonds, Bond{A: prev, B: ai, Order: order, Aromatic: aromatic})
			}
			prev = ai
			pendingOrder = 0
			pendingAromatic = false
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("unbalanced '(' (%d open)", len(stack))
	}
	return nil
}

func (p *smilesParser) ringNumber() (int, error) {
	c := p.src[p.pos]
	if c == '%' {
		if p.pos+2 >= len(p.src) {
			return 0, fmt.Errorf("truncated %%nn ring closure at %d", p.pos)
		}
		d1, d2 := p.src[p.pos+1], p.src[p.pos+2]
		if d1 < '0' || d1 > '9' || d2 < '0' || d2 > '9' {
			return 0, fmt.Errorf("bad %%nn ring closure at %d", p.pos)
		}
		p.pos += 3
		return int(d1-'0')*10 + int(d2-'0'), nil
	}
	p.pos++
	return int(c - '0'), nil
}

// atom parses one atom token and appends it to the molecule, returning
// its index.
func (p *smilesParser) atom() (int, error) {
	c := p.src[p.pos]
	if c == '[' {
		return p.bracketAtom()
	}
	// Organic subset. Two-letter halogens first.
	if strings.HasPrefix(p.src[p.pos:], "Cl") {
		p.pos += 2
		return p.addAtom("Cl", 0, false, -1), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "Br") {
		p.pos += 2
		return p.addAtom("Br", 0, false, -1), nil
	}
	switch c {
	case 'B', 'C', 'N', 'O', 'P', 'S', 'F', 'I':
		p.pos++
		return p.addAtom(string(c), 0, false, -1), nil
	case 'b', 'c', 'n', 'o', 'p', 's':
		p.pos++
		return p.addAtom(strings.ToUpper(string(c)), 0, true, -1), nil
	}
	return 0, fmt.Errorf("unexpected character %q at %d", c, p.pos)
}

func (p *smilesParser) bracketAtom() (int, error) {
	end := strings.IndexByte(p.src[p.pos:], ']')
	if end < 0 {
		return 0, fmt.Errorf("unterminated bracket atom at %d", p.pos)
	}
	body := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	i := 0
	// optional isotope
	for i < len(body) && body[i] >= '0' && body[i] <= '9' {
		i++
	}
	if i == len(body) {
		return 0, fmt.Errorf("bracket atom %q has no element", body)
	}
	aromatic := false
	var sym string
	c := body[i]
	switch {
	case c >= 'a' && c <= 'z':
		aromatic = true
		sym = strings.ToUpper(string(c))
		i++
	case c >= 'A' && c <= 'Z':
		sym = string(c)
		i++
		if i < len(body) && body[i] >= 'a' && body[i] <= 'z' {
			two := sym + string(body[i])
			if _, ok := Elements[two]; ok {
				sym = two
				i++
			}
		}
	default:
		return 0, fmt.Errorf("bad bracket atom %q", body)
	}
	if _, ok := Elements[sym]; !ok {
		return 0, fmt.Errorf("unknown element %q", sym)
	}
	// chirality markers
	for i < len(body) && body[i] == '@' {
		i++
	}
	if i < len(body) && (body[i] == 'T' || body[i] == 'A') { // @TH1 etc: skip letters+digits
		for i < len(body) && body[i] != 'H' && body[i] != '+' && body[i] != '-' {
			i++
		}
	}
	hCount := 0
	if i < len(body) && body[i] == 'H' {
		i++
		hCount = 1
		if i < len(body) && body[i] >= '0' && body[i] <= '9' {
			hCount = int(body[i] - '0')
			i++
		}
	}
	charge := 0
	for i < len(body) {
		switch body[i] {
		case '+':
			charge++
			i++
			if i < len(body) && body[i] >= '1' && body[i] <= '9' {
				charge = int(body[i] - '0')
				i++
			}
		case '-':
			charge--
			i++
			if i < len(body) && body[i] >= '1' && body[i] <= '9' {
				charge = -int(body[i] - '0')
				i++
			}
		default:
			return 0, fmt.Errorf("unexpected %q in bracket atom %q", body[i], body)
		}
	}
	return p.addAtom(sym, charge, aromatic, hCount), nil
}

// addAtom appends an atom; hCount -1 means "derive implicit hydrogens
// from valence after parsing".
func (p *smilesParser) addAtom(sym string, charge int, aromatic bool, hCount int) int {
	a := Atom{Symbol: sym, Charge: charge, Aromatic: aromatic, NumH: hCount}
	p.mol.Atoms = append(p.mol.Atoms, a)
	return len(p.mol.Atoms) - 1
}

// assignImplicitH fills NumH for organic-subset atoms (NumH == -1)
// using default valences; aromatic bonds count 1.5 toward the bond
// order sum, as in the Daylight model.
func assignImplicitH(m *Mol) {
	orderSum := make([]float64, len(m.Atoms))
	for _, b := range m.Bonds {
		o := float64(b.Order)
		if b.Aromatic {
			o = 1.5
		}
		orderSum[b.A] += o
		orderSum[b.B] += o
	}
	for i := range m.Atoms {
		a := &m.Atoms[i]
		if a.NumH >= 0 {
			continue
		}
		e, ok := Elements[a.Symbol]
		if !ok {
			a.NumH = 0
			continue
		}
		val := e.Valence + a.Charge*valenceChargeSign(a.Symbol)
		h := val - int(orderSum[i]+0.5)
		if h < 0 {
			h = 0
		}
		a.NumH = h
	}
}

// valenceChargeSign returns +1 for elements whose protonation raises
// bonding capacity (N), -1 for those whose deprotonation lowers it (O,
// S), matching common organic charge states.
func valenceChargeSign(sym string) int {
	switch sym {
	case "N", "P":
		return 1
	case "O", "S":
		return 1
	default:
		return 0
	}
}

// WriteSMILES produces a SMILES string for m via depth-first traversal.
// The output is not canonical, but ParseSMILES(WriteSMILES(m)) yields a
// molecule with identical composition, bonds, charges and aromaticity.
func WriteSMILES(m *Mol) string {
	if len(m.Atoms) == 0 {
		return ""
	}
	adj := m.Adjacency()
	n := len(m.Atoms)

	// Pass 1: classify bonds into DFS tree edges and back (ring) edges,
	// using the same deterministic traversal order as the emitter.
	treeBond := make([]bool, len(m.Bonds))
	seen := make([]bool, n)
	var classify func(a int)
	classify = func(a int) {
		seen[a] = true
		for _, e := range adj[a] {
			if !seen[e.Nbr] {
				treeBond[e.Bond] = true
				classify(e.Nbr)
			}
		}
	}
	var roots []int
	for s := 0; s < n; s++ {
		if !seen[s] {
			roots = append(roots, s)
			classify(s)
		}
	}

	// Assign each back edge a ring-closure digit and attach it to both
	// endpoints.
	type closure struct {
		digit int
		bond  int
	}
	closures := make([][]closure, n)
	nextDigit := 1
	for bi, b := range m.Bonds {
		if treeBond[bi] {
			continue
		}
		c := closure{digit: nextDigit, bond: bi}
		nextDigit++
		closures[b.A] = append(closures[b.A], c)
		closures[b.B] = append(closures[b.B], c)
	}

	// Pass 2: emit. Ring-closure digits follow their atom token; the
	// bond symbol is written with the first occurrence only (both ends
	// matching is also legal, but one side suffices).
	var sb strings.Builder
	emitted := make([]bool, len(m.Bonds))
	visited := make([]bool, n)
	var dfs func(a int)
	dfs = func(a int) {
		visited[a] = true
		sb.WriteString(atomToken(m.Atoms[a]))
		for _, c := range closures[a] {
			if !emitted[c.bond] {
				sb.WriteString(bondToken(m.Bonds[c.bond]))
				emitted[c.bond] = true
			}
			sb.WriteString(digitToken(c.digit))
		}
		var children []AdjEntry
		for _, e := range adj[a] {
			if treeBond[e.Bond] && !visited[e.Nbr] {
				children = append(children, e)
			}
		}
		for i, e := range children {
			last := i == len(children)-1
			if !last {
				sb.WriteByte('(')
			}
			sb.WriteString(bondToken(m.Bonds[e.Bond]))
			dfs(e.Nbr)
			if !last {
				sb.WriteByte(')')
			}
		}
	}
	for i, s := range roots {
		if i > 0 {
			sb.WriteByte('.')
		}
		dfs(s)
	}
	return sb.String()
}

func atomToken(a Atom) string {
	sym := a.Symbol
	organic := false
	switch sym {
	case "B", "C", "N", "O", "P", "S", "F", "Cl", "Br", "I":
		organic = true
	}
	if organic && a.Charge == 0 {
		if a.Aromatic {
			return strings.ToLower(sym)
		}
		return sym
	}
	var sb strings.Builder
	sb.WriteByte('[')
	if a.Aromatic {
		sb.WriteString(strings.ToLower(sym))
	} else {
		sb.WriteString(sym)
	}
	if a.NumH == 1 {
		sb.WriteByte('H')
	} else if a.NumH > 1 {
		fmt.Fprintf(&sb, "H%d", a.NumH)
	}
	if a.Charge > 0 {
		if a.Charge == 1 {
			sb.WriteByte('+')
		} else {
			fmt.Fprintf(&sb, "+%d", a.Charge)
		}
	} else if a.Charge < 0 {
		if a.Charge == -1 {
			sb.WriteByte('-')
		} else {
			fmt.Fprintf(&sb, "-%d", -a.Charge)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

func bondToken(b Bond) string {
	if b.Aromatic {
		return ""
	}
	switch b.Order {
	case 2:
		return "="
	case 3:
		return "#"
	}
	return ""
}

func digitToken(d int) string {
	if d < 10 {
		return fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("%%%02d", d)
}
