package chem

// Property-based tests (testing/quick) for the chemistry substrate:
// structural invariants of the SMILES round trip, geometry operations,
// fragment partitioning and fingerprint similarity.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// roundTripCorpus spans the SMILES features the parser supports:
// branches, rings (single and multi-digit closures), aromatics,
// charges, multiple bond orders, hetero-atoms and disconnected salts.
var roundTripCorpus = []string{
	"CCO",
	"CC(=O)O",
	"c1ccccc1",
	"c1ccc2ccccc2c1",
	"CC(=O)Oc1ccccc1C(=O)O",
	"CC(=O)Nc1ccc(O)cc1",
	"CN1CCC[C@H]1c1cccnc1",
	"C#N",
	"CC#CC",
	"O=C(O)c1ccccc1O",
	"NC(Cc1ccccc1)C(=O)O",
	"CC(C)Cc1ccc(C(C)C(=O)O)cc1",
	"[NH4+].[Cl-]",
	"CC(=O)Oc1ccccc1C(=O)O.[Na+]",
	"C1CCCCC1",
	"C1CC2CCC1CC2",
	"FC(F)(F)c1ccccc1",
	"CSc1ccccc1",
	"O=S(=O)(N)c1ccccc1",
	"Clc1ccc(Br)cc1I",
	"CCN(CC)C(=O)c1ccccc1",
	"c1ccc(-c2ccccc2)cc1",
	"CC(C)(C)OC(=O)N",
	"O=P(O)(O)OC",
}

func TestSMILESRoundTripStructureProperty(t *testing.T) {
	check := func(pick uint) bool {
		s := roundTripCorpus[int(pick%uint(len(roundTripCorpus)))]
		m1, err := ParseSMILES(s)
		if err != nil {
			t.Fatalf("corpus entry %q does not parse: %v", s, err)
		}
		m2, err := ParseSMILES(WriteSMILES(m1))
		if err != nil {
			t.Logf("rewritten %q does not parse: %v", WriteSMILES(m1), err)
			return false
		}
		return m1.NumAtoms() == m2.NumAtoms() &&
			len(m1.Bonds) == len(m2.Bonds) &&
			m1.NumRings() == m2.NumRings() &&
			m1.NetCharge() == m2.NetCharge() &&
			math.Abs(m1.Weight()-m2.Weight()) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSMILESIdempotentProperty(t *testing.T) {
	// After one write/parse normalization, the writer must be a fixed
	// point: writing the reparsed molecule reproduces the same string.
	check := func(pick uint) bool {
		s := roundTripCorpus[int(pick%uint(len(roundTripCorpus)))]
		m1, err := ParseSMILES(s)
		if err != nil {
			return false
		}
		w1 := WriteSMILES(m1)
		m2, err := ParseSMILES(w1)
		if err != nil {
			return false
		}
		return WriteSMILES(m2) == w1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomGeometryMol builds a chain molecule with random coordinates;
// the topology is a simple path so geometric invariants are easy to
// state.
func randomGeometryMol(rng *rand.Rand) *Mol {
	n := 3 + rng.Intn(12)
	m := &Mol{}
	symbols := []string{"C", "N", "O", "S"}
	for i := 0; i < n; i++ {
		m.Atoms = append(m.Atoms, Atom{
			Symbol: symbols[rng.Intn(len(symbols))],
			Pos: Vec3{
				X: rng.NormFloat64() * 4,
				Y: rng.NormFloat64() * 4,
				Z: rng.NormFloat64() * 4,
			},
		})
		if i > 0 {
			m.Bonds = append(m.Bonds, Bond{A: i - 1, B: i, Order: 1})
		}
	}
	return m
}

func TestTranslatePreservesDistancesProperty(t *testing.T) {
	check := func(seed int64, dx, dy, dz float64) bool {
		if math.IsNaN(dx) || math.IsNaN(dy) || math.IsNaN(dz) {
			return true
		}
		clamp := func(v float64) float64 { return math.Mod(v, 100) }
		m := randomGeometryMol(rand.New(rand.NewSource(seed)))
		var before []float64
		for i := range m.Atoms {
			for j := i + 1; j < len(m.Atoms); j++ {
				before = append(before, m.Atoms[i].Pos.Dist(m.Atoms[j].Pos))
			}
		}
		m.Translate(Vec3{X: clamp(dx), Y: clamp(dy), Z: clamp(dz)})
		k := 0
		for i := range m.Atoms {
			for j := i + 1; j < len(m.Atoms); j++ {
				if math.Abs(m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)-before[k]) > 1e-9 {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentsPartitionAtomsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random forest: n atoms, each atom after the first bonds to an
		// earlier atom with probability 0.7, producing 1..n fragments.
		n := 2 + rng.Intn(14)
		m := &Mol{}
		for i := 0; i < n; i++ {
			m.Atoms = append(m.Atoms, Atom{Symbol: "C"})
			if i > 0 && rng.Float64() < 0.7 {
				m.Bonds = append(m.Bonds, Bond{A: rng.Intn(i), B: i, Order: 1})
			}
		}
		frags := m.Fragments()
		total := 0
		for _, f := range frags {
			if f.NumAtoms() == 0 {
				return false // no empty fragments
			}
			total += f.NumAtoms()
		}
		return total == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTanimotoMetricProperties(t *testing.T) {
	check := func(pa, pb uint) bool {
		a, err := ParseSMILES(roundTripCorpus[int(pa%uint(len(roundTripCorpus)))])
		if err != nil {
			return false
		}
		b, err := ParseSMILES(roundTripCorpus[int(pb%uint(len(roundTripCorpus)))])
		if err != nil {
			return false
		}
		fa, fb := ComputeFingerprint(a), ComputeFingerprint(b)
		self := Tanimoto(fa, fa)
		sym1, sym2 := Tanimoto(fa, fb), Tanimoto(fb, fa)
		if fa.PopCount() > 0 && math.Abs(self-1) > 1e-12 {
			return false // self-similarity is exactly 1
		}
		if math.Abs(sym1-sym2) > 1e-12 {
			return false // symmetric
		}
		return sym1 >= 0 && sym1 <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbed3DSeedDeterminismProperty(t *testing.T) {
	check := func(pick uint, seed int64) bool {
		s := roundTripCorpus[int(pick%uint(len(roundTripCorpus)))]
		a, err := ParseSMILES(s)
		if err != nil {
			return false
		}
		b := a.Clone()
		Embed3D(a, seed)
		Embed3D(b, seed)
		for i := range a.Atoms {
			if a.Atoms[i].Pos != b.Atoms[i].Pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeepProperty(t *testing.T) {
	check := func(seed int64) bool {
		m := randomGeometryMol(rand.New(rand.NewSource(seed)))
		c := m.Clone()
		// Mutating the clone must not touch the original.
		c.Atoms[0].Pos.X += 1000
		if len(c.Bonds) > 0 {
			c.Bonds[0].Order = 3
		}
		if m.Atoms[0].Pos.X == c.Atoms[0].Pos.X {
			return false
		}
		if len(m.Bonds) > 0 && m.Bonds[0].Order == 3 && c.Bonds[0].Order == 3 {
			// Only fails if the original was not order 3 to begin with;
			// our generator always uses order 1.
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
