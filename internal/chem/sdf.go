package chem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SDF (MDL structure-data file) reader/writer. The paper downloaded 2D
// SDF structures from ZINC and ChEMBL and SMILES from eMolecules and
// Enamine; both input routes converge in ligand preparation. This
// implements the V2000 connection-table subset those libraries use.

// WriteSDF serializes molecules as an SD file (V2000 counts line, atom
// block with coordinates, bond block, and a terminating $$$$). Charges
// are recorded with M  CHG lines.
func WriteSDF(w io.Writer, mols ...*Mol) error {
	for _, m := range mols {
		name := m.Name
		if name == "" {
			name = "unnamed"
		}
		if _, err := fmt.Fprintf(w, "%s\n  deepfusion\n\n", name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%3d%3d  0  0  0  0  0  0  0  0999 V2000\n",
			len(m.Atoms), len(m.Bonds)); err != nil {
			return err
		}
		for _, a := range m.Atoms {
			if _, err := fmt.Fprintf(w, "%10.4f%10.4f%10.4f %-3s 0  0  0  0  0  0  0  0  0  0  0  0\n",
				a.Pos.X, a.Pos.Y, a.Pos.Z, a.Symbol); err != nil {
				return err
			}
		}
		for _, b := range m.Bonds {
			order := b.Order
			if b.Aromatic {
				order = 4 // MDL aromatic bond type
			}
			if _, err := fmt.Fprintf(w, "%3d%3d%3d  0\n", b.A+1, b.B+1, order); err != nil {
				return err
			}
		}
		var charged []int
		for i, a := range m.Atoms {
			if a.Charge != 0 {
				charged = append(charged, i)
			}
		}
		for lo := 0; lo < len(charged); lo += 8 {
			hi := lo + 8
			if hi > len(charged) {
				hi = len(charged)
			}
			if _, err := fmt.Fprintf(w, "M  CHG%3d", hi-lo); err != nil {
				return err
			}
			for _, i := range charged[lo:hi] {
				if _, err := fmt.Fprintf(w, "%4d%4d", i+1, m.Atoms[i].Charge); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "M  END\n$$$$\n"); err != nil {
			return err
		}
	}
	return nil
}

// ParseSDF reads all molecules from an SD file written in the V2000
// format. Implicit hydrogens are re-derived from valences, and MDL
// aromatic bonds (type 4) are restored as aromatic.
func ParseSDF(r io.Reader) ([]*Mol, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var mols []*Mol
	for {
		m, err := parseOneSDF(sc)
		if err == io.EOF {
			return mols, nil
		}
		if err != nil {
			return nil, err
		}
		mols = append(mols, m)
	}
}

func parseOneSDF(sc *bufio.Scanner) (*Mol, error) {
	// Header: name, program, comment.
	var header [3]string
	for i := 0; i < 3; i++ {
		if !sc.Scan() {
			if i == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("chem: truncated SDF header")
		}
		header[i] = sc.Text()
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("chem: missing SDF counts line")
	}
	counts := sc.Text()
	if len(counts) < 6 {
		return nil, fmt.Errorf("chem: malformed counts line %q", counts)
	}
	nAtoms, err := strconv.Atoi(strings.TrimSpace(counts[0:3]))
	if err != nil {
		return nil, fmt.Errorf("chem: bad atom count in %q", counts)
	}
	nBonds, err := strconv.Atoi(strings.TrimSpace(counts[3:6]))
	if err != nil {
		return nil, fmt.Errorf("chem: bad bond count in %q", counts)
	}
	m := &Mol{Name: strings.TrimSpace(header[0])}
	for i := 0; i < nAtoms; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("chem: truncated atom block")
		}
		line := sc.Text()
		if len(line) < 34 {
			return nil, fmt.Errorf("chem: short atom line %q", line)
		}
		x, err1 := strconv.ParseFloat(strings.TrimSpace(line[0:10]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(line[10:20]), 64)
		z, err3 := strconv.ParseFloat(strings.TrimSpace(line[20:30]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("chem: bad coordinates in %q", line)
		}
		sym := strings.TrimSpace(line[31:34])
		if _, ok := Elements[sym]; !ok {
			return nil, fmt.Errorf("chem: unknown element %q in SDF", sym)
		}
		m.Atoms = append(m.Atoms, Atom{Symbol: sym, NumH: -1, Pos: Vec3{X: x, Y: y, Z: z}})
	}
	for i := 0; i < nBonds; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("chem: truncated bond block")
		}
		line := sc.Text()
		if len(line) < 9 {
			return nil, fmt.Errorf("chem: short bond line %q", line)
		}
		a, err1 := strconv.Atoi(strings.TrimSpace(line[0:3]))
		bIdx, err2 := strconv.Atoi(strings.TrimSpace(line[3:6]))
		order, err3 := strconv.Atoi(strings.TrimSpace(line[6:9]))
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("chem: bad bond line %q", line)
		}
		if a < 1 || a > nAtoms || bIdx < 1 || bIdx > nAtoms {
			return nil, fmt.Errorf("chem: bond index out of range in %q", line)
		}
		bond := Bond{A: a - 1, B: bIdx - 1, Order: order}
		if order == 4 {
			bond.Order = 1
			bond.Aromatic = true
			m.Atoms[bond.A].Aromatic = true
			m.Atoms[bond.B].Aromatic = true
		}
		m.Bonds = append(m.Bonds, bond)
	}
	// Properties block until M  END; then data items until $$$$.
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "M  CHG") {
			if err := parseChargeLine(m, line); err != nil {
				return nil, err
			}
		}
		if strings.HasPrefix(line, "M  END") {
			break
		}
	}
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "$$$$") {
			break
		}
	}
	assignImplicitH(m)
	return m, nil
}

func parseChargeLine(m *Mol, line string) error {
	fields := strings.Fields(line[6:])
	if len(fields) < 1 {
		return fmt.Errorf("chem: malformed charge line %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || len(fields) < 1+2*n {
		return fmt.Errorf("chem: malformed charge line %q", line)
	}
	for i := 0; i < n; i++ {
		idx, err1 := strconv.Atoi(fields[1+2*i])
		chg, err2 := strconv.Atoi(fields[2+2*i])
		if err1 != nil || err2 != nil || idx < 1 || idx > len(m.Atoms) {
			return fmt.Errorf("chem: bad charge entry in %q", line)
		}
		m.Atoms[idx-1].Charge = chg
		m.Atoms[idx-1].NumH = -1 // re-derive with the charge applied
	}
	return nil
}

// WritePDBQT renders the molecule as an AutoDock PDBQT-style record
// (the docking input format the paper produced with Open Babel):
// HETATM lines with coordinates, crude Gasteiger-like partial charges
// and AutoDock atom types, plus rotatable-bond (BRANCH) count in a
// REMARK.
func WritePDBQT(w io.Writer, m *Mol) error {
	name := m.Name
	if name == "" {
		name = "LIG"
	}
	if _, err := fmt.Fprintf(w, "REMARK  Name = %s\nREMARK  %d active torsions\nROOT\n",
		name, m.RotatableBonds()); err != nil {
		return err
	}
	for i, a := range m.Atoms {
		e := Elements[a.Symbol]
		q := float64(a.Charge)*0.8 + (e.EN-2.5)*0.15
		adType := a.Symbol
		if a.Aromatic && a.Symbol == "C" {
			adType = "A" // AutoDock aromatic carbon
		}
		if _, err := fmt.Fprintf(w, "HETATM%5d  %-3s LIG A   1    %8.3f%8.3f%8.3f  1.00  0.00    %6.3f %-2s\n",
			i+1, a.Symbol, a.Pos.X, a.Pos.Y, a.Pos.Z, q, adType); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "ENDROOT\nTORSDOF 0\n")
	return err
}
