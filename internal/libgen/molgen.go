// Package libgen generates the synthetic compound libraries screened
// in the paper: the ZINC "world-approved 2018" drug list, ChEMBL
// bioactives, the eMolecules catalog and Enamine's synthetically
// feasible drug-like space. The real libraries total over 500 million
// purchasable compounds; these generators reproduce each library's
// size class (scaled), property profile and input format so the
// preparation/docking/scoring funnel exercises identical code paths.
//
// Every compound is deterministic: library i always yields the same
// SMILES for the same index, across runs and machines.
package libgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"deepfusion/internal/chem"
)

// Profile shapes the fragment-grammar molecule generator toward a
// library's property distribution.
type Profile struct {
	MinFragments    int // substituents attached to the scaffold
	MaxFragments    int
	AromaticBias    float64 // probability of choosing an aromatic scaffold
	HeteroBias      float64 // probability of polar substituents
	ChainBias       float64 // probability of greasy chain substituents
	SaltProb        float64 // probability of emitting a counter-ion fragment
	RequireDruglike bool    // rejection-sample until Lipinski passes
}

// Scaffold and substituent fragment vocabularies. Substituents attach
// via their first atom.
var scaffolds = []string{
	"c1ccccc1",       // benzene
	"c1ccncc1",       // pyridine
	"c1ccc2ccccc2c1", // naphthalene
	"c1ccsc1",        // thiophene
	"c1cc[nH]c1",     // pyrrole
	"C1CCNCC1",       // piperidine
	"C1CCOC1",        // THF
	"C1CCCCC1",       // cyclohexane
	"c1cnc2ccccc2c1", // quinoline-like
	"C1CCNC1",        // pyrrolidine
}

var polarSubs = []string{"O", "N", "C(=O)O", "C(=O)N", "OC", "NC", "S", "C#N", "NCC", "C(=O)OC"}
var greasySubs = []string{"C", "CC", "CCC", "CCCC", "C(C)C", "Cl", "F", "Br", "CCCCCC"}
var salts = []string{"[Na+]", "[K+]", "Cl", "[Ca+2]"}

// RandomSMILES produces one molecule from the profile using rng.
func RandomSMILES(rng *rand.Rand, p Profile) string {
	for attempt := 0; ; attempt++ {
		s := buildSMILES(rng, p)
		m, err := chem.ParseSMILES(s)
		if err != nil {
			continue // grammar occasionally produces valence oddities; retry
		}
		if p.RequireDruglike && attempt < 20 {
			if !chem.Lipinski(chem.ComputeDescriptors(m)) {
				continue
			}
		}
		return s
	}
}

func buildSMILES(rng *rand.Rand, p Profile) string {
	var scaffold string
	if rng.Float64() < p.AromaticBias {
		scaffold = scaffolds[rng.Intn(5)] // aromatic entries first
	} else {
		scaffold = scaffolds[rng.Intn(len(scaffolds)-1)]
	}
	base, err := chem.ParseSMILES(scaffold)
	if err != nil {
		base, _ = chem.ParseSMILES("c1ccccc1")
	}
	nf := p.MinFragments
	if p.MaxFragments > p.MinFragments {
		nf += rng.Intn(p.MaxFragments - p.MinFragments + 1)
	}
	for i := 0; i < nf; i++ {
		var frag string
		if rng.Float64() < p.HeteroBias {
			frag = polarSubs[rng.Intn(len(polarSubs))]
		} else if rng.Float64() < p.ChainBias {
			frag = greasySubs[rng.Intn(len(greasySubs))]
		} else {
			frag = greasySubs[rng.Intn(3)]
		}
		sub, err := chem.ParseSMILES(frag)
		if err != nil {
			continue
		}
		attach(base, sub, rng)
	}
	out := chem.WriteSMILES(base)
	if rng.Float64() < p.SaltProb {
		out += "." + salts[rng.Intn(len(salts))]
	}
	return out
}

// attach grafts sub onto base at a random atom with a free hydrogen.
func attach(base, sub *chem.Mol, rng *rand.Rand) {
	var sites []int
	for i, a := range base.Atoms {
		if a.NumH > 0 {
			sites = append(sites, i)
		}
	}
	if len(sites) == 0 || len(sub.Atoms) == 0 || sub.Atoms[0].NumH == 0 {
		return
	}
	at := sites[rng.Intn(len(sites))]
	off := len(base.Atoms)
	base.Atoms = append(base.Atoms, sub.Atoms...)
	for _, b := range sub.Bonds {
		base.Bonds = append(base.Bonds, chem.Bond{A: b.A + off, B: b.B + off, Order: b.Order, Aromatic: b.Aromatic})
	}
	base.Bonds = append(base.Bonds, chem.Bond{A: at, B: off, Order: 1})
	base.Atoms[at].NumH--
	if base.Atoms[off].NumH > 0 {
		base.Atoms[off].NumH--
	}
	base.SMILES = ""
}

// seedFor derives a per-compound deterministic seed.
func seedFor(library string, index int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s:%d", library, index)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
