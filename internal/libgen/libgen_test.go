package libgen

import (
	"math/rand"
	"strings"
	"testing"

	"deepfusion/internal/chem"
)

func TestRandomSMILESParses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Profile{MinFragments: 1, MaxFragments: 4, AromaticBias: 0.6, HeteroBias: 0.5, ChainBias: 0.4, SaltProb: 0.2}
	for i := 0; i < 200; i++ {
		s := RandomSMILES(rng, p)
		if _, err := chem.ParseSMILES(s); err != nil {
			t.Fatalf("generated invalid SMILES %q: %v", s, err)
		}
	}
}

func TestRandomSMILESDruglike(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Profile{MinFragments: 1, MaxFragments: 3, AromaticBias: 0.6, HeteroBias: 0.5, RequireDruglike: true}
	pass := 0
	const n = 100
	for i := 0; i < n; i++ {
		s := RandomSMILES(rng, p)
		m, err := chem.ParseSMILES(s)
		if err != nil {
			t.Fatal(err)
		}
		if chem.Lipinski(chem.ComputeDescriptors(m)) {
			pass++
		}
	}
	if pass < n*9/10 {
		t.Fatalf("only %d/%d drug-like with RequireDruglike", pass, n)
	}
}

func TestCompoundDeterministic(t *testing.T) {
	for _, l := range All() {
		a := l.Compound(7)
		b := l.Compound(7)
		if a != b {
			t.Fatalf("%s: compound 7 not deterministic", l.Name)
		}
	}
}

func TestCompoundsDiverse(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Enamine.Compound(i)] = true
	}
	if len(seen) < 60 {
		t.Fatalf("only %d distinct compounds in first 100", len(seen))
	}
}

func TestCompoundOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ZINC.Compound(ZINC.Size)
}

func TestLibrarySizes(t *testing.T) {
	if TotalPaperSize() < 500000000 {
		t.Fatalf("paper total = %d, must exceed 500M", TotalPaperSize())
	}
	if TotalSize() <= 0 || TotalSize() > 100000 {
		t.Fatalf("scaled total = %d out of expected band", TotalSize())
	}
	if len(All()) != 4 {
		t.Fatal("must expose exactly 4 libraries")
	}
}

func TestLibraryFormats(t *testing.T) {
	if ZINC.Format != FormatSDF2D || ChEMBL.Format != FormatSDF2D {
		t.Fatal("ZINC and ChEMBL ship 2D SDF in the paper")
	}
	if EMolecules.Format != FormatSMILES || Enamine.Format != FormatSMILES {
		t.Fatal("eMolecules and Enamine ship SMILES in the paper")
	}
}

func TestLibraryMolPrepared(t *testing.T) {
	ok := 0
	for i := 0; i < 30; i++ {
		m, err := ZINC.Mol(i)
		if err != nil {
			continue
		}
		ok++
		if m.ContainsMetal() {
			t.Fatal("prepared molecule contains metal")
		}
		if m.Name == "" {
			t.Fatal("prepared molecule lost its identity")
		}
		if len(m.Fragments()) != 1 {
			t.Fatal("prepared molecule still multi-fragment")
		}
	}
	if ok < 25 {
		t.Fatalf("only %d/30 compounds survived preparation", ok)
	}
}

func TestLibraryID(t *testing.T) {
	if ZINC.ID(0) != "zinc-world-approved:0" {
		t.Fatalf("ID = %q", ZINC.ID(0))
	}
	if Enamine.ID(12345) != "enamine:12345" {
		t.Fatalf("ID = %q", Enamine.ID(12345))
	}
}

func TestZINCSaltsPresent(t *testing.T) {
	// The ZINC profile emits salt forms that preparation must strip.
	nSalt := 0
	for i := 0; i < 200; i++ {
		m, err := chem.ParseSMILES(ZINC.Compound(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Fragments()) > 1 {
			nSalt++
		}
	}
	if nSalt == 0 {
		t.Fatal("ZINC profile should produce some salt forms")
	}
}

func TestProfileShapesDiffer(t *testing.T) {
	// eMolecules (diverse) should produce a higher property variance
	// than Enamine (drug-like filtered). Use MW spread as the probe.
	var mwE, mwEn []float64
	for i := 0; i < 150; i++ {
		if m, err := chem.ParseSMILES(EMolecules.Compound(i)); err == nil {
			mwE = append(mwE, m.Weight())
		}
		if m, err := chem.ParseSMILES(Enamine.Compound(i)); err == nil {
			mwEn = append(mwEn, m.Weight())
		}
	}
	maxE, maxEn := 0.0, 0.0
	for _, v := range mwE {
		if v > maxE {
			maxE = v
		}
	}
	for _, v := range mwEn {
		if v > maxEn {
			maxEn = v
		}
	}
	if maxEn > 900 {
		t.Fatalf("Enamine produced a %v Da compound despite drug-like filter", maxEn)
	}
}

func TestRecordNativeFormats(t *testing.T) {
	// ZINC ships SDF; the record must be a parseable V2000 block.
	rec, err := ZINC.Record(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec, "V2000") || !strings.Contains(rec, "$$$$") {
		t.Fatalf("ZINC record is not SDF:\n%s", rec)
	}
	mols, err := chem.ParseSDF(strings.NewReader(rec))
	if err != nil || len(mols) != 1 {
		t.Fatalf("ZINC SDF record unparseable: %v", err)
	}
	// Enamine ships SMILES; the record must parse as SMILES.
	rec2, err := Enamine.Record(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chem.ParseSMILES(rec2); err != nil {
		t.Fatalf("Enamine record is not SMILES: %v", err)
	}
}

func TestMolThroughNativeFormatsAgree(t *testing.T) {
	// Both import routes end at an equivalent prepared molecule.
	for i := 0; i < 10; i++ {
		m, err := ZINC.Mol(i)
		if err != nil {
			continue
		}
		direct, err := chem.ParseSMILES(ZINC.Compound(i))
		if err != nil {
			t.Fatal(err)
		}
		prepared, err := chem.Prepare(direct, 1)
		if err != nil {
			continue
		}
		if m.NumAtoms() != prepared.NumAtoms() {
			t.Fatalf("compound %d: SDF route %d atoms, SMILES route %d",
				i, m.NumAtoms(), prepared.NumAtoms())
		}
	}
}

func TestDedupExactDuplicates(t *testing.T) {
	a, _ := chem.ParseSMILES("CCO")
	b, _ := chem.ParseSMILES("CCO")
	c, _ := chem.ParseSMILES("CCC")
	kept, dropped := Dedup([]*chem.Mol{a, b, c}, 1.0)
	if len(kept) != 2 || dropped != 1 {
		t.Fatalf("kept %d dropped %d", len(kept), dropped)
	}
}

func TestDedupNearDuplicates(t *testing.T) {
	a, _ := chem.ParseSMILES("Cc1ccccc1")
	b, _ := chem.ParseSMILES("Cc1ccccc1") // exact dup
	c, _ := chem.ParseSMILES("CCCCCCCC")
	kept, dropped := Dedup([]*chem.Mol{a, b, c}, 0.9)
	if dropped != 1 || len(kept) != 2 {
		t.Fatalf("near-dedup kept %d dropped %d", len(kept), dropped)
	}
}

func TestDrawUniqueDeck(t *testing.T) {
	deck := Draw(All(), 20)
	if len(deck) != 20 {
		t.Fatalf("deck size %d", len(deck))
	}
	fps := map[chem.Fingerprint]bool{}
	for _, m := range deck {
		fp := chem.ComputeFingerprint(m)
		if fps[fp] {
			t.Fatal("duplicate compound in deck")
		}
		fps[fp] = true
		if m.Name == "" {
			t.Fatal("deck compound without provenance ID")
		}
	}
}
