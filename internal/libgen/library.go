package libgen

import (
	"fmt"
	"math/rand"
	"strings"

	"deepfusion/internal/chem"
)

// InputFormat records how a library ships its structures; the paper
// downloaded SMILES from eMolecules/Enamine and 2D SDF from
// ZINC/ChEMBL. Both routes converge after MOE preparation.
type InputFormat int

// Input formats.
const (
	FormatSMILES InputFormat = iota
	FormatSDF2D
)

// Library is a deterministic, lazily generated compound collection.
type Library struct {
	Name      string
	Format    InputFormat
	PaperSize int // compounds in the real library (paper Section 4)
	Size      int // compounds in this scaled reproduction
	profile   Profile
}

// Compound returns the SMILES string for index i (0 <= i < Size).
// The same (library, i) pair always yields the same compound.
func (l *Library) Compound(i int) string {
	if i < 0 || i >= l.Size {
		panic("libgen: compound index out of range")
	}
	rng := rand.New(rand.NewSource(seedFor(l.Name, i)))
	return RandomSMILES(rng, l.profile)
}

// ID returns the library-qualified compound identifier, mirroring the
// provenance IDs the screening output records.
func (l *Library) ID(i int) string {
	return l.Name + ":" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Record returns the compound in the library's native distribution
// format: a 2D SDF block for ZINC and ChEMBL (which ship SDF), or the
// SMILES string for eMolecules and Enamine.
func (l *Library) Record(i int) (string, error) {
	s := l.Compound(i)
	if l.Format == FormatSMILES {
		return s, nil
	}
	m, err := chem.ParseSMILES(s)
	if err != nil {
		return "", err
	}
	m.Name = l.ID(i)
	var buf strings.Builder
	if err := chem.WriteSDF(&buf, m); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Mol imports compound i through the library's native format (SDF or
// SMILES, as the paper's downloads did), then prepares it (desalt,
// protonate, embed). It returns an error if preparation rejects the
// compound.
func (l *Library) Mol(i int) (*chem.Mol, error) {
	rec, err := l.Record(i)
	if err != nil {
		return nil, err
	}
	var m *chem.Mol
	if l.Format == FormatSMILES {
		m, err = chem.ParseSMILES(rec)
		if err != nil {
			return nil, err
		}
	} else {
		mols, err := chem.ParseSDF(strings.NewReader(rec))
		if err != nil {
			return nil, err
		}
		if len(mols) != 1 {
			return nil, fmt.Errorf("libgen: SDF record for %s holds %d molecules", l.ID(i), len(mols))
		}
		m = mols[0]
	}
	m.Name = l.ID(i)
	prepared, err := chem.Prepare(m, seedFor(l.Name+"/embed", i))
	if err != nil {
		return nil, err
	}
	prepared.Name = m.Name
	return prepared, nil
}

// ScaleFactor is the reduction applied to the real library sizes so a
// full four-library sweep stays laptop-sized. Documented per experiment
// in EXPERIMENTS.md.
const ScaleFactor = 100000

// The four compound sources of the SARS-CoV-2 screen (paper Section 4).
var (
	// ZINC "world-approved 2018": FDA + world-not-FDA approved drugs.
	ZINC = &Library{
		Name: "zinc-world-approved", Format: FormatSDF2D,
		PaperSize: 8000, Size: 2000,
		profile: Profile{MinFragments: 1, MaxFragments: 4, AromaticBias: 0.7, HeteroBias: 0.55, ChainBias: 0.3, SaltProb: 0.15, RequireDruglike: true},
	}
	// ChEMBL bioactives (1.5 million selected in the paper).
	ChEMBL = &Library{
		Name: "chembl", Format: FormatSDF2D,
		PaperSize: 1500000, Size: 1500000 / ScaleFactor,
		profile: Profile{MinFragments: 1, MaxFragments: 5, AromaticBias: 0.8, HeteroBias: 0.5, ChainBias: 0.35, SaltProb: 0.10},
	}
	// eMolecules catalog (18 million drawn in the paper).
	EMolecules = &Library{
		Name: "emolecules", Format: FormatSMILES,
		PaperSize: 18000000, Size: 18000000 / ScaleFactor,
		profile: Profile{MinFragments: 0, MaxFragments: 5, AromaticBias: 0.6, HeteroBias: 0.4, ChainBias: 0.5, SaltProb: 0.05},
	}
	// Enamine synthetically feasible drug-like space (the bulk of the
	// 500M+ total).
	Enamine = &Library{
		Name: "enamine", Format: FormatSMILES,
		PaperSize: 482000000, Size: 482000000 / ScaleFactor,
		profile: Profile{MinFragments: 1, MaxFragments: 4, AromaticBias: 0.65, HeteroBias: 0.5, ChainBias: 0.3, RequireDruglike: true},
	}
)

// All returns the four libraries in the paper's order.
func All() []*Library {
	return []*Library{ZINC, ChEMBL, EMolecules, Enamine}
}

// TotalPaperSize sums the real library sizes (500M+ compounds).
func TotalPaperSize() int {
	n := 0
	for _, l := range All() {
		n += l.PaperSize
	}
	return n
}

// TotalSize sums the scaled library sizes.
func TotalSize() int {
	n := 0
	for _, l := range All() {
		n += l.Size
	}
	return n
}

// ByName returns the library with the given name, or nil.
func ByName(name string) *Library {
	for _, l := range All() {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// MolByID resolves a library-qualified compound identifier
// ("zinc-world-approved:17") back to its prepared molecule — the
// inverse of Library.ID, used by front doors that accept compound
// references rather than structures.
func MolByID(id string) (*chem.Mol, error) {
	name, idxStr, ok := strings.Cut(id, ":")
	if !ok {
		return nil, fmt.Errorf("libgen: compound ID %q is not library:index", id)
	}
	l := ByName(name)
	if l == nil {
		return nil, fmt.Errorf("libgen: unknown library %q in compound ID %q", name, id)
	}
	idx := 0
	for _, c := range idxStr {
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("libgen: bad compound index in ID %q", id)
		}
		idx = idx*10 + int(c-'0')
	}
	if idxStr == "" || idx >= l.Size {
		return nil, fmt.Errorf("libgen: compound index %q out of range for %s (size %d)", idxStr, name, l.Size)
	}
	return l.Mol(idx)
}
