package libgen

import (
	"deepfusion/internal/chem"
)

// Dedup removes duplicate compounds from a multi-library draw using
// exact fingerprint identity plus a Tanimoto near-duplicate threshold.
// The real screen combined four overlapping vendor catalogs; compounds
// present in several libraries must be evaluated once. Returns the
// surviving molecules (first occurrence wins) and the number dropped.
func Dedup(mols []*chem.Mol, tanimotoCutoff float64) (kept []*chem.Mol, dropped int) {
	type entry struct {
		fp   chem.Fingerprint
		bits int
	}
	var seen []entry
	for _, m := range mols {
		fp := chem.ComputeFingerprint(m)
		dup := false
		for _, e := range seen {
			if fp == e.fp {
				dup = true
				break
			}
			if tanimotoCutoff < 1 && chem.Tanimoto(fp, e.fp) >= tanimotoCutoff {
				dup = true
				break
			}
		}
		if dup {
			dropped++
			continue
		}
		seen = append(seen, entry{fp: fp, bits: fp.PopCount()})
		kept = append(kept, m)
	}
	return kept, dropped
}

// Draw assembles a deduplicated screening deck of n compounds taken
// round-robin from the given libraries, skipping preparation failures
// and duplicates (exact fingerprint matches).
func Draw(libs []*Library, n int) []*chem.Mol {
	var mols []*chem.Mol
	fps := map[chem.Fingerprint]bool{}
	for i := 0; len(mols) < n; i++ {
		lib := libs[i%len(libs)]
		idx := (i / len(libs)) % lib.Size
		m, err := lib.Mol(idx)
		if err != nil {
			continue
		}
		fp := chem.ComputeFingerprint(m)
		if fps[fp] {
			continue
		}
		fps[fp] = true
		mols = append(mols, m)
		if i > 50*n { // safety: libraries exhausted of unique compounds
			break
		}
	}
	return mols
}
