package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"deepfusion/internal/dock"
	"deepfusion/internal/mmgbsa"
	"deepfusion/internal/screen"
)

// ensembleScorers is the 3-scorer consensus campaign of the
// acceptance criteria: the Coherent model as primary plus both
// physics surrogates, scored in one featurize-once pass per batch.
func ensembleScorers() []screen.Scorer {
	return []screen.Scorer{tinyModel(), dock.VinaScorer{}, mmgbsa.Scorer{}}
}

// TestEnsembleResumeAfterKillMatchesUninterrupted is the acceptance
// pin for multi-scorer campaigns: a 3-scorer campaign killed
// mid-flight and resumed produces byte-identical selections to an
// uninterrupted run, and its shards carry a column per scorer.
func TestEnsembleResumeAfterKillMatchesUninterrupted(t *testing.T) {
	cfg := tinyConfig()

	dirA := filepath.Join(t.TempDir(), "uninterrupted")
	ca, err := New(dirA, cfg, ensembleScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantSel := selectionBytes(t, dirA)

	// The manifest records the scorer names, primary first.
	ma, err := loadManifest(dirA)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"coherent", "vina", "mmgbsa"}
	if !slices.Equal(ma.Config.Scorers, wantNames) {
		t.Fatalf("manifest records scorers %v, want %v", ma.Config.Scorers, wantNames)
	}

	// Every shard row carries one column per scorer.
	preds, err := ca.readTargetPredictions(ma.Units, "protease1")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no predictions in shards")
	}
	for _, pr := range preds {
		if len(pr.Scores) != 3 {
			t.Fatalf("shard row has %d scorer columns, want 3: %+v", len(pr.Scores), pr)
		}
		if pr.Scores["coherent"] != pr.Fusion {
			t.Fatalf("primary column %v != coherent score %v", pr.Fusion, pr.Scores["coherent"])
		}
	}

	// Kill a second campaign mid-flight, then resume it.
	dirB := filepath.Join(t.TempDir(), "killed")
	cb, err := New(dirB, cfg, ensembleScorers())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	done := 0
	cb.OnUnitDone = func(u UnitRecord) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if done == 2 {
			cancel()
		}
	}
	if _, err := cb.Run(ctx); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("killed run returned %v, want ErrInterrupted", err)
	}
	st, err := ReadStatus(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done == 0 || st.Done == st.Total {
		t.Fatalf("kill landed at %d/%d done units; test needs a partial campaign", st.Done, st.Total)
	}

	cr, err := Load(dirB, ensembleScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := selectionBytes(t, dirB); string(got) != string(wantSel) {
		t.Fatalf("resumed 3-scorer selections differ from uninterrupted run:\nresumed:\n%s\nuninterrupted:\n%s", got, wantSel)
	}
}

// TestLoadRefusesDifferentScorerSet: the manifest's recorded scorer
// set is a contract — resuming under a different set (different
// members, different order, or a subset) must be refused.
func TestLoadRefusesDifferentScorerSet(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	if _, err := New(dir, tinyConfig(), ensembleScorers()); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]screen.Scorer{
		"subset":    {tinyModel()},
		"reordered": {dock.VinaScorer{}, tinyModel(), mmgbsa.Scorer{}},
		"swapped":   {tinyModel(), dock.VinaScorer{}, dock.VinaScorer{}},
	}
	for name, set := range cases {
		if _, err := Load(dir, set); err == nil {
			t.Fatalf("%s scorer set must be refused on resume", name)
		}
	}
	// The matching set loads fine.
	if _, err := Load(dir, ensembleScorers()); err != nil {
		t.Fatal(err)
	}
}

// TestStatusReportsScorerSet: `campaign status` surfaces the recorded
// scorer names without building models.
func TestStatusReportsScorerSet(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	if _, err := New(dir, tinyConfig(), ensembleScorers()); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(st.Scorers, []string{"coherent", "vina", "mmgbsa"}) {
		t.Fatalf("status reports scorers %v", st.Scorers)
	}
}

// TestRunCancellationStopsPromptly cancels a campaign while its first
// units are mid-chunk and checks Run returns ErrInterrupted without
// draining the full unit grid — cancellation is threaded through
// docking and the scoring engine, not just the feed loop — and that
// the interrupted campaign resumes to the uninterrupted selections.
func TestRunCancellationStopsPromptly(t *testing.T) {
	cfg := tinyConfig()
	dir := filepath.Join(t.TempDir(), "cancel")
	c, err := New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	c.OnUnitStart = func(UnitRecord) {
		once.Do(cancel) // cancel while the very first units are mid-chunk
	}
	start := time.Now()
	_, runErr := c.Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(runErr, ErrInterrupted) {
		t.Fatalf("cancelled Run returned %v, want ErrInterrupted", runErr)
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done == st.Total {
		t.Fatalf("campaign ran to completion (%d/%d) despite cancellation after %v", st.Done, st.Total, elapsed)
	}
	if st.Finalized {
		t.Fatal("cancelled campaign must not finalize")
	}

	// The reference selections from an uninterrupted twin...
	dirRef := filepath.Join(t.TempDir(), "ref")
	cRef, err := New(dirRef, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cRef.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// ...match the cancelled campaign after resume.
	cr, err := Load(dir, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := selectionBytes(t, dir), selectionBytes(t, dirRef); string(got) != string(want) {
		t.Fatalf("post-cancellation selections differ:\n%s\nvs\n%s", got, want)
	}
}
