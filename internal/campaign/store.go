package campaign

import (
	"errors"
	"fmt"
	"io/fs"
)

// DispatchStore is a worker process's handle on the shared
// lease-aware manifest store. Today the store is the campaign
// directory on a shared filesystem; the store API is the RPC seam —
// a multi-host backend (an HTTP coordinator, an object store)
// replaces this implementation without touching the worker loop.
//
// A store never writes the manifest. It reads it for the unit grid
// and current claim epochs, and writes only worker-owned files:
// claim files (exclusive create), heartbeat renewals, and result
// acks.
type DispatchStore struct {
	dir   string
	clock Clock
}

// NewDispatchStore opens the filesystem store backing a campaign
// directory. A nil clock means the system clock.
func NewDispatchStore(dir string, clock Clock) *DispatchStore {
	if clock == nil {
		clock = SystemClock{}
	}
	return &DispatchStore{dir: dir, clock: clock}
}

// Dir returns the campaign directory the store is backed by.
func (s *DispatchStore) Dir() string { return s.dir }

// Claim leases the first unfinished, unclaimed unit to workerID and
// returns the claim plus the unit's manifest record. The exclusive
// creation of the claim file is the atomic test-and-set: of N workers
// racing for one unit, exactly one wins; the rest move to the next
// unit. Returns ErrNoWork when every unfinished unit is currently
// leased, ErrAllDone when none are unfinished.
func (s *DispatchStore) Claim(workerID string) (*ClaimRecord, *UnitRecord, error) {
	man, err := loadManifest(s.dir)
	if err != nil {
		return nil, nil, err
	}
	unfinished := 0
	for i := range man.Units {
		u := man.Units[i]
		if u.State == UnitDone || u.State == UnitFailed {
			continue
		}
		unfinished++
		now := s.clock.Now()
		rec := ClaimRecord{Unit: u.ID, Epoch: u.Epoch, Worker: workerID, Granted: now, Heartbeat: now}
		err := createExclusiveJSON(claimPath(s.dir, u.ID, u.Epoch), rec)
		if errors.Is(err, fs.ErrExist) {
			continue // leased by someone (possibly a tombstone awaiting expiry)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: claim %s: %w", u.ID, err)
		}
		return &rec, &u, nil
	}
	if unfinished == 0 {
		return nil, nil, ErrAllDone
	}
	return nil, nil, ErrNoWork
}

// Heartbeat renews the claim's lease by atomically rewriting its
// claim file with a fresh timestamp. It first checks the manifest's
// current epoch for the unit: if the coordinator has already fenced
// this claim (lease expired, unit reassigned), it returns
// ErrLeaseLost so the worker stops spending compute on a unit it no
// longer owns. The check is advisory — the authoritative fence is the
// coordinator's epoch comparison at fold time.
func (s *DispatchStore) Heartbeat(c *ClaimRecord) error {
	if fenced, err := s.fenced(c); err != nil {
		return err
	} else if fenced {
		return ErrLeaseLost
	}
	c.Heartbeat = s.clock.Now()
	return WriteJSONAtomic(claimPath(s.dir, c.Unit, c.Epoch), *c)
}

// Complete acks a finished unit: the result record is written
// atomically under the claim's epoch, then the manifest is consulted
// — if the claim was fenced while the worker was finishing, Complete
// returns ErrLeaseLost. The record is written regardless: acks are
// always epoch-named, and the coordinator folds only the record
// matching the unit's current epoch, so a zombie's late ack is
// ignored rather than double-counted.
func (s *DispatchStore) Complete(c *ClaimRecord, out UnitOutcome) error {
	rec := ResultRecord{
		Unit:     c.Unit,
		Epoch:    c.Epoch,
		Worker:   c.Worker,
		Poses:    out.Poses,
		Skipped:  out.Skipped,
		Attempts: out.Attempts,
		Shards:   out.Shards,
		Started:  c.Granted,
		Finished: s.clock.Now(),
	}
	if err := WriteJSONAtomic(resultPath(s.dir, c.Unit, c.Epoch), rec); err != nil {
		return err
	}
	if fenced, err := s.fenced(c); err == nil && fenced {
		return ErrLeaseLost
	}
	return nil
}

// Fail acks a unit that exhausted its retry budget, recording the
// attempts consumed so the next run's failure-injection seeds
// advance. Epoch fencing works exactly as in Complete.
func (s *DispatchStore) Fail(c *ClaimRecord, out UnitOutcome, unitErr error) error {
	rec := ResultRecord{
		Unit:     c.Unit,
		Epoch:    c.Epoch,
		Worker:   c.Worker,
		Attempts: out.Attempts,
		Started:  c.Granted,
		Finished: s.clock.Now(),
		Err:      unitErr.Error(),
	}
	if err := WriteJSONAtomic(resultPath(s.dir, c.Unit, c.Epoch), rec); err != nil {
		return err
	}
	if fenced, err := s.fenced(c); err == nil && fenced {
		return ErrLeaseLost
	}
	return nil
}

// fenced reports whether the manifest's epoch for the claim's unit
// has moved past the claim.
func (s *DispatchStore) fenced(c *ClaimRecord) (bool, error) {
	man, err := loadManifest(s.dir)
	if err != nil {
		return false, err
	}
	for i := range man.Units {
		if man.Units[i].ID == c.Unit {
			return man.Units[i].Epoch > c.Epoch, nil
		}
	}
	return false, fmt.Errorf("campaign: claim for unknown unit %s", c.Unit)
}
