package dispatchhttp_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/campaign/dispatch"
	"deepfusion/internal/campaign/dispatchhttp"
	"deepfusion/internal/campaign/dispatchtest"
)

// faultKind enumerates the network faults the injecting transport can
// play against one request.
type faultKind int

const (
	// faultDropRequest: the request never reaches the coordinator —
	// connection refused.
	faultDropRequest faultKind = iota
	// faultDropResponse: the request is DELIVERED and takes effect
	// server-side, but the response is lost — the canonical
	// lost-response case the idempotency argument must survive.
	faultDropResponse
	// faultDelay: the request is delivered but the response arrives
	// past the client's per-call deadline; the client sees a timeout.
	// Synthesized synchronously — no wall sleeping.
	faultDelay
	// faultDuplicate: the request is executed twice (a retransmit the
	// server sees as two calls); the client receives the second
	// response.
	faultDuplicate
	// fault5xx: the coordinator answers 503 without the request taking
	// effect (a proxy or overload shed).
	fault5xx
	// faultCorruptBody: the request is delivered with one body byte
	// flipped in flight. For shard uploads the server's CRC check must
	// refuse the bytes with a retryable 502; the client re-sends the
	// pristine staged bytes.
	faultCorruptBody
)

type fault struct {
	op   string // claim, heartbeat, complete, fail, shards, manifest, status
	kind faultKind
}

// faultingTransport is the fault-injection seam: an http.RoundTripper
// that consumes a scripted fault plan, matching each request against
// the first un-consumed fault for its operation. Request bodies are
// buffered so a faulted request can be replayed (duplicate) or
// genuinely delivered before its response is destroyed.
type faultingTransport struct {
	base http.RoundTripper

	mu       sync.Mutex
	plan     []fault
	injected int
}

func opOf(path string) string {
	rest := strings.TrimPrefix(path, "/v1/dispatch/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

func (f *faultingTransport) take(op string) (faultKind, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, ft := range f.plan {
		if ft.op == op {
			f.plan = append(f.plan[:i], f.plan[i+1:]...)
			f.injected++
			return ft.kind, true
		}
	}
	return 0, false
}

func (f *faultingTransport) remaining() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.plan)
}

func (f *faultingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		body, _ = io.ReadAll(req.Body)
		req.Body.Close()
	}
	fresh := func() *http.Request {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return r
	}
	kind, ok := f.take(opOf(req.URL.Path))
	if !ok {
		return f.base.RoundTrip(fresh())
	}
	deliverAndDiscard := func() error {
		resp, err := f.base.RoundTrip(fresh())
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	switch kind {
	case faultDropRequest:
		return nil, fmt.Errorf("faultnet: connection refused (injected)")
	case faultDropResponse:
		if err := deliverAndDiscard(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("faultnet: connection reset mid-response (injected)")
	case faultDelay:
		if err := deliverAndDiscard(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("faultnet: %w (injected delay past deadline)", context.DeadlineExceeded)
	case faultDuplicate:
		if err := deliverAndDiscard(); err != nil {
			return nil, err
		}
		return f.base.RoundTrip(fresh())
	case faultCorruptBody:
		r := fresh()
		if len(body) > 0 {
			damaged := append([]byte(nil), body...)
			damaged[len(damaged)/2] ^= 0x20
			r.Body = io.NopCloser(bytes.NewReader(damaged))
			r.ContentLength = int64(len(damaged))
		}
		return f.base.RoundTrip(r)
	case fault5xx:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{},
			Body:    io.NopCloser(strings.NewReader("faultnet: injected 503")),
			Request: req,
		}, nil
	}
	panic("unreachable")
}

// TestChaosNetworkFaultsByteIdentical is the network-partition
// complement of the dispatch package's kill-based chaos test: three
// remote workers drive the campaign through a transport that drops
// requests, loses responses after delivery, delays past the deadline,
// duplicates calls, injects 5xx, and flips a byte inside a shard
// upload body — at every operation of the protocol — and the
// finalized selections must still be byte-identical
// to the uninterrupted single-process run, with every pose counted
// exactly once. All retry backoff runs on virtual time.
func TestChaosNetworkFaultsByteIdentical(t *testing.T) {
	cfg := dispatchtest.TinyConfig()
	refDir, refBytes := dispatchtest.ReferenceRun(t, cfg)

	fc := campaign.NewFakeClock(t0)
	fc.SetAutoAdvance(true)
	// TTL far above live heartbeat drift, small against auto-advanced
	// virtual time, so a duplicated Claim's orphaned lease expires and
	// reassigns well inside the test.
	lease := campaign.LeaseOptions{TTL: 30 * time.Minute, Heartbeat: time.Second}
	dir, c, srv := newCoordinator(t, cfg, fc)

	// Every operation gets hit, every fault kind appears, and no op
	// ever sees more consecutive faults than the client's attempt
	// budget absorbs. The complete/drop-response entry is the
	// lost-response idempotency case; the claim/duplicate entry orphans
	// a lease that only expiry can recover.
	ft := &faultingTransport{base: http.DefaultTransport, plan: []fault{
		{op: "manifest", kind: fault5xx},
		{op: "claim", kind: faultDropRequest},
		{op: "claim", kind: faultDuplicate},
		{op: "claim", kind: fault5xx},
		{op: "heartbeat", kind: faultDropRequest},
		{op: "heartbeat", kind: faultDelay},
		{op: "heartbeat", kind: fault5xx},
		{op: "shards", kind: faultDropRequest},
		{op: "shards", kind: faultDropResponse},
		{op: "shards", kind: fault5xx},
		{op: "shards", kind: faultCorruptBody},
		{op: "complete", kind: faultDropResponse},
		{op: "complete", kind: faultDuplicate},
		{op: "complete", kind: fault5xx},
		{op: "complete", kind: faultDelay},
	}}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make(chan error, 8)
	clients := make([]*dispatchhttp.Client, 3)
	for i := 0; i < 3; i++ {
		w, cl := remoteWorker(t, fmt.Sprintf("fw%d", i), srv.URL, fc, lease, ft)
		clients[i] = cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				workerErrs <- err
			}
		}()
	}

	co := &dispatch.Coordinator{Camp: c, Clock: fc, Lease: lease, Poll: time.Second}
	res, err := co.Run(ctx)
	cancel()
	wg.Wait()
	close(workerErrs)
	for werr := range workerErrs {
		t.Error(werr)
	}
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if res == nil || len(res.PerTarget) != len(cfg.Targets) {
		t.Fatalf("result = %+v, want %d targets", res, len(cfg.Targets))
	}

	if left := ft.remaining(); left != 0 {
		t.Fatalf("%d planned faults never fired: %+v", left, ft.plan)
	}
	if got := dispatchtest.SelectionBytes(t, dir); !bytes.Equal(got, refBytes) {
		t.Fatalf("selections under network faults differ from the uninterrupted run:\nfaulted:\n%s\nreference:\n%s", got, refBytes)
	}
	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := campaign.ReadStatus(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Poses != refSt.Poses {
		t.Fatalf("poses = %d vs reference %d — a duplicated or replayed ack was double-counted", st.Poses, refSt.Poses)
	}
	if st.Done != st.Total {
		t.Fatalf("done = %d/%d, want all units settled", st.Done, st.Total)
	}

	// The retry machinery really ran: clients burned retries, and the
	// coordinator folded them into per-worker dispatch counters.
	totalRetries := 0
	for _, cl := range clients {
		totalRetries += cl.Stats().Retries
	}
	if totalRetries == 0 {
		t.Fatal("no client retries recorded under a 15-fault plan")
	}
	hst, err := clients[0].Status()
	if err != nil {
		t.Fatal(err)
	}
	if hst.Backend != "http" {
		t.Fatalf("status backend = %q, want http", hst.Backend)
	}
	statusRetries := 0
	for _, w := range hst.Workers {
		statusRetries += w.DispatchRetries
	}
	if statusRetries == 0 {
		t.Fatal("status endpoint reports zero dispatch retries; header folding is broken")
	}
}

// TestShardUploadCorruptedInFlightRetried isolates the wire-integrity
// check: a shard upload whose body is flipped in transit is refused
// by the server's CRC verification with a retryable 502, the client's
// retry re-sends the pristine staged bytes, and the bytes that land
// on the coordinator are exactly the staged ones.
func TestShardUploadCorruptedInFlightRetried(t *testing.T) {
	cfg := dispatchtest.TinyConfig()
	fc := campaign.NewFakeClock(t0)
	fc.SetAutoAdvance(true)
	lease := campaign.LeaseOptions{TTL: 30 * time.Minute, Heartbeat: time.Second}
	dir, _, srv := newCoordinator(t, cfg, fc)

	ft := &faultingTransport{base: http.DefaultTransport, plan: []fault{
		{op: "shards", kind: faultCorruptBody},
	}}
	w, cl := remoteWorker(t, "crcw", srv.URL, fc, lease, ft)

	claim, unit, err := cl.Claim(w.ID)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.Camp.ExecuteUnit(context.Background(), *unit, claim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Shards) == 0 {
		t.Fatal("unit produced no shards")
	}
	if err := cl.Complete(claim, out); err != nil {
		t.Fatalf("complete with an in-flight corruption must heal via retry, got %v", err)
	}
	if left := ft.remaining(); left != 0 {
		t.Fatalf("%d planned faults never fired", left)
	}
	if cl.Stats().Retries == 0 {
		t.Fatal("refused upload did not burn a retry")
	}
	for _, rel := range out.Shards {
		staged, err := os.ReadFile(filepath.Join(cl.LocalDir(), rel))
		if err != nil {
			t.Fatal(err)
		}
		landed, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			t.Fatalf("shard never landed on the coordinator: %v", err)
		}
		if !bytes.Equal(staged, landed) {
			t.Fatalf("landed shard %s differs from staged bytes", rel)
		}
	}
	// And the landed shard passes full checksum verification.
	for _, rel := range out.Shards {
		if _, err := campaign.ReadShardFile(filepath.Join(dir, rel)); err != nil {
			t.Fatalf("landed shard %s failed verification: %v", rel, err)
		}
	}
}
