package dispatchhttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"deepfusion/internal/campaign"
)

// maxShardUpload caps one uploaded shard body. Repro-scale shards are
// kilobytes; paper-scale h5lite shards are tens of megabytes. The cap
// is a malformed-client guard, not a tuning knob.
const maxShardUpload = 1 << 30

// Server is the coordinator side of HTTP dispatch: it exposes the
// lease protocol of one campaign directory to remote workers. Every
// state-changing request is delegated to the filesystem DispatchStore
// on the coordinator's own directory — claims by exclusive create,
// heartbeats and acks by atomic rewrite, uploaded shard bytes by
// atomic temp+rename — so the durability and fencing arguments of the
// shared-filesystem protocol carry over verbatim, and the coordinator
// process remains the sole manifest writer. Handlers are safe for
// concurrent use: the underlying store is (its atomicity is
// file-level), and the in-memory per-worker counters are
// mutex-guarded.
type Server struct {
	dir   string
	store *campaign.DispatchStore

	mu  sync.Mutex
	net map[string]*netCounters
}

// netCounters aggregates one worker's transport-level robustness
// telemetry, folded from the client's request headers.
type netCounters struct {
	requests int
	retries  int
	backoffs int
}

// NewServer builds the dispatch server for a campaign directory. A
// nil clock means the system clock; tests inject the fake clock the
// lease state machine runs on.
func NewServer(dir string, clock campaign.Clock) *Server {
	return &Server{
		dir:   dir,
		store: campaign.NewDispatchStore(dir, clock),
		net:   map[string]*netCounters{},
	}
}

// Handler returns the dispatch mux. Mount it at the root of a
// coordinator-side http.Server (the paths are absolute).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathClaim, s.handleClaim)
	mux.HandleFunc("POST "+pathHeartbeat, s.handleHeartbeat)
	mux.HandleFunc("POST "+pathComplete, s.handleComplete)
	mux.HandleFunc("POST "+pathFail, s.handleFail)
	mux.HandleFunc("PUT "+pathShards+"{name}", s.handleShard)
	mux.HandleFunc("GET "+pathManifest, s.handleManifest)
	mux.HandleFunc("GET "+pathStatus, s.handleStatus)
	return mux
}

// recordNet folds one request's dispatch headers into the per-worker
// counters `campaign status -coordinator` reports.
func (s *Server) recordNet(r *http.Request) {
	worker := r.Header.Get(headerWorker)
	if worker == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.net[worker]
	if c == nil {
		c = &netCounters{}
		s.net[worker] = c
	}
	c.requests++
	if attempt, _ := strconv.Atoi(r.Header.Get(headerAttempt)); attempt > 0 {
		c.retries++
	}
	// The backoff header is the client's cumulative sleep count;
	// requests can arrive out of order, so keep the high-water mark.
	if b, _ := strconv.Atoi(r.Header.Get(headerBackoffs)); b > c.backoffs {
		c.backoffs = b
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("dispatchhttp: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	s.recordNet(r)
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "dispatchhttp: claim needs a worker id", http.StatusBadRequest)
		return
	}
	claim, unit, err := s.store.Claim(req.Worker)
	switch {
	case errors.Is(err, campaign.ErrNoWork):
		writeJSON(w, claimResponse{Code: codeNoWork})
	case errors.Is(err, campaign.ErrAllDone):
		writeJSON(w, claimResponse{Code: codeAllDone})
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		writeJSON(w, claimResponse{Code: codeOK, Claim: claim, Unit: unit})
	}
}

// handleAck is the shared heartbeat/complete/fail shape: run the
// store call, translate ErrLeaseLost into its wire code.
func (s *Server) handleAck(w http.ResponseWriter, r *http.Request, op func(c *campaign.ClaimRecord, req ackRequest) error) {
	s.recordNet(r)
	var req ackRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c := req.Claim
	err := op(&c, req)
	switch {
	case errors.Is(err, campaign.ErrLeaseLost):
		writeJSON(w, ackResponse{Code: codeLeaseLost})
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		writeJSON(w, ackResponse{Code: codeOK, Claim: &c})
	}
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	s.handleAck(w, r, func(c *campaign.ClaimRecord, req ackRequest) error {
		return s.store.Heartbeat(c)
	})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	s.handleAck(w, r, func(c *campaign.ClaimRecord, req ackRequest) error {
		return s.store.Complete(c, req.Outcome)
	})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	s.handleAck(w, r, func(c *campaign.ClaimRecord, req ackRequest) error {
		msg := req.Error
		if msg == "" {
			msg = "unit failed (no detail from worker)"
		}
		return s.store.Fail(c, req.Outcome, fmt.Errorf("%w: %s", campaign.ErrUnitFailed, msg))
	})
}

// handleShard lands one uploaded shard into the coordinator's shard
// directory through the atomic write primitive. Re-uploads (a worker
// retrying a Complete whose response was lost) atomically replace the
// file with identical bytes — unit execution is deterministic at a
// fixed (unit, epoch) — so the upload is idempotent. Names are
// base-only and epoch-qualified by the worker exactly as on a shared
// filesystem, so a fenced zombie's late upload lands under its old
// epoch and is ignored by the coordinator, never double-counted.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	s.recordNet(r)
	name := r.PathValue("name")
	if !validShardName(name) {
		http.Error(w, fmt.Sprintf("dispatchhttp: invalid shard name %q", name), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxShardUpload))
	if err != nil {
		http.Error(w, fmt.Sprintf("dispatchhttp: read shard body: %v", err), http.StatusBadRequest)
		return
	}
	// Verify the client's CRC over the bytes as received, BEFORE they
	// land: a body corrupted in flight is refused with a 5xx so the
	// client's retry loop re-sends the same staged bytes. 502 (not
	// 500) because the damage is between the peers, not in the server.
	if want := r.Header.Get(headerShardCRC); want != "" {
		got := fmt.Sprintf("%08x", crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli)))
		if got != want {
			http.Error(w, fmt.Sprintf("dispatchhttp: shard %s: body CRC32C %s does not match header %s (corrupted in flight, retry)",
				name, got, want), http.StatusBadGateway)
			return
		}
	}
	if err := campaign.WriteBytesAtomic(filepath.Join(campaign.ShardDir(s.dir), name), data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, ackResponse{Code: codeOK})
}

// validShardName accepts exactly the names writeUnitShards produces:
// a single path element ending in .h5l, no separators, no dot-dot —
// an uploaded name can never escape the shard directory.
func validShardName(name string) bool {
	if name == "" || !strings.HasSuffix(name, ".h5l") {
		return false
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return false
	}
	return name == filepath.Base(name)
}

// handleManifest serves the raw manifest bytes. The manifest is only
// ever replaced by atomic rename, so a read never observes a torn
// file; remote workers mirror these bytes into a local scratch
// directory and Attach to that.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	data, err := os.ReadFile(campaign.ManifestPath(s.dir))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleStatus serves the manifest-derived campaign status stamped
// with the HTTP backend identity and each worker's dispatch
// retry/backoff counters.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := campaign.ReadStatus(s.dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	st.Backend = "http"
	st.Coordinator = r.Host
	s.mu.Lock()
	seen := map[string]bool{}
	for i := range st.Workers {
		ws := &st.Workers[i]
		seen[ws.ID] = true
		if c := s.net[ws.ID]; c != nil {
			ws.DispatchRetries = c.retries
			ws.DispatchBackoffs = c.backoffs
		}
	}
	// Workers that have talked to the server but not yet folded into
	// the manifest (every claim so far lost a race, say) still show.
	var extra []string
	for id := range s.net {
		if !seen[id] {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	for _, id := range extra {
		c := s.net[id]
		st.Workers = append(st.Workers, campaign.WorkerStatus{
			ID: id, DispatchRetries: c.retries, DispatchBackoffs: c.backoffs,
		})
	}
	s.mu.Unlock()
	writeJSON(w, st)
}
