// Package dispatchhttp carries the campaign lease protocol over HTTP,
// so workers on hosts that do NOT share a filesystem with the
// coordinator can join a distributed campaign. The coordinator runs
// Server next to its manifest directory (the coordinator process
// stays the sole manifest writer; every durable write still goes
// through the campaign package's atomic file primitives), and each
// remote worker drives its unmodified claim → execute → ack loop
// through Client, which implements campaign.Dispatcher with per-call
// deadlines, capped exponential backoff with jitter (slept on the
// injected campaign.Clock — virtual in tests), and epoch-fenced
// idempotent retries: a Complete whose response was lost on the wire
// is simply re-sent, re-lands the same epoch-named result record, and
// folds into the manifest exactly once.
//
// Wire shape: JSON request/response bodies over five endpoints —
// claim, heartbeat, complete, fail, and shard upload (remote workers
// stage shards in a local scratch directory and ship the bytes to the
// coordinator before acking) — plus read-only manifest and status.
// Protocol outcomes (no-work, all-done, lease-lost) travel as codes
// inside 200 responses so the retry layer never confuses them with
// infrastructure failures; 5xx and transport errors are retried,
// other 4xx are terminal. The protocol carries no authentication: it
// trusts the network exactly as far as the shared-filesystem store
// trusts the filesystem. Run it on a private interface.
package dispatchhttp

import "deepfusion/internal/campaign"

// Endpoint paths. pathShards is a prefix: the shard's base filename
// is the final segment.
const (
	pathClaim     = "/v1/dispatch/claim"
	pathHeartbeat = "/v1/dispatch/heartbeat"
	pathComplete  = "/v1/dispatch/complete"
	pathFail      = "/v1/dispatch/fail"
	pathShards    = "/v1/dispatch/shards/"
	pathManifest  = "/v1/dispatch/manifest"
	pathStatus    = "/v1/dispatch/status"
)

// Protocol outcome codes carried inside 200 responses.
const (
	codeOK        = "ok"
	codeNoWork    = "no-work"
	codeAllDone   = "all-done"
	codeLeaseLost = "lease-lost"
)

// Request headers: the worker identity behind each call, the per-call
// retry attempt (0 for the first try), and the client's cumulative
// backoff-sleep count — the coordinator folds these into per-worker
// dispatch counters for `campaign status`.
const (
	headerWorker   = "X-Dispatch-Worker"
	headerAttempt  = "X-Dispatch-Attempt"
	headerBackoffs = "X-Dispatch-Backoffs"
)

// headerShardCRC carries the CRC32C (Castagnoli, lowercase hex) of a
// shard upload's body. The server recomputes it over the bytes it
// received and refuses to land them on mismatch with a 502 — a
// retryable error, so a body corrupted in flight is simply re-sent.
// End-to-end: the shard bytes themselves are a checksummed h5lite v2
// file, so corruption that slips past the wire check (or predates the
// upload) is still caught when the coordinator verifies the shard
// before folding its unit.
const headerShardCRC = "X-Dispatch-Shard-Crc32c"

type claimRequest struct {
	Worker string `json:"worker"`
}

type claimResponse struct {
	Code  string                `json:"code"`
	Claim *campaign.ClaimRecord `json:"claim,omitempty"`
	Unit  *campaign.UnitRecord  `json:"unit,omitempty"`
}

// ackRequest is the shared body of heartbeat, complete and fail.
// Error is non-empty only for fail.
type ackRequest struct {
	Claim   campaign.ClaimRecord `json:"claim"`
	Outcome campaign.UnitOutcome `json:"outcome"`
	Error   string               `json:"error,omitempty"`
}

// ackResponse answers heartbeat/complete/fail/shard-upload. Heartbeat
// returns the renewed claim record so the client mirrors the
// server-stamped renewal time.
type ackResponse struct {
	Code  string                `json:"code"`
	Claim *campaign.ClaimRecord `json:"claim,omitempty"`
}
