package dispatchhttp_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/campaign/dispatch"
	"deepfusion/internal/campaign/dispatchhttp"
	"deepfusion/internal/campaign/dispatchtest"
	"deepfusion/internal/h5lite"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// newCoordinator materializes a dispatch-ready campaign directory and
// its HTTP server on an auto-advance-capable fake clock.
func newCoordinator(t *testing.T, cfg campaign.Config, fc *campaign.FakeClock) (string, *campaign.Campaign, *httptest.Server) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "coord")
	c, err := campaign.New(dir, cfg, dispatchtest.TinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareDispatch(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(dispatchhttp.NewServer(dir, fc).Handler())
	t.Cleanup(srv.Close)
	return dir, c, srv
}

// remoteWorker mirrors the coordinator's campaign into a local
// scratch directory — the cross-host topology: no shared filesystem —
// and returns a Worker driving its loop through the HTTP client.
func remoteWorker(t *testing.T, id, baseURL string, fc *campaign.FakeClock, lease campaign.LeaseOptions, transport http.RoundTripper) (*dispatch.Worker, *dispatchhttp.Client) {
	t.Helper()
	scratch := filepath.Join(t.TempDir(), id)
	cl, err := dispatchhttp.NewClient(baseURL, scratch, dispatchhttp.Options{Clock: fc, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.MirrorCampaign(); err != nil {
		t.Fatalf("mirror campaign: %v", err)
	}
	h, err := campaign.Attach(scratch, dispatchtest.TinyScorers())
	if err != nil {
		t.Fatalf("attach to mirrored scratch: %v", err)
	}
	return &dispatch.Worker{
		ID:    id,
		Camp:  h,
		Store: cl,
		Clock: fc,
		Lease: lease,
		Poll:  time.Second,
	}, cl
}

// TestHTTPDispatchByteIdentical pins the core multi-host guarantee:
// three remote workers, each with its own scratch directory and only
// an HTTP connection to the coordinator, produce selections
// byte-identical to the uninterrupted single-process run.
func TestHTTPDispatchByteIdentical(t *testing.T) {
	cfg := dispatchtest.TinyConfig()
	refDir, refBytes := dispatchtest.ReferenceRun(t, cfg)

	fc := campaign.NewFakeClock(t0)
	fc.SetAutoAdvance(true)
	lease := campaign.LeaseOptions{TTL: 30 * time.Minute, Heartbeat: time.Second}
	dir, c, srv := newCoordinator(t, cfg, fc)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make(chan error, 8)
	clients := make([]*dispatchhttp.Client, 3)
	for i := 0; i < 3; i++ {
		w, cl := remoteWorker(t, fmt.Sprintf("rw%d", i), srv.URL, fc, lease, nil)
		clients[i] = cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				workerErrs <- err
			}
		}()
	}

	co := &dispatch.Coordinator{Camp: c, Clock: fc, Lease: lease, Poll: time.Second}
	res, err := co.Run(ctx)
	cancel()
	wg.Wait()
	close(workerErrs)
	for werr := range workerErrs {
		t.Error(werr)
	}
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if res == nil || len(res.PerTarget) != len(cfg.Targets) {
		t.Fatalf("result = %+v, want %d targets", res, len(cfg.Targets))
	}

	if got := dispatchtest.SelectionBytes(t, dir); !bytes.Equal(got, refBytes) {
		t.Fatalf("HTTP-dispatched selections differ from the single-process reference:\ngot:\n%s\nwant:\n%s", got, refBytes)
	}
	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := campaign.ReadStatus(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != st.Total || st.Poses != refSt.Poses {
		t.Fatalf("status = %d/%d done, %d poses; want all done with %d poses", st.Done, st.Total, st.Poses, refSt.Poses)
	}

	// The status endpoint reports the http backend identity.
	hst, err := clients[0].Status()
	if err != nil {
		t.Fatal(err)
	}
	if hst.Backend != "http" || hst.Coordinator == "" {
		t.Fatalf("status backend = %q coordinator = %q, want http backend with an address", hst.Backend, hst.Coordinator)
	}
	if hst.Done != st.Total {
		t.Fatalf("http status done = %d, fs status total = %d", hst.Done, st.Total)
	}
}

// TestMirrorCampaignMatchesCoordinator pins the mirror: the scratch
// manifest is byte-identical to the coordinator's, so the worker's
// regenerated deck — and therefore every score — is the coordinator's.
func TestMirrorCampaignMatchesCoordinator(t *testing.T) {
	fc := campaign.NewFakeClock(t0)
	dir, _, srv := newCoordinator(t, dispatchtest.TinyConfig(), fc)
	cl, err := dispatchhttp.NewClient(srv.URL, filepath.Join(t.TempDir(), "scratch"), dispatchhttp.Options{Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.MirrorCampaign(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(campaign.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(campaign.ManifestPath(cl.LocalDir()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mirrored manifest differs from the coordinator's")
	}
	if fi, err := os.Stat(campaign.ShardDir(cl.LocalDir())); err != nil || !fi.IsDir() {
		t.Fatalf("mirror did not create the scratch shard directory: %v", err)
	}
}

// TestShardUploadRejectsBadNames pins the upload guard: only a bare
// .h5l filename may land, never a path that could escape shards/.
func TestShardUploadRejectsBadNames(t *testing.T) {
	fc := campaign.NewFakeClock(t0)
	dir, _, srv := newCoordinator(t, dispatchtest.TinyConfig(), fc)
	for _, name := range []string{
		"%2E%2E%2Fmanifest.h5l", // ../manifest.h5l, segment-escaped
		"evil.txt",              // wrong extension
		"a%2Fb.h5l",             // embedded separator
		"..h5l..",               // dot-dot smuggling
	} {
		req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/dispatch/shards/"+name, strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("upload of %q accepted, want rejection", name)
		}
	}
	// Nothing may have landed outside (or inside) the shard dir.
	entries, err := os.ReadDir(campaign.ShardDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("shard dir not empty after rejected uploads: %v", entries)
	}
}

// TestCompleteRetryIdempotent pins the lost-response case end-to-end
// at the client API: a Complete (with a real staged shard) retried
// verbatim re-uploads identical bytes and folds exactly once.
func TestCompleteRetryIdempotent(t *testing.T) {
	fc := campaign.NewFakeClock(t0)
	lease := campaign.LeaseOptions{TTL: 30 * time.Second}
	dir, c, srv := newCoordinator(t, dispatchtest.TinyConfig(), fc)
	scratch := filepath.Join(t.TempDir(), "scratch")
	cl, err := dispatchhttp.NewClient(srv.URL, scratch, dispatchhttp.Options{Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.MirrorCampaign(); err != nil {
		t.Fatal(err)
	}
	claim, _, err := cl.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	shard := "shards/retry_test.h5l"
	// A real checksummed shard: fold-time verification decodes every
	// acked shard before retiring the unit, so arbitrary bytes would
	// be quarantined rather than folded.
	hf := h5lite.New()
	hf.Root().Group("retry").SetFloats("scores", []float64{1, 2, 3})
	var shardBuf bytes.Buffer
	if err := hf.Write(&shardBuf); err != nil {
		t.Fatal(err)
	}
	want := shardBuf.Bytes()
	if err := os.WriteFile(filepath.Join(scratch, shard), want, 0o644); err != nil {
		t.Fatal(err)
	}
	out := campaign.UnitOutcome{Poses: 3, Shards: []string{shard}}
	if err := cl.Complete(claim, out); err != nil {
		t.Fatal(err)
	}
	// The ack's response is "lost"; the worker retries the whole
	// Complete — upload and all.
	if err := cl.Complete(claim, out); err != nil && !errors.Is(err, campaign.ErrLeaseLost) {
		t.Fatalf("retried complete = %v, want idempotent success", err)
	}
	folded := 0
	for i := 0; i < 3; i++ {
		rep, err := c.SyncDispatch(fc.Now(), lease)
		if err != nil {
			t.Fatal(err)
		}
		folded += len(rep.Completed)
	}
	if folded != 1 {
		t.Fatalf("folded %d completions, want exactly 1", folded)
	}
	got, err := os.ReadFile(filepath.Join(campaign.ShardDir(dir), "retry_test.h5l"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("uploaded shard bytes differ from the staged bytes")
	}
	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Poses != 3 {
		t.Fatalf("poses = %d, want 3 exactly once", st.Poses)
	}
}
