package dispatchhttp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"deepfusion/internal/campaign"
)

// Options tunes a dispatch client. The zero value is production-ready.
type Options struct {
	// Clock drives the retry backoff sleeps. Nil means the system
	// clock; tests inject a FakeClock so no retry ever sleeps wall
	// time.
	Clock campaign.Clock
	// Timeout is the per-call deadline: one HTTP round trip slower
	// than this counts as a transport failure and is retried. Zero
	// means 10s.
	Timeout time.Duration
	// MaxAttempts bounds the tries per call, first included. Zero
	// means 5.
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubled per
	// attempt up to BackoffMax and jittered to [0.5x, 1.5x). Zeros
	// mean 100ms and 5s.
	Backoff    time.Duration
	BackoffMax time.Duration
	// Transport overrides the HTTP transport — the fault-injection
	// seam the network chaos harness drives. Nil means
	// http.DefaultTransport.
	Transport http.RoundTripper
	// JitterSeed seeds the backoff jitter. Zero means 1.
	JitterSeed int64
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = campaign.SystemClock{}
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	return o
}

// ClientStats is a client's cumulative robustness telemetry.
type ClientStats struct {
	// Retries counts re-sent requests (attempts after the first).
	Retries int
	// Backoffs counts backoff sleeps taken; equal to Retries unless a
	// call gave up mid-backoff.
	Backoffs int
}

// Client is the worker-side HTTP dispatch backend: a
// campaign.Dispatcher whose calls cross the network to a
// coordinator's Server. Transport errors, timeouts and 5xx responses
// are retried with capped exponential backoff and jitter; protocol
// outcomes (no-work, all-done, lease-lost) come back as the campaign
// package's sentinel errors. Retrying is safe because every
// state-changing call is idempotent at a fixed (unit, epoch): a
// duplicated Complete re-lands the same epoch-named result record and
// folds exactly once, and a duplicated Claim at worst leases an extra
// unit whose lease simply expires. A Client is safe for concurrent
// use by a worker's claim loop and heartbeat goroutine.
type Client struct {
	base  string
	local string
	opts  Options
	http  *http.Client

	mu       sync.Mutex
	rng      *rand.Rand
	retries  int
	backoffs int
}

// NewClient builds a dispatch client for the coordinator at baseURL
// (e.g. "http://host:7700"). localDir is the worker's scratch
// campaign directory: the mirrored manifest lives there and unit
// shards are staged under its shards/ before upload.
func NewClient(baseURL, localDir string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("dispatchhttp: invalid coordinator URL %q", baseURL)
	}
	opts = opts.withDefaults()
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		local: localDir,
		opts:  opts,
		http:  &http.Client{Transport: opts.Transport},
		rng:   rand.New(rand.NewSource(opts.JitterSeed)),
	}, nil
}

// LocalDir returns the worker-side scratch directory.
func (c *Client) LocalDir() string { return c.local }

// Stats returns the client's cumulative retry/backoff counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{Retries: c.retries, Backoffs: c.backoffs}
}

// jitterLocked spreads d over [0.5d, 1.5d). Callers hold c.mu.
func (c *Client) jitterLocked(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

// do runs one dispatch call with the retry policy: per-attempt wall
// deadline, transport errors / timeouts / 5xx / torn response bodies
// retried after a jittered exponential backoff slept on the injected
// clock, non-5xx HTTP errors terminal. A 200 response is decoded into
// out. extra holds additional header key/value pairs (the shard
// upload's CRC), re-sent verbatim on every retry.
func (c *Client) do(worker, method, path, contentType string, body []byte, out any, extra ...string) error {
	backoff := c.opts.Backoff
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.backoffs++
			sleep := c.jitterLocked(backoff)
			c.mu.Unlock()
			<-c.opts.Clock.After(sleep)
			if backoff < c.opts.BackoffMax {
				backoff *= 2
			}
		}
		err := c.attempt(worker, attempt, method, path, contentType, body, out, extra)
		if err == nil {
			return nil
		}
		var term *terminalError
		if ok := asTerminal(err, &term); ok {
			return term.err
		}
		lastErr = err
	}
	return fmt.Errorf("dispatchhttp: %s %s: giving up after %d attempts: %w", method, path, c.opts.MaxAttempts, lastErr)
}

// terminalError wraps an error the retry loop must not retry.
type terminalError struct{ err error }

func (t *terminalError) Error() string { return t.err.Error() }

func asTerminal(err error, out **terminalError) bool {
	t, ok := err.(*terminalError)
	if ok {
		*out = t
	}
	return ok
}

func (c *Client) attempt(worker string, attempt int, method, path, contentType string, body []byte, out any, extra []string) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return &terminalError{err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	c.mu.Lock()
	backoffs := c.backoffs
	c.mu.Unlock()
	req.Header.Set(headerWorker, worker)
	req.Header.Set(headerAttempt, strconv.Itoa(attempt))
	req.Header.Set(headerBackoffs, strconv.Itoa(backoffs))
	for i := 0; i+1 < len(extra); i += 2 {
		req.Header.Set(extra[i], extra[i+1])
	}

	resp, err := c.http.Do(req)
	if err != nil {
		return err // transport failure or deadline: retry
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("dispatchhttp: read response: %w", err)
	}
	if resp.StatusCode >= 500 {
		return fmt.Errorf("dispatchhttp: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	if resp.StatusCode != http.StatusOK {
		return &terminalError{err: fmt.Errorf("dispatchhttp: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))}
	}
	switch out := out.(type) {
	case nil:
	case *[]byte:
		// Raw passthrough (the manifest mirror): the bytes must land
		// verbatim, not survive a decode/re-encode round trip.
		*out = data
	default:
		if err := json.Unmarshal(data, out); err != nil {
			// A torn or duplicated-write body; treat as a lost
			// response and retry.
			return fmt.Errorf("dispatchhttp: decode response: %w", err)
		}
	}
	return nil
}

func (c *Client) doJSON(worker, path string, reqBody, out any) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	return c.do(worker, http.MethodPost, path, "application/json", body, out)
}

// Claim implements campaign.Dispatcher over the wire.
func (c *Client) Claim(workerID string) (*campaign.ClaimRecord, *campaign.UnitRecord, error) {
	var resp claimResponse
	if err := c.doJSON(workerID, pathClaim, claimRequest{Worker: workerID}, &resp); err != nil {
		return nil, nil, err
	}
	switch resp.Code {
	case codeNoWork:
		return nil, nil, campaign.ErrNoWork
	case codeAllDone:
		return nil, nil, campaign.ErrAllDone
	case codeOK:
		if resp.Claim == nil || resp.Unit == nil {
			return nil, nil, fmt.Errorf("dispatchhttp: claim response missing claim/unit")
		}
		return resp.Claim, resp.Unit, nil
	default:
		return nil, nil, fmt.Errorf("dispatchhttp: claim: unknown code %q", resp.Code)
	}
}

// Heartbeat renews the lease server-side and mirrors the renewed
// record (the server stamps the renewal time) back into cl.
func (c *Client) Heartbeat(cl *campaign.ClaimRecord) error {
	var resp ackResponse
	if err := c.doJSON(cl.Worker, pathHeartbeat, ackRequest{Claim: *cl}, &resp); err != nil {
		return err
	}
	if resp.Code == codeLeaseLost {
		return campaign.ErrLeaseLost
	}
	if resp.Claim != nil {
		*cl = *resp.Claim
	}
	return nil
}

// Complete ships the unit's staged shard bytes to the coordinator,
// then acks. The order matters: the coordinator folds a unit the
// moment its result record matches the current epoch, and the
// finalize pass reads the shards the record names — so the bytes must
// be durable on the coordinator before the ack can land. Both halves
// are idempotent at (unit, epoch); a retry after a lost response
// re-uploads identical bytes and re-lands the same record.
func (c *Client) Complete(cl *campaign.ClaimRecord, out campaign.UnitOutcome) error {
	for _, rel := range out.Shards {
		if err := c.uploadShard(cl.Worker, rel); err != nil {
			return err
		}
	}
	var resp ackResponse
	if err := c.doJSON(cl.Worker, pathComplete, ackRequest{Claim: *cl, Outcome: out}, &resp); err != nil {
		return err
	}
	if resp.Code == codeLeaseLost {
		return campaign.ErrLeaseLost
	}
	return nil
}

// Fail acks a unit that exhausted its retry budget.
func (c *Client) Fail(cl *campaign.ClaimRecord, out campaign.UnitOutcome, unitErr error) error {
	var resp ackResponse
	req := ackRequest{Claim: *cl, Outcome: out, Error: unitErr.Error()}
	if err := c.doJSON(cl.Worker, pathFail, req, &resp); err != nil {
		return err
	}
	if resp.Code == codeLeaseLost {
		return campaign.ErrLeaseLost
	}
	return nil
}

// uploadShard ships one staged shard file to the coordinator, with
// the body's CRC32C in a header so the server can refuse bytes
// corrupted in flight (mismatch is a 5xx: the retry loop re-reads
// nothing, it re-sends the same staged bytes). rel is the
// campaign-relative name ExecuteUnit recorded ("shards/<name>").
func (c *Client) uploadShard(worker, rel string) error {
	name := filepath.Base(rel)
	data, err := os.ReadFile(filepath.Join(c.local, rel))
	if err != nil {
		return fmt.Errorf("dispatchhttp: read staged shard: %w", err)
	}
	crc := crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))
	var resp ackResponse
	if err := c.do(worker, http.MethodPut, pathShards+url.PathEscape(name), "application/octet-stream", data, &resp,
		headerShardCRC, fmt.Sprintf("%08x", crc)); err != nil {
		return err
	}
	if resp.Code != codeOK {
		return fmt.Errorf("dispatchhttp: shard upload %s: code %q", name, resp.Code)
	}
	return nil
}

// MirrorCampaign fetches the coordinator's manifest and materializes
// the client's scratch directory as an attachable campaign: the
// manifest bytes land atomically and the shard staging directory is
// created. Call once before campaign.Attach(LocalDir(), scorers); the
// mirrored manifest is a snapshot, which is all a worker needs — the
// config and unit grid it derives the deck from are immutable, and
// live unit state is only ever read through Claim.
func (c *Client) MirrorCampaign() error {
	var data []byte
	if err := c.do("", http.MethodGet, pathManifest, "", nil, &data); err != nil {
		return err
	}
	if err := os.MkdirAll(campaign.ShardDir(c.local), 0o755); err != nil {
		return err
	}
	return campaign.WriteBytesAtomic(campaign.ManifestPath(c.local), data)
}

// Status fetches the coordinator's status view: the manifest summary
// stamped with the http backend identity and per-worker dispatch
// retry counters.
func (c *Client) Status() (campaign.Status, error) {
	var st campaign.Status
	if err := c.do("", http.MethodGet, pathStatus, "", nil, &st); err != nil {
		return campaign.Status{}, err
	}
	return st, nil
}
