package campaign

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// tinyModel builds an untrained (but functional and fully
// deterministic) Coherent Fusion model. Two calls with the same seeds
// produce identical weights, which is what lets a "separate process"
// resume reconstruct the scoring model exactly.
func tinyModel() *fusion.Fusion {
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfg.ConvFilters1 = 4
	cnnCfg.ConvFilters2 = 6
	cnnCfg.DenseNodes = 8
	sgCfg := fusion.DefaultSGCNNConfig()
	sgCfg.CovGatherWidth = 6
	sgCfg.NonCovGatherWidth = 8
	cnn := fusion.NewCNN3D(cnnCfg, 1)
	sg := fusion.NewSGCNN(sgCfg, 2)
	return fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 3)
}

// tinyScorers is the single-Coherent scorer set most campaign tests
// run under; the ensemble and refusal semantics get their own tests.
func tinyScorers() []screen.Scorer {
	return []screen.Scorer{tinyModel()}
}

// tinyConfig is a two-target, six-compound campaign: three work units
// per target, small enough for unit tests, structured enough to
// exercise chunking, pooling and resume.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Targets = []string{"protease1", "spike1"}
	cfg.Compounds = 6
	cfg.ChunkSize = 2
	cfg.MaxPoses = 2
	cfg.Workers = 2
	cfg.TopN = 4
	cfg.Shards = 2
	cfg.Job = screen.DefaultJobOptions()
	cfg.Job.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cfg.Seed = 11
	return cfg
}

// TestCampaignPrefeatureReusedAcrossChunks pins the campaign-level
// featurization cache: every compound chunk of a target shares one
// PocketPrefeature — built on the target's first unit, living with the
// campaign, not the unit — and a full run materializes exactly one
// cache entry per target.
func TestCampaignPrefeatureReusedAcrossChunks(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := New(dir, tinyConfig(), tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	p1 := target.ByName("protease1")
	pfA, err := c.prefeatureFor(p1)
	if err != nil {
		t.Fatal(err)
	}
	if pfA == nil {
		t.Fatal("featurizing scorer set must get a prefeature")
	}
	pfB, err := c.prefeatureFor(p1)
	if err != nil {
		t.Fatal(err)
	}
	if pfA != pfB {
		t.Fatal("second chunk of the same target rebuilt the prefeature instead of reusing it")
	}
	if pfA.Pocket() != p1 {
		t.Fatalf("cached prefeature is for %s, want %s", pfA.Pocket().Name, p1.Name)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(c.prefeatures); got != len(c.man.Config.Targets) {
		t.Fatalf("campaign built %d prefeatures for %d targets", got, len(c.man.Config.Targets))
	}
}

func TestCampaignRunsToCompletion(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := New(dir, tinyConfig(), tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTarget) != 2 {
		t.Fatalf("want 2 target results, got %d", len(res.PerTarget))
	}
	for _, tr := range res.PerTarget {
		if len(tr.Selections) == 0 {
			t.Fatalf("target %s selected no compounds", tr.Target)
		}
		if tr.Screened == 0 {
			t.Fatalf("target %s screened no compounds", tr.Target)
		}
	}
	st := c.Status()
	if st.Done != st.Total || st.Total != 6 {
		t.Fatalf("want 6/6 units done, got %d/%d", st.Done, st.Total)
	}
	if !st.Finalized {
		t.Fatal("campaign not finalized")
	}
	// Every done unit left its shard files behind.
	for _, u := range c.man.Units {
		if len(u.Shards) == 0 {
			t.Fatalf("unit %s has no shards", u.ID)
		}
		for _, s := range u.Shards {
			if _, err := os.Stat(filepath.Join(dir, s)); err != nil {
				t.Fatalf("unit %s shard missing: %v", u.ID, err)
			}
		}
	}
	// The cheap status path agrees with the live handle.
	rs, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Done != st.Done || rs.Poses != st.Poses || !rs.Finalized {
		t.Fatalf("ReadStatus %+v disagrees with Status %+v", rs, st)
	}
}

func TestNewRefusesExistingCampaign(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	if _, err := New(dir, tinyConfig(), tinyScorers()); err != nil {
		t.Fatal(err)
	}
	if _, err := New(dir, tinyConfig(), tinyScorers()); err == nil {
		t.Fatal("New must refuse a directory that already holds a campaign")
	}
}

func TestCampaignRejectsUnknownTarget(t *testing.T) {
	cfg := tinyConfig()
	cfg.Targets = []string{"protease1", "orf9b"}
	if _, err := New(filepath.Join(t.TempDir(), "camp"), cfg, tinyScorers()); err == nil {
		t.Fatal("unknown target must be rejected")
	}
}

func TestPaperScalePlanShape(t *testing.T) {
	ps := DefaultPaperScale()
	targets := []string{"protease1", "protease2", "spike1", "spike2"}
	jobs, err := ps.Plan(targets)
	if err != nil {
		t.Fatal(err)
	}
	perTarget := map[string]int{}
	poses := 0
	for _, j := range jobs {
		perTarget[j.Target]++
		poses += j.Spec.Poses
		if j.Spec.Nodes != ps.Job.Nodes {
			t.Fatalf("job shape drifted: %+v", j.Spec)
		}
	}
	want := ps.CompoundsPerTarget * ps.PosesPerCompound * len(targets)
	if poses != want {
		t.Fatalf("plan carries %d poses, want %d", poses, want)
	}
	for _, tgt := range targets {
		if perTarget[tgt] == 0 {
			t.Fatalf("target %s got no jobs", tgt)
		}
	}
}

func TestSimulateAtPaperScale(t *testing.T) {
	cfg := DefaultConfig() // all four targets
	ps := DefaultPaperScale()
	res, err := SimulateAtPaperScale(cfg, ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ps.CompoundsPerTarget * ps.PosesPerCompound * 4
	if res.PosesScored != want {
		t.Fatalf("scored %d poses, want %d", res.PosesScored, want)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
	// 500 nodes / 4-node jobs keeps ~125 jobs in flight, the paper's
	// concurrency regime.
	if res.PeakJobs < 100 || res.PeakJobs > 125 {
		t.Fatalf("peak concurrency %d outside the paper's ~125-job regime", res.PeakJobs)
	}
	if len(res.PerTarget) != 4 {
		t.Fatalf("want 4 per-target stats, got %d", len(res.PerTarget))
	}
	for _, st := range res.PerTarget {
		if st.PosesScored != ps.CompoundsPerTarget*ps.PosesPerCompound {
			t.Fatalf("target %s scored %d poses", st.Target, st.PosesScored)
		}
		if st.Finish <= 0 || st.Finish > res.Makespan {
			t.Fatalf("target %s finish %v outside campaign makespan %v", st.Target, st.Finish, res.Makespan)
		}
	}
	// At a ~3% four-node failure rate over ~125 jobs/target the paper
	// saw steady resubmissions; the simulator should too.
	if res.Resubmissions == 0 {
		t.Fatal("expected failure resubmissions at paper scale")
	}
}
