// Offline campaign integrity check and repair — `campaign fsck`.
//
// Fsck walks a campaign directory with no workers attached: every
// done unit's shards are decoded end to end (full CRC verification),
// claim and result records are parsed, and the shard directory is
// cross-referenced against the manifest. Problems are reported; with
// repair enabled, damaged shards are quarantined (never deleted) and
// their units re-queued at a fresh epoch so the next run re-executes
// exactly the damaged work — the offline twin of the online
// quarantine-and-re-queue path in syncDispatch/Finalize.
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FsckProblem is one finding from an offline integrity walk.
type FsckProblem struct {
	// Kind classifies the finding: "corrupt-shard", "missing-shard",
	// "bad-claim", "bad-result", "orphan-shard".
	Kind string `json:"kind"`
	// Unit is the owning unit, when attributable.
	Unit string `json:"unit,omitempty"`
	// Path is the offending file relative to the campaign directory.
	Path string `json:"path,omitempty"`
	// Detail is the human-readable diagnosis (for corrupt shards this
	// is the h5lite CorruptError naming section and offset).
	Detail string `json:"detail"`
}

// FsckReport summarizes an offline integrity walk.
type FsckReport struct {
	Dir           string        `json:"dir"`
	UnitsChecked  int           `json:"units_checked"`
	ShardsChecked int           `json:"shards_checked"`
	Problems      []FsckProblem `json:"problems,omitempty"`
	// Repaired lists units re-queued by a repair pass (quarantined
	// shards, fresh epoch, pending state).
	Repaired []string `json:"repaired,omitempty"`
	// Quarantined lists the quarantine-relative destinations of shard
	// files a repair pass moved.
	Quarantined []string `json:"quarantined,omitempty"`
	// Corruptions and Repairs mirror the manifest's lifetime counters
	// after the walk.
	Corruptions int `json:"corruptions"`
	Repairs     int `json:"repairs"`
}

// Clean reports whether the walk found nothing wrong.
func (r FsckReport) Clean() bool { return len(r.Problems) == 0 }

// Fsck verifies a campaign directory offline. With repair false it
// only reports; with repair true it additionally quarantines damaged
// shards, re-queues their units at a fresh epoch (ignoring the online
// repair budget — fsck -repair is an explicit operator action, though
// it still advances the budget counters), clears a finalization built
// on now-quarantined shards, and persists the manifest. Run it only
// when no coordinator or worker is attached to the directory: fsck is
// a second manifest writer.
func Fsck(dir string, repair bool) (FsckReport, error) {
	rep := FsckReport{Dir: dir}
	man, err := loadManifest(dir)
	if err != nil {
		return rep, err
	}
	claims, err := readClaimFiles(dir)
	if err != nil {
		return rep, err
	}
	results, err := readResultFiles(dir)
	if err != nil {
		return rep, err
	}

	changed := false
	referenced := map[string]bool{}
	for i := range man.Units {
		u := &man.Units[i]
		for _, rel := range u.Shards {
			referenced[filepath.Base(rel)] = true
		}
		if u.State != UnitDone {
			continue
		}
		rep.UnitsChecked++
		rep.ShardsChecked += len(u.Shards)
		probs := verifyShards(dir, u.ID, u.Shards)
		if len(probs) == 0 {
			continue
		}
		for _, p := range probs {
			kind := "corrupt-shard"
			if p.Missing {
				kind = "missing-shard"
			}
			rep.Problems = append(rep.Problems, FsckProblem{
				Kind:   kind,
				Unit:   p.Unit,
				Path:   p.Shard,
				Detail: p.String(),
			})
		}
		if !repair {
			continue
		}
		for _, p := range probs {
			dst, qerr := quarantineShard(dir, p.Shard)
			if qerr != nil {
				return rep, qerr
			}
			if dst != "" {
				rel, _ := filepath.Rel(dir, dst)
				rep.Quarantined = append(rep.Quarantined, rel)
			}
		}
		man.Corruptions += len(probs)
		man.Repairs++
		u.Repairs++
		e := u.Epoch
		if me := maxEpoch(claims[u.ID]); me > e {
			e = me
		}
		if me := maxEpoch(results[u.ID]); me > e {
			e = me
		}
		u.Epoch = e + 1
		u.State = UnitPending
		u.Worker = ""
		u.Poses = 0
		u.Skipped = 0
		u.Shards = nil
		rep.Repaired = append(rep.Repaired, u.ID)
		changed = true
	}

	// A finalization that folded shards now quarantined is stale:
	// selections must be rebuilt from the repaired units.
	if repair && changed && man.Finalized {
		man.Finalized = false
		man.Selections = nil
	}

	// Surface claim/result files the fold loop silently skips: under
	// the link/rename protocol they should never be torn, so a
	// malformed one is worth a human's attention even though it cannot
	// poison the manifest.
	rep.Problems = append(rep.Problems, scanEpochDir(dir, claimDirName, ".claim")...)
	rep.Problems = append(rep.Problems, scanEpochDir(dir, resultDirName, ".json")...)

	// Orphan shards — present on disk but referenced by no unit — are
	// expected residue of fenced zombie epochs; report them so an
	// operator can judge, but never touch them.
	if entries, err := os.ReadDir(ShardDir(dir)); err == nil {
		for _, e := range entries {
			if e.IsDir() || strings.Contains(e.Name(), ".tmp") {
				continue
			}
			if !referenced[e.Name()] {
				rep.Problems = append(rep.Problems, FsckProblem{
					Kind:   "orphan-shard",
					Path:   filepath.Join(shardDirName, e.Name()),
					Detail: "shard on disk is referenced by no unit (fenced epoch residue); left in place",
				})
			}
		}
	}
	sort.SliceStable(rep.Problems, func(a, b int) bool {
		if rep.Problems[a].Kind != rep.Problems[b].Kind {
			return rep.Problems[a].Kind < rep.Problems[b].Kind
		}
		return rep.Problems[a].Path < rep.Problems[b].Path
	})

	if changed {
		if err := saveManifest(dir, man); err != nil {
			return rep, fmt.Errorf("campaign: fsck: persist repaired manifest: %w", err)
		}
	}
	rep.Corruptions = man.Corruptions
	rep.Repairs = man.Repairs
	return rep, nil
}

// scanEpochDir reports files in claims/ or results/ that do not parse
// as their record type (the fold loop tolerates and skips them).
func scanEpochDir(dir, sub, ext string) []FsckProblem {
	var probs []FsckProblem
	full := filepath.Join(dir, sub)
	entries, err := os.ReadDir(full)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return []FsckProblem{{Kind: "bad-" + strings.TrimSuffix(sub, "s"), Path: sub, Detail: err.Error()}}
	}
	kind := "bad-" + strings.TrimSuffix(sub, "s") // claims -> bad-claim
	for _, e := range entries {
		if e.IsDir() || strings.Contains(e.Name(), ".tmp") {
			continue
		}
		rel := filepath.Join(sub, e.Name())
		if _, _, ok := parseEpochName(e.Name(), ext); !ok {
			probs = append(probs, FsckProblem{Kind: kind, Path: rel, Detail: "unrecognized name (not <unit>.eNNNNN" + ext + ")"})
			continue
		}
		data, err := os.ReadFile(filepath.Join(full, e.Name()))
		if err != nil {
			probs = append(probs, FsckProblem{Kind: kind, Path: rel, Detail: err.Error()})
			continue
		}
		var v json.RawMessage
		if err := json.Unmarshal(data, &v); err != nil {
			probs = append(probs, FsckProblem{Kind: kind, Path: rel, Detail: fmt.Sprintf("malformed JSON: %v", err)})
		}
	}
	return probs
}
