package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// completedCampaign runs a tiny campaign to completion and returns
// its directory plus the byte-exact selections for identity checks.
func completedCampaign(t *testing.T) (string, []byte) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := New(dir, tinyConfig(), tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return dir, selectionBytes(t, dir)
}

func TestFsckCleanCampaign(t *testing.T) {
	dir, _ := completedCampaign(t)
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck of a healthy campaign found problems: %+v", rep.Problems)
	}
	if rep.UnitsChecked != 6 || rep.ShardsChecked == 0 {
		t.Fatalf("fsck checked %d units / %d shards, want all 6 units", rep.UnitsChecked, rep.ShardsChecked)
	}
}

// TestFsckReportsWithoutRepair pins the read-only contract: every
// class of damage is reported, and nothing on disk or in the manifest
// moves.
func TestFsckReportsWithoutRepair(t *testing.T) {
	dir, _ := completedCampaign(t)
	man, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Damage one shard in place, delete another, plant an orphan shard
	// and a garbage claim file.
	corrupt := filepath.Join(dir, man.Units[0].Shards[0])
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(corrupt, data, 0o666); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, man.Units[1].Shards[0])
	if err := os.Remove(missing); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ShardDir(dir), "stray_e009_s00.h5l"), []byte("zombie residue"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "claims"), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "claims", "protease1_c000.e00000.claim"), []byte("{ torn"), 0o666); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, p := range rep.Problems {
		kinds[p.Kind]++
	}
	want := map[string]int{"corrupt-shard": 1, "missing-shard": 1, "orphan-shard": 1, "bad-claim": 1}
	for k, n := range want {
		if kinds[k] != n {
			t.Fatalf("fsck found %d %s problems, want %d (all: %+v)", kinds[k], k, n, rep.Problems)
		}
	}
	if len(rep.Repaired) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("report-only fsck repaired %v / quarantined %v", rep.Repaired, rep.Quarantined)
	}
	// Nothing moved: the corrupt shard is still in place, the manifest
	// untouched.
	if _, err := os.Stat(corrupt); err != nil {
		t.Fatalf("report-only fsck moved the corrupt shard: %v", err)
	}
	after, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.Corruptions != 0 || after.Repairs != 0 || !after.Finalized {
		t.Fatalf("report-only fsck mutated the manifest: %+v", after)
	}
}

// TestFsckRepairThenResumeMatchesReference is the offline healing
// round trip: corrupt two shards behind a finalized campaign, repair
// with fsck (quarantine + re-queue + definalize), resume the campaign
// in a fresh process, and end with selections byte-identical to the
// undamaged run.
func TestFsckRepairThenResumeMatchesReference(t *testing.T) {
	dir, wantSel := completedCampaign(t)
	man, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, man.Units[0].Shards[0])
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x80
	if err := os.WriteFile(corrupt, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, man.Units[1].Shards[1])); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) != 2 {
		t.Fatalf("fsck repaired %v, want both damaged units", rep.Repaired)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("fsck quarantined %v, want just the corrupt shard (the missing one has nothing to preserve)", rep.Quarantined)
	}
	if rep.Corruptions != 2 || rep.Repairs != 2 {
		t.Fatalf("fsck counters corruptions=%d repairs=%d, want 2/2", rep.Corruptions, rep.Repairs)
	}

	after, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.Finalized || after.Selections != nil {
		t.Fatal("repair must clear a finalization built on quarantined shards")
	}
	repaired := 0
	for _, u := range after.Units {
		if u.ID == man.Units[0].ID || u.ID == man.Units[1].ID {
			if u.State != UnitPending || u.Epoch == 0 || u.Repairs != 1 || len(u.Shards) != 0 {
				t.Fatalf("repaired unit %+v, want pending at a fresh epoch with cleared shards", u)
			}
			repaired++
		} else if u.State != UnitDone {
			t.Fatalf("undamaged unit %s state %q changed by repair", u.ID, u.State)
		}
	}
	if repaired != 2 {
		t.Fatalf("found %d repaired units in manifest, want 2", repaired)
	}

	// Resume in a fresh process: only the repaired units re-run, and
	// the final selections match the undamaged reference exactly.
	cr, err := Load(dir, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := selectionBytes(t, dir); !bytes.Equal(got, wantSel) {
		t.Fatal("selections after fsck repair + resume differ from the undamaged run")
	}
	if rep, err := Fsck(dir, false); err != nil {
		t.Fatal(err)
	} else {
		for _, p := range rep.Problems {
			if p.Kind != "orphan-shard" {
				t.Fatalf("post-repair fsck still reports %+v", p)
			}
		}
	}
}
