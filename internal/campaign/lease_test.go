package campaign

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// leaseFixture writes a synthetic campaign directory holding only a
// manifest with the given units plus the dispatch directories — no
// deck, no scorers. The lease store and coordinator sync never touch
// either, which is exactly the isolation these tests want.
func leaseFixture(t *testing.T, units ...UnitRecord) (string, *Manifest) {
	t.Helper()
	dir := t.TempDir()
	man := &Manifest{
		Version:  manifestVersion,
		Name:     "lease-test",
		Config:   Config{},
		DeckSize: 12,
		Units:    units,
	}
	if err := saveManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if err := ensureDispatchDirs(dir); err != nil {
		t.Fatal(err)
	}
	return dir, man
}

func leaseUnit(id string) UnitRecord {
	return UnitRecord{ID: id, Target: "protease1", Lo: 0, Hi: 2, State: UnitPending}
}

var leaseT0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestClaimExclusivity pins the claim protocol's three outcomes: a
// free unit is leased to exactly one claimer, a fully leased grid
// reports ErrNoWork (poll again), and a fully settled grid reports
// ErrAllDone (exit).
func TestClaimExclusivity(t *testing.T) {
	dir, man := leaseFixture(t, leaseUnit("a"), leaseUnit("b"))
	fc := NewFakeClock(leaseT0)
	s := NewDispatchStore(dir, fc)

	c1, u1, err := s.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	if c1.Unit != "a" || u1.ID != "a" || c1.Epoch != 0 || c1.Worker != "w1" {
		t.Fatalf("first claim = %+v, want unit a epoch 0 for w1", c1)
	}
	c2, _, err := s.Claim("w2")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Unit != "b" {
		t.Fatalf("second claim took %s, want the next free unit b", c2.Unit)
	}
	if _, _, err := s.Claim("w3"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("claim on a fully leased grid = %v, want ErrNoWork", err)
	}

	for i := range man.Units {
		man.Units[i].State = UnitDone
	}
	if err := saveManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Claim("w3"); !errors.Is(err, ErrAllDone) {
		t.Fatalf("claim on a settled grid = %v, want ErrAllDone", err)
	}
}

// TestLeaseExpiryReassignsExactlyOnce drives the lease state machine
// on a fake clock: a claim whose heartbeat goes stale is fenced on the
// first sync past the TTL — epoch bumped, unit back to pending,
// reassignment counted — and subsequent syncs see the tombstoned claim
// (old epoch) without reassigning again.
func TestLeaseExpiryReassignsExactlyOnce(t *testing.T) {
	dir, man := leaseFixture(t, leaseUnit("a"))
	fc := NewFakeClock(leaseT0)
	s := NewDispatchStore(dir, fc)
	lease := LeaseOptions{TTL: 30 * time.Second}

	if _, _, err := s.Claim("w1"); err != nil {
		t.Fatal(err)
	}

	rep, _, err := syncDispatch(dir, man, leaseT0.Add(15*time.Second), lease)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InFlight != 1 || len(rep.Reassigned) != 0 {
		t.Fatalf("fresh lease: %+v, want 1 in-flight, 0 reassigned", rep)
	}

	rep, _, err = syncDispatch(dir, man, leaseT0.Add(31*time.Second), lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reassigned) != 1 || rep.Reassigned[0] != "a" {
		t.Fatalf("expired lease reassigned %v, want [a]", rep.Reassigned)
	}
	if man.Units[0].Epoch != 1 || man.Units[0].State != UnitPending {
		t.Fatalf("fenced unit = epoch %d state %s, want epoch 1 pending", man.Units[0].Epoch, man.Units[0].State)
	}
	if man.Reassignments != 1 {
		t.Fatalf("reassignments = %d, want 1", man.Reassignments)
	}

	// The tombstoned claim file (epoch 0) is still on disk; it must
	// not trigger a second reassignment.
	rep, _, err = syncDispatch(dir, man, leaseT0.Add(120*time.Second), lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reassigned) != 0 || rep.Pending != 1 {
		t.Fatalf("second sync: %+v, want no new reassignment, unit pending", rep)
	}
	if man.Reassignments != 1 {
		t.Fatalf("reassignments after second sync = %d, want still 1", man.Reassignments)
	}
}

// TestHeartbeatRenewalNeverReassigns pins the slow-but-alive
// guarantee: a worker that renews within the TTL keeps its lease
// indefinitely, however long the unit takes relative to the TTL.
func TestHeartbeatRenewalNeverReassigns(t *testing.T) {
	dir, man := leaseFixture(t, leaseUnit("a"))
	fc := NewFakeClock(leaseT0)
	s := NewDispatchStore(dir, fc)
	lease := LeaseOptions{TTL: 30 * time.Second}

	claim, _, err := s.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	// 12 renewals at 20s cadence: 240s of virtual work on a 30s TTL.
	for i := 0; i < 12; i++ {
		fc.Advance(20 * time.Second)
		if err := s.Heartbeat(claim); err != nil {
			t.Fatalf("renewal %d: %v", i, err)
		}
		rep, _, err := syncDispatch(dir, man, fc.Now(), lease)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Reassigned) != 0 || rep.InFlight != 1 {
			t.Fatalf("renewal %d: %+v, want lease held", i, rep)
		}
	}
	if man.Reassignments != 0 {
		t.Fatalf("reassignments = %d, want 0 for a renewing worker", man.Reassignments)
	}
	w := man.Workers["w1"]
	if w == nil || !w.LastBeat.Equal(fc.Now()) {
		t.Fatalf("worker table = %+v, want w1 with last beat %v", w, fc.Now())
	}
}

// TestZombieFencedByEpoch is the double-count defense: a worker that
// loses its lease mid-unit and resumes later can heartbeat, ack, even
// write shards — all under its old epoch — and none of it counts. The
// unit's poses enter the manifest exactly once, from the epoch-1
// owner's ack.
func TestZombieFencedByEpoch(t *testing.T) {
	dir, man := leaseFixture(t, leaseUnit("a"))
	fc := NewFakeClock(leaseT0)
	s := NewDispatchStore(dir, fc)
	lease := LeaseOptions{TTL: 30 * time.Second}
	c := newHandle(dir, man, nil, nil)

	zombie, _, err := s.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}

	// w1 goes silent; the lease expires and the coordinator fences it.
	fc.Advance(31 * time.Second)
	rep, err := c.SyncDispatch(fc.Now(), lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reassigned) != 1 {
		t.Fatalf("expiry sync: %+v, want 1 reassignment", rep)
	}

	// The zombie wakes up. Its heartbeat is refused...
	if err := s.Heartbeat(zombie); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie heartbeat = %v, want ErrLeaseLost", err)
	}
	// ...and its completion ack is written (epoch 0) but refused too.
	err = s.Complete(zombie, UnitOutcome{Poses: 99, Shards: []string{"shards/zombie.h5l"}})
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie ack = %v, want ErrLeaseLost", err)
	}

	// The coordinator must not fold the zombie's epoch-0 ack.
	rep, err = c.SyncDispatch(fc.Now(), lease)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 0 || len(rep.Completed) != 0 {
		t.Fatalf("sync after zombie ack: %+v, want nothing folded", rep)
	}
	if man.Units[0].Poses != 0 {
		t.Fatalf("unit poses = %d after zombie ack, want 0", man.Units[0].Poses)
	}

	// The replacement claims at epoch 1 and its ack is the one that
	// lands.
	fresh, _, err := s.Claim("w2")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Epoch != 1 {
		t.Fatalf("replacement claim epoch = %d, want 1", fresh.Epoch)
	}
	if err := s.Complete(fresh, UnitOutcome{Poses: 7}); err != nil {
		t.Fatal(err)
	}
	rep, err = c.SyncDispatch(fc.Now(), lease)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 || len(rep.Completed) != 1 {
		t.Fatalf("final sync: %+v, want the epoch-1 ack folded", rep)
	}
	if got := man.Units[0].Poses; got != 7 {
		t.Fatalf("unit poses = %d, want 7 (counted exactly once)", got)
	}
	if w1 := man.Workers["w1"]; w1 != nil && w1.PosesDone != 0 {
		t.Fatalf("zombie w1 credited %d poses, want 0", w1.PosesDone)
	}
	if w2 := man.Workers["w2"]; w2 == nil || w2.PosesDone != 7 || w2.UnitsDone != 1 {
		t.Fatalf("w2 record = %+v, want 1 unit / 7 poses", man.Workers["w2"])
	}
}

// TestPrepareDispatchRetriesFailedAtFreshEpoch pins the failed-unit
// retry path: a new distributed run returns failed units to pending at
// an epoch past every claim/result file on disk, so the fresh claim
// cannot collide with a tombstone.
func TestPrepareDispatchRetriesFailedAtFreshEpoch(t *testing.T) {
	u := leaseUnit("a")
	u.State = UnitFailed
	u.Epoch = 2
	dir, man := leaseFixture(t, u)
	fc := NewFakeClock(leaseT0)
	c := newHandle(dir, man, nil, nil)

	// Tombstones from the failed run, including one at an epoch ahead
	// of the manifest (a crash between claim and sync).
	rec := ClaimRecord{Unit: "a", Epoch: 3, Worker: "w9", Granted: fc.Now(), Heartbeat: fc.Now()}
	if err := createExclusiveJSON(claimPath(dir, "a", 3), rec); err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareDispatch(); err != nil {
		t.Fatal(err)
	}
	if man.Units[0].State != UnitPending || man.Units[0].Epoch != 4 {
		t.Fatalf("retried unit = state %s epoch %d, want pending at epoch 4", man.Units[0].State, man.Units[0].Epoch)
	}

	// And the fresh epoch is actually claimable.
	s := NewDispatchStore(dir, fc)
	claim, _, err := s.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	if claim.Epoch != 4 {
		t.Fatalf("fresh claim epoch = %d, want 4", claim.Epoch)
	}
}

// TestConcurrentClaimExactlyOnce is the racing-workers property test:
// many workers hammer Claim on one unit grid while a coordinator
// folds acks. Every unit must be claimed by exactly one worker and
// completed exactly once — no double assignment, no orphan. Run under
// -race in CI.
func TestConcurrentClaimExactlyOnce(t *testing.T) {
	const nUnits, nWorkers = 12, 8
	units := make([]UnitRecord, nUnits)
	for i := range units {
		units[i] = leaseUnit(string(rune('a' + i)))
	}
	dir, man := leaseFixture(t, units...)
	c := newHandle(dir, man, nil, nil)
	lease := LeaseOptions{TTL: time.Minute}

	var mu sync.Mutex
	claimedBy := map[string][]string{} // unit -> claiming workers

	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		id := string(rune('A' + w))
		s := NewDispatchStore(dir, SystemClock{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				claim, _, err := s.Claim(id)
				if errors.Is(err, ErrAllDone) {
					return
				}
				if errors.Is(err, ErrNoWork) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				claimedBy[claim.Unit] = append(claimedBy[claim.Unit], id)
				mu.Unlock()
				if err := s.Complete(claim, UnitOutcome{Poses: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	completed := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		rep, err := c.SyncDispatch(time.Now(), lease)
		if err != nil {
			t.Fatal(err)
		}
		completed += len(rep.Completed)
		if rep.AllDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not settle: %+v", rep)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	if completed != nUnits {
		t.Fatalf("folded %d completions, want exactly %d", completed, nUnits)
	}
	for _, u := range man.Units {
		if u.State != UnitDone || u.Poses != 1 {
			t.Fatalf("unit %s = %s/%d poses, want done with exactly 1", u.ID, u.State, u.Poses)
		}
	}
	for unit, workers := range claimedBy {
		if len(workers) != 1 {
			t.Fatalf("unit %s claimed by %v, want exactly one worker", unit, workers)
		}
	}
	if len(claimedBy) != nUnits {
		t.Fatalf("%d units claimed, want all %d (none orphaned)", len(claimedBy), nUnits)
	}
	if man.Reassignments != 0 {
		t.Fatalf("reassignments = %d, want 0 (no lease ever expired)", man.Reassignments)
	}
}
