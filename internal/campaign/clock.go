package campaign

import (
	"sync"
	"time"
)

// Clock abstracts time for the distributed-campaign machinery. Every
// time-dependent decision — lease grants, heartbeat renewal, expiry,
// coordinator and worker poll cadence — goes through an injected
// Clock, so the fault-injection harness and the lease unit tests
// drive the whole lease state machine deterministically with no
// wall-time sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d
	// has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the wall clock; production coordinators and workers
// run on it.
type SystemClock struct{}

// Now returns time.Now.
func (SystemClock) Now() time.Time { return time.Now() }

// After defers to time.After.
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually driven clock for tests. Time stands still
// until Advance moves it; waiters registered through After fire when
// the clock passes their deadline. In auto-advance mode every After
// call immediately advances the clock by its own duration and fires,
// so free-running coordinator/worker loops make progress as fast as
// the scheduler runs them while virtual time — and therefore lease
// expiry — stays causally ordered.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	auto    bool
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake clock's current reading.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// SetAutoAdvance toggles auto-advance mode (see the type comment).
func (f *FakeClock) SetAutoAdvance(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.auto = on
}

// After registers a waiter d past the current reading. In
// auto-advance mode it advances the clock by d and fires immediately.
func (f *FakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	ch := make(chan time.Time, 1)
	if f.auto || d <= 0 {
		if d > 0 {
			f.now = f.now.Add(d)
			f.fireLocked()
		}
		ch <- f.now
		f.mu.Unlock()
		if f.auto && d > 0 {
			// Throttle free-running loops (heartbeats, polls) so an
			// auto-advancing test doesn't spin a core at IO speed.
			time.Sleep(200 * time.Microsecond)
		}
		return ch
	}
	f.waiters = append(f.waiters, fakeWaiter{at: f.now.Add(d), ch: ch})
	f.mu.Unlock()
	return ch
}

// Advance moves the clock forward by d and fires every waiter whose
// deadline has passed.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	f.fireLocked()
}

func (f *FakeClock) fireLocked() {
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if w.at.After(f.now) {
			kept = append(kept, w)
		} else {
			w.ch <- f.now
		}
	}
	f.waiters = kept
}
