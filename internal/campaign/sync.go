package campaign

import (
	"fmt"
	"slices"
	"sort"
	"time"
)

// SyncReport summarizes one coordinator pass over the claim and
// result files.
type SyncReport struct {
	Done     int
	Failed   int
	InFlight int
	Pending  int
	// Reassigned lists units whose lease expired this pass; each was
	// fenced (epoch bumped) and returned to pending.
	Reassigned []string
	// Quarantined lists units whose acked shards failed integrity
	// verification this pass: the damaged files were moved to
	// quarantine/ and the unit was re-queued at a fresh epoch (or
	// parked failed once its repair budget ran out — those appear in
	// Failed, not here).
	Quarantined []string
	// Completed holds the result records folded into the manifest
	// this pass — the coordinator's feed for real-run statistics.
	Completed []ResultRecord
	// AllDone: every unit is done (the campaign can finalize).
	AllDone bool
	// AllSettled: every unit is done or failed (nothing left for
	// workers; a failed campaign needs a fresh run to retry).
	AllSettled bool
}

// syncDispatch folds the store's claim and result files into the
// manifest's unit grid, in memory:
//
//   - A unit's authoritative epoch is the largest of its manifest
//     epoch and any claim/result file epoch on disk (a restarted
//     coordinator adopts the claims a previous incarnation granted).
//   - A result record at the unit's current epoch retires the unit
//     (done, or failed when the record carries an error). Records at
//     older epochs are zombie acks and are ignored — the epoch fence.
//   - A claim at the current epoch keeps the unit in-flight while its
//     heartbeat is fresher than the lease TTL; once the heartbeat
//     goes stale the unit's epoch is bumped (fencing the dead
//     worker's claim file into a tombstone) and the unit returns to
//     pending for the next claimer. The bump target is one past the
//     largest epoch observed on disk, so the fresh epoch's claim file
//     cannot already exist.
//   - Worker liveness (last heartbeat, held leases, units/poses
//     completed) is folded into the manifest's worker table.
//
// Returns the report and whether the manifest changed.
func syncDispatch(dir string, man *Manifest, now time.Time, lease LeaseOptions) (SyncReport, bool, error) {
	lease = lease.withDefaults()
	var rep SyncReport
	claims, err := readClaimFiles(dir)
	if err != nil {
		return rep, false, fmt.Errorf("campaign: read claims: %w", err)
	}
	results, err := readResultFiles(dir)
	if err != nil {
		return rep, false, fmt.Errorf("campaign: read results: %w", err)
	}
	changed := false
	workerFor := func(id string, seen time.Time) *WorkerRecord {
		if man.Workers == nil {
			man.Workers = map[string]*WorkerRecord{}
		}
		w, ok := man.Workers[id]
		if !ok {
			w = &WorkerRecord{ID: id, FirstSeen: seen, LastBeat: seen}
			man.Workers[id] = w
			changed = true
		}
		return w
	}
	// Leases are recomputed from live claims every pass, then compared
	// against the manifest's worker table so an unchanged lease set
	// doesn't force a manifest rewrite.
	leases := map[string][]string{}
	for i := range man.Units {
		u := &man.Units[i]
		switch u.State {
		case UnitDone:
			rep.Done++
			continue
		case UnitFailed:
			rep.Failed++
			continue
		}
		e := u.Epoch
		if me := maxEpoch(claims[u.ID]); me > e {
			e = me
		}
		if me := maxEpoch(results[u.ID]); me > e {
			e = me
		}
		if e != u.Epoch {
			u.Epoch = e
			changed = true
		}
		if rec, ok := results[u.ID][e]; ok {
			u.Attempts += rec.Attempts
			u.Worker = rec.Worker
			w := workerFor(rec.Worker, rec.Started)
			if rec.Finished.After(w.LastBeat) {
				w.LastBeat = rec.Finished
			}
			if rec.Err != "" {
				u.State = UnitFailed
				rep.Failed++
			} else if probs := verifyShards(dir, u.ID, rec.Shards); len(probs) > 0 {
				// The ack names shards that are corrupt or missing on
				// disk — a torn write the writer never saw, at-rest
				// decay, or an upload that lied. The unit is NOT done:
				// quarantine the damage and re-queue at a fresh epoch
				// (past everything on disk, so the stale ack can never
				// re-fold), under the unit's repair budget. The poses
				// are counted zero times now and exactly once when the
				// re-run's verified shards fold.
				requeued, qerr := quarantineAndRequeue(dir, man, u, probs, e+1)
				if qerr != nil {
					return rep, changed, qerr
				}
				if requeued {
					rep.Quarantined = append(rep.Quarantined, u.ID)
					rep.Pending++
				} else {
					rep.Failed++
				}
				changed = true
				continue
			} else {
				u.State = UnitDone
				u.Poses = rec.Poses
				u.Skipped = rec.Skipped
				u.Shards = rec.Shards
				w.UnitsDone++
				w.PosesDone += rec.Poses
				rep.Done++
			}
			rep.Completed = append(rep.Completed, rec)
			changed = true
			continue
		}
		if cl, ok := claims[u.ID][e]; ok {
			w := workerFor(cl.Worker, cl.Granted)
			if cl.Granted.Before(w.FirstSeen) {
				w.FirstSeen = cl.Granted
				changed = true
			}
			if cl.Heartbeat.After(w.LastBeat) {
				w.LastBeat = cl.Heartbeat
				changed = true
			}
			if now.Sub(cl.Heartbeat) > lease.TTL {
				// Lease expired: fence the claim and reassign. e is
				// the largest epoch on disk for this unit, so e+1 is
				// guaranteed unclaimed.
				u.Epoch = e + 1
				u.State = UnitPending
				u.Worker = ""
				man.Reassignments++
				rep.Reassigned = append(rep.Reassigned, u.ID)
				rep.Pending++
				changed = true
				continue
			}
			leases[cl.Worker] = append(leases[cl.Worker], u.ID)
			if u.State != UnitInFlight || u.Worker != cl.Worker {
				u.State = UnitInFlight
				u.Worker = cl.Worker
				changed = true
			}
			rep.InFlight++
			continue
		}
		if u.State != UnitPending {
			u.State = UnitPending
			changed = true
		}
		rep.Pending++
	}
	for id, w := range man.Workers {
		held := leases[id]
		sort.Strings(held)
		if !slices.Equal(w.Leases, held) {
			w.Leases = held
			changed = true
		}
	}
	total := len(man.Units)
	rep.AllDone = rep.Done == total
	rep.AllSettled = rep.Done+rep.Failed == total
	return rep, changed, nil
}

// SyncDispatch runs one coordinator pass: fold claims and results
// into the manifest, expire stale leases, and persist the manifest if
// anything changed. The coordinator is the only manifest writer in a
// distributed campaign, so workers always read a consistent view.
func (c *Campaign) SyncDispatch(now time.Time, lease LeaseOptions) (SyncReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, changed, err := syncDispatch(c.dir, c.man, now, lease)
	if err != nil {
		return rep, err
	}
	if changed {
		if err := saveManifest(c.dir, c.man); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// PrepareDispatch readies a campaign directory for a distributed run:
// the claim and result directories are created, and units that failed
// a previous run are returned to pending at a fresh epoch — past any
// claim or result file on disk — granting them a fresh retry budget
// exactly like a single-process resume does.
func (c *Campaign) PrepareDispatch() error {
	if err := ensureDispatchDirs(c.dir); err != nil {
		return err
	}
	claims, err := readClaimFiles(c.dir)
	if err != nil {
		return err
	}
	results, err := readResultFiles(c.dir)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for i := range c.man.Units {
		u := &c.man.Units[i]
		if u.State != UnitFailed {
			continue
		}
		e := u.Epoch
		if me := maxEpoch(claims[u.ID]); me > e {
			e = me
		}
		if me := maxEpoch(results[u.ID]); me > e {
			e = me
		}
		u.Epoch = e + 1
		u.State = UnitPending
		u.Worker = ""
		changed = true
	}
	if !changed {
		return nil
	}
	return saveManifest(c.dir, c.man)
}
