package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestManifestRecordsPrecision pins the durable half of the precision
// knob: the manifest states what arithmetic every shard was scored
// at, explicitly, even when the caller left the knob at its zero
// value.
func TestManifestRecordsPrecision(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	cfg := tinyConfig() // Precision left empty
	if _, err := New(dir, cfg, tinyScorers()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Job.Precision != PrecisionF64 {
		t.Fatalf("manifest precision = %q, want explicit f64", got.Job.Precision)
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Precision != "f64" {
		t.Fatalf("status precision = %q, want f64", st.Precision)
	}
}

// TestLoadRefusesPrecisionMismatch mirrors the scorer-set refusal:
// resuming a campaign at a different engine precision than its shards
// were scored at would mix f32 and f64 score columns in one
// selection, so Load must refuse the declared mismatch — and accept
// the matching declaration or an undeclared resume.
func TestLoadRefusesPrecisionMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	cfg := tinyConfig()
	cfg.Job.Precision = PrecisionF32
	if _, err := New(dir, cfg, tinyScorers()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, tinyScorers(), WithPrecision(PrecisionF64)); err == nil {
		t.Fatal("resume at f64 of an f32 campaign must be refused")
	}
	if _, err := Load(dir, tinyScorers(), WithPrecision(PrecisionF32)); err != nil {
		t.Fatalf("matching precision refused: %v", err)
	}
	// Undeclared intent accepts the manifest's recorded precision.
	if _, err := Load(dir, tinyScorers()); err != nil {
		t.Fatalf("undeclared precision refused: %v", err)
	}

	// The empty (legacy-default) declaration means f64 and must be
	// refused against an f32 manifest, but accepted against an f64 one.
	if _, err := Load(dir, tinyScorers(), WithPrecision("")); err == nil {
		t.Fatal("default-precision resume of an f32 campaign must be refused")
	}
	dir64 := filepath.Join(t.TempDir(), "camp64")
	if _, err := New(dir64, tinyConfig(), tinyScorers()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir64, tinyScorers(), WithPrecision("")); err != nil {
		t.Fatalf("default-precision resume of an f64 campaign refused: %v", err)
	}
}

// TestLegacyManifestBackfillsPrecision: manifests written before the
// precision knob carry no job.precision key; they were all scored on
// the f64 reference path and must load as explicit f64.
func TestLegacyManifestBackfillsPrecision(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	if _, err := New(dir, tinyConfig(), tinyScorers()); err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest without the precision key, as a pre-knob
	// process would have written it.
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m["config"].(map[string]any)["job"].(map[string]any), "precision")
	stripped, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stripped, []byte("precision")) {
		t.Fatal("test bug: precision key survived stripping")
	}
	if err := os.WriteFile(manifestPath(dir), stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ReadConfig(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Job.Precision != PrecisionF64 {
		t.Fatalf("legacy manifest loads precision %q, want backfilled f64", cfg.Job.Precision)
	}
	if _, err := Load(dir, tinyScorers(), WithPrecision(PrecisionF32)); err == nil {
		t.Fatal("f32 resume of a legacy (f64) campaign must be refused")
	}
	if _, err := Load(dir, tinyScorers(), WithPrecision(PrecisionF64)); err != nil {
		t.Fatalf("f64 resume of a legacy campaign refused: %v", err)
	}
}

// TestCampaignRunsAtF32 drives a whole campaign — docking, the
// distributed scoring jobs, shards, selection, confirmation — on the
// f32 fast path.
func TestCampaignRunsAtF32(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	cfg := tinyConfig()
	cfg.Job.Precision = PrecisionF32
	c, err := New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested == 0 {
		t.Fatal("f32 campaign selected nothing")
	}
	st, err := ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finalized || st.Done != st.Total {
		t.Fatalf("f32 campaign not complete: %d/%d done, finalized=%v", st.Done, st.Total, st.Finalized)
	}
	if st.Precision != "f32" {
		t.Fatalf("status precision = %q, want f32", st.Precision)
	}
}
