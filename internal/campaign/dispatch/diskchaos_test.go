package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deepfusion/internal/campaign"
)

// TestDiskChaosDistributedByteIdentical drives the distributed
// runtime through every scripted disk-fault kind at once: two silent
// write corruptions (torn write, bit flip) that the writer acks as
// success, two visible write failures (ENOSPC, rename) that kill
// their worker incarnation mid-unit, and two read-side faults (short
// read, bit flip) that hit fold-time verification of perfectly good
// files. The campaign must absorb all of it — corrupt folds
// quarantined and re-queued, dead workers' leases reassigned,
// transient read damage treated as corruption (conservatively
// re-executed, never folded) — and still finalize selections
// byte-identical to an unfaulted single-process run, with every pose
// counted exactly once and every fault accounted for in the manifest
// counters. Runs on virtual time; -race covers the concurrent fault
// plan.
func TestDiskChaosDistributedByteIdentical(t *testing.T) {
	cfg := tinyConfig()
	refDir, refBytes := referenceRun(t, cfg)

	dir := filepath.Join(t.TempDir(), "diskchaos")
	c, err := campaign.New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}

	fc := campaign.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	fc.SetAutoAdvance(true)
	lease := campaign.LeaseOptions{TTL: 30 * time.Minute, Heartbeat: time.Second}

	// One fault per distinct unit so each recovery path is exercised
	// in isolation; all five kinds are covered.
	faults := campaign.NewDiskFaults(fc,
		// Silent write corruption: the worker acks success, fold-time
		// CRC verification catches it, quarantine + re-queue.
		campaign.DiskFault{Op: "write", Kind: campaign.FaultTornWrite, Path: "protease1_c000_s00.h5l", Byte: 64},
		campaign.DiskFault{Op: "write", Kind: campaign.FaultBitFlip, Path: "protease2_c001_s01.h5l", Byte: 100},
		// Visible write failure: the worker incarnation dies mid-unit,
		// its lease expires, the unit is reassigned at a fresh epoch.
		campaign.DiskFault{Op: "write", Kind: campaign.FaultENOSPC, Path: "spike1_c000_s00.h5l"},
		campaign.DiskFault{Op: "rename", Kind: campaign.FaultRenameFail, Path: "protease1_c002_s00.h5l"},
		// Transient read damage during fold verification of healthy
		// files: treated exactly like corruption — the shard is
		// quarantined and the unit re-executed, never silently folded.
		campaign.DiskFault{Op: "read", Kind: campaign.FaultShortRead, Path: "protease2_c000_s00.h5l", Byte: 30},
		campaign.DiskFault{Op: "read", Kind: campaign.FaultBitFlip, Path: "spike1_c002_s01.h5l", Byte: 17},
	)
	defer campaign.SetDiskFaults(faults)()

	runCtx, cancelRun := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancelRun()

	injectedDeath := func(err error) bool {
		return errors.Is(err, campaign.ErrInjectedENOSPC) || errors.Is(err, campaign.ErrInjectedRename)
	}

	workerErrs := make(chan error, 64)
	var deaths int32
	var deathMu sync.Mutex
	var slotWG sync.WaitGroup
	for slot := 0; slot < 3; slot++ {
		slotWG.Add(1)
		go func(slot int) {
			defer slotWG.Done()
			for gen := 0; ; gen++ {
				if runCtx.Err() != nil {
					return
				}
				h, err := campaign.Attach(dir, tinyScorers())
				if err != nil {
					workerErrs <- err
					return
				}
				w := &Worker{
					ID:    fmt.Sprintf("w%d-g%02d", slot, gen),
					Camp:  h,
					Store: campaign.NewDispatchStore(dir, fc),
					Clock: fc,
					Lease: lease,
					Poll:  time.Second,
					// A visible disk fault must not be retried as a
					// transient store blip: the incarnation dies, like a
					// process whose filesystem just failed under it.
					StoreAttempts: 1,
				}
				err = w.Run(runCtx)
				if err == nil {
					return // campaign settled
				}
				if runCtx.Err() != nil {
					return
				}
				if injectedDeath(err) {
					deathMu.Lock()
					deaths++
					deathMu.Unlock()
					continue // fresh incarnation takes the slot
				}
				workerErrs <- fmt.Errorf("worker %s: %w", w.ID, err)
				return
			}
		}(slot)
	}

	co := &Coordinator{Camp: c, Clock: fc, Lease: lease, Poll: time.Second}
	res, err := co.Run(runCtx)
	cancelRun()
	slotWG.Wait()
	close(workerErrs)
	for werr := range workerErrs {
		t.Error(werr)
	}
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if res == nil || len(res.PerTarget) != len(cfg.Targets) {
		t.Fatalf("result = %+v, want %d targets", res, len(cfg.Targets))
	}

	// The plan drained: every scripted fault actually fired.
	if left := faults.Remaining(); left != 0 {
		t.Fatalf("%d scripted disk faults never fired: %+v", left, faults.Injected())
	}
	deathMu.Lock()
	d := deaths
	deathMu.Unlock()
	if d != 2 {
		t.Fatalf("%d worker incarnations died of visible disk faults, want 2 (enospc, rename)", d)
	}

	// Byte identity and exactly-once pose accounting.
	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := campaign.ReadStatus(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Poses != refSt.Poses {
		t.Fatalf("chaos run scored %d poses vs reference %d — a corrupt fold was double-counted or lost", st.Poses, refSt.Poses)
	}
	if got := selectionBytes(t, dir); !bytes.Equal(got, refBytes) {
		t.Fatalf("selections differ from the unfaulted run:\nchaos:\n%s\nreference:\n%s", got, refBytes)
	}

	// Corruption accounting: the two silent write corruptions and the
	// two read-side faults each quarantined one shard and earned one
	// repair re-queue; the visible failures are reassignments, not
	// corruptions.
	if st.Corruptions != 4 || st.Repairs != 4 {
		t.Fatalf("status corruptions=%d repairs=%d, want 4/4", st.Corruptions, st.Repairs)
	}
	if st.Reassignments < 2 {
		t.Fatalf("reassignments = %d, want >= 2 (each visible fault orphans a lease)", st.Reassignments)
	}
	if st.Done != st.Total {
		t.Fatalf("%d/%d units done after self-healing", st.Done, st.Total)
	}
	ents, err := os.ReadDir(campaign.QuarantineDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("quarantine holds %d files, want 4 (nothing deleted, nothing extra)", len(ents))
	}

	// Offline fsck agrees the healed campaign is sound (orphan shards
	// are expected residue of re-queued epochs and fenced incarnations).
	rep, err := campaign.Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		if p.Kind != "orphan-shard" {
			t.Fatalf("post-chaos fsck reports %+v", p)
		}
	}
}
