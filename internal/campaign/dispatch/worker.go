// Package dispatch is the distributed campaign runtime: the
// coordinator and worker halves of the multi-process orchestrator
// that turns cluster.SimulatePlan's simulated ~125-jobs-in-flight
// regime into real processes. Workers claim (target, chunk) work
// units through the campaign package's lease-aware manifest store,
// heartbeat while they hold them, and ack completion with
// epoch-fenced result records; the coordinator folds claims and acks
// into the manifest, reassigns dead workers' units when their leases
// expire, and finalizes — with the same byte-identical kill/resume
// guarantee the single-process orchestrator pins, now across process
// boundaries.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"time"

	"deepfusion/internal/campaign"
)

// EventKind tags the worker lifecycle points the fault-injection
// harness hooks.
type EventKind string

// Worker lifecycle events, in per-unit order.
const (
	EventClaimed   EventKind = "claimed"    // lease acquired, execution about to start
	EventExecuted  EventKind = "executed"   // unit executed, shards on disk, ack not yet written
	EventAcked     EventKind = "acked"      // completion (or failure) ack written
	EventLeaseLost EventKind = "lease-lost" // heartbeat discovered the lease was fenced
)

// Event is one worker lifecycle observation.
type Event struct {
	Kind   EventKind
	Worker string
	Unit   string
	Epoch  int
}

// Worker runs the claim → execute → ack loop of one worker process.
// It owns no campaign state: the manifest is read through the store,
// units are executed through a read-only campaign.Attach handle, and
// every durable write (claim, heartbeat, shard, ack) goes through the
// store's atomic file protocol.
type Worker struct {
	// ID names the worker in claims and the manifest's liveness
	// table. Empty means "host-pid".
	ID string
	// Camp is the read-only campaign handle (campaign.Attach).
	Camp *campaign.Campaign
	// Store is the lease backend: campaign.NewDispatchStore on a
	// shared directory, or dispatchhttp.NewClient against a
	// coordinator on another host.
	Store campaign.Dispatcher
	// Clock drives heartbeats, claim-retry polling and transient-error
	// backoff. Nil means the system clock.
	Clock campaign.Clock
	// Lease sets the heartbeat cadence (must match the coordinator's
	// TTL regime). Zero-valued means defaults.
	Lease campaign.LeaseOptions
	// Poll is the base claim-retry cadence while every unfinished unit
	// is leased elsewhere. Zero means one second. Each wait is
	// jittered to [0.5, 1.5)x so a fleet of workers woken by the same
	// lease expiry doesn't hammer the coordinator in lockstep.
	Poll time.Duration
	// StoreAttempts caps the attempts (first call included) a
	// transient Claim/Complete/Fail error is retried with capped
	// backoff before the worker gives up and exits — one
	// manifest-mid-replace blip on a network filesystem or one dropped
	// coordinator connection must not drop a worker from the fleet.
	// Zero means 4. Protocol outcomes (ErrNoWork, ErrAllDone,
	// ErrLeaseLost) and context cancellation are never retried.
	StoreAttempts int
	// StoreBackoff is the initial transient-error backoff, doubled per
	// attempt, capped at 16x, jittered, and slept on Clock. Zero means
	// 200ms.
	StoreBackoff time.Duration
	// OnEvent is an optional lifecycle observer; the chaos harness
	// uses it to kill workers at precise protocol points.
	OnEvent func(Event)

	rng *rand.Rand // poll/backoff jitter; worker-goroutine-only
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) clock() campaign.Clock {
	if w.Clock == nil {
		return campaign.SystemClock{}
	}
	return w.Clock
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return time.Second
}

// jitter spreads d uniformly over [0.5d, 1.5d). The rng is seeded
// from the worker ID, so a fleet of workers created alike still
// desynchronizes, while any single worker's schedule is reproducible.
// Only the worker goroutine touches the rng.
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	if w.rng == nil {
		h := fnv.New64a()
		h.Write([]byte(w.id()))
		w.rng = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d)))
}

func (w *Worker) storeAttempts() int {
	if w.StoreAttempts > 0 {
		return w.StoreAttempts
	}
	return 4
}

func (w *Worker) storeBackoff() time.Duration {
	if w.StoreBackoff > 0 {
		return w.StoreBackoff
	}
	return 200 * time.Millisecond
}

// retryTransient runs one dispatcher call, retrying transient
// infrastructure errors with capped exponential backoff on the worker
// Clock. Protocol outcomes — nil, ErrNoWork, ErrAllDone, ErrLeaseLost
// — and context errors return immediately: they are answers, not
// failures. Exhausting the budget returns the last error.
func (w *Worker) retryTransient(ctx context.Context, fn func() error) error {
	backoff := w.storeBackoff()
	cap := backoff * 16
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil ||
			errors.Is(err, campaign.ErrNoWork) ||
			errors.Is(err, campaign.ErrAllDone) ||
			errors.Is(err, campaign.ErrLeaseLost) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if attempt >= w.storeAttempts() {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.clock().After(w.jitter(backoff)):
		}
		if backoff < cap {
			backoff *= 2
		}
	}
}

func (w *Worker) event(kind EventKind, unit string, epoch int) {
	if w.OnEvent != nil {
		w.OnEvent(Event{Kind: kind, Worker: w.id(), Unit: unit, Epoch: epoch})
	}
}

// Run claims and executes units until the campaign settles (every
// unit done or failed), the context is cancelled, or an
// infrastructure error occurs. Returning nil means there is nothing
// left for this worker to do.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var claim *campaign.ClaimRecord
		var unit *campaign.UnitRecord
		err := w.retryTransient(ctx, func() error {
			var cerr error
			claim, unit, cerr = w.Store.Claim(w.id())
			return cerr
		})
		if errors.Is(err, campaign.ErrAllDone) {
			return nil
		}
		if errors.Is(err, campaign.ErrNoWork) {
			// Everything unfinished is leased elsewhere; poll (with
			// jitter, so a fleet woken by one lease expiry doesn't
			// stampede the coordinator in lockstep) until a unit frees
			// up or the campaign settles.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-w.clock().After(w.jitter(w.poll())):
			}
			continue
		}
		if err != nil {
			return err
		}
		if err := w.runClaim(ctx, claim, unit); err != nil {
			return err
		}
	}
}

// runClaim executes one claimed unit under a heartbeat, then acks it.
// A lease lost mid-execution cancels the unit's context (the fenced
// worker stops burning compute) and is not an error — the worker just
// moves to the next claim. A parent-context cancellation mid-unit
// abandons the claim without an ack; the lease expires and the
// coordinator reassigns.
func (w *Worker) runClaim(ctx context.Context, claim *campaign.ClaimRecord, unit *campaign.UnitRecord) error {
	w.event(EventClaimed, claim.Unit, claim.Epoch)
	uctx, cancel := context.WithCancel(ctx)
	defer cancel()

	lease := w.Lease
	hbEvery := lease.TTL / 4
	if lease.Heartbeat > 0 {
		hbEvery = lease.Heartbeat
	}
	if hbEvery <= 0 {
		hbEvery = campaign.DefaultLeaseOptions().TTL / 4
	}
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		for {
			select {
			case <-uctx.Done():
				return
			case <-w.clock().After(hbEvery):
				err := w.Store.Heartbeat(claim)
				if errors.Is(err, campaign.ErrLeaseLost) {
					w.event(EventLeaseLost, claim.Unit, claim.Epoch)
					close(lost)
					cancel()
					return
				}
				// Transient store errors (a manifest mid-replace on a
				// network filesystem) are absorbed; the next beat
				// retries well within the TTL.
			}
		}
	}()

	out, execErr := w.Camp.ExecuteUnit(uctx, *unit, claim.Epoch)
	cancel()
	<-hbDone

	leaseLost := false
	select {
	case <-lost:
		leaseLost = true
	default:
	}

	switch {
	case execErr == nil:
		w.event(EventExecuted, claim.Unit, claim.Epoch)
		if err := ctx.Err(); err != nil {
			return err // killed post-write-pre-ack: never ack, let the lease expire
		}
		err := w.retryTransient(ctx, func() error { return w.Store.Complete(claim, out) })
		if err != nil && !errors.Is(err, campaign.ErrLeaseLost) {
			return err
		}
		w.event(EventAcked, claim.Unit, claim.Epoch)
		return nil
	case errors.Is(execErr, campaign.ErrUnitFailed):
		if err := ctx.Err(); err != nil {
			return err
		}
		err := w.retryTransient(ctx, func() error { return w.Store.Fail(claim, out, execErr) })
		if err != nil && !errors.Is(err, campaign.ErrLeaseLost) {
			return err
		}
		w.event(EventAcked, claim.Unit, claim.Epoch)
		return nil
	case leaseLost && ctx.Err() == nil:
		// Fenced mid-unit: abandon and claim something else.
		return nil
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		return execErr
	}
}
