// Package dispatch is the distributed campaign runtime: the
// coordinator and worker halves of the multi-process orchestrator
// that turns cluster.SimulatePlan's simulated ~125-jobs-in-flight
// regime into real processes. Workers claim (target, chunk) work
// units through the campaign package's lease-aware manifest store,
// heartbeat while they hold them, and ack completion with
// epoch-fenced result records; the coordinator folds claims and acks
// into the manifest, reassigns dead workers' units when their leases
// expire, and finalizes — with the same byte-identical kill/resume
// guarantee the single-process orchestrator pins, now across process
// boundaries.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"deepfusion/internal/campaign"
)

// EventKind tags the worker lifecycle points the fault-injection
// harness hooks.
type EventKind string

// Worker lifecycle events, in per-unit order.
const (
	EventClaimed   EventKind = "claimed"    // lease acquired, execution about to start
	EventExecuted  EventKind = "executed"   // unit executed, shards on disk, ack not yet written
	EventAcked     EventKind = "acked"      // completion (or failure) ack written
	EventLeaseLost EventKind = "lease-lost" // heartbeat discovered the lease was fenced
)

// Event is one worker lifecycle observation.
type Event struct {
	Kind   EventKind
	Worker string
	Unit   string
	Epoch  int
}

// Worker runs the claim → execute → ack loop of one worker process.
// It owns no campaign state: the manifest is read through the store,
// units are executed through a read-only campaign.Attach handle, and
// every durable write (claim, heartbeat, shard, ack) goes through the
// store's atomic file protocol.
type Worker struct {
	// ID names the worker in claims and the manifest's liveness
	// table. Empty means "host-pid".
	ID string
	// Camp is the read-only campaign handle (campaign.Attach).
	Camp *campaign.Campaign
	// Store is the lease store (campaign.NewDispatchStore on the same
	// directory, or a future multi-host backend).
	Store *campaign.DispatchStore
	// Clock drives heartbeats and claim-retry polling. Nil means the
	// system clock.
	Clock campaign.Clock
	// Lease sets the heartbeat cadence (must match the coordinator's
	// TTL regime). Zero-valued means defaults.
	Lease campaign.LeaseOptions
	// Poll is the claim-retry cadence while every unfinished unit is
	// leased elsewhere. Zero means one second.
	Poll time.Duration
	// OnEvent is an optional lifecycle observer; the chaos harness
	// uses it to kill workers at precise protocol points.
	OnEvent func(Event)
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) clock() campaign.Clock {
	if w.Clock == nil {
		return campaign.SystemClock{}
	}
	return w.Clock
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return time.Second
}

func (w *Worker) event(kind EventKind, unit string, epoch int) {
	if w.OnEvent != nil {
		w.OnEvent(Event{Kind: kind, Worker: w.id(), Unit: unit, Epoch: epoch})
	}
}

// Run claims and executes units until the campaign settles (every
// unit done or failed), the context is cancelled, or an
// infrastructure error occurs. Returning nil means there is nothing
// left for this worker to do.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		claim, unit, err := w.Store.Claim(w.id())
		if errors.Is(err, campaign.ErrAllDone) {
			return nil
		}
		if errors.Is(err, campaign.ErrNoWork) {
			// Everything unfinished is leased elsewhere; poll until a
			// unit frees up (completion or lease expiry) or the
			// campaign settles.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-w.clock().After(w.poll()):
			}
			continue
		}
		if err != nil {
			return err
		}
		if err := w.runClaim(ctx, claim, unit); err != nil {
			return err
		}
	}
}

// runClaim executes one claimed unit under a heartbeat, then acks it.
// A lease lost mid-execution cancels the unit's context (the fenced
// worker stops burning compute) and is not an error — the worker just
// moves to the next claim. A parent-context cancellation mid-unit
// abandons the claim without an ack; the lease expires and the
// coordinator reassigns.
func (w *Worker) runClaim(ctx context.Context, claim *campaign.ClaimRecord, unit *campaign.UnitRecord) error {
	w.event(EventClaimed, claim.Unit, claim.Epoch)
	uctx, cancel := context.WithCancel(ctx)
	defer cancel()

	lease := w.Lease
	hbEvery := lease.TTL / 4
	if lease.Heartbeat > 0 {
		hbEvery = lease.Heartbeat
	}
	if hbEvery <= 0 {
		hbEvery = campaign.DefaultLeaseOptions().TTL / 4
	}
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		for {
			select {
			case <-uctx.Done():
				return
			case <-w.clock().After(hbEvery):
				err := w.Store.Heartbeat(claim)
				if errors.Is(err, campaign.ErrLeaseLost) {
					w.event(EventLeaseLost, claim.Unit, claim.Epoch)
					close(lost)
					cancel()
					return
				}
				// Transient store errors (a manifest mid-replace on a
				// network filesystem) are absorbed; the next beat
				// retries well within the TTL.
			}
		}
	}()

	out, execErr := w.Camp.ExecuteUnit(uctx, *unit, claim.Epoch)
	cancel()
	<-hbDone

	leaseLost := false
	select {
	case <-lost:
		leaseLost = true
	default:
	}

	switch {
	case execErr == nil:
		w.event(EventExecuted, claim.Unit, claim.Epoch)
		if err := ctx.Err(); err != nil {
			return err // killed post-write-pre-ack: never ack, let the lease expire
		}
		if err := w.Store.Complete(claim, out); err != nil && !errors.Is(err, campaign.ErrLeaseLost) {
			return err
		}
		w.event(EventAcked, claim.Unit, claim.Epoch)
		return nil
	case errors.Is(execErr, campaign.ErrUnitFailed):
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := w.Store.Fail(claim, out, execErr); err != nil && !errors.Is(err, campaign.ErrLeaseLost) {
			return err
		}
		w.event(EventAcked, claim.Unit, claim.Epoch)
		return nil
	case leaseLost && ctx.Err() == nil:
		// Fenced mid-unit: abandon and claim something else.
		return nil
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		return execErr
	}
}
