package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deepfusion/internal/campaign"
)

// killShard is the extra kill point the chaos plan drives through
// Campaign.OnShardWrite: the worker dies after a shard file lands but
// before the unit's remaining shards (and its ack) are written.
const killShard EventKind = "shard-write"

// killPlan is a scripted sequence of worker deaths, consumed in
// order: the first live incarnation to raise the head-of-sequence
// event is killed at that instant. Every kind in the sequence recurs
// in every unit's lifecycle (claim → shard writes → executed → ack),
// and each kill creates more work via reassignment, so the whole
// sequence always drains before the campaign can settle.
type killPlan struct {
	mu  sync.Mutex
	seq []EventKind
}

func (p *killPlan) hit(kind EventKind) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.seq) > 0 && p.seq[0] == kind {
		p.seq = p.seq[1:]
		return true
	}
	return false
}

func (p *killPlan) remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.seq)
}

// TestChaosDistributedByteIdentical is the fault-injection test of
// the distributed runtime: a 3-target campaign runs under three
// worker slots whose incarnations are killed at randomized protocol
// points — mid-chunk (just after the claim), mid-shard-write (one
// shard on disk, the rest not), and post-write-pre-ack (all shards on
// disk, ack withheld) — with every dead incarnation replaced by a
// fresh Attach handle. The coordinator must reassign every orphaned
// lease, fold each unit exactly once, and finalize selections
// byte-identical to an uninterrupted single-process run. The whole
// lease state machine runs on an auto-advancing fake clock, so lease
// expiry costs virtual, not wall, time.
func TestChaosDistributedByteIdentical(t *testing.T) {
	cfg := tinyConfig()
	refDir, refBytes := referenceRun(t, cfg)

	dir := filepath.Join(t.TempDir(), "chaos")
	c, err := campaign.New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}

	fc := campaign.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	fc.SetAutoAdvance(true)
	// A TTL far above the virtual-time drift an executing worker sees
	// between heartbeat renewals: live workers renew every ~1 virtual
	// second; a dead worker's lease still expires in well under a
	// wall-clock second of auto-advanced polling.
	lease := campaign.LeaseOptions{TTL: 30 * time.Minute, Heartbeat: time.Second}

	// Two kills of each kind, shuffled with a fixed seed: the kill
	// points are "random" but the test is deterministic.
	plan := &killPlan{seq: []EventKind{
		EventClaimed, EventClaimed,
		killShard, killShard,
		EventExecuted, EventExecuted,
	}}
	rng := rand.New(rand.NewSource(17))
	rng.Shuffle(len(plan.seq), func(i, j int) { plan.seq[i], plan.seq[j] = plan.seq[j], plan.seq[i] })
	kills := len(plan.seq)

	runCtx, cancelRun := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancelRun()

	workerErrs := make(chan error, 64)
	var slotWG sync.WaitGroup
	for slot := 0; slot < 3; slot++ {
		slotWG.Add(1)
		go func(slot int) {
			defer slotWG.Done()
			for gen := 0; ; gen++ {
				if runCtx.Err() != nil {
					return
				}
				id := fmt.Sprintf("w%d-g%02d", slot, gen)
				// Each incarnation is a fresh process stand-in: its own
				// read-only campaign handle, its own store.
				h, err := campaign.Attach(dir, tinyScorers())
				if err != nil {
					workerErrs <- err
					return
				}
				ictx, kill := context.WithCancel(runCtx)
				h.OnShardWrite = func(unit, shard string) {
					if plan.hit(killShard) {
						kill()
					}
				}
				w := &Worker{
					ID:    id,
					Camp:  h,
					Store: campaign.NewDispatchStore(dir, fc),
					Clock: fc,
					Lease: lease,
					Poll:  time.Second,
					OnEvent: func(ev Event) {
						if plan.hit(ev.Kind) {
							kill()
						}
					},
				}
				err = w.Run(ictx)
				kill()
				if err == nil {
					return // campaign settled; worker retired itself
				}
				if runCtx.Err() != nil {
					return
				}
				if !errors.Is(err, context.Canceled) {
					workerErrs <- fmt.Errorf("worker %s: %w", id, err)
					return
				}
				// Killed by the plan: the next incarnation takes the slot.
			}
		}(slot)
	}

	co := &Coordinator{Camp: c, Clock: fc, Lease: lease, Poll: time.Second}
	res, err := co.Run(runCtx)
	cancelRun()
	slotWG.Wait()
	close(workerErrs)
	for werr := range workerErrs {
		t.Error(werr)
	}
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if res == nil || len(res.PerTarget) != len(cfg.Targets) {
		t.Fatalf("result = %+v, want %d targets", res, len(cfg.Targets))
	}
	if left := plan.remaining(); left != 0 {
		t.Fatalf("%d planned kills never fired", left)
	}

	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reassignments < kills {
		t.Fatalf("reassignments = %d, want >= %d (every kill orphans a lease)", st.Reassignments, kills)
	}
	refSt, err := campaign.ReadStatus(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Poses != refSt.Poses {
		t.Fatalf("chaos run scored %d poses vs reference %d — a zombie ack was double-counted or a unit lost", st.Poses, refSt.Poses)
	}
	if got := selectionBytes(t, dir); !bytes.Equal(got, refBytes) {
		t.Fatalf("selections differ from the uninterrupted single-process run:\nchaos:\n%s\nreference:\n%s", got, refBytes)
	}

	// The coordinator's real-run stats fold one span per unit — acks
	// from fenced zombies must not inflate them.
	rs := co.RunStats()
	if rs.Units != st.Total {
		t.Fatalf("run stats folded %d unit spans, want exactly %d", rs.Units, st.Total)
	}
	if rs.PosesScored != st.Poses {
		t.Fatalf("run stats count %d poses, manifest %d", rs.PosesScored, st.Poses)
	}
	if rs.Reassignments != st.Reassignments {
		t.Fatalf("run stats reassignments = %d, manifest %d", rs.Reassignments, st.Reassignments)
	}
}
