package dispatch

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"deepfusion/internal/campaign"
)

// StartWorkerProcess forks one worker as a real OS process: `exe
// args...` with stdout/stderr inherited. The child is expected to run
// the worker loop against the shared campaign directory (cmd/campaign
// exposes it as the `worker` subcommand) and exit 0 when the campaign
// settles. The returned Cmd has been started.
func StartWorkerProcess(ctx context.Context, exe string, args ...string) (*exec.Cmd, error) {
	cmd := exec.CommandContext(ctx, exe, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dispatch: start worker %v: %w", args, err)
	}
	return cmd, nil
}

// RunProcesses runs a full distributed campaign on this host: the
// coordinator in-process, plus n forked worker processes launched via
// workerArgs(i). Workers exit on their own once every unit settles;
// if the coordinator stops first (error or interrupt), the context
// handed to the workers is cancelled so they die promptly and their
// leases expire for the next run. With n == 0 the coordinator runs
// alone and units are executed by externally attached workers
// (`campaign worker -dir DIR` on any host sharing the directory).
func RunProcesses(ctx context.Context, co *Coordinator, n int, exe string, workerArgs func(i int) []string) (*campaign.Result, error) {
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cmd, err := StartWorkerProcess(wctx, exe, workerArgs(i)...)
		if err != nil {
			stopWorkers()
			wg.Wait()
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker exit is reported through the manifest (units it
			// acked) and lease expiry (units it did not); a non-zero
			// exit here needs no extra handling.
			_ = cmd.Wait()
		}()
	}
	res, err := co.Run(ctx)
	stopWorkers()
	wg.Wait()
	return res, err
}

// RunLocal runs a distributed campaign entirely in-process: a
// coordinator plus n worker goroutines, each with its own Attach
// handle semantics collapsed onto the shared campaign handle. It is
// the no-fork path (and the shape the chaos harness drives with
// separate handles per worker to model real process isolation).
func RunLocal(ctx context.Context, co *Coordinator, n int, newWorker func(i int) *Worker) (*campaign.Result, error) {
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := newWorker(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(wctx)
		}()
	}
	res, err := co.Run(ctx)
	stopWorkers()
	wg.Wait()
	return res, err
}

// WorkerID formats the conventional ID for the i-th forked worker.
func WorkerID(i int) string { return fmt.Sprintf("w%02d", i+1) }

// WaitSettle is a small helper for tests and attach-only topologies:
// it polls the cheap manifest status until the campaign settles or
// the deadline passes.
func WaitSettle(dir string, clock campaign.Clock, poll, deadline time.Duration) (campaign.Status, error) {
	if clock == nil {
		clock = campaign.SystemClock{}
	}
	limit := clock.Now().Add(deadline)
	for {
		st, err := campaign.ReadStatus(dir)
		if err != nil {
			return st, err
		}
		if st.Done+st.Failed == st.Total {
			return st, nil
		}
		if clock.Now().After(limit) {
			return st, fmt.Errorf("dispatch: campaign did not settle within %v (%d/%d done)", deadline, st.Done, st.Total)
		}
		<-clock.After(poll)
	}
}
