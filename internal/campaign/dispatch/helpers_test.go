package dispatch

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"deepfusion/internal/campaign"
	"deepfusion/internal/featurize"
	"deepfusion/internal/fusion"
	"deepfusion/internal/screen"
)

// tinyModel builds the same untrained-but-deterministic Coherent
// Fusion model the campaign package's tests use: two calls with the
// same seeds produce identical weights, so every worker process (and
// every worker incarnation in the chaos harness) reconstructs exactly
// the scorer the coordinator recorded.
func tinyModel() *fusion.Fusion {
	cnnCfg := fusion.DefaultCNN3DConfig()
	cnnCfg.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cnnCfg.ConvFilters1 = 4
	cnnCfg.ConvFilters2 = 6
	cnnCfg.DenseNodes = 8
	sgCfg := fusion.DefaultSGCNNConfig()
	sgCfg.CovGatherWidth = 6
	sgCfg.NonCovGatherWidth = 8
	cnn := fusion.NewCNN3D(cnnCfg, 1)
	sg := fusion.NewSGCNN(sgCfg, 2)
	return fusion.NewFusion(fusion.DefaultCoherentConfig(), cnn, sg, 3)
}

func tinyScorers() []screen.Scorer {
	return []screen.Scorer{tinyModel()}
}

// tinyConfig is a three-target campaign — satellite of the chaos
// test's "3-target campaign, N workers" requirement — with three work
// units per target: enough grid for reassignment churn, small enough
// to run in unit-test time.
func tinyConfig() campaign.Config {
	cfg := campaign.DefaultConfig()
	cfg.Targets = []string{"protease1", "protease2", "spike1"}
	cfg.Compounds = 6
	cfg.ChunkSize = 2
	cfg.MaxPoses = 2
	cfg.Workers = 2
	cfg.TopN = 4
	cfg.Shards = 2
	cfg.Job = screen.DefaultJobOptions()
	cfg.Job.Voxel = featurize.VoxelOptions{GridSize: 4, Resolution: 6.0, Sigma: 0.8}
	cfg.Seed = 11
	return cfg
}

// selectionBytes serializes a finalized campaign's per-target
// selections — the byte-identity oracle shared with the campaign
// package's kill/resume tests.
func selectionBytes(t *testing.T, dir string) []byte {
	t.Helper()
	sel, err := campaign.ReadSelections(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(sel, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// referenceRun executes the campaign uninterrupted in a single
// process and returns its directory and selection bytes — the golden
// answer every distributed run must reproduce exactly.
func referenceRun(t *testing.T, cfg campaign.Config) (string, []byte) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ref")
	c, err := campaign.New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return dir, selectionBytes(t, dir)
}
