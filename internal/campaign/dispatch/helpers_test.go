package dispatch

import (
	"testing"

	"deepfusion/internal/campaign"
	"deepfusion/internal/campaign/dispatchtest"
	"deepfusion/internal/screen"
)

// The tiny deterministic fixtures live in the shared dispatchtest kit
// (one copy for the dispatch, dispatchhttp and conformance suites);
// these wrappers keep this package's historical test names.

func tinyScorers() []screen.Scorer { return dispatchtest.TinyScorers() }

func tinyConfig() campaign.Config { return dispatchtest.TinyConfig() }

func selectionBytes(t *testing.T, dir string) []byte {
	t.Helper()
	return dispatchtest.SelectionBytes(t, dir)
}

func referenceRun(t *testing.T, cfg campaign.Config) (string, []byte) {
	t.Helper()
	return dispatchtest.ReferenceRun(t, cfg)
}
