package dispatch

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"deepfusion/internal/campaign"
)

const workerDirEnv = "DEEPFUSION_TEST_WORKER_DIR"

// TestWorkerProcessHelper is not a test: it is the body of the forked
// worker processes TestDistributedProcessesByteIdentical launches by
// re-executing the test binary with -test.run pinned to this
// function. It attaches to the campaign directory named in the
// environment, runs the claim loop until the campaign settles, and
// exits.
func TestWorkerProcessHelper(t *testing.T) {
	dir := os.Getenv(workerDirEnv)
	if dir == "" {
		t.Skip("subprocess helper; driven by TestDistributedProcessesByteIdentical")
	}
	h, err := campaign.Attach(dir, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{
		Camp:  h, // ID defaults to host-pid: unique per forked process
		Store: campaign.NewDispatchStore(dir, nil),
		Lease: campaign.LeaseOptions{TTL: 30 * time.Second},
		Poll:  25 * time.Millisecond,
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedProcessesByteIdentical drives the real multi-process
// topology — coordinator in-process, two forked worker OS processes
// claiming units through the shared directory — and pins the
// distributed result byte-identical to the uninterrupted
// single-process reference. This is the process-boundary complement
// of the in-process chaos test: real fork/exec, real wall clock, no
// fault injection.
func TestDistributedProcessesByteIdentical(t *testing.T) {
	cfg := tinyConfig()
	refDir, refBytes := referenceRun(t, cfg)

	dir := filepath.Join(t.TempDir(), "dist")
	c, err := campaign.New(dir, cfg, tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(workerDirEnv, dir) // inherited by the forked test binary

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	co := &Coordinator{
		Camp:  c,
		Lease: campaign.LeaseOptions{TTL: 30 * time.Second},
		Poll:  25 * time.Millisecond,
	}
	res, err := RunProcesses(ctx, co, 2, os.Args[0], func(i int) []string {
		return []string{"-test.run=TestWorkerProcessHelper$", "-test.v=false"}
	})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if res == nil || len(res.PerTarget) != len(cfg.Targets) {
		t.Fatalf("result = %+v, want %d targets", res, len(cfg.Targets))
	}

	if got := selectionBytes(t, dir); !bytes.Equal(got, refBytes) {
		t.Fatalf("multi-process selections differ from the single-process reference:\ngot:\n%s\nwant:\n%s", got, refBytes)
	}

	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := campaign.ReadStatus(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != st.Total || st.Poses != refSt.Poses {
		t.Fatalf("status = %d/%d done, %d poses; want all done with %d poses", st.Done, st.Total, st.Poses, refSt.Poses)
	}
	if len(st.Workers) == 0 {
		t.Fatal("manifest recorded no workers; liveness table never folded")
	}
	for _, w := range st.Workers {
		if w.LastBeat.IsZero() || w.FirstSeen.IsZero() {
			t.Fatalf("worker %s has no liveness timestamps: %+v", w.ID, w)
		}
	}
	rs := co.RunStats()
	if rs.Units != st.Total || rs.PosesScored != st.Poses {
		t.Fatalf("run stats = %d units / %d poses, manifest %d / %d", rs.Units, rs.PosesScored, st.Total, st.Poses)
	}
	if rs.Makespan <= 0 {
		t.Fatalf("run stats makespan = %v, want > 0", rs.Makespan)
	}
}

// TestWorkerAttachRefusesWrongScorers pins Attach's safety check
// across the process boundary: a worker built with a different scorer
// set must be refused before it can claim anything.
func TestWorkerAttachRefusesWrongScorers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "camp")
	if _, err := campaign.New(dir, tinyConfig(), tinyScorers()); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Attach(dir, nil); err == nil {
		t.Fatal("Attach with an empty scorer set must be refused")
	}
}
