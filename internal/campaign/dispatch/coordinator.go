package dispatch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"deepfusion/internal/campaign"
	"deepfusion/internal/cluster"
)

// Coordinator drives a distributed campaign: it owns the manifest,
// folds worker claims and result acks into it on every pass, expires
// stale leases (reassigning dead workers' in-flight units), and
// finalizes the campaign once every unit is done. It executes no
// units itself.
type Coordinator struct {
	// Camp is the coordinator's campaign handle (campaign.New or
	// campaign.Load) — the single manifest writer of the run.
	Camp *campaign.Campaign
	// Clock drives lease expiry and the sync cadence. Nil means the
	// system clock.
	Clock campaign.Clock
	// Lease sets the TTL workers are held to. Zero-valued means
	// defaults.
	Lease campaign.LeaseOptions
	// Poll is the sync cadence. Zero means 500ms.
	Poll time.Duration
	// OnSync is an optional per-pass observer (progress printing).
	OnSync func(campaign.SyncReport)

	spans         []cluster.UnitSpan
	reassignments int
}

func (co *Coordinator) clock() campaign.Clock {
	if co.Clock == nil {
		return campaign.SystemClock{}
	}
	return co.Clock
}

func (co *Coordinator) poll() time.Duration {
	if co.Poll > 0 {
		return co.Poll
	}
	return 500 * time.Millisecond
}

// targetOf maps completed units back to their target for run stats.
func targetOf(unitID string, units []campaign.UnitRecord) string {
	for i := range units {
		if units[i].ID == unitID {
			return units[i].Target
		}
	}
	return ""
}

// Run prepares the store, then syncs until the campaign settles:
// every unit done → finalize and return the campaign result; some
// units failed with none left runnable → error (a fresh run grants
// new retry budgets); context cancelled → ErrInterrupted, with the
// manifest holding the resume point exactly as in the single-process
// orchestrator.
func (co *Coordinator) Run(ctx context.Context) (*campaign.Result, error) {
	if err := co.Camp.PrepareDispatch(); err != nil {
		return nil, err
	}
	units := co.Camp.Units()
	for {
		rep, err := co.Camp.SyncDispatch(co.clock().Now(), co.Lease)
		if err != nil {
			return nil, err
		}
		co.reassignments += len(rep.Reassigned)
		for _, rec := range rep.Completed {
			if rec.Err != "" {
				continue
			}
			co.spans = append(co.spans, cluster.UnitSpan{
				Worker: rec.Worker,
				Target: targetOf(rec.Unit, units),
				Start:  rec.Started,
				End:    rec.Finished,
				Poses:  rec.Poses,
			})
		}
		if co.OnSync != nil {
			co.OnSync(rep)
		}
		if rep.AllDone {
			res, err := co.Camp.Finalize()
			if errors.Is(err, campaign.ErrShardsQuarantined) {
				// Finalize's verification gate caught shards damaged
				// after folding; the units were re-queued, so keep
				// syncing — live workers will re-claim them. (Budget
				// exhaustion parks units failed and the AllSettled
				// branch below reports it.)
				continue
			}
			return res, err
		}
		if rep.AllSettled {
			return nil, fmt.Errorf("dispatch: %d unit(s) failed and no workers can retry them this run; rerun to grant a fresh budget", rep.Failed)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w (coordinator stopped)", campaign.ErrInterrupted)
		case <-co.clock().After(co.poll()):
		}
	}
}

// RunStats aggregates the completed-unit spans the coordinator
// observed into the real-run counterpart of the cluster simulator's
// PlanResult.
func (co *Coordinator) RunStats() cluster.RunStats {
	return cluster.CollectRun(co.spans, co.reassignments)
}
