package dispatch

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"deepfusion/internal/campaign"
)

// flakyDispatcher wraps a real Dispatcher and fails a scripted count
// of calls per operation with a transient error, signalling every
// heartbeat attempt so tests can sequence virtual time around them.
type flakyDispatcher struct {
	campaign.Dispatcher
	failHeartbeats int
	failClaims     int
	failCompletes  int
	beats          chan error // non-blocking sends; buffered
}

var errTransient = errors.New("transient store blip (injected)")

func (f *flakyDispatcher) Claim(workerID string) (*campaign.ClaimRecord, *campaign.UnitRecord, error) {
	if f.failClaims > 0 {
		f.failClaims--
		return nil, nil, errTransient
	}
	return f.Dispatcher.Claim(workerID)
}

func (f *flakyDispatcher) Heartbeat(c *campaign.ClaimRecord) error {
	var err error
	if f.failHeartbeats > 0 {
		f.failHeartbeats--
		err = errTransient
	} else {
		err = f.Dispatcher.Heartbeat(c)
	}
	if f.beats != nil {
		select {
		case f.beats <- err:
		default:
		}
	}
	return err
}

func (f *flakyDispatcher) Complete(c *campaign.ClaimRecord, out campaign.UnitOutcome) error {
	if f.failCompletes > 0 {
		f.failCompletes--
		return errTransient
	}
	return f.Dispatcher.Complete(c, out)
}

// oneUnitConfig shrinks the fixture to a single work unit so lease
// timing tests have exactly one claim to reason about.
func oneUnitConfig() campaign.Config {
	cfg := tinyConfig()
	cfg.Targets = []string{"protease1"}
	cfg.Compounds = 2
	cfg.ChunkSize = 2
	cfg.MaxPoses = 1
	cfg.Workers = 1
	cfg.TopN = 2
	cfg.Shards = 1
	return cfg
}

// TestHeartbeatAbsorbsTransientErrors pins the heartbeat goroutine's
// absorption contract (worker.go): a run of transient store errors
// must neither kill the worker nor cost it the lease — the next
// successful beat renews well within the TTL and the unit is never
// reassigned. All time is virtual.
func TestHeartbeatAbsorbsTransientErrors(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	fc := campaign.NewFakeClock(t0)
	// The TTL is deliberately enormous: the test advances virtual time
	// in heartbeat-sized steps until each beat is observed (the advance
	// and the goroutine's waiter registration race benignly, so a beat
	// may consume several advances), and no amount of that drift may
	// expire the lease out from under the assertion that RENEWAL — not
	// luck — is what keeps it. Renewal itself is asserted directly via
	// the worker's folded LastBeat.
	lease := campaign.LeaseOptions{TTL: 10000 * time.Hour, Heartbeat: 10 * time.Second}
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := campaign.New(dir, oneUnitConfig(), tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareDispatch(); err != nil {
		t.Fatal(err)
	}

	// Block unit execution after its shard lands so the heartbeat
	// goroutine is provably the only thing keeping the lease alive.
	release := make(chan struct{})
	c.OnShardWrite = func(unit, shard string) { <-release }

	flaky := &flakyDispatcher{
		Dispatcher:     campaign.NewDispatchStore(dir, fc),
		failHeartbeats: 3,
		beats:          make(chan error, 64),
	}
	claimed := make(chan struct{}, 1)
	w := &Worker{
		ID:    "w1",
		Camp:  c,
		Store: flaky,
		Clock: fc,
		Lease: lease,
		OnEvent: func(e Event) {
			if e.Kind == EventClaimed {
				claimed <- struct{}{}
			}
		},
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()

	<-claimed
	// waitBeat advances virtual time in heartbeat steps until the next
	// beat attempt is observed. The tiny wall sleep only yields the
	// scheduler; no correctness depends on it.
	waitBeat := func() error {
		deadline := time.After(30 * time.Second)
		for {
			select {
			case err := <-flaky.beats:
				return err
			case <-deadline:
				t.Fatal("heartbeat never fired")
			default:
				fc.Advance(lease.Heartbeat)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	// Three beats, each failing transiently. After every absorbed
	// failure the worker is still alive, the lease is still held, and —
	// because a failed beat never rewrites the claim file — the folded
	// liveness timestamp has not moved past the grant.
	for i := 0; i < 3; i++ {
		if err := waitBeat(); !errors.Is(err, errTransient) {
			t.Fatalf("beat %d: err = %v, want injected transient", i+1, err)
		}
		rep, err := c.SyncDispatch(fc.Now(), lease)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Reassigned) != 0 || rep.InFlight != 1 {
			t.Fatalf("after absorbed beat %d: %+v, want lease still held", i+1, rep)
		}
		st, err := campaign.ReadStatus(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Workers) != 1 || !st.Workers[0].LastBeat.Equal(t0) {
			t.Fatalf("after absorbed beat %d: LastBeat = %v, want still at grant time %v", i+1, st.Workers, t0)
		}
	}
	// The fourth beat recovers and renews: the claim file is rewritten
	// with a fresh timestamp and the coordinator folds the advanced
	// liveness — the renewal, not TTL slack, is holding the lease.
	if err := waitBeat(); err != nil {
		t.Fatalf("recovery beat: %v, want success", err)
	}
	if _, err := c.SyncDispatch(fc.Now(), lease); err != nil {
		t.Fatal(err)
	}
	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 1 || !st.Workers[0].LastBeat.After(t0) {
		t.Fatalf("after recovery beat: LastBeat = %v, want advanced past %v (lease renewed)", st.Workers, t0)
	}

	// Unblock execution and let the worker finish on a free-running
	// virtual clock.
	fc.SetAutoAdvance(true)
	close(release)
	deadline := time.After(30 * time.Second)
	for {
		rep, err := c.SyncDispatch(fc.Now(), lease)
		if err != nil {
			t.Fatal(err)
		}
		if rep.AllDone {
			break
		}
		select {
		case <-deadline:
			t.Fatal("campaign never settled")
		default:
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never exited")
	}

	st, err = campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reassignments != 0 {
		t.Fatalf("reassignments = %d, want 0 (transient beats must not cost the lease)", st.Reassignments)
	}
	if st.Done != 1 || st.Done != st.Total {
		t.Fatalf("done = %d/%d, want the single unit done", st.Done, st.Total)
	}
	if st.Poses == 0 {
		t.Fatal("poses = 0, want the unit's poses counted exactly once")
	}
}

// TestWorkerRetriesTransientStoreErrors pins satellite behavior: a
// transient Claim or Complete error must not kill the worker — the
// call is retried with capped backoff on the injected clock and the
// campaign still settles with every pose counted once.
func TestWorkerRetriesTransientStoreErrors(t *testing.T) {
	fc := campaign.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	fc.SetAutoAdvance(true)
	lease := campaign.LeaseOptions{TTL: 5 * time.Minute}
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := campaign.New(dir, oneUnitConfig(), tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareDispatch(); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyDispatcher{
		Dispatcher:    campaign.NewDispatchStore(dir, fc),
		failClaims:    2,
		failCompletes: 2,
	}
	w := &Worker{ID: "w1", Camp: c, Store: flaky, Clock: fc, Lease: lease, StoreAttempts: 4}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	deadline := time.After(30 * time.Second)
	for {
		rep, err := c.SyncDispatch(fc.Now(), lease)
		if err != nil {
			t.Fatal(err)
		}
		if rep.AllDone {
			break
		}
		select {
		case <-deadline:
			t.Fatal("campaign never settled (worker died on a transient store error?)")
		default:
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
	if flaky.failClaims != 0 || flaky.failCompletes != 0 {
		t.Fatalf("injected failures unconsumed: claims=%d completes=%d", flaky.failClaims, flaky.failCompletes)
	}
	st, err := campaign.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != st.Total {
		t.Fatalf("done = %d/%d, want all", st.Done, st.Total)
	}
}

// TestWorkerGivesUpAfterRetryBudget pins the other half of the retry
// contract: a store that fails persistently (not transiently) must
// still surface as a worker error once the attempt budget is spent.
func TestWorkerGivesUpAfterRetryBudget(t *testing.T) {
	fc := campaign.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	fc.SetAutoAdvance(true)
	dir := filepath.Join(t.TempDir(), "camp")
	c, err := campaign.New(dir, oneUnitConfig(), tinyScorers())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareDispatch(); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyDispatcher{
		Dispatcher: campaign.NewDispatchStore(dir, fc),
		failClaims: 1000,
	}
	w := &Worker{ID: "w1", Camp: c, Store: flaky, Clock: fc, StoreAttempts: 3}
	if err := w.Run(context.Background()); !errors.Is(err, errTransient) {
		t.Fatalf("worker exit = %v, want the persistent store error after 3 attempts", err)
	}
	if consumed := 1000 - flaky.failClaims; consumed != 3 {
		t.Fatalf("store attempts = %d, want exactly the budget of 3", consumed)
	}
}

// TestJitterRange pins the poll/backoff jitter envelope: [0.5d, 1.5d),
// deterministic per worker ID.
func TestJitterRange(t *testing.T) {
	w := &Worker{ID: "jitter-test"}
	d := time.Second
	var lo, hi time.Duration = d, 0
	for i := 0; i < 2000; i++ {
		j := w.jitter(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v)", d, j, d/2, d+d/2)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	if hi-lo < d/4 {
		t.Fatalf("jitter spread %v over 2000 draws, want real dispersion", hi-lo)
	}
	w2 := &Worker{ID: "jitter-test"}
	if a, b := w2.jitter(d), (&Worker{ID: "jitter-test"}).jitter(d); a != b {
		t.Fatalf("same-ID jitter streams diverge: %v vs %v", a, b)
	}
}
