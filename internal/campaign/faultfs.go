// Injectable filesystem fault layer for the campaign's durable-write
// primitives and shard reads.
//
// The PR-7 chaos harness kills workers at scripted instants and the
// PR-9 harness drops/duplicates/delays HTTP exchanges; both leave the
// disk itself honest. This layer removes that assumption: scripted
// fault plans corrupt or fail the storage operations underneath
// WriteShardFile / ReadShardFile / WriteJSONAtomic / WriteBytesAtomic
// and the lease store's exclusive-create, deterministically and on
// the injected Clock, so the self-healing machinery (CRC verification
// at fold time, quarantine, bounded re-queue, fsck) can be driven
// through every failure mode in a race-enabled test without touching
// real hardware.
//
// Fault semantics mirror how real disks betray you:
//
//   - torn-write and bit-flip SUCCEED from the writer's point of view
//     — the commit returns nil and the caller acks the unit — but the
//     bytes that land are truncated or flipped. This models firmware
//     that acks unwritten blocks and at-rest media decay; the only
//     defense is read-side verification, which is the point.
//   - enospc fails the write visibly, before any byte lands.
//   - rename-fail fails the commit's rename step visibly; the temp
//     file is cleaned up and the destination is untouched.
//   - short-read truncates the byte slice a reader observes without
//     modifying the file — a transient readback fault.
//
// Plans are consumed first-match (op + path substring + not-before
// time), each fault firing exactly once, and every injection is
// logged with the clock's timestamp so tests can assert the plan
// drained and reconcile counters against injections.
package campaign

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DiskFaultKind names one storage failure mode.
type DiskFaultKind string

const (
	// FaultTornWrite commits only the first Byte bytes of the payload;
	// the write reports success.
	FaultTornWrite DiskFaultKind = "torn-write"
	// FaultBitFlip flips the low bit of payload byte Byte (mod len) on
	// a write, or of the observed bytes on a read; the operation
	// reports success.
	FaultBitFlip DiskFaultKind = "bit-flip"
	// FaultENOSPC fails the write with ErrInjectedENOSPC before any
	// byte lands.
	FaultENOSPC DiskFaultKind = "enospc"
	// FaultRenameFail fails the commit's rename step with
	// ErrInjectedRename; the destination is untouched.
	FaultRenameFail DiskFaultKind = "rename-fail"
	// FaultShortRead truncates the bytes a reader observes to the
	// first Byte bytes, without modifying the file.
	FaultShortRead DiskFaultKind = "short-read"
)

// Injected-fault errors, exported so tests can assert the exact
// failure surfaced.
var (
	ErrInjectedENOSPC = errors.New("campaign: injected fault: no space left on device")
	ErrInjectedRename = errors.New("campaign: injected fault: rename failed")
)

// DiskFault scripts one storage failure.
type DiskFault struct {
	// Op selects the operation class: "write" (payload commit,
	// including exclusive claim creation), "rename" (the atomic
	// publish step) or "read" (shard readback).
	Op string
	// Kind is the failure mode.
	Kind DiskFaultKind
	// Path, when non-empty, restricts the fault to targets whose path
	// contains it (e.g. a specific shard file name).
	Path string
	// Byte parameterizes the fault: truncation point for torn-write /
	// short-read, flipped byte index (mod payload length) for
	// bit-flip.
	Byte int
	// NotBefore holds the fault until the plan's clock reaches it;
	// zero fires immediately. With a FakeClock this sequences faults
	// against lease expiries deterministically.
	NotBefore time.Time
}

// InjectedDiskFault logs one fault that fired.
type InjectedDiskFault struct {
	DiskFault
	Target string    // the path the fault was applied to
	At     time.Time // plan clock at injection
}

// DiskFaults is a scripted, mutex-guarded fault plan. Each fault
// fires exactly once, on the first operation matching its op, path
// substring and not-before time; unmatched operations pass through
// untouched. A nil *DiskFaults injects nothing.
type DiskFaults struct {
	clock Clock

	mu       sync.Mutex
	plan     []DiskFault
	injected []InjectedDiskFault
}

// NewDiskFaults builds a plan evaluated against clock (nil means
// SystemClock).
func NewDiskFaults(clock Clock, plan ...DiskFault) *DiskFaults {
	if clock == nil {
		clock = SystemClock{}
	}
	return &DiskFaults{clock: clock, plan: append([]DiskFault(nil), plan...)}
}

// take consumes and returns the first pending fault matching the
// operation, or ok=false when none matches yet.
func (d *DiskFaults) take(op, path string) (DiskFault, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	for i, f := range d.plan {
		if f.Op != op {
			continue
		}
		if f.Path != "" && !strings.Contains(path, f.Path) {
			continue
		}
		if !f.NotBefore.IsZero() && now.Before(f.NotBefore) {
			continue
		}
		d.plan = append(d.plan[:i], d.plan[i+1:]...)
		d.injected = append(d.injected, InjectedDiskFault{DiskFault: f, Target: path, At: now})
		return f, true
	}
	return DiskFault{}, false
}

// Remaining reports how many scripted faults have not fired yet;
// tests assert 0 to prove the plan drained.
func (d *DiskFaults) Remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.plan)
}

// Injected returns the log of faults that fired, in firing order.
func (d *DiskFaults) Injected() []InjectedDiskFault {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]InjectedDiskFault(nil), d.injected...)
}

// diskFaults is the process-global hook the durable-write primitives
// consult. nil (the default) costs one atomic load per commit and
// injects nothing. Tests script faults with SetDiskFaults; because
// the hook is process-global, tests that set it must not run in
// parallel with each other.
var diskFaults atomic.Pointer[DiskFaults]

// SetDiskFaults installs a fault plan under every campaign durable
// write and shard read in the process, returning a restore function
// for defer. Pass nil to clear.
func SetDiskFaults(f *DiskFaults) (restore func()) {
	prev := diskFaults.Swap(f)
	return func() { diskFaults.Store(prev) }
}

// faultWritePayload applies any pending write fault to a payload
// about to be committed. torn-write/bit-flip return a corrupted copy
// with nil error (the commit proceeds and "succeeds"); enospc returns
// an error before anything lands.
func faultWritePayload(path string, data []byte) ([]byte, error) {
	d := diskFaults.Load()
	if d == nil {
		return data, nil
	}
	f, ok := d.take("write", path)
	if !ok {
		return data, nil
	}
	switch f.Kind {
	case FaultENOSPC:
		return nil, ErrInjectedENOSPC
	case FaultTornWrite:
		n := f.Byte
		if n < 0 {
			n = 0
		}
		if n > len(data) {
			n = len(data)
		}
		return data[:n], nil
	case FaultBitFlip:
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			out[f.Byte%len(out)] ^= 0x01
		}
		return out, nil
	}
	return data, nil
}

// faultRename applies any pending rename fault for the publish step.
func faultRename(path string) error {
	d := diskFaults.Load()
	if d == nil {
		return nil
	}
	if f, ok := d.take("rename", path); ok && f.Kind == FaultRenameFail {
		return ErrInjectedRename
	}
	return nil
}

// faultReadPayload applies any pending read fault to bytes just
// loaded from disk: short-read truncates, bit-flip corrupts the
// observed copy. The file itself is untouched.
func faultReadPayload(path string, data []byte) []byte {
	d := diskFaults.Load()
	if d == nil {
		return data
	}
	f, ok := d.take("read", path)
	if !ok {
		return data
	}
	switch f.Kind {
	case FaultShortRead:
		n := f.Byte
		if n < 0 {
			n = 0
		}
		if n > len(data) {
			n = len(data)
		}
		return data[:n]
	case FaultBitFlip:
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			out[f.Byte%len(out)] ^= 0x01
		}
		return out
	}
	return data
}
