// Package campaign is the production layer above the batched scoring
// engine: a durable, resumable orchestrator for the paper's
// months-long multi-target screening run. A campaign divides each
// target's compound deck into per-chunk work units (the repro-scale
// analogue of the paper's 125 concurrent four-node, 2M-pose Fusion
// jobs), schedules them onto a bounded worker pool, and records every
// state change in a manifest (JSON) plus compound-keyed h5lite shards
// — so a killed or failure-injected campaign resumes exactly where it
// stopped: completed chunks are skipped, in-flight chunks re-run, and
// injected job failures (screen.ErrJobFailed) are retried per-chunk
// instead of per-campaign, the paper's "another job takes its place"
// fault tolerance.
//
// Determinism is load-bearing: the deck is regenerated from the
// manifest config, docked poses are sorted into a canonical order
// before scoring, and final selection always reads back the shard
// files in unit order — so an interrupted-and-resumed campaign
// produces byte-identical selections to an uninterrupted one.
package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"

	"deepfusion/internal/chem"
	"deepfusion/internal/featurize"
	"deepfusion/internal/h5lite"
	"deepfusion/internal/libgen"
	"deepfusion/internal/screen"
	"deepfusion/internal/target"
)

// Config declares a campaign. It is serialized into the manifest and
// is the single source the deck and unit grid are derived from, so a
// resumed process reconstructs exactly the run it is continuing.
type Config struct {
	// Targets lists binding-site names (target.ByName); empty means
	// all four SARS-CoV-2 sites.
	Targets []string `json:"targets"`
	// Compounds is the deck size drawn from the four libraries; the
	// same deck is screened against every target, as in the paper.
	Compounds int `json:"compounds"`
	// ChunkSize is the compounds per work unit — the repro analogue
	// of the ~2M poses a production job carried.
	ChunkSize int `json:"chunk_size"`
	// MaxPoses caps docked poses per compound.
	MaxPoses int `json:"max_poses"`
	// Workers bounds the number of concurrently running units (the
	// allocation's concurrent-job capacity). Zero means 2.
	Workers int `json:"workers"`
	// Job configures each unit's distributed scoring job, including
	// FailureProb for the paper's observed job failures.
	Job screen.JobOptions `json:"job"`
	// Scorers records the stable names of the scorer set the campaign
	// screens with, in primary-first order. New fills it from the
	// injected scorers; Load refuses to resume under a different set —
	// shard columns and selections are only comparable within one set.
	Scorers []string `json:"scorers,omitempty"`
	// MaxAttempts is the per-chunk Fusion job retry budget per Run
	// call (resume grants a fresh budget). Zero means 3.
	MaxAttempts int `json:"max_attempts"`
	// MaxRepairs is the per-unit lifetime budget of corruption
	// re-queues: each time a unit's shards fail integrity verification
	// the shards are quarantined and the unit re-runs, at most this
	// many times before it parks as failed. Zero means 3.
	MaxRepairs int `json:"max_repairs,omitempty"`
	// Shards is the number of h5lite output shards per unit.
	Shards int `json:"shards"`
	// TopN compounds per target go on the simulated purchase list.
	TopN int `json:"top_n"`
	// Weights is the compound-selection cost function.
	Weights screen.CostWeights `json:"weights"`
	// AMPLFitMax caps the compounds used to fit the per-target AMPL
	// surrogate. Zero means 60.
	AMPLFitMax int `json:"ampl_fit_max"`
	// AssayThreshold is the percent-inhibition cut for the two-stage
	// experimental confirmation. Zero means 33 (the paper's hit bar).
	AssayThreshold float64 `json:"assay_threshold"`
	// ModelScale records how the scoring model is produced
	// ("smoke"/"full" for cmd/campaign), so resume rebuilds the same
	// model. Informational to this package; the model is injected.
	ModelScale string `json:"model_scale,omitempty"`
	// Seed drives docking and failure injection. Predictions do not
	// depend on it, so retries never change the scores.
	Seed int64 `json:"seed"`
}

// DefaultConfig returns a repro-scale four-target campaign.
func DefaultConfig() Config {
	return Config{
		Compounds:      48,
		ChunkSize:      12,
		MaxPoses:       3,
		Workers:        2,
		Job:            screen.DefaultJobOptions(),
		MaxAttempts:    3,
		Shards:         2,
		TopN:           8,
		Weights:        screen.DefaultCostWeights(),
		AMPLFitMax:     60,
		AssayThreshold: 33,
		Seed:           1,
	}
}

// withDefaults fills zero-valued knobs.
func (c Config) withDefaults() Config {
	if len(c.Targets) == 0 {
		for _, t := range target.All() {
			c.Targets = append(c.Targets, t.Name)
		}
	}
	if c.Compounds < 1 {
		c.Compounds = 48
	}
	if c.ChunkSize < 1 {
		c.ChunkSize = 12
	}
	if c.MaxPoses < 1 {
		c.MaxPoses = 3
	}
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.MaxRepairs < 1 {
		c.MaxRepairs = 3
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.TopN < 1 {
		c.TopN = 8
	}
	if c.Weights == (screen.CostWeights{}) {
		c.Weights = screen.DefaultCostWeights()
	}
	if c.AMPLFitMax < 1 {
		c.AMPLFitMax = 60
	}
	if c.AssayThreshold <= 0 {
		c.AssayThreshold = 33
	}
	return c
}

// validate rejects configs the orchestrator cannot honor.
func (c Config) validate() error {
	for _, name := range c.Targets {
		if target.ByName(name) == nil {
			return fmt.Errorf("campaign: unknown target %q", name)
		}
	}
	if err := c.Job.Precision.Validate(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// ErrInterrupted reports a Run stopped by context cancellation with
// work remaining; the manifest holds the resume point.
var ErrInterrupted = errors.New("campaign: interrupted; resume from manifest")

// ErrUnitFailed marks a unit whose scoring job exhausted its retry
// budget — a real failure to record (and retry on the next run), as
// opposed to an interruption or an infrastructure error.
var ErrUnitFailed = errors.New("campaign: unit failed")

// Campaign is a live handle on a campaign directory: the manifest,
// the deterministically regenerated deck, and the injected scorer
// set (primary first — the primary fills the legacy fusion_pk column
// the selection cost function reads).
type Campaign struct {
	dir     string
	scorers []screen.Scorer
	deck    []*chem.Mol
	byID    map[string]*chem.Mol

	mu  sync.Mutex // guards man and manifest writes
	man *Manifest

	// prefeatures caches the target-invariant featurization
	// (screen.PrefeatureFor) per target, built on the target's first
	// unit and shared read-only by every later chunk — campaign state,
	// not unit state, because every chunk of a target screens against
	// the same pocket with the same options.
	preMu       sync.Mutex
	prefeatures map[string]*featurize.PocketPrefeature

	// OnUnitStart and OnUnitDone are optional observers called from
	// worker goroutines as units are claimed and retired. Tests use
	// them to assert completed chunks are never re-scored and to
	// inject mid-campaign kills.
	OnUnitStart func(u UnitRecord)
	OnUnitDone  func(u UnitRecord)
	// OnShardWrite is an optional observer called after each shard
	// file of a unit lands on disk — the fault-injection harness's
	// mid-shard-write kill point.
	OnShardWrite func(unitID, shard string)
}

// New creates a campaign directory with a fresh manifest recording
// the scorer set by name. It refuses to overwrite an existing
// manifest — that is what Load is for.
func New(dir string, cfg Config, scorers []screen.Scorer) (*Campaign, error) {
	if len(scorers) == 0 {
		return nil, fmt.Errorf("campaign: need at least one scorer")
	}
	// A duplicate name would fail every unit's scoring job; refuse it
	// before a manifest exists.
	if err := screen.ValidateScorerSet(scorers); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	cfg = cfg.withDefaults()
	cfg.Scorers = screen.ScorerNames(scorers)
	// Record the engine precision explicitly ("f64" for the legacy
	// empty knob), so the manifest states what every shard was scored
	// at and Load can hold resumers to it.
	cfg.Job.Precision = cfg.Job.Precision.Normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if _, err := os.Stat(manifestPath(dir)); err == nil {
		return nil, fmt.Errorf("campaign: %s already holds a campaign (use Load)", dir)
	}
	if err := os.MkdirAll(filepath.Join(dir, shardDirName), 0o755); err != nil {
		return nil, err
	}
	// The dispatch dirs exist from birth so workers can attach to a
	// campaign the moment it is created, before any coordinator pass.
	if err := ensureDispatchDirs(dir); err != nil {
		return nil, err
	}
	deck := drawDeck(cfg)
	man := &Manifest{
		Version:  manifestVersion,
		Name:     filepath.Base(dir),
		Config:   cfg,
		DeckSize: len(deck),
		Units:    unitGrid(cfg, len(deck)),
	}
	if err := saveManifest(dir, man); err != nil {
		return nil, err
	}
	return newHandle(dir, man, deck, scorers), nil
}

// Precision re-exports the engine's arithmetic knob so campaign
// callers configure Config.Job and WithPrecision without importing
// the engine package.
type Precision = screen.Precision

// Engine precisions accepted by Config.Job.Precision.
const (
	PrecisionF64 = screen.PrecisionF64
	PrecisionF32 = screen.PrecisionF32
)

// LoadOption declares an intent the resuming process holds Load to;
// Load refuses to reopen a campaign whose manifest contradicts it.
type LoadOption func(*loadChecks)

type loadChecks struct {
	precision      screen.Precision
	checkPrecision bool
}

// WithPrecision declares the engine precision the resuming process
// intends to score at. Completed shards were scored at the manifest's
// recorded precision; resuming at a different one would mix f32 and
// f64 score columns inside a campaign whose selections are only
// comparable within one arithmetic width — so, exactly like a changed
// scorer set, Load refuses the mismatch.
func WithPrecision(p screen.Precision) LoadOption {
	return func(c *loadChecks) {
		c.precision = p
		c.checkPrecision = true
	}
}

// Load reopens an existing campaign directory: the deck is
// regenerated from the stored config, units recorded in-flight (the
// process died mid-chunk) are reset to pending, and done units whose
// shard files have gone missing are demoted to pending so their data
// is reproduced rather than silently dropped. The provided scorer set
// must match the manifest's recorded names exactly — completed shards
// were written by that set, and mixing sets would corrupt the
// campaign's comparability guarantee. Options declare further intents
// (e.g. WithPrecision) the manifest must agree with.
func Load(dir string, scorers []screen.Scorer, opts ...LoadOption) (*Campaign, error) {
	return openCampaign(dir, scorers, true, opts...)
}

// Attach opens an existing campaign for a worker process: the same
// validation as Load (scorer set, deck size, declared intents), but
// it never mutates unit states and never writes the manifest — in the
// distributed runtime the coordinator is the only manifest writer,
// and workers take their units through the lease store instead.
func Attach(dir string, scorers []screen.Scorer, opts ...LoadOption) (*Campaign, error) {
	return openCampaign(dir, scorers, false, opts...)
}

func openCampaign(dir string, scorers []screen.Scorer, mutate bool, opts ...LoadOption) (*Campaign, error) {
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	got := screen.ScorerNames(scorers)
	if !slices.Equal(got, man.Config.Scorers) {
		return nil, fmt.Errorf("campaign: manifest records scorer set %v; refusing to resume with %v", man.Config.Scorers, got)
	}
	var checks loadChecks
	for _, opt := range opts {
		opt(&checks)
	}
	if checks.checkPrecision {
		if want, intent := man.Config.Job.Precision.Normalize(), checks.precision.Normalize(); intent != want {
			return nil, fmt.Errorf("campaign: manifest records precision %q; refusing to resume at %q", want, intent)
		}
	}
	deck := drawDeck(man.Config)
	if len(deck) != man.DeckSize {
		return nil, fmt.Errorf("campaign: deck regenerated to %d compounds, manifest has %d (library drift?)", len(deck), man.DeckSize)
	}
	if mutate {
		changed := false
		for i := range man.Units {
			u := &man.Units[i]
			if u.State == UnitInFlight {
				u.State = UnitPending
				u.Shards = nil
				changed = true
				continue
			}
			if u.State == UnitDone && !shardsExist(dir, u.Shards) {
				u.State = UnitPending
				u.Shards = nil
				changed = true
			}
		}
		if changed {
			if err := saveManifest(dir, man); err != nil {
				return nil, err
			}
		}
	}
	return newHandle(dir, man, deck, scorers), nil
}

func newHandle(dir string, man *Manifest, deck []*chem.Mol, scorers []screen.Scorer) *Campaign {
	byID := make(map[string]*chem.Mol, len(deck))
	for _, m := range deck {
		byID[m.Name] = m
	}
	return &Campaign{dir: dir, scorers: scorers, deck: deck, byID: byID, man: man}
}

// Dir returns the campaign directory.
func (c *Campaign) Dir() string { return c.dir }

// Units returns a snapshot of the manifest's unit grid.
func (c *Campaign) Units() []UnitRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]UnitRecord(nil), c.man.Units...)
}

// Config returns the stored campaign configuration.
func (c *Campaign) Config() Config { return c.man.Config }

// Status returns the current progress summary.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.man.status(c.dir)
}

// drawDeck regenerates the campaign's screening deck. libgen.Draw is
// deterministic, so every process that reads the same config sees the
// same compounds at the same indices.
func drawDeck(cfg Config) []*chem.Mol {
	return libgen.Draw(libgen.All(), cfg.Compounds)
}

// unitGrid lays out the work units: per target, the deck split into
// ChunkSize compound ranges.
func unitGrid(cfg Config, deckSize int) []UnitRecord {
	var units []UnitRecord
	for _, tgt := range cfg.Targets {
		chunk := 0
		for lo := 0; lo < deckSize; lo += cfg.ChunkSize {
			hi := lo + cfg.ChunkSize
			if hi > deckSize {
				hi = deckSize
			}
			units = append(units, UnitRecord{
				ID:     fmt.Sprintf("%s_c%03d", tgt, chunk),
				Target: tgt,
				Chunk:  chunk,
				Lo:     lo,
				Hi:     hi,
				State:  UnitPending,
			})
			chunk++
		}
	}
	return units
}

// unitSeed derives the unit's base seed for docking and failure
// injection from the campaign seed and the unit's stable identity.
func unitSeed(cfgSeed int64, u UnitRecord) int64 {
	return cfgSeed + int64(screen.ShardOf(u.ID, 1<<20))*7919
}

// prefeatureFor returns the campaign's shared featurization cache for
// a target, building it on first use. A nil cache (scorer set declares
// no featurized representation) is cached too — the lookup, not the
// build, is what must be cheap per unit.
func (c *Campaign) prefeatureFor(tgt *target.Pocket) (*featurize.PocketPrefeature, error) {
	c.preMu.Lock()
	defer c.preMu.Unlock()
	if pf, ok := c.prefeatures[tgt.Name]; ok {
		return pf, nil
	}
	pf, err := screen.PrefeatureFor(c.scorers, tgt, c.man.Config.Job)
	if err != nil {
		return nil, err
	}
	if c.prefeatures == nil {
		c.prefeatures = make(map[string]*featurize.PocketPrefeature)
	}
	c.prefeatures[tgt.Name] = pf
	return pf, nil
}

// shardsExist reports whether every recorded shard file is present.
func shardsExist(dir string, shards []string) bool {
	if len(shards) == 0 {
		return false
	}
	for _, s := range shards {
		if _, err := os.Stat(filepath.Join(dir, s)); err != nil {
			return false
		}
	}
	return true
}

// Run executes every runnable unit on a pool of Config.Workers
// goroutines, persisting the manifest after each state change, then
// finalizes the campaign (selection + confirmation) once all units
// are done. Cancellation is real and threaded through the whole unit
// — the docking stage stops between compounds and the scoring engine
// within one inference batch — so cancelling ctx stops the campaign
// promptly and returns ErrInterrupted with the interrupted units left
// in-flight (re-run on resume). Units that exhaust their retry budget
// are recorded failed and Run reports them, leaving the rest of the
// campaign complete. In both cases a subsequent Run (same process or
// a fresh Load) continues from the manifest.
func (c *Campaign) Run(ctx context.Context) (*Result, error) {
	for {
		if err := c.runUnits(ctx); err != nil {
			return nil, err
		}
		res, err := c.Finalize()
		if errors.Is(err, ErrShardsQuarantined) {
			// Finalize verified every done unit's shards, quarantined
			// the damage and re-queued the owners under their repair
			// budgets. Units that exhausted the budget parked as
			// failed — surface those instead of looping forever.
			if n := c.failedUnitCount(); n > 0 {
				return nil, fmt.Errorf("campaign: %d unit(s) exhausted the repair budget: %w", n, err)
			}
			continue
		}
		return res, err
	}
}

// failedUnitCount counts units currently parked failed.
func (c *Campaign) failedUnitCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, u := range c.man.Units {
		if u.State == UnitFailed {
			n++
		}
	}
	return n
}

// runUnits drives the worker pool over every runnable unit once: the
// execution half of Run, split out so the self-healing loop can
// re-enter it after finalize quarantines a corrupt shard and
// re-queues its unit.
func (c *Campaign) runUnits(ctx context.Context) error {
	cfg := c.man.Config
	work := make(chan int)
	var wg sync.WaitGroup
	errCh := make(chan error, len(c.man.Units)+1)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := c.runUnit(ctx, i); err != nil {
					errCh <- err
				}
			}
		}()
	}
	// Feed runnable units; stop feeding the moment ctx is cancelled.
	interrupted := false
feed:
	for i := range c.man.Units {
		c.mu.Lock()
		state := c.man.Units[i].State
		c.mu.Unlock()
		if state == UnitDone {
			continue
		}
		select {
		case <-ctx.Done():
			interrupted = true
			break feed
		case work <- i:
		}
	}
	close(work)
	wg.Wait()
	close(errCh)

	var unitErrs []error
	for err := range errCh {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			interrupted = true
			continue
		}
		unitErrs = append(unitErrs, err)
	}
	if interrupted {
		return fmt.Errorf("%w (%s)", ErrInterrupted, c.progressLine())
	}
	if len(unitErrs) > 0 {
		return fmt.Errorf("campaign: %d unit(s) failed, rerun to retry: %w", len(unitErrs), errors.Join(unitErrs...))
	}
	return nil
}

func (c *Campaign) progressLine() string {
	s := c.Status()
	return fmt.Sprintf("%d/%d units done", s.Done, s.Total)
}

// runUnit executes one work unit end to end: dock the chunk, score
// every pose with the distributed ensemble job (retrying injected
// failures per-chunk), and write the unit's h5lite shards. The
// manifest transitions pending -> inflight -> done around the work so
// a kill at any point re-runs only this chunk. A context
// cancellation mid-unit propagates out with the unit left in-flight:
// that is interruption, not failure.
func (c *Campaign) runUnit(ctx context.Context, idx int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	u := c.man.Units[idx]
	u.State = UnitInFlight
	c.man.Units[idx] = u
	err := saveManifest(c.dir, c.man)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.OnUnitStart != nil {
		c.OnUnitStart(u)
	}

	out, execErr := c.ExecuteUnit(ctx, u, u.Epoch)
	if execErr != nil {
		if ctx.Err() != nil {
			return ctx.Err() // interruption, not a failed unit
		}
		if !errors.Is(execErr, ErrUnitFailed) {
			return execErr // infrastructure error; unit stays in-flight
		}
		c.mu.Lock()
		u = c.man.Units[idx]
		u.State = UnitFailed
		u.Attempts += out.Attempts
		c.man.Units[idx] = u
		saveErr := saveManifest(c.dir, c.man)
		c.mu.Unlock()
		if saveErr != nil {
			return saveErr
		}
		return execErr
	}

	c.mu.Lock()
	u = c.man.Units[idx]
	u.State = UnitDone
	u.Attempts += out.Attempts
	u.Poses = out.Poses
	u.Skipped = out.Skipped
	u.Shards = out.Shards
	c.man.Units[idx] = u
	err = saveManifest(c.dir, c.man)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.OnUnitDone != nil {
		c.OnUnitDone(u)
	}
	return nil
}

// UnitOutcome is the result of executing one work unit: the shard
// files written and the counts the manifest records. Attempts is
// filled even when execution fails, so the retry seeds keep
// advancing.
type UnitOutcome struct {
	Poses    int
	Skipped  int
	Attempts int
	Shards   []string
}

// ExecuteUnit runs one work unit end to end — dock the chunk, score
// every pose with the distributed ensemble job, write the unit's
// h5lite shards — WITHOUT touching the manifest. It is the
// worker-process half of the orchestrator: single-process Run wraps
// it in manifest transitions, distributed workers wrap it in the
// lease store's claim/ack protocol. epoch qualifies the shard
// filenames, so a fenced zombie's late shard write lands under its
// own (ignored) epoch and can never collide with the current owner's.
//
// A returned error wrapping ErrUnitFailed means the scoring job
// exhausted its retry budget (record + retry later); a context error
// means interruption (the unit is simply abandoned); anything else is
// an infrastructure error.
func (c *Campaign) ExecuteUnit(ctx context.Context, u UnitRecord, epoch int) (UnitOutcome, error) {
	var out UnitOutcome
	if err := ctx.Err(); err != nil {
		return out, err
	}
	cfg := c.man.Config
	tgt := target.ByName(u.Target)
	chunk := c.deck[u.Lo:u.Hi]
	seed := unitSeed(cfg.Seed, u)
	poses, problems, err := screen.DockCompounds(ctx, tgt, chunk, cfg.MaxPoses, seed)
	if err != nil {
		return out, err // cancelled mid-dock; unit stays in-flight for resume
	}
	// DockCompounds appends poses in goroutine-completion order; sort
	// into the canonical (compound, pose-rank) order so shard bytes —
	// and therefore final selections — are identical across runs.
	sort.Slice(poses, func(a, b int) bool {
		if poses[a].CompoundID != poses[b].CompoundID {
			return poses[a].CompoundID < poses[b].CompoundID
		}
		return poses[a].PoseRank < poses[b].PoseRank
	})

	o := cfg.Job
	// Advance past failure-injection seeds consumed by earlier
	// attempts (this Run or a previous, resumed one), so a chunk that
	// keeps drawing the failure dice eventually clears it. Scores
	// never depend on the seed, only the injected-failure roll does.
	o.Seed = seed + int64(u.Attempts)
	// Every chunk of a target shares one featurization cache; a
	// prefeature error is a configuration error (conflicting scorer
	// handshakes), not a retryable unit failure.
	pf, err := c.prefeatureFor(tgt)
	if err != nil {
		return out, fmt.Errorf("campaign: unit %s: %w", u.ID, err)
	}
	o.Prefeature = pf
	preds, attempts, jobErr := screen.RunJobEnsembleWithRetry(ctx, c.scorers, tgt, poses, o, cfg.MaxAttempts)
	out.Attempts = attempts
	if jobErr != nil {
		if ctx.Err() != nil {
			return out, ctx.Err() // interruption, not a failed unit
		}
		return out, fmt.Errorf("%w: unit %s: %v", ErrUnitFailed, u.ID, jobErr)
	}

	shardNames, err := c.writeUnitShards(ctx, u, epoch, preds)
	if err != nil {
		return out, fmt.Errorf("campaign: unit %s: %w", u.ID, err)
	}
	out.Poses = len(preds)
	out.Skipped = len(problems)
	out.Shards = shardNames
	return out, nil
}

// writeUnitShards persists one unit's predictions as compound-keyed
// h5lite shards (screen.WriteShards layout), each written to a temp
// file and renamed so a kill never leaves a torn shard behind a
// done-marked unit. Epoch 0 keeps the legacy single-process names;
// later epochs (distributed reassignments) qualify the filename so a
// zombie's late write can never race the current owner's. The context
// is checked between shard files: a mid-shard-write kill leaves the
// earlier shards complete on disk and the unit unacked.
func (c *Campaign) writeUnitShards(ctx context.Context, u UnitRecord, epoch int, preds []screen.Prediction) ([]string, error) {
	files := screen.WriteShards(preds, c.man.Config.Shards)
	names := make([]string, 0, len(files))
	for si, f := range files {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s_s%02d.h5l", u.ID, si)
		if epoch > 0 {
			name = fmt.Sprintf("%s_e%03d_s%02d.h5l", u.ID, epoch, si)
		}
		rel := filepath.Join(shardDirName, name)
		if err := WriteShardFile(filepath.Join(c.dir, rel), f); err != nil {
			return nil, err
		}
		if c.OnShardWrite != nil {
			c.OnShardWrite(u.ID, rel)
		}
		names = append(names, rel)
	}
	return names, nil
}

// WriteShardFile atomically and durably writes one prediction shard
// (checksummed h5lite v2, temp-write + fsync + rename + parent-dir
// fsync via commitBytes): the durability primitive shared by campaign
// finalize and the screening service's result store.
func WriteShardFile(path string, f *h5lite.File) error {
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		return err
	}
	return commitBytes(path, buf.Bytes())
}
