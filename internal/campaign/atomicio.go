// commitBytes is the single durable-publish primitive every
// campaign-side atomic write funnels through: temp file in the target
// directory, fsync the data, rename over the destination, fsync the
// parent directory so the rename itself survives power loss. The
// injectable disk-fault layer (faultfs.go) hooks the payload and the
// rename here, which is what makes one seam cover WriteShardFile,
// WriteJSONAtomic, WriteBytesAtomic and the serve request store all
// at once.
package campaign

import (
	"os"
	"path/filepath"
)

// commitBytes atomically and durably replaces path with data. A kill
// or power loss at any instant leaves path absent, the old content,
// or the new content — never a torn file, and (thanks to the
// directory fsync) never a rename that evaporates on reboot.
func commitBytes(path string, data []byte) error {
	data, err := faultWritePayload(path, data)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := faultRename(path); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed or just-linked entry
// is durable, not merely sitting in the page cache. Filesystems that
// refuse fsync on directories (some network mounts) degrade to the
// pre-durability behavior rather than failing the commit.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// EINVAL/ENOTSUP from exotic filesystems: the rename still
		// happened; durability degrades, correctness does not.
		return nil
	}
	return nil
}
